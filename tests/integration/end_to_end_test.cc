// Cross-module integration tests: the quantitative miner against the
// boolean bridge, PS91, and the raw data.
#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "core/miner.h"
#include "mining/bridge.h"
#include "mining/ps91.h"
#include "partition/mapper.h"
#include "table/csv.h"
#include "table/datagen.h"
#include "testutil.h"

namespace qarm {
namespace {

// When every attribute is categorical, the quantitative miner must agree
// exactly with boolean Apriori over the bridge encoding.
TEST(EndToEndTest, CategoricalOnlyMatchesBooleanApriori) {
  SyntheticConfig config;
  for (const char* name : {"c1", "c2", "c3"}) {
    SyntheticAttribute attr;
    attr.name = name;
    attr.kind = AttributeKind::kCategorical;
    attr.categories = {"a", "b", "c"};
    attr.weights = {0.5, 0.3, 0.2};
    config.attributes.push_back(attr);
  }
  ImplantedRule dep;
  dep.antecedent_attr = 0;
  dep.ante_category = 0;
  dep.consequent_attr = 1;
  dep.cons_category = 1;
  dep.probability = 0.8;
  config.rules.push_back(dep);
  Table data = GenerateSynthetic(config, 1000, 13);

  MapOptions map_options;
  map_options.minsup = 0.1;
  auto mapped = MapTable(data, map_options);
  ASSERT_TRUE(mapped.ok());

  // Quantitative miner.
  MinerOptions options;
  options.minsup = 0.1;
  options.minconf = 0.6;
  QuantitativeRuleMiner miner(options);
  Result<MiningResult> mine_result = miner.MineMapped(*mapped);
  ASSERT_TRUE(mine_result.ok()) << mine_result.status().ToString();
  MiningResult& result = *mine_result;

  // Boolean bridge.
  BridgeResult bridge = MineViaBooleanBridge(*mapped, 0.1, 0.6);

  // Compare frequent itemsets as (rendered, count) sets.
  std::set<std::pair<std::string, uint64_t>> quant_sets, bool_sets;
  for (const FrequentRangeItemset& f : result.frequent_itemsets) {
    quant_sets.insert({ItemsetToString(f.items, result.mapped), f.count});
  }
  BooleanEncoding encoding(*mapped);
  for (const FrequentItemset& f : bridge.itemsets) {
    RangeItemset decoded;
    for (int32_t item : f.items) {
      int32_t attr = static_cast<int32_t>(encoding.AttrOf(item));
      int32_t v = encoding.ValueOf(item);
      decoded.push_back(RangeItem{attr, v, v});
    }
    bool_sets.insert({ItemsetToString(decoded, result.mapped), f.count});
  }
  EXPECT_EQ(quant_sets, bool_sets);
  EXPECT_EQ(result.rules.size(), bridge.rules.size());
}

// Implanted quantitative dependencies must surface as high-confidence rules.
TEST(EndToEndTest, ImplantedRuleIsRecovered) {
  SyntheticConfig config;
  SyntheticAttribute x;
  x.name = "x";
  x.dist = SyntheticDist::kUniform;
  x.param0 = 0;
  x.param1 = 999;
  SyntheticAttribute y = x;
  y.name = "y";
  config.attributes = {x, y};
  ImplantedRule rule;
  rule.antecedent_attr = 0;
  rule.ante_lo = 0;
  rule.ante_hi = 299;        // ~30% of records
  rule.consequent_attr = 1;
  rule.cons_lo = 700;
  rule.cons_hi = 999;
  rule.probability = 0.95;
  config.rules.push_back(rule);
  Table data = GenerateSynthetic(config, 5000, 21);

  MinerOptions options;
  options.minsup = 0.15;
  options.minconf = 0.7;
  options.max_support = 0.5;
  options.partial_completeness = 1.5;
  QuantitativeRuleMiner miner(options);
  auto result = miner.Mine(data);
  ASSERT_TRUE(result.ok());

  // Look for a rule whose antecedent is an x-range inside [0, 330] and whose
  // consequent is a y-range inside [650, 999], with high confidence.
  bool found = false;
  for (const QuantRule& r : result->rules) {
    if (r.antecedent.size() != 1 || r.consequent.size() != 1) continue;
    if (r.antecedent[0].attr != 0 || r.consequent[0].attr != 1) continue;
    Interval ante = result->mapped.attribute(0).RawInterval(
        r.antecedent[0].lo, r.antecedent[0].hi);
    Interval cons = result->mapped.attribute(1).RawInterval(
        r.consequent[0].lo, r.consequent[0].hi);
    if (ante.lo >= 0 && ante.hi <= 330 && cons.lo >= 650 &&
        r.confidence > 0.8) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

// PS91 rules are a strict subset of what the quantitative miner can express;
// on single-value antecedents/consequents with the same thresholds, every
// PS91 rule must correspond to a mined rule.
TEST(EndToEndTest, Ps91RulesAreSubsumed) {
  Table data = MakeFinancialDataset(1000, 4);
  MapOptions map_options;
  map_options.minsup = 0.2;
  map_options.partial_completeness = 2.0;
  auto mapped = MapTable(data, map_options);
  ASSERT_TRUE(mapped.ok());

  Ps91Options ps_options;
  ps_options.minsup = 0.2;
  ps_options.minconf = 0.5;
  auto ps_rules = Ps91MineAll(*mapped, ps_options);

  MinerOptions options;
  options.minsup = 0.2;
  options.minconf = 0.5;
  options.max_support = 0.4;
  options.partial_completeness = 2.0;
  QuantitativeRuleMiner miner(options);
  Result<MiningResult> mine_result = miner.MineMapped(*mapped);
  ASSERT_TRUE(mine_result.ok()) << mine_result.status().ToString();
  MiningResult& result = *mine_result;

  std::set<std::string> mined;
  for (const QuantRule& r : result.rules) {
    mined.insert(RuleToString(r, result.mapped));
  }
  for (const Ps91Rule& ps : ps_rules) {
    QuantRule as_quant;
    as_quant.antecedent = {RangeItem{
        static_cast<int32_t>(ps.antecedent_attr), ps.antecedent_value,
        ps.antecedent_value}};
    as_quant.consequent = {RangeItem{
        static_cast<int32_t>(ps.consequent_attr), ps.consequent_value,
        ps.consequent_value}};
    as_quant.support = ps.support;
    as_quant.confidence = ps.confidence;
    EXPECT_TRUE(mined.count(RuleToString(as_quant, result.mapped)) > 0)
        << Ps91RuleToString(ps, *mapped);
  }
}

// CSV round trip feeds the miner identically to the in-memory table.
TEST(EndToEndTest, CsvRoundTripMining) {
  Table data = MakeFinancialDataset(300, 6);
  std::string path = testing::TempDir() + "/qarm_e2e.csv";
  ASSERT_TRUE(WriteCsv(data, path).ok());
  auto loaded = ReadCsv(path, data.schema());
  ASSERT_TRUE(loaded.ok());

  MinerOptions options;
  options.minsup = 0.2;
  options.minconf = 0.5;
  options.partial_completeness = 3.0;
  QuantitativeRuleMiner miner(options);
  auto a = miner.Mine(data);
  auto b = miner.Mine(*loaded);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->rules.size(), b->rules.size());
  for (size_t i = 0; i < a->rules.size(); ++i) {
    EXPECT_EQ(RuleToString(a->rules[i], a->mapped),
              RuleToString(b->rules[i], b->mapped));
  }
  std::remove(path.c_str());
}

// Scale sanity: support fractions are invariant to dataset size (same
// generator, larger n) within sampling noise.
TEST(EndToEndTest, SupportsStableAcrossScale) {
  MinerOptions options;
  options.minsup = 0.25;
  options.minconf = 0.5;
  options.partial_completeness = 3.0;
  QuantitativeRuleMiner miner(options);

  auto small = miner.Mine(MakeFinancialDataset(1000, 99));
  auto large = miner.Mine(MakeFinancialDataset(4000, 99));
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());

  // The exact interval boundaries shift with the sample (equi-depth
  // quantiles), but the overall mining landscape must be stable: rule and
  // item counts within a factor of two, and the realized partial
  // completeness close to the requested level in both runs.
  ASSERT_GT(small->rules.size(), 0u);
  ASSERT_GT(large->rules.size(), 0u);
  double ratio = static_cast<double>(large->rules.size()) /
                 static_cast<double>(small->rules.size());
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
  double item_ratio = static_cast<double>(large->stats.num_frequent_items) /
                      static_cast<double>(small->stats.num_frequent_items);
  EXPECT_GT(item_ratio, 0.5);
  EXPECT_LT(item_ratio, 2.0);
}

}  // namespace
}  // namespace qarm
