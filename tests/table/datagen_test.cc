#include "table/datagen.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "table/csv.h"

namespace qarm {
namespace {

TEST(PeopleTableTest, MatchesFigure1) {
  Table people = MakePeopleTable();
  EXPECT_EQ(people.num_rows(), 5u);
  ASSERT_EQ(people.num_columns(), 3u);
  EXPECT_EQ(people.schema().attribute(0).name, "Age");
  EXPECT_EQ(people.schema().attribute(1).name, "Married");
  EXPECT_EQ(people.schema().attribute(2).name, "NumCars");
  // Record 100 of Figure 1: Age 23, not married, 1 car.
  EXPECT_EQ(people.Get(0, 0).as_int64(), 23);
  EXPECT_EQ(people.Get(0, 1).as_string(), "No");
  EXPECT_EQ(people.Get(0, 2).as_int64(), 1);
  // Record 500: Age 38, married, 2 cars.
  EXPECT_EQ(people.Get(4, 0).as_int64(), 38);
  EXPECT_EQ(people.Get(4, 1).as_string(), "Yes");
  EXPECT_EQ(people.Get(4, 2).as_int64(), 2);
}

TEST(FinancialDatasetTest, SchemaMatchesPaper) {
  Table data = MakeFinancialDataset(100, 1);
  const Schema& schema = data.schema();
  ASSERT_EQ(schema.num_attributes(), 7u);
  EXPECT_EQ(schema.num_quantitative(), 5u);
  EXPECT_EQ(schema.num_categorical(), 2u);
  EXPECT_TRUE(schema.IndexOf("monthly_income").ok());
  EXPECT_TRUE(schema.IndexOf("employee_category").ok());
  EXPECT_TRUE(schema.IndexOf("marital_status").ok());
}

TEST(FinancialDatasetTest, DeterministicInSeed) {
  Table a = MakeFinancialDataset(500, 7);
  Table b = MakeFinancialDataset(500, 7);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t r = 0; r < a.num_rows(); r += 37) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      EXPECT_EQ(a.Get(r, c), b.Get(r, c)) << "row " << r << " col " << c;
    }
  }
}

TEST(FinancialDatasetTest, DifferentSeedsDiffer) {
  Table a = MakeFinancialDataset(200, 1);
  Table b = MakeFinancialDataset(200, 2);
  size_t differing = 0;
  for (size_t r = 0; r < a.num_rows(); ++r) {
    if (a.Get(r, 0) != b.Get(r, 0)) ++differing;
  }
  EXPECT_GT(differing, 100u);
}

TEST(FinancialDatasetTest, ImplantedCorrelationIncomeLimit) {
  Table data = MakeFinancialDataset(5000, 3);
  size_t income_col = data.schema().IndexOf("monthly_income").value();
  size_t limit_col = data.schema().IndexOf("credit_limit").value();
  // Pearson correlation between income and credit limit should be strong.
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  const double n = static_cast<double>(data.num_rows());
  for (size_t r = 0; r < data.num_rows(); ++r) {
    double x = data.column(income_col).GetNumeric(r);
    double y = data.column(limit_col).GetNumeric(r);
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  double corr = (n * sxy - sx * sy) /
                std::sqrt((n * sxx - sx * sx) * (n * syy - sy * sy));
  EXPECT_GT(corr, 0.25);
}

TEST(FinancialDatasetTest, CategoryDistribution) {
  Table data = MakeFinancialDataset(10000, 5);
  size_t cat_col = data.schema().IndexOf("employee_category").value();
  std::map<std::string, int> counts;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    ++counts[data.Get(r, cat_col).as_string()];
  }
  EXPECT_EQ(counts.size(), 5u);
  EXPECT_NEAR(counts["hourly"], 3500, 350);
  EXPECT_NEAR(counts["executive"], 500, 150);
}

TEST(DecoyTableTest, SupportsMatchFigure6) {
  Table data = MakeDecoyTable(200000, 11);
  size_t yes_and_5 = 0, yes_and_3 = 0, yes_total = 0;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    int64_t x = data.Get(r, 0).as_int64();
    bool yes = data.Get(r, 1).as_string() == "yes";
    if (yes) {
      ++yes_total;
      if (x == 5) ++yes_and_5;
      if (x == 3) ++yes_and_3;
    }
  }
  const double n = static_cast<double>(data.num_rows());
  EXPECT_NEAR(yes_and_5 / n, 0.11, 0.01);  // the "Interesting" spike
  EXPECT_NEAR(yes_and_3 / n, 0.01, 0.005);
  EXPECT_NEAR(yes_total / n, 0.20, 0.01);
}

TEST(DecoyTableTest, XValuesInRange) {
  Table data = MakeDecoyTable(1000, 11);
  for (size_t r = 0; r < data.num_rows(); ++r) {
    int64_t x = data.Get(r, 0).as_int64();
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 10);
  }
}

TEST(GenerateSyntheticTest, CategoricalWeights) {
  SyntheticConfig config;
  SyntheticAttribute cat;
  cat.name = "c";
  cat.kind = AttributeKind::kCategorical;
  cat.categories = {"a", "b"};
  cat.weights = {0.8, 0.2};
  config.attributes.push_back(cat);
  Table data = GenerateSynthetic(config, 10000, 3);
  size_t a_count = 0;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    if (data.Get(r, 0).as_string() == "a") ++a_count;
  }
  EXPECT_NEAR(a_count / 10000.0, 0.8, 0.03);
}

TEST(GenerateSyntheticTest, UniformQuantClamped) {
  SyntheticConfig config;
  SyntheticAttribute q;
  q.name = "q";
  q.kind = AttributeKind::kQuantitative;
  q.dist = SyntheticDist::kUniform;
  q.param0 = 0;
  q.param1 = 100;
  q.clamp_lo = 10;
  q.clamp_hi = 90;
  q.integral = true;
  config.attributes.push_back(q);
  Table data = GenerateSynthetic(config, 2000, 4);
  for (size_t r = 0; r < data.num_rows(); ++r) {
    int64_t v = data.Get(r, 0).as_int64();
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 90);
  }
}

TEST(GenerateSyntheticTest, ImplantedRuleRaisesConfidence) {
  SyntheticConfig config;
  SyntheticAttribute x;
  x.name = "x";
  x.dist = SyntheticDist::kUniform;
  x.param0 = 0;
  x.param1 = 99;
  SyntheticAttribute y = x;
  y.name = "y";
  config.attributes = {x, y};
  // If x in [0,49] then y in [80,99] with probability 0.9.
  ImplantedRule rule;
  rule.antecedent_attr = 0;
  rule.ante_lo = 0;
  rule.ante_hi = 49;
  rule.consequent_attr = 1;
  rule.cons_lo = 80;
  rule.cons_hi = 99;
  rule.probability = 0.9;
  config.rules.push_back(rule);

  Table data = GenerateSynthetic(config, 20000, 9);
  size_t ante = 0, both = 0;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    int64_t xv = data.Get(r, 0).as_int64();
    int64_t yv = data.Get(r, 1).as_int64();
    if (xv <= 49) {
      ++ante;
      if (yv >= 80) ++both;
    }
  }
  double confidence = static_cast<double>(both) / static_cast<double>(ante);
  // 0.9 forced plus ~0.02 of the residual uniform mass.
  EXPECT_GT(confidence, 0.85);
}

TEST(GenerateSyntheticTest, MissingProbability) {
  SyntheticConfig config;
  SyntheticAttribute q;
  q.name = "q";
  q.dist = SyntheticDist::kUniform;
  q.param0 = 0;
  q.param1 = 100;
  q.missing_probability = 0.35;
  SyntheticAttribute c;
  c.name = "c";
  c.kind = AttributeKind::kCategorical;
  c.categories = {"a", "b"};
  config.attributes = {q, c};
  Table data = GenerateSynthetic(config, 5000, 17);
  size_t nulls = 0;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    if (data.Get(r, 0).is_null()) ++nulls;
    EXPECT_FALSE(data.Get(r, 1).is_null());  // c has no missing mass
  }
  EXPECT_NEAR(static_cast<double>(nulls) / 5000.0, 0.35, 0.03);
}

// The streaming writer must be indistinguishable from materializing the
// table and writing it: byte-identical output for the same (n, seed).
TEST(FinancialDatasetTest, StreamingCsvWriterMatchesInMemory) {
  const size_t kRecords = 700;
  const uint64_t kSeed = 19;
  const std::string path =
      ::testing::TempDir() + "/datagen_streaming_test.csv";
  ASSERT_TRUE(WriteFinancialDatasetCsv(path, kRecords, kSeed).ok());

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string streamed((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  std::string in_memory = ToCsvString(MakeFinancialDataset(kRecords, kSeed));
  EXPECT_EQ(streamed, in_memory);
  std::remove(path.c_str());
}

TEST(FinancialDatasetTest, StreamingCsvWriterFailsOnBadPath) {
  EXPECT_FALSE(
      WriteFinancialDatasetCsv("/nonexistent/dir/out.csv", 10, 1).ok());
}

TEST(GenerateSyntheticTest, ZipfAttribute) {
  SyntheticConfig config;
  SyntheticAttribute z;
  z.name = "z";
  z.dist = SyntheticDist::kZipf;
  z.param0 = 10;  // domain size
  z.param1 = 1.0;
  config.attributes.push_back(z);
  Table data = GenerateSynthetic(config, 10000, 13);
  std::map<int64_t, int> counts;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    ++counts[data.Get(r, 0).as_int64()];
  }
  EXPECT_GT(counts[0], counts[5]);
}

}  // namespace
}  // namespace qarm
