#include "table/table.h"

#include <gtest/gtest.h>

namespace qarm {
namespace {

Schema TwoColumnSchema() {
  return Schema::Make(
             {{"Age", AttributeKind::kQuantitative, ValueType::kInt64},
              {"Married", AttributeKind::kCategorical, ValueType::kString}})
      .value();
}

TEST(TableTest, AppendAndRead) {
  Table table(TwoColumnSchema());
  ASSERT_TRUE(table.AppendRow({Value(int64_t{23}), Value("No")}).ok());
  ASSERT_TRUE(table.AppendRow({Value(int64_t{25}), Value("Yes")}).ok());
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.num_columns(), 2u);
  EXPECT_EQ(table.Get(0, 0).as_int64(), 23);
  EXPECT_EQ(table.Get(1, 1).as_string(), "Yes");
  EXPECT_EQ(table.column(0).GetInt64(1), 25);
  EXPECT_EQ(table.column(0).GetNumeric(0), 23.0);
}

TEST(TableTest, AppendRowRejectsArityMismatch) {
  Table table(TwoColumnSchema());
  Status s = table.AppendRow({Value(int64_t{23})});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(TableTest, AppendRowRejectsTypeMismatch) {
  Table table(TwoColumnSchema());
  Status s = table.AppendRow({Value("not a number"), Value("Yes")});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, Head) {
  Table table(TwoColumnSchema());
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(table.AppendRow({Value(i), Value("x")}).ok());
  }
  Table head = table.Head(3);
  EXPECT_EQ(head.num_rows(), 3u);
  EXPECT_EQ(head.Get(2, 0).as_int64(), 2);
  // Head larger than the table returns everything.
  EXPECT_EQ(table.Head(100).num_rows(), 10u);
}

TEST(TableTest, DoubleColumn) {
  Schema schema =
      Schema::Make({{"X", AttributeKind::kQuantitative, ValueType::kDouble}})
          .value();
  Table table(schema);
  ASSERT_TRUE(table.AppendRow({Value(1.5)}).ok());
  EXPECT_EQ(table.column(0).GetDouble(0), 1.5);
  EXPECT_EQ(table.column(0).GetNumeric(0), 1.5);
}

TEST(TableTest, ToStringContainsHeaderAndValues) {
  Table table(TwoColumnSchema());
  ASSERT_TRUE(table.AppendRow({Value(int64_t{23}), Value("No")}).ok());
  std::string s = table.ToString();
  EXPECT_NE(s.find("Age"), std::string::npos);
  EXPECT_NE(s.find("Married"), std::string::npos);
  EXPECT_NE(s.find("23"), std::string::npos);
}

TEST(TableTest, ToStringTruncates) {
  Table table(TwoColumnSchema());
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(table.AppendRow({Value(i), Value("x")}).ok());
  }
  std::string s = table.ToString(5);
  EXPECT_NE(s.find("25 more rows"), std::string::npos);
}

}  // namespace
}  // namespace qarm
