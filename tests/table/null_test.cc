// Missing-value (NULL) behaviour across Value, Column, Table, and CSV.
#include <gtest/gtest.h>

#include "table/csv.h"
#include "table/table.h"
#include "table/value.h"

namespace qarm {
namespace {

TEST(NullValueTest, Basics) {
  Value null = Value::Null();
  EXPECT_TRUE(null.is_null());
  EXPECT_FALSE(Value(int64_t{0}).is_null());
  EXPECT_EQ(null.ToString(), "");
  EXPECT_EQ(null, Value::Null());
  EXPECT_NE(null, Value(int64_t{0}));
}

TEST(NullValueTest, SortsFirst) {
  EXPECT_LT(Value::Null(), Value(int64_t{-100}));
  EXPECT_FALSE(Value(int64_t{-100}) < Value::Null());
  EXPECT_FALSE(Value::Null() < Value::Null());
}

TEST(NullColumnTest, AppendAndRead) {
  Column col(ValueType::kInt64);
  col.AppendInt64(5);
  col.AppendNull();
  col.Append(Value::Null());
  col.AppendInt64(7);
  ASSERT_EQ(col.size(), 4u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_TRUE(col.IsNull(2));
  EXPECT_FALSE(col.IsNull(3));
  EXPECT_EQ(col.Get(0).as_int64(), 5);
  EXPECT_TRUE(col.Get(1).is_null());
  EXPECT_EQ(col.Get(3).as_int64(), 7);
}

TEST(NullTableTest, AppendRowWithNulls) {
  Schema schema =
      Schema::Make({{"Age", AttributeKind::kQuantitative, ValueType::kInt64},
                    {"Married", AttributeKind::kCategorical,
                     ValueType::kString}})
          .value();
  Table table(schema);
  ASSERT_TRUE(table.AppendRow({Value(int64_t{30}), Value::Null()}).ok());
  ASSERT_TRUE(table.AppendRow({Value::Null(), Value("Yes")}).ok());
  EXPECT_TRUE(table.Get(0, 1).is_null());
  EXPECT_TRUE(table.Get(1, 0).is_null());
  EXPECT_EQ(table.Get(1, 1).as_string(), "Yes");
  // Head preserves nulls.
  Table head = table.Head(2);
  EXPECT_TRUE(head.Get(0, 1).is_null());
}

TEST(NullCsvTest, EmptyFieldIsNull) {
  Schema schema =
      Schema::Make({{"Age", AttributeKind::kQuantitative, ValueType::kInt64},
                    {"Married", AttributeKind::kCategorical,
                     ValueType::kString}})
          .value();
  auto table = ReadCsvString(
      "Age,Married\n"
      "30,\n"
      ",Yes\n"
      "25,No\n",
      schema);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_TRUE(table->Get(0, 1).is_null());
  EXPECT_TRUE(table->Get(1, 0).is_null());
  EXPECT_EQ(table->Get(2, 0).as_int64(), 25);
}

TEST(NullCsvTest, RoundTripPreservesNulls) {
  Schema schema =
      Schema::Make({{"Age", AttributeKind::kQuantitative, ValueType::kInt64},
                    {"Married", AttributeKind::kCategorical,
                     ValueType::kString}})
          .value();
  auto table = ReadCsvString("Age,Married\n30,\n,Yes\n", schema);
  ASSERT_TRUE(table.ok());
  auto again = ReadCsvString(ToCsvString(*table), schema);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->Get(0, 1).is_null());
  EXPECT_TRUE(again->Get(1, 0).is_null());
}

}  // namespace
}  // namespace qarm
