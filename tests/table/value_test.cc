#include "table/value.h"

#include <gtest/gtest.h>

namespace qarm {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  Value i(int64_t{42});
  Value d(2.5);
  Value s("hello");
  EXPECT_TRUE(i.is_int64());
  EXPECT_TRUE(d.is_double());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.as_int64(), 42);
  EXPECT_EQ(d.as_double(), 2.5);
  EXPECT_EQ(s.as_string(), "hello");
}

TEST(ValueTest, AsNumericWidensInt) {
  EXPECT_EQ(Value(int64_t{7}).AsNumeric(), 7.0);
  EXPECT_EQ(Value(1.25).AsNumeric(), 1.25);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{-3}).ToString(), "-3");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
  EXPECT_EQ(Value(3.0).ToString(), "3");
  EXPECT_EQ(Value("abc").ToString(), "abc");
}

TEST(ValueTest, EqualityWithinType) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_EQ(Value("x"), Value("x"));
}

TEST(ValueTest, CrossTypeNotEqual) {
  EXPECT_NE(Value(int64_t{1}), Value(1.0));
}

TEST(ValueTest, OrderingWithinType) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value(1.5), Value(2.5));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_FALSE(Value("b") < Value("a"));
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(ValueTypeName(ValueType::kInt64), "int64");
  EXPECT_STREQ(ValueTypeName(ValueType::kDouble), "double");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "string");
}

}  // namespace
}  // namespace qarm
