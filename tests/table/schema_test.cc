#include "table/schema.h"

#include <gtest/gtest.h>

namespace qarm {
namespace {

TEST(SchemaTest, MakeValid) {
  auto schema = Schema::Make(
      {{"Age", AttributeKind::kQuantitative, ValueType::kInt64},
       {"Married", AttributeKind::kCategorical, ValueType::kString}});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_attributes(), 2u);
  EXPECT_EQ(schema->num_quantitative(), 1u);
  EXPECT_EQ(schema->num_categorical(), 1u);
  EXPECT_EQ(schema->attribute(0).name, "Age");
}

TEST(SchemaTest, RejectsDuplicateNames) {
  auto schema = Schema::Make(
      {{"A", AttributeKind::kCategorical, ValueType::kString},
       {"A", AttributeKind::kCategorical, ValueType::kString}});
  EXPECT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RejectsEmptyName) {
  auto schema =
      Schema::Make({{"", AttributeKind::kCategorical, ValueType::kString}});
  EXPECT_FALSE(schema.ok());
}

TEST(SchemaTest, RejectsStringQuantitative) {
  auto schema = Schema::Make(
      {{"Q", AttributeKind::kQuantitative, ValueType::kString}});
  EXPECT_FALSE(schema.ok());
}

TEST(SchemaTest, QuantitativeDoubleAllowed) {
  auto schema = Schema::Make(
      {{"Q", AttributeKind::kQuantitative, ValueType::kDouble}});
  EXPECT_TRUE(schema.ok());
}

TEST(SchemaTest, IndexOf) {
  auto schema = Schema::Make(
      {{"A", AttributeKind::kCategorical, ValueType::kString},
       {"B", AttributeKind::kQuantitative, ValueType::kInt64}});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->IndexOf("B").value(), 1u);
  EXPECT_EQ(schema->IndexOf("C").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ParseValidSpec) {
  auto schema = Schema::Parse("Age:quant,Married:cat,Score:quant:double");
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->num_attributes(), 3u);
  EXPECT_EQ(schema->attribute(0).kind, AttributeKind::kQuantitative);
  EXPECT_EQ(schema->attribute(0).type, ValueType::kInt64);
  EXPECT_EQ(schema->attribute(1).kind, AttributeKind::kCategorical);
  EXPECT_EQ(schema->attribute(2).type, ValueType::kDouble);
}

TEST(SchemaTest, ParseRejectsMalformedSpecs) {
  for (const char* bad :
       {"", "Age", "Age:", ":quant", "Age:quant:float", "Age:wat",
        "Age:cat:int", "Age:quant:int:extra", "A:quant,A:cat", ","}) {
    auto schema = Schema::Parse(bad);
    EXPECT_FALSE(schema.ok()) << "spec: '" << bad << "'";
    EXPECT_EQ(schema.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SchemaTest, EqualityAndToString) {
  auto a = Schema::Make(
      {{"A", AttributeKind::kQuantitative, ValueType::kInt64}});
  auto b = Schema::Make(
      {{"A", AttributeKind::kQuantitative, ValueType::kInt64}});
  auto c = Schema::Make(
      {{"A", AttributeKind::kCategorical, ValueType::kInt64}});
  EXPECT_TRUE(*a == *b);
  EXPECT_FALSE(*a == *c);
  EXPECT_EQ(a->ToString(), "A:quantitative:int64");
}

}  // namespace
}  // namespace qarm
