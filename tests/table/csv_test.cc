#include "table/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace qarm {
namespace {

Schema PeopleSchema() {
  return Schema::Make(
             {{"Age", AttributeKind::kQuantitative, ValueType::kInt64},
              {"Married", AttributeKind::kCategorical, ValueType::kString},
              {"Score", AttributeKind::kQuantitative, ValueType::kDouble}})
      .value();
}

TEST(CsvTest, ParseBasic) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "23,No,1.5\n"
      "25,Yes,2\n",
      PeopleSchema());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->Get(0, 0).as_int64(), 23);
  EXPECT_EQ(table->Get(1, 1).as_string(), "Yes");
  EXPECT_EQ(table->Get(0, 2).as_double(), 1.5);
}

TEST(CsvTest, TrimsWhitespace) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      " 23 ,  No ,\t1.5\n",
      PeopleSchema());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->Get(0, 1).as_string(), "No");
}

TEST(CsvTest, SkipsBlankLines) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "\n"
      "23,No,1.5\n"
      "   \n",
      PeopleSchema());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 1u);
}

TEST(CsvTest, RejectsEmptyInput) {
  auto table = ReadCsvString("", PeopleSchema());
  EXPECT_FALSE(table.ok());
}

TEST(CsvTest, RejectsWrongHeader) {
  auto table = ReadCsvString("Age,Single,Score\n", PeopleSchema());
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsWrongArity) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "23,No\n",
      PeopleSchema());
  EXPECT_FALSE(table.ok());
}

TEST(CsvTest, RejectsBadInt) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "abc,No,1.5\n",
      PeopleSchema());
  EXPECT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find("abc"), std::string::npos);
}

TEST(CsvTest, RejectsBadDouble) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "23,No,1.5x\n",
      PeopleSchema());
  EXPECT_FALSE(table.ok());
}

TEST(CsvTest, RoundTripThroughString) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "23,No,1.5\n"
      "25,Yes,2\n",
      PeopleSchema());
  ASSERT_TRUE(table.ok());
  std::string csv = ToCsvString(*table);
  auto again = ReadCsvString(csv, PeopleSchema());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->num_rows(), 2u);
  EXPECT_EQ(again->Get(1, 0).as_int64(), 25);
  EXPECT_EQ(again->Get(1, 2).as_double(), 2.0);
}

TEST(CsvTest, FileRoundTrip) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "23,No,1.5\n",
      PeopleSchema());
  ASSERT_TRUE(table.ok());
  std::string path = testing::TempDir() + "/qarm_csv_test.csv";
  ASSERT_TRUE(WriteCsv(*table, path).ok());
  auto again = ReadCsv(path, PeopleSchema());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->num_rows(), 1u);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  auto table = ReadCsv("/nonexistent/qarm.csv", PeopleSchema());
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace qarm
