#include "table/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace qarm {
namespace {

Schema PeopleSchema() {
  return Schema::Make(
             {{"Age", AttributeKind::kQuantitative, ValueType::kInt64},
              {"Married", AttributeKind::kCategorical, ValueType::kString},
              {"Score", AttributeKind::kQuantitative, ValueType::kDouble}})
      .value();
}

TEST(CsvTest, ParseBasic) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "23,No,1.5\n"
      "25,Yes,2\n",
      PeopleSchema());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->Get(0, 0).as_int64(), 23);
  EXPECT_EQ(table->Get(1, 1).as_string(), "Yes");
  EXPECT_EQ(table->Get(0, 2).as_double(), 1.5);
}

TEST(CsvTest, TrimsWhitespace) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      " 23 ,  No ,\t1.5\n",
      PeopleSchema());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->Get(0, 1).as_string(), "No");
}

TEST(CsvTest, SkipsBlankLines) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "\n"
      "23,No,1.5\n"
      "   \n",
      PeopleSchema());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 1u);
}

TEST(CsvTest, RejectsEmptyInput) {
  auto table = ReadCsvString("", PeopleSchema());
  EXPECT_FALSE(table.ok());
}

TEST(CsvTest, RejectsWrongHeader) {
  auto table = ReadCsvString("Age,Single,Score\n", PeopleSchema());
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsWrongArity) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "23,No\n",
      PeopleSchema());
  EXPECT_FALSE(table.ok());
}

TEST(CsvTest, RejectsBadInt) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "abc,No,1.5\n",
      PeopleSchema());
  EXPECT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find("abc"), std::string::npos);
}

TEST(CsvTest, RejectsBadDouble) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "23,No,1.5x\n",
      PeopleSchema());
  EXPECT_FALSE(table.ok());
}

// nan/inf parse as doubles but poison the partitioner's ordering (NaN
// breaks sort/lower_bound invariants downstream), so the reader rejects
// them at the boundary.
TEST(CsvTest, RejectsNonFiniteDouble) {
  for (const char* bad : {"nan", "NaN", "inf", "-inf", "1e999"}) {
    auto table = ReadCsvString(
        std::string("Age,Married,Score\n23,No,") + bad + "\n",
        PeopleSchema());
    EXPECT_FALSE(table.ok()) << "value: " << bad;
    EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(CsvTest, RoundTripThroughString) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "23,No,1.5\n"
      "25,Yes,2\n",
      PeopleSchema());
  ASSERT_TRUE(table.ok());
  std::string csv = ToCsvString(*table);
  auto again = ReadCsvString(csv, PeopleSchema());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->num_rows(), 2u);
  EXPECT_EQ(again->Get(1, 0).as_int64(), 25);
  EXPECT_EQ(again->Get(1, 2).as_double(), 2.0);
}

TEST(CsvTest, FileRoundTrip) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "23,No,1.5\n",
      PeopleSchema());
  ASSERT_TRUE(table.ok());
  std::string path = testing::TempDir() + "/qarm_csv_test.csv";
  ASSERT_TRUE(WriteCsv(*table, path).ok());
  auto again = ReadCsv(path, PeopleSchema());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->num_rows(), 1u);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  auto table = ReadCsv("/nonexistent/qarm.csv", PeopleSchema());
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kIOError);
}

// --- RFC 4180 quoting ------------------------------------------------------

TEST(CsvTest, QuotedFieldWithComma) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "23,\"No, definitely not\",1.5\n",
      PeopleSchema());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->Get(0, 1).as_string(), "No, definitely not");
}

TEST(CsvTest, QuotedFieldWithEscapedQuotes) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "23,\"said \"\"maybe\"\"\",1.5\n",
      PeopleSchema());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->Get(0, 1).as_string(), "said \"maybe\"");
}

TEST(CsvTest, QuotedFieldSpanningLines) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "23,\"line one\nline two\",1.5\n"
      "25,Yes,2\n",
      PeopleSchema());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->Get(0, 1).as_string(), "line one\nline two");
  EXPECT_EQ(table->Get(1, 0).as_int64(), 25);
}

TEST(CsvTest, QuotedStringsKeepWhitespaceVerbatim) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "23,\"  padded  \",1.5\n",
      PeopleSchema());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->Get(0, 1).as_string(), "  padded  ");
}

TEST(CsvTest, CrlfLineEndings) {
  auto table = ReadCsvString(
      "Age,Married,Score\r\n"
      "23,No,1.5\r\n"
      "25,Yes,2\r\n",
      PeopleSchema());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->Get(1, 1).as_string(), "Yes");
}

TEST(CsvTest, EmptyFieldIsNull) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "23,,1.5\n"
      ",No,\n",
      PeopleSchema());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_TRUE(table->Get(0, 1).is_null());
  EXPECT_TRUE(table->Get(1, 0).is_null());
  EXPECT_TRUE(table->Get(1, 2).is_null());
  EXPECT_EQ(table->Get(1, 1).as_string(), "No");
}

TEST(CsvTest, UnterminatedQuoteReportsLine) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "23,No,1.5\n"
      "25,\"oops,2\n",
      PeopleSchema());
  ASSERT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find("line 3"), std::string::npos)
      << table.status().ToString();
  EXPECT_NE(table.status().message().find("unterminated"), std::string::npos);
}

TEST(CsvTest, GarbageAfterClosingQuoteFails) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "23,\"No\"x,1.5\n",
      PeopleSchema());
  ASSERT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find("after closing quote"),
            std::string::npos)
      << table.status().ToString();
}

TEST(CsvTest, ParseErrorsCarryRecordLineNumbers) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "23,No,1.5\n"
      "25,Yes,2\n"
      "bad,No,3\n",
      PeopleSchema());
  ASSERT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find("line 4"), std::string::npos)
      << table.status().ToString();
}

// A multi-line quoted field advances the error line numbering past every
// physical line it spans.
TEST(CsvTest, LineNumbersCountLinesInsideQuotes) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "23,\"one\ntwo\nthree\",1.5\n"
      "bad,No,3\n",
      PeopleSchema());
  ASSERT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find("line 5"), std::string::npos)
      << table.status().ToString();
}

TEST(CsvTest, WriterQuotesSpecialCharacters) {
  EXPECT_EQ(CsvQuoteField("plain"), "plain");
  EXPECT_EQ(CsvQuoteField("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvQuoteField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvQuoteField("two\nlines"), "\"two\nlines\"");
  EXPECT_EQ(CsvQuoteField(""), "");
}

TEST(CsvTest, SpecialCharactersRoundTrip) {
  auto table = ReadCsvString(
      "Age,Married,Score\n"
      "23,\"No, \"\"never\"\"\nreally\",1.5\n",
      PeopleSchema());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  std::string csv = ToCsvString(*table);
  auto again = ReadCsvString(csv, PeopleSchema());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  ASSERT_EQ(again->num_rows(), 1u);
  EXPECT_EQ(again->Get(0, 1).as_string(), "No, \"never\"\nreally");
}

}  // namespace
}  // namespace qarm
