# Multi-host TCP mining smoke: gen -> convert -> start two `qarm worker`
# servers on localhost -> mine over --worker=HOST:PORT and require rules
# bit-identical to the single-process run. Then a crash drill: a third
# worker armed with the deterministic kill switch dies with SIGKILL's exit
# status mid-pass, the coordinator redistributes its shard to the healthy
# survivor, and the rules still match byte for byte.
set(SCHEMA "monthly_income:quant,credit_limit:quant,current_balance:quant,ytd_balance:quant,ytd_interest:quant:double,employee_category:cat,marital_status:cat")
set(MINE_FLAGS --minsup=0.3 --minconf=0.6 --k=3.0 --format=csv)
set(QBT ${WORK_DIR}/dist_tcp_fin.qbt)

foreach(name a b dying)
  file(REMOVE ${WORK_DIR}/tcp_worker_${name}.port
              ${WORK_DIR}/tcp_worker_${name}.pid
              ${WORK_DIR}/tcp_worker_${name}.log)
endforeach()

execute_process(
  COMMAND ${QARM} gen --output=${WORK_DIR}/dist_tcp_fin.csv --records=2000
          --seed=11
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "qarm gen exited with ${rc}")
endif()

execute_process(
  COMMAND ${QARM} convert --input=${WORK_DIR}/dist_tcp_fin.csv
          --schema=${SCHEMA} --output=${QBT} --block-rows=128
          --minsup=0.3 --k=3.0
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "qarm convert exited with ${rc}")
endif()

execute_process(
  COMMAND ${QARM} --input-qbt=${QBT} ${MINE_FLAGS} --workers=1 --threads=1
  OUTPUT_VARIABLE single
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "qarm --workers=1 exited with ${rc}")
endif()
if(single STREQUAL "")
  message(FATAL_ERROR "smoke mining produced no rules")
endif()

# Launches a worker server in the background; EXTRA_ENV (may be empty)
# is prepended as VAR=VALUE. Each self-stops after 120s as a backstop.
function(start_worker name extra_env)
  execute_process(
    COMMAND sh -c "${extra_env} '${QARM}' worker --listen=127.0.0.1:0 \
--input-qbt='${QBT}' --port-file='${WORK_DIR}/tcp_worker_${name}.port' \
--serve-seconds=120 > '${WORK_DIR}/tcp_worker_${name}.log' 2>&1 & \
echo $! > '${WORK_DIR}/tcp_worker_${name}.pid'"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "failed to launch worker ${name} (rc ${rc})")
  endif()
endfunction()

function(wait_for_port name out_var)
  set(port "")
  foreach(i RANGE 100)
    if(EXISTS ${WORK_DIR}/tcp_worker_${name}.port)
      file(READ ${WORK_DIR}/tcp_worker_${name}.port port)
      string(STRIP "${port}" port)
      break()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
  endforeach()
  if(port STREQUAL "")
    file(READ ${WORK_DIR}/tcp_worker_${name}.log worker_log)
    message(FATAL_ERROR
      "worker ${name} never wrote its port file; log:\n${worker_log}")
  endif()
  set(${out_var} "${port}" PARENT_SCOPE)
endfunction()

function(stop_worker name)
  execute_process(
    COMMAND sh -c "kill -TERM $(cat '${WORK_DIR}/tcp_worker_${name}.pid') \
2>/dev/null; true")
endfunction()

start_worker(a "")
start_worker(b "")
wait_for_port(a port_a)
wait_for_port(b port_b)

# Healthy path: two TCP workers, rules identical to the single process.
execute_process(
  COMMAND ${QARM} --input-qbt=${QBT} ${MINE_FLAGS}
          --worker=127.0.0.1:${port_a} --worker=127.0.0.1:${port_b}
          --threads=2 --stats
  OUTPUT_VARIABLE tcp_rules
  ERROR_VARIABLE tcp_stats
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "TCP mine exited with ${rc}: ${tcp_stats}")
endif()
if(NOT tcp_rules STREQUAL single)
  message(FATAL_ERROR "TCP-mined rules differ from the single-process rules")
endif()
if(NOT tcp_stats MATCHES "# distributed: workers=2")
  message(FATAL_ERROR "--stats stderr missing the distributed line:\n${tcp_stats}")
endif()

# The JSON report carries the per-worker robustness counters with endpoint
# attribution (timings make JSON unfit for the byte-compare above).
execute_process(
  COMMAND ${QARM} --input-qbt=${QBT} --minsup=0.3 --minconf=0.6 --k=3.0
          --format=json --worker=127.0.0.1:${port_a}
          --worker=127.0.0.1:${port_b} --threads=2
  OUTPUT_VARIABLE tcp_json
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "TCP mine --format=json exited with ${rc}")
endif()
if(NOT tcp_json MATCHES "\"workers\":\\[")
  message(FATAL_ERROR "JSON stats missing the per-worker array:\n${tcp_json}")
endif()
if(NOT tcp_json MATCHES "\"endpoint\":\"127.0.0.1:${port_a}\"")
  message(FATAL_ERROR "JSON stats do not attribute endpoints:\n${tcp_json}")
endif()

# Crash drill: the dying worker's first session exits with status 137
# (SIGKILL's) after two frames — mid-pass, before the catalog lands. Its
# endpoint then refuses to come back, so the coordinator must redistribute
# the shard to worker b and still reproduce the baseline bytes.
start_worker(dying "QARM_DIST_TEST_EXIT_AFTER_FRAMES=2")
wait_for_port(dying port_dying)

execute_process(
  COMMAND ${QARM} --input-qbt=${QBT} ${MINE_FLAGS}
          --worker=127.0.0.1:${port_dying} --worker=127.0.0.1:${port_b}
          --dist-connect-attempts=3 --dist-connect-backoff-ms=20 --stats
  OUTPUT_VARIABLE recovered
  ERROR_VARIABLE recovered_stats
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "TCP mine with a dying worker exited with ${rc}: ${recovered_stats}")
endif()
if(NOT recovered STREQUAL single)
  message(FATAL_ERROR "rules after worker death differ from single-process")
endif()
if(NOT recovered_stats MATCHES "redistributed=1")
  message(FATAL_ERROR
    "expected a redistributed shard in stderr:\n${recovered_stats}")
endif()

# The dying worker really is gone (exit 137 took the process with it). It
# was orphaned to init, which may not reap — a zombie (state Z) counts as
# dead.
execute_process(
  COMMAND sh -c "state=$(awk '{print $3}' \
/proc/$(cat '${WORK_DIR}/tcp_worker_dying.pid')/stat 2>/dev/null); \
[ -z \"$state\" ] || [ \"$state\" = Z ]"
  RESULT_VARIABLE dying_dead)
if(NOT dying_dead EQUAL 0)
  stop_worker(dying)
  message(FATAL_ERROR "the dying worker survived its kill switch")
endif()

# The survivors shut down cleanly on SIGTERM.
stop_worker(a)
stop_worker(b)
foreach(name a b)
  set(stopped FALSE)
  foreach(i RANGE 100)
    execute_process(
      COMMAND sh -c "kill -0 $(cat '${WORK_DIR}/tcp_worker_${name}.pid') \
2>/dev/null"
      RESULT_VARIABLE alive)
    if(NOT alive EQUAL 0)
      set(stopped TRUE)
      break()
    endif()
    execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
  endforeach()
  if(NOT stopped)
    message(FATAL_ERROR "worker ${name} did not exit within 10s of SIGTERM")
  endif()
  file(READ ${WORK_DIR}/tcp_worker_${name}.log worker_log)
  if(NOT worker_log MATCHES "shut down cleanly")
    message(FATAL_ERROR
      "worker ${name} log missing clean-shutdown line:\n${worker_log}")
  endif()
endforeach()
