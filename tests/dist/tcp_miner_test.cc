// The TCP acceptance gate: mining over `qarm worker` TCP sessions must
// emit rules byte-identical to the single-process streamed miner at every
// worker and thread count, on the same three corpora as the fork-mode
// matrix (dist_corpora.h). The worker servers run in-process here — the
// wire, the handshake, and the coordinator are exactly the production
// code; only the process boundary is elided (tcp_fault_test.cc and the
// CLI smoke test cover real process death).
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/macros.h"
#include "core/miner.h"
#include "dist/dist_miner.h"
#include "dist/worker_server.h"
#include "dist/dist_corpora.h"

namespace qarm {
namespace {

using disttest::DistCorpus;
using disttest::FinancialCorpus;
using disttest::MissingValuesCorpus;
using disttest::MustMineStreamed;
using disttest::RulesAsJson;
using disttest::TaxonomyCorpus;

// A set of live worker servers over one corpus, plus their endpoints.
struct ServerFleet {
  std::vector<std::unique_ptr<WorkerServer>> servers;
  std::vector<std::string> endpoints;
};

ServerFleet StartFleet(const DistCorpus& corpus, size_t count) {
  ServerFleet fleet;
  for (size_t i = 0; i < count; ++i) {
    WorkerServerOptions options;
    options.qbt_path = corpus.qbt_path;
    auto server = WorkerServer::Start(options);
    QARM_CHECK(server.ok());
    fleet.endpoints.push_back("127.0.0.1:" +
                              std::to_string((*server)->port()));
    fleet.servers.push_back(std::move(server).value());
  }
  return fleet;
}

MiningResult MustMineTcp(const DistCorpus& corpus,
                         const std::vector<std::string>& endpoints,
                         size_t threads) {
  MinerOptions options = corpus.options;
  options.worker_endpoints = endpoints;
  options.num_threads = threads;
  options.dist_connect_attempts = 3;
  options.dist_connect_backoff_ms = 10.0;
  auto result = MineDistributedQbt(corpus.qbt_path, options);
  QARM_CHECK(result.ok());
  return std::move(result).value();
}

// The full TCP matrix for one corpus: every endpoint x thread combination
// must reproduce the single-process rules bit for bit, with zero
// robustness events.
void ExpectTcpMatrixMatchesBaseline(const DistCorpus& corpus) {
  ASSERT_GE(corpus.num_blocks, 4u) << "fixture too small to shard";
  const MiningResult baseline = MustMineStreamed(corpus, /*threads=*/1);
  const std::vector<std::string> want = RulesAsJson(baseline);
  ASSERT_FALSE(want.empty());

  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    const ServerFleet fleet = StartFleet(corpus, workers);
    for (size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " threads=" + std::to_string(threads));
      const MiningResult got =
          MustMineTcp(corpus, fleet.endpoints, threads);
      EXPECT_EQ(RulesAsJson(got), want);
      // A single TCP endpoint still mines remotely — unlike --workers=1,
      // which short-circuits in-process. That is the point of the flag.
      EXPECT_EQ(got.stats.dist.num_workers, workers);
      ASSERT_EQ(got.stats.dist.workers.size(), workers);
      for (const DistWorkerStats& stats : got.stats.dist.workers) {
        EXPECT_EQ(stats.endpoint, fleet.endpoints[stats.worker_id]);
        EXPECT_EQ(stats.reconnects, 0u);
        EXPECT_EQ(stats.redistributed, 0u);
        EXPECT_EQ(stats.heartbeat_timeouts, 0u);
        EXPECT_EQ(stats.frames_retried, 0u);
        EXPECT_GT(stats.bytes_sent, 0u);
        EXPECT_GT(stats.bytes_received, 0u);
      }
    }
    // Each mining run opened one session per worker on its pinned server.
    for (const auto& server : fleet.servers) {
      EXPECT_EQ(server->sessions_served(), 2u);  // two thread counts
    }
  }
}

TEST(TcpMinerTest, FinancialMatrixByteIdentical) {
  ExpectTcpMatrixMatchesBaseline(FinancialCorpus());
}

TEST(TcpMinerTest, TaxonomyMatrixByteIdentical) {
  ExpectTcpMatrixMatchesBaseline(TaxonomyCorpus());
}

TEST(TcpMinerTest, MissingValuesMatrixByteIdentical) {
  ExpectTcpMatrixMatchesBaseline(MissingValuesCorpus());
}

// One server can carry several shards at once: more endpoints than
// distinct servers, all pointing at the same process.
TEST(TcpMinerTest, OneServerServesSeveralShards) {
  const DistCorpus& corpus = FinancialCorpus();
  const MiningResult baseline = MustMineStreamed(corpus, 1);
  const ServerFleet fleet = StartFleet(corpus, 1);
  const std::vector<std::string> endpoints(3, fleet.endpoints[0]);
  const MiningResult got = MustMineTcp(corpus, endpoints, /*threads=*/1);
  EXPECT_EQ(RulesAsJson(got), RulesAsJson(baseline));
  EXPECT_EQ(got.stats.dist.num_workers, 3u);
  EXPECT_EQ(fleet.servers[0]->sessions_served(), 3u);
}

// A worker serving a different QBT file is rejected at handshake time with
// a diagnostic, not discovered as a count mismatch three passes later.
TEST(TcpMinerTest, MismatchedShardFileIsRejectedAtHandshake) {
  // Taxonomy has as many blocks as financial, so the stale server passes
  // the block-range check and is caught by the identity cross-check.
  const DistCorpus& corpus = FinancialCorpus();
  const DistCorpus& other = TaxonomyCorpus();
  const ServerFleet good = StartFleet(corpus, 1);
  const ServerFleet stale = StartFleet(other, 1);
  MinerOptions options = corpus.options;
  options.worker_endpoints = {good.endpoints[0], stale.endpoints[0]};
  options.dist_connect_attempts = 2;
  options.dist_connect_backoff_ms = 5.0;
  auto result = MineDistributedQbt(corpus.qbt_path, options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("different QBT"),
            std::string::npos)
      << result.status().ToString();
}

// No server listening: discovery retries, then fails with a bounded
// IOError naming the endpoint — never a hang.
TEST(TcpMinerTest, UnreachableEndpointFailsCleanly) {
  const DistCorpus& corpus = FinancialCorpus();
  MinerOptions options = corpus.options;
  // A port from the ephemeral range with nothing bound to it.
  options.worker_endpoints = {"127.0.0.1:1", "127.0.0.1:2"};
  options.dist_connect_attempts = 2;
  options.dist_connect_backoff_ms = 5.0;
  options.dist_io_timeout_ms = 500;
  options.dist_heartbeat_ms = 100;
  auto result = MineDistributedQbt(corpus.qbt_path, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_NE(result.status().ToString().find("cannot reach"),
            std::string::npos)
      << result.status().ToString();
}

// Endpoint syntax is validated before any socket is opened.
TEST(TcpMinerTest, MalformedEndpointIsInvalidArgument) {
  const DistCorpus& corpus = FinancialCorpus();
  for (const std::string& bad :
       {std::string("localhost"), std::string(":8080"),
        std::string("host:0"), std::string("host:99999"),
        std::string("host:port")}) {
    MinerOptions options = corpus.options;
    options.worker_endpoints = {bad};
    auto result = MineDistributedQbt(corpus.qbt_path, options);
    ASSERT_FALSE(result.ok()) << bad;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

// --worker endpoints and --workers processes are mutually exclusive, and
// the endpoint count is capped like the worker count.
TEST(TcpMinerTest, EndpointOptionsAreValidated) {
  const DistCorpus& corpus = FinancialCorpus();
  MinerOptions options = corpus.options;
  options.worker_endpoints = {"127.0.0.1:9000"};
  options.num_workers = 2;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);

  options = corpus.options;
  options.worker_endpoints = {"127.0.0.1:9000"};
  options.dist_heartbeat_ms = options.dist_io_timeout_ms;  // must be <
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace qarm
