// Shared mining corpora for the distributed test suites. Each corpus is a
// mined QBT on disk plus the options that partitioned it, built once per
// test binary (static) and shared by every worker x thread matrix — the
// fork-mode suite, the TCP suite, and the fault suites all compare the
// same three workloads (financial, taxonomy, missing values) against the
// same single-process baseline.
#ifndef QARM_TESTS_DIST_DIST_CORPORA_H_
#define QARM_TESTS_DIST_DIST_CORPORA_H_

#include <unistd.h>

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/random.h"
#include "core/miner.h"
#include "core/report.h"
#include "partition/mapper.h"
#include "partition/taxonomy.h"
#include "storage/qbt_writer.h"
#include "storage/record_source.h"
#include "table/datagen.h"
#include "table/table.h"

namespace qarm {
namespace disttest {

inline std::vector<std::string> RulesAsJson(const MiningResult& result) {
  std::vector<std::string> out;
  out.reserve(result.rules.size());
  for (const QuantRule& rule : result.rules) {
    out.push_back(RuleToJson(rule, result.mapped));
  }
  return out;
}

// A mined corpus on disk plus the options that partitioned it.
struct DistCorpus {
  std::string qbt_path;
  MinerOptions options;
  size_t num_blocks = 0;
};

inline DistCorpus BuildCorpus(const Table& table, const MinerOptions& options,
                              size_t rows_per_block, const std::string& tag) {
  MapOptions map_options;
  map_options.partial_completeness = options.partial_completeness;
  map_options.minsup = options.minsup;
  map_options.num_intervals_override = options.num_intervals_override;
  map_options.taxonomies = options.taxonomies;
  auto mapped = MapTable(table, map_options);
  QARM_CHECK(mapped.ok());
  DistCorpus corpus;
  // The pid keeps concurrent ctest processes (each gtest TEST is its own
  // invocation of this binary) from rewriting each other's corpus files
  // mid-mmap — WriteQbt writes in place, not via atomic rename.
  corpus.qbt_path = ::testing::TempDir() + "/dist_" + tag + "_" +
                    std::to_string(::getpid()) + ".qbt";
  corpus.options = options;
  QbtWriteOptions write_options;
  write_options.rows_per_block = rows_per_block;
  QARM_CHECK(WriteQbt(*mapped, corpus.qbt_path, write_options).ok());
  auto source = QbtFileSource::Open(corpus.qbt_path);
  QARM_CHECK(source.ok());
  corpus.num_blocks = (*source)->num_blocks();
  return corpus;
}

inline const DistCorpus& FinancialCorpus() {
  static const DistCorpus* corpus = []() {
    MinerOptions options;
    options.minsup = 0.20;
    options.minconf = 0.40;
    options.max_support = 0.40;
    options.partial_completeness = 3.0;
    options.interest_level = 1.2;
    return new DistCorpus(BuildCorpus(MakeFinancialDataset(1500, 91), options,
                                      /*rows_per_block=*/128, "financial"));
  }();
  return *corpus;
}

inline const DistCorpus& TaxonomyCorpus() {
  static const DistCorpus* corpus = []() {
    Schema schema =
        Schema::Make(
            {{"drink", AttributeKind::kCategorical, ValueType::kString},
             {"pastry", AttributeKind::kCategorical, ValueType::kString}})
            .value();
    Table table(schema);
    Rng rng(99);
    for (size_t i = 0; i < 3000; ++i) {
      double u = rng.UniformDouble();
      std::string drink;
      std::string pastry;
      if (u < 0.10) {
        drink = "coffee";
        pastry = "yes";
      } else if (u < 0.20) {
        drink = "tea";
        pastry = "yes";
      } else if (u < 0.60) {
        drink = "soda";
        pastry = rng.Bernoulli(0.1) ? "yes" : "no";
      } else {
        drink = "juice";
        pastry = rng.Bernoulli(0.1) ? "yes" : "no";
      }
      table.AppendRowUnchecked(
          {Value(std::move(drink)), Value(std::move(pastry))});
    }
    MinerOptions options;
    options.minsup = 0.15;
    options.minconf = 0.60;
    options.taxonomies.emplace_back(
        "drink", Taxonomy::Make({{"hot", "drinks"},
                                 {"cold", "drinks"},
                                 {"coffee", "hot"},
                                 {"tea", "hot"},
                                 {"soda", "cold"},
                                 {"juice", "cold"}})
                     .value());
    return new DistCorpus(
        BuildCorpus(table, options, /*rows_per_block=*/256, "taxonomy"));
  }();
  return *corpus;
}

inline const DistCorpus& MissingValuesCorpus() {
  static const DistCorpus* corpus = []() {
    Schema schema =
        Schema::Make({{"x", AttributeKind::kQuantitative, ValueType::kInt64},
                      {"c", AttributeKind::kCategorical, ValueType::kString}})
            .value();
    Table table(schema);
    Rng rng(7);
    for (size_t i = 0; i < 1200; ++i) {
      int64_t x = rng.UniformInt(0, 9);
      std::vector<Value> row(2);
      row[0] = rng.Bernoulli(0.2) ? Value::Null() : Value(x);
      row[1] = rng.Bernoulli(0.2)
                   ? Value::Null()
                   : Value(x < 5 ? std::string("lo") : std::string("hi"));
      table.AppendRowUnchecked(row);
    }
    MinerOptions options;
    options.minsup = 0.10;
    options.minconf = 0.40;
    options.num_intervals_override = 5;
    return new DistCorpus(
        BuildCorpus(table, options, /*rows_per_block=*/128, "missing"));
  }();
  return *corpus;
}

inline MiningResult MustMineStreamed(const DistCorpus& corpus,
                                     size_t threads) {
  MinerOptions options = corpus.options;
  options.num_threads = threads;
  auto source = QbtFileSource::Open(corpus.qbt_path);
  QARM_CHECK(source.ok());
  auto result = QuantitativeRuleMiner(options).MineStreamed(**source);
  QARM_CHECK(result.ok());
  return std::move(result).value();
}

}  // namespace disttest
}  // namespace qarm

#endif  // QARM_TESTS_DIST_DIST_CORPORA_H_
