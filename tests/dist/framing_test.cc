// The distributed transport layer in isolation: frame round-trips over a
// real socketpair, every corruption the coordinator treats as a dead
// worker (bad magic, truncation, CRC mismatch, oversize length), and the
// message encoders against truncated/hostile payloads.
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dist/framing.h"
#include "dist/messages.h"
#include "dist/transport.h"
#include "storage/checkpoint_format.h"
#include "storage/crc32.h"
#include "storage/qbt_format.h"

namespace qarm {
namespace {

class DistFramingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    writer_ = std::make_unique<FdTransport>(fds[0]);
    reader_ = std::make_unique<FdTransport>(fds[1]);
  }
  void CloseWriter() { writer_->Close(); }
  // Raw bytes straight onto the wire, bypassing SendFrame.
  void WriteRaw(const std::string& bytes) {
    ASSERT_TRUE(writer_->Write(bytes.data(), bytes.size()).ok());
  }

  std::unique_ptr<FdTransport> writer_;
  std::unique_ptr<FdTransport> reader_;
};

TEST_F(DistFramingTest, RoundTripsPayloadsOfEverySize) {
  // The 1 MiB payload exceeds any socketpair buffer, so the send must run
  // on its own thread while this one drains — exactly the full-duplex shape
  // the coordinator and workers use.
  const std::vector<std::string> payloads = {
      "", "x", std::string(100, 'a'), std::string(1 << 20, 'b')};
  for (size_t i = 0; i < payloads.size(); ++i) {
    uint64_t sent = 0;
    Status send_status;
    std::thread sender([&]() {
      send_status = SendFrame(*writer_, static_cast<uint32_t>(i + 1),
                              payloads[i], &sent);
    });
    uint64_t received = 0;
    Result<DistFrame> frame = RecvFrame(*reader_, &received);
    sender.join();
    ASSERT_TRUE(send_status.ok()) << send_status.ToString();
    EXPECT_EQ(sent, kDistFrameHeaderSize + payloads[i].size() + 4);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->type, i + 1);
    EXPECT_EQ(frame->payload, payloads[i]);
    EXPECT_EQ(received, sent);
  }
}

TEST_F(DistFramingTest, EofBeforeAnyByteIsIoError) {
  CloseWriter();
  Result<DistFrame> frame = RecvFrame(*reader_);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kIOError);
}

TEST_F(DistFramingTest, EofMidFrameIsIoError) {
  WriteRaw(std::string(kDistFrameMagic, 4));  // header cut short
  CloseWriter();
  Result<DistFrame> frame = RecvFrame(*reader_);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kIOError);
}

TEST_F(DistFramingTest, BadMagicIsIoError) {
  std::string bytes = "NOPE";
  QbtAppendU32(&bytes, 1);
  QbtAppendU64(&bytes, 0);
  QbtAppendU32(&bytes, Crc32("", 0));
  WriteRaw(bytes);
  Result<DistFrame> frame = RecvFrame(*reader_);
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().ToString().find("magic"), std::string::npos);
}

TEST_F(DistFramingTest, OversizeLengthIsRejectedWithoutAllocating) {
  std::string bytes(kDistFrameMagic, 4);
  QbtAppendU32(&bytes, 1);
  QbtAppendU64(&bytes, kDistMaxPayload + 1);
  WriteRaw(bytes);
  Result<DistFrame> frame = RecvFrame(*reader_);
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().ToString().find("exceeds limit"),
            std::string::npos);
}

TEST_F(DistFramingTest, CorruptPayloadFailsTheCrc) {
  // A valid frame with one payload byte flipped on the wire.
  const std::string payload = "count data";
  std::string bytes(kDistFrameMagic, 4);
  QbtAppendU32(&bytes, 5);
  QbtAppendU64(&bytes, payload.size());
  bytes += payload;
  QbtAppendU32(&bytes, Crc32(payload.data(), payload.size()));
  bytes[kDistFrameHeaderSize + 2] ^= 0x40;
  WriteRaw(bytes);
  Result<DistFrame> frame = RecvFrame(*reader_);
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().ToString().find("CRC"), std::string::npos);
}

TEST(DistMessagesTest, CountRequestRoundTripsMaterializedIds) {
  DistCountRequest request;
  request.k = 3;
  request.num_candidates = 2;
  request.ids = {0, 4, 9, 1, 4, 11};
  std::string payload;
  EncodeCountRequest(request, &payload);
  Result<DistCountRequest> parsed = ParseCountRequest(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->k, 3u);
  EXPECT_FALSE(parsed->implicit_pairs);
  EXPECT_EQ(parsed->num_candidates, 2u);
  EXPECT_EQ(parsed->ids, request.ids);
}

TEST(DistMessagesTest, CountRequestRoundTripsImplicitPairs) {
  DistCountRequest request;
  request.k = 2;
  request.implicit_pairs = true;
  request.num_candidates = 3400000;  // no ids travel with the flag
  std::string payload;
  EncodeCountRequest(request, &payload);
  EXPECT_EQ(payload.size(), 4u + 4u + 8u);
  Result<DistCountRequest> parsed = ParseCountRequest(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->implicit_pairs);
  EXPECT_EQ(parsed->num_candidates, 3400000u);
  EXPECT_TRUE(parsed->ids.empty());
}

TEST(DistMessagesTest, CountRequestRejectsTruncationAndOverflowCounts) {
  DistCountRequest request;
  request.k = 2;
  request.num_candidates = 4;
  request.ids = {0, 1, 0, 2, 1, 2, 1, 3};
  std::string payload;
  EncodeCountRequest(request, &payload);
  for (size_t cut : {payload.size() - 1, payload.size() - 9, size_t{3}}) {
    EXPECT_FALSE(ParseCountRequest(
                     reinterpret_cast<const uint8_t*>(payload.data()), cut)
                     .ok())
        << "cut=" << cut;
  }
  // A hostile candidate count far past the payload must not allocate.
  std::string hostile;
  QbtAppendU32(&hostile, 2);
  QbtAppendU32(&hostile, 0);
  QbtAppendU64(&hostile, ~0ull);
  EXPECT_FALSE(ParseCountRequest(
                   reinterpret_cast<const uint8_t*>(hostile.data()),
                   hostile.size())
                   .ok());
}

TEST(DistMessagesTest, CountReplyRoundTripsCountsAndStats) {
  DistCountReply reply;
  reply.worker_id = 7;
  reply.counts = {0, 12, 99, 4};
  reply.stats.num_super_candidates = 5;
  reply.stats.num_array_counters = 3;
  reply.stats.threads_used = 4;
  reply.stats.io.blocks_read = 17;
  reply.stats.io.bytes_read = 4096;
  reply.stats.scan_seconds = 0.25;
  std::string payload;
  EncodeCountReply(reply, &payload);
  Result<DistCountReply> parsed = ParseCountReply(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->worker_id, 7u);
  EXPECT_EQ(parsed->counts, reply.counts);
  EXPECT_EQ(parsed->stats.num_super_candidates, 5u);
  EXPECT_EQ(parsed->stats.num_array_counters, 3u);
  EXPECT_EQ(parsed->stats.threads_used, 4u);
  EXPECT_EQ(parsed->stats.io.blocks_read, 17u);
  EXPECT_EQ(parsed->stats.io.bytes_read, 4096u);
  EXPECT_DOUBLE_EQ(parsed->stats.scan_seconds, 0.25);
  // Trailing garbage is a framing bug, not something to ignore.
  payload += 'x';
  EXPECT_FALSE(ParseCountReply(
                   reinterpret_cast<const uint8_t*>(payload.data()),
                   payload.size())
                   .ok());
}

TEST(DistMessagesTest, ShardSnapshotRoundTrips) {
  ShardSnapshot snapshot;
  snapshot.fingerprint = 0xfeedfacecafef00dULL;
  snapshot.worker_id = 2;
  snapshot.block_begin = 10;
  snapshot.block_end = 20;
  snapshot.num_rows = 2560;
  snapshot.value_counts = {{5, 0, 12}, {}, {7, 7}};
  snapshot.blocks_read = 10;
  snapshot.bytes_read = 123456;
  snapshot.read_retries = 1;
  snapshot.faults_injected = 2;
  std::string payload;
  EncodeShardSnapshot(snapshot, &payload);
  Result<ShardSnapshot> parsed = ParseShardSnapshot(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->fingerprint, snapshot.fingerprint);
  EXPECT_EQ(parsed->worker_id, 2u);
  EXPECT_EQ(parsed->block_begin, 10u);
  EXPECT_EQ(parsed->block_end, 20u);
  EXPECT_EQ(parsed->num_rows, 2560u);
  EXPECT_EQ(parsed->value_counts, snapshot.value_counts);
  EXPECT_EQ(parsed->blocks_read, 10u);
  EXPECT_EQ(parsed->bytes_read, 123456u);
  EXPECT_EQ(parsed->read_retries, 1u);
  EXPECT_EQ(parsed->faults_injected, 2u);
}

TEST(DistMessagesTest, ShardSnapshotRejectsCorruption) {
  ShardSnapshot snapshot;
  snapshot.value_counts = {{1, 2}};
  std::string payload;
  EncodeShardSnapshot(snapshot, &payload);
  // Wrong magic.
  std::string bad = payload;
  bad[0] = 'X';
  EXPECT_FALSE(ParseShardSnapshot(
                   reinterpret_cast<const uint8_t*>(bad.data()), bad.size())
                   .ok());
  // Unknown version.
  bad = payload;
  bad[4] = static_cast<char>(kShardSnapshotVersion + 1);
  EXPECT_FALSE(ParseShardSnapshot(
                   reinterpret_cast<const uint8_t*>(bad.data()), bad.size())
                   .ok());
  // Every truncation point fails cleanly.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(ParseShardSnapshot(
                     reinterpret_cast<const uint8_t*>(payload.data()), cut)
                     .ok())
        << "cut=" << cut;
  }
}

}  // namespace
}  // namespace qarm
