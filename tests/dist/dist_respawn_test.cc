// Worker-failure recovery: a worker SIGKILL'd mid-pass is respawned and
// replays only its own block range, leaving the merged rules byte-identical
// to a fault-free run; a worker that dies deterministically forever
// exhausts its respawn budget and fails the run cleanly. Faults come from
// the storage fault injector with kinds=kill at rate=1, so every worker's
// first faulted read is deterministic — no seed hunting, no flakes.
#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/miner.h"
#include "core/report.h"
#include "dist/dist_miner.h"
#include "partition/mapper.h"
#include "storage/qbt_writer.h"
#include "storage/record_source.h"
#include "table/datagen.h"

namespace qarm {
namespace {

constexpr size_t kWorkers = 3;

std::vector<std::string> RulesAsJson(const MiningResult& result) {
  std::vector<std::string> out;
  out.reserve(result.rules.size());
  for (const QuantRule& rule : result.rules) {
    out.push_back(RuleToJson(rule, result.mapped));
  }
  return out;
}

// Financial corpus in small blocks so each of the 3 workers owns several.
struct RespawnCorpus {
  std::string qbt_path;
  MinerOptions options;
  size_t num_blocks = 0;

  RespawnCorpus() {
    options.minsup = 0.20;
    options.minconf = 0.40;
    options.max_support = 0.40;
    options.partial_completeness = 3.0;
    options.interest_level = 1.2;
    Table raw = MakeFinancialDataset(1500, 91);
    MapOptions map_options;
    map_options.partial_completeness = options.partial_completeness;
    map_options.minsup = options.minsup;
    auto mapped = MapTable(raw, map_options);
    QARM_CHECK(mapped.ok());
    // pid-unique: each gtest TEST runs as its own concurrent ctest
    // process, and WriteQbt rewrites in place under a peer's mmap.
    qbt_path = ::testing::TempDir() + "/dist_respawn_" +
               std::to_string(::getpid()) + ".qbt";
    QbtWriteOptions write_options;
    write_options.rows_per_block = 64;
    QARM_CHECK(WriteQbt(*mapped, qbt_path, write_options).ok());
    auto source = QbtFileSource::Open(qbt_path);
    QARM_CHECK(source.ok());
    num_blocks = (*source)->num_blocks();
    QARM_CHECK(num_blocks >= kWorkers * 2);
  }
};

const RespawnCorpus& Corpus() {
  static const RespawnCorpus* corpus = new RespawnCorpus();
  return *corpus;
}

std::vector<std::string> FaultFreeBaseline() {
  auto source = QbtFileSource::Open(Corpus().qbt_path);
  QARM_CHECK(source.ok());
  auto result = QuantitativeRuleMiner(Corpus().options).MineStreamed(**source);
  QARM_CHECK(result.ok());
  return RulesAsJson(*result);
}

// Every worker is killed on its first block read (rate=1, generation 0);
// the coordinator respawns each one exactly once and the replayed pass-1
// scans still merge into the fault-free rules.
TEST(DistRespawnTest, KillEveryWorkerDuringPass1) {
  MinerOptions options = Corpus().options;
  options.num_workers = kWorkers;
  options.inject_faults_spec = "seed=9,rate=1,kinds=kill,fails=1";
  Result<MiningResult> result =
      MineDistributedQbt(Corpus().qbt_path, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(RulesAsJson(*result), FaultFreeBaseline());
  EXPECT_EQ(result->stats.dist.num_workers, kWorkers);
  EXPECT_EQ(result->stats.dist.workers_respawned, kWorkers);
}

// `after` delays the kill past every worker's pass-1 scan (the injector's
// read ordinal is cumulative per worker incarnation), so each worker dies
// mid-pass-2 holding a count request. The respawn replays the catalog plus
// that one request against the worker's own shard only — nothing else is
// recounted — and the rules stay byte-identical.
TEST(DistRespawnTest, KillEveryWorkerMidCountingPass) {
  MinerOptions options = Corpus().options;
  options.num_workers = kWorkers;
  const size_t max_shard_blocks =
      (Corpus().num_blocks + kWorkers - 1) / kWorkers;
  options.inject_faults_spec =
      StrFormat("seed=9,rate=1,kinds=kill,fails=1,after=%zu",
                max_shard_blocks);
  Result<MiningResult> result =
      MineDistributedQbt(Corpus().qbt_path, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(RulesAsJson(*result), FaultFreeBaseline());
  EXPECT_EQ(result->stats.dist.workers_respawned, kWorkers);
}

// Flips a worker-side crash hook on for the duration of one distributed
// run. The hooks only fire at generation 0, so the respawned incarnations
// always survive.
MiningResult MineWithWorkerCrashHook(const char* env) {
  MinerOptions options = Corpus().options;
  options.num_workers = kWorkers;
  ::setenv(env, "1", 1);
  Result<MiningResult> result =
      MineDistributedQbt(Corpus().qbt_path, options);
  ::unsetenv(env);
  QARM_CHECK(result.ok());
  return std::move(result).value();
}

// Every worker dies immediately after its pass-1 reply, so the EOF lands on
// the coordinator's very next SendFrame — inside PublishCatalog itself.
// RespawnAndReplay must treat the catalog as the in-flight request (sent
// exactly once, not doubled as replay-state + request) and the merged rules
// must match the fault-free run.
TEST(DistRespawnTest, KillEveryWorkerDuringCatalogBroadcast) {
  const MiningResult result =
      MineWithWorkerCrashHook("QARM_DIST_TEST_EXIT_BEFORE_CATALOG");
  EXPECT_EQ(RulesAsJson(result), FaultFreeBaseline());
  EXPECT_EQ(result.stats.dist.num_workers, kWorkers);
  EXPECT_EQ(result.stats.dist.workers_respawned, kWorkers);
}

// Every worker dies on *receipt* of the catalog frame, before applying it:
// the broadcast send itself succeeds, and the death surfaces at the first
// count request. The replay must re-deliver the catalog before that request
// or the fresh worker answers "count request arrived before the catalog".
TEST(DistRespawnTest, KillEveryWorkerOnCatalogReceipt) {
  const MiningResult result =
      MineWithWorkerCrashHook("QARM_DIST_TEST_EXIT_ON_CATALOG");
  EXPECT_EQ(RulesAsJson(result), FaultFreeBaseline());
  EXPECT_EQ(result.stats.dist.workers_respawned, kWorkers);
}

// A worker that dies on every incarnation (fails far above any generation)
// must exhaust kMaxRespawnsPerWorker and surface a clean IOError instead of
// hanging or looping forever.
TEST(DistRespawnTest, PermanentlyDyingWorkerExhaustsRespawnBudget) {
  MinerOptions options = Corpus().options;
  options.num_workers = kWorkers;
  options.inject_faults_spec = "seed=9,rate=1,kinds=kill,fails=100";
  Result<MiningResult> result =
      MineDistributedQbt(Corpus().qbt_path, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_NE(result.status().ToString().find("giving up"), std::string::npos)
      << result.status().ToString();
}

// A deterministic in-worker failure (unrecoverable read errors, not a
// crash) comes back as a kError reply; the coordinator fails the run
// immediately rather than respawning a worker that would fail identically.
TEST(DistRespawnTest, DeterministicWorkerErrorDoesNotRespawn) {
  MinerOptions options = Corpus().options;
  options.num_workers = kWorkers;
  // Every block read fails with EIO more times than the retry budget.
  options.inject_faults_spec =
      "seed=5,rate=1,kinds=eio,fails=10,attempts=2";
  Result<MiningResult> result =
      MineDistributedQbt(Corpus().qbt_path, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_NE(result.status().ToString().find("worker"), std::string::npos)
      << result.status().ToString();
  EXPECT_EQ(result.status().ToString().find("giving up"), std::string::npos)
      << result.status().ToString();
}

}  // namespace
}  // namespace qarm
