// The byte-stream transports under hostile delivery: frames reassembled
// from reads split at every byte boundary, mid-frame EOF at every
// truncation length (clean IOError, never a hang), real loopback TCP with
// read deadlines, and the deterministic network-fault injector
// (conn_reset / partial_write / generation gating) that the coordinator's
// reconnect path is built on.
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/macros.h"
#include "dist/framing.h"
#include "dist/transport.h"

namespace qarm {
namespace {

// In-memory transport that serves reads from a captured byte string in
// chunks of at most `chunk` bytes — the short-read torture device. Reads
// past the end return 0 (EOF). Writes append to `written`.
class ChunkedTransport : public Transport {
 public:
  ChunkedTransport(std::string bytes, size_t chunk)
      : bytes_(std::move(bytes)), chunk_(chunk) {}

  Status Read(void* data, size_t size, size_t* bytes_read) override {
    const size_t n = std::min({size, chunk_, bytes_.size() - pos_});
    std::memcpy(data, bytes_.data() + pos_, n);
    pos_ += n;
    *bytes_read = n;
    return Status::OK();
  }
  Status Write(const void* data, size_t size) override {
    written.append(static_cast<const char*>(data), size);
    return Status::OK();
  }
  void Close() override {}

  std::string written;

 private:
  std::string bytes_;
  size_t chunk_ = 1;
  size_t pos_ = 0;
};

std::string FrameBytes(uint32_t type, const std::string& payload) {
  ChunkedTransport capture("", 1);
  const Status sent = SendFrame(capture, type, payload);
  QARM_CHECK(sent.ok());
  return capture.written;
}

TEST(DistTransportTest, SendFrameIssuesASingleWrite) {
  // One Write per frame is what lets the partial-write fault tear a real
  // frame boundary; the test pins the contract.
  class CountingTransport : public ChunkedTransport {
   public:
    CountingTransport() : ChunkedTransport("", 1) {}
    Status Write(const void* data, size_t size) override {
      ++writes;
      return ChunkedTransport::Write(data, size);
    }
    size_t writes = 0;
  };
  CountingTransport transport;
  ASSERT_TRUE(SendFrame(transport, 3, "payload").ok());
  EXPECT_EQ(transport.writes, 1u);
  EXPECT_EQ(transport.written.size(),
            kDistFrameHeaderSize + std::strlen("payload") + 4);
}

TEST(DistTransportTest, FrameSurvivesEveryReadGranularity) {
  const std::string payload = "quantitative association rules";
  const std::string bytes = FrameBytes(6, payload);
  for (size_t chunk = 1; chunk <= bytes.size(); ++chunk) {
    ChunkedTransport transport(bytes, chunk);
    Result<DistFrame> frame = RecvFrame(transport);
    ASSERT_TRUE(frame.ok()) << "chunk=" << chunk << ": "
                            << frame.status().ToString();
    EXPECT_EQ(frame->type, 6u);
    EXPECT_EQ(frame->payload, payload);
  }
}

TEST(DistTransportTest, EveryTruncationIsACleanIoError) {
  const std::string bytes = FrameBytes(2, "torn mid-flight");
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    ChunkedTransport transport(bytes.substr(0, cut), 3);
    Result<DistFrame> frame = RecvFrame(transport);
    ASSERT_FALSE(frame.ok()) << "cut=" << cut;
    EXPECT_EQ(frame.status().code(), StatusCode::kIOError) << "cut=" << cut;
  }
}

// Loopback server: accepts one connection and hands the fd to the test.
class LoopbackPeer {
 public:
  void Listen() {
    auto fd = TcpListen("127.0.0.1", 0, &port_);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    listen_fd_ = *fd;
  }
  int Accept() {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    EXPECT_GE(fd, 0);
    return fd;
  }
  ~LoopbackPeer() {
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }
  uint16_t port() const { return port_; }

 private:
  int listen_fd_ = -1;
  uint16_t port_ = 0;
};

TEST(DistTransportTest, TcpLoopbackRoundTripsFrames) {
  LoopbackPeer peer;
  peer.Listen();
  std::thread server([&]() {
    TcpTransport transport(peer.Accept(), /*io_timeout_ms=*/5000,
                           /*read_timeout_ms=*/5000);
    Result<DistFrame> request = RecvFrame(transport);
    ASSERT_TRUE(request.ok()) << request.status().ToString();
    EXPECT_EQ(request->payload, "ping");
    ASSERT_TRUE(SendFrame(transport, request->type + 1, "pong").ok());
  });
  auto fd = TcpConnect("127.0.0.1", peer.port(), 5000);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  TcpTransport transport(*fd, 5000, 5000);
  ASSERT_TRUE(SendFrame(transport, 1, "ping").ok());
  Result<DistFrame> reply = RecvFrame(transport);
  server.join();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, 2u);
  EXPECT_EQ(reply->payload, "pong");
}

TEST(DistTransportTest, HostnamesResolve) {
  uint16_t port = 0;
  auto listen_fd = TcpListen("localhost", 0, &port);
  ASSERT_TRUE(listen_fd.ok()) << listen_fd.status().ToString();
  auto fd = TcpConnect("localhost", port, 2000);
  EXPECT_TRUE(fd.ok()) << fd.status().ToString();
  if (fd.ok()) ::close(*fd);
  ::close(*listen_fd);
  EXPECT_FALSE(TcpConnect("no.such.host.invalid", 1, 500).ok());
}

TEST(DistTransportTest, ReadDeadlineTripsInsteadOfHanging) {
  LoopbackPeer peer;
  peer.Listen();
  std::thread server([&]() {
    // Accept, then go silent: the client's read deadline must fire.
    const int fd = peer.Accept();
    std::this_thread::sleep_for(std::chrono::milliseconds(900));
    ::close(fd);
  });
  auto fd = TcpConnect("127.0.0.1", peer.port(), 2000);
  ASSERT_TRUE(fd.ok());
  TcpTransport transport(*fd, /*io_timeout_ms=*/200, /*read_timeout_ms=*/200);
  Result<DistFrame> frame = RecvFrame(transport);
  server.join();
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().ToString().find("timed out"), std::string::npos)
      << frame.status().ToString();
}

// Runs one faulted exchange: the server sends `frames` frames through a
// transport armed with `faults`; returns the client-side outcome of
// reading them all.
struct FaultOutcome {
  std::vector<Status> server_sends;
  std::vector<Result<DistFrame>> client_reads;
};

FaultOutcome ExchangeWithFaults(const NetFaultInjection& faults,
                                size_t frames) {
  FaultOutcome outcome;
  LoopbackPeer peer;
  peer.Listen();
  std::thread server([&]() {
    TcpTransport transport(peer.Accept(), 5000, 5000, faults);
    for (size_t i = 0; i < frames; ++i) {
      outcome.server_sends.push_back(
          SendFrame(transport, 1, "frame " + std::to_string(i)));
    }
  });
  auto fd = TcpConnect("127.0.0.1", peer.port(), 5000);
  QARM_CHECK(fd.ok());
  TcpTransport transport(*fd, 5000, 5000);
  server.join();  // all sends (and any RST) land before the client reads
  for (size_t i = 0; i < frames; ++i) {
    outcome.client_reads.push_back(RecvFrame(transport));
  }
  return outcome;
}

NetFaultInjection EveryWriteFaults(FaultKind kind) {
  NetFaultInjection faults;
  faults.enabled = true;
  faults.seed = 11;
  faults.rate = 1.0;
  faults.after_writes = 1;  // first frame lands, second faults
  faults.generation = 0;
  faults.fails = 1;
  faults.kinds = static_cast<uint32_t>(kind);
  return faults;
}

TEST(DistTransportTest, ConnResetFaultSurfacesAsIoError) {
  const FaultOutcome outcome =
      ExchangeWithFaults(EveryWriteFaults(FaultKind::kConnReset), 2);
  ASSERT_TRUE(outcome.server_sends[0].ok());
  EXPECT_NE(outcome.server_sends[1].ToString().find("connection reset"),
            std::string::npos);
  ASSERT_TRUE(outcome.client_reads[0].ok());
  EXPECT_EQ(outcome.client_reads[0]->payload, "frame 0");
  ASSERT_FALSE(outcome.client_reads[1].ok());
  EXPECT_EQ(outcome.client_reads[1].status().code(), StatusCode::kIOError);
}

TEST(DistTransportTest, PartialWriteTearsTheFrameCleanly) {
  const FaultOutcome outcome =
      ExchangeWithFaults(EveryWriteFaults(FaultKind::kPartialWrite), 2);
  ASSERT_TRUE(outcome.server_sends[0].ok());
  EXPECT_NE(outcome.server_sends[1].ToString().find("partial write"),
            std::string::npos);
  ASSERT_TRUE(outcome.client_reads[0].ok());
  // Half a frame then RST: IOError (EOF, reset, or CRC), never a hang.
  ASSERT_FALSE(outcome.client_reads[1].ok());
  EXPECT_EQ(outcome.client_reads[1].status().code(), StatusCode::kIOError);
}

TEST(DistTransportTest, FaultsAreGatedByGeneration) {
  // The same schedule at generation >= fails delivers everything — this is
  // what makes a reconnected session's replay run clean.
  NetFaultInjection faults = EveryWriteFaults(FaultKind::kConnReset);
  faults.generation = 1;  // == fails
  const FaultOutcome outcome = ExchangeWithFaults(faults, 2);
  EXPECT_TRUE(outcome.server_sends[1].ok());
  ASSERT_TRUE(outcome.client_reads[1].ok());
  EXPECT_EQ(outcome.client_reads[1]->payload, "frame 1");
}

TEST(DistTransportTest, FaultScheduleIsDeterministic) {
  NetFaultInjection faults;
  faults.enabled = true;
  faults.seed = 77;
  faults.rate = 0.5;
  faults.fails = 1;
  faults.kinds = static_cast<uint32_t>(FaultKind::kConnReset) |
                 static_cast<uint32_t>(FaultKind::kPartialWrite);
  // Two independent exchanges with the same seed fault at the same write
  // ordinal with the same kind.
  const FaultOutcome first = ExchangeWithFaults(faults, 6);
  const FaultOutcome second = ExchangeWithFaults(faults, 6);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(first.server_sends[i].ToString(),
              second.server_sends[i].ToString())
        << "write " << i;
  }
  // And the 0.5 rate actually split the schedule.
  size_t faulted = 0;
  for (const Status& status : first.server_sends) {
    if (!status.ok()) ++faulted;
  }
  EXPECT_GT(faulted, 0u);
}

}  // namespace
}  // namespace qarm
