// Fault tolerance over the TCP transport, end to end: a worker process
// SIGKILL-dead mid-pass is redistributed to a survivor; an injected
// connection reset reconnects and replays on the same endpoint; a stalled
// reply trips the read deadline (never hangs); and an unkillable fault
// schedule exhausts the respawn budget with a clean IOError. Every
// recovered run must be byte-identical to the single-process baseline —
// recovery that changes the answer is just a slower bug.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/macros.h"
#include "core/miner.h"
#include "dist/dist_miner.h"
#include "dist/worker_server.h"
#include "dist/dist_corpora.h"

namespace qarm {
namespace {

using disttest::DistCorpus;
using disttest::FinancialCorpus;
using disttest::MustMineStreamed;
using disttest::RulesAsJson;

// A real worker-server process, forked with a kill-switch env var so its
// first session dies like `kill -9` partway through the pass sequence.
// Forked before any in-process server spawns threads.
struct ChildWorker {
  pid_t pid = -1;
  uint16_t port = 0;

  ~ChildWorker() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
  }
};

ChildWorker SpawnDyingWorker(const std::string& qbt_path,
                             const char* frames) {
  int pipe_fds[2];
  QARM_CHECK(::pipe(pipe_fds) == 0);
  const pid_t pid = ::fork();
  QARM_CHECK(pid >= 0);
  if (pid == 0) {
    ::close(pipe_fds[0]);
    ::setenv("QARM_DIST_TEST_EXIT_AFTER_FRAMES", frames, 1);
    WorkerServerOptions options;
    options.qbt_path = qbt_path;
    auto server = WorkerServer::Start(options);
    if (!server.ok()) std::_Exit(3);
    const uint16_t port = (*server)->port();
    if (::write(pipe_fds[1], &port, sizeof(port)) != sizeof(port)) {
      std::_Exit(3);
    }
    ::close(pipe_fds[1]);
    for (;;) ::pause();  // the kill switch ends the process
  }
  ::close(pipe_fds[1]);
  ChildWorker child;
  child.pid = pid;
  QARM_CHECK(::read(pipe_fds[0], &child.port, sizeof(child.port)) ==
             static_cast<ssize_t>(sizeof(child.port)));
  ::close(pipe_fds[0]);
  return child;
}

MinerOptions TcpOptions(const DistCorpus& corpus,
                        std::vector<std::string> endpoints) {
  MinerOptions options = corpus.options;
  options.worker_endpoints = std::move(endpoints);
  options.dist_connect_attempts = 3;
  options.dist_connect_backoff_ms = 10.0;
  return options;
}

const DistWorkerStats& WorkerStats(const MiningResult& result, size_t w) {
  QARM_CHECK(w < result.stats.dist.workers.size());
  return result.stats.dist.workers[w];
}

// A worker-server process dies (exit 137, the SIGKILL status) while its
// session is mid-run. Its endpoint refuses to come back, so the
// coordinator must redistribute the shard to the surviving server and
// still produce byte-identical rules.
TEST(TcpFaultTest, DeadWorkerProcessRedistributesToSurvivor) {
  const DistCorpus& corpus = FinancialCorpus();
  // Fork first: the child must not inherit server threads.
  const ChildWorker child = SpawnDyingWorker(corpus.qbt_path, "2");
  WorkerServerOptions server_options;
  server_options.qbt_path = corpus.qbt_path;
  auto survivor = WorkerServer::Start(server_options);
  ASSERT_TRUE(survivor.ok()) << survivor.status().ToString();

  const std::string child_endpoint =
      "127.0.0.1:" + std::to_string(child.port);
  const std::string survivor_endpoint =
      "127.0.0.1:" + std::to_string((*survivor)->port());
  auto result = MineDistributedQbt(
      corpus.qbt_path, TcpOptions(corpus, {child_endpoint,
                                           survivor_endpoint}));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(RulesAsJson(*result),
            RulesAsJson(MustMineStreamed(corpus, 1)));

  // Worker 0's shard ended up on the survivor.
  const DistWorkerStats& stats = WorkerStats(*result, 0);
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_GE(stats.redistributed, 1u);
  EXPECT_GE(stats.frames_retried, 1u);
  EXPECT_EQ(stats.endpoint, survivor_endpoint);
  EXPECT_GE(result->stats.dist.workers_respawned, 1u);
  // The survivor carried its own session plus the redistributed one.
  EXPECT_GE((*survivor)->sessions_served(), 2u);
}

// An injected connection reset mid-pass: the endpoint itself stays up, so
// the reconnect lands on the same server (replay, not redistribution) at
// generation 1, where the deterministic schedule no longer faults.
TEST(TcpFaultTest, InjectedConnResetReplaysOnSameEndpoint) {
  const DistCorpus& corpus = FinancialCorpus();
  WorkerServerOptions server_options;
  server_options.qbt_path = corpus.qbt_path;
  auto server = WorkerServer::Start(server_options);
  ASSERT_TRUE(server.ok());
  const std::string endpoint =
      "127.0.0.1:" + std::to_string((*server)->port());

  MinerOptions options = TcpOptions(corpus, {endpoint, endpoint});
  // Write ordinal 2 is the first reply after HelloAck + pass-1: the reset
  // lands mid-pass on both workers' generation-0 sessions.
  options.inject_faults_spec =
      "seed=3,rate=1,fails=1,after=2,kinds=conn_reset";
  auto result = MineDistributedQbt(corpus.qbt_path, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(RulesAsJson(*result),
            RulesAsJson(MustMineStreamed(corpus, 1)));

  size_t reconnects = 0;
  for (size_t w = 0; w < result->stats.dist.workers.size(); ++w) {
    const DistWorkerStats& stats = WorkerStats(*result, w);
    reconnects += stats.reconnects;
    EXPECT_EQ(stats.redistributed, 0u) << "worker " << w;
    EXPECT_EQ(stats.endpoint, endpoint);
  }
  EXPECT_GE(reconnects, 1u);
}

// A stalled reply write: the coordinator's per-frame read deadline fires
// (counted as a heartbeat timeout) instead of hanging, and the replayed
// generation completes byte-identically.
TEST(TcpFaultTest, StalledWorkerTripsDeadlineAndRecovers) {
  const DistCorpus& corpus = FinancialCorpus();
  WorkerServerOptions server_options;
  server_options.qbt_path = corpus.qbt_path;
  auto server = WorkerServer::Start(server_options);
  ASSERT_TRUE(server.ok());
  const std::string endpoint =
      "127.0.0.1:" + std::to_string((*server)->port());

  MinerOptions options = TcpOptions(corpus, {endpoint});
  options.dist_io_timeout_ms = 400;
  options.dist_heartbeat_ms = 100;
  options.inject_faults_spec =
      "seed=9,rate=1,fails=1,after=1,kinds=stall,stall=1500";
  auto result = MineDistributedQbt(corpus.qbt_path, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(RulesAsJson(*result),
            RulesAsJson(MustMineStreamed(corpus, 1)));
  const DistWorkerStats& stats = WorkerStats(*result, 0);
  EXPECT_GE(stats.heartbeat_timeouts, 1u);
  EXPECT_GE(stats.reconnects, 1u);
}

// Every generation faults at the same write: after kMaxRespawnsPerWorker
// reconnects the pool gives up with a clean IOError naming the worker —
// bounded, never a hang, and never a wrong answer.
TEST(TcpFaultTest, UnkillableFaultScheduleExhaustsTheBudget) {
  const DistCorpus& corpus = FinancialCorpus();
  WorkerServerOptions server_options;
  server_options.qbt_path = corpus.qbt_path;
  auto server = WorkerServer::Start(server_options);
  ASSERT_TRUE(server.ok());
  const std::string endpoint =
      "127.0.0.1:" + std::to_string((*server)->port());

  MinerOptions options = TcpOptions(corpus, {endpoint});
  // fails=100 far exceeds the budget: generation N faults for every N the
  // pool can afford, always at the first post-handshake reply.
  options.inject_faults_spec =
      "seed=3,rate=1,fails=100,after=1,kinds=conn_reset";
  auto result = MineDistributedQbt(corpus.qbt_path, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  EXPECT_NE(result.status().ToString().find("giving up"), std::string::npos)
      << result.status().ToString();
}

// The liveness channel itself: a healthy but slow pass emits heartbeats
// that the coordinator counts and skips without declaring death.
TEST(TcpFaultTest, HeartbeatsFlowDuringSlowPasses) {
  const DistCorpus& corpus = FinancialCorpus();
  WorkerServerOptions server_options;
  server_options.qbt_path = corpus.qbt_path;
  auto server = WorkerServer::Start(server_options);
  ASSERT_TRUE(server.ok());
  const std::string endpoint =
      "127.0.0.1:" + std::to_string((*server)->port());

  MinerOptions options = TcpOptions(corpus, {endpoint});
  // A stall shorter than the deadline: the reply is late but alive, and
  // the 50 ms heartbeats keep arriving while the coordinator waits.
  options.dist_io_timeout_ms = 10000;
  options.dist_heartbeat_ms = 50;
  options.inject_faults_spec =
      "seed=9,rate=1,fails=1,after=1,kinds=stall,stall=400";
  auto result = MineDistributedQbt(corpus.qbt_path, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(RulesAsJson(*result),
            RulesAsJson(MustMineStreamed(corpus, 1)));
  const DistWorkerStats& stats = WorkerStats(*result, 0);
  EXPECT_EQ(stats.reconnects, 0u);
  EXPECT_EQ(stats.heartbeat_timeouts, 0u);
}

}  // namespace
}  // namespace qarm
