// The distributed acceptance gate: MineDistributedQbt must emit rules
// byte-identical to the single-process streamed miner at every worker and
// thread count — on the financial corpus, with taxonomies, and with
// missing values. Worker processes fork from the test binary, so any
// divergence in the shard/merge path fails here as a rule diff, not a
// statistical anomaly.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/macros.h"
#include "common/random.h"
#include "core/miner.h"
#include "core/report.h"
#include "dist/dist_miner.h"
#include "partition/mapper.h"
#include "partition/taxonomy.h"
#include "storage/qbt_writer.h"
#include "storage/record_source.h"
#include "table/datagen.h"
#include "table/table.h"

namespace qarm {
namespace {

std::vector<std::string> RulesAsJson(const MiningResult& result) {
  std::vector<std::string> out;
  out.reserve(result.rules.size());
  for (const QuantRule& rule : result.rules) {
    out.push_back(RuleToJson(rule, result.mapped));
  }
  return out;
}

// A mined corpus on disk plus the options that partitioned it. Each is
// built once (static) and shared by the whole worker x thread matrix.
struct DistCorpus {
  std::string qbt_path;
  MinerOptions options;
  size_t num_blocks = 0;
};

DistCorpus BuildCorpus(const Table& table, const MinerOptions& options,
                       size_t rows_per_block, const std::string& tag) {
  MapOptions map_options;
  map_options.partial_completeness = options.partial_completeness;
  map_options.minsup = options.minsup;
  map_options.num_intervals_override = options.num_intervals_override;
  map_options.taxonomies = options.taxonomies;
  auto mapped = MapTable(table, map_options);
  QARM_CHECK(mapped.ok());
  DistCorpus corpus;
  corpus.qbt_path = ::testing::TempDir() + "/dist_" + tag + ".qbt";
  corpus.options = options;
  QbtWriteOptions write_options;
  write_options.rows_per_block = rows_per_block;
  QARM_CHECK(WriteQbt(*mapped, corpus.qbt_path, write_options).ok());
  auto source = QbtFileSource::Open(corpus.qbt_path);
  QARM_CHECK(source.ok());
  corpus.num_blocks = (*source)->num_blocks();
  return corpus;
}

const DistCorpus& FinancialCorpus() {
  static const DistCorpus* corpus = []() {
    MinerOptions options;
    options.minsup = 0.20;
    options.minconf = 0.40;
    options.max_support = 0.40;
    options.partial_completeness = 3.0;
    options.interest_level = 1.2;
    return new DistCorpus(BuildCorpus(MakeFinancialDataset(1500, 91), options,
                                      /*rows_per_block=*/128, "financial"));
  }();
  return *corpus;
}

const DistCorpus& TaxonomyCorpus() {
  static const DistCorpus* corpus = []() {
    Schema schema =
        Schema::Make(
            {{"drink", AttributeKind::kCategorical, ValueType::kString},
             {"pastry", AttributeKind::kCategorical, ValueType::kString}})
            .value();
    Table table(schema);
    Rng rng(99);
    for (size_t i = 0; i < 3000; ++i) {
      double u = rng.UniformDouble();
      std::string drink;
      std::string pastry;
      if (u < 0.10) {
        drink = "coffee";
        pastry = "yes";
      } else if (u < 0.20) {
        drink = "tea";
        pastry = "yes";
      } else if (u < 0.60) {
        drink = "soda";
        pastry = rng.Bernoulli(0.1) ? "yes" : "no";
      } else {
        drink = "juice";
        pastry = rng.Bernoulli(0.1) ? "yes" : "no";
      }
      table.AppendRowUnchecked(
          {Value(std::move(drink)), Value(std::move(pastry))});
    }
    MinerOptions options;
    options.minsup = 0.15;
    options.minconf = 0.60;
    options.taxonomies.emplace_back(
        "drink", Taxonomy::Make({{"hot", "drinks"},
                                 {"cold", "drinks"},
                                 {"coffee", "hot"},
                                 {"tea", "hot"},
                                 {"soda", "cold"},
                                 {"juice", "cold"}})
                     .value());
    return new DistCorpus(
        BuildCorpus(table, options, /*rows_per_block=*/256, "taxonomy"));
  }();
  return *corpus;
}

const DistCorpus& MissingValuesCorpus() {
  static const DistCorpus* corpus = []() {
    Schema schema =
        Schema::Make({{"x", AttributeKind::kQuantitative, ValueType::kInt64},
                      {"c", AttributeKind::kCategorical, ValueType::kString}})
            .value();
    Table table(schema);
    Rng rng(7);
    for (size_t i = 0; i < 1200; ++i) {
      int64_t x = rng.UniformInt(0, 9);
      std::vector<Value> row(2);
      row[0] = rng.Bernoulli(0.2) ? Value::Null() : Value(x);
      row[1] = rng.Bernoulli(0.2)
                   ? Value::Null()
                   : Value(x < 5 ? std::string("lo") : std::string("hi"));
      table.AppendRowUnchecked(row);
    }
    MinerOptions options;
    options.minsup = 0.10;
    options.minconf = 0.40;
    options.num_intervals_override = 5;
    return new DistCorpus(
        BuildCorpus(table, options, /*rows_per_block=*/128, "missing"));
  }();
  return *corpus;
}

MiningResult MustMineStreamed(const DistCorpus& corpus, size_t threads) {
  MinerOptions options = corpus.options;
  options.num_threads = threads;
  auto source = QbtFileSource::Open(corpus.qbt_path);
  QARM_CHECK(source.ok());
  auto result = QuantitativeRuleMiner(options).MineStreamed(**source);
  QARM_CHECK(result.ok());
  return std::move(result).value();
}

MiningResult MustMineDistributed(const DistCorpus& corpus, size_t workers,
                                 size_t threads) {
  MinerOptions options = corpus.options;
  options.num_workers = workers;
  options.num_threads = threads;
  auto result = MineDistributedQbt(corpus.qbt_path, options);
  QARM_CHECK(result.ok());
  return std::move(result).value();
}

// The full matrix for one corpus: every worker x thread combination must
// reproduce the single-process rules bit for bit, without respawns.
void ExpectMatrixMatchesBaseline(const DistCorpus& corpus) {
  ASSERT_GE(corpus.num_blocks, 4u) << "fixture too small to shard";
  const MiningResult baseline = MustMineStreamed(corpus, /*threads=*/1);
  const std::vector<std::string> want = RulesAsJson(baseline);
  ASSERT_FALSE(want.empty());

  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " threads=" + std::to_string(threads));
      const MiningResult got = MustMineDistributed(corpus, workers, threads);
      EXPECT_EQ(RulesAsJson(got), want);
      ASSERT_EQ(got.frequent_itemsets.size(),
                baseline.frequent_itemsets.size());
      for (size_t i = 0; i < baseline.frequent_itemsets.size(); ++i) {
        EXPECT_EQ(got.frequent_itemsets[i].count,
                  baseline.frequent_itemsets[i].count)
            << "itemset " << i;
      }
      if (workers > 1) {
        EXPECT_EQ(got.stats.dist.num_workers, workers);
        EXPECT_EQ(got.stats.dist.workers_respawned, 0u);
        // Every mined pass exchanged real bytes with the shards.
        ASSERT_FALSE(got.stats.dist.passes.empty());
        for (const DistPassStats& pass : got.stats.dist.passes) {
          EXPECT_GT(pass.bytes_sent, 0u) << "pass k=" << pass.k;
          EXPECT_GT(pass.bytes_received, 0u) << "pass k=" << pass.k;
        }
      } else {
        // workers=1 short-circuits to the in-process path.
        EXPECT_EQ(got.stats.dist.num_workers, 0u);
      }
    }
  }
}

TEST(DistMinerTest, FinancialMatrixByteIdentical) {
  ExpectMatrixMatchesBaseline(FinancialCorpus());
}

TEST(DistMinerTest, TaxonomyMatrixByteIdentical) {
  ExpectMatrixMatchesBaseline(TaxonomyCorpus());
}

TEST(DistMinerTest, MissingValuesMatrixByteIdentical) {
  ExpectMatrixMatchesBaseline(MissingValuesCorpus());
}

// More workers than blocks: the pool clamps to one worker per block rather
// than forking idle processes, and the rules still match.
TEST(DistMinerTest, WorkerCountClampsToBlockCount) {
  const DistCorpus& corpus = MissingValuesCorpus();
  const MiningResult baseline = MustMineStreamed(corpus, 1);
  const MiningResult got =
      MustMineDistributed(corpus, /*workers=*/64, /*threads=*/1);
  EXPECT_EQ(RulesAsJson(got), RulesAsJson(baseline));
  EXPECT_EQ(got.stats.dist.num_workers, corpus.num_blocks);
}

// The pass-2 exchange ships the implicit-C2 flag, not materialized pairs:
// the request for k=2 must be orders of magnitude smaller than the counts
// coming back.
TEST(DistMinerTest, ImplicitPairRequestsStaySmall) {
  const MiningResult got =
      MustMineDistributed(FinancialCorpus(), /*workers=*/2, /*threads=*/1);
  const DistPassStats* pass2 = nullptr;
  for (const DistPassStats& pass : got.stats.dist.passes) {
    if (pass.k == 2) pass2 = &pass;
  }
  ASSERT_NE(pass2, nullptr);
  EXPECT_LT(pass2->bytes_sent, 1024u);
  EXPECT_GT(pass2->bytes_received, pass2->bytes_sent * 10);
}

}  // namespace
}  // namespace qarm
