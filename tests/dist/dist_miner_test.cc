// The distributed acceptance gate: MineDistributedQbt must emit rules
// byte-identical to the single-process streamed miner at every worker and
// thread count — on the financial corpus, with taxonomies, and with
// missing values. Worker processes fork from the test binary, so any
// divergence in the shard/merge path fails here as a rule diff, not a
// statistical anomaly. (The TCP transport runs the same matrix in
// tcp_miner_test.cc; the corpora live in dist_corpora.h.)
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/macros.h"
#include "core/miner.h"
#include "dist/dist_miner.h"
#include "dist/dist_corpora.h"

namespace qarm {
namespace {

using disttest::DistCorpus;
using disttest::FinancialCorpus;
using disttest::MissingValuesCorpus;
using disttest::MustMineStreamed;
using disttest::RulesAsJson;
using disttest::TaxonomyCorpus;

MiningResult MustMineDistributed(const DistCorpus& corpus, size_t workers,
                                 size_t threads) {
  MinerOptions options = corpus.options;
  options.num_workers = workers;
  options.num_threads = threads;
  auto result = MineDistributedQbt(corpus.qbt_path, options);
  QARM_CHECK(result.ok());
  return std::move(result).value();
}

// The full matrix for one corpus: every worker x thread combination must
// reproduce the single-process rules bit for bit, without respawns.
void ExpectMatrixMatchesBaseline(const DistCorpus& corpus) {
  ASSERT_GE(corpus.num_blocks, 4u) << "fixture too small to shard";
  const MiningResult baseline = MustMineStreamed(corpus, /*threads=*/1);
  const std::vector<std::string> want = RulesAsJson(baseline);
  ASSERT_FALSE(want.empty());

  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " threads=" + std::to_string(threads));
      const MiningResult got = MustMineDistributed(corpus, workers, threads);
      EXPECT_EQ(RulesAsJson(got), want);
      ASSERT_EQ(got.frequent_itemsets.size(),
                baseline.frequent_itemsets.size());
      for (size_t i = 0; i < baseline.frequent_itemsets.size(); ++i) {
        EXPECT_EQ(got.frequent_itemsets[i].count,
                  baseline.frequent_itemsets[i].count)
            << "itemset " << i;
      }
      if (workers > 1) {
        EXPECT_EQ(got.stats.dist.num_workers, workers);
        EXPECT_EQ(got.stats.dist.workers_respawned, 0u);
        // Every mined pass exchanged real bytes with the shards.
        ASSERT_FALSE(got.stats.dist.passes.empty());
        for (const DistPassStats& pass : got.stats.dist.passes) {
          EXPECT_GT(pass.bytes_sent, 0u) << "pass k=" << pass.k;
          EXPECT_GT(pass.bytes_received, 0u) << "pass k=" << pass.k;
        }
      } else {
        // workers=1 short-circuits to the in-process path.
        EXPECT_EQ(got.stats.dist.num_workers, 0u);
      }
    }
  }
}

TEST(DistMinerTest, FinancialMatrixByteIdentical) {
  ExpectMatrixMatchesBaseline(FinancialCorpus());
}

TEST(DistMinerTest, TaxonomyMatrixByteIdentical) {
  ExpectMatrixMatchesBaseline(TaxonomyCorpus());
}

TEST(DistMinerTest, MissingValuesMatrixByteIdentical) {
  ExpectMatrixMatchesBaseline(MissingValuesCorpus());
}

// More workers than blocks: the pool clamps to one worker per block rather
// than forking idle processes, and the rules still match.
TEST(DistMinerTest, WorkerCountClampsToBlockCount) {
  const DistCorpus& corpus = MissingValuesCorpus();
  const MiningResult baseline = MustMineStreamed(corpus, 1);
  const MiningResult got =
      MustMineDistributed(corpus, /*workers=*/64, /*threads=*/1);
  EXPECT_EQ(RulesAsJson(got), RulesAsJson(baseline));
  EXPECT_EQ(got.stats.dist.num_workers, corpus.num_blocks);
}

// The pass-2 exchange ships the implicit-C2 flag, not materialized pairs:
// the request for k=2 must be orders of magnitude smaller than the counts
// coming back.
TEST(DistMinerTest, ImplicitPairRequestsStaySmall) {
  const MiningResult got =
      MustMineDistributed(FinancialCorpus(), /*workers=*/2, /*threads=*/1);
  const DistPassStats* pass2 = nullptr;
  for (const DistPassStats& pass : got.stats.dist.passes) {
    if (pass.k == 2) pass2 = &pass;
  }
  ASSERT_NE(pass2, nullptr);
  EXPECT_LT(pass2->bytes_sent, 1024u);
  EXPECT_GT(pass2->bytes_received, pass2->bytes_sent * 10);
}

}  // namespace
}  // namespace qarm
