// Checkpoint/resume across worker counts: the QCP fingerprint deliberately
// excludes num_workers (an execution knob, like num_threads), so a run
// interrupted at --workers=4 resumes at --workers=1 and vice versa, with
// rules byte-identical to an uninterrupted single-process run.
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/macros.h"
#include "core/miner.h"
#include "core/mining_checkpoint.h"
#include "core/report.h"
#include "dist/dist_miner.h"
#include "partition/mapper.h"
#include "storage/qbt_writer.h"
#include "storage/record_source.h"
#include "table/datagen.h"

namespace qarm {
namespace {

std::vector<std::string> RulesAsJson(const MiningResult& result) {
  std::vector<std::string> out;
  out.reserve(result.rules.size());
  for (const QuantRule& rule : result.rules) {
    out.push_back(RuleToJson(rule, result.mapped));
  }
  return out;
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

struct CheckpointCorpus {
  std::string qbt_path;
  MinerOptions options;

  CheckpointCorpus() {
    options.minsup = 0.20;
    options.minconf = 0.40;
    options.max_support = 0.45;
    options.partial_completeness = 3.0;
    options.interest_level = 1.2;
    Table raw = MakeFinancialDataset(1500, 42);
    MapOptions map_options;
    map_options.partial_completeness = options.partial_completeness;
    map_options.minsup = options.minsup;
    auto mapped = MapTable(raw, map_options);
    QARM_CHECK(mapped.ok());
    // pid-unique: each gtest TEST runs as its own concurrent ctest
    // process, and WriteQbt rewrites in place under a peer's mmap.
    qbt_path = ::testing::TempDir() + "/dist_checkpoint_" +
               std::to_string(::getpid()) + ".qbt";
    QbtWriteOptions write_options;
    write_options.rows_per_block = 128;
    QARM_CHECK(WriteQbt(*mapped, qbt_path, write_options).ok());
  }
};

const CheckpointCorpus& Corpus() {
  static const CheckpointCorpus* corpus = new CheckpointCorpus();
  return *corpus;
}

std::vector<std::string> Baseline() {
  auto source = QbtFileSource::Open(Corpus().qbt_path);
  QARM_CHECK(source.ok());
  auto result = QuantitativeRuleMiner(Corpus().options).MineStreamed(**source);
  QARM_CHECK(result.ok());
  return RulesAsJson(*result);
}

// Interrupt at `interrupt_workers` after pass 2, resume at `resume_workers`:
// the checkpoint must be accepted (not treated as stale) and the resumed
// rules must match the uninterrupted baseline bit for bit.
void ExpectResumeAcrossWorkerCounts(size_t interrupt_workers,
                                    size_t resume_workers) {
  const std::string tag = std::to_string(interrupt_workers) + "to" +
                          std::to_string(resume_workers);
  const std::string path =
      ::testing::TempDir() + "/dist_resume_" + tag + ".qcp";
  std::remove(path.c_str());

  MinerOptions interrupted = Corpus().options;
  interrupted.num_workers = interrupt_workers;
  interrupted.checkpoint_path = path;
  interrupted.stop_after_pass = 2;
  Result<MiningResult> killed =
      MineDistributedQbt(Corpus().qbt_path, interrupted);
  ASSERT_FALSE(killed.ok()) << tag;
  EXPECT_EQ(killed.status().code(), StatusCode::kCancelled) << tag;
  ASSERT_TRUE(FileExists(path)) << tag;

  MinerOptions resume = Corpus().options;
  resume.num_workers = resume_workers;
  resume.checkpoint_path = path;
  Result<MiningResult> resumed =
      MineDistributedQbt(Corpus().qbt_path, resume);
  ASSERT_TRUE(resumed.ok()) << tag << ": " << resumed.status().ToString();
  EXPECT_TRUE(resumed->stats.checkpoint.resumed) << tag;
  EXPECT_EQ(resumed->stats.checkpoint.resumed_passes, 2u) << tag;
  EXPECT_EQ(RulesAsJson(*resumed), Baseline()) << tag;
  // The completed resume cleans the checkpoint up.
  EXPECT_FALSE(FileExists(path)) << tag;
}

TEST(DistCheckpointTest, InterruptAtFourWorkersResumeAtOne) {
  ExpectResumeAcrossWorkerCounts(/*interrupt_workers=*/4,
                                 /*resume_workers=*/1);
}

TEST(DistCheckpointTest, InterruptAtOneWorkerResumeAtFour) {
  ExpectResumeAcrossWorkerCounts(/*interrupt_workers=*/1,
                                 /*resume_workers=*/4);
}

TEST(DistCheckpointTest, InterruptAtTwoWorkersResumeAtThree) {
  ExpectResumeAcrossWorkerCounts(/*interrupt_workers=*/2,
                                 /*resume_workers=*/3);
}

// The invariant behind the resumes above, checked directly: the mining
// fingerprint is a pure function of the result-defining parameters, so
// num_workers (like num_threads) must not perturb it.
TEST(DistCheckpointTest, FingerprintIgnoresExecutionKnobs) {
  auto source = QbtFileSource::Open(Corpus().qbt_path);
  ASSERT_TRUE(source.ok());
  MinerOptions options = Corpus().options;
  const uint64_t base = ComputeMiningFingerprint(options, **source);

  for (size_t workers : {size_t{2}, size_t{4}, size_t{64}}) {
    options.num_workers = workers;
    EXPECT_EQ(ComputeMiningFingerprint(options, **source), base)
        << "workers=" << workers;
  }
  options.num_threads = 8;
  EXPECT_EQ(ComputeMiningFingerprint(options, **source), base);
  options.inject_faults_spec = "seed=9,rate=1,kinds=kill";
  EXPECT_EQ(ComputeMiningFingerprint(options, **source), base);

  // And a result-defining knob must perturb it.
  options.minsup = 0.25;
  EXPECT_NE(ComputeMiningFingerprint(options, **source), base);
}

}  // namespace
}  // namespace qarm
