// The Hello/HelloAck handshake codecs against the wire's worst: every
// truncation point, version skew (a readable diagnostic naming both
// versions, not a CRC error), hostile length prefixes that must be
// rejected before any allocation, and trailing bytes.
#include <cstdint>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "dist/handshake.h"
#include "storage/qbt_format.h"

namespace qarm {
namespace {

DistHello SampleHello() {
  DistHello hello;
  hello.worker_id = 3;
  hello.generation = 2;
  hello.block_begin = 10;
  hello.block_end = 14;
  hello.fingerprint = 0xabcdef0123456789ULL;
  hello.num_threads = 4;
  hello.counter_memory_budget_bytes = 1 << 20;
  hello.parallel_replication_budget_bytes = 1 << 21;
  hello.stream_block_rows = 4096;
  hello.heartbeat_ms = 250;
  hello.io_timeout_ms = 5000;
  hello.inject_faults_spec = "seed=5,rate=1,kinds=conn_reset";
  return hello;
}

const uint8_t* Bytes(const std::string& s) {
  return reinterpret_cast<const uint8_t*>(s.data());
}

TEST(DistHandshakeTest, HelloRoundTripsEveryField) {
  const DistHello hello = SampleHello();
  std::string payload;
  EncodeHello(hello, &payload);
  Result<DistHello> parsed = ParseHello(Bytes(payload), payload.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->version, kDistProtocolVersion);
  EXPECT_EQ(parsed->worker_id, 3u);
  EXPECT_EQ(parsed->generation, 2u);
  EXPECT_EQ(parsed->block_begin, 10u);
  EXPECT_EQ(parsed->block_end, 14u);
  EXPECT_EQ(parsed->fingerprint, hello.fingerprint);
  EXPECT_EQ(parsed->num_threads, 4u);
  EXPECT_EQ(parsed->counter_memory_budget_bytes, hello.counter_memory_budget_bytes);
  EXPECT_EQ(parsed->parallel_replication_budget_bytes,
            hello.parallel_replication_budget_bytes);
  EXPECT_EQ(parsed->stream_block_rows, 4096u);
  EXPECT_EQ(parsed->heartbeat_ms, 250u);
  EXPECT_EQ(parsed->io_timeout_ms, 5000u);
  EXPECT_EQ(parsed->inject_faults_spec, hello.inject_faults_spec);
}

TEST(DistHandshakeTest, HelloAckRoundTripsEveryField) {
  DistHelloAck ack;
  ack.worker_id = 9;
  ack.generation = 1;
  ack.fingerprint = 42;
  ack.num_rows = 123456;
  ack.num_blocks = 97;
  ack.index_crc = 0xdeadbeef;
  std::string payload;
  EncodeHelloAck(ack, &payload);
  Result<DistHelloAck> parsed = ParseHelloAck(Bytes(payload), payload.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->worker_id, 9u);
  EXPECT_EQ(parsed->generation, 1u);
  EXPECT_EQ(parsed->fingerprint, 42u);
  EXPECT_EQ(parsed->num_rows, 123456u);
  EXPECT_EQ(parsed->num_blocks, 97u);
  EXPECT_EQ(parsed->index_crc, 0xdeadbeefu);
}

TEST(DistHandshakeTest, VersionMismatchNamesBothVersions) {
  std::string payload;
  EncodeHello(SampleHello(), &payload);
  // The version is the FIRST field precisely so this check can run before
  // any layout assumption; patch it to a future value.
  const uint32_t future = kDistProtocolVersion + 7;
  std::memcpy(payload.data(), &future, sizeof(future));
  Result<DistHello> parsed = ParseHello(Bytes(payload), payload.size());
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  const std::string message = parsed.status().ToString();
  EXPECT_NE(message.find("version mismatch"), std::string::npos) << message;
  EXPECT_NE(message.find(std::to_string(future)), std::string::npos)
      << message;
  EXPECT_NE(message.find(std::to_string(kDistProtocolVersion)),
            std::string::npos)
      << message;

  std::string ack_payload;
  EncodeHelloAck(DistHelloAck(), &ack_payload);
  std::memcpy(ack_payload.data(), &future, sizeof(future));
  Result<DistHelloAck> ack =
      ParseHelloAck(Bytes(ack_payload), ack_payload.size());
  ASSERT_FALSE(ack.ok());
  EXPECT_NE(ack.status().ToString().find("version mismatch"),
            std::string::npos);
}

TEST(DistHandshakeTest, EveryHelloTruncationFailsCleanly) {
  std::string payload;
  EncodeHello(SampleHello(), &payload);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(ParseHello(Bytes(payload), cut).ok()) << "cut=" << cut;
  }
}

TEST(DistHandshakeTest, EveryHelloAckTruncationFailsCleanly) {
  std::string payload;
  EncodeHelloAck(DistHelloAck(), &payload);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(ParseHelloAck(Bytes(payload), cut).ok()) << "cut=" << cut;
  }
}

TEST(DistHandshakeTest, TrailingBytesAreRejected) {
  std::string payload;
  EncodeHello(SampleHello(), &payload);
  payload += '\0';
  EXPECT_FALSE(ParseHello(Bytes(payload), payload.size()).ok());

  std::string ack_payload;
  EncodeHelloAck(DistHelloAck(), &ack_payload);
  ack_payload += 'x';
  EXPECT_FALSE(ParseHelloAck(Bytes(ack_payload), ack_payload.size()).ok());
}

TEST(DistHandshakeTest, FaultSpecLengthBombIsRejectedBeforeAllocation) {
  // A Hello whose fault-spec length claims ~2^64 bytes: the parse must
  // fail on the remaining-size check, not die allocating. Build a valid
  // Hello with an empty spec, then overwrite the trailing length field.
  DistHello hello = SampleHello();
  hello.inject_faults_spec.clear();
  std::string payload;
  EncodeHello(hello, &payload);
  std::string bomb = payload.substr(0, payload.size() - 8);
  QbtAppendU64(&bomb, ~0ull);
  EXPECT_FALSE(ParseHello(Bytes(bomb), bomb.size()).ok());
  // And a length past the cap but within the payload's own claim.
  bomb = payload.substr(0, payload.size() - 8);
  QbtAppendU64(&bomb, kDistMaxFaultSpecBytes + 1);
  EXPECT_FALSE(ParseHello(Bytes(bomb), bomb.size()).ok());
}

}  // namespace
}  // namespace qarm
