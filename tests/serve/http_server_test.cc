// End-to-end serving tests: RuleService semantics through a real HTTP
// server and client, cache byte-identity (enabled vs disabled), counters
// in /statz, and the concurrent mixed-query workload (>= 8 threads, a
// TSan target) with the cache under a tiny byte budget.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/http_client.h"
#include "serve/http_server.h"
#include "serve/rule_catalog.h"
#include "serve/rule_service.h"
#include "serve/serve_testutil.h"

namespace qarm {
namespace {

struct Harness {
  std::shared_ptr<const RuleCatalog> catalog;
  std::shared_ptr<RuleService> service;
  std::unique_ptr<HttpServer> server;
};

Harness StartHarness(size_t cache_bytes, size_t threads = 2) {
  Harness h;
  auto catalog = RuleCatalog::Build(servetest::MakeRuleSet());
  EXPECT_TRUE(catalog.ok());
  h.catalog = *catalog;
  RuleServiceOptions options;
  options.cache_bytes = cache_bytes;
  h.service = std::make_shared<RuleService>(h.catalog, options);
  HttpServerOptions server_options;
  server_options.port = 0;
  server_options.num_threads = threads;
  auto server = HttpServer::Start(
      server_options,
      [service = h.service](const HttpRequest& request) {
        return service->Handle(request);
      });
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  h.server = std::move(*server);
  return h;
}

TEST(ServeHttpTest, HealthzAndNotFound) {
  Harness h = StartHarness(0);
  auto ok = HttpGet("127.0.0.1", h.server->port(), "/healthz");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->status, 200);
  EXPECT_EQ(ok->body, "{\"status\":\"ok\"}");

  auto missing = HttpGet("127.0.0.1", h.server->port(), "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
}

TEST(ServeHttpTest, MatchOverHttpEqualsDirectService) {
  Harness h = StartHarness(0);
  const std::string target = "/match?married=yes&cars=1";
  auto http = HttpGet("127.0.0.1", h.server->port(), target);
  ASSERT_TRUE(http.ok()) << http.status().ToString();
  EXPECT_EQ(http->status, 200);

  HttpRequest direct;
  direct.path = "/match";
  direct.params = {{"married", "yes"}, {"cars", "1"}};
  EXPECT_EQ(http->body, h.service->Handle(direct).body);
  // married=yes & cars=1 matches rule 0 (married=yes => cars[0..1]).
  EXPECT_NE(http->body.find("\"count\":1"), std::string::npos) << http->body;
}

TEST(ServeHttpTest, BadParamsAre400) {
  Harness h = StartHarness(0);
  const uint16_t port = h.server->port();
  EXPECT_EQ(HttpGet("127.0.0.1", port, "/match?age=old")->status, 400);
  EXPECT_EQ(HttpGet("127.0.0.1", port, "/match?nope=1")->status, 400);
  EXPECT_EQ(HttpGet("127.0.0.1", port, "/match?mode=sideways")->status, 400);
  EXPECT_EQ(HttpGet("127.0.0.1", port, "/topk?metric=coolness")->status,
            400);
  EXPECT_EQ(HttpGet("127.0.0.1", port, "/topk?attr=nope")->status, 404);
  EXPECT_EQ(HttpGet("127.0.0.1", port, "/rules?min_conf=x")->status, 400);
}

TEST(ServeHttpTest, KeepAliveServesManyRequestsOneConnection) {
  Harness h = StartHarness(0);
  auto client = HttpClient::Connect("127.0.0.1", h.server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (int i = 0; i < 20; ++i) {
    auto response = (*client)->Get("/topk?k=2&metric=support");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
  }
  // All 20 requests rode one connection.
  EXPECT_EQ(h.server->connections_accepted(), 1u);
}

// Acceptance criterion: /match results byte-identical with the cache
// enabled vs disabled — including across param orderings, which
// canonicalization folds into one cache entry.
TEST(ServeHttpTest, CacheByteIdentity) {
  Harness cached = StartHarness(4 * 1024 * 1024);
  Harness uncached = StartHarness(0);
  const std::vector<std::string> targets = {
      "/match?married=yes&cars=1",
      "/match?cars=1&married=yes",  // same query, different spelling
      "/match?age=25&married=no&cars=2",
      "/match?age=0&cars=2&mode=antecedent",
      "/topk?metric=lift&k=3",
      "/rules?min_conf=0.7&limit=2",
  };
  for (int round = 0; round < 3; ++round) {
    for (const std::string& target : targets) {
      auto a = HttpGet("127.0.0.1", cached.server->port(), target);
      auto b = HttpGet("127.0.0.1", uncached.server->port(), target);
      ASSERT_TRUE(a.ok() && b.ok()) << target;
      EXPECT_EQ(a->body, b->body) << target << " round " << round;
    }
  }
  const ResultCacheStats stats = cached.service->cache_manager()->TotalStats();
  EXPECT_GT(stats.hits, 0u) << "repeat queries never hit the cache";
  // The two spellings of the first query share one canonical entry.
  const auto all = cached.service->cache_manager()->AllStats();
  for (const auto& [name, cache_stats] : all) {
    if (name == "match") {
      EXPECT_EQ(cache_stats.insertions, 3u)
          << "canonicalization failed to fold equivalent queries";
    }
  }
}

TEST(ServeHttpTest, StatzCountsRequestsAndCache) {
  Harness h = StartHarness(1024 * 1024);
  const uint16_t port = h.server->port();
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(HttpGet("127.0.0.1", port, "/match?married=yes").ok());
    ASSERT_TRUE(HttpGet("127.0.0.1", port, "/topk?k=1").ok());
  }
  auto statz = HttpGet("127.0.0.1", port, "/statz");
  ASSERT_TRUE(statz.ok());
  const std::string& body = statz->body;
  EXPECT_NE(body.find("\"match\":2"), std::string::npos) << body;
  EXPECT_NE(body.find("\"topk\":2"), std::string::npos) << body;
  EXPECT_NE(body.find("\"qps\":"), std::string::npos);
  EXPECT_NE(body.find("\"hits\":1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"index_bytes\":"), std::string::npos);
  EXPECT_NE(body.find("\"build_seconds\":"), std::string::npos);
  EXPECT_NE(body.find("\"num_rules\":4"), std::string::npos);
}

TEST(ServeHttpTest, UrlEncodedParamsDecode) {
  Harness h = StartHarness(0);
  // %6d%61%72%72%69%65%64 = "married", '+' = space (stripped values are
  // not — the label must match exactly, so "yes" encoded oddly).
  auto response = HttpGet("127.0.0.1", h.server->port(),
                          "/match?%6d%61%72%72%69%65%64=%79es&cars=1");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_NE(response->body.find("\"count\":1"), std::string::npos)
      << response->body;
}

// Acceptance criterion: a concurrent mixed-query workload (>= 8 threads)
// against one server with a deliberately tiny cache budget. Every
// response must equal the uncached server's answer (byte identity under
// eviction pressure), the budget must hold, and evictions must occur.
TEST(ServeHttpTest, ConcurrentMixedQueriesWithTinyCache) {
  Harness cached = StartHarness(8 * 1024, /*threads=*/4);
  Harness uncached = StartHarness(0, /*threads=*/4);
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 120;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(1000 + t);
      auto cached_client =
          HttpClient::Connect("127.0.0.1", cached.server->port());
      auto uncached_client =
          HttpClient::Connect("127.0.0.1", uncached.server->port());
      if (!cached_client.ok() || !uncached_client.ok()) {
        failures.fetch_add(1);
        return;
      }
      const std::vector<std::string> married = {"yes", "no"};
      for (int i = 0; i < kQueriesPerThread; ++i) {
        std::string target;
        switch (rng() % 3) {
          case 0:
            target = "/match?married=" + married[rng() % 2] +
                     "&cars=" + std::to_string(rng() % 4) +
                     "&age=" + std::to_string(rng() % 100);
            break;
          case 1:
            target = "/topk?metric=" +
                     std::string(RankMeasureName(
                         static_cast<RankMeasure>(rng() % 3))) +
                     "&k=" + std::to_string(1 + rng() % 5);
            break;
          default:
            target = "/rules?offset=" + std::to_string(rng() % 4) +
                     "&limit=" + std::to_string(1 + rng() % 4);
        }
        auto a = (*cached_client)->Get(target);
        auto b = (*uncached_client)->Get(target);
        if (!a.ok() || !b.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (a->body != b->body) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  const ResultCacheStats stats = cached.service->cache_manager()->TotalStats();
  EXPECT_LE(stats.bytes_used, stats.byte_budget)
      << "cache exceeded its byte budget";
  EXPECT_GT(stats.evictions, 0u)
      << "tiny budget saw no evictions — budget not enforced?";
}

// A raw client socket with a deliberately tiny receive buffer, so the
// server's tiny SO_SNDBUF fills and its send() hits the SO_SNDTIMEO
// timeout while the reader is merely slow.
int ConnectRaw(uint16_t port, int rcvbuf_bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  if (rcvbuf_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                 sizeof(rcvbuf_bytes));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

// Regression for the half-written-response bug: the per-send SO_SNDTIMEO
// timeout fires while a slow reader drains a large body, and the old
// SendAll treated the resulting EAGAIN like a broken pipe and abandoned
// the response mid-body. A slow-but-alive reader must receive every byte.
TEST(ServeHttpTest, SlowReaderStillGetsTheWholeResponse) {
  const std::string big_body(512 * 1024, 'x');
  HttpServerOptions options;
  options.port = 0;
  options.num_threads = 1;
  options.send_buffer_bytes = 4096;  // kernel-clamped, still tiny
  options.send_timeout_ms = 30;      // stalls below exceed this several-fold
  options.send_deadline_ms = 30000;
  auto server = HttpServer::Start(options, [&](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain";
    response.body = big_body;
    return response;
  });
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  const int fd = ConnectRaw((*server)->port(), 2048);
  const std::string request =
      "GET /big HTTP/1.1\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));

  // Trickle-read the response. The periodic stall is several multiples of
  // the server's send timeout, so with both socket buffers tiny its send()
  // definitely times out (EAGAIN) mid-body, repeatedly.
  std::string received;
  char chunk[8 * 1024];
  size_t reads = 0;
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    received.append(chunk, static_cast<size_t>(n));
    if (++reads % 8 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
    }
  }
  ::close(fd);

  const size_t head_end = received.find("\r\n\r\n");
  ASSERT_NE(head_end, std::string::npos) << "no response head";
  EXPECT_NE(received.find("200 OK"), std::string::npos);
  EXPECT_EQ(received.substr(head_end + 4), big_body)
      << "body truncated at " << (received.size() - head_end - 4) << " of "
      << big_body.size() << " bytes";
}

// The flip side: a reader that stops draining entirely must be cut off at
// the wall-clock deadline (not retried forever), freeing the server thread
// for the next connection.
TEST(ServeHttpTest, StalledReaderIsCutOffAtDeadline) {
  const std::string big_body(4 * 1024 * 1024, 'y');
  HttpServerOptions options;
  options.port = 0;
  options.num_threads = 1;
  options.send_buffer_bytes = 4096;
  options.send_timeout_ms = 20;
  options.send_deadline_ms = 300;
  auto server = HttpServer::Start(options, [&](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.path == "/big" ? big_body : "pong";
    return response;
  });
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // Send a request and then never read the response.
  const int stalled = ConnectRaw((*server)->port(), 2048);
  const std::string request = "GET /big HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::send(stalled, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));

  // Once the deadline passes, the single server thread must be free again:
  // a fresh well-behaved request gets served promptly. (The follow-up body
  // is small on purpose — a multi-megabyte response through this test's
  // deliberately tiny SO_SNDBUF could itself outlast the short deadline.)
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  auto after = HttpGet("127.0.0.1", (*server)->port(), "/ping", 5000);
  ASSERT_TRUE(after.ok())
      << "server thread still stuck on the stalled connection: "
      << after.status().ToString();
  EXPECT_EQ(after->body, "pong");
  ::close(stalled);
  // Stop() joins the accept threads — it would hang if the stalled
  // connection were still being retried.
  (*server)->Stop();
}

TEST(ServeHttpTest, StopIsIdempotentAndPromptly) {
  Harness h = StartHarness(0);
  ASSERT_TRUE(HttpGet("127.0.0.1", h.server->port(), "/healthz").ok());
  h.server->Stop();
  h.server->Stop();  // second call is a no-op
  EXPECT_FALSE(HttpGet("127.0.0.1", h.server->port(), "/healthz", 500).ok());
}

}  // namespace
}  // namespace qarm
