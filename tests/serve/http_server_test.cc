// End-to-end serving tests: RuleService semantics through a real HTTP
// server and client, cache byte-identity (enabled vs disabled), counters
// in /statz, and the concurrent mixed-query workload (>= 8 threads, a
// TSan target) with the cache under a tiny byte budget.
#include <atomic>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/http_client.h"
#include "serve/http_server.h"
#include "serve/rule_catalog.h"
#include "serve/rule_service.h"
#include "serve/serve_testutil.h"

namespace qarm {
namespace {

struct Harness {
  std::shared_ptr<const RuleCatalog> catalog;
  std::shared_ptr<RuleService> service;
  std::unique_ptr<HttpServer> server;
};

Harness StartHarness(size_t cache_bytes, size_t threads = 2) {
  Harness h;
  auto catalog = RuleCatalog::Build(servetest::MakeRuleSet());
  EXPECT_TRUE(catalog.ok());
  h.catalog = *catalog;
  RuleServiceOptions options;
  options.cache_bytes = cache_bytes;
  h.service = std::make_shared<RuleService>(h.catalog, options);
  HttpServerOptions server_options;
  server_options.port = 0;
  server_options.num_threads = threads;
  auto server = HttpServer::Start(
      server_options,
      [service = h.service](const HttpRequest& request) {
        return service->Handle(request);
      });
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  h.server = std::move(*server);
  return h;
}

TEST(ServeHttpTest, HealthzAndNotFound) {
  Harness h = StartHarness(0);
  auto ok = HttpGet("127.0.0.1", h.server->port(), "/healthz");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->status, 200);
  EXPECT_EQ(ok->body, "{\"status\":\"ok\"}");

  auto missing = HttpGet("127.0.0.1", h.server->port(), "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
}

TEST(ServeHttpTest, MatchOverHttpEqualsDirectService) {
  Harness h = StartHarness(0);
  const std::string target = "/match?married=yes&cars=1";
  auto http = HttpGet("127.0.0.1", h.server->port(), target);
  ASSERT_TRUE(http.ok()) << http.status().ToString();
  EXPECT_EQ(http->status, 200);

  HttpRequest direct;
  direct.path = "/match";
  direct.params = {{"married", "yes"}, {"cars", "1"}};
  EXPECT_EQ(http->body, h.service->Handle(direct).body);
  // married=yes & cars=1 matches rule 0 (married=yes => cars[0..1]).
  EXPECT_NE(http->body.find("\"count\":1"), std::string::npos) << http->body;
}

TEST(ServeHttpTest, BadParamsAre400) {
  Harness h = StartHarness(0);
  const uint16_t port = h.server->port();
  EXPECT_EQ(HttpGet("127.0.0.1", port, "/match?age=old")->status, 400);
  EXPECT_EQ(HttpGet("127.0.0.1", port, "/match?nope=1")->status, 400);
  EXPECT_EQ(HttpGet("127.0.0.1", port, "/match?mode=sideways")->status, 400);
  EXPECT_EQ(HttpGet("127.0.0.1", port, "/topk?metric=coolness")->status,
            400);
  EXPECT_EQ(HttpGet("127.0.0.1", port, "/topk?attr=nope")->status, 404);
  EXPECT_EQ(HttpGet("127.0.0.1", port, "/rules?min_conf=x")->status, 400);
}

TEST(ServeHttpTest, KeepAliveServesManyRequestsOneConnection) {
  Harness h = StartHarness(0);
  auto client = HttpClient::Connect("127.0.0.1", h.server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (int i = 0; i < 20; ++i) {
    auto response = (*client)->Get("/topk?k=2&metric=support");
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
  }
  // All 20 requests rode one connection.
  EXPECT_EQ(h.server->connections_accepted(), 1u);
}

// Acceptance criterion: /match results byte-identical with the cache
// enabled vs disabled — including across param orderings, which
// canonicalization folds into one cache entry.
TEST(ServeHttpTest, CacheByteIdentity) {
  Harness cached = StartHarness(4 * 1024 * 1024);
  Harness uncached = StartHarness(0);
  const std::vector<std::string> targets = {
      "/match?married=yes&cars=1",
      "/match?cars=1&married=yes",  // same query, different spelling
      "/match?age=25&married=no&cars=2",
      "/match?age=0&cars=2&mode=antecedent",
      "/topk?metric=lift&k=3",
      "/rules?min_conf=0.7&limit=2",
  };
  for (int round = 0; round < 3; ++round) {
    for (const std::string& target : targets) {
      auto a = HttpGet("127.0.0.1", cached.server->port(), target);
      auto b = HttpGet("127.0.0.1", uncached.server->port(), target);
      ASSERT_TRUE(a.ok() && b.ok()) << target;
      EXPECT_EQ(a->body, b->body) << target << " round " << round;
    }
  }
  const ResultCacheStats stats = cached.service->cache_manager()->TotalStats();
  EXPECT_GT(stats.hits, 0u) << "repeat queries never hit the cache";
  // The two spellings of the first query share one canonical entry.
  const auto all = cached.service->cache_manager()->AllStats();
  for (const auto& [name, cache_stats] : all) {
    if (name == "match") {
      EXPECT_EQ(cache_stats.insertions, 3u)
          << "canonicalization failed to fold equivalent queries";
    }
  }
}

TEST(ServeHttpTest, StatzCountsRequestsAndCache) {
  Harness h = StartHarness(1024 * 1024);
  const uint16_t port = h.server->port();
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(HttpGet("127.0.0.1", port, "/match?married=yes").ok());
    ASSERT_TRUE(HttpGet("127.0.0.1", port, "/topk?k=1").ok());
  }
  auto statz = HttpGet("127.0.0.1", port, "/statz");
  ASSERT_TRUE(statz.ok());
  const std::string& body = statz->body;
  EXPECT_NE(body.find("\"match\":2"), std::string::npos) << body;
  EXPECT_NE(body.find("\"topk\":2"), std::string::npos) << body;
  EXPECT_NE(body.find("\"qps\":"), std::string::npos);
  EXPECT_NE(body.find("\"hits\":1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"index_bytes\":"), std::string::npos);
  EXPECT_NE(body.find("\"build_seconds\":"), std::string::npos);
  EXPECT_NE(body.find("\"num_rules\":4"), std::string::npos);
}

TEST(ServeHttpTest, UrlEncodedParamsDecode) {
  Harness h = StartHarness(0);
  // %6d%61%72%72%69%65%64 = "married", '+' = space (stripped values are
  // not — the label must match exactly, so "yes" encoded oddly).
  auto response = HttpGet("127.0.0.1", h.server->port(),
                          "/match?%6d%61%72%72%69%65%64=%79es&cars=1");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 200);
  EXPECT_NE(response->body.find("\"count\":1"), std::string::npos)
      << response->body;
}

// Acceptance criterion: a concurrent mixed-query workload (>= 8 threads)
// against one server with a deliberately tiny cache budget. Every
// response must equal the uncached server's answer (byte identity under
// eviction pressure), the budget must hold, and evictions must occur.
TEST(ServeHttpTest, ConcurrentMixedQueriesWithTinyCache) {
  Harness cached = StartHarness(8 * 1024, /*threads=*/4);
  Harness uncached = StartHarness(0, /*threads=*/4);
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 120;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(1000 + t);
      auto cached_client =
          HttpClient::Connect("127.0.0.1", cached.server->port());
      auto uncached_client =
          HttpClient::Connect("127.0.0.1", uncached.server->port());
      if (!cached_client.ok() || !uncached_client.ok()) {
        failures.fetch_add(1);
        return;
      }
      const std::vector<std::string> married = {"yes", "no"};
      for (int i = 0; i < kQueriesPerThread; ++i) {
        std::string target;
        switch (rng() % 3) {
          case 0:
            target = "/match?married=" + married[rng() % 2] +
                     "&cars=" + std::to_string(rng() % 4) +
                     "&age=" + std::to_string(rng() % 100);
            break;
          case 1:
            target = "/topk?metric=" +
                     std::string(RankMeasureName(
                         static_cast<RankMeasure>(rng() % 3))) +
                     "&k=" + std::to_string(1 + rng() % 5);
            break;
          default:
            target = "/rules?offset=" + std::to_string(rng() % 4) +
                     "&limit=" + std::to_string(1 + rng() % 4);
        }
        auto a = (*cached_client)->Get(target);
        auto b = (*uncached_client)->Get(target);
        if (!a.ok() || !b.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (a->body != b->body) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  const ResultCacheStats stats = cached.service->cache_manager()->TotalStats();
  EXPECT_LE(stats.bytes_used, stats.byte_budget)
      << "cache exceeded its byte budget";
  EXPECT_GT(stats.evictions, 0u)
      << "tiny budget saw no evictions — budget not enforced?";
}

TEST(ServeHttpTest, StopIsIdempotentAndPromptly) {
  Harness h = StartHarness(0);
  ASSERT_TRUE(HttpGet("127.0.0.1", h.server->port(), "/healthz").ok());
  h.server->Stop();
  h.server->Stop();  // second call is a no-op
  EXPECT_FALSE(HttpGet("127.0.0.1", h.server->port(), "/healthz", 500).ok());
}

}  // namespace
}  // namespace qarm
