// RuleCatalog: matching edge cases (boundary endpoints, single-point
// intervals, categorical equality, missing values), brute-force oracle
// equality over randomized rule sets on both index shapes (grid and
// sorted-scan fallback), top-K ordering, browsing, and record parsing.
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/rule_catalog.h"
#include "serve/serve_testutil.h"

namespace qarm {
namespace {

using servetest::BruteForceMatch;
using servetest::MakeRuleSet;
using servetest::RandomRecord;
using servetest::RandomRuleSet;

std::shared_ptr<const RuleCatalog> MustBuild(
    StoredRuleSet set, const RuleCatalogOptions& options = {}) {
  auto catalog = RuleCatalog::Build(std::move(set), options);
  EXPECT_TRUE(catalog.ok()) << catalog.status().ToString();
  return *catalog;
}

std::vector<uint32_t> Match(const RuleCatalog& catalog,
                            const std::vector<int32_t>& record,
                            MatchMode mode) {
  MatchScratch scratch;
  std::vector<uint32_t> out;
  catalog.MatchRules(record, mode, &scratch, &out);
  return out;
}

// Attribute layout of MakeRuleSet(): 0=married{no,yes}, 1=cars 0..3,
// 2=age with 5 base intervals.
TEST(RuleCatalogTest, BoundaryEndpointsAreInclusive) {
  auto catalog = MustBuild(MakeRuleSet());
  // Rule 1 is age[1..3] => married=yes; both interval endpoints match.
  EXPECT_EQ(Match(*catalog, {1, kMissingValue, 1}, MatchMode::kRule),
            (std::vector<uint32_t>{1}));
  EXPECT_EQ(Match(*catalog, {1, kMissingValue, 3}, MatchMode::kRule),
            (std::vector<uint32_t>{1}));
  // One past either end does not.
  EXPECT_TRUE(Match(*catalog, {1, kMissingValue, 0}, MatchMode::kRule)
                  .empty());
  EXPECT_TRUE(Match(*catalog, {1, kMissingValue, 4}, MatchMode::kRule)
                  .empty());
}

TEST(RuleCatalogTest, SinglePointIntervalsMatchExactly) {
  auto catalog = MustBuild(MakeRuleSet());
  // Rule 2: cars[2..2] AND age[0..0] => married=no.
  EXPECT_EQ(Match(*catalog, {0, 2, 0}, MatchMode::kRule),
            (std::vector<uint32_t>{2}));
  EXPECT_TRUE(Match(*catalog, {0, 3, 0}, MatchMode::kRule).empty());
  EXPECT_TRUE(Match(*catalog, {0, 2, 1}, MatchMode::kRule).empty());
}

TEST(RuleCatalogTest, CategoricalEquality) {
  auto catalog = MustBuild(MakeRuleSet());
  // Rule 0: married=yes => cars[0..1].
  EXPECT_EQ(Match(*catalog, {1, 0, kMissingValue}, MatchMode::kRule),
            (std::vector<uint32_t>{0}));
  EXPECT_TRUE(Match(*catalog, {0, 0, kMissingValue}, MatchMode::kRule)
                  .empty());
}

TEST(RuleCatalogTest, MissingValuesSupportNothing) {
  auto catalog = MustBuild(MakeRuleSet());
  // All-missing record matches no rule in either mode.
  const std::vector<int32_t> missing(3, kMissingValue);
  EXPECT_TRUE(Match(*catalog, missing, MatchMode::kRule).empty());
  EXPECT_TRUE(Match(*catalog, missing, MatchMode::kAntecedent).empty());
  // married=yes, cars missing: rule 0 fires (antecedent mode) but cannot
  // fully match (rule mode needs the consequent's cars value).
  EXPECT_TRUE(Match(*catalog, {1, kMissingValue, kMissingValue},
                    MatchMode::kRule)
                  .empty());
  EXPECT_EQ(Match(*catalog, {1, kMissingValue, kMissingValue},
                  MatchMode::kAntecedent),
            (std::vector<uint32_t>{0}));
}

TEST(RuleCatalogTest, AntecedentModeIsSupersetOfRuleMode) {
  std::mt19937_64 rng(7);
  const StoredRuleSet set = RandomRuleSet(rng, 5, 60);
  auto catalog = MustBuild(set);
  for (int i = 0; i < 200; ++i) {
    const std::vector<int32_t> record = RandomRecord(rng, set.attributes);
    const auto full = Match(*catalog, record, MatchMode::kRule);
    const auto fired = Match(*catalog, record, MatchMode::kAntecedent);
    for (uint32_t id : full) {
      EXPECT_TRUE(std::find(fired.begin(), fired.end(), id) != fired.end())
          << "rule " << id << " matched fully but did not fire";
    }
  }
}

// The core acceptance property: the indexed match equals the brute-force
// oracle on randomized rule sets, on both index shapes.
TEST(RuleCatalogTest, OracleEqualityOnRandomizedSets) {
  std::mt19937_64 rng(20260809);
  for (int round = 0; round < 8; ++round) {
    const StoredRuleSet set =
        RandomRuleSet(rng, 2 + round % 6, 10 + round * 25);
    RuleCatalogOptions options;
    if (round % 2 == 1) options.max_grid_cells_per_attr = 0;  // force scan
    auto catalog = MustBuild(set, options);
    if (round % 2 == 1) {
      EXPECT_EQ(catalog->stats().grid_attributes, 0u);
    } else {
      EXPECT_EQ(catalog->stats().scan_attributes, 0u);
    }
    MatchScratch scratch;  // reused across records: zeroing must hold
    for (int i = 0; i < 300; ++i) {
      const std::vector<int32_t> record = RandomRecord(rng, set.attributes);
      for (MatchMode mode : {MatchMode::kRule, MatchMode::kAntecedent}) {
        std::vector<uint32_t> got;
        catalog->MatchRules(record, mode, &scratch, &got);
        EXPECT_EQ(got, BruteForceMatch(set, record, mode))
            << "round " << round << " record " << i << " mode "
            << static_cast<int>(mode);
      }
    }
  }
}

TEST(RuleCatalogTest, GridAndScanAgree) {
  std::mt19937_64 rng(99);
  const StoredRuleSet set = RandomRuleSet(rng, 4, 80);
  auto grid = MustBuild(set);
  RuleCatalogOptions scan_options;
  scan_options.max_grid_cells_per_attr = 0;
  auto scan = MustBuild(set, scan_options);
  for (int i = 0; i < 200; ++i) {
    const std::vector<int32_t> record = RandomRecord(rng, set.attributes);
    EXPECT_EQ(Match(*grid, record, MatchMode::kRule),
              Match(*scan, record, MatchMode::kRule));
  }
}

TEST(RuleCatalogTest, TopKOrdersByMeasureThenId) {
  const StoredRuleSet set = MakeRuleSet();
  auto catalog = MustBuild(set);
  for (RankMeasure measure :
       {RankMeasure::kConfidence, RankMeasure::kSupport,
        RankMeasure::kLift}) {
    const auto top =
        catalog->TopK(measure, -1, set.rules.size() + 10, false);
    ASSERT_EQ(top.size(), set.rules.size());
    for (size_t i = 1; i < top.size(); ++i) {
      const double prev = catalog->Measure(top[i - 1], measure);
      const double cur = catalog->Measure(top[i], measure);
      EXPECT_TRUE(prev > cur || (prev == cur && top[i - 1] < top[i]))
          << RankMeasureName(measure) << " at " << i;
    }
  }
  // k truncates; interesting_only filters.
  EXPECT_EQ(catalog->TopK(RankMeasure::kConfidence, -1, 2, false).size(),
            2u);
  for (uint32_t id :
       catalog->TopK(RankMeasure::kConfidence, -1, 10, true)) {
    EXPECT_TRUE(set.rules[id].interesting);
  }
}

TEST(RuleCatalogTest, PerAttributeTopKMentionsTheAttribute) {
  const StoredRuleSet set = MakeRuleSet();
  auto catalog = MustBuild(set);
  // Attribute 2 (age) appears in rules 1, 2, 3.
  const auto top = catalog->TopK(RankMeasure::kSupport, 2, 10, false);
  EXPECT_EQ(top.size(), 3u);
  for (uint32_t id : top) {
    bool mentions = false;
    for (const StoredItem& item : set.rules[id].antecedent) {
      mentions |= item.attr == 2;
    }
    for (const StoredItem& item : set.rules[id].consequent) {
      mentions |= item.attr == 2;
    }
    EXPECT_TRUE(mentions) << "rule " << id;
  }
}

TEST(RuleCatalogTest, BrowseFiltersAndPages) {
  const StoredRuleSet set = MakeRuleSet();
  auto catalog = MustBuild(set);
  size_t total = 0;
  // No filter: everything, id order.
  EXPECT_EQ(catalog->Browse({}, 0, 100, &total),
            (std::vector<uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(total, 4u);
  // Paging.
  EXPECT_EQ(catalog->Browse({}, 1, 2, &total),
            (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(total, 4u);
  // Confidence filter: rules 0 (.75) and 2 (.80).
  BrowseFilter conf;
  conf.min_confidence = 0.7;
  EXPECT_EQ(catalog->Browse(conf, 0, 100, &total),
            (std::vector<uint32_t>{0, 2}));
  // Attribute filter: married (attr 0) is in every rule; cars (attr 1)
  // is in rules 0, 2, 3.
  BrowseFilter cars;
  cars.attr = 1;
  EXPECT_EQ(catalog->Browse(cars, 0, 100, &total),
            (std::vector<uint32_t>{0, 2, 3}));
  // Interesting only: rules 0 and 2.
  BrowseFilter interesting;
  interesting.interesting_only = true;
  EXPECT_EQ(catalog->Browse(interesting, 0, 100, &total),
            (std::vector<uint32_t>{0, 2}));
}

TEST(RuleCatalogTest, MapValueAndParseRecord) {
  auto catalog = MustBuild(MakeRuleSet());
  // Categorical: label -> id; unknown label -> missing (matches nothing).
  EXPECT_EQ(*catalog->MapValue(0, "yes"), 1);
  EXPECT_EQ(*catalog->MapValue(0, "no"), 0);
  EXPECT_EQ(*catalog->MapValue(0, "divorced"), kMissingValue);
  // Quantitative single-value intervals: value -> its interval id.
  EXPECT_EQ(*catalog->MapValue(1, "2"), 2);
  EXPECT_EQ(*catalog->MapValue(1, "9"), kMissingValue);  // out of range
  // Partitioned: 25 lands in [20..39] = id 1; boundary values stick to
  // their interval.
  EXPECT_EQ(*catalog->MapValue(2, "25"), 1);
  EXPECT_EQ(*catalog->MapValue(2, "20"), 1);
  EXPECT_EQ(*catalog->MapValue(2, "39"), 1);
  EXPECT_EQ(*catalog->MapValue(2, "99"), 4);
  EXPECT_EQ(*catalog->MapValue(2, "250"), kMissingValue);
  // Type error: non-numeric text for a quantitative attribute.
  EXPECT_FALSE(catalog->MapValue(2, "old").ok());

  auto record = catalog->ParseRecord({{"married", "yes"}, {"age", "25"}});
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_EQ(*record, (std::vector<int32_t>{1, kMissingValue, 1}));
  EXPECT_FALSE(catalog->ParseRecord({{"nope", "1"}}).ok());
}

TEST(RuleCatalogTest, StatsAccounting) {
  const StoredRuleSet set = MakeRuleSet();
  auto catalog = MustBuild(set);
  const RuleCatalogStats& stats = catalog->stats();
  EXPECT_EQ(stats.num_rules, 4u);
  EXPECT_EQ(stats.num_attributes, 3u);
  // 4 rules with 2, 2, 3, 3 items = 10 (rule, side) entries.
  EXPECT_EQ(stats.interval_entries, 10u);
  EXPECT_EQ(stats.grid_attributes, 3u);
  EXPECT_EQ(stats.scan_attributes, 0u);
  EXPECT_GT(stats.index_bytes, 0u);
  EXPECT_GE(stats.build_seconds, 0.0);
}

TEST(RuleCatalogTest, ParseRankMeasureNames) {
  EXPECT_EQ(*ParseRankMeasure("confidence"), RankMeasure::kConfidence);
  EXPECT_EQ(*ParseRankMeasure("support"), RankMeasure::kSupport);
  EXPECT_EQ(*ParseRankMeasure("lift"), RankMeasure::kLift);
  EXPECT_FALSE(ParseRankMeasure("coolness").ok());
  EXPECT_STREQ(RankMeasureName(RankMeasure::kLift), "lift");
}

}  // namespace
}  // namespace qarm
