// Shared fixtures for the serving tests: handcrafted and randomized
// StoredRuleSets, plus a brute-force match oracle the indexed paths are
// compared against.
#ifndef QARM_TESTS_SERVE_SERVE_TESTUTIL_H_
#define QARM_TESTS_SERVE_SERVE_TESTUTIL_H_

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "serve/rule_catalog.h"
#include "storage/rules_format.h"
#include "testutil.h"

namespace qarm {
namespace servetest {

// Three attributes covering the matching edge cases: a plain categorical,
// a single-value-interval quantitative, and a partitioned quantitative
// with real multi-value base intervals.
inline std::vector<MappedAttribute> MakeAttrs() {
  MappedAttribute age;
  age.name = "age";
  age.kind = AttributeKind::kQuantitative;
  age.source_type = ValueType::kInt64;
  age.partitioned = true;
  age.intervals = {{0, 19}, {20, 39}, {40, 59}, {60, 79}, {80, 99}};
  return {testutil::CatAttr("married", {"no", "yes"}),
          testutil::QuantAttr("cars", 4), age};
}

// A small handcrafted rule set over MakeAttrs() whose matches are easy to
// reason about in the edge-case tests.
//   rule 0: married=yes                    => cars[0..1]
//   rule 1: age[1..3] (raw 20..79)         => married=yes
//   rule 2: cars[2..2] AND age[0..0]       => married=no   (single points)
//   rule 3: married=no AND cars[1..3]      => age[2..4]
inline StoredRuleSet MakeRuleSet() {
  StoredRuleSet set;
  set.attributes = MakeAttrs();
  set.num_records = 1000;
  set.minsup = 0.1;
  set.minconf = 0.5;
  set.interest_level = 1.1;
  set.rules = {
      {{{0, 1, 1}}, {{1, 0, 1}}, 300, 0.30, 0.75, 1.5, true},
      {{{2, 1, 3}}, {{0, 1, 1}}, 250, 0.25, 0.62, 0.0, false},
      {{{1, 2, 2}, {2, 0, 0}}, {{0, 0, 0}}, 120, 0.12, 0.80, 2.0, true},
      {{{0, 0, 0}, {1, 1, 3}}, {{2, 2, 4}}, 110, 0.11, 0.55, 1.1, false},
  };
  return set;
}

// Randomized rule set over mixed attribute kinds; `rng` drives every
// choice so failures replay from the seed.
inline StoredRuleSet RandomRuleSet(std::mt19937_64& rng, size_t num_attrs,
                                   size_t num_rules) {
  StoredRuleSet set;
  set.num_records = 10000;
  set.minsup = 0.05;
  set.minconf = 0.5;
  for (size_t a = 0; a < num_attrs; ++a) {
    const int32_t domain =
        static_cast<int32_t>(2 + rng() % 9);  // 2..10 values
    std::string name = "attr";
    name += std::to_string(a);
    if (rng() % 2 == 0) {
      std::vector<std::string> labels;
      for (int32_t v = 0; v < domain; ++v) {
        std::string label = "v";
        label += std::to_string(v);
        labels.push_back(label);
      }
      set.attributes.push_back(testutil::CatAttr(name, labels));
    } else {
      set.attributes.push_back(testutil::QuantAttr(name, domain));
    }
  }
  for (size_t r = 0; r < num_rules; ++r) {
    // Pick 2..min(4, num_attrs) distinct attributes, split into sides.
    std::vector<int32_t> chosen(num_attrs);
    for (size_t a = 0; a < num_attrs; ++a) {
      chosen[a] = static_cast<int32_t>(a);
    }
    std::shuffle(chosen.begin(), chosen.end(), rng);
    const size_t take =
        2 + (num_attrs > 2 ? rng() % std::min<size_t>(3, num_attrs - 1)
                           : 0);
    chosen.resize(std::min(take, num_attrs));
    const size_t num_ante = 1 + rng() % (chosen.size() - 1);
    StoredRule rule;
    for (size_t i = 0; i < chosen.size(); ++i) {
      const int32_t attr = chosen[i];
      const auto domain = static_cast<int32_t>(
          set.attributes[static_cast<size_t>(attr)].domain_size());
      // Categorical items are single values; ranged items span ids.
      int32_t lo = static_cast<int32_t>(rng()) % domain;
      if (lo < 0) lo += domain;
      int32_t hi = lo;
      if (set.attributes[static_cast<size_t>(attr)].ranged()) {
        hi = lo + static_cast<int32_t>(rng() % 3);
        if (hi >= domain) hi = domain - 1;
      }
      StoredItem item{attr, lo, hi};
      if (i < num_ante) {
        rule.antecedent.push_back(item);
      } else {
        rule.consequent.push_back(item);
      }
    }
    auto by_attr = [](const StoredItem& a, const StoredItem& b) {
      return a.attr < b.attr;
    };
    std::sort(rule.antecedent.begin(), rule.antecedent.end(), by_attr);
    std::sort(rule.consequent.begin(), rule.consequent.end(), by_attr);
    rule.count = rng() % (set.num_records + 1);
    rule.support =
        static_cast<double>(rule.count) / static_cast<double>(set.num_records);
    rule.confidence = static_cast<double>(rng() % 1001) / 1000.0;
    rule.lift = static_cast<double>(rng() % 4001) / 1000.0;
    rule.interesting = rng() % 3 == 0;
    set.rules.push_back(std::move(rule));
  }
  return set;
}

// A random record over `attrs`: each attribute missing with probability
// ~1/4, otherwise a uniform mapped value.
inline std::vector<int32_t> RandomRecord(
    std::mt19937_64& rng, const std::vector<MappedAttribute>& attrs) {
  std::vector<int32_t> record(attrs.size(), kMissingValue);
  for (size_t a = 0; a < attrs.size(); ++a) {
    if (rng() % 4 == 0) continue;
    record[a] = static_cast<int32_t>(rng() % attrs[a].domain_size());
  }
  return record;
}

// Brute-force oracle: does `record` support every item of `side`?
inline bool SupportsSide(const std::vector<int32_t>& record,
                         const std::vector<StoredItem>& side) {
  for (const StoredItem& item : side) {
    const int32_t value = record[static_cast<size_t>(item.attr)];
    if (value == kMissingValue || value < item.lo || value > item.hi) {
      return false;
    }
  }
  return true;
}

// Brute-force MatchRules: scan every rule; ids ascending by construction.
inline std::vector<uint32_t> BruteForceMatch(
    const StoredRuleSet& set, const std::vector<int32_t>& record,
    MatchMode mode) {
  std::vector<uint32_t> out;
  for (size_t r = 0; r < set.rules.size(); ++r) {
    const StoredRule& rule = set.rules[r];
    const bool matched =
        mode == MatchMode::kRule
            ? SupportsSide(record, rule.antecedent) &&
                  SupportsSide(record, rule.consequent)
            : SupportsSide(record, rule.antecedent);
    if (matched) out.push_back(static_cast<uint32_t>(r));
  }
  return out;
}

}  // namespace servetest
}  // namespace qarm

#endif  // QARM_TESTS_SERVE_SERVE_TESTUTIL_H_
