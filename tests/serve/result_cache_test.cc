// ResultCache: byte-budget enforcement, frequency-based eviction,
// manager budget accounting, and concurrent correctness under >= 8
// threads (a TSan target).
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/result_cache.h"

namespace qarm {
namespace {

// Builds "prefix<i>" without the operator+(const char*, string&&) overload
// that GCC 12's -Wrestrict false-positives on.
std::string Key(const char* prefix, int i) {
  std::string out = prefix;
  out += std::to_string(i);
  return out;
}

TEST(ResultCacheTest, HitAfterInsertMissBefore) {
  ResultCache cache(64 * 1024, 4);
  EXPECT_FALSE(cache.Lookup("k1").has_value());
  cache.Insert("k1", "v1");
  auto hit = cache.Lookup("k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "v1");
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCacheTest, OverwriteReplacesValue) {
  ResultCache cache(64 * 1024, 1);
  cache.Insert("k", "old");
  cache.Insert("k", "new value that is longer");
  EXPECT_EQ(*cache.Lookup("k"), "new value that is longer");
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST(ResultCacheTest, BudgetNeverExceededAndEvictionsHappen) {
  // Room for only a handful of entries per shard.
  const size_t budget = 4096;
  ResultCache cache(budget, 2);
  for (int i = 0; i < 500; ++i) {
    cache.Insert(Key("key", i),
                 std::string(100, static_cast<char>('a' + i % 26)));
    EXPECT_LE(cache.Stats().bytes_used, budget) << "after insert " << i;
  }
  const ResultCacheStats stats = cache.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes_used, budget);
  EXPECT_GT(stats.entries, 0u);
}

TEST(ResultCacheTest, FrequentEntriesSurviveEviction) {
  // Single shard so every key competes for the same budget. The hot key
  // is looked up repeatedly; cold keys stream past it.
  ResultCache cache(2048, 1);
  cache.Insert("hot", std::string(64, 'h'));
  for (int i = 0; i < 50; ++i) {
    cache.Lookup("hot");
  }
  for (int i = 0; i < 200; ++i) {
    cache.Insert(Key("cold", i), std::string(64, 'c'));
  }
  EXPECT_TRUE(cache.Lookup("hot").has_value())
      << "hot entry evicted despite its frequency";
}

TEST(ResultCacheTest, OversizedValuesAreRejectedNotCached) {
  ResultCache cache(1024, 4);  // 256 bytes per shard
  cache.Insert("big", std::string(4096, 'x'));
  EXPECT_FALSE(cache.Lookup("big").has_value());
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.oversized_rejects, 1u);
  EXPECT_EQ(stats.bytes_used, 0u);
}

TEST(ResultCacheTest, ClearEmptiesEveryShard) {
  ResultCache cache(64 * 1024, 8);
  for (int i = 0; i < 50; ++i) {
    cache.Insert(Key("k", i), "v");
  }
  cache.Clear();
  const ResultCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes_used, 0u);
}

TEST(ResultCacheManagerTest, BudgetAllocationAndExhaustion) {
  ResultCacheManager manager(10 * 1024);
  auto a = manager.CreateCache("a", 6 * 1024);
  ASSERT_TRUE(a.ok());
  auto duplicate = manager.CreateCache("a", 1024);
  EXPECT_FALSE(duplicate.ok());
  auto too_big = manager.CreateCache("b", 8 * 1024);
  EXPECT_FALSE(too_big.ok());
  auto b = manager.CreateCache("b", 4 * 1024);
  ASSERT_TRUE(b.ok());

  (*a)->Insert("k", "v");
  (*a)->Lookup("k");
  (*b)->Lookup("nope");
  const ResultCacheStats total = manager.TotalStats();
  EXPECT_EQ(total.hits, 1u);
  EXPECT_EQ(total.misses, 1u);
  EXPECT_EQ(total.byte_budget, 10u * 1024);
  EXPECT_EQ(manager.AllStats().size(), 2u);
}

// Concurrency: 8+ threads hammer a small cache with overlapping keys.
// Correctness here means no data race (TSan), no budget violation, and
// every hit returning the exact value inserted for that key.
TEST(ResultCacheTest, ConcurrentMixedWorkloadRespectsBudget) {
  const size_t budget = 16 * 1024;
  ResultCache cache(budget, 4);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::atomic<int> wrong_values{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &wrong_values, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int key_id = (t * 37 + i) % 300;
        const std::string key = Key("key", key_id);
        // The value is a pure function of the key, so cross-thread
        // clobbering is detectable.
        const std::string value(64 + key_id % 32,
                                static_cast<char>('a' + key_id % 26));
        if (i % 3 == 0) {
          cache.Insert(key, value);
        } else if (auto hit = cache.Lookup(key)) {
          if (*hit != value) wrong_values.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(wrong_values.load(), 0);
  const ResultCacheStats stats = cache.Stats();
  EXPECT_LE(stats.bytes_used, budget);
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

}  // namespace
}  // namespace qarm
