// Corrupt-input hardening for the QRS reader: every mutation of a valid
// file — truncation at any length, flipped magic/CRC, lying counts and
// sizes, semantic invariant violations — must come back as a clean
// Status, never a crash or an allocation bomb.
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/serve_testutil.h"
#include "storage/crc32.h"
#include "storage/rules_format.h"

namespace qarm {
namespace {

// A valid serialized rule set, via the real writer and a temp file. The
// path carries the pid plus the running test's name: ctest runs each
// TEST_F as its own (concurrent) invocation of this binary, and a shared
// name races — one instance unlinks the file another is still writing.
std::vector<uint8_t> ValidBytes() {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string path = ::testing::TempDir() + "/corrupt_base_" +
                           std::to_string(::getpid()) + "_" +
                           (info != nullptr ? info->name() : "anon") + ".qrs";
  const StoredRuleSet set = servetest::MakeRuleSet();
  if (!WriteRuleSet(set, path).ok()) return {};
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  std::remove(path.c_str());
  if (read != bytes.size()) return {};
  return bytes;
}

Status ParseStatus(const std::vector<uint8_t>& bytes) {
  return ParseRuleSet(bytes.data(), bytes.size()).status();
}

void PutU32(std::vector<uint8_t>* bytes, size_t offset, uint32_t value) {
  std::memcpy(bytes->data() + offset, &value, sizeof(value));
}

void PutU64(std::vector<uint8_t>* bytes, size_t offset, uint64_t value) {
  std::memcpy(bytes->data() + offset, &value, sizeof(value));
}

void PutF64(std::vector<uint8_t>* bytes, size_t offset, double value) {
  std::memcpy(bytes->data() + offset, &value, sizeof(value));
}

class QrsCorruptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bytes_ = ValidBytes();
    ASSERT_FALSE(bytes_.empty());
    ASSERT_TRUE(ParseStatus(bytes_).ok());
  }
  std::vector<uint8_t> bytes_;
};

TEST_F(QrsCorruptTest, EveryTruncationFailsCleanly) {
  for (size_t n = 0; n < bytes_.size(); ++n) {
    std::vector<uint8_t> cut(bytes_.begin(), bytes_.begin() + n);
    EXPECT_FALSE(ParseRuleSet(cut.data(), cut.size()).ok())
        << "truncation to " << n << " bytes parsed";
  }
}

TEST_F(QrsCorruptTest, BadMagicRejected) {
  bytes_[0] = 'X';
  EXPECT_FALSE(ParseStatus(bytes_).ok());
}

TEST_F(QrsCorruptTest, BadEndMagicRejected) {
  bytes_[bytes_.size() - 1] = 'X';
  EXPECT_FALSE(ParseStatus(bytes_).ok());
}

TEST_F(QrsCorruptTest, WrongEndianMarkerRejected) {
  PutU32(&bytes_, 4, 0x0D0C0B0A);
  EXPECT_FALSE(ParseStatus(bytes_).ok());
}

TEST_F(QrsCorruptTest, FutureVersionRejected) {
  PutU32(&bytes_, 8, kQrsVersion + 1);
  EXPECT_FALSE(ParseStatus(bytes_).ok());
}

TEST_F(QrsCorruptTest, LyingPayloadSizeRejected) {
  // Both too small and absurdly large (an allocation bomb if trusted).
  PutU64(&bytes_, 16, 1);
  EXPECT_FALSE(ParseStatus(bytes_).ok());
  PutU64(&bytes_, 16, uint64_t{1} << 60);
  EXPECT_FALSE(ParseStatus(bytes_).ok());
}

TEST_F(QrsCorruptTest, FlippedPayloadByteFailsCrc) {
  // Flip one payload byte and keep everything else intact: only the CRC
  // can catch it.
  bytes_[kQrsHeaderSize + 40] ^= 0x01;
  const Status status = ParseStatus(bytes_);
  ASSERT_FALSE(status.ok());
}

TEST_F(QrsCorruptTest, FlippedCrcRejected) {
  bytes_[bytes_.size() - kQrsTailSize] ^= 0xFF;
  EXPECT_FALSE(ParseStatus(bytes_).ok());
}

// Locates the payload offset of num_rules: 3 doubles, u64 metadata_size,
// metadata bytes.
size_t NumRulesOffset(const std::vector<uint8_t>& bytes) {
  uint64_t metadata_size = 0;
  std::memcpy(&metadata_size, bytes.data() + kQrsHeaderSize + 24, 8);
  return kQrsHeaderSize + 24 + 8 + static_cast<size_t>(metadata_size);
}

// Recomputes the tail CRC so a mutation is seen by the payload parser
// instead of being caught by the checksum.
void FixCrc(std::vector<uint8_t>* bytes) {
  const size_t payload_size = bytes->size() - kQrsHeaderSize - kQrsTailSize;
  PutU32(bytes, bytes->size() - kQrsTailSize,
         Crc32(bytes->data() + kQrsHeaderSize, payload_size));
}

TEST_F(QrsCorruptTest, RuleCountBombRejected) {
  // A huge num_rules with a correct CRC: the division-form bound must
  // reject it before any allocation happens.
  PutU64(&bytes_, NumRulesOffset(bytes_), uint64_t{1} << 56);
  FixCrc(&bytes_);
  EXPECT_FALSE(ParseStatus(bytes_).ok());
}

TEST_F(QrsCorruptTest, MetadataSizeBombRejected) {
  PutU64(&bytes_, kQrsHeaderSize + 24, uint64_t{1} << 56);
  FixCrc(&bytes_);
  EXPECT_FALSE(ParseStatus(bytes_).ok());
}

TEST_F(QrsCorruptTest, NonFiniteMinsupRejected) {
  PutF64(&bytes_, kQrsHeaderSize, std::numeric_limits<double>::infinity());
  FixCrc(&bytes_);
  EXPECT_FALSE(ParseStatus(bytes_).ok());
}

TEST_F(QrsCorruptTest, TrailingGarbageRejected) {
  bytes_.insert(bytes_.end() - kQrsTailSize, 4, 0);
  EXPECT_FALSE(ParseStatus(bytes_).ok());
}

TEST(QrsSemanticTest, OutOfDomainEndpointRejected) {
  StoredRuleSet set = servetest::MakeRuleSet();
  set.rules[0].antecedent[0].hi = 99;  // married has domain size 2
  const std::string path = ::testing::TempDir() + "/semantic1.qrs";
  // The writer doesn't validate domains (it has no reason to trust them
  // either) — the reader must.
  ASSERT_TRUE(WriteRuleSet(set, path).ok());
  EXPECT_FALSE(ReadRuleSet(path).ok());
  std::remove(path.c_str());
}

TEST(QrsSemanticTest, OverlappingSidesRejected) {
  StoredRuleSet set = servetest::MakeRuleSet();
  set.rules[0].consequent[0].attr = set.rules[0].antecedent[0].attr;
  set.rules[0].consequent[0].lo = 0;
  set.rules[0].consequent[0].hi = 0;
  const std::string path = ::testing::TempDir() + "/semantic2.qrs";
  ASSERT_TRUE(WriteRuleSet(set, path).ok());
  EXPECT_FALSE(ReadRuleSet(path).ok());
  std::remove(path.c_str());
}

TEST(QrsSemanticTest, CountAboveNumRecordsRejected) {
  StoredRuleSet set = servetest::MakeRuleSet();
  set.rules[0].count = set.num_records + 1;
  const std::string path = ::testing::TempDir() + "/semantic3.qrs";
  ASSERT_TRUE(WriteRuleSet(set, path).ok());
  EXPECT_FALSE(ReadRuleSet(path).ok());
  std::remove(path.c_str());
}

TEST(QrsSemanticTest, OutOfRangeConfidenceRejected) {
  StoredRuleSet set = servetest::MakeRuleSet();
  set.rules[0].confidence = 1.5;
  const std::string path = ::testing::TempDir() + "/semantic4.qrs";
  ASSERT_TRUE(WriteRuleSet(set, path).ok());
  EXPECT_FALSE(ReadRuleSet(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qarm
