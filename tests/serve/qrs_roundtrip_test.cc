// QRS write -> read roundtrips: every field of a rule set survives the
// trip through the file (and through ParseRuleSet on the raw bytes).
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/serve_testutil.h"
#include "storage/rules_format.h"

namespace qarm {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void ExpectSameRuleSet(const StoredRuleSet& got, const StoredRuleSet& want) {
  EXPECT_EQ(got.num_records, want.num_records);
  EXPECT_DOUBLE_EQ(got.minsup, want.minsup);
  EXPECT_DOUBLE_EQ(got.minconf, want.minconf);
  EXPECT_DOUBLE_EQ(got.interest_level, want.interest_level);
  ASSERT_EQ(got.attributes.size(), want.attributes.size());
  for (size_t a = 0; a < want.attributes.size(); ++a) {
    EXPECT_EQ(got.attributes[a].name, want.attributes[a].name);
    EXPECT_EQ(got.attributes[a].kind, want.attributes[a].kind);
    EXPECT_EQ(got.attributes[a].labels, want.attributes[a].labels);
    EXPECT_EQ(got.attributes[a].intervals.size(),
              want.attributes[a].intervals.size());
    EXPECT_EQ(got.attributes[a].domain_size(),
              want.attributes[a].domain_size());
  }
  ASSERT_EQ(got.rules.size(), want.rules.size());
  for (size_t r = 0; r < want.rules.size(); ++r) {
    EXPECT_EQ(got.rules[r].antecedent, want.rules[r].antecedent) << r;
    EXPECT_EQ(got.rules[r].consequent, want.rules[r].consequent) << r;
    EXPECT_EQ(got.rules[r].count, want.rules[r].count) << r;
    EXPECT_DOUBLE_EQ(got.rules[r].support, want.rules[r].support) << r;
    EXPECT_DOUBLE_EQ(got.rules[r].confidence, want.rules[r].confidence) << r;
    EXPECT_DOUBLE_EQ(got.rules[r].lift, want.rules[r].lift) << r;
    EXPECT_EQ(got.rules[r].interesting, want.rules[r].interesting) << r;
  }
}

TEST(QrsRoundtripTest, HandcraftedSetSurvives) {
  const StoredRuleSet set = servetest::MakeRuleSet();
  const std::string path = TempPath("roundtrip.qrs");
  uint64_t bytes = 0;
  ASSERT_TRUE(WriteRuleSet(set, path, &bytes).ok());
  EXPECT_GT(bytes, kQrsHeaderSize + kQrsTailSize);

  auto read = ReadRuleSet(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ExpectSameRuleSet(*read, set);
  std::remove(path.c_str());
}

TEST(QrsRoundtripTest, EmptyRuleListSurvives) {
  StoredRuleSet set = servetest::MakeRuleSet();
  set.rules.clear();
  const std::string path = TempPath("roundtrip_empty.qrs");
  ASSERT_TRUE(WriteRuleSet(set, path).ok());
  auto read = ReadRuleSet(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(read->rules.empty());
  EXPECT_EQ(read->attributes.size(), set.attributes.size());
  std::remove(path.c_str());
}

TEST(QrsRoundtripTest, ParseMatchesFileReader) {
  const StoredRuleSet set = servetest::MakeRuleSet();
  const std::string path = TempPath("roundtrip_parse.qrs");
  ASSERT_TRUE(WriteRuleSet(set, path).ok());
  const std::string bytes = ReadFileBytes(path);
  auto parsed = ParseRuleSet(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSameRuleSet(*parsed, set);
  std::remove(path.c_str());
}

TEST(QrsRoundtripTest, RandomizedSetsSurvive) {
  std::mt19937_64 rng(20260809);
  for (int round = 0; round < 10; ++round) {
    const StoredRuleSet set =
        servetest::RandomRuleSet(rng, 2 + round % 5, 1 + round * 7);
    const std::string path = TempPath("roundtrip_rand.qrs");
    ASSERT_TRUE(WriteRuleSet(set, path).ok()) << "round " << round;
    auto read = ReadRuleSet(path);
    ASSERT_TRUE(read.ok()) << read.status().ToString();
    ExpectSameRuleSet(*read, set);
    std::remove(path.c_str());
  }
}

TEST(QrsRoundtripTest, WriterRejectsInvalidRules) {
  StoredRuleSet set = servetest::MakeRuleSet();
  set.rules[0].antecedent.clear();  // empty side
  const std::string path = TempPath("roundtrip_bad.qrs");
  EXPECT_FALSE(WriteRuleSet(set, path).ok());

  set = servetest::MakeRuleSet();
  set.rules[1].consequent.assign(300, StoredItem{0, 0, 0});  // > 255 items
  EXPECT_FALSE(WriteRuleSet(set, path).ok());
}

TEST(QrsRoundtripTest, MissingFileIsIOError) {
  auto read = ReadRuleSet(TempPath("does_not_exist.qrs"));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace qarm
