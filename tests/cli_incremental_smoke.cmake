# Incremental mining end to end through the real binary:
#   convert -> mine --append (seeds the base checkpoint) -> qarm append ->
#   mine --append (merges only the appended blocks) -> byte-compare against
#   a from-scratch mine of the grown file.
# Then the crash matrix: a mine --append run SIGKILL'd mid-run
# (--kill-after-pass=2) at threads {1,4} x workers {1,4} must, on rerun
# with the same flags, still end byte-identical to the from-scratch mine.
#
# All byte comparisons use --format=csv: the rules alone, no timing stats.
set(DATA "${WORK_DIR}/inc_base.csv")
set(DELTA "${WORK_DIR}/inc_delta.csv")
set(QBT "${WORK_DIR}/inc.qbt")
set(QCP "${WORK_DIR}/inc.qcp")
set(SCHEMA
  monthly_income:quant:int,credit_limit:quant:int,current_balance:quant:int,ytd_balance:quant:int,ytd_interest:quant:double,employee_category:cat,marital_status:cat)
# Interval override + coarse minsup keep the equi-depth ranges far from the
# support thresholds, so the same-distribution append below provably keeps
# the item catalog stable and the delta passes actually merge.
set(MINE_FLAGS --minsup=0.25 --minconf=0.4 --maxsup=0.45 --intervals=9)

function(run_or_die out_var)
  execute_process(COMMAND ${ARGN}
    OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGN}\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
  set(${out_var}_stderr "${err}" PARENT_SCOPE)
endfunction()

# The delta re-uses the base generator seed, so its rows follow the same
# distribution and every item keeps its support ratio after the append.
run_or_die(ignored ${QARM} gen --output=${DATA} --records=6000 --seed=17)
run_or_die(ignored ${QARM} gen --output=${DELTA} --records=6000 --seed=17)

run_or_die(ignored ${QARM} convert --input=${DATA} --schema=${SCHEMA}
  --output=${QBT} --block-rows=256 ${MINE_FLAGS})

# First append-mode run: no checkpoint yet -> full mine, base left behind.
file(REMOVE "${QCP}")
run_or_die(first ${QARM} --input-qbt=${QBT} ${MINE_FLAGS}
  --checkpoint=${QCP} --append --format=csv)
if(NOT EXISTS "${QCP}")
  message(FATAL_ERROR "append-mode run left no base checkpoint at ${QCP}")
endif()
if(NOT first_stderr MATCHES "# incremental: full mine")
  message(FATAL_ERROR "first run did not report a full mine:\n${first_stderr}")
endif()

# Keep a pristine copy of the base qbt + checkpoint for the crash matrix.
run_or_die(ignored ${CMAKE_COMMAND} -E copy ${QBT} ${QBT}.base)
run_or_die(ignored ${CMAKE_COMMAND} -E copy ${QCP} ${QCP}.base)

# Grow the file, then mine incrementally against the base checkpoint.
run_or_die(append_out ${QARM} append --input=${DELTA} --schema=${SCHEMA}
  --output=${QBT})
run_or_die(incremental ${QARM} --input-qbt=${QBT} ${MINE_FLAGS}
  --checkpoint=${QCP} --append --format=csv)
if(NOT incremental_stderr MATCHES "# incremental: base=")
  message(FATAL_ERROR
    "second run did not take the incremental path:\n${incremental_stderr}")
endif()

# The signature guarantee: byte-identical to a from-scratch mine.
run_or_die(baseline ${QARM} --input-qbt=${QBT} ${MINE_FLAGS} --format=csv)
if(NOT incremental STREQUAL baseline)
  message(FATAL_ERROR
    "incremental rules differ from the from-scratch mine\n--- baseline\n"
    "${baseline}\n--- incremental\n${incremental}")
endif()

# Crash matrix: SIGKILL an incremental mine after pass 2, rerun with the
# same flags, and require the from-scratch rules — at every threads x
# workers combination.
foreach(threads 1 4)
  foreach(workers 1 4)
    set(cell "t${threads}w${workers}")
    set(cell_qbt "${WORK_DIR}/inc_${cell}.qbt")
    set(cell_qcp "${WORK_DIR}/inc_${cell}.qcp")
    run_or_die(ignored ${CMAKE_COMMAND} -E copy ${QBT}.base ${cell_qbt})
    run_or_die(ignored ${CMAKE_COMMAND} -E copy ${QCP}.base ${cell_qcp})
    run_or_die(ignored ${QARM} append --input=${DELTA} --schema=${SCHEMA}
      --output=${cell_qbt})

    execute_process(
      COMMAND ${QARM} --input-qbt=${cell_qbt} ${MINE_FLAGS}
        --checkpoint=${cell_qcp} --append --format=csv
        --threads=${threads} --workers=${workers} --kill-after-pass=2
      RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
    if(rc EQUAL 0)
      message(FATAL_ERROR "${cell}: --kill-after-pass=2 run survived")
    endif()
    if(NOT EXISTS "${cell_qcp}")
      message(FATAL_ERROR "${cell}: killed run left no checkpoint")
    endif()

    run_or_die(recovered ${QARM} --input-qbt=${cell_qbt} ${MINE_FLAGS}
      --checkpoint=${cell_qcp} --append --format=csv
      --threads=${threads} --workers=${workers})
    if(NOT recovered STREQUAL baseline)
      message(FATAL_ERROR
        "${cell}: rules after kill+resume differ from the from-scratch "
        "mine\n--- baseline\n${baseline}\n--- recovered\n${recovered}")
    endif()
  endforeach()
endforeach()
