#include "core/support_counting.h"

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "index/rstar_tree.h"
#include "testutil.h"

namespace qarm {
namespace {

using testutil::BruteForceSupport;
using testutil::CatAttr;
using testutil::MakeMappedTable;
using testutil::QuantAttr;

MappedTable RandomTable(uint64_t seed, size_t rows_count) {
  Rng rng(seed);
  std::vector<std::vector<int32_t>> rows;
  for (size_t r = 0; r < rows_count; ++r) {
    rows.push_back({static_cast<int32_t>(rng.UniformInt(0, 7)),
                    static_cast<int32_t>(rng.UniformInt(0, 1)),
                    static_cast<int32_t>(rng.UniformInt(0, 5)),
                    static_cast<int32_t>(rng.UniformInt(0, 2))});
  }
  return MakeMappedTable(
      {QuantAttr("q1", 8), CatAttr("c1", {"a", "b"}), QuantAttr("q2", 6),
       CatAttr("c2", {"x", "y", "z"})},
      rows);
}

class SupportCountingTest : public ::testing::TestWithParam<int> {};

TEST_P(SupportCountingTest, MatchesBruteForceAcrossLevels) {
  MappedTable table = RandomTable(static_cast<uint64_t>(GetParam()), 300);
  MinerOptions options;
  options.minsup = 0.1;
  options.max_support = 0.6;
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  ASSERT_GT(catalog.num_items(), 0u);

  // Level 2 candidates: all cross-attribute pairs.
  ItemsetSet l1(1);
  for (size_t i = 0; i < catalog.num_items(); ++i) {
    l1.AppendVector({static_cast<int32_t>(i)});
  }
  ItemsetSet c2 = GenerateCandidates(catalog, l1);
  CountingStats stats;
  std::vector<uint32_t> counts =
      CountSupports(table, catalog, c2, options, &stats);
  ASSERT_EQ(counts.size(), c2.size());
  EXPECT_GT(stats.num_super_candidates, 0u);

  for (size_t c = 0; c < c2.size(); ++c) {
    RangeItemset itemset = catalog.Decode(c2.itemset_vector(c));
    EXPECT_EQ(counts[c], BruteForceSupport(table, itemset))
        << "candidate " << c;
  }

  // Level 3 from the actually frequent pairs.
  uint64_t min_count = static_cast<uint64_t>(options.minsup * 300);
  ItemsetSet l2(2);
  for (size_t c = 0; c < c2.size(); ++c) {
    if (counts[c] >= min_count) l2.Append(c2.itemset(c));
  }
  ItemsetSet c3 = GenerateCandidates(catalog, l2);
  if (!c3.empty()) {
    std::vector<uint32_t> counts3 =
        CountSupports(table, catalog, c3, options, nullptr);
    for (size_t c = 0; c < c3.size(); ++c) {
      RangeItemset itemset = catalog.Decode(c3.itemset_vector(c));
      EXPECT_EQ(counts3[c], BruteForceSupport(table, itemset));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SupportCountingTest,
                         ::testing::Values(11, 22, 33, 44));

TEST(SupportCountingTest, PurelyCategoricalCandidates) {
  MappedTable table = RandomTable(5, 200);
  MinerOptions options;
  options.minsup = 0.05;
  options.max_support = 1.0;
  ItemCatalog catalog = ItemCatalog::Build(table, options);

  // Candidates pairing the two categorical attributes only.
  ItemsetSet c2(2);
  std::vector<std::pair<int32_t, int32_t>> kept;
  for (size_t i = 0; i < catalog.num_items(); ++i) {
    for (size_t j = i + 1; j < catalog.num_items(); ++j) {
      const RangeItem& a = catalog.item(static_cast<int32_t>(i));
      const RangeItem& b = catalog.item(static_cast<int32_t>(j));
      if (a.attr == 1 && b.attr == 3) {
        c2.AppendVector(
            {static_cast<int32_t>(i), static_cast<int32_t>(j)});
      }
    }
  }
  ASSERT_GT(c2.size(), 0u);
  CountingStats stats;
  std::vector<uint32_t> counts =
      CountSupports(table, catalog, c2, options, &stats);
  EXPECT_EQ(stats.num_direct, stats.num_super_candidates);
  for (size_t c = 0; c < c2.size(); ++c) {
    EXPECT_EQ(counts[c],
              BruteForceSupport(table, catalog.Decode(c2.itemset_vector(c))));
  }
}

// A table with wide quantitative domains, so that a handful of candidate
// pairs makes the dense grid bigger than the R*-tree estimate (the regime
// where the Section 5.2 heuristic must switch engines under a tight memory
// budget).
struct WideDomainFixture {
  MappedTable table;
  ItemCatalog catalog;
  ItemsetSet candidates{2};

  static WideDomainFixture Make(uint64_t seed) {
    Rng rng(seed);
    std::vector<std::vector<int32_t>> rows;
    for (size_t r = 0; r < 400; ++r) {
      rows.push_back({static_cast<int32_t>(rng.UniformInt(0, 39)),
                      static_cast<int32_t>(rng.UniformInt(0, 39))});
    }
    MappedTable table = MakeMappedTable(
        {QuantAttr("q1", 40), QuantAttr("q2", 40)}, rows);
    MinerOptions options;
    options.minsup = 0.05;
    options.max_support = 0.30;
    ItemCatalog catalog = ItemCatalog::Build(table, options);
    WideDomainFixture f{std::move(table), std::move(catalog), ItemsetSet(2)};
    // A handful of cross-attribute pairs: few enough that the R*-tree
    // estimate undercuts the 40x40 grid.
    std::vector<int32_t> q1_items, q2_items;
    for (size_t i = 0; i < f.catalog.num_items(); ++i) {
      (f.catalog.item(static_cast<int32_t>(i)).attr == 0 ? q1_items
                                                         : q2_items)
          .push_back(static_cast<int32_t>(i));
    }
    for (size_t i = 0; i < q1_items.size() && i < 5; ++i) {
      for (size_t j = 0; j < q2_items.size() && j < 4; ++j) {
        f.candidates.AppendVector({q1_items[i * q1_items.size() / 5],
                                   q2_items[j * q2_items.size() / 4]});
      }
    }
    return f;
  }
};

TEST(SupportCountingTest, TreeEngineUnderTightBudget) {
  WideDomainFixture f = WideDomainFixture::Make(6);
  ASSERT_GT(f.candidates.size(), 0u);
  MinerOptions options;
  options.minsup = 0.05;
  options.counter_memory_budget_bytes = 1;  // the grid never fits
  CountingStats stats;
  std::vector<uint32_t> counts =
      CountSupports(f.table, f.catalog, f.candidates, options, &stats);
  EXPECT_GT(stats.num_tree_counters, 0u);
  EXPECT_EQ(stats.num_array_counters, 0u);
  for (size_t c = 0; c < f.candidates.size(); ++c) {
    EXPECT_EQ(counts[c],
              BruteForceSupport(f.table,
                                f.catalog.Decode(
                                    f.candidates.itemset_vector(c))));
  }
}

TEST(SupportCountingTest, ArrayAndTreeAgree) {
  WideDomainFixture f = WideDomainFixture::Make(7);
  MinerOptions array_options;
  array_options.minsup = 0.05;  // default budget: grid fits
  MinerOptions tree_options = array_options;
  tree_options.counter_memory_budget_bytes = 1;
  CountingStats array_stats, tree_stats;
  auto array_counts =
      CountSupports(f.table, f.catalog, f.candidates, array_options,
                    &array_stats);
  auto tree_counts = CountSupports(f.table, f.catalog, f.candidates,
                                   tree_options, &tree_stats);
  EXPECT_GT(array_stats.num_array_counters, 0u);
  EXPECT_GT(tree_stats.num_tree_counters, 0u);
  EXPECT_EQ(array_counts, tree_counts);
}

// Graceful degradation: once the first R*-tree has consumed the counter
// budget, later tree-mode groups fall back to a direct scan of their member
// rectangles — slower, but bit-identical counts.
TEST(SupportCountingTest, DegradedGroupsMatchBruteForce) {
  // Three wide-domain attributes: every attribute pair forms its own
  // super-candidate whose 40x40 grid (6.4 KB) loses to the R*-tree
  // estimate for a handful of members, so all three groups want a tree.
  // The 1-byte high-water-mark budget admits only the first and degrades
  // the rest: both engines run in the same pass.
  Rng rng(13);
  std::vector<std::vector<int32_t>> rows;
  for (size_t r = 0; r < 300; ++r) {
    rows.push_back({static_cast<int32_t>(rng.UniformInt(0, 39)),
                    static_cast<int32_t>(rng.UniformInt(0, 39)),
                    static_cast<int32_t>(rng.UniformInt(0, 39))});
  }
  MappedTable table = MakeMappedTable(
      {QuantAttr("q1", 40), QuantAttr("q2", 40), QuantAttr("q3", 40)}, rows);
  MinerOptions options;
  options.minsup = 0.05;
  options.max_support = 0.30;
  options.counter_memory_budget_bytes = 1;  // grids never fit; 1 tree max
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  std::vector<std::vector<int32_t>> by_attr(3);
  for (size_t i = 0; i < catalog.num_items(); ++i) {
    by_attr[static_cast<size_t>(catalog.item(static_cast<int32_t>(i)).attr)]
        .push_back(static_cast<int32_t>(i));
  }
  ItemsetSet c2(2);
  for (size_t a = 0; a < 3; ++a) {
    const std::vector<int32_t>& first = by_attr[a];
    const std::vector<int32_t>& second = by_attr[(a + 1) % 3];
    ASSERT_FALSE(first.empty());
    ASSERT_FALSE(second.empty());
    for (size_t i = 0; i < first.size() && i < 3; ++i) {
      for (size_t j = 0; j < second.size() && j < 3; ++j) {
        // Itemsets are sorted by item id.
        if (first[i] < second[j]) {
          c2.AppendVector({first[i], second[j]});
        } else {
          c2.AppendVector({second[j], first[i]});
        }
      }
    }
  }
  ASSERT_GT(c2.size(), 0u);

  CountingStats stats;
  std::vector<uint32_t> counts =
      CountSupports(table, catalog, c2, options, &stats);
  // The high-water-mark budget admits the first tree and degrades the rest:
  // both engines ran in the same pass.
  EXPECT_GT(stats.num_tree_counters, 0u);
  EXPECT_GT(stats.num_degraded, 0u);
  for (size_t c = 0; c < c2.size(); ++c) {
    EXPECT_EQ(counts[c],
              BruteForceSupport(table, catalog.Decode(c2.itemset_vector(c))))
        << "candidate " << c;
  }

  // The sharded parallel scan reduces degraded counters exactly like tree
  // counters.
  MinerOptions parallel_options = options;
  parallel_options.num_threads = 4;
  CountingStats parallel_stats;
  std::vector<uint32_t> parallel_counts =
      CountSupports(table, catalog, c2, parallel_options, &parallel_stats);
  EXPECT_GT(parallel_stats.num_degraded, 0u);
  EXPECT_EQ(parallel_counts, counts);

  // An unconstrained budget produces the same counts without degrading.
  MinerOptions roomy = options;
  roomy.counter_memory_budget_bytes = MinerOptions().counter_memory_budget_bytes;
  CountingStats roomy_stats;
  std::vector<uint32_t> roomy_counts =
      CountSupports(table, catalog, c2, roomy, &roomy_stats);
  EXPECT_EQ(roomy_stats.num_degraded, 0u);
  EXPECT_EQ(roomy_counts, counts);
}

// A candidate spanning exactly kRStarMaxDims quantitative attributes: the
// scan's fixed per-row point buffers are sized for this maximum and guarded
// by a QARM_CHECK_LE, so the widest legal candidate must count correctly
// (serially and sharded) rather than overflow.
TEST(SupportCountingTest, CandidateAtMaxDimsCounts) {
  Rng rng(17);
  std::vector<std::vector<int32_t>> rows;
  for (size_t r = 0; r < 200; ++r) {
    std::vector<int32_t> row;
    for (size_t a = 0; a < kRStarMaxDims; ++a) {
      row.push_back(static_cast<int32_t>(rng.UniformInt(0, 1)));
    }
    rows.push_back(std::move(row));
  }
  std::vector<MappedAttribute> attrs;
  for (size_t a = 0; a < kRStarMaxDims; ++a) {
    std::string name = "q";  // GCC 12 -Wrestrict misfires on "q" + to_string
    name += std::to_string(a);
    attrs.push_back(QuantAttr(name, 2));
  }
  MappedTable table = MakeMappedTable(attrs, rows);
  MinerOptions options;
  options.minsup = 0.0001;  // a 16-way conjunction is rare by construction
  options.max_support = 0.6;
  ItemCatalog catalog = ItemCatalog::Build(table, options);

  // One item per attribute, lowest item id first (itemsets are id-sorted).
  std::vector<int32_t> member;
  std::vector<bool> taken(kRStarMaxDims, false);
  for (size_t i = 0; i < catalog.num_items(); ++i) {
    size_t attr =
        static_cast<size_t>(catalog.item(static_cast<int32_t>(i)).attr);
    if (!taken[attr]) {
      taken[attr] = true;
      member.push_back(static_cast<int32_t>(i));
    }
  }
  ASSERT_EQ(member.size(), kRStarMaxDims);
  std::sort(member.begin(), member.end());
  ItemsetSet candidates(kRStarMaxDims);
  candidates.AppendVector(member);

  CountingStats stats;
  std::vector<uint32_t> counts =
      CountSupports(table, catalog, candidates, options, &stats);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0],
            BruteForceSupport(table,
                              catalog.Decode(candidates.itemset_vector(0))));

  MinerOptions parallel_options = options;
  parallel_options.num_threads = 4;
  std::vector<uint32_t> parallel_counts =
      CountSupports(table, catalog, candidates, parallel_options, nullptr);
  EXPECT_EQ(parallel_counts, counts);
}

TEST(SupportCountingTest, EmptyCandidates) {
  MappedTable table = RandomTable(8, 50);
  MinerOptions options;
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  ItemsetSet empty(2);
  CountingStats stats;
  auto counts = CountSupports(table, catalog, empty, options, &stats);
  EXPECT_TRUE(counts.empty());
}

}  // namespace
}  // namespace qarm
