#include "core/expectation.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace qarm {
namespace {

using testutil::CatAttr;
using testutil::MakeMappedTable;
using testutil::QuantAttr;

// x uniform over 0..9 (10 records each value), y = "1" for x in 0..4.
struct Fixture {
  MappedTable table;
  ItemCatalog catalog;

  static Fixture Make() {
    std::vector<std::vector<int32_t>> rows;
    for (int32_t x = 0; x < 10; ++x) {
      for (int i = 0; i < 10; ++i) {
        rows.push_back({x, x < 5 ? 1 : 0});
      }
    }
    MappedTable table = MakeMappedTable(
        {QuantAttr("x", 10), CatAttr("y", {"0", "1"})}, rows);
    MinerOptions options;
    options.minsup = 0.05;
    options.max_support = 1.0;
    ItemCatalog catalog = ItemCatalog::Build(table, options);
    return Fixture{std::move(table), std::move(catalog)};
  }
};

TEST(ExpectationTest, QuarterOfRange) {
  // The paper's motivating example: people aged 20..25 are a quarter of
  // those 20..30ish. Here: z = <x:0..1>, ẑ = <x:0..7>. Pr(z)=0.2,
  // Pr(ẑ)=0.8, so E[Pr(z)] = 0.2/0.8 * sup(ẑ).
  Fixture f = Fixture::Make();
  RangeItemset z = {{0, 0, 1}};
  RangeItemset z_hat = {{0, 0, 7}};
  double expected = ExpectedSupport(z, z_hat, 0.8, f.catalog);
  EXPECT_NEAR(expected, 0.2, 1e-12);
}

TEST(ExpectationTest, MultiAttributeProduct) {
  Fixture f = Fixture::Make();
  // z = {<x:0..1>, <y:1>}, ẑ = {<x:0..4>, <y:1>}: ratio = 0.2/0.5 * 1.
  RangeItemset z = {{0, 0, 1}, {1, 1, 1}};
  RangeItemset z_hat = {{0, 0, 4}, {1, 1, 1}};
  // sup(ẑ) is 0.5 (x in 0..4 implies y=1).
  double expected = ExpectedSupport(z, z_hat, 0.5, f.catalog);
  EXPECT_NEAR(expected, 0.2, 1e-12);
  // Actual support of z is also 0.2 (uniform within the range), so the
  // data is exactly as expected -> never R-interesting for R > 1.
}

TEST(ExpectationTest, IdenticalItemsetRatioIsOne) {
  Fixture f = Fixture::Make();
  RangeItemset z = {{0, 2, 5}};
  EXPECT_NEAR(ExpectedSupport(z, z, 0.37, f.catalog), 0.37, 1e-12);
}

TEST(ExpectationTest, ZeroDenominatorYieldsZero) {
  // A generalization with zero marginal support cannot form expectations.
  std::vector<std::vector<int32_t>> rows = {{0}, {0}};
  MappedTable table = MakeMappedTable({QuantAttr("x", 3)}, rows);
  MinerOptions options;
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  RangeItemset z = {{0, 1, 1}};
  RangeItemset z_hat = {{0, 1, 2}};  // no records there
  EXPECT_EQ(ExpectedSupport(z, z_hat, 0.0, catalog), 0.0);
}

TEST(ExpectedConfidenceTest, ScalesByConsequentRatio) {
  Fixture f = Fixture::Make();
  // Ancestor rule: <y:1> => <x:0..4> with confidence 1.0.
  // Specialized consequent <x:0..1>: expected confidence = 0.2/0.5 * 1.0.
  RangeItemset y = {{0, 0, 1}};
  RangeItemset y_hat = {{0, 0, 4}};
  EXPECT_NEAR(ExpectedConfidence(y, y_hat, 1.0, f.catalog), 0.4, 1e-12);
}

TEST(ExpectedConfidenceTest, CategoricalConsequentUnchanged) {
  Fixture f = Fixture::Make();
  // Categorical items cannot specialize: ratio 1.
  RangeItemset y = {{1, 1, 1}};
  EXPECT_NEAR(ExpectedConfidence(y, y, 0.7, f.catalog), 0.7, 1e-12);
}

}  // namespace
}  // namespace qarm
