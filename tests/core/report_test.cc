#include "core/report.h"

#include <gtest/gtest.h>

#include "core/miner.h"
#include "table/datagen.h"

namespace qarm {
namespace {

MiningResult MinePeople() {
  MinerOptions options;
  options.minsup = 0.4;
  options.minconf = 0.5;
  options.max_support = 1.0;
  options.num_intervals_override = 4;
  QuantitativeRuleMiner miner(options);
  return std::move(miner.Mine(MakePeopleTable())).value();
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "\"plain\"");
  EXPECT_EQ(JsonEscape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonEscape("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(JsonEscape("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(JsonEscape(std::string("ctl\x01", 4)), "\"ctl\\u0001\"");
}

TEST(RuleToJsonTest, ContainsFields) {
  MiningResult result = MinePeople();
  ASSERT_FALSE(result.rules.empty());
  std::string json = RuleToJson(result.rules[0], result.mapped);
  EXPECT_NE(json.find("\"antecedent\":["), std::string::npos);
  EXPECT_NE(json.find("\"consequent\":["), std::string::npos);
  EXPECT_NE(json.find("\"support\":"), std::string::npos);
  EXPECT_NE(json.find("\"confidence\":"), std::string::npos);
  EXPECT_NE(json.find("\"interesting\":true"), std::string::npos);
}

TEST(RuleToJsonTest, QuantitativeItemHasBounds) {
  MiningResult result = MinePeople();
  // Find a rule involving Age (quantitative).
  for (const QuantRule& r : result.rules) {
    for (const RangeItem& item : r.antecedent) {
      if (item.attr == 0) {
        std::string json = RuleToJson(r, result.mapped);
        EXPECT_NE(json.find("\"kind\":\"quantitative\""), std::string::npos);
        EXPECT_NE(json.find("\"lo\":"), std::string::npos);
        EXPECT_NE(json.find("\"hi\":"), std::string::npos);
        return;
      }
    }
  }
  FAIL() << "no rule over Age found";
}

TEST(MiningResultToJsonTest, WellFormedBraces) {
  MiningResult result = MinePeople();
  std::string json = MiningResultToJson(result);
  // Balanced braces/brackets (a cheap well-formedness proxy).
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_NE(json.find("\"stats\":"), std::string::npos);
  EXPECT_NE(json.find("\"passes\":["), std::string::npos);
}

TEST(MiningResultToJsonTest, InterestingOnlyFilters) {
  Table data = MakeFinancialDataset(1500, 8);
  MinerOptions options;
  options.minsup = 0.2;
  options.minconf = 0.3;
  options.partial_completeness = 3.0;
  options.interest_level = 1.5;
  QuantitativeRuleMiner miner(options);
  auto result = miner.Mine(data);
  ASSERT_TRUE(result.ok());
  std::string all = MiningResultToJson(*result, false);
  std::string filtered = MiningResultToJson(*result, true);
  EXPECT_LT(filtered.size(), all.size());
  EXPECT_EQ(filtered.find("\"interesting\":false"), std::string::npos);
}

TEST(RulesToCsvTest, HeaderAndRows) {
  MiningResult result = MinePeople();
  std::string csv = RulesToCsv(result.rules, result.mapped);
  EXPECT_EQ(csv.rfind(
                "antecedent,consequent,support,confidence,count,interesting\n",
                0),
            0u);
  size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, result.rules.size() + 1);
}

TEST(RulesToCsvTest, QuotesFieldsWithCommas) {
  // Multi-item antecedents render with " and " (no comma), but a label with
  // a comma must be quoted.
  MappedTable mapped(
      {[] {
        MappedAttribute attr;
        attr.name = "city";
        attr.kind = AttributeKind::kCategorical;
        attr.labels = {"San Jose, CA"};
        return attr;
      }()},
      0);
  QuantRule rule;
  rule.antecedent = {RangeItem{0, 0, 0}};
  rule.consequent = {RangeItem{0, 0, 0}};
  std::string csv = RulesToCsv({rule}, mapped);
  EXPECT_NE(csv.find("\"<city: San Jose, CA>\""), std::string::npos);
}

}  // namespace
}  // namespace qarm
