#include "core/apriori_quant.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "testutil.h"

namespace qarm {
namespace {

using testutil::BruteForceSupport;
using testutil::CatAttr;
using testutil::MakeMappedTable;
using testutil::QuantAttr;

TEST(AprioriQuantTest, AllFrequentItemsetsAreTrulyFrequent) {
  Rng rng(17);
  std::vector<std::vector<int32_t>> rows;
  for (int r = 0; r < 400; ++r) {
    int32_t q = static_cast<int32_t>(rng.UniformInt(0, 9));
    // Correlate the categorical with q so multi-itemsets emerge.
    int32_t c = q < 5 ? 0 : static_cast<int32_t>(rng.UniformInt(0, 1));
    rows.push_back({q, c});
  }
  MappedTable table = MakeMappedTable(
      {QuantAttr("q", 10), CatAttr("c", {"lo", "hi"})}, rows);
  MinerOptions options;
  options.minsup = 0.15;
  options.max_support = 0.5;
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  FrequentItemsetResult result =
      MineFrequentItemsets(table, catalog, options);
  ASSERT_FALSE(result.itemsets.empty());
  uint64_t min_count = static_cast<uint64_t>(0.15 * 400);
  for (const FrequentItemset& f : result.itemsets) {
    RangeItemset decoded = catalog.Decode(f.items);
    uint64_t expected = BruteForceSupport(table, decoded);
    EXPECT_EQ(f.count, expected);
    EXPECT_GE(f.count, min_count);
  }
}

TEST(AprioriQuantTest, CompletenessAgainstBruteForce) {
  // Exhaustively enumerate all itemsets over the frequent items and check
  // everything frequent is reported (Apriori must not lose itemsets).
  Rng rng(23);
  std::vector<std::vector<int32_t>> rows;
  for (int r = 0; r < 200; ++r) {
    int32_t a = static_cast<int32_t>(rng.UniformInt(0, 3));
    int32_t b = static_cast<int32_t>(rng.UniformInt(0, 2));
    int32_t c = (a + b) % 2;  // strong dependency
    rows.push_back({a, b, c});
  }
  MappedTable table = MakeMappedTable(
      {QuantAttr("a", 4), QuantAttr("b", 3), CatAttr("c", {"0", "1"})}, rows);
  MinerOptions options;
  options.minsup = 0.2;
  options.max_support = 0.7;
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  FrequentItemsetResult result =
      MineFrequentItemsets(table, catalog, options);

  std::map<std::vector<int32_t>, uint64_t> mined;
  for (const FrequentItemset& f : result.itemsets) {
    mined[f.items] = f.count;
  }

  // Brute force: enumerate all 1-, 2-, 3-item combinations of catalog items
  // with distinct attributes (deduplicated: (i,i,k) and (i,k,k) both
  // denote the pair {i,k}).
  const uint64_t min_count = static_cast<uint64_t>(0.2 * 200);
  const int32_t n = static_cast<int32_t>(catalog.num_items());
  std::set<std::vector<int32_t>> brute_frequent;
  for (int32_t i = 0; i < n; ++i) {
    for (int32_t j = i; j < n; ++j) {
      for (int32_t k = j; k < n; ++k) {
        std::vector<int32_t> ids;
        ids.push_back(i);
        if (j != i) ids.push_back(j);
        if (k != j) ids.push_back(k);
        // Skip sets with repeated attributes.
        std::set<int32_t> attrs;
        bool ok = true;
        for (int32_t id : ids) {
          ok &= attrs.insert(catalog.item(id).attr).second;
        }
        if (!ok) continue;
        uint64_t support = BruteForceSupport(table, catalog.Decode(ids));
        if (support >= min_count) {
          brute_frequent.insert(ids);
          auto it = mined.find(ids);
          ASSERT_NE(it, mined.end())
              << "missing frequent itemset of size " << ids.size();
          EXPECT_EQ(it->second, support);
        }
      }
    }
  }
  EXPECT_EQ(mined.size(), brute_frequent.size());
}

TEST(AprioriQuantTest, PassStatsRecorded) {
  MappedTable table = MakeMappedTable(
      {QuantAttr("a", 2), CatAttr("b", {"x", "y"})},
      {{0, 0}, {0, 0}, {1, 1}, {0, 1}});
  MinerOptions options;
  options.minsup = 0.25;
  options.max_support = 1.0;
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  FrequentItemsetResult result =
      MineFrequentItemsets(table, catalog, options);
  ASSERT_GE(result.passes.size(), 2u);
  EXPECT_EQ(result.passes[0].k, 1u);
  EXPECT_EQ(result.passes[1].k, 2u);
  EXPECT_EQ(result.passes[0].num_frequent, catalog.num_items());
}

TEST(AprioriQuantTest, MaxItemsetSizeCapsLevels) {
  Rng rng(31);
  std::vector<std::vector<int32_t>> rows;
  for (int r = 0; r < 100; ++r) {
    int32_t v = static_cast<int32_t>(rng.UniformInt(0, 1));
    rows.push_back({v, v, v});
  }
  MappedTable table = MakeMappedTable(
      {QuantAttr("a", 2), QuantAttr("b", 2), CatAttr("c", {"0", "1"})}, rows);
  MinerOptions options;
  options.minsup = 0.2;
  options.max_support = 1.0;
  options.max_itemset_size = 2;
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  FrequentItemsetResult result =
      MineFrequentItemsets(table, catalog, options);
  for (const FrequentItemset& f : result.itemsets) {
    EXPECT_LE(f.items.size(), 2u);
  }
}

TEST(AprioriQuantTest, EmptyTableYieldsNothing) {
  MappedTable table = MakeMappedTable({QuantAttr("a", 2)}, {});
  MinerOptions options;
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  FrequentItemsetResult result =
      MineFrequentItemsets(table, catalog, options);
  EXPECT_TRUE(result.itemsets.empty());
}

}  // namespace
}  // namespace qarm
