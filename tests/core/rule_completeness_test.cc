// Property test: on small random tables, the miner's rule set must exactly
// equal the brute-force enumeration — every itemset over the frequent items
// with distinct attributes, every antecedent/consequent split, thresholded
// on support and confidence.
#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/frequent_items.h"
#include "core/miner.h"
#include "core/rules.h"
#include "testutil.h"

namespace qarm {
namespace {

using testutil::BruteForceSupport;
using testutil::CatAttr;
using testutil::MakeMappedTable;
using testutil::QuantAttr;

// Canonical form of a rule for set comparison.
using RuleKey = std::pair<RangeItemset, RangeItemset>;

bool ItemsetLess(const RangeItemset& a, const RangeItemset& b) {
  return std::lexicographical_compare(
      a.begin(), a.end(), b.begin(), b.end(),
      [](const RangeItem& x, const RangeItem& y) { return x < y; });
}

struct RuleKeyLess {
  bool operator()(const RuleKey& a, const RuleKey& b) const {
    if (a.first != b.first) return ItemsetLess(a.first, b.first);
    return ItemsetLess(a.second, b.second);
  }
};

class RuleCompletenessTest : public ::testing::TestWithParam<int> {};

TEST_P(RuleCompletenessTest, MinerMatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 101 + 5);
  std::vector<std::vector<int32_t>> rows;
  for (int r = 0; r < 120; ++r) {
    int32_t a = static_cast<int32_t>(rng.UniformInt(0, 3));
    int32_t b = static_cast<int32_t>(rng.UniformInt(0, 2));
    // Correlate c with a so rules of every shape emerge.
    int32_t c = rng.Bernoulli(0.7) ? a % 2 : static_cast<int32_t>(
                                                 rng.UniformInt(0, 1));
    rows.push_back({a, b, c});
  }
  MappedTable table = MakeMappedTable(
      {QuantAttr("a", 4), QuantAttr("b", 3), CatAttr("c", {"x", "y"})}, rows);

  MinerOptions options;
  options.minsup = 0.15;
  options.minconf = 0.55;
  options.max_support = 0.75;
  QuantitativeRuleMiner miner(options);
  Result<MiningResult> mine_result =
      miner.MineMapped(table.Head(rows.size()));
  ASSERT_TRUE(mine_result.ok()) << mine_result.status().ToString();
  MiningResult& result = *mine_result;

  std::set<RuleKey, RuleKeyLess> mined;
  for (const QuantRule& r : result.rules) {
    mined.insert({r.antecedent, r.consequent});
    // Every reported rule's metrics are exact.
    uint64_t full = BruteForceSupport(table, r.UnionItemset());
    uint64_t ante = BruteForceSupport(table, r.antecedent);
    EXPECT_EQ(r.count, full);
    EXPECT_DOUBLE_EQ(r.support, static_cast<double>(full) / 120.0);
    EXPECT_DOUBLE_EQ(r.confidence,
                     static_cast<double>(full) / static_cast<double>(ante));
  }

  // Brute force over the catalog's items.
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  const int32_t n = static_cast<int32_t>(catalog.num_items());
  const uint64_t min_count = static_cast<uint64_t>(0.15 * 120 + 0.999999);
  std::set<RuleKey, RuleKeyLess> expected;
  // Enumerate itemsets of sizes 2 and 3 (the table has 3 attributes).
  std::vector<std::vector<int32_t>> itemsets;
  for (int32_t i = 0; i < n; ++i) {
    for (int32_t j = i + 1; j < n; ++j) {
      if (catalog.item(i).attr == catalog.item(j).attr) continue;
      itemsets.push_back({i, j});
      for (int32_t k = j + 1; k < n; ++k) {
        if (catalog.item(k).attr == catalog.item(i).attr ||
            catalog.item(k).attr == catalog.item(j).attr) {
          continue;
        }
        itemsets.push_back({i, j, k});
      }
    }
  }
  for (const std::vector<int32_t>& ids : itemsets) {
    RangeItemset items = catalog.Decode(ids);
    uint64_t full = BruteForceSupport(table, items);
    if (full < min_count) continue;
    // All non-empty proper splits.
    const size_t size = ids.size();
    for (uint32_t mask = 1; mask + 1 < (1u << size); ++mask) {
      RangeItemset ante, cons;
      for (size_t p = 0; p < size; ++p) {
        if (mask & (1u << p)) {
          ante.push_back(items[p]);
        } else {
          cons.push_back(items[p]);
        }
      }
      uint64_t ante_count = BruteForceSupport(table, ante);
      double confidence =
          static_cast<double>(full) / static_cast<double>(ante_count);
      if (confidence + 1e-12 >= options.minconf) {
        expected.insert({ante, cons});
      }
    }
  }

  EXPECT_EQ(mined.size(), expected.size());
  for (const RuleKey& key : expected) {
    EXPECT_TRUE(mined.count(key) > 0)
        << "missing rule "
        << ItemsetToString(key.first, result.mapped) << " => "
        << ItemsetToString(key.second, result.mapped);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleCompletenessTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace qarm
