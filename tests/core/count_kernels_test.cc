// The SIMD counting kernels against their scalar reference: every ISA must
// produce bit-identical masks, counts, and indices on every input shape —
// vector-width tails (n % 64, n % 8), all-missing columns, degenerate
// lo==hi ranges. The scalar table defines the semantics; any divergence
// here would silently corrupt mined rule counts.
#include "core/count_kernels.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu_dispatch.h"
#include "common/random.h"
#include "partition/mapped_table.h"

namespace qarm {
namespace {

// Row counts chosen to hit every tail shape: single partial word, exact
// word boundaries, word + partial vector, partial 8-lane and 4-lane tails.
const size_t kSizes[] = {1, 3, 7, 8, 9, 63, 64, 65, 127, 128, 200, 1000};

std::vector<SimdIsa> VectorIsas() {
  std::vector<SimdIsa> isas;
  for (SimdIsa isa : {SimdIsa::kSse42, SimdIsa::kAvx2}) {
    if (static_cast<int>(isa) <= static_cast<int>(DetectCpuIsa())) {
      isas.push_back(isa);
    }
  }
  return isas;
}

std::vector<int32_t> RandomColumn(Rng& rng, size_t n, int32_t domain) {
  std::vector<int32_t> col(n);
  for (size_t i = 0; i < n; ++i) {
    col[i] = rng.UniformInt(0, 9) == 0
                 ? kMissingValue
                 : static_cast<int32_t>(rng.UniformInt(0, domain - 1));
  }
  return col;
}

// A non-trivial starting mask (fill_ones then clear a random sprinkle),
// so the &= semantics of the ops is exercised, not just assignment.
std::vector<uint64_t> RandomMask(Rng& rng, const CountKernels& kern,
                                 size_t n) {
  std::vector<uint64_t> mask(MaskWords(n));
  kern.fill_ones(mask.data(), n);
  for (size_t i = 0; i < n; i += 3) {
    if (rng.UniformInt(0, 1) == 0) {
      mask[i / 64] &= ~(uint64_t{1} << (i % 64));
    }
  }
  return mask;
}

TEST(CountKernelsTest, FillOnesZeroesTailBits) {
  const CountKernels& kern = CountKernels::ForIsa(SimdIsa::kScalar);
  for (size_t n : kSizes) {
    std::vector<uint64_t> mask(MaskWords(n), 0xDEADBEEFDEADBEEFull);
    kern.fill_ones(mask.data(), n);
    EXPECT_EQ(kern.popcount(mask.data(), n), n) << "n=" << n;
    if (n % 64 != 0) {
      EXPECT_EQ(mask.back() >> (n % 64), 0u) << "n=" << n;
    }
  }
}

TEST(CountKernelsTest, MaskOpsMatchScalarReference) {
  const CountKernels& scalar = CountKernels::ForIsa(SimdIsa::kScalar);
  for (SimdIsa isa : VectorIsas()) {
    const CountKernels& kern = CountKernels::ForIsa(isa);
    ASSERT_EQ(kern.isa, isa);
    Rng rng(7 + static_cast<uint64_t>(isa));
    for (size_t n : kSizes) {
      const std::vector<int32_t> col = RandomColumn(rng, n, 12);
      const std::vector<uint64_t> start = RandomMask(rng, scalar, n);
      const int32_t value = static_cast<int32_t>(rng.UniformInt(0, 11));
      int32_t lo = static_cast<int32_t>(rng.UniformInt(0, 11));
      int32_t hi = static_cast<int32_t>(rng.UniformInt(0, 11));
      if (lo > hi) std::swap(lo, hi);

      std::vector<uint64_t> want = start, got = start;
      scalar.mask_eq(want.data(), col.data(), n, value);
      kern.mask_eq(got.data(), col.data(), n, value);
      EXPECT_EQ(got, want) << IsaName(isa) << " mask_eq n=" << n;

      want = start;
      got = start;
      scalar.mask_neq(want.data(), col.data(), n, kMissingValue);
      kern.mask_neq(got.data(), col.data(), n, kMissingValue);
      EXPECT_EQ(got, want) << IsaName(isa) << " mask_neq n=" << n;

      want = start;
      got = start;
      scalar.mask_range(want.data(), col.data(), n, lo, hi);
      kern.mask_range(got.data(), col.data(), n, lo, hi);
      EXPECT_EQ(got, want) << IsaName(isa) << " mask_range n=" << n;
      EXPECT_EQ(kern.popcount(got.data(), n), scalar.popcount(want.data(), n));
    }
  }
}

TEST(CountKernelsTest, AllMissingColumnClearsEverything) {
  for (SimdIsa isa : VectorIsas()) {
    const CountKernels& kern = CountKernels::ForIsa(isa);
    for (size_t n : kSizes) {
      const std::vector<int32_t> col(n, kMissingValue);
      std::vector<uint64_t> mask(MaskWords(n));
      kern.fill_ones(mask.data(), n);
      kern.mask_neq(mask.data(), col.data(), n, kMissingValue);
      EXPECT_EQ(kern.popcount(mask.data(), n), 0u)
          << IsaName(isa) << " n=" << n;
      // And an equality probe against a real value matches nothing either.
      kern.fill_ones(mask.data(), n);
      kern.mask_eq(mask.data(), col.data(), n, 3);
      EXPECT_EQ(kern.popcount(mask.data(), n), 0u)
          << IsaName(isa) << " n=" << n;
    }
  }
}

TEST(CountKernelsTest, PointRangeEqualsEqualityCompare) {
  // A lo==hi range (categorical-style rectangle edge) must select exactly
  // the rows an equality compare selects.
  for (SimdIsa isa : VectorIsas()) {
    const CountKernels& kern = CountKernels::ForIsa(isa);
    Rng rng(19);
    for (size_t n : kSizes) {
      const std::vector<int32_t> col = RandomColumn(rng, n, 5);
      std::vector<uint64_t> via_range(MaskWords(n)), via_eq(MaskWords(n));
      kern.fill_ones(via_range.data(), n);
      kern.fill_ones(via_eq.data(), n);
      kern.mask_range(via_range.data(), col.data(), n, 2, 2);
      kern.mask_eq(via_eq.data(), col.data(), n, 2);
      EXPECT_EQ(via_range, via_eq) << IsaName(isa) << " n=" << n;
    }
  }
}

TEST(CountKernelsTest, FlatIndexMatchesScalar) {
  const CountKernels& scalar = CountKernels::ForIsa(SimdIsa::kScalar);
  for (SimdIsa isa : VectorIsas()) {
    const CountKernels& kern = CountKernels::ForIsa(isa);
    Rng rng(23);
    for (size_t n : kSizes) {
      for (size_t dims : {size_t{1}, size_t{2}, size_t{3}}) {
        std::vector<std::vector<int32_t>> cols(dims);
        std::vector<const int32_t*> col_ptrs(dims);
        // Missing values (-1) included on purpose: flat_index wraps rather
        // than branches, and masked-off rows are never read.
        for (size_t d = 0; d < dims; ++d) {
          cols[d] = RandomColumn(rng, n, 9);
          col_ptrs[d] = cols[d].data();
        }
        std::vector<int32_t> strides(dims);
        int32_t stride = 1;
        for (size_t d = dims; d-- > 0;) {
          strides[d] = stride;
          stride *= 9;
        }
        std::vector<int32_t> want(n), got(n);
        scalar.flat_index(want.data(), col_ptrs.data(), strides.data(), dims,
                          n);
        kern.flat_index(got.data(), col_ptrs.data(), strides.data(), dims, n);
        EXPECT_EQ(got, want)
            << IsaName(isa) << " n=" << n << " dims=" << dims;
      }
    }
  }
}

TEST(CountKernelsTest, AddU32MatchesScalar) {
  const CountKernels& scalar = CountKernels::ForIsa(SimdIsa::kScalar);
  for (SimdIsa isa : VectorIsas()) {
    const CountKernels& kern = CountKernels::ForIsa(isa);
    Rng rng(29);
    for (size_t n : kSizes) {
      std::vector<uint32_t> src(n), want(n), got(n);
      for (size_t i = 0; i < n; ++i) {
        src[i] = static_cast<uint32_t>(rng.UniformInt(0, 1 << 30));
        want[i] = got[i] = static_cast<uint32_t>(rng.UniformInt(0, 1 << 30));
      }
      scalar.add_u32(want.data(), src.data(), n);
      kern.add_u32(got.data(), src.data(), n);
      EXPECT_EQ(got, want) << IsaName(isa) << " n=" << n;
    }
  }
}

TEST(CountKernelsTest, ForIsaClampsToDetected) {
  // Requesting more than the CPU has yields a table that actually runs.
  const CountKernels& kern = CountKernels::ForIsa(SimdIsa::kAvx2);
  EXPECT_LE(static_cast<int>(kern.isa), static_cast<int>(DetectCpuIsa()));
  EXPECT_EQ(CountKernels::Active().isa, ActiveIsa());
}

}  // namespace
}  // namespace qarm
