#include "core/interest.h"

#include <gtest/gtest.h>

#include "core/apriori_quant.h"
#include "testutil.h"

namespace qarm {
namespace {

using testutil::BruteForceSupport;
using testutil::CatAttr;
using testutil::MakeMappedTable;
using testutil::QuantAttr;

// A Figure 6-shaped table: x over mapped ids 0..9, categorical y. The joint
// (x=v, y=yes) mass is flat except a spike at v=4; only {<x:4..4>, <y:yes>}
// deserves to be interesting.
struct DecoyFixture {
  MappedTable table;
  ItemCatalog catalog;
  FrequentItemsetResult frequent;
  MinerOptions options;

  static DecoyFixture Make() {
    std::vector<std::vector<int32_t>> rows;
    for (int32_t v = 0; v < 10; ++v) {
      int yes = v == 4 ? 110 : 10;
      for (int i = 0; i < yes; ++i) rows.push_back({v, 1});
      for (int i = 0; i < 90; ++i) rows.push_back({v, 0});
    }
    MappedTable table = MakeMappedTable(
        {QuantAttr("x", 10), CatAttr("y", {"no", "yes"})}, rows);
    MinerOptions options;
    options.minsup = 0.05;
    options.max_support = 0.5;
    options.interest_level = 1.5;
    options.interest_item_prune = false;  // keep wide ranges for the test
    ItemCatalog catalog = ItemCatalog::Build(table, options);
    FrequentItemsetResult frequent =
        MineFrequentItemsets(table, catalog, options);
    return DecoyFixture{std::move(table), std::move(catalog),
                        std::move(frequent), options};
  }

  uint64_t Support(const RangeItemset& itemset) const {
    return BruteForceSupport(table, itemset);
  }
};

TEST(InterestItemsetTest, SpikeIsInteresting) {
  DecoyFixture f = DecoyFixture::Make();
  InterestEvaluator evaluator(&f.catalog, &f.frequent.itemsets, 2.0,
                              InterestMode::kSupportOrConfidence);
  RangeItemset spike = {{0, 4, 4}, {1, 1, 1}};
  RangeItemset whole = {{0, 0, 9}, {1, 1, 1}};
  EXPECT_TRUE(evaluator.IsItemsetRInteresting(spike, f.Support(spike), whole,
                                              f.Support(whole)));
}

TEST(InterestItemsetTest, DecoyFailsSpecializationTest) {
  // The "Decoy" interval [2..4] beats its expectation on raw support, but
  // subtracting the frequent spike [4..4] leaves a boring remainder — the
  // final measure must reject it.
  DecoyFixture f = DecoyFixture::Make();
  InterestEvaluator evaluator(&f.catalog, &f.frequent.itemsets, 1.5,
                              InterestMode::kSupportOrConfidence);
  RangeItemset decoy = {{0, 2, 4}, {1, 1, 1}};
  RangeItemset whole = {{0, 0, 9}, {1, 1, 1}};
  // Sanity: the decoy does beat its raw expectation (this is what the
  // tentative measure of Section 4 would wrongly accept).
  const double n = static_cast<double>(f.table.num_rows());
  double sup_decoy = static_cast<double>(f.Support(decoy)) / n;
  double sup_whole = static_cast<double>(f.Support(whole)) / n;
  double expected = f.catalog.RangeSupport(0, 2, 4) /
                    f.catalog.RangeSupport(0, 0, 9) * sup_whole;
  ASSERT_GT(sup_decoy, 1.5 * expected);
  // ... but the final measure rejects it.
  EXPECT_FALSE(evaluator.IsItemsetRInteresting(decoy, f.Support(decoy),
                                               whole, f.Support(whole)));
}

TEST(InterestItemsetTest, BoringIntervalFailsSupportTest) {
  DecoyFixture f = DecoyFixture::Make();
  InterestEvaluator evaluator(&f.catalog, &f.frequent.itemsets, 1.5,
                              InterestMode::kSupportOrConfidence);
  RangeItemset boring = {{0, 2, 3}, {1, 1, 1}};  // flat region
  RangeItemset whole = {{0, 0, 9}, {1, 1, 1}};
  EXPECT_FALSE(evaluator.IsItemsetRInteresting(boring, f.Support(boring),
                                               whole, f.Support(whole)));
}

// A table where y=yes is guaranteed for x in 0..1, 25% for x in 2..7 and
// never for 8..9 — giving one clearly interesting specialized rule.
struct RuleFixture {
  MappedTable table;
  ItemCatalog catalog;
  FrequentItemsetResult frequent;

  static RuleFixture Make() {
    std::vector<std::vector<int32_t>> rows;
    for (int32_t v = 0; v < 10; ++v) {
      int yes;
      if (v < 2) {
        yes = 100;
      } else if (v < 8) {
        yes = 25;
      } else {
        yes = 0;
      }
      for (int i = 0; i < yes; ++i) rows.push_back({v, 1});
      for (int i = 0; i < 100 - yes; ++i) rows.push_back({v, 0});
    }
    MappedTable table = MakeMappedTable(
        {QuantAttr("x", 10), CatAttr("y", {"no", "yes"})}, rows);
    MinerOptions options;
    options.minsup = 0.05;
    options.max_support = 0.9;
    options.interest_item_prune = false;
    ItemCatalog catalog = ItemCatalog::Build(table, options);
    FrequentItemsetResult frequent =
        MineFrequentItemsets(table, catalog, options);
    return RuleFixture{std::move(table), std::move(catalog),
                       std::move(frequent)};
  }

  QuantRule MakeRule(RangeItemset ante, RangeItemset cons) const {
    QuantRule rule;
    rule.antecedent = std::move(ante);
    rule.consequent = std::move(cons);
    RangeItemset all = rule.UnionItemset();
    rule.count = BruteForceSupport(table, all);
    const double n = static_cast<double>(table.num_rows());
    rule.support = static_cast<double>(rule.count) / n;
    uint64_t ante_count = BruteForceSupport(table, rule.antecedent);
    rule.confidence =
        static_cast<double>(rule.count) / static_cast<double>(ante_count);
    return rule;
  }
};

TEST(InterestRuleTest, SpecializedRuleBeatsAncestor) {
  RuleFixture f = RuleFixture::Make();
  InterestEvaluator evaluator(&f.catalog, &f.frequent.itemsets, 1.5,
                              InterestMode::kSupportOrConfidence);
  QuantRule general = f.MakeRule({{0, 0, 7}}, {{1, 1, 1}});
  QuantRule special = f.MakeRule({{0, 0, 1}}, {{1, 1, 1}});
  EXPECT_TRUE(evaluator.IsRuleRInterestingWrt(special, general));
}

TEST(InterestRuleTest, AsExpectedRuleIsNotInteresting) {
  RuleFixture f = RuleFixture::Make();
  InterestEvaluator evaluator(&f.catalog, &f.frequent.itemsets, 1.5,
                              InterestMode::kSupportOrConfidence);
  QuantRule general = f.MakeRule({{0, 2, 7}}, {{1, 1, 1}});
  // The sub-range 2..4 behaves exactly like 2..7 (uniform 25% yes).
  QuantRule special = f.MakeRule({{0, 2, 4}}, {{1, 1, 1}});
  EXPECT_FALSE(evaluator.IsRuleRInterestingWrt(special, general));
}

TEST(InterestRuleTest, AndModeIsStricter) {
  RuleFixture f = RuleFixture::Make();
  QuantRule general = f.MakeRule({{0, 0, 7}}, {{1, 1, 1}});
  QuantRule special = f.MakeRule({{0, 0, 1}}, {{1, 1, 1}});
  // Support ratio: sup(special)=0.2 vs expected (0.2/0.8)*0.35 = 0.0875:
  // ratio ~2.3. Confidence ratio: 1.0 vs 0.4375: ~2.3. Both pass at 1.5,
  // only one passes at 2.5 -> Or mode accepts, And mode rejects at a level
  // between the two ratios is impossible here (they're equal), so use a
  // level where both fail to check And/Or agree, and verify And==Or at 1.5.
  InterestEvaluator or_eval(&f.catalog, &f.frequent.itemsets, 1.5,
                            InterestMode::kSupportOrConfidence);
  InterestEvaluator and_eval(&f.catalog, &f.frequent.itemsets, 1.5,
                             InterestMode::kSupportAndConfidence);
  EXPECT_TRUE(or_eval.IsRuleRInterestingWrt(special, general));
  EXPECT_TRUE(and_eval.IsRuleRInterestingWrt(special, general));
  InterestEvaluator strict_or(&f.catalog, &f.frequent.itemsets, 3.0,
                              InterestMode::kSupportOrConfidence);
  EXPECT_FALSE(strict_or.IsRuleRInterestingWrt(special, general));
}

TEST(EvaluateRulesTest, NoAncestorsMeansInteresting) {
  RuleFixture f = RuleFixture::Make();
  InterestEvaluator evaluator(&f.catalog, &f.frequent.itemsets, 1.5,
                              InterestMode::kSupportOrConfidence);
  std::vector<QuantRule> rules = {f.MakeRule({{0, 0, 7}}, {{1, 1, 1}})};
  evaluator.EvaluateRules(&rules);
  EXPECT_TRUE(rules[0].interesting);
}

TEST(EvaluateRulesTest, RedundantSpecializationPruned) {
  RuleFixture f = RuleFixture::Make();
  InterestEvaluator evaluator(&f.catalog, &f.frequent.itemsets, 1.5,
                              InterestMode::kSupportOrConfidence);
  std::vector<QuantRule> rules = {
      f.MakeRule({{0, 2, 7}}, {{1, 1, 1}}),   // general
      f.MakeRule({{0, 2, 4}}, {{1, 1, 1}}),   // behaves exactly as general
      f.MakeRule({{0, 0, 1}}, {{1, 1, 1}}),   // genuinely different
  };
  evaluator.EvaluateRules(&rules);
  EXPECT_TRUE(rules[0].interesting);   // no ancestors
  EXPECT_FALSE(rules[1].interesting);  // redundant
  EXPECT_TRUE(rules[2].interesting);   // not an ancestor/descendant of [0]
}

TEST(EvaluateRulesTest, InterestLevelZeroKeepsEverything) {
  RuleFixture f = RuleFixture::Make();
  InterestEvaluator evaluator(&f.catalog, &f.frequent.itemsets, 0.0,
                              InterestMode::kSupportOrConfidence);
  std::vector<QuantRule> rules = {
      f.MakeRule({{0, 2, 7}}, {{1, 1, 1}}),
      f.MakeRule({{0, 2, 4}}, {{1, 1, 1}}),
  };
  evaluator.EvaluateRules(&rules);
  EXPECT_TRUE(rules[0].interesting);
  EXPECT_TRUE(rules[1].interesting);
}

TEST(EvaluateRulesTest, CloseAncestorIsUsed) {
  // Chain: general ⊃ middle ⊃ special, where middle is interesting and
  // special matches middle's expectation exactly -> special pruned even if
  // it beats the far ancestor.
  RuleFixture f = RuleFixture::Make();
  InterestEvaluator evaluator(&f.catalog, &f.frequent.itemsets, 1.5,
                              InterestMode::kSupportOrConfidence);
  std::vector<QuantRule> rules = {
      f.MakeRule({{0, 0, 7}}, {{1, 1, 1}}),  // whole: mixed behaviour
      f.MakeRule({{0, 0, 1}}, {{1, 1, 1}}),  // middle: the hot region
      f.MakeRule({{0, 0, 0}}, {{1, 1, 1}}),  // special: exactly like middle
  };
  evaluator.EvaluateRules(&rules);
  EXPECT_TRUE(rules[0].interesting);
  EXPECT_TRUE(rules[1].interesting);
  // Against its close ancestor (middle), the specialization conveys
  // nothing new.
  EXPECT_FALSE(rules[2].interesting);
}

}  // namespace
}  // namespace qarm
