// Fault-injection stress: 50 deterministic fault schedules, each one a
// different seeded pattern of transient EIO / short-read / CRC failures
// over the streamed blocks. Every schedule stays within the retry budget,
// so every run must recover and emit bit-identical rules to the fault-free
// run — any divergence is a hard failure.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "core/miner.h"
#include "core/report.h"
#include "partition/mapper.h"
#include "storage/qbt_writer.h"
#include "storage/record_source.h"
#include "table/datagen.h"

namespace qarm {
namespace {

std::vector<std::string> RulesAsJson(const MiningResult& result) {
  std::vector<std::string> out;
  out.reserve(result.rules.size());
  for (const QuantRule& rule : result.rules) {
    out.push_back(RuleToJson(rule, result.mapped));
  }
  return out;
}

TEST(FaultStressTest, FiftySeedsAllRecoverBitIdentical) {
  Table raw = MakeFinancialDataset(800, 21);
  MinerOptions options;
  options.minsup = 0.20;
  options.minconf = 0.40;
  options.max_support = 0.45;
  options.partial_completeness = 3.0;

  MapOptions map_options;
  map_options.partial_completeness = options.partial_completeness;
  map_options.minsup = options.minsup;
  Result<MappedTable> mapped = MapTable(raw, map_options);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const std::string qbt = ::testing::TempDir() + "/fault_stress.qbt";
  QbtWriteOptions write_options;
  write_options.rows_per_block = 64;  // many blocks: many injection points
  ASSERT_TRUE(WriteQbt(*mapped, qbt, write_options).ok());
  Result<std::unique_ptr<QbtFileSource>> source = QbtFileSource::Open(qbt);
  ASSERT_TRUE(source.ok()) << source.status().ToString();

  Result<MiningResult> clean =
      QuantitativeRuleMiner(options).MineStreamed(**source);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  const std::vector<std::string> want = RulesAsJson(*clean);
  ASSERT_FALSE(want.empty());

  uint64_t total_faults = 0;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    MinerOptions faulty = options;
    // Sweep the schedule space: fault density 10-40%, 1-3 failures per
    // faulted block (always under the attempts=5 budget), alternating
    // thread counts. backoff=0 keeps the retries instant.
    faulty.num_threads = seed % 2 == 0 ? 4 : 1;
    faulty.inject_faults_spec = StrFormat(
        "seed=%llu,rate=0.%llu,fails=%llu,attempts=5,backoff=0",
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(1 + seed % 4),
        static_cast<unsigned long long>(1 + seed % 3));
    Result<MiningResult> mined =
        QuantitativeRuleMiner(faulty).MineStreamed(**source);
    ASSERT_TRUE(mined.ok())
        << "seed " << seed << ": " << mined.status().ToString();
    ASSERT_EQ(RulesAsJson(*mined), want) << "seed " << seed << " diverged";

    // The stats prove faults actually happened and were retried away.
    ScanIoStats io = mined->stats.pass1_io;
    for (const PassStats& pass : mined->stats.passes) {
      io += pass.counting.io;
    }
    // Recovered faults always show up as retries; a sparse schedule may
    // fault zero blocks for one seed, so the >0 assertion is on the total.
    EXPECT_GE(io.read_retries, io.faults_injected) << "seed " << seed;
    total_faults += io.faults_injected;
  }
  EXPECT_GT(total_faults, 0u);
}

}  // namespace
}  // namespace qarm
