#include "core/item.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace qarm {
namespace {

using testutil::CatAttr;
using testutil::MakeMappedTable;
using testutil::QuantAttr;

TEST(RangeItemTest, OrderingAndEquality) {
  RangeItem a{0, 1, 5};
  RangeItem b{0, 1, 5};
  RangeItem c{0, 1, 6};
  RangeItem d{1, 0, 0};
  EXPECT_EQ(a, b);
  EXPECT_LT(a, c);
  EXPECT_LT(c, d);
  EXPECT_EQ(a.Width(), 5);
}

TEST(RangeItemTest, Generalizes) {
  RangeItem wide{0, 0, 10};
  RangeItem narrow{0, 3, 7};
  RangeItem other_attr{1, 3, 7};
  EXPECT_TRUE(wide.Generalizes(narrow));
  EXPECT_TRUE(wide.Generalizes(wide));
  EXPECT_FALSE(narrow.Generalizes(wide));
  EXPECT_FALSE(wide.Generalizes(other_attr));
}

TEST(ItemsetTest, AttributesOf) {
  RangeItemset itemset = {{0, 1, 2}, {2, 0, 0}, {5, 3, 3}};
  EXPECT_EQ(AttributesOf(itemset), (std::vector<int32_t>{0, 2, 5}));
}

TEST(ItemsetTest, GeneralizationPaperExample) {
  // {<Age: 30..39>, <Married: Yes>} generalizes
  // {<Age: 30..35>, <Married: Yes>}.
  RangeItemset general = {{0, 30, 39}, {1, 1, 1}};
  RangeItemset special = {{0, 30, 35}, {1, 1, 1}};
  EXPECT_TRUE(IsGeneralization(general, special));
  EXPECT_TRUE(IsStrictGeneralization(general, special));
  EXPECT_FALSE(IsStrictGeneralization(general, general));
  EXPECT_FALSE(IsGeneralization(special, general));
}

TEST(ItemsetTest, GeneralizationRequiresSameAttributes) {
  RangeItemset a = {{0, 0, 10}};
  RangeItemset b = {{1, 3, 7}};
  RangeItemset c = {{0, 3, 7}, {1, 0, 0}};
  EXPECT_FALSE(IsGeneralization(a, b));
  EXPECT_FALSE(IsGeneralization(a, c));
}

TEST(BoxDifferenceTest, UpperRemainder) {
  RangeItemset x = {{0, 0, 9}, {1, 1, 1}};
  RangeItemset spec = {{0, 0, 4}, {1, 1, 1}};
  RangeItemset diff;
  ASSERT_TRUE(BoxDifference(x, spec, &diff));
  EXPECT_EQ(diff[0], (RangeItem{0, 5, 9}));
  EXPECT_EQ(diff[1], (RangeItem{1, 1, 1}));
}

TEST(BoxDifferenceTest, LowerRemainder) {
  RangeItemset x = {{0, 0, 9}};
  RangeItemset spec = {{0, 6, 9}};
  RangeItemset diff;
  ASSERT_TRUE(BoxDifference(x, spec, &diff));
  EXPECT_EQ(diff[0], (RangeItem{0, 0, 5}));
}

TEST(BoxDifferenceTest, InteriorRangeRejected) {
  RangeItemset x = {{0, 0, 9}};
  RangeItemset spec = {{0, 3, 6}};
  RangeItemset diff;
  EXPECT_FALSE(BoxDifference(x, spec, &diff));
}

TEST(BoxDifferenceTest, TwoAttributesDifferRejected) {
  RangeItemset x = {{0, 0, 9}, {1, 0, 9}};
  RangeItemset spec = {{0, 0, 4}, {1, 0, 4}};
  RangeItemset diff;
  EXPECT_FALSE(BoxDifference(x, spec, &diff));
}

TEST(BoxDifferenceTest, EqualItemsetsRejected) {
  RangeItemset x = {{0, 0, 9}};
  RangeItemset diff;
  EXPECT_FALSE(BoxDifference(x, x, &diff));
}

TEST(BoxDifferenceTest, NonSpecializationRejected) {
  RangeItemset x = {{0, 0, 5}};
  RangeItemset other = {{0, 3, 9}};
  RangeItemset diff;
  EXPECT_FALSE(BoxDifference(x, other, &diff));
}

TEST(RecordSupportsTest, Basic) {
  RangeItemset itemset = {{0, 2, 5}, {2, 1, 1}};
  int32_t yes[] = {3, 99, 1};
  int32_t no_first[] = {6, 99, 1};
  int32_t no_second[] = {3, 99, 0};
  EXPECT_TRUE(RecordSupports(yes, itemset));
  EXPECT_FALSE(RecordSupports(no_first, itemset));
  EXPECT_FALSE(RecordSupports(no_second, itemset));
}

TEST(ItemToStringTest, RendersWithDecode) {
  MappedTable table = MakeMappedTable(
      {QuantAttr("Age", 5), CatAttr("Married", {"No", "Yes"})}, {});
  EXPECT_EQ(ItemToString(RangeItem{0, 1, 3}, table), "<Age: 1..3>");
  EXPECT_EQ(ItemToString(RangeItem{1, 1, 1}, table), "<Married: Yes>");
  RangeItemset itemset = {{0, 1, 3}, {1, 0, 0}};
  EXPECT_EQ(ItemsetToString(itemset, table),
            "<Age: 1..3> and <Married: No>");
}

}  // namespace
}  // namespace qarm
