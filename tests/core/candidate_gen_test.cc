#include "core/candidate_gen.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace qarm {
namespace {

using testutil::CatAttr;
using testutil::MakeMappedTable;
using testutil::QuantAttr;

// Builds a catalog over a small table designed so the frequent items are
// predictable: married (2 values), age over 4 values, cars over 3 values.
struct Fixture {
  MappedTable table;
  ItemCatalog catalog;

  static Fixture Make() {
    // Rows chosen so every single value has >= 20% support.
    std::vector<std::vector<int32_t>> rows = {
        {0, 0, 0}, {0, 0, 1}, {1, 1, 1}, {1, 1, 2},
        {2, 0, 0}, {2, 1, 1}, {3, 0, 2}, {3, 1, 0},
        {0, 0, 0}, {3, 1, 2},
    };
    MappedTable table = MakeMappedTable(
        {QuantAttr("age", 4), CatAttr("married", {"no", "yes"}),
         QuantAttr("cars", 3)},
        rows);
    MinerOptions options;
    options.minsup = 0.2;
    options.max_support = 0.5;
    ItemCatalog catalog = ItemCatalog::Build(table, options);
    return Fixture{std::move(table), std::move(catalog)};
  }
};

TEST(ItemsetSetTest, FlatStorage) {
  ItemsetSet set(2);
  set.AppendVector({1, 5});
  set.AppendVector({2, 3});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.itemset_vector(1), (std::vector<int32_t>{2, 3}));
  EXPECT_FALSE(set.empty());
}

TEST(ItemsetSetTest, ContainsBinarySearch) {
  ItemsetSet set(2);
  set.AppendVector({1, 5});
  set.AppendVector({2, 3});
  set.AppendVector({2, 7});
  int32_t a[] = {2, 3};
  int32_t b[] = {2, 4};
  int32_t c[] = {1, 5};
  int32_t d[] = {2, 7};
  EXPECT_TRUE(set.Contains(a));
  EXPECT_FALSE(set.Contains(b));
  EXPECT_TRUE(set.Contains(c));
  EXPECT_TRUE(set.Contains(d));
}

TEST(CandidateGenTest, PairsSkipSameAttribute) {
  Fixture f = Fixture::Make();
  ItemsetSet l1(1);
  for (size_t i = 0; i < f.catalog.num_items(); ++i) {
    l1.AppendVector({static_cast<int32_t>(i)});
  }
  ItemsetSet c2 = GenerateCandidates(f.catalog, l1);
  EXPECT_GT(c2.size(), 0u);
  for (size_t c = 0; c < c2.size(); ++c) {
    const int32_t* ids = c2.itemset(c);
    EXPECT_LT(ids[0], ids[1]);
    EXPECT_NE(f.catalog.item(ids[0]).attr, f.catalog.item(ids[1]).attr);
  }
  // Every cross-attribute pair must be present: count them.
  size_t expected = 0;
  for (size_t i = 0; i < f.catalog.num_items(); ++i) {
    for (size_t j = i + 1; j < f.catalog.num_items(); ++j) {
      if (f.catalog.item(static_cast<int32_t>(i)).attr !=
          f.catalog.item(static_cast<int32_t>(j)).attr) {
        ++expected;
      }
    }
  }
  EXPECT_EQ(c2.size(), expected);
}

TEST(CandidateGenTest, PaperJoinExample) {
  // Section 5.1's example, transcribed to ids. Frequent 2-itemsets:
  //   {Married:Yes, Age:20..24}, {Married:Yes, Age:20..29},
  //   {Married:Yes, Cars:0..1}, {Age:20..29, Cars:0..1}.
  // Join gives {Married:Yes, Age:20..24, Cars:0..1} and
  // {Married:Yes, Age:20..29, Cars:0..1}; the first is pruned because
  // {Age:20..24, Cars:0..1} is not frequent.
  //
  // We emulate with a catalog where:
  //   item ids by attribute: age(0): 20..24 -> a1, 20..29 -> a2;
  //   married(1): yes -> m; cars(2): 0..1 -> c.
  // Build a tiny table so these exact items exist.
  std::vector<std::vector<int32_t>> rows = {
      {0, 1, 0}, {1, 1, 1}, {0, 1, 1}, {1, 0, 2}, {0, 0, 0},
  };
  MappedTable table = MakeMappedTable(
      {QuantAttr("age", 2), CatAttr("married", {"no", "yes"}),
       QuantAttr("cars", 3)},
      rows);
  MinerOptions options;
  options.minsup = 0.2;
  options.max_support = 1.0;
  ItemCatalog catalog = ItemCatalog::Build(table, options);

  auto id_of = [&](int32_t attr, int32_t lo, int32_t hi) {
    for (size_t i = 0; i < catalog.num_items(); ++i) {
      const RangeItem& item = catalog.item(static_cast<int32_t>(i));
      if (item.attr == attr && item.lo == lo && item.hi == hi) {
        return static_cast<int32_t>(i);
      }
    }
    ADD_FAILURE() << "item not found: " << attr << " " << lo << " " << hi;
    return -1;
  };
  int32_t a1 = id_of(0, 0, 0);   // age 20..24
  int32_t a2 = id_of(0, 0, 1);   // age 20..29
  int32_t m = id_of(1, 1, 1);    // married yes
  int32_t c = id_of(2, 0, 1);    // cars 0..1

  // L2 in lexicographic id order (ids: age < married < cars by attr).
  ItemsetSet l2(2);
  std::vector<std::vector<int32_t>> sets = {
      {a1, m}, {a2, m}, {m, c}, {a2, c}};
  for (auto& s : sets) std::sort(s.begin(), s.end());
  std::sort(sets.begin(), sets.end());
  for (const auto& s : sets) l2.AppendVector(s);

  ItemsetSet c3 = GenerateCandidates(catalog, l2);
  ASSERT_EQ(c3.size(), 1u);
  std::vector<int32_t> expected = {a2, m, c};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(c3.itemset_vector(0), expected);
}

TEST(CandidateGenTest, EmptyInput) {
  Fixture f = Fixture::Make();
  ItemsetSet empty(2);
  EXPECT_TRUE(GenerateCandidates(f.catalog, empty).empty());
}

TEST(CandidateGenTest, CandidatesAreSorted) {
  Fixture f = Fixture::Make();
  ItemsetSet l1(1);
  for (size_t i = 0; i < f.catalog.num_items(); ++i) {
    l1.AppendVector({static_cast<int32_t>(i)});
  }
  ItemsetSet c2 = GenerateCandidates(f.catalog, l1);
  for (size_t c = 1; c < c2.size(); ++c) {
    EXPECT_TRUE(c2.itemset_vector(c - 1) < c2.itemset_vector(c));
  }
}

}  // namespace
}  // namespace qarm
