// Mining with missing values: a record supports an itemset only if it
// carries every referenced attribute (Section 2's record model, R ⊆ I_V
// with each attribute at most once).
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/miner.h"
#include "core/rules.h"
#include "partition/mapper.h"
#include "table/table.h"
#include "testutil.h"

namespace qarm {
namespace {

Table TableWithNulls(size_t n, double null_probability, uint64_t seed) {
  Schema schema =
      Schema::Make({{"x", AttributeKind::kQuantitative, ValueType::kInt64},
                    {"c", AttributeKind::kCategorical, ValueType::kString}})
          .value();
  Table table(schema);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    int64_t x = rng.UniformInt(0, 9);
    std::vector<Value> row(2);
    row[0] = rng.Bernoulli(null_probability) ? Value::Null() : Value(x);
    row[1] = rng.Bernoulli(null_probability)
                 ? Value::Null()
                 : Value(x < 5 ? "lo" : "hi");
    table.AppendRowUnchecked(row);
  }
  return table;
}

TEST(MissingValuesTest, MappedAsSentinel) {
  Table data = TableWithNulls(200, 0.3, 1);
  MapOptions options;
  options.num_intervals_override = 5;
  auto mapped = MapTable(data, options);
  ASSERT_TRUE(mapped.ok());
  size_t missing = 0;
  for (size_t r = 0; r < mapped->num_rows(); ++r) {
    if (mapped->value(r, 0) == kMissingValue) ++missing;
    if (mapped->value(r, 0) != kMissingValue) {
      EXPECT_GE(mapped->value(r, 0), 0);
    }
  }
  EXPECT_NEAR(static_cast<double>(missing) / 200.0, 0.3, 0.1);
}

TEST(MissingValuesTest, RecordWithNullDoesNotSupport) {
  int32_t record[] = {kMissingValue, 1};
  RangeItemset wants_x = {{0, 0, 9}};
  RangeItemset wants_c = {{1, 1, 1}};
  EXPECT_FALSE(RecordSupports(record, wants_x));
  EXPECT_TRUE(RecordSupports(record, wants_c));
}

TEST(MissingValuesTest, MinedSupportsMatchBruteForce) {
  Table data = TableWithNulls(500, 0.25, 7);
  MinerOptions options;
  options.minsup = 0.05;
  options.minconf = 0.3;
  options.max_support = 0.6;
  options.num_intervals_override = 10;
  QuantitativeRuleMiner miner(options);
  auto result = miner.Mine(data);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->frequent_itemsets.empty());
  for (const FrequentRangeItemset& f : result->frequent_itemsets) {
    EXPECT_EQ(f.count, testutil::BruteForceSupport(result->mapped, f.items));
  }
  for (const QuantRule& r : result->rules) {
    uint64_t full =
        testutil::BruteForceSupport(result->mapped, r.UnionItemset());
    EXPECT_EQ(r.count, full) << RuleToString(r, result->mapped);
  }
}

TEST(MissingValuesTest, SupportFractionsShrinkWithNulls) {
  // Nulling 40% of the categorical column must shrink its items' support
  // roughly proportionally (support is relative to ALL records).
  Table complete = TableWithNulls(4000, 0.0, 5);
  Table sparse = TableWithNulls(4000, 0.4, 5);
  MinerOptions options;
  options.minsup = 0.05;
  options.minconf = 0.3;
  options.num_intervals_override = 5;
  QuantitativeRuleMiner miner(options);
  auto full = miner.Mine(complete);
  auto part = miner.Mine(sparse);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(part.ok());
  auto support_of_lo = [](const MiningResult& result) {
    for (const FrequentRangeItemset& f : result.frequent_itemsets) {
      if (f.items.size() == 1 && f.items[0].attr == 1 &&
          ItemsetToString(f.items, result.mapped) == "<c: lo>") {
        return f.support;
      }
    }
    return 0.0;
  };
  double complete_support = support_of_lo(*full);
  double sparse_support = support_of_lo(*part);
  ASSERT_GT(complete_support, 0.0);
  ASSERT_GT(sparse_support, 0.0);
  EXPECT_NEAR(sparse_support, complete_support * 0.6, 0.05);
}

TEST(MissingValuesTest, AllNullColumnYieldsNoItems) {
  Schema schema =
      Schema::Make({{"x", AttributeKind::kQuantitative, ValueType::kInt64},
                    {"c", AttributeKind::kCategorical, ValueType::kString}})
          .value();
  Table table(schema);
  for (int i = 0; i < 50; ++i) {
    table.AppendRowUnchecked({Value::Null(), Value("a")});
  }
  MinerOptions options;
  options.minsup = 0.1;
  options.minconf = 0.5;
  QuantitativeRuleMiner miner(options);
  auto result = miner.Mine(table);
  ASSERT_TRUE(result.ok());
  for (const FrequentRangeItemset& f : result->frequent_itemsets) {
    for (const RangeItem& item : f.items) {
      EXPECT_NE(item.attr, 0);  // no items over the all-null attribute
    }
  }
}

}  // namespace
}  // namespace qarm
