// MineIncremental: append-mode runs leave a complete v2 checkpoint behind
// (full per-candidate counts, base block range + index CRC, options
// fingerprint); a later run over the appended file merges exact delta
// counts into it and must produce rules byte-identical to a from-scratch
// mine of the grown file. The corpus cycles values with fixed periods, so
// base and delta have identical item proportions and the catalog (and the
// frequent frontier) provably survive the append — the merge path really
// runs, instead of silently falling back to full rescans.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/macros.h"
#include "core/incremental_miner.h"
#include "core/miner.h"
#include "core/mining_checkpoint.h"
#include "core/report.h"
#include "partition/mapped_table.h"
#include "storage/checkpoint_format.h"
#include "storage/qbt_writer.h"
#include "storage/record_source.h"
#include "testutil.h"

namespace qarm {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Three attributes cycling with periods 3, 2, and 9 (income == (r/3)%3 is
// independent of cars == r%3 over a period of 9). Any row count that is a
// multiple of 18 yields exactly proportional single/pair/triple supports,
// so appending another multiple of 18 rows preserves every item and every
// frequent itemset.
MappedTable MakeCyclingTable(size_t num_rows) {
  MappedAttribute income;
  income.name = "income";
  income.kind = AttributeKind::kQuantitative;
  income.source_type = ValueType::kInt64;
  income.partitioned = true;
  income.intervals = {{0, 999}, {1000, 4999}, {5000, 9999}};
  MappedAttribute married = testutil::CatAttr("married", {"no", "yes"});
  MappedAttribute cars = testutil::CatAttr("cars", {"zero", "one", "two"});

  MappedTable table({income, married, cars}, num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    table.set_value(r, 0, static_cast<int32_t>((r / 3) % 3));
    table.set_value(r, 1, static_cast<int32_t>(r % 2));
    table.set_value(r, 2, static_cast<int32_t>(r % 3));
  }
  return table;
}

MinerOptions BaseOptions() {
  MinerOptions options;
  // Every single ~1/3..1/2, pair ~1/6..1/9, triple ~1/18: all far above
  // minsup, far below max_support — no itemset sits near a threshold.
  options.minsup = 0.03;
  options.minconf = 0.30;
  options.max_support = 0.95;
  options.interest_level = 0.0;
  return options;
}

std::vector<std::string> RulesAsJson(const MiningResult& result) {
  std::vector<std::string> out;
  out.reserve(result.rules.size());
  for (const QuantRule& rule : result.rules) {
    out.push_back(RuleToJson(rule, result.mapped));
  }
  return out;
}

std::vector<std::string> FullMineRules(const std::string& qbt_path,
                                       const MinerOptions& base) {
  MinerOptions options = base;
  options.checkpoint_path.clear();
  options.append_mode = false;
  auto source = QbtFileSource::Open(qbt_path);
  QARM_CHECK(source.ok());
  auto result = QuantitativeRuleMiner(options).MineStreamed(**source);
  QARM_CHECK(result.ok());
  return RulesAsJson(*result);
}

struct IncrementalRun {
  std::vector<std::string> rules;
  IncrementalDecision decision;
};

IncrementalRun RunIncremental(const std::string& qbt_path,
                              const MinerOptions& options) {
  IncrementalRun run;
  auto result = MineIncremental(qbt_path, options, &run.decision);
  QARM_CHECK(result.ok());
  run.rules = RulesAsJson(*result);
  return run;
}

TEST(IncrementalMinerTest, MergesAppendedBlocksByteIdentically) {
  const std::string qbt = TempPath("incremental_merge.qbt");
  const std::string qcp = TempPath("incremental_merge.qcp");
  std::remove(qcp.c_str());
  ASSERT_TRUE(WriteQbt(MakeCyclingTable(18 * 40), qbt,
                       {/*rows_per_block=*/64})
                  .ok());
  MinerOptions options = BaseOptions();
  options.checkpoint_path = qcp;

  // First run: no checkpoint yet — a logged full mine that seeds the base.
  IncrementalRun first = RunIncremental(qbt, options);
  EXPECT_FALSE(first.decision.incremental);
  EXPECT_NE(first.decision.reason.find("no checkpoint"), std::string::npos)
      << first.decision.reason;
  EXPECT_EQ(first.rules, FullMineRules(qbt, options));

  // Append ~10% more rows with the same proportions.
  ASSERT_TRUE(AppendQbt(MakeCyclingTable(18 * 4), qbt).ok());

  // Second run: the checkpoint serves as the incremental base and every
  // counting pass merges base + delta instead of rescanning.
  IncrementalRun second = RunIncremental(qbt, options);
  EXPECT_TRUE(second.decision.incremental) << second.decision.reason;
  EXPECT_EQ(second.decision.base_rows, 18u * 40);
  EXPECT_EQ(second.decision.delta_rows, 18u * 4);
  EXPECT_GT(second.decision.delta_blocks, 0u);
  EXPECT_GT(second.decision.passes_merged, 0u);
  EXPECT_EQ(second.decision.passes_rescanned, 0u);
  // The signature guarantee: byte-identical to mining the grown file flat.
  EXPECT_EQ(second.rules, FullMineRules(qbt, options));

  // Third run, nothing appended: a zero-delta merge, still byte-identical.
  IncrementalRun third = RunIncremental(qbt, options);
  EXPECT_TRUE(third.decision.incremental) << third.decision.reason;
  EXPECT_EQ(third.decision.delta_rows, 0u);
  EXPECT_EQ(third.rules, second.rules);
}

TEST(IncrementalMinerTest, ChangedOptionsFallBackToFullMineWithReason) {
  const std::string qbt = TempPath("incremental_fallback.qbt");
  const std::string qcp = TempPath("incremental_fallback.qcp");
  std::remove(qcp.c_str());
  ASSERT_TRUE(WriteQbt(MakeCyclingTable(18 * 20), qbt,
                       {/*rows_per_block=*/64})
                  .ok());
  MinerOptions options = BaseOptions();
  options.checkpoint_path = qcp;
  RunIncremental(qbt, options);
  ASSERT_TRUE(AppendQbt(MakeCyclingTable(18 * 2), qbt).ok());

  // A different minsup changes the run identity: the checkpoint must not
  // be merged (its counts gate a different frontier), and the fallback
  // must still match a from-scratch mine under the new options.
  MinerOptions changed = options;
  changed.minsup = 0.10;
  IncrementalRun run = RunIncremental(qbt, changed);
  EXPECT_FALSE(run.decision.incremental);
  EXPECT_FALSE(run.decision.reason.empty());
  EXPECT_EQ(run.rules, FullMineRules(qbt, changed));

  // The fallback rewrote the checkpoint for the new options: the next run
  // under them is incremental again (zero delta here).
  IncrementalRun again = RunIncremental(qbt, changed);
  EXPECT_TRUE(again.decision.incremental) << again.decision.reason;
  EXPECT_EQ(again.rules, run.rules);
}

TEST(IncrementalMinerTest, CompleteCheckpointCarriesV2BaseIdentity) {
  const std::string qbt = TempPath("incremental_v2.qbt");
  const std::string qcp = TempPath("incremental_v2.qcp");
  std::remove(qcp.c_str());
  ASSERT_TRUE(WriteQbt(MakeCyclingTable(18 * 10), qbt,
                       {/*rows_per_block=*/32})
                  .ok());
  MinerOptions options = BaseOptions();
  options.checkpoint_path = qcp;
  options.append_mode = true;
  RunIncremental(qbt, options);

  std::ifstream in(qcp, std::ios::binary);
  ASSERT_TRUE(in.good()) << "append-mode run left no checkpoint";
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  auto state = ParseCheckpoint(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  ASSERT_TRUE(state.ok()) << state.status().ToString();

  EXPECT_TRUE(state->flags & kCheckpointFlagComplete);
  auto source = QbtFileSource::Open(qbt);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(state->num_rows, (*source)->num_rows());
  EXPECT_EQ(state->base_num_blocks, (*source)->num_blocks());
  EXPECT_EQ(state->base_index_crc,
            (*source)->reader().IndexPrefixCrc((*source)->num_blocks()));
  EXPECT_EQ(state->options_fingerprint,
            ComputeMiningOptionsFingerprint(options, **source));
  EXPECT_EQ(state->fingerprint, ComputeMiningFingerprint(options, **source));

  // Every counting pass (k >= 2) carries its FULL per-candidate counts —
  // that is what a later incremental run adds delta counts into. Pass 1
  // stores none: its merge rides the catalog's per-value counts instead.
  ASSERT_FALSE(state->passes.empty());
  size_t counting_passes = 0;
  for (const CheckpointPass& pass : state->passes) {
    if (pass.k < 2) {
      EXPECT_TRUE(pass.candidate_counts.empty()) << "pass k=" << pass.k;
      continue;
    }
    ++counting_passes;
    EXPECT_EQ(pass.candidate_counts.size(), pass.num_candidates)
        << "pass k=" << pass.k;
  }
  EXPECT_GT(counting_passes, 0u);
}

}  // namespace
}  // namespace qarm
