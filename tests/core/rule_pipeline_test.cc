// Determinism of the parallel post-counting pipeline: candidate generation,
// rule generation (boolean and decoded), and interest evaluation must
// produce byte-identical output at any thread count — on tables with
// taxonomies and missing values — and the volume-ordered close-ancestor
// filter must agree with the all-pairs reference.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "core/apriori_quant.h"
#include "core/candidate_gen.h"
#include "core/frequent_items.h"
#include "core/interest.h"
#include "core/miner.h"
#include "core/report.h"
#include "core/rules.h"
#include "core/support_counting.h"
#include "mining/rulegen.h"
#include "testutil.h"

namespace qarm {
namespace {

using testutil::CatAttr;
using testutil::MakeMappedTable;
using testutil::QuantAttr;

MappedAttribute TaxonomyAttr(const std::string& name,
                             std::vector<std::string> leaves,
                             std::vector<Taxonomy::NodeRange> ranges) {
  MappedAttribute attr = CatAttr(name, std::move(leaves));
  attr.taxonomy_ranges = std::move(ranges);
  return attr;
}

// Rows over {quant(12), taxonomized cat(4), plain cat(3), quant(9),
// plain cat(2)} with a sprinkle of missing values in every attribute —
// the same shape the parallel-counting tests use, so the pipeline sees
// taxonomies, ranges, and missing values at once.
MappedTable MixedTable(uint64_t seed, size_t num_rows) {
  Rng rng(seed);
  std::vector<std::vector<int32_t>> rows;
  for (size_t r = 0; r < num_rows; ++r) {
    std::vector<int32_t> row = {
        static_cast<int32_t>(rng.UniformInt(0, 11)),
        static_cast<int32_t>(rng.UniformInt(0, 3)),
        static_cast<int32_t>(rng.UniformInt(0, 2)),
        static_cast<int32_t>(rng.UniformInt(0, 8)),
        static_cast<int32_t>(rng.UniformInt(0, 1))};
    for (size_t a = 0; a < row.size(); ++a) {
      if (rng.UniformInt(0, 19) == 0) row[a] = kMissingValue;
    }
    rows.push_back(std::move(row));
  }
  return MakeMappedTable(
      {QuantAttr("balance", 12),
       TaxonomyAttr("region", {"north", "south", "east", "west"},
                    {{"any", 0, 3}, {"vertical", 0, 1}}),
       CatAttr("status", {"single", "married", "divorced"}),
       QuantAttr("age", 9), CatAttr("employed", {"yes", "no"})},
      rows);
}

// Wide quantitative domains at a permissive support range: the catalog emits
// hundreds of range items, enough to push candidate generation past its
// serial cutoff.
MappedTable WideQuantTable(uint64_t seed, size_t num_rows) {
  Rng rng(seed);
  std::vector<std::vector<int32_t>> rows;
  for (size_t r = 0; r < num_rows; ++r) {
    rows.push_back({static_cast<int32_t>(rng.UniformInt(0, 15)),
                    static_cast<int32_t>(rng.UniformInt(0, 15)),
                    static_cast<int32_t>(rng.UniformInt(0, 15))});
  }
  return MakeMappedTable(
      {QuantAttr("x", 16), QuantAttr("y", 16), QuantAttr("z", 16)}, rows);
}

std::vector<std::vector<int32_t>> ToVectors(const ItemsetSet& set) {
  std::vector<std::vector<int32_t>> out;
  out.reserve(set.size());
  for (size_t i = 0; i < set.size(); ++i) out.push_back(set.itemset_vector(i));
  return out;
}

class RulePipelineTest : public ::testing::TestWithParam<int> {};

TEST_P(RulePipelineTest, CandidatesMatchSerialEveryLevel) {
  const size_t num_threads = static_cast<size_t>(GetParam());
  MappedTable table = MixedTable(/*seed=*/17, /*num_rows=*/1200);
  MinerOptions options;
  options.minsup = 0.08;
  options.max_support = 0.7;
  options.num_threads = 1;
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  FrequentItemsetResult mined = MineFrequentItemsets(table, catalog, options);

  // Rebuild L_{k-1} per level from the mined itemsets and compare the next
  // level's candidates serial vs parallel (prune included for k >= 3).
  std::map<size_t, ItemsetSet> levels;
  for (const FrequentItemset& f : mined.itemsets) {
    levels.try_emplace(f.items.size(), f.items.size())
        .first->second.AppendVector(f.items);
  }
  ASSERT_GE(levels.size(), 2u);
  for (const auto& [k, frequent] : levels) {
    ItemsetSet serial = GenerateCandidates(catalog, frequent, 1);
    CandidateGenStats stats;
    ItemsetSet parallel =
        GenerateCandidates(catalog, frequent, num_threads, &stats);
    EXPECT_EQ(ToVectors(parallel), ToVectors(serial)) << "level " << k + 1;
    EXPECT_GT(stats.seconds, 0.0);
  }
}

TEST_P(RulePipelineTest, LargeJoinTakesParallelPathAndMatchesSerial) {
  const size_t num_threads = static_cast<size_t>(GetParam());
  MappedTable table = WideQuantTable(/*seed=*/29, /*num_rows=*/800);
  MinerOptions options;
  options.minsup = 0.02;
  options.max_support = 0.5;
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  ItemsetSet l1(1);
  for (size_t i = 0; i < catalog.num_items(); ++i) {
    l1.AppendVector({static_cast<int32_t>(i)});
  }
  ASSERT_GE(l1.size(), 256u);  // past the serial cutoff

  CandidateGenStats serial_stats;
  ItemsetSet serial = GenerateCandidates(catalog, l1, 1, &serial_stats);
  EXPECT_EQ(serial_stats.threads_used, 1u);

  CandidateGenStats parallel_stats;
  ItemsetSet parallel =
      GenerateCandidates(catalog, l1, num_threads, &parallel_stats);
  EXPECT_EQ(parallel_stats.threads_used, num_threads);
  EXPECT_EQ(parallel_stats.join_candidates, serial_stats.join_candidates);
  EXPECT_EQ(ToVectors(parallel), ToVectors(serial));
}

TEST_P(RulePipelineTest, RulesMatchSerial) {
  const size_t num_threads = static_cast<size_t>(GetParam());
  MappedTable table = MixedTable(/*seed=*/43, /*num_rows=*/1500);
  MinerOptions options;
  options.minsup = 0.05;
  options.max_support = 0.7;
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  FrequentItemsetResult mined = MineFrequentItemsets(table, catalog, options);
  ASSERT_GE(mined.itemsets.size(), 128u);  // past the serial cutoff

  size_t serial_threads = 0;
  std::vector<BooleanRule> serial = GenerateRules(
      mined.itemsets, table.num_rows(), /*minconf=*/0.3, 1, &serial_threads);
  EXPECT_EQ(serial_threads, 1u);
  ASSERT_FALSE(serial.empty());

  size_t parallel_threads = 0;
  std::vector<BooleanRule> parallel =
      GenerateRules(mined.itemsets, table.num_rows(), /*minconf=*/0.3,
                    num_threads, &parallel_threads);
  EXPECT_EQ(parallel_threads, num_threads);
  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].antecedent, serial[i].antecedent) << "rule " << i;
    EXPECT_EQ(parallel[i].consequent, serial[i].consequent) << "rule " << i;
    EXPECT_EQ(parallel[i].count, serial[i].count) << "rule " << i;
    EXPECT_EQ(parallel[i].support, serial[i].support) << "rule " << i;
    EXPECT_EQ(parallel[i].confidence, serial[i].confidence) << "rule " << i;
  }

  // The decoded quantitative rules must be byte-identical as well.
  std::vector<QuantRule> serial_quant = GenerateQuantRules(
      mined.itemsets, catalog, table.num_rows(), /*minconf=*/0.3, 1);
  std::vector<QuantRule> parallel_quant =
      GenerateQuantRules(mined.itemsets, catalog, table.num_rows(),
                         /*minconf=*/0.3, num_threads);
  ASSERT_EQ(parallel_quant.size(), serial_quant.size());
  for (size_t i = 0; i < serial_quant.size(); ++i) {
    EXPECT_EQ(RuleToJson(parallel_quant[i], table),
              RuleToJson(serial_quant[i], table));
  }
}

TEST_P(RulePipelineTest, InterestFlagsMatchSerial) {
  const size_t num_threads = static_cast<size_t>(GetParam());
  MappedTable table = MixedTable(/*seed=*/61, /*num_rows=*/1500);
  MinerOptions options;
  options.minsup = 0.05;
  options.max_support = 0.7;
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  FrequentItemsetResult mined = MineFrequentItemsets(table, catalog, options);
  std::vector<QuantRule> rules = GenerateQuantRules(
      mined.itemsets, catalog, table.num_rows(), /*minconf=*/0.25);
  ASSERT_GE(rules.size(), 64u);  // past the serial cutoff

  // Enough independent attribute-split groups that the pool is actually
  // populated at every tested width.
  std::set<std::vector<int32_t>> splits;
  for (const QuantRule& rule : rules) {
    std::vector<int32_t> key = AttributesOf(rule.antecedent);
    key.push_back(-1);
    const std::vector<int32_t> cons = AttributesOf(rule.consequent);
    key.insert(key.end(), cons.begin(), cons.end());
    splits.insert(std::move(key));
  }
  ASSERT_GE(splits.size(), num_threads);

  InterestEvaluator evaluator(&catalog, &mined.itemsets,
                              /*interest_level=*/1.1,
                              InterestMode::kSupportOrConfidence);
  std::vector<QuantRule> serial = rules;
  size_t serial_threads = 0;
  evaluator.EvaluateRules(&serial, 1, &serial_threads);
  EXPECT_EQ(serial_threads, 1u);

  std::vector<QuantRule> parallel = rules;
  size_t parallel_threads = 0;
  evaluator.EvaluateRules(&parallel, num_threads, &parallel_threads);
  EXPECT_EQ(parallel_threads, num_threads);
  for (size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(parallel[i].interesting, serial[i].interesting) << "rule " << i;
  }
}

TEST_P(RulePipelineTest, EndToEndMinerMatchesSerial) {
  const size_t num_threads = static_cast<size_t>(GetParam());
  MappedTable table = MixedTable(/*seed=*/83, /*num_rows=*/1200);
  MinerOptions serial_options;
  serial_options.minsup = 0.07;
  serial_options.max_support = 0.7;
  serial_options.minconf = 0.3;
  serial_options.interest_level = 1.1;
  serial_options.num_threads = 1;
  Result<MiningResult> serial_result =
      QuantitativeRuleMiner(serial_options).MineMapped(table);
  ASSERT_TRUE(serial_result.ok()) << serial_result.status().ToString();
  MiningResult& serial = *serial_result;

  MinerOptions parallel_options = serial_options;
  parallel_options.num_threads = num_threads;
  Result<MiningResult> parallel_result =
      QuantitativeRuleMiner(parallel_options).MineMapped(table);
  ASSERT_TRUE(parallel_result.ok()) << parallel_result.status().ToString();
  MiningResult& parallel = *parallel_result;

  ASSERT_EQ(parallel.frequent_itemsets.size(),
            serial.frequent_itemsets.size());
  for (size_t i = 0; i < serial.frequent_itemsets.size(); ++i) {
    EXPECT_EQ(parallel.frequent_itemsets[i].items,
              serial.frequent_itemsets[i].items);
    EXPECT_EQ(parallel.frequent_itemsets[i].count,
              serial.frequent_itemsets[i].count);
  }
  ASSERT_EQ(parallel.rules.size(), serial.rules.size());
  for (size_t i = 0; i < serial.rules.size(); ++i) {
    EXPECT_EQ(RuleToJson(parallel.rules[i], parallel.mapped),
              RuleToJson(serial.rules[i], serial.mapped));
  }
  EXPECT_EQ(parallel.stats.num_interesting_rules,
            serial.stats.num_interesting_rules);
}

INSTANTIATE_TEST_SUITE_P(Threads, RulePipelineTest,
                         ::testing::Values(2, 4, 8));

TEST(RulePipelineTest, StatsJsonCarriesPhaseFields) {
  MappedTable table = MixedTable(/*seed=*/97, /*num_rows=*/600);
  MinerOptions options;
  options.minsup = 0.1;
  options.max_support = 0.7;
  options.minconf = 0.3;
  options.interest_level = 1.1;
  options.num_threads = 2;
  Result<MiningResult> mine_result =
      QuantitativeRuleMiner(options).MineMapped(table);
  ASSERT_TRUE(mine_result.ok()) << mine_result.status().ToString();
  MiningResult& result = *mine_result;
  const std::string json = StatsToJson(result.stats);
  for (const char* field :
       {"\"candgen_seconds\":", "\"rulegen_seconds\":",
        "\"interest_seconds\":", "\"candgen_threads_used\":",
        "\"rulegen_threads_used\":", "\"interest_threads_used\":",
        "\"candgen\":{\"threads_used\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

TEST(RulePipelineTest, SharedHashMatchesGroupKeyHash) {
  // GroupKeyHash (counting) and Int32VectorHash (rulegen / interest) must
  // stay the same function: both delegate to common/hash.h.
  GroupKeyHash group_hash;
  Int32VectorHash vec_hash;
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int32_t> key;
    const size_t len = 1 + rng.UniformInt(0, 5);
    for (size_t i = 0; i < len; ++i) {
      key.push_back(static_cast<int32_t>(rng.UniformInt(0, 100)) - 2);
    }
    EXPECT_EQ(group_hash(key), vec_hash(key));
    EXPECT_EQ(vec_hash(key), HashInt32Words(key.data(), key.size()));
  }
}

TEST(RulePipelineTest, BooleanAprioriMatchesSerial) {
  // The boolean Apriori pass counting shards transactions the same way; the
  // mined itemsets must be identical at any thread count.
  Rng rng(101);
  std::vector<Transaction> transactions;
  for (size_t t = 0; t < 2000; ++t) {
    std::set<int32_t> items;
    const size_t len = 2 + rng.UniformInt(0, 5);
    for (size_t i = 0; i < len; ++i) {
      items.insert(static_cast<int32_t>(rng.UniformInt(0, 24)));
    }
    transactions.emplace_back(items.begin(), items.end());
  }
  AprioriOptions options;
  options.minsup = 0.05;
  options.num_threads = 1;
  const std::vector<FrequentItemset> serial =
      AprioriMine(transactions, options);
  ASSERT_FALSE(serial.empty());
  for (size_t threads : {2u, 4u, 8u}) {
    options.num_threads = threads;
    EXPECT_EQ(AprioriMine(transactions, options), serial)
        << "threads " << threads;
  }
}

// --- Close-ancestor filter vs the all-pairs reference ----------------------

// The original O(|ancestors|^2) close-ancestor computation, kept here as the
// reference: process rules most-general first; an interesting ancestor is
// close iff it does not strictly generalize any *other* ancestor; the rule
// is interesting iff it is R-interesting w.r.t. every close ancestor.
std::vector<bool> BruteForceInterestFlags(const InterestEvaluator& evaluator,
                                          const std::vector<QuantRule>& rules) {
  auto rule_generalizes = [](const QuantRule& a, const QuantRule& b) {
    if (!IsGeneralization(a.antecedent, b.antecedent)) return false;
    if (!IsGeneralization(a.consequent, b.consequent)) return false;
    return a.antecedent != b.antecedent || a.consequent != b.consequent;
  };
  auto volume = [](const QuantRule& rule) {
    double v = 1.0;
    for (const RangeItem& item : rule.antecedent) {
      v *= static_cast<double>(item.Width());
    }
    for (const RangeItem& item : rule.consequent) {
      v *= static_cast<double>(item.Width());
    }
    return v;
  };

  std::map<std::vector<int32_t>, std::vector<size_t>> groups;
  for (size_t i = 0; i < rules.size(); ++i) {
    std::vector<int32_t> key = AttributesOf(rules[i].antecedent);
    key.push_back(-1);
    const std::vector<int32_t> cons = AttributesOf(rules[i].consequent);
    key.insert(key.end(), cons.begin(), cons.end());
    groups[std::move(key)].push_back(i);
  }

  std::vector<bool> flags(rules.size(), true);
  for (const auto& [key, members] : groups) {
    std::vector<size_t> order = members;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const double va = volume(rules[a]);
      const double vb = volume(rules[b]);
      if (va != vb) return va > vb;
      return a < b;
    });
    std::vector<size_t> interesting_so_far;
    for (size_t index : order) {
      std::vector<size_t> ancestors;
      for (size_t candidate : interesting_so_far) {
        if (rule_generalizes(rules[candidate], rules[index])) {
          ancestors.push_back(candidate);
        }
      }
      bool interesting = true;
      for (size_t i = 0; i < ancestors.size() && interesting; ++i) {
        bool has_closer = false;
        for (size_t j = 0; j < ancestors.size(); ++j) {
          if (i != j &&
              rule_generalizes(rules[ancestors[i]], rules[ancestors[j]])) {
            has_closer = true;
            break;
          }
        }
        if (has_closer) continue;
        if (!evaluator.IsRuleRInterestingWrt(rules[index],
                                             rules[ancestors[i]])) {
          interesting = false;
        }
      }
      flags[index] = interesting;
      if (interesting) interesting_so_far.push_back(index);
    }
  }
  return flags;
}

TEST(CloseAncestorTest, DominanceFilterMatchesBruteForce) {
  for (uint64_t seed : {11u, 13u, 19u}) {
    MappedTable table = MixedTable(seed, /*num_rows=*/1000);
    MinerOptions options;
    options.minsup = 0.06;
    options.max_support = 0.7;
    ItemCatalog catalog = ItemCatalog::Build(table, options);
    FrequentItemsetResult mined =
        MineFrequentItemsets(table, catalog, options);
    std::vector<QuantRule> rules = GenerateQuantRules(
        mined.itemsets, catalog, table.num_rows(), /*minconf=*/0.25);
    ASSERT_FALSE(rules.empty());

    for (double level : {1.05, 1.5}) {
      InterestEvaluator evaluator(&catalog, &mined.itemsets, level,
                                  InterestMode::kSupportOrConfidence);
      const std::vector<bool> expected =
          BruteForceInterestFlags(evaluator, rules);
      // Some rules must actually have close ancestors for the comparison to
      // bite; the combined quant ranges and the taxonomy guarantee that.
      EXPECT_NE(std::count(expected.begin(), expected.end(), false), 0)
          << "seed " << seed << " level " << level;

      for (size_t threads : {1u, 4u}) {
        std::vector<QuantRule> got = rules;
        evaluator.EvaluateRules(&got, threads);
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].interesting, expected[i])
              << "seed " << seed << " level " << level << " threads "
              << threads << " rule " << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace qarm
