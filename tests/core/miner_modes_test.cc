// Miner option-surface tests: interest modes, dropped minconf, k-means
// partitioning end to end, itemset-size caps, and the n' refinement.
#include <gtest/gtest.h>

#include "core/miner.h"
#include "core/rules.h"
#include "table/datagen.h"

namespace qarm {
namespace {

MinerOptions BaseOptions() {
  MinerOptions options;
  options.minsup = 0.2;
  options.minconf = 0.4;
  options.max_support = 0.4;
  options.partial_completeness = 3.0;
  return options;
}

TEST(MinerModesTest, AndModeIsNoLessStrictThanOr) {
  Table data = MakeFinancialDataset(2000, 21);
  MinerOptions or_options = BaseOptions();
  or_options.interest_level = 1.3;
  or_options.interest_mode = InterestMode::kSupportOrConfidence;
  MinerOptions and_options = or_options;
  and_options.interest_mode = InterestMode::kSupportAndConfidence;

  auto or_result = QuantitativeRuleMiner(or_options).Mine(data);
  auto and_result = QuantitativeRuleMiner(and_options).Mine(data);
  ASSERT_TRUE(or_result.ok());
  ASSERT_TRUE(and_result.ok());
  EXPECT_EQ(or_result->rules.size(), and_result->rules.size());
  EXPECT_LE(and_result->stats.num_interesting_rules,
            or_result->stats.num_interesting_rules);
}

TEST(MinerModesTest, DroppedMinconfWithInterest) {
  // Section 4: with an interest level, the minimum-confidence constraint
  // may be dropped (minconf = 0) — every frequent split becomes a rule and
  // the interest measure does the filtering.
  Table data = MakeFinancialDataset(1000, 22);
  MinerOptions with_conf = BaseOptions();
  // minsup 20% with maxsup 40% already forces conf >= 50% for single-item
  // antecedents, so use a high threshold to make minconf bite.
  with_conf.minconf = 0.75;
  with_conf.interest_level = 1.5;
  MinerOptions no_conf = with_conf;
  no_conf.minconf = 0.0;

  auto a = QuantitativeRuleMiner(with_conf).Mine(data);
  auto b = QuantitativeRuleMiner(no_conf).Mine(data);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b->rules.size(), a->rules.size());
  for (const QuantRule& r : a->rules) {
    EXPECT_GE(r.confidence + 1e-12, 0.75);
  }
}

TEST(MinerModesTest, KMeansPartitioningEndToEnd) {
  Table data = MakeFinancialDataset(3000, 23);
  MinerOptions options = BaseOptions();
  options.partition_method = PartitionMethod::kKMeans;
  auto result = QuantitativeRuleMiner(options).Mine(data);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.num_frequent_items, 0u);
  // Income is partitioned and its intervals are disjoint and ordered.
  const MappedAttribute& income = result->mapped.attribute(0);
  ASSERT_TRUE(income.partitioned);
  for (size_t i = 1; i < income.intervals.size(); ++i) {
    EXPECT_GT(income.intervals[i].lo, income.intervals[i - 1].hi);
  }
}

TEST(MinerModesTest, NPrimeReducesItems) {
  Table data = MakeFinancialDataset(2000, 24);
  MinerOptions full = BaseOptions();
  MinerOptions refined = BaseOptions();
  refined.max_quantitative_per_rule = 2;  // fewer intervals via Equation 2
  auto a = QuantitativeRuleMiner(full).Mine(data);
  auto b = QuantitativeRuleMiner(refined).Mine(data);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(b->stats.num_frequent_items, a->stats.num_frequent_items);
}

TEST(MinerModesTest, MaxItemsetSizeLimitsRules) {
  Table data = MakeFinancialDataset(2000, 25);
  MinerOptions options = BaseOptions();
  options.max_itemset_size = 2;
  auto result = QuantitativeRuleMiner(options).Mine(data);
  ASSERT_TRUE(result.ok());
  for (const QuantRule& r : result->rules) {
    EXPECT_LE(r.antecedent.size() + r.consequent.size(), 2u);
  }
}

TEST(MinerModesTest, SingleAttributeTableYieldsNoRules) {
  Schema schema =
      Schema::Make({{"x", AttributeKind::kQuantitative, ValueType::kInt64}})
          .value();
  Table table(schema);
  for (int64_t i = 0; i < 100; ++i) {
    table.AppendRowUnchecked({Value(i % 10)});
  }
  MinerOptions options = BaseOptions();
  auto result = QuantitativeRuleMiner(options).Mine(table);
  ASSERT_TRUE(result.ok());
  // Items exist, but rules need two attributes.
  EXPECT_GT(result->stats.num_frequent_items, 0u);
  EXPECT_TRUE(result->rules.empty());
}

TEST(MinerModesTest, EmptyTable) {
  Table table(MakePeopleTable().schema());
  MinerOptions options = BaseOptions();
  auto result = QuantitativeRuleMiner(options).Mine(table);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rules.empty());
  EXPECT_EQ(result->stats.num_records, 0u);
}

}  // namespace
}  // namespace qarm
