// Determinism of the parallel sharded counting paths: with any thread
// count, CountSupports and ItemCatalog::Build must produce counts identical
// to the serial path — on tables with missing values, taxonomies, and
// super-candidates counted through all three engines (dense grid, shared
// atomic grid, R*-tree).
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "core/apriori_quant.h"
#include "core/candidate_gen.h"
#include "core/frequent_items.h"
#include "core/miner.h"
#include "core/report.h"
#include "core/support_counting.h"
#include "table/datagen.h"
#include "testutil.h"

namespace qarm {
namespace {

using testutil::BruteForceSupport;
using testutil::CatAttr;
using testutil::MakeMappedTable;
using testutil::QuantAttr;

// A categorical attribute generalized by a taxonomy: interior nodes cover
// contiguous leaf ranges, which makes the attribute "ranged" and therefore
// a rectangle dimension in the counting pass.
MappedAttribute TaxonomyAttr(const std::string& name,
                             std::vector<std::string> leaves,
                             std::vector<Taxonomy::NodeRange> ranges) {
  MappedAttribute attr = CatAttr(name, std::move(leaves));
  attr.taxonomy_ranges = std::move(ranges);
  return attr;
}

// Rows over {quant(12), taxonomized cat(4), plain cat(3), quant(9),
// plain cat(2)} with a sprinkle of missing values in every attribute. The
// two plain categorical attributes guarantee purely-categorical (direct)
// super-candidates alongside the grid ones.
MappedTable MixedTable(uint64_t seed, size_t num_rows) {
  Rng rng(seed);
  std::vector<std::vector<int32_t>> rows;
  for (size_t r = 0; r < num_rows; ++r) {
    std::vector<int32_t> row = {
        static_cast<int32_t>(rng.UniformInt(0, 11)),
        static_cast<int32_t>(rng.UniformInt(0, 3)),
        static_cast<int32_t>(rng.UniformInt(0, 2)),
        static_cast<int32_t>(rng.UniformInt(0, 8)),
        static_cast<int32_t>(rng.UniformInt(0, 1))};
    for (size_t a = 0; a < row.size(); ++a) {
      if (rng.UniformInt(0, 19) == 0) row[a] = kMissingValue;
    }
    rows.push_back(std::move(row));
  }
  return MakeMappedTable(
      {QuantAttr("balance", 12),
       TaxonomyAttr("region", {"north", "south", "east", "west"},
                    {{"any", 0, 3}, {"vertical", 0, 1}}),
       CatAttr("status", {"single", "married", "divorced"}),
       QuantAttr("age", 9), CatAttr("employed", {"yes", "no"})},
      rows);
}

// Candidates for level 2 over everything the catalog produced.
ItemsetSet MakeLevel2Candidates(const ItemCatalog& catalog) {
  ItemsetSet l1(1);
  for (size_t i = 0; i < catalog.num_items(); ++i) {
    l1.AppendVector({static_cast<int32_t>(i)});
  }
  return GenerateCandidates(catalog, l1);
}

class ParallelCountingTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelCountingTest, ThreadedCountsMatchSerial) {
  const size_t num_threads = static_cast<size_t>(GetParam());
  MappedTable table = MixedTable(/*seed=*/17, /*num_rows=*/1200);
  MinerOptions serial_options;
  serial_options.minsup = 0.08;
  serial_options.max_support = 0.7;
  serial_options.num_threads = 1;
  ItemCatalog catalog = ItemCatalog::Build(table, serial_options);
  ItemsetSet c2 = MakeLevel2Candidates(catalog);
  ASSERT_GT(c2.size(), 0u);

  CountingStats serial_stats;
  std::vector<uint32_t> serial_counts =
      CountSupports(table, catalog, c2, serial_options, &serial_stats);
  EXPECT_EQ(serial_stats.threads_used, 1u);
  EXPECT_EQ(serial_stats.num_atomic_shared, 0u);

  MinerOptions parallel_options = serial_options;
  parallel_options.num_threads = num_threads;
  CountingStats parallel_stats;
  std::vector<uint32_t> parallel_counts =
      CountSupports(table, catalog, c2, parallel_options, &parallel_stats);
  EXPECT_EQ(parallel_stats.threads_used, num_threads);
  EXPECT_EQ(parallel_counts, serial_counts);

  // Mixed engines were actually exercised: the taxonomy and the quant
  // attributes produce grid groups, the plain categorical pairs direct ones.
  EXPECT_GT(parallel_stats.num_array_counters, 0u);
  EXPECT_GT(parallel_stats.num_direct, 0u);

  // Spot-check against brute force as well (the serial path is itself under
  // test elsewhere, but this pins the parallel path to ground truth).
  for (size_t c = 0; c < c2.size(); c += 7) {
    EXPECT_EQ(parallel_counts[c],
              BruteForceSupport(table, catalog.Decode(c2.itemset_vector(c))))
        << "candidate " << c;
  }
}

TEST_P(ParallelCountingTest, TreeEngineMatchesSerial) {
  const size_t num_threads = static_cast<size_t>(GetParam());
  // Wide quantitative domains with missing values: a handful of candidate
  // pairs makes the 48x44 grid dwarf the R*-tree estimate, so a tight budget
  // routes the group through the tree engine.
  Rng rng(23);
  std::vector<std::vector<int32_t>> rows;
  for (size_t r = 0; r < 900; ++r) {
    std::vector<int32_t> row = {static_cast<int32_t>(rng.UniformInt(0, 47)),
                                static_cast<int32_t>(rng.UniformInt(0, 43))};
    for (size_t a = 0; a < row.size(); ++a) {
      if (rng.UniformInt(0, 19) == 0) row[a] = kMissingValue;
    }
    rows.push_back(std::move(row));
  }
  MappedTable table =
      MakeMappedTable({QuantAttr("q1", 48), QuantAttr("q2", 44)}, rows);
  MinerOptions options;
  options.minsup = 0.05;
  options.max_support = 0.30;
  options.counter_memory_budget_bytes = 1;  // grids only when <= tree bytes
  options.num_threads = 1;
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  std::vector<int32_t> q1_items, q2_items;
  for (size_t i = 0; i < catalog.num_items(); ++i) {
    (catalog.item(static_cast<int32_t>(i)).attr == 0 ? q1_items : q2_items)
        .push_back(static_cast<int32_t>(i));
  }
  ASSERT_GT(q1_items.size(), 0u);
  ASSERT_GT(q2_items.size(), 0u);
  ItemsetSet c2(2);
  for (size_t i = 0; i < q1_items.size() && i < 5; ++i) {
    for (size_t j = 0; j < q2_items.size() && j < 4; ++j) {
      c2.AppendVector({q1_items[i * q1_items.size() / 5],
                       q2_items[j * q2_items.size() / 4]});
    }
  }
  ASSERT_GT(c2.size(), 0u);

  CountingStats serial_stats;
  std::vector<uint32_t> serial_counts =
      CountSupports(table, catalog, c2, options, &serial_stats);
  EXPECT_GT(serial_stats.num_tree_counters, 0u);

  options.num_threads = num_threads;
  CountingStats parallel_stats;
  std::vector<uint32_t> parallel_counts =
      CountSupports(table, catalog, c2, options, &parallel_stats);
  EXPECT_GT(parallel_stats.num_tree_counters, 0u);
  EXPECT_EQ(parallel_counts, serial_counts);
}

TEST_P(ParallelCountingTest, AtomicSharedGridsMatchSerial) {
  const size_t num_threads = static_cast<size_t>(GetParam());
  MappedTable table = MixedTable(/*seed=*/31, /*num_rows=*/1000);
  MinerOptions options;
  options.minsup = 0.08;
  options.max_support = 0.7;
  options.num_threads = 1;
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  ItemsetSet c2 = MakeLevel2Candidates(catalog);
  ASSERT_GT(c2.size(), 0u);
  std::vector<uint32_t> serial_counts =
      CountSupports(table, catalog, c2, options, nullptr);

  // No replication budget: every grid group must fall back to the shared
  // atomic mode, and the counts must still be exact.
  options.num_threads = num_threads;
  options.parallel_replication_budget_bytes = 0;
  CountingStats stats;
  std::vector<uint32_t> parallel_counts =
      CountSupports(table, catalog, c2, options, &stats);
  if (num_threads > 1) {
    EXPECT_GT(stats.num_atomic_shared, 0u);
    EXPECT_EQ(stats.num_atomic_shared, stats.num_array_counters);
    EXPECT_EQ(stats.replicated_bytes, 0u);
  }
  EXPECT_EQ(parallel_counts, serial_counts);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelCountingTest,
                         ::testing::Values(2, 4, 8));

TEST(ParallelCountingTest, CumulativeBudgetBoundsGridMemory) {
  MappedTable table = MixedTable(/*seed=*/41, /*num_rows=*/600);
  MinerOptions options;
  options.minsup = 0.05;
  options.max_support = 0.8;
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  ItemsetSet c2 = MakeLevel2Candidates(catalog);
  ASSERT_GT(c2.size(), 0u);

  CountingStats stats;
  CountSupports(table, catalog, c2, options, &stats);
  // The pass records how much counter memory it used, and under the default
  // budget the dense grids must respect it cumulatively.
  EXPECT_GT(stats.counter_bytes, 0u);
  EXPECT_LE(stats.counter_bytes, options.counter_memory_budget_bytes);
}

TEST(ParallelCountingTest, CatalogBuildMatchesSerial) {
  MappedTable table = MixedTable(/*seed=*/53, /*num_rows=*/1500);
  MinerOptions serial_options;
  serial_options.minsup = 0.06;
  serial_options.num_threads = 1;
  ItemCatalog serial = ItemCatalog::Build(table, serial_options);

  for (size_t threads : {2u, 4u, 8u}) {
    MinerOptions options = serial_options;
    options.num_threads = threads;
    ItemCatalog parallel = ItemCatalog::Build(table, options);
    ASSERT_EQ(parallel.num_items(), serial.num_items());
    for (size_t i = 0; i < serial.num_items(); ++i) {
      const int32_t id = static_cast<int32_t>(i);
      EXPECT_EQ(parallel.item(id), serial.item(id));
      EXPECT_EQ(parallel.item_count(id), serial.item_count(id));
    }
    for (size_t a = 0; a < table.num_attributes(); ++a) {
      EXPECT_EQ(parallel.value_counts(a), serial.value_counts(a));
    }
  }
}

TEST(ParallelCountingTest, EndToEndMinerMatchesSerial) {
  Table data = MakeFinancialDataset(3000, /*seed=*/9);
  MinerOptions serial_options;
  serial_options.minsup = 0.15;
  serial_options.minconf = 0.3;
  serial_options.partial_completeness = 2.5;
  serial_options.num_threads = 1;
  QuantitativeRuleMiner serial_miner(serial_options);
  Result<MiningResult> serial = serial_miner.Mine(data);
  ASSERT_TRUE(serial.ok());

  MinerOptions parallel_options = serial_options;
  parallel_options.num_threads = 4;
  QuantitativeRuleMiner parallel_miner(parallel_options);
  Result<MiningResult> parallel = parallel_miner.Mine(data);
  ASSERT_TRUE(parallel.ok());

  ASSERT_EQ(parallel->frequent_itemsets.size(),
            serial->frequent_itemsets.size());
  for (size_t i = 0; i < serial->frequent_itemsets.size(); ++i) {
    EXPECT_EQ(parallel->frequent_itemsets[i].count,
              serial->frequent_itemsets[i].count);
  }
  ASSERT_EQ(parallel->rules.size(), serial->rules.size());
  for (size_t i = 0; i < serial->rules.size(); ++i) {
    EXPECT_EQ(RuleToJson(parallel->rules[i], parallel->mapped),
              RuleToJson(serial->rules[i], serial->mapped));
  }
  EXPECT_EQ(parallel->stats.num_threads, 4u);
}

// --- Group-key hash (the VecHash replacement) ------------------------------

TEST(GroupKeyHashTest, QuantAttrAndCategoricalIdKeysDiffer) {
  GroupKeyHash hash;
  // {a, -1} encodes "quantitative attribute a, no categorical items";
  // {-1, a} encodes "no quantitative attributes, categorical item id a".
  // These denote different super-candidates for every a and must not
  // collide structurally.
  for (int32_t a = 0; a < 512; ++a) {
    EXPECT_NE(hash({a, -1}), hash({-1, a})) << "a=" << a;
  }
}

TEST(GroupKeyHashTest, NoCollisionsAcrossRealisticKeys) {
  GroupKeyHash hash;
  std::set<size_t> hashes;
  size_t num_keys = 0;
  // Keys shaped like real group keys: one or two small attr indices, the
  // separator, zero or two small item ids — the regime where attr indices
  // and item ids draw from the same handful of small integers.
  for (int32_t a = 0; a < 12; ++a) {
    for (int32_t b = a + 1; b < 12; ++b) {
      hashes.insert(hash({a, b, -1}));
      ++num_keys;
      for (int32_t x = 0; x < 12; ++x) {
        hashes.insert(hash({a, -1, b * 12 + x}));
        hashes.insert(hash({-1, a, b * 12 + x}));
        num_keys += 2;
      }
    }
  }
  EXPECT_EQ(hashes.size(), num_keys);
}

TEST(GroupKeyHashTest, LowBitsAreMixed) {
  // unordered_map masks the hash with the bucket count, so the *low* bits
  // must already be well distributed. Bucket 1024 sequential single-attr
  // keys by their lowest 6 bits and require every bucket to be hit (a
  // uniform hash misses a given bucket with probability (63/64)^1024,
  // i.e. never in practice; raw FNV-1a without the finalizer fails this).
  GroupKeyHash hash;
  std::vector<int> buckets(64, 0);
  for (int32_t a = 0; a < 1024; ++a) {
    ++buckets[hash({a, -1}) & 63];
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_GT(buckets[b], 0) << "bucket " << b << " never hit";
  }
}

}  // namespace
}  // namespace qarm
