// End-to-end mining with taxonomies (the Section 1.1 / [SA95] extension):
// interior-node items rescue rules whose leaf values individually lack
// support, and the interest measure treats interior nodes as
// generalizations of their leaves.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/miner.h"
#include "core/rules.h"
#include "partition/taxonomy.h"
#include "table/table.h"

namespace qarm {
namespace {

Taxonomy DrinksTaxonomy() {
  return Taxonomy::Make({{"hot", "drinks"},
                         {"cold", "drinks"},
                         {"coffee", "hot"},
                         {"tea", "hot"},
                         {"soda", "cold"},
                         {"juice", "cold"}})
      .value();
}

// 20% hot-drink buyers (split evenly between coffee and tea, each 10% —
// below minsup) always buy pastry; everyone else rarely does.
Table HotDrinkTable(size_t n) {
  Schema schema =
      Schema::Make({{"drink", AttributeKind::kCategorical, ValueType::kString},
                    {"pastry", AttributeKind::kCategorical,
                     ValueType::kString}})
          .value();
  Table table(schema);
  Rng rng(99);
  for (size_t i = 0; i < n; ++i) {
    double u = rng.UniformDouble();
    std::string drink;
    std::string pastry;
    if (u < 0.10) {
      drink = "coffee";
      pastry = "yes";
    } else if (u < 0.20) {
      drink = "tea";
      pastry = "yes";
    } else if (u < 0.60) {
      drink = "soda";
      pastry = rng.Bernoulli(0.1) ? "yes" : "no";
    } else {
      drink = "juice";
      pastry = rng.Bernoulli(0.1) ? "yes" : "no";
    }
    table.AppendRowUnchecked({Value(std::move(drink)), Value(std::move(pastry))});
  }
  return table;
}

TEST(TaxonomyMiningTest, InteriorNodeRescuesRule) {
  Table data = HotDrinkTable(4000);
  MinerOptions options;
  options.minsup = 0.15;  // coffee (10%) and tea (10%) each fail; hot = 20%
  options.minconf = 0.8;
  options.max_support = 0.9;
  options.taxonomies.emplace_back("drink", DrinksTaxonomy());
  QuantitativeRuleMiner miner(options);
  auto result = miner.Mine(data);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  bool found_hot_rule = false;
  for (const QuantRule& r : result->rules) {
    std::string rendered = RuleToString(r, result->mapped);
    if (rendered.rfind("<drink: hot> => <pastry: yes>", 0) == 0) {
      found_hot_rule = true;
      EXPECT_GT(r.confidence, 0.95);
      EXPECT_NEAR(r.support, 0.20, 0.03);
    }
    // No leaf-level coffee/tea rule can exist: below minsup.
    EXPECT_EQ(rendered.find("<drink: coffee> =>"), std::string::npos);
    EXPECT_EQ(rendered.find("<drink: tea> =>"), std::string::npos);
  }
  EXPECT_TRUE(found_hot_rule);
}

TEST(TaxonomyMiningTest, WithoutTaxonomyRuleIsLost) {
  Table data = HotDrinkTable(4000);
  MinerOptions options;
  options.minsup = 0.15;
  options.minconf = 0.8;
  options.max_support = 0.9;
  // No taxonomy: categorical values cannot combine.
  QuantitativeRuleMiner miner(options);
  auto result = miner.Mine(data);
  ASSERT_TRUE(result.ok());
  for (const QuantRule& r : result->rules) {
    std::string rendered = RuleToString(r, result->mapped);
    EXPECT_EQ(rendered.find("=> <pastry: yes>"), std::string::npos)
        << rendered;
  }
}

TEST(TaxonomyMiningTest, InterestPrunesRedundantChildRule) {
  // Lower minsup so both hot (20%) and coffee/tea (10% each) are frequent;
  // the leaf rules behave exactly like the hot rule, so with an interest
  // level they are marked uninteresting while the hot rule survives.
  Table data = HotDrinkTable(6000);
  MinerOptions options;
  options.minsup = 0.05;
  options.minconf = 0.5;
  options.max_support = 0.9;
  options.interest_level = 1.3;
  options.interest_item_prune = false;
  options.taxonomies.emplace_back("drink", DrinksTaxonomy());
  QuantitativeRuleMiner miner(options);
  auto result = miner.Mine(data);
  ASSERT_TRUE(result.ok());

  const QuantRule* hot_rule = nullptr;
  const QuantRule* coffee_rule = nullptr;
  for (const QuantRule& r : result->rules) {
    std::string rendered = RuleToString(r, result->mapped);
    if (rendered.rfind("<drink: hot> => <pastry: yes>", 0) == 0) {
      hot_rule = &r;
    }
    if (rendered.rfind("<drink: coffee> => <pastry: yes>", 0) == 0) {
      coffee_rule = &r;
    }
  }
  ASSERT_NE(hot_rule, nullptr);
  ASSERT_NE(coffee_rule, nullptr);
  EXPECT_TRUE(hot_rule->interesting);
  // Coffee behaves exactly as its generalization predicts: pruned.
  EXPECT_FALSE(coffee_rule->interesting);
}

TEST(TaxonomyMiningTest, CountsMatchBruteForce) {
  Table data = HotDrinkTable(1000);
  MinerOptions options;
  options.minsup = 0.05;
  options.minconf = 0.5;
  options.max_support = 0.9;
  options.taxonomies.emplace_back("drink", DrinksTaxonomy());
  QuantitativeRuleMiner miner(options);
  auto result = miner.Mine(data);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->frequent_itemsets.empty());
  for (const FrequentRangeItemset& f : result->frequent_itemsets) {
    uint64_t expected = 0;
    for (size_t r = 0; r < result->mapped.num_rows(); ++r) {
      if (RecordSupports(result->mapped.row(r), f.items)) ++expected;
    }
    EXPECT_EQ(f.count, expected);
  }
}

}  // namespace
}  // namespace qarm
