// End-to-end equivalence of the out-of-core path: mining a QBT file
// block-by-block must produce bit-for-bit the rules of an in-memory run
// over the same records, at any thread count.
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/miner.h"
#include "core/report.h"
#include "partition/mapper.h"
#include "storage/qbt_writer.h"
#include "storage/record_source.h"
#include "table/datagen.h"

namespace qarm {
namespace {

MinerOptions BaseOptions() {
  MinerOptions options;
  options.minsup = 0.20;
  options.minconf = 0.40;
  options.max_support = 0.45;
  options.partial_completeness = 3.0;
  options.interest_level = 1.2;
  return options;
}

void ExpectStreamedMatchesInMemory(size_t num_threads) {
  Table raw = MakeFinancialDataset(2000, 42);
  MinerOptions options = BaseOptions();
  options.num_threads = num_threads;

  MapOptions map_options;
  map_options.partial_completeness = options.partial_completeness;
  map_options.minsup = options.minsup;
  auto mapped = MapTable(raw, map_options);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  const std::string path = ::testing::TempDir() + "/streaming_miner_" +
                           std::to_string(num_threads) + ".qbt";
  QbtWriteOptions write_options;
  write_options.rows_per_block = 256;  // 8 blocks: sharding really happens
  ASSERT_TRUE(WriteQbt(*mapped, path, write_options).ok());

  QuantitativeRuleMiner miner(options);
  Result<MiningResult> in_memory_result =
      miner.MineMapped(std::move(mapped).value());
  ASSERT_TRUE(in_memory_result.ok()) << in_memory_result.status().ToString();
  MiningResult& in_memory = *in_memory_result;

  auto source = QbtFileSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  auto streamed = miner.MineStreamed(**source);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();

  // Bit-for-bit: same rules, in the same order, with identical counts,
  // support, confidence, and interest flags (RuleToJson serializes all of
  // them).
  ASSERT_EQ(streamed->rules.size(), in_memory.rules.size());
  for (size_t i = 0; i < in_memory.rules.size(); ++i) {
    EXPECT_EQ(RuleToJson(streamed->rules[i], streamed->mapped),
              RuleToJson(in_memory.rules[i], in_memory.mapped))
        << "rule " << i << " at " << num_threads << " threads";
    EXPECT_EQ(streamed->rules[i].count, in_memory.rules[i].count);
  }
  ASSERT_EQ(streamed->frequent_itemsets.size(),
            in_memory.frequent_itemsets.size());
  for (size_t i = 0; i < in_memory.frequent_itemsets.size(); ++i) {
    EXPECT_EQ(streamed->frequent_itemsets[i].count,
              in_memory.frequent_itemsets[i].count);
  }

  // The streamed run actually went through the file: pass 1 touched every
  // block, and each counting pass reported its I/O.
  EXPECT_EQ(streamed->stats.pass1_io.blocks_read, (*source)->num_blocks());
  EXPECT_GT(streamed->stats.pass1_io.bytes_read, 0u);
  ASSERT_GE(streamed->stats.passes.size(), 1u);
  size_t counting_passes = 0;
  for (const PassStats& pass : streamed->stats.passes) {
    // Pass 1 reuses the catalog scan and the terminal pass has no
    // candidates; every pass that actually counted read every block.
    if (pass.k < 2 || pass.num_candidates == 0) continue;
    EXPECT_EQ(pass.counting.io.blocks_read, (*source)->num_blocks());
    ++counting_passes;
  }
  EXPECT_GE(counting_passes, 1u);
  // The in-memory run never touched a file.
  EXPECT_EQ(in_memory.stats.pass1_io.blocks_read, 0u);
}

TEST(StreamingMinerTest, MatchesInMemorySingleThread) {
  ExpectStreamedMatchesInMemory(1);
}

TEST(StreamingMinerTest, MatchesInMemoryFourThreads) {
  ExpectStreamedMatchesInMemory(4);
}

// A checksum error mid-mine must surface as a Status, not a crash.
TEST(StreamingMinerTest, PropagatesChecksumFailure) {
  Table raw = MakeFinancialDataset(500, 7);
  auto mapped = MapTable(raw, MapOptions{});
  ASSERT_TRUE(mapped.ok());

  const std::string path = ::testing::TempDir() + "/streaming_corrupt.qbt";
  QbtWriteOptions write_options;
  write_options.rows_per_block = 128;
  ASSERT_TRUE(WriteQbt(*mapped, path, write_options).ok());

  // Flip a data byte in block 1.
  {
    auto probe = QbtFileSource::Open(path);
    ASSERT_TRUE(probe.ok());
    const uint64_t offset = (*probe)->reader().block_offset(1);
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.get(byte);
    byte ^= 0x10;
    file.seekp(static_cast<std::streamoff>(offset));
    file.put(byte);
  }

  auto source = QbtFileSource::Open(path);
  ASSERT_TRUE(source.ok());
  QuantitativeRuleMiner miner(BaseOptions());
  auto result = miner.MineStreamed(**source);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("checksum mismatch"),
            std::string::npos)
      << result.status().ToString();
}

}  // namespace
}  // namespace qarm
