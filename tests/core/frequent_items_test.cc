#include "core/frequent_items.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace qarm {
namespace {

using testutil::CatAttr;
using testutil::MakeMappedTable;
using testutil::QuantAttr;

// x quantitative over 5 values with counts {1,2,3,2,2}; y categorical with
// counts a:6, b:4.
MappedTable SmallTable() {
  std::vector<std::vector<int32_t>> rows;
  int32_t x_counts[] = {1, 2, 3, 2, 2};
  size_t r = 0;
  for (int32_t x = 0; x < 5; ++x) {
    for (int32_t i = 0; i < x_counts[x]; ++i) {
      rows.push_back({x, r < 6 ? 0 : 1});
      ++r;
    }
  }
  return MakeMappedTable({QuantAttr("x", 5), CatAttr("y", {"a", "b"})}, rows);
}

TEST(ItemCatalogTest, MarginalCounts) {
  MinerOptions options;
  options.minsup = 0.2;
  options.max_support = 1.0;
  MappedTable table = SmallTable();
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  EXPECT_EQ(catalog.num_records(), 10u);
  EXPECT_EQ(catalog.RangeCount(0, 0, 4), 10u);
  EXPECT_EQ(catalog.RangeCount(0, 1, 2), 5u);
  EXPECT_EQ(catalog.RangeCount(0, 2, 2), 3u);
  EXPECT_EQ(catalog.RangeCount(1, 0, 0), 6u);
  EXPECT_DOUBLE_EQ(catalog.RangeSupport(0, 1, 2), 0.5);
  // Clipping.
  EXPECT_EQ(catalog.RangeCount(0, -5, 100), 10u);
  EXPECT_EQ(catalog.RangeCount(0, 3, 1), 0u);
}

TEST(ItemCatalogTest, CategoricalItems) {
  MinerOptions options;
  options.minsup = 0.5;  // only y=a (60%) qualifies
  options.max_support = 1.0;
  MappedTable table = SmallTable();
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  EXPECT_GE(catalog.CategoricalItemId(1, 0), 0);
  EXPECT_EQ(catalog.CategoricalItemId(1, 1), -1);
}

TEST(ItemCatalogTest, RangeCombination) {
  // minsup 30% (3 records), maxsup 50% (5 records).
  MinerOptions options;
  options.minsup = 0.3;
  options.max_support = 0.5;
  MappedTable table = SmallTable();
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  // Quantitative items expected (counts {1,2,3,2,2}):
  //   [0..1]=3, [1..2]=5, [2..2]=3, [2..3]=5, [3..4]=4.
  // [0..2]=6 exceeds maxsup; [4..4]=2 below minsup; [1..1]=2 below.
  std::vector<RangeItem> expected = {
      {0, 0, 1}, {0, 1, 2}, {0, 2, 2}, {0, 2, 3}, {0, 3, 4}};
  std::vector<RangeItem> actual;
  for (size_t i = 0; i < catalog.num_items(); ++i) {
    const RangeItem& item = catalog.item(static_cast<int32_t>(i));
    if (item.attr == 0) actual.push_back(item);
  }
  EXPECT_EQ(actual, expected);
  // And counts are correct.
  for (size_t i = 0; i < catalog.num_items(); ++i) {
    const RangeItem& item = catalog.item(static_cast<int32_t>(i));
    EXPECT_EQ(catalog.item_count(static_cast<int32_t>(i)),
              catalog.RangeCount(item.attr, item.lo, item.hi));
  }
}

TEST(ItemCatalogTest, SingleValueAboveMaxSupportStillConsidered) {
  // One value holds 80% of mass; maxsup 40%. The single value must still be
  // an item (Section 1.2), but no range containing it may extend.
  std::vector<std::vector<int32_t>> rows;
  for (int i = 0; i < 8; ++i) rows.push_back({1});
  rows.push_back({0});
  rows.push_back({2});
  MappedTable table = MakeMappedTable({QuantAttr("x", 3)}, rows);
  MinerOptions options;
  options.minsup = 0.1;
  options.max_support = 0.4;
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  std::vector<RangeItem> actual;
  for (size_t i = 0; i < catalog.num_items(); ++i) {
    actual.push_back(catalog.item(static_cast<int32_t>(i)));
  }
  // [0..0]=1 (10%), [1..1]=8 (80%), [2..2]=1: all singles qualify; no
  // combination survives maxsup.
  std::vector<RangeItem> expected = {{0, 0, 0}, {0, 1, 1}, {0, 2, 2}};
  EXPECT_EQ(actual, expected);
}

TEST(ItemCatalogTest, MaxSupportDisabled) {
  MinerOptions options;
  options.minsup = 0.3;
  options.max_support = 1.0;
  MappedTable table = SmallTable();
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  // The full range [0..4] with 100% support is now an item.
  bool found_full = false;
  for (size_t i = 0; i < catalog.num_items(); ++i) {
    const RangeItem& item = catalog.item(static_cast<int32_t>(i));
    if (item.attr == 0 && item.lo == 0 && item.hi == 4) found_full = true;
  }
  EXPECT_TRUE(found_full);
}

TEST(ItemCatalogTest, Lemma5Prune) {
  // Interest level 2: quantitative items with support > 50% are pruned.
  MinerOptions options;
  options.minsup = 0.3;
  options.max_support = 1.0;
  options.interest_level = 2.0;
  options.interest_item_prune = true;
  MappedTable table = SmallTable();
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  for (size_t i = 0; i < catalog.num_items(); ++i) {
    const RangeItem& item = catalog.item(static_cast<int32_t>(i));
    if (item.attr == 0) {
      EXPECT_LE(catalog.item_count(static_cast<int32_t>(i)), 5u);
    }
  }
  EXPECT_GT(catalog.items_pruned_by_interest(), 0u);

  // With pruning disabled, larger items reappear.
  options.interest_item_prune = false;
  ItemCatalog no_prune = ItemCatalog::Build(table, options);
  EXPECT_GT(no_prune.num_items(), catalog.num_items());
  EXPECT_EQ(no_prune.items_pruned_by_interest(), 0u);
}

TEST(ItemCatalogTest, Lemma5DoesNotPruneCategorical) {
  // y=a has 60% support > 1/2; categorical items are exempt from Lemma 5.
  MinerOptions options;
  options.minsup = 0.3;
  options.max_support = 1.0;
  options.interest_level = 2.0;
  MappedTable table = SmallTable();
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  EXPECT_GE(catalog.CategoricalItemId(1, 0), 0);
}

TEST(ItemCatalogTest, DecodeIds) {
  MinerOptions options;
  options.minsup = 0.3;
  options.max_support = 0.5;
  MappedTable table = SmallTable();
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  RangeItemset decoded = catalog.Decode({0, 1});
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0], catalog.item(0));
  EXPECT_EQ(decoded[1], catalog.item(1));
}

TEST(ItemCatalogTest, EmptyTable) {
  MappedTable table = MakeMappedTable({QuantAttr("x", 3)}, {});
  MinerOptions options;
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  EXPECT_EQ(catalog.num_items(), 0u);
  EXPECT_EQ(catalog.num_records(), 0u);
}

TEST(ItemCatalogTest, ItemsSortedByAttrThenRange) {
  MinerOptions options;
  options.minsup = 0.1;
  options.max_support = 0.6;
  MappedTable table = SmallTable();
  ItemCatalog catalog = ItemCatalog::Build(table, options);
  for (size_t i = 1; i < catalog.num_items(); ++i) {
    EXPECT_TRUE(catalog.item(static_cast<int32_t>(i - 1)) <
                catalog.item(static_cast<int32_t>(i)));
  }
}

}  // namespace
}  // namespace qarm
