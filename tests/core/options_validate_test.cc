// MinerOptions::Validate: the library-path half of the input boundary.
// Every bad range an embedder (or the CLI) can pass must come back as
// InvalidArgument — never reach a QARM_CHECK abort deeper in the miner.
#include "core/options.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/miner.h"
#include "table/schema.h"
#include "table/table.h"

namespace qarm {
namespace {

TEST(MinerOptionsValidateTest, DefaultsAreValid) {
  EXPECT_TRUE(MinerOptions().Validate().ok());
}

TEST(MinerOptionsValidateTest, MinsupRange) {
  MinerOptions options;
  for (double bad : {0.0, -0.1, 1.5, std::nan(""),
                     std::numeric_limits<double>::infinity()}) {
    options.minsup = bad;
    EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument)
        << "minsup=" << bad;
  }
  options.minsup = 1.0;
  options.max_support = 1.0;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(MinerOptionsValidateTest, MinconfRange) {
  MinerOptions options;
  for (double bad : {-0.01, 1.01, std::nan("")}) {
    options.minconf = bad;
    EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument)
        << "minconf=" << bad;
  }
}

TEST(MinerOptionsValidateTest, MaxSupportConsistency) {
  MinerOptions options;
  options.minsup = 0.3;
  options.max_support = 0.2;  // below minsup
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.max_support = 0.0;  // 0 sentinel stays allowed
  EXPECT_TRUE(options.Validate().ok());
  options.max_support = 1.5;  // above 1
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.max_support = std::nan("");
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(MinerOptionsValidateTest, PartialCompletenessMustExceedOne) {
  MinerOptions options;
  for (double bad : {1.0, 0.5, -2.0, std::nan(""),
                     std::numeric_limits<double>::infinity()}) {
    options.partial_completeness = bad;
    EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument)
        << "k=" << bad;
  }
  // With an explicit interval override, Equation 2 is bypassed and k <= 1
  // is tolerated — but non-finite k is still rejected.
  options.num_intervals_override = 4;
  options.partial_completeness = 1.0;
  EXPECT_TRUE(options.Validate().ok());
  options.partial_completeness = std::nan("");
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(MinerOptionsValidateTest, InterestLevelAndThreads) {
  MinerOptions options;
  options.interest_level = -1.0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.interest_level = std::nan("");
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.interest_level = 2.0;
  options.num_threads = MinerOptions::kMaxThreads + 1;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.num_threads = MinerOptions::kMaxThreads;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(MinerOptionsValidateTest, CheckpointKnobs) {
  MinerOptions options;
  options.checkpoint_path = "/tmp/run.qcp";
  EXPECT_TRUE(options.Validate().ok());
  options.checkpoint_every_pass = 0;  // would never checkpoint: reject
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.checkpoint_every_pass = 3;
  EXPECT_TRUE(options.Validate().ok());
  options.checkpoint_path = "/tmp/checkpoints/";  // a directory, not a file
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  // Without a checkpoint path the cadence knob is inert and unvalidated.
  options.checkpoint_path.clear();
  options.checkpoint_every_pass = 0;
  EXPECT_TRUE(options.Validate().ok());
}

TEST(MinerOptionsValidateTest, InjectFaultsSpec) {
  MinerOptions options;
  options.inject_faults_spec = "seed=3,rate=0.5,fails=2,kinds=eio+crc";
  EXPECT_TRUE(options.Validate().ok());
  for (const char* bad : {"rate=2", "fails=0", "kinds=bogus", "nope=1"}) {
    options.inject_faults_spec = bad;
    EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument)
        << "spec accepted: " << bad;
  }
  options.inject_faults_spec.clear();  // empty = injection off, valid
  EXPECT_TRUE(options.Validate().ok());
}

// The historical crash from the issue: k=1 (or NaN minsup) used to reach
// QARM_CHECK_GT in partial_completeness.cc through Mine() and abort the
// process. Both must now fail softly.
TEST(MinerOptionsValidateTest, MineRejectsBadOptionsInsteadOfAborting) {
  auto schema = Schema::Parse("Age:quant,Married:cat");
  ASSERT_TRUE(schema.ok());
  Table table(*schema);
  table.AppendRow({Value(int64_t{23}), Value(std::string("no"))});
  table.AppendRow({Value(int64_t{31}), Value(std::string("yes"))});

  MinerOptions options;
  options.partial_completeness = 1.0;
  auto result = QuantitativeRuleMiner(options).Mine(table);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  options.partial_completeness = 2.0;
  options.minsup = std::nan("");
  result = QuantitativeRuleMiner(options).Mine(table);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace qarm
