#include "core/miner.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "table/datagen.h"
#include "testutil.h"

namespace qarm {
namespace {

// Finds a frequent itemset by its rendered form.
const FrequentRangeItemset* FindItemset(const MiningResult& result,
                                        const std::string& rendered) {
  for (const FrequentRangeItemset& f : result.frequent_itemsets) {
    if (ItemsetToString(f.items, result.mapped) == rendered) return &f;
  }
  return nullptr;
}

const QuantRule* FindRule(const MiningResult& result,
                          const std::string& prefix) {
  for (const QuantRule& r : result.rules) {
    if (RuleToString(r, result.mapped).rfind(prefix, 0) == 0) return &r;
  }
  return nullptr;
}

// The full Figure 3 worked example: People table, Age in 4 equi-depth
// intervals, minsup 40%, minconf 50%.
TEST(MinerTest, Figure3Reproduction) {
  MinerOptions options;
  options.minsup = 0.40;
  options.minconf = 0.50;
  options.max_support = 1.0;  // the example applies no maximum support
  options.num_intervals_override = 4;
  QuantitativeRuleMiner miner(options);
  auto result = miner.Mine(MakePeopleTable());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Figure 3f (sample frequent itemsets) — our equi-depth intervals are
  // [23], [25..29], [34], [38], so "Age: 20..29" decodes as "23..29".
  const FrequentRangeItemset* age_young = FindItemset(*result, "<Age: 23..29>");
  ASSERT_NE(age_young, nullptr);
  EXPECT_EQ(age_young->count, 3u);

  const FrequentRangeItemset* age_old = FindItemset(*result, "<Age: 34..38>");
  ASSERT_NE(age_old, nullptr);
  EXPECT_EQ(age_old->count, 2u);

  const FrequentRangeItemset* married_yes =
      FindItemset(*result, "<Married: Yes>");
  ASSERT_NE(married_yes, nullptr);
  EXPECT_EQ(married_yes->count, 3u);

  const FrequentRangeItemset* cars01 = FindItemset(*result, "<NumCars: 0..1>");
  ASSERT_NE(cars01, nullptr);
  EXPECT_EQ(cars01->count, 3u);

  const FrequentRangeItemset* pair =
      FindItemset(*result, "<Age: 34..38> and <Married: Yes>");
  ASSERT_NE(pair, nullptr);
  EXPECT_EQ(pair->count, 2u);

  // Figure 3g / Figure 1 rules.
  const QuantRule* rule1 =
      FindRule(*result, "<Age: 34..38> and <Married: Yes> => <NumCars: 2>");
  ASSERT_NE(rule1, nullptr);
  EXPECT_DOUBLE_EQ(rule1->support, 0.4);
  EXPECT_DOUBLE_EQ(rule1->confidence, 1.0);

  const QuantRule* rule2 = FindRule(*result, "<Age: 23..29> => <NumCars: 0..1>");
  ASSERT_NE(rule2, nullptr);
  EXPECT_DOUBLE_EQ(rule2->support, 0.6);
  EXPECT_GE(rule2->confidence, 2.0 / 3.0);

  // Figure 1's second rule: <NumCars: 0..1> => <Married: No>, 40%, 66.6%.
  const QuantRule* rule3 = FindRule(*result, "<NumCars: 0..1> => <Married: No>");
  ASSERT_NE(rule3, nullptr);
  EXPECT_DOUBLE_EQ(rule3->support, 0.4);
  EXPECT_NEAR(rule3->confidence, 2.0 / 3.0, 1e-9);
}

TEST(MinerTest, EveryRuleMeetsThresholds) {
  MinerOptions options;
  options.minsup = 0.20;
  options.minconf = 0.40;
  options.max_support = 0.40;
  options.partial_completeness = 3.0;
  QuantitativeRuleMiner miner(options);
  auto result = miner.Mine(MakeFinancialDataset(2000, 42));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->rules.size(), 0u);
  for (const QuantRule& r : result->rules) {
    EXPECT_GE(r.support + 1e-12, options.minsup);
    EXPECT_GE(r.confidence + 1e-12, options.minconf);
    EXPECT_FALSE(r.antecedent.empty());
    EXPECT_FALSE(r.consequent.empty());
  }
}

TEST(MinerTest, RuleSupportsMatchBruteForce) {
  MinerOptions options;
  options.minsup = 0.20;
  options.minconf = 0.50;
  options.max_support = 0.45;
  options.partial_completeness = 3.0;
  QuantitativeRuleMiner miner(options);
  auto result = miner.Mine(MakeFinancialDataset(500, 9));
  ASSERT_TRUE(result.ok());
  for (const QuantRule& r : result->rules) {
    RangeItemset all = r.UnionItemset();
    uint64_t expected = testutil::BruteForceSupport(result->mapped, all);
    EXPECT_EQ(r.count, expected) << RuleToString(r, result->mapped);
  }
}

TEST(MinerTest, InterestLevelReducesRuleCount) {
  Table data = MakeFinancialDataset(2000, 5);
  MinerOptions base;
  base.minsup = 0.20;
  base.minconf = 0.30;
  base.max_support = 0.40;
  base.partial_completeness = 3.0;

  QuantitativeRuleMiner plain(base);
  auto plain_result = plain.Mine(data);
  ASSERT_TRUE(plain_result.ok());

  MinerOptions with_interest = base;
  with_interest.interest_level = 1.5;
  QuantitativeRuleMiner interesting(with_interest);
  auto interest_result = interesting.Mine(data);
  ASSERT_TRUE(interest_result.ok());

  size_t interesting_count = interest_result->stats.num_interesting_rules;
  EXPECT_LT(interesting_count, plain_result->rules.size());
  EXPECT_EQ(plain_result->stats.num_interesting_rules,
            plain_result->rules.size());
}

TEST(MinerTest, StatsArePopulated) {
  MinerOptions options;
  options.minsup = 0.2;
  options.minconf = 0.5;
  options.partial_completeness = 2.5;
  QuantitativeRuleMiner miner(options);
  auto result = miner.Mine(MakeFinancialDataset(1000, 3));
  ASSERT_TRUE(result.ok());
  const MiningStats& stats = result->stats;
  EXPECT_EQ(stats.num_records, 1000u);
  EXPECT_GT(stats.num_frequent_items, 0u);
  EXPECT_GE(stats.passes.size(), 1u);
  EXPECT_GT(stats.achieved_partial_completeness, 1.0);
  // The realized K should not exceed the requested level by much (equi-depth
  // may overshoot slightly on duplicated values).
  EXPECT_LT(stats.achieved_partial_completeness, 3.0);
  EXPECT_GE(stats.total_seconds, 0.0);
  EXPECT_EQ(stats.num_rules, result->rules.size());
}

TEST(MinerTest, OptionValidation) {
  MinerOptions options;
  options.minsup = 0.0;
  EXPECT_FALSE(QuantitativeRuleMiner(options).Mine(MakePeopleTable()).ok());

  options = MinerOptions{};
  options.minconf = 1.5;
  EXPECT_FALSE(QuantitativeRuleMiner(options).Mine(MakePeopleTable()).ok());

  options = MinerOptions{};
  options.max_support = 0.05;  // below minsup
  EXPECT_FALSE(QuantitativeRuleMiner(options).Mine(MakePeopleTable()).ok());

  options = MinerOptions{};
  options.partial_completeness = 0.5;
  EXPECT_FALSE(QuantitativeRuleMiner(options).Mine(MakePeopleTable()).ok());

  options = MinerOptions{};
  options.interest_level = -1.0;
  EXPECT_FALSE(QuantitativeRuleMiner(options).Mine(MakePeopleTable()).ok());
}

TEST(MinerTest, DeterministicAcrossRuns) {
  Table data = MakeFinancialDataset(800, 77);
  MinerOptions options;
  options.minsup = 0.2;
  options.minconf = 0.4;
  options.partial_completeness = 3.0;
  options.interest_level = 1.3;
  QuantitativeRuleMiner miner(options);
  auto a = miner.Mine(data);
  auto b = miner.Mine(data);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->rules.size(), b->rules.size());
  for (size_t i = 0; i < a->rules.size(); ++i) {
    EXPECT_EQ(RuleToString(a->rules[i], a->mapped),
              RuleToString(b->rules[i], b->mapped));
    EXPECT_EQ(a->rules[i].interesting, b->rules[i].interesting);
  }
}

TEST(MinerTest, InterestingRulesAccessor) {
  MinerOptions options;
  options.minsup = 0.20;
  options.minconf = 0.3;
  options.partial_completeness = 3.0;
  options.interest_level = 1.5;
  QuantitativeRuleMiner miner(options);
  auto result = miner.Mine(MakeFinancialDataset(1500, 8));
  ASSERT_TRUE(result.ok());
  auto interesting = result->InterestingRules();
  EXPECT_EQ(interesting.size(), result->stats.num_interesting_rules);
  for (const QuantRule& r : interesting) {
    EXPECT_TRUE(r.interesting);
  }
}

}  // namespace
}  // namespace qarm
