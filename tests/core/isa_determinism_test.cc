// The hard acceptance gate for the SIMD counting kernels: mined rules must
// be byte-identical across QARM_FORCE_ISA=scalar/sse42/avx2 at every thread
// count, on both the in-memory and the QBT-streamed path. The scalar
// row-at-a-time scan is the oracle; any vector-path divergence fails here
// before it can ship.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu_dispatch.h"
#include "common/macros.h"
#include "core/miner.h"
#include "core/report.h"
#include "partition/mapper.h"
#include "storage/qbt_writer.h"
#include "storage/record_source.h"
#include "table/datagen.h"

namespace qarm {
namespace {

MinerOptions BaseOptions(size_t num_threads) {
  MinerOptions options;
  options.minsup = 0.20;
  options.minconf = 0.40;
  options.max_support = 0.40;
  options.partial_completeness = 3.0;
  options.interest_level = 1.2;
  options.num_threads = num_threads;
  return options;
}

class IsaDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { ClearIsaForTest(); }
};

// One dataset, shared by every combination: mapped once, written to QBT
// once, mined under each forced ISA.
struct Corpus {
  Table raw = MakeFinancialDataset(1500, 91);
  std::string qbt_path;

  Corpus() {
    // Must match BaseOptions: Mine() re-maps the raw table with the same
    // parameters, and the QBT snapshot has to partition identically.
    MapOptions map_options;
    map_options.partial_completeness = 3.0;
    map_options.minsup = 0.20;
    auto mapped = MapTable(raw, map_options);
    QARM_CHECK(mapped.ok());
    qbt_path = ::testing::TempDir() + "/isa_determinism.qbt";
    QbtWriteOptions write_options;
    write_options.rows_per_block = 256;  // enough blocks to shard over
    QARM_CHECK(WriteQbt(*mapped, qbt_path, write_options).ok());
  }
};

Corpus& GetCorpus() {
  static Corpus* corpus = new Corpus();
  return *corpus;
}

std::vector<std::string> MineToJson(size_t num_threads, bool streamed) {
  Corpus& corpus = GetCorpus();
  QuantitativeRuleMiner miner(BaseOptions(num_threads));
  Result<MiningResult> result = [&]() -> Result<MiningResult> {
    if (streamed) {
      auto source = QbtFileSource::Open(corpus.qbt_path);
      QARM_CHECK(source.ok());
      return miner.MineStreamed(**source);
    }
    return miner.Mine(corpus.raw);
  }();
  // A mining failure under a forced ISA is itself a determinism bug.
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  std::vector<std::string> json;
  if (!result.ok()) return json;
  json.reserve(result->rules.size());
  for (const auto& rule : result->rules) {
    json.push_back(RuleToJson(rule, result->mapped));
  }
  // An empty result would make every cross-ISA comparison vacuous.
  EXPECT_GT(json.size(), 0u);
  return json;
}

TEST_F(IsaDeterminismTest, RulesByteIdenticalAcrossIsasAndThreads) {
  // Baseline: the scalar oracle, serial, in memory.
  SetIsaForTest(SimdIsa::kScalar);
  const std::vector<std::string> baseline = MineToJson(1, /*streamed=*/false);
  ASSERT_FALSE(baseline.empty());

  const SimdIsa detected = DetectCpuIsa();
  for (SimdIsa isa : {SimdIsa::kScalar, SimdIsa::kSse42, SimdIsa::kAvx2}) {
    if (static_cast<int>(isa) > static_cast<int>(detected)) continue;
    SetIsaForTest(isa);
    ASSERT_EQ(ActiveIsa(), isa);
    for (size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
      for (bool streamed : {false, true}) {
        SCOPED_TRACE(std::string(IsaName(isa)) + " threads=" +
                     std::to_string(threads) +
                     (streamed ? " streamed" : " in-memory"));
        const std::vector<std::string> got = MineToJson(threads, streamed);
        ASSERT_EQ(got.size(), baseline.size());
        for (size_t i = 0; i < baseline.size(); ++i) {
          ASSERT_EQ(got[i], baseline[i]) << "rule " << i;
        }
      }
    }
  }
}

// The counting pass must report the ISA it actually ran and route eligible
// super-candidates through the kernels when a vector ISA is active.
TEST_F(IsaDeterminismTest, StatsReportForcedIsa) {
  Corpus& corpus = GetCorpus();
  const SimdIsa best = DetectCpuIsa();
  SetIsaForTest(best);
  QuantitativeRuleMiner miner(BaseOptions(1));
  auto result = miner.Mine(corpus.raw);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  bool saw_counting_pass = false;
  for (const PassStats& pass : result->stats.passes) {
    if (pass.k < 2 || pass.num_candidates == 0) continue;
    saw_counting_pass = true;
    EXPECT_EQ(pass.counting.isa, best);
    if (best != SimdIsa::kScalar) {
      EXPECT_GT(pass.counting.num_kernel_groups, 0u);
    } else {
      EXPECT_EQ(pass.counting.num_kernel_groups, 0u);
    }
  }
  EXPECT_TRUE(saw_counting_pass);

  SetIsaForTest(SimdIsa::kScalar);
  auto scalar_result = miner.Mine(corpus.raw);
  ASSERT_TRUE(scalar_result.ok());
  for (const PassStats& pass : scalar_result->stats.passes) {
    if (pass.k < 2 || pass.num_candidates == 0) continue;
    EXPECT_EQ(pass.counting.isa, SimdIsa::kScalar);
    EXPECT_EQ(pass.counting.num_kernel_groups, 0u);
  }
}

}  // namespace
}  // namespace qarm
