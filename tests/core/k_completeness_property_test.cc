// Empirical verification of the paper's partial-completeness guarantees.
//
// Lemma 3: if every base interval's support is below minsup*(K-1)/(2n),
// the frequent itemsets over the partitioned attributes are K-complete
// w.r.t. the frequent itemsets over the raw values — every raw-value
// itemset has a partitioned generalization with at most K times its
// support.
//
// Lemma 1: generating rules from that K-complete set with minconf/K
// guarantees a "close" rule for every raw-value rule, with support within
// K times and confidence within [1/K, K] times.
//
// This test mines the same data twice — raw values vs. partitioned — and
// checks both guarantees itemset-by-itemset and rule-by-rule.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/miner.h"
#include "core/rules.h"
#include "partition/partial_completeness.h"
#include "testutil.h"

namespace qarm {
namespace {

// Two correlated quantitative attributes over a modest raw domain, so that
// "all ranges over raw values" is tractable to mine exactly.
Table MakeData(size_t n, uint64_t seed) {
  Schema schema =
      Schema::Make({{"x", AttributeKind::kQuantitative, ValueType::kInt64},
                    {"y", AttributeKind::kQuantitative, ValueType::kInt64}})
          .value();
  Table table(schema);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    int64_t x = rng.UniformInt(0, 29);
    int64_t y = std::clamp<int64_t>(
        x + rng.UniformInt(-6, 6), 0, 29);
    table.AppendRowUnchecked({Value(x), Value(y)});
  }
  return table;
}

TEST(KCompletenessPropertyTest, Lemma3ItemsetsAndLemma1Rules) {
  const double kLevel = 3.0;  // desired partial completeness
  const double kMinsup = 0.15;
  const double kMinconf = 0.60;
  const size_t kRecords = 2000;
  Table data = MakeData(kRecords, 77);

  // R_C: all ranges over the raw values (30 distinct values per attribute:
  // overriding the interval count to the domain size leaves them raw).
  MinerOptions raw_options;
  raw_options.minsup = kMinsup;
  raw_options.minconf = kMinconf;
  raw_options.max_support = 1.0;  // the completeness theory has no cap
  raw_options.num_intervals_override = 64;  // > domain: no partitioning
  QuantitativeRuleMiner raw_miner(raw_options);
  auto raw = raw_miner.Mine(data);
  ASSERT_TRUE(raw.ok());
  ASSERT_FALSE(raw->frequent_itemsets.empty());
  // Sanity: attributes were left unpartitioned.
  EXPECT_FALSE(raw->mapped.attribute(0).partitioned);

  // R_P: equi-depth base intervals per Lemma 3: support of each interval
  // below minsup*(K-1)/(2n), n = 2 quantitative attributes.
  const size_t intervals = IntervalsForPartialCompleteness(
      kLevel, data.schema().num_quantitative(), kMinsup);
  MinerOptions part_options = raw_options;
  part_options.num_intervals_override = intervals;
  part_options.minconf = ScaledMinConfidence(kMinconf, kLevel);  // Lemma 1
  QuantitativeRuleMiner part_miner(part_options);
  auto part = part_miner.Mine(data);
  ASSERT_TRUE(part.ok());
  EXPECT_TRUE(part->mapped.attribute(0).partitioned);

  // Translate partitioned itemsets to raw-value ranges for comparison.
  auto to_raw = [](const MiningResult& result, const RangeItemset& items) {
    RangeItemset out;
    for (const RangeItem& item : items) {
      Interval raw_range = result.mapped.attribute(
          static_cast<size_t>(item.attr)).RawInterval(item.lo, item.hi);
      out.push_back(RangeItem{item.attr,
                              static_cast<int32_t>(raw_range.lo),
                              static_cast<int32_t>(raw_range.hi)});
    }
    return out;
  };

  std::vector<std::pair<RangeItemset, double>> part_itemsets;
  for (const FrequentRangeItemset& f : part->frequent_itemsets) {
    part_itemsets.push_back({to_raw(*part, f.items), f.support});
  }

  // Lemma 3: every raw frequent itemset has a partitioned generalization
  // with support at most K times its own.
  size_t checked = 0;
  for (const FrequentRangeItemset& f : raw->frequent_itemsets) {
    RangeItemset raw_items = to_raw(*raw, f.items);
    bool covered = false;
    for (const auto& [p_items, p_support] : part_itemsets) {
      if (IsGeneralization(p_items, raw_items) &&
          p_support <= kLevel * f.support + 1e-9) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "no K-close generalization for "
                         << ItemsetToString(f.items, raw->mapped);
    ++checked;
  }
  EXPECT_GT(checked, 50u);  // the property was exercised non-trivially

  // Lemma 1: every raw rule has a close partitioned rule with support at
  // most K times and confidence within [1/K, K] times.
  struct PartRule {
    RangeItemset ante, cons;
    double support, confidence;
  };
  std::vector<PartRule> part_rules;
  for (const QuantRule& r : part->rules) {
    part_rules.push_back({to_raw(*part, r.antecedent),
                          to_raw(*part, r.consequent), r.support,
                          r.confidence});
  }
  size_t rules_checked = 0;
  for (const QuantRule& r : raw->rules) {
    RangeItemset ante = to_raw(*raw, r.antecedent);
    RangeItemset cons = to_raw(*raw, r.consequent);
    bool covered = false;
    for (const PartRule& p : part_rules) {
      if (!IsGeneralization(p.ante, ante)) continue;
      if (!IsGeneralization(p.cons, cons)) continue;
      if (p.support > kLevel * r.support + 1e-9) continue;
      if (p.confidence < r.confidence / kLevel - 1e-9) continue;
      if (p.confidence > r.confidence * kLevel + 1e-9) continue;
      covered = true;
      break;
    }
    EXPECT_TRUE(covered) << "no K-close rule for "
                         << RuleToString(r, raw->mapped);
    ++rules_checked;
  }
  EXPECT_GT(rules_checked, 20u);
}

TEST(KCompletenessPropertyTest, AchievedLevelIsReported) {
  // A fine-grained domain (few duplicates) lets equi-depth hit the
  // requested level closely; on coarse domains the indivisible value runs
  // can overshoot (that regime is covered by the Lemma 3 test above).
  Schema schema =
      Schema::Make({{"x", AttributeKind::kQuantitative, ValueType::kDouble},
                    {"y", AttributeKind::kQuantitative, ValueType::kDouble}})
          .value();
  Table data(schema);
  Rng rng(5);
  for (size_t i = 0; i < 3000; ++i) {
    double x = rng.LogNormal(3.0, 0.8);
    data.AppendRowUnchecked({Value(x), Value(x + rng.Normal(0, 5.0))});
  }
  MinerOptions options;
  options.minsup = 0.15;
  options.minconf = 0.5;
  options.max_support = 0.6;
  options.partial_completeness = 2.5;
  QuantitativeRuleMiner miner(options);
  auto result = miner.Mine(data);
  ASSERT_TRUE(result.ok());
  // Equi-depth should land at or below the requested level (small
  // overshoot possible on duplicated values).
  EXPECT_GT(result->stats.achieved_partial_completeness, 1.0);
  EXPECT_LT(result->stats.achieved_partial_completeness, 2.8);
}

}  // namespace
}  // namespace qarm
