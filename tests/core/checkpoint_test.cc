// Checkpoint/resume equivalence: a run killed at ANY pass boundary and
// restarted with the same flags must emit bit-identical rules to an
// uninterrupted run — at 1 and 4 threads, over in-memory and QBT-streamed
// sources, with taxonomies and with missing values. The kill is simulated
// with MinerOptions::stop_after_pass, which checkpoints pass k and then
// stops with kCancelled exactly where a crash after the checkpoint write
// would leave the process.
#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/miner.h"
#include "core/report.h"
#include "partition/mapper.h"
#include "partition/taxonomy.h"
#include "storage/qbt_writer.h"
#include "storage/record_source.h"
#include "table/datagen.h"
#include "table/table.h"

namespace qarm {
namespace {

MinerOptions BaseOptions() {
  MinerOptions options;
  options.minsup = 0.20;
  options.minconf = 0.40;
  options.max_support = 0.45;
  options.partial_completeness = 3.0;
  options.interest_level = 1.2;
  return options;
}

std::vector<std::string> RulesAsJson(const MiningResult& result) {
  std::vector<std::string> out;
  out.reserve(result.rules.size());
  for (const QuantRule& rule : result.rules) {
    out.push_back(RuleToJson(rule, result.mapped));
  }
  return out;
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

// Runs the miner over `table`, expecting success.
MiningResult MustMine(const MinerOptions& options, const Table& table) {
  Result<MiningResult> result = QuantitativeRuleMiner(options).Mine(table);
  QARM_CHECK(result.ok());
  return std::move(result).value();
}

// The whole interrupt-at-every-boundary matrix for an in-memory table:
// baseline once, then for each pass k stop there (expect kCancelled plus a
// checkpoint on disk) and rerun to completion, comparing rules and itemset
// counts bit for bit.
void ExpectResumeMatchesBaseline(MinerOptions options, const Table& table,
                                 const std::string& tag) {
  const MiningResult baseline = MustMine(options, table);
  const std::vector<std::string> want = RulesAsJson(baseline);
  const size_t num_passes = baseline.stats.passes.size();
  ASSERT_GE(num_passes, 2u) << tag << ": fixture too small to interrupt";

  const std::string path = ::testing::TempDir() + "/resume_" + tag + ".qcp";
  for (size_t stop = 1; stop <= num_passes; ++stop) {
    std::remove(path.c_str());
    MinerOptions interrupted = options;
    interrupted.checkpoint_path = path;
    interrupted.stop_after_pass = stop;
    Result<MiningResult> killed =
        QuantitativeRuleMiner(interrupted).Mine(table);
    ASSERT_FALSE(killed.ok()) << tag << " stop=" << stop;
    EXPECT_EQ(killed.status().code(), StatusCode::kCancelled);
    ASSERT_TRUE(FileExists(path)) << tag << " stop=" << stop;

    MinerOptions resume = options;
    resume.checkpoint_path = path;
    Result<MiningResult> resumed =
        QuantitativeRuleMiner(resume).Mine(table);
    ASSERT_TRUE(resumed.ok())
        << tag << " stop=" << stop << ": " << resumed.status().ToString();
    EXPECT_TRUE(resumed->stats.checkpoint.resumed);
    EXPECT_EQ(resumed->stats.checkpoint.resumed_passes, stop);
    EXPECT_EQ(RulesAsJson(*resumed), want) << tag << " stop=" << stop;
    ASSERT_EQ(resumed->frequent_itemsets.size(),
              baseline.frequent_itemsets.size());
    for (size_t i = 0; i < baseline.frequent_itemsets.size(); ++i) {
      EXPECT_EQ(resumed->frequent_itemsets[i].count,
                baseline.frequent_itemsets[i].count);
    }
    // The completed run cleans its checkpoint up: a later identical run
    // must mine fresh data, not "resume" into a no-op.
    EXPECT_FALSE(FileExists(path)) << tag << " stop=" << stop;
  }
}

TEST(CheckpointResumeTest, EveryPassBoundarySingleThread) {
  MinerOptions options = BaseOptions();
  options.num_threads = 1;
  ExpectResumeMatchesBaseline(options, MakeFinancialDataset(1500, 42),
                              "mem_t1");
}

TEST(CheckpointResumeTest, EveryPassBoundaryFourThreads) {
  MinerOptions options = BaseOptions();
  options.num_threads = 4;
  ExpectResumeMatchesBaseline(options, MakeFinancialDataset(1500, 42),
                              "mem_t4");
}

// The checkpoint's fingerprint deliberately excludes execution knobs, so a
// run interrupted at 1 thread resumes at 4 (and vice versa) with identical
// output.
TEST(CheckpointResumeTest, ResumeAcrossThreadCounts) {
  const Table table = MakeFinancialDataset(1500, 42);
  MinerOptions options = BaseOptions();
  options.num_threads = 1;
  const MiningResult baseline = MustMine(options, table);
  const std::string path = ::testing::TempDir() + "/resume_cross.qcp";

  std::remove(path.c_str());
  MinerOptions interrupted = options;
  interrupted.checkpoint_path = path;
  interrupted.stop_after_pass = 2;
  ASSERT_EQ(QuantitativeRuleMiner(interrupted).Mine(table).status().code(),
            StatusCode::kCancelled);

  MinerOptions resume = options;
  resume.checkpoint_path = path;
  resume.num_threads = 4;
  Result<MiningResult> resumed = QuantitativeRuleMiner(resume).Mine(table);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->stats.checkpoint.resumed);
  EXPECT_EQ(RulesAsJson(*resumed), RulesAsJson(baseline));
}

// Same matrix over the out-of-core path: the checkpoint logic lives in
// MineWithSource, so a streamed QBT run interrupts and resumes exactly like
// the in-memory one.
void ExpectStreamedResumeMatchesBaseline(size_t num_threads) {
  Table raw = MakeFinancialDataset(1500, 42);
  MinerOptions options = BaseOptions();
  options.num_threads = num_threads;

  MapOptions map_options;
  map_options.partial_completeness = options.partial_completeness;
  map_options.minsup = options.minsup;
  Result<MappedTable> mapped = MapTable(raw, map_options);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const std::string qbt = ::testing::TempDir() + "/resume_stream_" +
                          std::to_string(num_threads) + ".qbt";
  QbtWriteOptions write_options;
  write_options.rows_per_block = 256;
  ASSERT_TRUE(WriteQbt(*mapped, qbt, write_options).ok());

  QuantitativeRuleMiner miner(options);
  Result<std::unique_ptr<QbtFileSource>> source = QbtFileSource::Open(qbt);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  Result<MiningResult> baseline_result = miner.MineStreamed(**source);
  ASSERT_TRUE(baseline_result.ok()) << baseline_result.status().ToString();
  const MiningResult& baseline = *baseline_result;
  const std::vector<std::string> want = RulesAsJson(baseline);
  const size_t num_passes = baseline.stats.passes.size();
  ASSERT_GE(num_passes, 2u);

  const std::string path = ::testing::TempDir() + "/resume_stream_t" +
                           std::to_string(num_threads) + ".qcp";
  for (size_t stop = 1; stop <= num_passes; ++stop) {
    std::remove(path.c_str());
    MinerOptions interrupted = options;
    interrupted.checkpoint_path = path;
    interrupted.stop_after_pass = stop;
    Result<MiningResult> killed =
        QuantitativeRuleMiner(interrupted).MineStreamed(**source);
    ASSERT_FALSE(killed.ok()) << "stop=" << stop;
    EXPECT_EQ(killed.status().code(), StatusCode::kCancelled);
    ASSERT_TRUE(FileExists(path)) << "stop=" << stop;

    MinerOptions resume = options;
    resume.checkpoint_path = path;
    Result<MiningResult> resumed =
        QuantitativeRuleMiner(resume).MineStreamed(**source);
    ASSERT_TRUE(resumed.ok())
        << "stop=" << stop << ": " << resumed.status().ToString();
    EXPECT_TRUE(resumed->stats.checkpoint.resumed);
    EXPECT_EQ(resumed->stats.checkpoint.resumed_passes, stop);
    EXPECT_EQ(RulesAsJson(*resumed), want) << "stop=" << stop;
    // A resumed run skips the pass-1 scan and the first `stop` counting
    // passes entirely: the pass-1 I/O stats stay zero.
    EXPECT_EQ(resumed->stats.pass1_io.blocks_read, 0u);
  }
}

TEST(CheckpointResumeTest, StreamedEveryPassBoundarySingleThread) {
  ExpectStreamedResumeMatchesBaseline(1);
}

TEST(CheckpointResumeTest, StreamedEveryPassBoundaryFourThreads) {
  ExpectStreamedResumeMatchesBaseline(4);
}

// Taxonomy runs carry extra catalog state (interior-node items and their
// ranges) through the checkpoint.
TEST(CheckpointResumeTest, WithTaxonomies) {
  Schema schema =
      Schema::Make({{"drink", AttributeKind::kCategorical, ValueType::kString},
                    {"pastry", AttributeKind::kCategorical,
                     ValueType::kString}})
          .value();
  Table table(schema);
  Rng rng(99);
  for (size_t i = 0; i < 3000; ++i) {
    double u = rng.UniformDouble();
    std::string drink;
    std::string pastry;
    if (u < 0.10) {
      drink = "coffee";
      pastry = "yes";
    } else if (u < 0.20) {
      drink = "tea";
      pastry = "yes";
    } else if (u < 0.60) {
      drink = "soda";
      pastry = rng.Bernoulli(0.1) ? "yes" : "no";
    } else {
      drink = "juice";
      pastry = rng.Bernoulli(0.1) ? "yes" : "no";
    }
    table.AppendRowUnchecked(
        {Value(std::move(drink)), Value(std::move(pastry))});
  }

  MinerOptions options;
  options.minsup = 0.15;
  options.minconf = 0.60;
  options.taxonomies.emplace_back("drink", Taxonomy::Make({{"hot", "drinks"},
                                                           {"cold", "drinks"},
                                                           {"coffee", "hot"},
                                                           {"tea", "hot"},
                                                           {"soda", "cold"},
                                                           {"juice", "cold"}})
                                               .value());
  ExpectResumeMatchesBaseline(options, table, "taxonomy");
}

// Missing values flow through the catalog's value counts; the restored
// catalog must reproduce them exactly.
TEST(CheckpointResumeTest, WithMissingValues) {
  Schema schema =
      Schema::Make({{"x", AttributeKind::kQuantitative, ValueType::kInt64},
                    {"c", AttributeKind::kCategorical, ValueType::kString}})
          .value();
  Table table(schema);
  Rng rng(7);
  for (size_t i = 0; i < 1200; ++i) {
    int64_t x = rng.UniformInt(0, 9);
    std::vector<Value> row(2);
    row[0] = rng.Bernoulli(0.2) ? Value::Null() : Value(x);
    row[1] = rng.Bernoulli(0.2) ? Value::Null()
                                : Value(x < 5 ? std::string("lo")
                                              : std::string("hi"));
    table.AppendRowUnchecked(row);
  }
  MinerOptions options;
  options.minsup = 0.10;
  options.minconf = 0.40;
  options.num_intervals_override = 5;
  ExpectResumeMatchesBaseline(options, table, "missing");
}

// checkpoint_every_pass > 1 skips intermediate boundaries; an interrupt at
// an unsaved pass resumes from the last saved one and still converges.
TEST(CheckpointResumeTest, CheckpointEverySecondPass) {
  const Table table = MakeFinancialDataset(1500, 42);
  MinerOptions options = BaseOptions();
  const MiningResult baseline = MustMine(options, table);
  ASSERT_GE(baseline.stats.passes.size(), 3u);

  const std::string path = ::testing::TempDir() + "/resume_every2.qcp";
  std::remove(path.c_str());
  MinerOptions interrupted = options;
  interrupted.checkpoint_path = path;
  interrupted.checkpoint_every_pass = 2;
  interrupted.stop_after_pass = 3;
  ASSERT_EQ(QuantitativeRuleMiner(interrupted).Mine(table).status().code(),
            StatusCode::kCancelled);

  MinerOptions resume = options;
  resume.checkpoint_path = path;
  Result<MiningResult> resumed = QuantitativeRuleMiner(resume).Mine(table);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->stats.checkpoint.resumed);
  // The interrupt at pass 3 still checkpointed (stop_after_pass forces a
  // final write), so the resume picks up all three passes.
  EXPECT_EQ(resumed->stats.checkpoint.resumed_passes, 3u);
  EXPECT_EQ(RulesAsJson(*resumed), RulesAsJson(baseline));
}

// A checkpoint from a different run (here: different minsup) is stale; the
// miner must refuse the resume and restart from scratch, still succeeding.
TEST(CheckpointResumeTest, StaleFingerprintRestartsFromScratch) {
  const Table table = MakeFinancialDataset(1000, 42);
  const std::string path = ::testing::TempDir() + "/resume_stale.qcp";
  std::remove(path.c_str());

  MinerOptions writer = BaseOptions();
  writer.checkpoint_path = path;
  writer.stop_after_pass = 1;
  ASSERT_EQ(QuantitativeRuleMiner(writer).Mine(table).status().code(),
            StatusCode::kCancelled);
  ASSERT_TRUE(FileExists(path));

  MinerOptions other = BaseOptions();
  other.minsup = 0.25;
  const MiningResult baseline = MustMine(other, table);

  MinerOptions with_stale = other;
  with_stale.checkpoint_path = path;
  Result<MiningResult> mined =
      QuantitativeRuleMiner(with_stale).Mine(table);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  EXPECT_FALSE(mined->stats.checkpoint.resumed);
  EXPECT_EQ(RulesAsJson(*mined), RulesAsJson(baseline));
}

// SIGINT path: the cancel flag stops mining with kCancelled after writing a
// final checkpoint, and a rerun resumes from it.
TEST(CheckpointResumeTest, CancelFlagCheckpointsBeforeStopping) {
  const Table table = MakeFinancialDataset(1500, 42);
  MinerOptions options = BaseOptions();
  const MiningResult baseline = MustMine(options, table);

  const std::string path = ::testing::TempDir() + "/resume_cancel.qcp";
  std::remove(path.c_str());
  std::atomic<bool> cancel{true};  // "Ctrl-C before the first boundary"
  MinerOptions interrupted = options;
  interrupted.checkpoint_path = path;
  interrupted.cancel_flag = &cancel;
  Result<MiningResult> killed =
      QuantitativeRuleMiner(interrupted).Mine(table);
  ASSERT_FALSE(killed.ok());
  EXPECT_EQ(killed.status().code(), StatusCode::kCancelled);
  ASSERT_TRUE(FileExists(path));

  MinerOptions resume = options;
  resume.checkpoint_path = path;
  Result<MiningResult> resumed = QuantitativeRuleMiner(resume).Mine(table);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_TRUE(resumed->stats.checkpoint.resumed);
  EXPECT_EQ(resumed->stats.checkpoint.resumed_passes, 1u);
  EXPECT_EQ(RulesAsJson(*resumed), RulesAsJson(baseline));
}

}  // namespace
}  // namespace qarm
