#include "partition/partitioner.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"

namespace qarm {
namespace {

TEST(EquiDepthTest, BalancedOnDistinctValues) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(i);
  std::vector<Interval> parts = EquiDepthPartition(values, 4);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0].lo, 0);
  EXPECT_EQ(parts[0].hi, 24);
  EXPECT_EQ(parts[3].lo, 75);
  EXPECT_EQ(parts[3].hi, 99);
}

TEST(EquiDepthTest, CoversAllValuesDisjointly) {
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(rng.LogNormal(3.0, 1.0));
  }
  std::vector<Interval> parts = EquiDepthPartition(values, 10);
  ASSERT_FALSE(parts.empty());
  // Sorted, non-overlapping.
  for (size_t i = 1; i < parts.size(); ++i) {
    EXPECT_GT(parts[i].lo, parts[i - 1].hi);
  }
  // Every value is covered.
  for (double v : values) {
    bool covered = false;
    for (const Interval& p : parts) covered |= p.Contains(v);
    EXPECT_TRUE(covered) << v;
  }
}

TEST(EquiDepthTest, NeverSplitsEqualValues) {
  // 50% of mass on a single value; partitions must keep it intact.
  std::vector<double> values(100, 7.0);
  for (int i = 0; i < 100; ++i) values.push_back(100.0 + i);
  std::vector<Interval> parts = EquiDepthPartition(values, 10);
  int containing = 0;
  for (const Interval& p : parts) {
    if (p.Contains(7.0)) ++containing;
  }
  EXPECT_EQ(containing, 1);
}

TEST(EquiDepthTest, DepthsRoughlyEqualOnSkewedData) {
  Rng rng(9);
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) values.push_back(rng.LogNormal(0.0, 1.5));
  std::vector<double> copy = values;
  std::vector<Interval> parts = EquiDepthPartition(copy, 20);
  ASSERT_EQ(parts.size(), 20u);
  for (const Interval& p : parts) {
    size_t count = 0;
    for (double v : values) {
      if (p.Contains(v)) ++count;
    }
    // Continuous draws have no duplicates, so depths should be near 500.
    EXPECT_NEAR(count, 500, 30);
  }
}

TEST(EquiDepthTest, FewerPartitionsThanRequestedOnDuplicates) {
  std::vector<double> values(1000, 1.0);
  std::vector<Interval> parts = EquiDepthPartition(values, 5);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_TRUE(parts[0].IsSingleValue());
}

TEST(EquiDepthTest, EmptyInput) {
  EXPECT_TRUE(EquiDepthPartition({}, 3).empty());
}

TEST(EquiWidthTest, EqualWidths) {
  std::vector<Interval> parts = EquiWidthPartition(0.0, 100.0, 4);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0].lo, 0.0);
  EXPECT_EQ(parts[0].hi, 25.0);
  EXPECT_EQ(parts[3].lo, 75.0);
  EXPECT_EQ(parts[3].hi, 100.0);
}

TEST(EquiWidthTest, DegenerateRange) {
  std::vector<Interval> parts = EquiWidthPartition(5.0, 5.0, 4);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_TRUE(parts[0].IsSingleValue());
}

TEST(AssignToIntervalTest, EquiDepthAssignment) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(i);
  std::vector<Interval> parts = EquiDepthPartition(values, 4);
  EXPECT_EQ(AssignToInterval(parts, 0.0), 0);
  EXPECT_EQ(AssignToInterval(parts, 24.0), 0);
  EXPECT_EQ(AssignToInterval(parts, 25.0), 1);
  EXPECT_EQ(AssignToInterval(parts, 99.0), 3);
}

TEST(AssignToIntervalTest, OutOfRangeClamps) {
  std::vector<Interval> parts = {{0, 10}, {11, 20}};
  EXPECT_EQ(AssignToInterval(parts, -5.0), 0);
  EXPECT_EQ(AssignToInterval(parts, 100.0), 1);
}

TEST(AssignToIntervalTest, GapsAssignForward) {
  std::vector<Interval> parts = {{0, 10}, {20, 30}};
  EXPECT_EQ(AssignToInterval(parts, 15.0), 1);
}

TEST(AssignToIntervalTest, EmptyList) {
  EXPECT_EQ(AssignToInterval({}, 1.0), -1);
}

TEST(KMeansTest, SeparatesObviousClusters) {
  // Three tight clusters far apart must map to three intervals regardless
  // of unequal sizes (equi-depth would cut the big cluster instead).
  std::vector<double> values;
  for (int i = 0; i < 600; ++i) values.push_back(10.0 + (i % 5) * 0.1);
  for (int i = 0; i < 100; ++i) values.push_back(50.0 + (i % 5) * 0.1);
  for (int i = 0; i < 300; ++i) values.push_back(90.0 + (i % 5) * 0.1);
  std::vector<Interval> parts = KMeansPartition(values, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_TRUE(parts[0].Contains(10.2));
  EXPECT_FALSE(parts[0].Contains(50.0));
  EXPECT_TRUE(parts[1].Contains(50.2));
  EXPECT_TRUE(parts[2].Contains(90.2));
}

TEST(KMeansTest, CoversAllValuesDisjointly) {
  Rng rng(31);
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) values.push_back(rng.LogNormal(2.0, 1.0));
  std::vector<double> copy = values;
  std::vector<Interval> parts = KMeansPartition(copy, 8);
  ASSERT_FALSE(parts.empty());
  EXPECT_LE(parts.size(), 8u);
  for (size_t i = 1; i < parts.size(); ++i) {
    EXPECT_GT(parts[i].lo, parts[i - 1].hi);
  }
  for (double v : values) {
    EXPECT_GE(AssignToInterval(parts, v), 0);
    bool covered = false;
    for (const Interval& p : parts) covered |= p.Contains(v);
    EXPECT_TRUE(covered);
  }
}

TEST(KMeansTest, NeverSplitsEqualValues) {
  std::vector<double> values(500, 3.0);
  for (int i = 0; i < 500; ++i) values.push_back(100.0 + i);
  std::vector<Interval> parts = KMeansPartition(values, 6);
  int containing = 0;
  for (const Interval& p : parts) {
    if (p.Contains(3.0)) ++containing;
  }
  EXPECT_EQ(containing, 1);
}

TEST(KMeansTest, Deterministic) {
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.Normal(0, 10));
  auto a = KMeansPartition(values, 5);
  auto b = KMeansPartition(values, 5);
  EXPECT_EQ(a, b);
}

TEST(KMeansTest, EmptyAndDegenerate) {
  EXPECT_TRUE(KMeansPartition({}, 4).empty());
  auto one = KMeansPartition({5.0, 5.0, 5.0}, 4);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_TRUE(one[0].IsSingleValue());
}

TEST(IntervalTest, ToString) {
  EXPECT_EQ((Interval{5, 5}).ToString(), "5");
  EXPECT_EQ((Interval{5, 9}).ToString(), "5..9");
  EXPECT_EQ((Interval{1.5, 2.25}).ToString(), "1.5..2.25");
}

}  // namespace
}  // namespace qarm
