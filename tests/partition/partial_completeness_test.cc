#include "partition/partial_completeness.h"

#include <gtest/gtest.h>

namespace qarm {
namespace {

TEST(IntervalsForKTest, Equation2) {
  // Number of intervals = 2n / (m (K-1)).
  // n=1, m=0.2, K=2 -> 10.
  EXPECT_EQ(IntervalsForPartialCompleteness(2.0, 1, 0.2), 10u);
  // n=5, m=0.2, K=2 -> 50.
  EXPECT_EQ(IntervalsForPartialCompleteness(2.0, 5, 0.2), 50u);
  // n=5, m=0.2, K=1.5 -> 100.
  EXPECT_EQ(IntervalsForPartialCompleteness(1.5, 5, 0.2), 100u);
  // n=5, m=0.2, K=5 -> 12.5, rounded up to 13.
  EXPECT_EQ(IntervalsForPartialCompleteness(5.0, 5, 0.2), 13u);
}

TEST(IntervalsForKTest, NoQuantitativeAttributes) {
  EXPECT_EQ(IntervalsForPartialCompleteness(2.0, 0, 0.2), 1u);
}

TEST(IntervalsForKTest, AtLeastOne) {
  EXPECT_GE(IntervalsForPartialCompleteness(100.0, 1, 0.9), 1u);
}

TEST(AchievedKTest, Equation1) {
  // K = 1 + 2 n s / m. With n=1, s=0.1, m=0.2: K = 2.
  EXPECT_DOUBLE_EQ(AchievedPartialCompleteness(0.1, 1, 0.2), 2.0);
  // With n=5, s=0.02, m=0.2: K = 2.
  EXPECT_DOUBLE_EQ(AchievedPartialCompleteness(0.02, 5, 0.2), 2.0);
  // Zero max support -> K = 1 (no loss).
  EXPECT_DOUBLE_EQ(AchievedPartialCompleteness(0.0, 5, 0.2), 1.0);
}

TEST(AchievedKTest, InverseOfEquation2) {
  // Partitioning with the interval count from Equation 2 and perfectly
  // balanced supports achieves (approximately) the requested K.
  const double k = 3.0;
  const size_t n = 4;
  const double m = 0.25;
  size_t intervals = IntervalsForPartialCompleteness(k, n, m);
  double per_interval = 1.0 / static_cast<double>(intervals);
  double achieved = AchievedPartialCompleteness(per_interval, n, m);
  EXPECT_LE(achieved, k + 1e-9);
  EXPECT_GT(achieved, k - 0.5);
}

TEST(MaxMultiValueSupportTest, IgnoresSingleValueIntervals) {
  std::vector<Interval> intervals = {{0, 0}, {1, 5}, {6, 6}, {7, 9}};
  std::vector<size_t> counts = {900, 40, 30, 30};
  // The 900-count interval is single-valued and exempt (Lemma 2).
  EXPECT_DOUBLE_EQ(
      MaxMultiValueIntervalSupport(intervals, counts, 1000), 0.04);
}

TEST(MaxMultiValueSupportTest, AllSingleValued) {
  std::vector<Interval> intervals = {{0, 0}, {1, 1}};
  std::vector<size_t> counts = {500, 500};
  EXPECT_DOUBLE_EQ(
      MaxMultiValueIntervalSupport(intervals, counts, 1000), 0.0);
}

TEST(MaxMultiValueSupportTest, EmptyTable) {
  EXPECT_DOUBLE_EQ(MaxMultiValueIntervalSupport({}, {}, 0), 0.0);
}

TEST(ScaledMinConfidenceTest, Lemma1) {
  // Rules from a K-complete set must use minconf / K.
  EXPECT_DOUBLE_EQ(ScaledMinConfidence(0.5, 2.0), 0.25);
  EXPECT_DOUBLE_EQ(ScaledMinConfidence(0.6, 1.0), 0.6);
}

// The Section 3.1 worked example: itemsets 2, 3, 5, 7 form a 1.5-complete
// set. We verify the generalization/support-ratio conditions numerically.
TEST(PartialCompletenessExampleTest, Section31Itemsets) {
  struct Entry {
    int lo, hi;       // age range (or cars range)
    bool cars;        // whether the itemset is over cars
    double support;
  };
  // itemset 1: age 20..30, 5%; itemset 2: age 20..40, 6%;
  // itemset 3: age 20..50, 8%.
  // Generalization chain: 1 ⊂ 2 ⊂ 3. 2 covers 1 within ratio 6/5 = 1.2 and
  // 3 covers 2 within 8/6 = 1.33, both <= 1.5, while 3 covers 1 only at
  // 8/5 = 1.6 > 1.5 — exactly the paper's argument that {3,5,7} alone are
  // not 1.5-complete but {2,3,5,7} are.
  EXPECT_LE(6.0 / 5.0, 1.5);
  EXPECT_LE(8.0 / 6.0, 1.5);
  EXPECT_GT(8.0 / 5.0, 1.5);
  // cars 1..2 (5%) vs cars 1..3 (6%): ratio 1.2 <= 1.5.
  EXPECT_LE(6.0 / 5.0, 1.5);
  // (age 20..30, cars 1..2) 4% vs (age 20..40, cars 1..3) 5%: 1.25 <= 1.5.
  EXPECT_LE(5.0 / 4.0, 1.5);
}

}  // namespace
}  // namespace qarm
