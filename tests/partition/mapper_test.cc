#include "partition/mapper.h"

#include <gtest/gtest.h>

#include "table/datagen.h"

namespace qarm {
namespace {

TEST(MapperTest, PeopleTableFigure3Mapping) {
  // Figure 3: Age partitioned into 4 intervals 20..24, 25..29, 30..34,
  // 35..39; Married mapped to integers; NumCars (values 0,1,2) kept raw.
  Table people = MakePeopleTable();
  MapOptions options;
  options.num_intervals_override = 4;
  auto mapped = MapTable(people, options);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  const MappedAttribute& age = mapped->attribute(0);
  EXPECT_EQ(age.kind, AttributeKind::kQuantitative);
  EXPECT_TRUE(age.partitioned);
  ASSERT_EQ(age.intervals.size(), 4u);
  // With 5 sorted ages {23,25,29,34,38} equi-depth into 4 intervals:
  // boundaries at distinct values; the exact split groups 23,25 | 29 | 34 |
  // 38 (first partition takes two of five).
  EXPECT_EQ(age.intervals.front().lo, 23);
  EXPECT_EQ(age.intervals.back().hi, 38);

  const MappedAttribute& married = mapped->attribute(1);
  EXPECT_EQ(married.kind, AttributeKind::kCategorical);
  ASSERT_EQ(married.labels.size(), 2u);
  // Sorted labels: No < Yes.
  EXPECT_EQ(married.labels[0], "No");
  EXPECT_EQ(married.labels[1], "Yes");

  const MappedAttribute& cars = mapped->attribute(2);
  EXPECT_FALSE(cars.partitioned);
  ASSERT_EQ(cars.intervals.size(), 3u);  // values 0, 1, 2
  EXPECT_TRUE(cars.intervals[0].IsSingleValue());

  // Row 0: Age 23 -> interval 0, Married No -> 0, NumCars 1 -> 1.
  EXPECT_EQ(mapped->value(0, 0), 0);
  EXPECT_EQ(mapped->value(0, 1), 0);
  EXPECT_EQ(mapped->value(0, 2), 1);
}

TEST(MapperTest, DecodeRoundTrip) {
  Table people = MakePeopleTable();
  MapOptions options;
  options.num_intervals_override = 4;
  auto mapped = MapTable(people, options);
  ASSERT_TRUE(mapped.ok());
  // Every record's mapped value decodes to an interval containing the raw
  // value.
  for (size_t r = 0; r < people.num_rows(); ++r) {
    for (size_t c = 0; c < people.num_columns(); ++c) {
      const MappedAttribute& attr = mapped->attribute(c);
      int32_t m = mapped->value(r, c);
      if (attr.kind == AttributeKind::kQuantitative) {
        Interval raw = attr.RawInterval(m, m);
        EXPECT_TRUE(raw.Contains(people.column(c).GetNumeric(r)));
      } else {
        EXPECT_EQ(attr.labels[static_cast<size_t>(m)],
                  people.Get(r, c).as_string());
      }
    }
  }
}

TEST(MapperTest, UnpartitionedWhenFewDistinctValues) {
  // NumCars has 3 distinct values; with required intervals = 4 it stays
  // unpartitioned and order-preserving.
  Table people = MakePeopleTable();
  MapOptions options;
  options.num_intervals_override = 4;
  auto mapped = MapTable(people, options);
  ASSERT_TRUE(mapped.ok());
  const MappedAttribute& cars = mapped->attribute(2);
  EXPECT_EQ(cars.intervals[0].lo, 0);
  EXPECT_EQ(cars.intervals[1].lo, 1);
  EXPECT_EQ(cars.intervals[2].lo, 2);
}

TEST(MapperTest, Equation2DrivesIntervalCount) {
  Table data = MakeFinancialDataset(2000, 1);
  MapOptions options;
  options.partial_completeness = 2.0;
  options.minsup = 0.2;
  auto mapped = MapTable(data, options);
  ASSERT_TRUE(mapped.ok());
  // n = 5 quantitative attrs, m = 0.2, K = 2 -> 50 intervals.
  size_t income = 0;  // monthly_income column
  const MappedAttribute& attr = mapped->attribute(income);
  EXPECT_TRUE(attr.partitioned);
  EXPECT_LE(attr.intervals.size(), 50u);
  EXPECT_GE(attr.intervals.size(), 45u);  // duplicates may merge a few
}

TEST(MapperTest, MaxQuantPerRuleReducesIntervals) {
  Table data = MakeFinancialDataset(2000, 1);
  MapOptions options;
  options.partial_completeness = 2.0;
  options.minsup = 0.2;
  options.max_quantitative_per_rule = 2;  // n' = 2 -> 20 intervals
  auto mapped = MapTable(data, options);
  ASSERT_TRUE(mapped.ok());
  EXPECT_LE(mapped->attribute(0).intervals.size(), 20u);
}

TEST(MapperTest, EquiWidthMethod) {
  Table data = MakeFinancialDataset(2000, 1);
  MapOptions options;
  options.num_intervals_override = 10;
  options.method = PartitionMethod::kEquiWidth;
  auto mapped = MapTable(data, options);
  ASSERT_TRUE(mapped.ok());
  const MappedAttribute& attr = mapped->attribute(0);
  ASSERT_EQ(attr.intervals.size(), 10u);
  double w0 = attr.intervals[0].hi - attr.intervals[0].lo;
  double w5 = attr.intervals[5].hi - attr.intervals[5].lo;
  EXPECT_NEAR(w0, w5, 1e-6);
}

TEST(MapperTest, RejectsBadOptions) {
  Table people = MakePeopleTable();
  MapOptions options;
  options.minsup = 0.0;
  EXPECT_FALSE(MapTable(people, options).ok());
  options.minsup = 0.2;
  options.partial_completeness = 1.0;
  options.num_intervals_override = 0;
  EXPECT_FALSE(MapTable(people, options).ok());
}

TEST(MappedTableTest, HeadCopiesPrefix) {
  Table people = MakePeopleTable();
  MapOptions options;
  options.num_intervals_override = 4;
  auto mapped = MapTable(people, options);
  ASSERT_TRUE(mapped.ok());
  MappedTable head = mapped->Head(2);
  EXPECT_EQ(head.num_rows(), 2u);
  EXPECT_EQ(head.value(1, 0), mapped->value(1, 0));
  EXPECT_EQ(head.num_attributes(), mapped->num_attributes());
}

TEST(MappedTableTest, DecodeRangeFormats) {
  Table people = MakePeopleTable();
  MapOptions options;
  options.num_intervals_override = 4;
  auto mapped = MapTable(people, options);
  ASSERT_TRUE(mapped.ok());
  const MappedAttribute& age = mapped->attribute(0);
  // A multi-interval range decodes to the union of raw bounds.
  std::string s = age.DecodeRange(0, static_cast<int32_t>(
                                         age.intervals.size() - 1));
  EXPECT_EQ(s, "23..38");
  const MappedAttribute& married = mapped->attribute(1);
  EXPECT_EQ(married.DecodeRange(1, 1), "Yes");
}

}  // namespace
}  // namespace qarm
