#include "partition/taxonomy.h"

#include <gtest/gtest.h>

#include "partition/mapper.h"
#include "table/table.h"

namespace qarm {
namespace {

Taxonomy DrinksTaxonomy() {
  // drinks -> {hot -> {coffee, tea}, cold -> {soda, juice}}
  return Taxonomy::Make({{"hot", "drinks"},
                         {"cold", "drinks"},
                         {"coffee", "hot"},
                         {"tea", "hot"},
                         {"soda", "cold"},
                         {"juice", "cold"}})
      .value();
}

TEST(TaxonomyTest, LeavesInDfsOrder) {
  Taxonomy tax = DrinksTaxonomy();
  EXPECT_EQ(tax.leaves_dfs(),
            (std::vector<std::string>{"coffee", "tea", "soda", "juice"}));
}

TEST(TaxonomyTest, InteriorRanges) {
  Taxonomy tax = DrinksTaxonomy();
  // Expect drinks=[0..3], hot=[0..1], cold=[2..3] (outermost first).
  ASSERT_EQ(tax.interior_ranges().size(), 3u);
  EXPECT_EQ(tax.interior_ranges()[0].name, "drinks");
  EXPECT_EQ(tax.interior_ranges()[0].lo, 0);
  EXPECT_EQ(tax.interior_ranges()[0].hi, 3);
  // hot and cold both span 2 leaves; order between them is stable.
  EXPECT_EQ(tax.interior_ranges()[1].name, "hot");
  EXPECT_EQ(tax.interior_ranges()[1].lo, 0);
  EXPECT_EQ(tax.interior_ranges()[1].hi, 1);
  EXPECT_EQ(tax.interior_ranges()[2].name, "cold");
  EXPECT_EQ(tax.interior_ranges()[2].lo, 2);
  EXPECT_EQ(tax.interior_ranges()[2].hi, 3);
}

TEST(TaxonomyTest, IsLeaf) {
  Taxonomy tax = DrinksTaxonomy();
  EXPECT_TRUE(tax.IsLeaf("coffee"));
  EXPECT_FALSE(tax.IsLeaf("hot"));
  EXPECT_FALSE(tax.IsLeaf("nonexistent"));
}

TEST(TaxonomyTest, ForestAllowed) {
  auto tax = Taxonomy::Make({{"a", "g1"}, {"b", "g1"}, {"c", "g2"}});
  ASSERT_TRUE(tax.ok());
  EXPECT_EQ(tax->leaves_dfs().size(), 3u);
  EXPECT_EQ(tax->interior_ranges().size(), 2u);
}

TEST(TaxonomyTest, RejectsBadInput) {
  EXPECT_FALSE(Taxonomy::Make({}).ok());
  EXPECT_FALSE(Taxonomy::Make({{"a", "a"}}).ok());            // self edge
  EXPECT_FALSE(Taxonomy::Make({{"a", "p"}, {"a", "q"}}).ok());  // two parents
  EXPECT_FALSE(Taxonomy::Make({{"", "p"}}).ok());
  // Cycle: a -> b -> a.
  EXPECT_FALSE(Taxonomy::Make({{"a", "b"}, {"b", "a"}}).ok());
}

TEST(TaxonomyMapperTest, DfsOrderAndRanges) {
  Schema schema =
      Schema::Make({{"drink", AttributeKind::kCategorical,
                     ValueType::kString}})
          .value();
  Table table(schema);
  for (const char* v : {"tea", "soda", "coffee", "tea", "juice"}) {
    table.AppendRowUnchecked({Value(std::string(v))});
  }
  MapOptions options;
  options.taxonomies.emplace_back("drink", DrinksTaxonomy());
  auto mapped = MapTable(table, options);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const MappedAttribute& attr = mapped->attribute(0);
  EXPECT_TRUE(attr.ranged());
  EXPECT_EQ(attr.labels,
            (std::vector<std::string>{"coffee", "tea", "soda", "juice"}));
  ASSERT_EQ(attr.taxonomy_ranges.size(), 3u);
  // Row 0 = tea -> id 1; row 1 = soda -> id 2.
  EXPECT_EQ(mapped->value(0, 0), 1);
  EXPECT_EQ(mapped->value(1, 0), 2);
  // Decode: exact node names, or leaf lists for unnamed ranges.
  EXPECT_EQ(attr.DecodeRange(0, 1), "hot");
  EXPECT_EQ(attr.DecodeRange(0, 3), "drinks");
  EXPECT_EQ(attr.DecodeRange(2, 2), "soda");
  EXPECT_EQ(attr.DecodeRange(1, 2), "tea|soda");
}

TEST(TaxonomyMapperTest, RejectsNonLeafValue) {
  Schema schema =
      Schema::Make({{"drink", AttributeKind::kCategorical,
                     ValueType::kString}})
          .value();
  Table table(schema);
  table.AppendRowUnchecked({Value("water")});  // not in the taxonomy
  MapOptions options;
  options.taxonomies.emplace_back("drink", DrinksTaxonomy());
  auto mapped = MapTable(table, options);
  EXPECT_FALSE(mapped.ok());
}

TEST(TaxonomyMapperTest, RejectsTaxonomyOnQuantitative) {
  Schema schema =
      Schema::Make({{"x", AttributeKind::kQuantitative, ValueType::kInt64}})
          .value();
  Table table(schema);
  table.AppendRowUnchecked({Value(int64_t{1})});
  MapOptions options;
  options.taxonomies.emplace_back("x", DrinksTaxonomy());
  EXPECT_FALSE(MapTable(table, options).ok());
}

TEST(TaxonomyMapperTest, RejectsUnknownAttribute) {
  Schema schema =
      Schema::Make({{"drink", AttributeKind::kCategorical,
                     ValueType::kString}})
          .value();
  Table table(schema);
  table.AppendRowUnchecked({Value("tea")});
  MapOptions options;
  options.taxonomies.emplace_back("beverage", DrinksTaxonomy());
  EXPECT_FALSE(MapTable(table, options).ok());
}

TEST(TaxonomyMapperTest, AbsentLeavesKeepIds) {
  // Only "tea" appears in the data; ids still cover all four leaves so the
  // interior ranges stay exact.
  Schema schema =
      Schema::Make({{"drink", AttributeKind::kCategorical,
                     ValueType::kString}})
          .value();
  Table table(schema);
  table.AppendRowUnchecked({Value("tea")});
  MapOptions options;
  options.taxonomies.emplace_back("drink", DrinksTaxonomy());
  auto mapped = MapTable(table, options);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped->attribute(0).domain_size(), 4u);
  EXPECT_EQ(mapped->value(0, 0), 1);
}

}  // namespace
}  // namespace qarm
