#include "common/logging.h"

#include <gtest/gtest.h>

namespace qarm {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, StreamingCompiles) {
  // Suppressed below the threshold; exercises the streaming path.
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  QARM_LOG(Info) << "value=" << 42 << " name=" << std::string("x");
  QARM_LOG(Debug) << 3.14;
  SetLogLevel(original);
}

TEST(LoggingTest, OrderingOfLevels) {
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarning);
  EXPECT_LT(LogLevel::kWarning, LogLevel::kError);
}

}  // namespace
}  // namespace qarm
