#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace qarm {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.NextU64() != b.NextU64()) ++differing;
  }
  EXPECT_GT(differing, 30);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 11);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 11);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(rng.UniformInt(5, 5), 5);
  }
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.UniformInt(0, kBuckets - 1)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NormalMoments) {
  Rng rng(5);
  constexpr int kDraws = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double v = rng.Normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / kDraws;
  double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(8.0, 0.5), 0.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(21);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  Rng rng(17);
  ZipfDistribution zipf(5, 0.0);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(ZipfTest, SkewFavorsSmallIndices) {
  Rng rng(17);
  ZipfDistribution zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 5 * counts[50] + 1);
}

TEST(ZipfTest, SamplesInRange) {
  Rng rng(2);
  ZipfDistribution zipf(7, 0.9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Sample(&rng), 7u);
  }
}

}  // namespace
}  // namespace qarm
