#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace qarm {
namespace {

TEST(ResolveNumThreadsTest, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(ResolveNumThreads(0), 1u);
  EXPECT_EQ(ResolveNumThreads(1), 1u);
  EXPECT_EQ(ResolveNumThreads(7), 7u);
}

TEST(SplitRangeTest, CoversRangeWithoutGaps) {
  for (size_t n : {0u, 1u, 5u, 16u, 17u, 1000u}) {
    for (size_t chunks : {1u, 2u, 3u, 8u, 64u}) {
      std::vector<IndexRange> ranges = SplitRange(n, chunks);
      if (n == 0) {
        EXPECT_TRUE(ranges.empty());
        continue;
      }
      EXPECT_EQ(ranges.size(), std::min(n, chunks));
      size_t expected_begin = 0;
      for (const IndexRange& range : ranges) {
        EXPECT_EQ(range.begin, expected_begin);
        EXPECT_GT(range.size(), 0u);
        expected_begin = range.end;
      }
      EXPECT_EQ(expected_begin, n);
      // Near-equal: sizes differ by at most one.
      EXPECT_LE(ranges.front().size() - ranges.back().size(), 1u);
    }
  }
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    const size_t num_tasks = 257;
    std::vector<std::atomic<int>> hits(num_tasks);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(num_tasks, [&](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < num_tasks; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "task " << i;
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  for (int job = 0; job < 50; ++job) {
    pool.ParallelFor(16, [&](size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 50u * (16u * 17u / 2));
}

TEST(ThreadPoolTest, ShardedSumMatchesSerial) {
  const size_t n = 100000;
  std::vector<uint32_t> data(n);
  std::iota(data.begin(), data.end(), 0u);
  const uint64_t expected =
      std::accumulate(data.begin(), data.end(), uint64_t{0});

  ThreadPool pool(4);
  std::vector<IndexRange> shards = SplitRange(n, pool.num_threads());
  std::vector<uint64_t> partial(shards.size(), 0);
  pool.ParallelFor(shards.size(), [&](size_t s) {
    uint64_t local = 0;
    for (size_t i = shards[s].begin; i < shards[s].end; ++i) local += data[i];
    partial[s] = local;
  });
  EXPECT_EQ(std::accumulate(partial.begin(), partial.end(), uint64_t{0}),
            expected);
}

TEST(ThreadPoolTest, ZeroAndOneTasks) {
  ThreadPool pool(3);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace qarm
