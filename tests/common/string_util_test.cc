#include "common/string_util.h"

#include <gtest/gtest.h>

namespace qarm {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, PreservesEmptyFields) {
  EXPECT_EQ(Split("a,,c,", ','),
            (std::vector<std::string>{"a", "", "c", ""}));
}

TEST(SplitTest, NoDelimiter) {
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(SplitTest, EmptyInput) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"only"}, ", "), "only");
}

TEST(StripWhitespaceTest, Basic) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(FormatDoubleTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
  EXPECT_EQ(FormatDouble(2.50), "2.5");
  EXPECT_EQ(FormatDouble(0.125, 3), "0.125");
  EXPECT_EQ(FormatDouble(-4.20), "-4.2");
}

TEST(StrFormatTest, Basic) {
  EXPECT_EQ(StrFormat("x=%d y=%s", 5, "hi"), "x=5 y=hi");
  EXPECT_EQ(StrFormat("%.2f%%", 12.345), "12.35%");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrFormatTest, LongOutput) {
  std::string long_arg(500, 'a');
  std::string out = StrFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 502u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

}  // namespace
}  // namespace qarm
