// Pins RetryWithBackoff's documented schedule: the pre-jitter delay before
// retry r is exactly min(initial * multiplier^(r-1), max), including the
// configurations where the old multiply-loop (`delay < max` as the loop
// guard) drifted one multiplier-step off — a decaying multiplier starting
// above the cap, and an initial delay already at the cap.
#include <cmath>
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/retry.h"
#include "common/status.h"

namespace qarm {
namespace {

TEST(RetryBackoffTest, BaseDelayFollowsClosedFormSchedule) {
  struct Case {
    double initial;
    double multiplier;
    double max;
    size_t retry;
    double expected;
  };
  const std::vector<Case> cases = {
      // Plain exponential growth under the cap.
      {1.0, 2.0, 100.0, 1, 1.0},
      {1.0, 2.0, 100.0, 2, 2.0},
      {1.0, 2.0, 100.0, 5, 16.0},
      {1.0, 2.0, 100.0, 7, 64.0},
      // First capped retry and every retry after it stay pinned at max.
      {1.0, 2.0, 100.0, 8, 100.0},
      {1.0, 2.0, 100.0, 9, 100.0},
      {1.0, 2.0, 100.0, 40, 100.0},
      // Initial delay exactly at the cap: capped from the first retry.
      {100.0, 2.0, 100.0, 1, 100.0},
      {100.0, 2.0, 100.0, 2, 100.0},
      // Initial delay above the cap.
      {250.0, 2.0, 100.0, 1, 100.0},
      {250.0, 2.0, 100.0, 3, 100.0},
      // Decaying multiplier starting above the cap: the closed form drops
      // below max; the old loop guard froze it at max forever.
      {400.0, 0.5, 100.0, 1, 100.0},
      {400.0, 0.5, 100.0, 2, 100.0},
      {400.0, 0.5, 100.0, 3, 100.0},
      {400.0, 0.5, 100.0, 4, 50.0},
      {400.0, 0.5, 100.0, 5, 25.0},
      // Multiplier 1: constant schedule.
      {7.5, 1.0, 100.0, 1, 7.5},
      {7.5, 1.0, 100.0, 20, 7.5},
      // retry=0 is treated like the first retry (no negative exponent).
      {3.0, 2.0, 100.0, 0, 3.0},
  };
  RetryPolicy policy;
  for (const Case& c : cases) {
    policy.initial_backoff_ms = c.initial;
    policy.backoff_multiplier = c.multiplier;
    policy.max_backoff_ms = c.max;
    EXPECT_DOUBLE_EQ(RetryBaseDelayMs(policy, c.retry), c.expected)
        << "initial=" << c.initial << " mult=" << c.multiplier
        << " max=" << c.max << " retry=" << c.retry;
  }
}

TEST(RetryBackoffTest, HugeRetryOrdinalSaturatesAtMax) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 1.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 100.0;
  // 2^4095 overflows double to inf; the cap must still hold.
  EXPECT_DOUBLE_EQ(RetryBaseDelayMs(policy, 4096), 100.0);
}

TEST(RetryBackoffTest, JitterScalesIntoHalfOpenUpperHalf) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 8.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 100.0;
  for (size_t retry = 1; retry <= 6; ++retry) {
    for (uint64_t key = 0; key < 16; ++key) {
      const double base = RetryBaseDelayMs(policy, retry);
      const double jittered = RetryBackoffMs(policy, retry, key);
      EXPECT_GE(jittered, 0.5 * base);
      EXPECT_LT(jittered, base);
    }
  }
  // Determinism: the same (policy, retry, key) always yields the same delay.
  EXPECT_DOUBLE_EQ(RetryBackoffMs(policy, 3, 42),
                   RetryBackoffMs(policy, 3, 42));
}

TEST(RetryBackoffTest, RetryWithBackoffCountsRetriesAndStopsAtBudget) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 0.0;  // no sleeping in tests
  policy.max_backoff_ms = 0.0;
  uint64_t retries = 0;
  size_t calls = 0;
  const Status failed = RetryWithBackoff(policy, /*key=*/1, &retries, [&] {
    ++calls;
    return Status::IOError("always fails");
  });
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(calls, 4u);
  EXPECT_EQ(retries, 3u);

  retries = 0;
  calls = 0;
  const Status ok = RetryWithBackoff(policy, /*key=*/1, &retries, [&] {
    ++calls;
    return calls < 3 ? Status::IOError("transient") : Status::OK();
  });
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(retries, 2u);
}

}  // namespace
}  // namespace qarm
