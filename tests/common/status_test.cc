#include "common/status.h"

#include <gtest/gtest.h>

namespace qarm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad minsup");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad minsup");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad minsup");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  QARM_ASSIGN_OR_RETURN(int half, Half(x));
  *out = half;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status s = UseHalf(7, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

Status FailThrough() {
  QARM_RETURN_NOT_OK(Status::IOError("disk"));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacro) {
  EXPECT_EQ(FailThrough().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace qarm
