# Distributed mining smoke: gen -> convert -> mine the same QBT with
# --workers=1 and --workers=4 (plus threads inside each worker) and require
# bit-identical rule output. Also checks the --stats report carries the
# distributed exchange section and that --workers without --input-qbt is
# rejected.
set(SCHEMA "monthly_income:quant,credit_limit:quant,current_balance:quant,ytd_balance:quant,ytd_interest:quant:double,employee_category:cat,marital_status:cat")
set(MINE_FLAGS --minsup=0.3 --minconf=0.6 --k=3.0 --format=csv)

execute_process(
  COMMAND ${QARM} gen --output=${WORK_DIR}/dist_fin.csv --records=2000 --seed=11
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "qarm gen exited with ${rc}")
endif()

execute_process(
  COMMAND ${QARM} convert --input=${WORK_DIR}/dist_fin.csv --schema=${SCHEMA}
          --output=${WORK_DIR}/dist_fin.qbt --block-rows=128
          --minsup=0.3 --k=3.0
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "qarm convert exited with ${rc}")
endif()

execute_process(
  COMMAND ${QARM} --input-qbt=${WORK_DIR}/dist_fin.qbt ${MINE_FLAGS}
          --workers=1 --threads=1
  OUTPUT_VARIABLE single
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "qarm --workers=1 exited with ${rc}")
endif()
if(single STREQUAL "")
  message(FATAL_ERROR "smoke mining produced no rules")
endif()

execute_process(
  COMMAND ${QARM} --input-qbt=${WORK_DIR}/dist_fin.qbt ${MINE_FLAGS}
          --workers=4 --threads=2 --stats
  OUTPUT_VARIABLE sharded
  ERROR_VARIABLE sharded_stats
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "qarm --workers=4 exited with ${rc}")
endif()
if(NOT sharded STREQUAL single)
  message(FATAL_ERROR "--workers=4 rules differ from --workers=1 rules")
endif()
if(NOT sharded_stats MATCHES "workers=4")
  message(FATAL_ERROR "expected distributed stats in --workers=4 --stats output")
endif()

# A SIGKILL'd worker (fault-injected) is respawned and the rules still match.
execute_process(
  COMMAND ${QARM} --input-qbt=${WORK_DIR}/dist_fin.qbt ${MINE_FLAGS}
          --workers=4 --inject-faults=seed=9,rate=1,kinds=kill,fails=1
  OUTPUT_VARIABLE respawned
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "qarm --workers=4 with kill faults exited with ${rc}")
endif()
if(NOT respawned STREQUAL single)
  message(FATAL_ERROR "rules after worker respawn differ from --workers=1")
endif()

# --workers needs a sharded input to distribute.
execute_process(
  COMMAND ${QARM} --input=${WORK_DIR}/dist_fin.csv --schema=${SCHEMA}
          ${MINE_FLAGS} --workers=4
  RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "--workers without --input-qbt should be rejected")
endif()
