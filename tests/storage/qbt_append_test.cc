// AppendQbt: new rows land as additional blocks behind a rewritten footer
// and tail, never touching committed bytes; the header row count is the
// commit point. Covers value/metadata roundtrips across appends, short
// blocks mid-file, the stable index-prefix CRC incremental mining keys on,
// metadata-mismatch rejection, and crash recovery at every torn-append
// prefix length.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "partition/mapped_table.h"
#include "storage/qbt_reader.h"
#include "storage/qbt_writer.h"
#include "storage/record_source.h"
#include "testutil.h"

namespace qarm {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Same attribute layout for every table so appends encode byte-identical
// metadata; `salt` shifts the values so base and delta rows are
// distinguishable.
MappedTable MakeTable(size_t num_rows, int32_t salt) {
  MappedAttribute income;
  income.name = "income";
  income.kind = AttributeKind::kQuantitative;
  income.source_type = ValueType::kInt64;
  income.partitioned = true;
  income.intervals = {{0, 999}, {1000, 4999}, {5000, 9999}};

  MappedAttribute married = testutil::CatAttr("married", {"no", "yes"});

  MappedTable table({income, married}, num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    table.set_value(r, 0, static_cast<int32_t>((r + salt) % 3));
    table.set_value(r, 1, r % 5 == 0 ? kMissingValue
                                     : static_cast<int32_t>((r + salt) % 2));
  }
  return table;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good()) << path;
}

// The file's rows must read back as base followed by the deltas, in order.
void ExpectConcatenatedValues(const std::vector<const MappedTable*>& parts,
                              const RecordSource& source) {
  uint64_t total_rows = 0;
  for (const MappedTable* part : parts) total_rows += part->num_rows();
  ASSERT_EQ(source.num_rows(), total_rows);
  BlockView view;
  size_t part_index = 0;
  uint64_t part_begin = 0;
  for (size_t b = 0; b < source.num_blocks(); ++b) {
    ASSERT_TRUE(source.ReadBlock(b, &view).ok());
    for (size_t r = 0; r < view.num_rows(); ++r) {
      const uint64_t row = view.row_begin() + r;
      while (row - part_begin >= parts[part_index]->num_rows()) {
        part_begin += parts[part_index]->num_rows();
        ++part_index;
        ASSERT_LT(part_index, parts.size());
      }
      const MappedTable& part = *parts[part_index];
      for (size_t a = 0; a < part.num_attributes(); ++a) {
        ASSERT_EQ(view.value(r, a), part.value(row - part_begin, a))
            << "row " << row << " attr " << a;
      }
    }
  }
}

TEST(QbtAppendTest, AppendRoundtripWithShortBlockMidFile) {
  const std::string path = TempPath("append_roundtrip.qbt");
  // 103 = 6*16 + 7: the base file ends in a short block, which stays
  // mid-file after the append (appends never repack committed blocks).
  MappedTable base = MakeTable(103, 0);
  QbtWriteOptions options;
  options.rows_per_block = 16;
  ASSERT_TRUE(WriteQbt(base, path, options).ok());

  MappedTable delta = MakeTable(37, 1);
  QbtAppendInfo info;
  ASSERT_TRUE(AppendQbt(delta, path, &info).ok());
  EXPECT_EQ(info.rows_appended, 37u);
  EXPECT_EQ(info.total_rows, 140u);
  EXPECT_EQ(info.total_blocks, 7u + info.blocks_appended);

  auto source = QbtFileSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ((*source)->num_blocks(), info.total_blocks);
  // The short base tail block is intact mid-file; the delta starts fresh.
  EXPECT_EQ((*source)->block_rows(6), 7u);
  EXPECT_EQ((*source)->block_row_begin(7), 103u);
  ExpectConcatenatedValues({&base, &delta}, **source);
}

TEST(QbtAppendTest, RepeatedAppendsAccumulate) {
  const std::string path = TempPath("append_repeat.qbt");
  MappedTable base = MakeTable(64, 0);
  QbtWriteOptions options;
  options.rows_per_block = 16;
  ASSERT_TRUE(WriteQbt(base, path, options).ok());
  MappedTable delta1 = MakeTable(10, 1);
  MappedTable delta2 = MakeTable(25, 2);
  ASSERT_TRUE(AppendQbt(delta1, path).ok());
  ASSERT_TRUE(AppendQbt(delta2, path).ok());

  auto source = QbtFileSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ((*source)->num_rows(), 99u);
  ExpectConcatenatedValues({&base, &delta1, &delta2}, **source);
}

// The first-N index entries re-encode verbatim in every post-append
// footer, so the prefix CRC the incremental miner stamps into checkpoints
// is stable across any number of later appends.
TEST(QbtAppendTest, IndexPrefixCrcStableAcrossAppends) {
  const std::string path = TempPath("append_prefix_crc.qbt");
  ASSERT_TRUE(WriteQbt(MakeTable(80, 0), path,
                       {/*rows_per_block=*/16})
                  .ok());
  auto before = QbtFileSource::Open(path);
  ASSERT_TRUE(before.ok());
  const size_t base_blocks = (*before)->num_blocks();
  const uint32_t base_crc = (*before)->reader().IndexPrefixCrc(base_blocks);
  before->reset();

  MappedTable delta = MakeTable(40, 3);
  ASSERT_TRUE(AppendQbt(delta, path).ok());
  auto after = QbtFileSource::Open(path);
  ASSERT_TRUE(after.ok());
  ASSERT_GT((*after)->num_blocks(), base_blocks);
  EXPECT_EQ((*after)->reader().IndexPrefixCrc(base_blocks), base_crc);
  // And the full-prefix CRC of the grown file differs (the index grew).
  EXPECT_NE((*after)->reader().IndexPrefixCrc((*after)->num_blocks()),
            base_crc);
}

TEST(QbtAppendTest, MetadataMismatchIsRejected) {
  const std::string path = TempPath("append_mismatch.qbt");
  ASSERT_TRUE(WriteQbt(MakeTable(32, 0), path).ok());

  // Same attribute names, different decode metadata: an extra label.
  MappedAttribute income;
  income.name = "income";
  income.kind = AttributeKind::kQuantitative;
  income.source_type = ValueType::kInt64;
  income.partitioned = true;
  income.intervals = {{0, 999}, {1000, 4999}, {5000, 9999}};
  MappedAttribute married =
      testutil::CatAttr("married", {"no", "yes", "separated"});
  MappedTable delta({income, married}, 4);
  for (size_t r = 0; r < 4; ++r) {
    delta.set_value(r, 0, 0);
    delta.set_value(r, 1, 0);
  }
  const Status status = AppendQbt(delta, path);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("metadata"), std::string::npos)
      << status.ToString();

  // The rejected append left the file untouched and readable.
  auto source = QbtFileSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ((*source)->num_rows(), 32u);
}

// Chop a mid-append crash at every suffix length: the committed prefix
// plus any torn tail must recover back to exactly the committed bytes.
TEST(QbtAppendTest, RecoveryTruncatesEveryTornAppendPrefix) {
  const std::string committed_path = TempPath("append_committed.qbt");
  MappedTable base = MakeTable(48, 0);
  ASSERT_TRUE(WriteQbt(base, committed_path, {/*rows_per_block=*/16}).ok());
  const std::string committed = ReadFileBytes(committed_path);

  MappedTable delta = MakeTable(20, 4);
  ASSERT_TRUE(AppendQbt(delta, committed_path).ok());
  const std::string grown = ReadFileBytes(committed_path);
  ASSERT_GT(grown.size(), committed.size());
  // The append never rewrote committed bytes past the header block.
  EXPECT_EQ(grown.compare(kQbtHeaderSize, committed.size() - kQbtHeaderSize,
                          committed, kQbtHeaderSize,
                          committed.size() - kQbtHeaderSize),
            0);

  const std::string torn_path = TempPath("append_torn.qbt");
  // Every torn length strictly between committed and fully-grown: the
  // header still says 48 rows (the commit is the last step), so recovery
  // must find the old tail and truncate back to it.
  const size_t step =
      std::max<size_t>(1, (grown.size() - committed.size()) / 13);
  for (size_t size = committed.size(); size < grown.size(); size += step) {
    std::string torn = grown.substr(0, size);
    // Un-commit the header: restore the original row count bytes.
    torn.replace(0, kQbtHeaderSize, committed, 0, kQbtHeaderSize);
    WriteFileBytes(torn_path, torn);

    bool recovered = false;
    const Status status = RecoverQbt(torn_path, &recovered);
    ASSERT_TRUE(status.ok()) << "torn size " << size << ": "
                             << status.ToString();
    EXPECT_EQ(ReadFileBytes(torn_path), committed) << "torn size " << size;

    auto source = QbtFileSource::Open(torn_path);
    ASSERT_TRUE(source.ok()) << source.status().ToString();
    EXPECT_EQ((*source)->num_rows(), 48u);
    ExpectConcatenatedValues({&base}, **source);
  }

  // The fully committed grown file needs no recovery and keeps every row.
  WriteFileBytes(torn_path, grown);
  bool recovered = true;
  ASSERT_TRUE(RecoverQbt(torn_path, &recovered).ok());
  EXPECT_FALSE(recovered);
  auto source = QbtFileSource::Open(torn_path);
  ASSERT_TRUE(source.ok());
  ExpectConcatenatedValues({&base, &delta}, **source);
}

// An append onto a torn file recovers it first, then appends cleanly.
TEST(QbtAppendTest, AppendRecoversTornFileFirst) {
  const std::string path = TempPath("append_self_heal.qbt");
  MappedTable base = MakeTable(48, 0);
  ASSERT_TRUE(WriteQbt(base, path, {/*rows_per_block=*/16}).ok());
  const std::string committed = ReadFileBytes(path);

  // Torn: committed bytes plus half-written garbage, header unchanged.
  WriteFileBytes(path, committed + std::string(100, '\x5a'));
  MappedTable delta = MakeTable(12, 5);
  ASSERT_TRUE(AppendQbt(delta, path).ok());

  auto source = QbtFileSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ((*source)->num_rows(), 60u);
  ExpectConcatenatedValues({&base, &delta}, **source);
}

}  // namespace
}  // namespace qarm
