// Adversarial QBT headers: every size the file *declares* (row counts,
// attribute counts, string lengths) must be bounded against the bytes the
// file actually *has* before anything is allocated or read. Each test
// patches one declared size in an otherwise-valid file and expects a clean
// non-OK Status from Open — never an abort, OOM, or out-of-bounds read.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "partition/mapped_table.h"
#include "storage/qbt_reader.h"
#include "storage/qbt_writer.h"
#include "storage/record_source.h"
#include "testutil.h"

namespace qarm {
namespace {

// Header layout (see qbt_format.h): rows_per_block u32 @12, num_rows
// u64 @16, num_attributes u32 @24, metadata_size u64 @32; attribute
// metadata (first field: name length u32) starts at 40.
constexpr size_t kNumRowsOffset = 16;
constexpr size_t kNumAttrsOffset = 24;
constexpr size_t kFirstNameLenOffset = 40;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string WriteValidFile(const std::string& name) {
  MappedAttribute income;
  income.name = "income";
  income.kind = AttributeKind::kQuantitative;
  income.source_type = ValueType::kInt64;
  income.partitioned = true;
  income.intervals = {{0, 999}, {1000, 4999}};
  MappedAttribute married = testutil::CatAttr("married", {"no", "yes"});

  MappedTable table({income, married}, 48);
  for (size_t r = 0; r < 48; ++r) {
    table.set_value(r, 0, static_cast<int32_t>(r % 2));
    table.set_value(r, 1, static_cast<int32_t>(r % 2));
  }
  const std::string path = TempPath(name);
  QbtWriteOptions options;
  options.rows_per_block = 16;
  EXPECT_TRUE(WriteQbt(table, path, options).ok());
  return path;
}

// Overwrites `size` bytes at `offset` with the little-endian value.
void PatchLe(const std::string& path, size_t offset, uint64_t value,
             size_t size) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.good());
  char bytes[8];
  for (size_t i = 0; i < size; ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(bytes, static_cast<std::streamsize>(size));
  ASSERT_TRUE(file.good());
}

TEST(QbtCorruptHeaderTest, HugeAttributeCountIsRejected) {
  const std::string path = WriteValidFile("bomb_attrs.qbt");
  PatchLe(path, kNumAttrsOffset, 0xFFFFFFFFu, 4);
  auto source = QbtFileSource::Open(path);
  ASSERT_FALSE(source.ok());
  EXPECT_NE(source.status().message().find("attribute"), std::string::npos)
      << source.status().ToString();
}

TEST(QbtCorruptHeaderTest, HugeRowCountIsRejected) {
  // num_rows feeds num_blocks feeds footer_size; a 2^63-ish value used to
  // overflow that arithmetic into a small allocation plus a wild read.
  const std::string path = WriteValidFile("bomb_rows.qbt");
  PatchLe(path, kNumRowsOffset, (uint64_t{1} << 63) + 12345, 8);
  EXPECT_FALSE(QbtFileSource::Open(path).ok());
}

TEST(QbtCorruptHeaderTest, HugeNameLengthIsRejected) {
  const std::string path = WriteValidFile("bomb_name.qbt");
  PatchLe(path, kFirstNameLenOffset, 0xFFFFFFF0u, 4);
  EXPECT_FALSE(QbtFileSource::Open(path).ok());
}

TEST(QbtCorruptHeaderTest, TruncatedMetadataIsRejected) {
  const std::string path = WriteValidFile("trunc_meta.qbt");
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 60u);
  const std::string cut = TempPath("trunc_meta_cut.qbt");
  {
    std::ofstream out(cut, std::ios::binary);
    out.write(bytes.data(), 60);  // header + a sliver of metadata
  }
  EXPECT_FALSE(QbtFileSource::Open(cut).ok());
}

TEST(QbtCorruptHeaderTest, ZeroRowsPerBlockWithRowsIsRejected) {
  const std::string path = WriteValidFile("zero_block.qbt");
  PatchLe(path, 12, 0, 4);  // rows_per_block = 0 while num_rows = 48
  EXPECT_FALSE(QbtFileSource::Open(path).ok());
}

}  // namespace
}  // namespace qarm
