// The checkpoint reader treats the file as untrusted input: corrupt,
// truncated, or foreign bytes must come back as a clean Status — never a
// crash or a silently wrong resume.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "storage/checkpoint_format.h"

namespace qarm {
namespace {

CheckpointState SampleState() {
  CheckpointState state;
  state.fingerprint = 0xfeedface12345678ULL;
  state.num_rows = 1000;
  state.num_attributes = 2;
  state.catalog.num_records = 1000;
  state.catalog.items_pruned_by_interest = 1;
  // Two items: (attr 0, [0,1]) and (attr 1, [2,2]).
  state.catalog.item_words = {0, 0, 1, 1, 2, 2};
  state.catalog.item_counts = {400, 300};
  state.catalog.value_counts = {{100, 200, 300}, {50, 60, 70}};
  CheckpointPass pass1;
  pass1.k = 1;
  pass1.num_candidates = 5;
  pass1.itemsets = {0, 1};
  pass1.counts = {400, 300};
  CheckpointPass pass2;
  pass2.k = 2;
  pass2.num_candidates = 1;
  pass2.itemsets = {0, 1};
  pass2.counts = {250};
  state.passes = {pass1, pass2};
  return state;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

TEST(CheckpointFormatTest, RoundTrip) {
  const CheckpointState state = SampleState();
  const std::string path = TempPath("checkpoint_roundtrip.qcp");
  uint64_t bytes = 0;
  ASSERT_TRUE(WriteCheckpoint(state, path, &bytes).ok());
  EXPECT_GT(bytes, kCheckpointHeaderSize + kCheckpointTailSize);

  Result<CheckpointState> loaded = ReadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->fingerprint, state.fingerprint);
  EXPECT_EQ(loaded->num_rows, state.num_rows);
  EXPECT_EQ(loaded->num_attributes, state.num_attributes);
  EXPECT_EQ(loaded->catalog.num_records, state.catalog.num_records);
  EXPECT_EQ(loaded->catalog.items_pruned_by_interest,
            state.catalog.items_pruned_by_interest);
  EXPECT_EQ(loaded->catalog.item_words, state.catalog.item_words);
  EXPECT_EQ(loaded->catalog.item_counts, state.catalog.item_counts);
  EXPECT_EQ(loaded->catalog.value_counts, state.catalog.value_counts);
  ASSERT_EQ(loaded->passes.size(), state.passes.size());
  for (size_t p = 0; p < state.passes.size(); ++p) {
    EXPECT_EQ(loaded->passes[p].k, state.passes[p].k);
    EXPECT_EQ(loaded->passes[p].num_candidates,
              state.passes[p].num_candidates);
    EXPECT_EQ(loaded->passes[p].itemsets, state.passes[p].itemsets);
    EXPECT_EQ(loaded->passes[p].counts, state.passes[p].counts);
  }
}

TEST(CheckpointFormatTest, OverwriteReplacesAtomically) {
  const std::string path = TempPath("checkpoint_overwrite.qcp");
  CheckpointState state = SampleState();
  ASSERT_TRUE(WriteCheckpoint(state, path).ok());
  state.passes.resize(1);  // "earlier" pass set, different payload
  state.fingerprint = 99;
  ASSERT_TRUE(WriteCheckpoint(state, path).ok());
  Result<CheckpointState> loaded = ReadCheckpoint(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->fingerprint, 99u);
  EXPECT_EQ(loaded->passes.size(), 1u);
}

TEST(CheckpointFormatTest, MissingFileIsNotFound) {
  Result<CheckpointState> loaded =
      ReadCheckpoint(TempPath("no_such_checkpoint.qcp"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointFormatTest, EveryPayloadByteFlipIsCaughtByCrc) {
  const std::string path = TempPath("checkpoint_flip.qcp");
  ASSERT_TRUE(WriteCheckpoint(SampleState(), path).ok());
  const std::vector<uint8_t> good = ReadAll(path);
  ASSERT_GT(good.size(), kCheckpointHeaderSize + kCheckpointTailSize);

  // Flip one bit in every 7th payload byte (all of them would be slow).
  for (size_t i = kCheckpointHeaderSize;
       i < good.size() - kCheckpointTailSize; i += 7) {
    std::vector<uint8_t> bad = good;
    bad[i] ^= 0x40;
    Result<CheckpointState> loaded =
        ParseCheckpoint(bad.data(), bad.size());
    EXPECT_FALSE(loaded.ok()) << "flip at byte " << i;
  }
}

TEST(CheckpointFormatTest, EveryTruncationIsRejected) {
  const std::string path = TempPath("checkpoint_trunc.qcp");
  ASSERT_TRUE(WriteCheckpoint(SampleState(), path).ok());
  const std::vector<uint8_t> good = ReadAll(path);
  for (size_t len = 0; len < good.size(); len += 3) {
    Result<CheckpointState> loaded = ParseCheckpoint(good.data(), len);
    EXPECT_FALSE(loaded.ok()) << "truncated to " << len << " bytes";
  }
  // Trailing garbage is just as invalid as missing bytes.
  std::vector<uint8_t> padded = good;
  padded.push_back(0);
  EXPECT_FALSE(ParseCheckpoint(padded.data(), padded.size()).ok());
}

TEST(CheckpointFormatTest, BadMagicAndVersionAreRejected) {
  const std::string path = TempPath("checkpoint_magic.qcp");
  ASSERT_TRUE(WriteCheckpoint(SampleState(), path).ok());
  const std::vector<uint8_t> good = ReadAll(path);

  std::vector<uint8_t> bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(ParseCheckpoint(bad_magic.data(), bad_magic.size()).ok());

  // Version lives at offset 8; an unknown version must be refused even
  // though the CRC would still need fixing — the version check fires first.
  std::vector<uint8_t> bad_version = good;
  bad_version[8] = 0x7f;
  Result<CheckpointState> loaded =
      ParseCheckpoint(bad_version.data(), bad_version.size());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos)
      << loaded.status().ToString();

  std::vector<uint8_t> bad_end = good;
  bad_end[bad_end.size() - 1] = '?';
  EXPECT_FALSE(ParseCheckpoint(bad_end.data(), bad_end.size()).ok());
}

TEST(CheckpointFormatTest, CrcErrorNamesTheMismatch) {
  const std::string path = TempPath("checkpoint_crc.qcp");
  ASSERT_TRUE(WriteCheckpoint(SampleState(), path).ok());
  std::vector<uint8_t> bytes = ReadAll(path);
  bytes[kCheckpointHeaderSize] ^= 0xff;  // first payload byte
  Result<CheckpointState> loaded =
      ParseCheckpoint(bytes.data(), bytes.size());
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
      << loaded.status().ToString();
}

// Internal-consistency lies the CRC cannot catch (the payload is intact,
// just nonsense) are caught by the structural validation instead: a count
// that overruns the byte budget must be rejected before allocation.
TEST(CheckpointFormatTest, WriterRejectsInconsistentState) {
  CheckpointState state = SampleState();
  state.catalog.item_words.pop_back();  // no longer 3 * item_counts
  const std::string path = TempPath("checkpoint_inconsistent.qcp");
  EXPECT_FALSE(WriteCheckpoint(state, path).ok());

  state = SampleState();
  state.passes[1].counts.push_back(7);  // itemsets != counts * k
  EXPECT_FALSE(WriteCheckpoint(state, path).ok());
}

TEST(CheckpointFormatTest, WriteToUnwritablePathFailsCleanly) {
  const std::string path = "/nonexistent-dir/checkpoint.qcp";
  Status status = WriteCheckpoint(SampleState(), path);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace qarm
