#include "storage/record_source.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "partition/mapped_table.h"
#include "storage/qbt_writer.h"
#include "testutil.h"

namespace qarm {
namespace {

MappedTable MakeSmallTable(size_t num_rows) {
  MappedTable table(
      {testutil::QuantAttr("x", 8), testutil::CatAttr("c", {"a", "b", "c"})},
      num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    table.set_value(r, 0, static_cast<int32_t>(r % 8));
    table.set_value(r, 1, static_cast<int32_t>(r % 3));
  }
  return table;
}

TEST(PickBlockRowsTest, CapsAtMaxBlockRows) {
  EXPECT_EQ(PickBlockRows(1000000, 1, 65536), 65536u);
  EXPECT_EQ(PickBlockRows(1000000, 4, 65536), 65536u);
}

// Small tables must split into >= num_threads blocks so every worker gets
// one — the parallel-counting invariant threads_used == num_threads.
TEST(PickBlockRowsTest, SmallTablesKeepFullParallelism) {
  EXPECT_EQ(PickBlockRows(1200, 4, 65536), 300u);
  EXPECT_EQ(PickBlockRows(1200, 8, 65536), 150u);
  EXPECT_EQ(PickBlockRows(7, 4, 65536), 2u);  // 4 blocks: 2+2+2+1
}

TEST(PickBlockRowsTest, DegenerateInputs) {
  EXPECT_EQ(PickBlockRows(1000, 0, 65536), 1000u);  // 0 threads = serial
  EXPECT_EQ(PickBlockRows(0, 4, 65536), 1u);        // never zero rows
  EXPECT_EQ(PickBlockRows(1000, 4, 0), 1u);
  EXPECT_EQ(PickBlockRows(3, 8, 65536), 1u);  // more threads than rows
}

TEST(MappedTableSourceTest, BlocksCoverTableExactly) {
  MappedTable table = MakeSmallTable(103);
  MappedTableSource source(table, /*rows_per_block=*/16);
  EXPECT_EQ(source.num_rows(), 103u);
  EXPECT_EQ(source.num_blocks(), 7u);
  EXPECT_EQ(source.num_attributes(), 2u);
  EXPECT_EQ(source.attribute(0).name, "x");

  BlockView view;
  size_t rows_seen = 0;
  for (size_t b = 0; b < source.num_blocks(); ++b) {
    ASSERT_TRUE(source.ReadBlock(b, &view).ok());
    EXPECT_EQ(view.row_begin(), b * 16);
    EXPECT_EQ(view.num_rows(), source.block_rows(b));
    for (size_t r = 0; r < view.num_rows(); ++r) {
      for (size_t a = 0; a < 2; ++a) {
        ASSERT_EQ(view.value(r, a), table.value(view.row_begin() + r, a));
      }
    }
    rows_seen += view.num_rows();
  }
  EXPECT_EQ(rows_seen, 103u);
  EXPECT_EQ(source.block_rows(6), 7u);  // ragged tail
}

TEST(MappedTableSourceTest, ViewsAreZeroCopyRowMajor) {
  MappedTable table = MakeSmallTable(32);
  MappedTableSource source(table, /*rows_per_block=*/8);
  BlockView view;
  ASSERT_TRUE(source.ReadBlock(1, &view).ok());
  // Row-major means stride == num_attributes and the column base points
  // straight into the table's matrix.
  EXPECT_EQ(view.stride(), 2u);
  EXPECT_EQ(view.column(0), table.row(8));
  EXPECT_EQ(view.column(1), table.row(8) + 1);
}

TEST(MappedTableSourceTest, IoStatsStayZero) {
  MappedTable table = MakeSmallTable(64);
  MappedTableSource source(table, /*rows_per_block=*/16);
  BlockView view;
  for (size_t b = 0; b < source.num_blocks(); ++b) {
    ASSERT_TRUE(source.ReadBlock(b, &view).ok());
  }
  EXPECT_EQ(source.io_stats().blocks_read, 0u);
  EXPECT_EQ(source.io_stats().bytes_read, 0u);
}

TEST(QbtFileSourceTest, CountsEveryBlockRead) {
  MappedTable table = MakeSmallTable(64);
  const std::string path = ::testing::TempDir() + "/record_source_io.qbt";
  QbtWriteOptions options;
  options.rows_per_block = 16;
  ASSERT_TRUE(WriteQbt(table, path, options).ok());

  auto source = QbtFileSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ((*source)->io_stats().blocks_read, 0u);

  // Columnar blocks: stride 1.
  BlockView view;
  ASSERT_TRUE((*source)->ReadBlock(0, &view).ok());
  EXPECT_EQ(view.stride(), 1u);

  const ScanIoStats after_one = (*source)->io_stats();
  EXPECT_EQ(after_one.blocks_read, 1u);
  EXPECT_EQ(after_one.bytes_read, 16u * 2u * sizeof(int32_t));

  // A second pass over all four blocks accumulates on top.
  for (size_t b = 0; b < (*source)->num_blocks(); ++b) {
    ASSERT_TRUE((*source)->ReadBlock(b, &view).ok());
  }
  const ScanIoStats total = (*source)->io_stats();
  EXPECT_EQ(total.blocks_read, 5u);
  EXPECT_EQ(total.bytes_read, 5u * 16u * 2u * sizeof(int32_t));

  // Pass accounting = after - before.
  const ScanIoStats delta = total - after_one;
  EXPECT_EQ(delta.blocks_read, 4u);
}

TEST(ScanIoStatsTest, Arithmetic) {
  ScanIoStats a{10, 1000, 0.5};
  ScanIoStats b{4, 400, 0.2};
  ScanIoStats d = a - b;
  EXPECT_EQ(d.blocks_read, 6u);
  EXPECT_EQ(d.bytes_read, 600u);
  EXPECT_NEAR(d.checksum_seconds, 0.3, 1e-12);
  b += d;
  EXPECT_EQ(b.blocks_read, 10u);
  EXPECT_EQ(b.bytes_read, 1000u);
}

}  // namespace
}  // namespace qarm
