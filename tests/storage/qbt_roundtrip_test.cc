#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "partition/mapped_table.h"
#include "storage/qbt_reader.h"
#include "storage/qbt_writer.h"
#include "storage/record_source.h"
#include "testutil.h"

namespace qarm {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// A table exercising every piece of decode metadata the format must carry:
// a partitioned quantitative attribute with real intervals, a categorical
// attribute under a taxonomy (ids in DFS order + interior ranges), a plain
// categorical attribute, and missing cells.
MappedTable MakeRichTable(size_t num_rows) {
  MappedAttribute income;
  income.name = "income";
  income.kind = AttributeKind::kQuantitative;
  income.source_type = ValueType::kInt64;
  income.partitioned = true;
  income.intervals = {{0, 999}, {1000, 4999}, {5000, 9999}, {10000, 20000}};

  MappedAttribute region;
  region.name = "region";
  region.kind = AttributeKind::kCategorical;
  region.source_type = ValueType::kString;
  region.labels = {"north", "south", "east", "west"};
  region.taxonomy_ranges = {{"anywhere", 0, 3}, {"vertical", 0, 1}};

  MappedAttribute married = testutil::CatAttr("married", {"no", "yes"});

  MappedTable table({income, region, married}, num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    table.set_value(r, 0, static_cast<int32_t>(r % 4));
    table.set_value(r, 1, r % 7 == 0 ? kMissingValue
                                     : static_cast<int32_t>((r / 3) % 4));
    table.set_value(r, 2, r % 5 == 0 ? kMissingValue
                                     : static_cast<int32_t>(r % 2));
  }
  return table;
}

void ExpectSameMetadata(const MappedTable& table,
                        const std::vector<MappedAttribute>& attrs) {
  ASSERT_EQ(attrs.size(), table.num_attributes());
  for (size_t a = 0; a < attrs.size(); ++a) {
    const MappedAttribute& expect = table.attribute(a);
    const MappedAttribute& got = attrs[a];
    EXPECT_EQ(got.name, expect.name);
    EXPECT_EQ(got.kind, expect.kind);
    EXPECT_EQ(got.source_type, expect.source_type);
    EXPECT_EQ(got.partitioned, expect.partitioned);
    EXPECT_EQ(got.labels, expect.labels);
    ASSERT_EQ(got.intervals.size(), expect.intervals.size());
    for (size_t i = 0; i < got.intervals.size(); ++i) {
      EXPECT_DOUBLE_EQ(got.intervals[i].lo, expect.intervals[i].lo);
      EXPECT_DOUBLE_EQ(got.intervals[i].hi, expect.intervals[i].hi);
    }
    ASSERT_EQ(got.taxonomy_ranges.size(), expect.taxonomy_ranges.size());
    for (size_t i = 0; i < got.taxonomy_ranges.size(); ++i) {
      EXPECT_EQ(got.taxonomy_ranges[i].name, expect.taxonomy_ranges[i].name);
      EXPECT_EQ(got.taxonomy_ranges[i].lo, expect.taxonomy_ranges[i].lo);
      EXPECT_EQ(got.taxonomy_ranges[i].hi, expect.taxonomy_ranges[i].hi);
    }
  }
}

void ExpectSameValues(const MappedTable& table, const RecordSource& source) {
  ASSERT_EQ(source.num_rows(), table.num_rows());
  BlockView view;
  size_t rows_seen = 0;
  for (size_t b = 0; b < source.num_blocks(); ++b) {
    Status s = source.ReadBlock(b, &view);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(view.row_begin(), source.block_row_begin(b));
    EXPECT_EQ(view.num_rows(), source.block_rows(b));
    for (size_t r = 0; r < view.num_rows(); ++r) {
      for (size_t a = 0; a < table.num_attributes(); ++a) {
        ASSERT_EQ(view.value(r, a), table.value(view.row_begin() + r, a))
            << "block " << b << " row " << r << " attr " << a;
      }
    }
    rows_seen += view.num_rows();
  }
  EXPECT_EQ(rows_seen, table.num_rows());
}

TEST(QbtRoundtripTest, SingleBlock) {
  MappedTable table = MakeRichTable(100);
  const std::string path = TempPath("roundtrip_single.qbt");
  QbtWriteInfo info;
  ASSERT_TRUE(WriteQbt(table, path, {}, &info).ok());
  EXPECT_EQ(info.num_rows, 100u);
  EXPECT_EQ(info.num_blocks, 1u);
  EXPECT_GT(info.file_bytes, 0u);

  auto source = QbtFileSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  ExpectSameMetadata(table, (*source)->attributes());
  ExpectSameValues(table, **source);
}

TEST(QbtRoundtripTest, MultiBlockWithRaggedTail) {
  MappedTable table = MakeRichTable(103);  // 103 = 6*16 + 7: ragged last block
  const std::string path = TempPath("roundtrip_multi.qbt");
  QbtWriteOptions options;
  options.rows_per_block = 16;
  QbtWriteInfo info;
  ASSERT_TRUE(WriteQbt(table, path, options, &info).ok());
  EXPECT_EQ(info.num_blocks, 7u);

  auto source = QbtFileSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ((*source)->num_blocks(), 7u);
  EXPECT_EQ((*source)->block_rows(0), 16u);
  EXPECT_EQ((*source)->block_rows(6), 7u);
  EXPECT_EQ((*source)->block_row_begin(6), 96u);
  ExpectSameValues(table, **source);
}

TEST(QbtRoundtripTest, EmptyTable) {
  MappedTable table = MakeRichTable(0);
  const std::string path = TempPath("roundtrip_empty.qbt");
  QbtWriteInfo info;
  ASSERT_TRUE(WriteQbt(table, path, {}, &info).ok());
  EXPECT_EQ(info.num_rows, 0u);
  EXPECT_EQ(info.num_blocks, 0u);

  auto source = QbtFileSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ((*source)->num_rows(), 0u);
  EXPECT_EQ((*source)->num_blocks(), 0u);
  ExpectSameMetadata(table, (*source)->attributes());
}

// A flipped data byte must surface as a clean checksum Status from
// ReadBlock — never a crash or silently wrong values.
TEST(QbtRoundtripTest, CorruptedBlockFailsChecksum) {
  MappedTable table = MakeRichTable(64);
  const std::string path = TempPath("roundtrip_corrupt.qbt");
  QbtWriteOptions options;
  options.rows_per_block = 16;
  ASSERT_TRUE(WriteQbt(table, path, options).ok());

  uint64_t offset = 0;
  {
    auto reader = QbtReader::Open(path);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    offset = (*reader)->block_offset(2);
  }
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.get(byte);
    byte ^= 0x40;
    file.seekp(static_cast<std::streamoff>(offset));
    file.put(byte);
  }

  // The index and the other blocks still validate...
  auto source = QbtFileSource::Open(path);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  BlockView view;
  EXPECT_TRUE((*source)->ReadBlock(0, &view).ok());
  EXPECT_TRUE((*source)->ReadBlock(3, &view).ok());

  // ...but the corrupted block reports the mismatch.
  Status bad = (*source)->ReadBlock(2, &view);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.message().find("checksum mismatch"), std::string::npos)
      << bad.ToString();
}

TEST(QbtRoundtripTest, OpenRejectsGarbage) {
  // Missing file.
  EXPECT_FALSE(QbtFileSource::Open(TempPath("no_such_file.qbt")).ok());

  // Wrong magic.
  const std::string bad_magic = TempPath("bad_magic.qbt");
  {
    std::ofstream out(bad_magic, std::ios::binary);
    out << "NOPE this is not a QBT file, just enough bytes to read a header.";
  }
  auto r1 = QbtFileSource::Open(bad_magic);
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("not a valid QBT file"),
            std::string::npos)
      << r1.status().ToString();

  // Valid file cut short.
  MappedTable table = MakeRichTable(64);
  const std::string whole = TempPath("whole.qbt");
  ASSERT_TRUE(WriteQbt(table, whole).ok());
  std::ifstream in(whole, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  const std::string truncated = TempPath("truncated.qbt");
  {
    std::ofstream out(truncated, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(QbtFileSource::Open(truncated).ok());
}

}  // namespace
}  // namespace qarm
