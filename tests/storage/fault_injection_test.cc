// FaultInjectingRecordSource: the spec grammar, the determinism of the
// fault schedule, and the transient-vs-permanent failure behavior its
// internal retry loop produces.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "partition/mapper.h"
#include "storage/fault_injection.h"
#include "storage/record_source.h"
#include "table/datagen.h"

namespace qarm {
namespace {

// A small mapped table as the inner source; its reads never fail, so every
// failure seen through the decorator is an injected one.
class FaultFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    Table raw = MakeFinancialDataset(640, 3);
    Result<MappedTable> mapped = MapTable(raw, MapOptions{});
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    table_ = std::make_unique<MappedTable>(std::move(mapped).value());
    source_ = std::make_unique<MappedTableSource>(*table_, /*block_rows=*/64);
    ASSERT_GE(source_->num_blocks(), 10u);
  }

  std::unique_ptr<MappedTable> table_;
  std::unique_ptr<MappedTableSource> source_;
};

TEST(ParseFaultSpecTest, FullGrammar) {
  Result<FaultInjectionConfig> config = ParseFaultSpec(
      "seed=7,rate=0.25,fails=2,after=3,kinds=eio+crc,attempts=5,backoff=0");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->seed, 7u);
  EXPECT_DOUBLE_EQ(config->rate, 0.25);
  EXPECT_EQ(config->fails_per_block, 2u);
  EXPECT_EQ(config->after_reads, 3u);
  EXPECT_EQ(config->kinds, static_cast<uint32_t>(FaultKind::kEio) |
                               static_cast<uint32_t>(FaultKind::kCrc));
  EXPECT_EQ(config->retry.max_attempts, 5u);
  EXPECT_DOUBLE_EQ(config->retry.initial_backoff_ms, 0.0);
}

TEST(ParseFaultSpecTest, DefaultsFromSingleKey) {
  Result<FaultInjectionConfig> config = ParseFaultSpec("seed=9");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->seed, 9u);
  EXPECT_DOUBLE_EQ(config->rate, 0.05);
  EXPECT_EQ(config->fails_per_block, 1u);
  EXPECT_EQ(config->kinds, static_cast<uint32_t>(FaultKind::kEio) |
                               static_cast<uint32_t>(FaultKind::kShortRead) |
                               static_cast<uint32_t>(FaultKind::kCrc));
}

TEST(ParseFaultSpecTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"", "   ", "seed", "seed=", "seed=x", "rate=0", "rate=1.5",
        "rate=-0.1", "fails=0", "attempts=0", "kinds=", "kinds=disk",
        "kinds=eio+bogus", "backoff=-1", "bogus=1", "rate=0.5,bogus=1"}) {
    Result<FaultInjectionConfig> config = ParseFaultSpec(bad);
    EXPECT_FALSE(config.ok()) << "spec accepted: '" << bad << "'";
    EXPECT_EQ(config.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(FaultFixture, ScheduleIsDeterministic) {
  FaultInjectionConfig config;
  config.seed = 11;
  config.rate = 0.4;
  const FaultInjectingRecordSource a(*source_, config);
  const FaultInjectingRecordSource b(*source_, config);
  size_t faulted = 0;
  for (size_t blk = 0; blk < source_->num_blocks(); ++blk) {
    EXPECT_EQ(a.BlockIsFaulted(blk), b.BlockIsFaulted(blk));
    if (a.BlockIsFaulted(blk)) {
      ++faulted;
      EXPECT_EQ(a.BlockFaultKind(blk), b.BlockFaultKind(blk));
    }
  }
  // rate=0.4 over >= 10 blocks: the schedule actually faults something but
  // not everything.
  EXPECT_GT(faulted, 0u);
  EXPECT_LT(faulted, source_->num_blocks());

  FaultInjectionConfig other = config;
  other.seed = 12;
  const FaultInjectingRecordSource c(*source_, other);
  size_t differs = 0;
  for (size_t blk = 0; blk < source_->num_blocks(); ++blk) {
    if (a.BlockIsFaulted(blk) != c.BlockIsFaulted(blk)) ++differs;
  }
  EXPECT_GT(differs, 0u) << "seed must change the schedule";
}

TEST_F(FaultFixture, TransientFaultsRecoverThroughRetry) {
  FaultInjectionConfig config;
  config.seed = 5;
  config.rate = 1.0;   // every block faulted
  config.fails_per_block = 2;
  config.retry.max_attempts = 4;  // retry budget > fails: all reads recover
  config.retry.initial_backoff_ms = 0.0;
  const FaultInjectingRecordSource faulty(*source_, config);

  for (size_t blk = 0; blk < source_->num_blocks(); ++blk) {
    BlockView view;
    Status status = faulty.ReadBlock(blk, &view);
    ASSERT_TRUE(status.ok()) << "block " << blk << ": " << status.ToString();
    EXPECT_EQ(view.num_rows(), source_->block_rows(blk));
  }
  const ScanIoStats stats = faulty.io_stats();
  EXPECT_EQ(stats.faults_injected, 2 * source_->num_blocks());
  EXPECT_EQ(stats.read_retries, 2 * source_->num_blocks());

  // A second pass over the same blocks is clean: the "device" recovered.
  for (size_t blk = 0; blk < source_->num_blocks(); ++blk) {
    BlockView view;
    ASSERT_TRUE(faulty.ReadBlock(blk, &view).ok());
  }
  EXPECT_EQ(faulty.io_stats().faults_injected, stats.faults_injected);
}

TEST_F(FaultFixture, PermanentFaultEscapesTheRetryBudget) {
  FaultInjectionConfig config;
  config.seed = 5;
  config.rate = 1.0;
  config.fails_per_block = 100;   // far beyond the retry budget
  config.retry.max_attempts = 3;
  config.retry.initial_backoff_ms = 0.0;
  config.kinds = static_cast<uint32_t>(FaultKind::kEio);
  const FaultInjectingRecordSource faulty(*source_, config);

  BlockView view;
  Status status = faulty.ReadBlock(0, &view);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("injected EIO"), std::string::npos);
  EXPECT_EQ(faulty.io_stats().faults_injected, 3u);  // one per attempt
}

TEST_F(FaultFixture, AfterReadsSuppressesEarlyInjection) {
  FaultInjectionConfig config;
  config.seed = 5;
  config.rate = 1.0;
  config.fails_per_block = 1000;  // permanent, once injection starts
  config.retry.max_attempts = 1;
  config.retry.initial_backoff_ms = 0.0;
  config.after_reads = 3;
  const FaultInjectingRecordSource faulty(*source_, config);

  // The first 3 reads are clean; the 4th injects.
  for (size_t i = 0; i < 3; ++i) {
    BlockView view;
    ASSERT_TRUE(faulty.ReadBlock(i, &view).ok()) << "read " << i;
  }
  BlockView view;
  EXPECT_FALSE(faulty.ReadBlock(3, &view).ok());
}

TEST_F(FaultFixture, StatsPassThroughToInnerSource) {
  FaultInjectionConfig config;
  config.rate = 0.5;
  const FaultInjectingRecordSource faulty(*source_, config);
  EXPECT_EQ(faulty.num_rows(), source_->num_rows());
  EXPECT_EQ(faulty.num_blocks(), source_->num_blocks());
  EXPECT_EQ(faulty.attributes().size(), source_->attributes().size());
  for (size_t blk = 0; blk < source_->num_blocks(); ++blk) {
    EXPECT_EQ(faulty.block_rows(blk), source_->block_rows(blk));
    EXPECT_EQ(faulty.block_row_begin(blk), source_->block_row_begin(blk));
  }
}

}  // namespace
}  // namespace qarm
