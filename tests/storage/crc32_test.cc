#include "storage/crc32.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace qarm {
namespace {

// The CRC-32 "check" value: every IEEE-802.3 implementation must map the
// ASCII digits "123456789" to 0xCBF43926.
TEST(Crc32Test, KnownVectors) {
  const std::string check = "123456789";
  EXPECT_EQ(Crc32(check.data(), check.size()), 0xCBF43926u);

  EXPECT_EQ(Crc32(nullptr, 0), 0x00000000u);

  const std::string a = "a";
  EXPECT_EQ(Crc32(a.data(), a.size()), 0xE8B7BE43u);

  // zlib's crc32(0, "The quick brown fox jumps over the lazy dog", 43).
  const std::string fox = "The quick brown fox jumps over the lazy dog";
  EXPECT_EQ(Crc32(fox.data(), fox.size()), 0x414FA339u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "quantitative association rules";
  const uint32_t one_shot = Crc32(data.data(), data.size());

  // Any split point must yield the same digest.
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = kCrc32Init;
    crc = Crc32Update(crc, data.data(), split);
    crc = Crc32Update(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(Crc32Finish(crc), one_shot) << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<int32_t> block(1024);
  for (size_t i = 0; i < block.size(); ++i) {
    block[i] = static_cast<int32_t>(i * 2654435761u);
  }
  const size_t bytes = block.size() * sizeof(int32_t);
  const uint32_t clean = Crc32(block.data(), bytes);

  auto* raw = reinterpret_cast<unsigned char*>(block.data());
  raw[bytes / 2] ^= 0x01;
  EXPECT_NE(Crc32(block.data(), bytes), clean);
  raw[bytes / 2] ^= 0x01;
  EXPECT_EQ(Crc32(block.data(), bytes), clean);
}

}  // namespace
}  // namespace qarm
