# End-to-end out-of-core smoke: generate a CSV with `qarm gen`, convert it
# to QBT with `qarm convert`, mine both the QBT file (streaming) and the
# CSV (in-memory) with identical options, and require identical rule output.
set(SCHEMA "monthly_income:quant,credit_limit:quant,current_balance:quant,ytd_balance:quant,ytd_interest:quant:double,employee_category:cat,marital_status:cat")
set(MINE_FLAGS --minsup=0.3 --minconf=0.6 --k=3.0 --format=csv)

execute_process(
  COMMAND ${QARM} gen --output=${WORK_DIR}/stream_fin.csv --records=2000 --seed=11
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "qarm gen exited with ${rc}")
endif()

execute_process(
  COMMAND ${QARM} convert --input=${WORK_DIR}/stream_fin.csv --schema=${SCHEMA}
          --output=${WORK_DIR}/stream_fin.qbt --block-rows=512
          --minsup=0.3 --k=3.0
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "qarm convert exited with ${rc}")
endif()

execute_process(
  COMMAND ${QARM} --input-qbt=${WORK_DIR}/stream_fin.qbt ${MINE_FLAGS}
          --threads=4 --stats
  OUTPUT_VARIABLE streamed
  ERROR_VARIABLE streamed_stats
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "qarm --input-qbt exited with ${rc}")
endif()
if(NOT streamed_stats MATCHES "blocks_read=")
  message(FATAL_ERROR "expected I/O stats in streaming --stats output")
endif()

execute_process(
  COMMAND ${QARM} --input=${WORK_DIR}/stream_fin.csv --schema=${SCHEMA}
          ${MINE_FLAGS} --threads=1
  OUTPUT_VARIABLE in_memory
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "qarm --input exited with ${rc}")
endif()

# The rule CSV on stdout must match bit for bit.
if(NOT streamed STREQUAL in_memory)
  message(FATAL_ERROR "streaming rules differ from in-memory rules")
endif()
if(streamed STREQUAL "")
  message(FATAL_ERROR "smoke mining produced no rules")
endif()
