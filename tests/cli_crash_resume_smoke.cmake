# The acceptance criterion for crash-safe mining, end to end through the
# real binary: a run hard-killed (SIGKILL via --kill-after-pass) after pass
# 2 and restarted with the same flags resumes from the checkpoint and
# prints bit-identical rules to an uninterrupted run.
set(DATA "${WORK_DIR}/crash_resume.csv")
set(QCP "${WORK_DIR}/crash_resume.qcp")
set(FLAGS
  --input=${DATA}
  --schema=monthly_income:quant,credit_limit:quant,current_balance:quant,ytd_balance:quant,ytd_interest:quant:double,employee_category:cat,marital_status:cat
  --minsup=0.2 --minconf=0.4 --maxsup=0.45 --k=3)

execute_process(
  COMMAND ${QARM} gen --output=${DATA} --records=1500 --seed=42
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "qarm gen exited with ${rc}")
endif()

# Uninterrupted baseline.
execute_process(
  COMMAND ${QARM} ${FLAGS}
  OUTPUT_VARIABLE baseline
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "baseline run exited with ${rc}")
endif()

# Crash after pass 2: the process dies by SIGKILL, leaving the checkpoint.
file(REMOVE "${QCP}")
execute_process(
  COMMAND ${QARM} ${FLAGS} --checkpoint=${QCP} --kill-after-pass=2
  RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR "--kill-after-pass=2 run was expected to die, got 0")
endif()
if(NOT EXISTS "${QCP}")
  message(FATAL_ERROR "killed run left no checkpoint at ${QCP}")
endif()

# Restart with the same flags: resumes after pass 2, same rules, and the
# consumed checkpoint is cleaned up.
execute_process(
  COMMAND ${QARM} ${FLAGS} --checkpoint=${QCP} --stats
  OUTPUT_VARIABLE resumed
  ERROR_VARIABLE resumed_stats
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resumed run exited with ${rc}")
endif()
if(NOT resumed STREQUAL baseline)
  message(FATAL_ERROR
    "resumed rules differ from the uninterrupted run\n--- baseline\n"
    "${baseline}\n--- resumed\n${resumed}")
endif()
if(NOT resumed_stats MATCHES "resumed_passes=2")
  message(FATAL_ERROR "resumed run did not report resumed_passes=2:\n"
    "${resumed_stats}")
endif()
if(EXISTS "${QCP}")
  message(FATAL_ERROR "completed run should have removed ${QCP}")
endif()
