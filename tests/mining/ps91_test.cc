#include "mining/ps91.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace qarm {
namespace {

using testutil::CatAttr;
using testutil::MakeMappedTable;
using testutil::QuantAttr;

MappedTable SmallTable() {
  // x in {0,1,2}, y in {"a","b"}. x=0 always has y="a".
  std::vector<std::vector<int32_t>> rows;
  for (int i = 0; i < 4; ++i) rows.push_back({0, 0});  // x=0, y=a
  for (int i = 0; i < 3; ++i) rows.push_back({1, 1});  // x=1, y=b
  for (int i = 0; i < 2; ++i) rows.push_back({2, 0});  // x=2, y=a
  rows.push_back({2, 1});                              // x=2, y=b
  return MakeMappedTable({QuantAttr("x", 3), CatAttr("y", {"a", "b"})}, rows);
}

TEST(Ps91Test, FindsHighConfidenceRule) {
  MappedTable table = SmallTable();
  Ps91Options options;
  options.minsup = 0.2;
  options.minconf = 0.9;
  auto rules = Ps91MineAttribute(table, 0, options);
  // (x=0) => (y=a) with support 0.4, confidence 1.0.
  ASSERT_EQ(rules.size(), 2u);  // x=0=>a and x=1=>b
  EXPECT_EQ(rules[0].antecedent_value, 0);
  EXPECT_EQ(rules[0].consequent_attr, 1u);
  EXPECT_EQ(rules[0].consequent_value, 0);
  EXPECT_DOUBLE_EQ(rules[0].confidence, 1.0);
  EXPECT_DOUBLE_EQ(rules[0].support, 0.4);
}

TEST(Ps91Test, RespectsMinsup) {
  MappedTable table = SmallTable();
  Ps91Options options;
  options.minsup = 0.35;  // only (x=0, y=a) has 40% joint support
  options.minconf = 0.5;
  auto rules = Ps91MineAttribute(table, 0, options);
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].antecedent_value, 0);
}

TEST(Ps91Test, RespectsMinconf) {
  MappedTable table = SmallTable();
  Ps91Options options;
  options.minsup = 0.05;
  options.minconf = 0.99;
  auto rules = Ps91MineAttribute(table, 0, options);
  for (const Ps91Rule& r : rules) {
    EXPECT_GE(r.confidence, 0.99);
  }
}

TEST(Ps91Test, MineAllCoversBothDirections) {
  MappedTable table = SmallTable();
  Ps91Options options;
  options.minsup = 0.2;
  options.minconf = 0.9;
  auto rules = Ps91MineAll(table, options);
  bool found_x_to_y = false, found_y_to_x = false;
  for (const Ps91Rule& r : rules) {
    if (r.antecedent_attr == 0) found_x_to_y = true;
    if (r.antecedent_attr == 1) found_y_to_x = true;
  }
  EXPECT_TRUE(found_x_to_y);
  // y=b => x=1 has confidence 3/4 < 0.9, y=a => x=0 has 4/6 < 0.9:
  EXPECT_FALSE(found_y_to_x);
}

TEST(Ps91Test, SingleValueAntecedentOnly) {
  // PS91 cannot express ranges: with the spike spread across two adjacent
  // x values, no single-value rule reaches the confidence threshold,
  // although <x: 0..1> => (y=a) would. This is the limitation the paper's
  // Related Work calls out.
  std::vector<std::vector<int32_t>> rows;
  for (int i = 0; i < 3; ++i) rows.push_back({0, 0});
  for (int i = 0; i < 2; ++i) rows.push_back({0, 1});
  for (int i = 0; i < 3; ++i) rows.push_back({1, 0});
  for (int i = 0; i < 2; ++i) rows.push_back({1, 1});
  for (int i = 0; i < 10; ++i) rows.push_back({2, 1});
  MappedTable table = MakeMappedTable(
      {QuantAttr("x", 3), CatAttr("y", {"a", "b"})}, rows);
  Ps91Options options;
  options.minsup = 0.25;  // joint (x=0,y=a)=3/20, (x=1,y=a)=3/20: both fail
  options.minconf = 0.5;
  auto rules = Ps91MineAttribute(table, 0, options);
  for (const Ps91Rule& r : rules) {
    EXPECT_NE(r.consequent_value, 0);  // no rule concludes y=a
  }
}

TEST(Ps91Test, EmptyTable) {
  MappedTable table = MakeMappedTable(
      {QuantAttr("x", 3), CatAttr("y", {"a", "b"})}, {});
  auto rules = Ps91MineAll(table, Ps91Options{});
  EXPECT_TRUE(rules.empty());
}

TEST(Ps91Test, RuleToString) {
  MappedTable table = SmallTable();
  Ps91Options options;
  options.minsup = 0.2;
  options.minconf = 0.9;
  auto rules = Ps91MineAttribute(table, 0, options);
  ASSERT_FALSE(rules.empty());
  std::string s = Ps91RuleToString(rules[0], table);
  EXPECT_NE(s.find("<x: 0>"), std::string::npos);
  EXPECT_NE(s.find("<y: a>"), std::string::npos);
  EXPECT_NE(s.find("confidence 100"), std::string::npos);
}

}  // namespace
}  // namespace qarm
