#include "mining/rulegen.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/random.h"
#include "testutil.h"

namespace qarm {
namespace {

std::vector<BooleanRule> SortedRules(std::vector<BooleanRule> rules) {
  std::sort(rules.begin(), rules.end(),
            [](const BooleanRule& a, const BooleanRule& b) {
              if (a.antecedent != b.antecedent) {
                return a.antecedent < b.antecedent;
              }
              return a.consequent < b.consequent;
            });
  return rules;
}

TEST(RulegenTest, SimplePair) {
  // sup({1}) = 4, sup({2}) = 2, sup({1,2}) = 2 over 4 transactions.
  std::vector<FrequentItemset> itemsets = {
      {{1}, 4}, {{2}, 2}, {{1, 2}, 2}};
  auto rules = SortedRules(GenerateRules(itemsets, 4, 0.6));
  // 1 => 2 has confidence 0.5 (fails); 2 => 1 has confidence 1.0.
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].antecedent, (std::vector<int32_t>{2}));
  EXPECT_EQ(rules[0].consequent, (std::vector<int32_t>{1}));
  EXPECT_DOUBLE_EQ(rules[0].confidence, 1.0);
  EXPECT_DOUBLE_EQ(rules[0].support, 0.5);
}

TEST(RulegenTest, MinconfZeroEmitsAllSplits) {
  std::vector<FrequentItemset> itemsets = {
      {{1}, 3}, {{2}, 3}, {{3}, 3}, {{1, 2}, 2}, {{1, 3}, 2}, {{2, 3}, 2},
      {{1, 2, 3}, 2}};
  auto rules = GenerateRules(itemsets, 4, 0.0);
  // For {1,2}: 2 rules; {1,3}: 2; {2,3}: 2; {1,2,3}: 6 (three 1-item
  // consequents + three 2-item consequents).
  EXPECT_EQ(rules.size(), 12u);
}

TEST(RulegenTest, ConfidencePruningIsAntiMonotone) {
  // If 1,2 => 3 fails minconf then 1 => 2,3 must not appear either (its
  // antecedent support can only be larger).
  std::vector<FrequentItemset> itemsets = {
      {{1}, 10}, {{2}, 8}, {{3}, 4},
      {{1, 2}, 8}, {{1, 3}, 4}, {{2, 3}, 4}, {{1, 2, 3}, 4}};
  auto rules = GenerateRules(itemsets, 10, 0.6);
  for (const BooleanRule& r : rules) {
    EXPECT_GE(r.confidence + 1e-12, 0.6);
  }
  // {1,2} => {3}: 4/8 = 0.5 fails; {1} => {2,3}: 4/10 fails. Both absent.
  for (const BooleanRule& r : rules) {
    bool is_12_3 = r.antecedent == std::vector<int32_t>{1, 2} &&
                   r.consequent == std::vector<int32_t>{3};
    bool is_1_23 = r.antecedent == std::vector<int32_t>{1} &&
                   r.consequent == std::vector<int32_t>{2, 3};
    EXPECT_FALSE(is_12_3);
    EXPECT_FALSE(is_1_23);
  }
}

TEST(RulegenTest, NoRulesFromSingletons) {
  std::vector<FrequentItemset> itemsets = {{{1}, 5}, {{2}, 3}};
  EXPECT_TRUE(GenerateRules(itemsets, 10, 0.1).empty());
}

TEST(RulegenTest, RuleMetricsConsistent) {
  Rng rng(3);
  std::vector<Transaction> txns;
  for (int t = 0; t < 200; ++t) {
    Transaction txn;
    for (int32_t item = 0; item < 8; ++item) {
      if (rng.Bernoulli(0.4)) txn.push_back(item);
    }
    txns.push_back(std::move(txn));
  }
  auto frequent = testutil::BruteForceFrequent(txns, 0.1, 8);
  auto rules = GenerateRules(frequent, txns.size(), 0.5);
  ASSERT_FALSE(rules.empty());
  for (const BooleanRule& r : rules) {
    // Recompute support and confidence by brute force.
    std::vector<int32_t> full = r.antecedent;
    full.insert(full.end(), r.consequent.begin(), r.consequent.end());
    std::sort(full.begin(), full.end());
    uint64_t full_count = 0, ante_count = 0;
    for (const Transaction& t : txns) {
      if (std::includes(t.begin(), t.end(), full.begin(), full.end())) {
        ++full_count;
      }
      if (std::includes(t.begin(), t.end(), r.antecedent.begin(),
                        r.antecedent.end())) {
        ++ante_count;
      }
    }
    EXPECT_EQ(r.count, full_count);
    EXPECT_DOUBLE_EQ(r.support, static_cast<double>(full_count) / 200.0);
    EXPECT_DOUBLE_EQ(
        r.confidence,
        static_cast<double>(full_count) / static_cast<double>(ante_count));
    // Antecedent and consequent are disjoint and non-empty.
    EXPECT_FALSE(r.antecedent.empty());
    EXPECT_FALSE(r.consequent.empty());
    std::vector<int32_t> inter;
    std::set_intersection(r.antecedent.begin(), r.antecedent.end(),
                          r.consequent.begin(), r.consequent.end(),
                          std::back_inserter(inter));
    EXPECT_TRUE(inter.empty());
  }
}

TEST(RulegenTest, CompleteEnumeration) {
  // Every valid (antecedent, consequent) split above minconf must appear.
  std::vector<Transaction> txns = {
      {1, 2, 3}, {1, 2, 3}, {1, 2}, {2, 3}, {1, 3}, {1, 2, 3}};
  auto frequent = testutil::BruteForceFrequent(txns, 0.3, 4);
  auto rules = GenerateRules(frequent, txns.size(), 0.0);
  // Brute-force enumeration of all splits of all frequent itemsets.
  size_t expected = 0;
  for (const FrequentItemset& f : frequent) {
    if (f.items.size() < 2) continue;
    expected += (1u << f.items.size()) - 2;  // non-empty proper subsets
  }
  EXPECT_EQ(rules.size(), expected);
}

}  // namespace
}  // namespace qarm
