#include "mining/bridge.h"

#include <gtest/gtest.h>

#include "partition/mapper.h"
#include "table/datagen.h"
#include "testutil.h"

namespace qarm {
namespace {

using testutil::CatAttr;
using testutil::MakeMappedTable;
using testutil::QuantAttr;

MappedTable PeopleMapped() {
  // The Figure 2 mapping: NumCars raw (3 values), Married 2 values, Age in
  // 2 intervals (20..29, 30..39).
  Table people = MakePeopleTable();
  MapOptions options;
  options.num_intervals_override = 2;
  return MapTable(people, options).value();
}

TEST(BooleanEncodingTest, RoundTrip) {
  MappedTable table = PeopleMapped();
  BooleanEncoding encoding(table);
  // Domains: Age 2 intervals, Married 2 values, NumCars 2 intervals (its 3
  // distinct values exceed the 2-interval override, so it is partitioned
  // too) -> 6 boolean items.
  EXPECT_EQ(encoding.num_items(), 6u);
  for (size_t a = 0; a < table.num_attributes(); ++a) {
    for (int32_t v = 0;
         v < static_cast<int32_t>(table.attribute(a).domain_size()); ++v) {
      int32_t item = encoding.Encode(a, v);
      EXPECT_EQ(encoding.AttrOf(item), a);
      EXPECT_EQ(encoding.ValueOf(item), v);
    }
  }
}

TEST(ToTransactionsTest, OneItemPerAttribute) {
  MappedTable table = PeopleMapped();
  BooleanEncoding encoding(table);
  auto txns = ToTransactions(table, encoding);
  ASSERT_EQ(txns.size(), 5u);
  for (const Transaction& t : txns) {
    EXPECT_EQ(t.size(), 3u);
    for (size_t i = 1; i < t.size(); ++i) EXPECT_LT(t[i - 1], t[i]);
  }
}

TEST(BridgeTest, FindsFigure2Rule) {
  // The rule <NumCars: 0..1> => <Married: No> needs ranges and cannot be
  // found; but <Married: Yes> with <Age: 30..39> pairs exist. We check the
  // bridge finds the boolean-expressible rule
  // <Age: 30..39> => <Married: Yes> (records 400, 500).
  MappedTable table = PeopleMapped();
  BridgeResult result = MineViaBooleanBridge(table, 0.4, 0.9);
  BooleanEncoding encoding(table);
  bool found = false;
  for (const BooleanRule& rule : result.rules) {
    std::string s = BridgeRuleToString(rule, encoding, table);
    if (s.find("<Age: 34..38>") != std::string::npos &&
        s.find("=> <Married: Yes>") != std::string::npos) {
      found = true;
      EXPECT_DOUBLE_EQ(rule.confidence, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(BridgeTest, MinSupWoes) {
  // The "MinSup" problem of Section 1.1: with fine intervals, single-value
  // items lack support, so the bridge finds no rules over the quantitative
  // attribute while range combination would.
  std::vector<std::vector<int32_t>> rows;
  // x spreads uniformly over 10 values; y = "lo" iff x < 5.
  for (int32_t x = 0; x < 10; ++x) {
    for (int rep = 0; rep < 10; ++rep) {
      rows.push_back({x, x < 5 ? 0 : 1});
    }
  }
  MappedTable table = MakeMappedTable(
      {QuantAttr("x", 10), CatAttr("y", {"lo", "hi"})}, rows);
  // Each (x=v) item has 10% support; minsup 30% kills them all.
  BridgeResult result = MineViaBooleanBridge(table, 0.3, 0.5);
  for (const FrequentItemset& itemset : result.itemsets) {
    if (itemset.items.size() >= 2) {
      // No frequent pair involves x.
      BooleanEncoding encoding(table);
      for (int32_t item : itemset.items) {
        EXPECT_NE(encoding.AttrOf(item), 0u);
      }
    }
  }
}

TEST(BridgeTest, MatchesBruteForceOnSmallData) {
  MappedTable table = PeopleMapped();
  BooleanEncoding encoding(table);
  auto txns = ToTransactions(table, encoding);
  BridgeResult result = MineViaBooleanBridge(table, 0.4, 0.5);
  auto expected = testutil::BruteForceFrequent(txns, 0.4, 3);
  EXPECT_EQ(testutil::Sorted(result.itemsets), expected);
}

}  // namespace
}  // namespace qarm
