#include "mining/apriori.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "mining/basket_gen.h"
#include "testutil.h"

namespace qarm {
namespace {

using testutil::BruteForceFrequent;
using testutil::Sorted;

TEST(AprioriGenTest, JoinAndPrune) {
  // L2 = {1,2},{1,3},{1,4},{2,3}: join gives {1,2,3},{1,2,4},{1,3,4};
  // {1,2,4} is pruned ({2,4} not frequent), {1,3,4} pruned ({3,4} missing).
  std::vector<std::vector<int32_t>> l2 = {{1, 2}, {1, 3}, {1, 4}, {2, 3}};
  auto c3 = AprioriGen(l2);
  EXPECT_EQ(c3, (std::vector<std::vector<int32_t>>{{1, 2, 3}}));
}

TEST(AprioriGenTest, EmptyInput) {
  EXPECT_TRUE(AprioriGen({}).empty());
}

TEST(AprioriGenTest, SingleItems) {
  // L1 join: all pairs.
  std::vector<std::vector<int32_t>> l1 = {{1}, {2}, {5}};
  auto c2 = AprioriGen(l1);
  EXPECT_EQ(c2,
            (std::vector<std::vector<int32_t>>{{1, 2}, {1, 5}, {2, 5}}));
}

TEST(AprioriGenTest, NoJoinPartnersAcrossPrefixes) {
  std::vector<std::vector<int32_t>> l2 = {{1, 2}, {3, 4}};
  EXPECT_TRUE(AprioriGen(l2).empty());
}

TEST(AprioriMineTest, TextbookExample) {
  // Transactions from the AS94 running example.
  std::vector<Transaction> txns = {
      {1, 3, 4}, {2, 3, 5}, {1, 2, 3, 5}, {2, 5}};
  AprioriOptions options;
  options.minsup = 0.5;  // min count 2
  auto frequent = Sorted(AprioriMine(txns, options));

  std::vector<FrequentItemset> expected = {
      {{1}, 2}, {{2}, 3}, {{3}, 3}, {{5}, 3},
      {{1, 3}, 2}, {{2, 3}, 2}, {{2, 5}, 3}, {{3, 5}, 2},
      {{2, 3, 5}, 2}};
  EXPECT_EQ(frequent, Sorted(expected));
}

TEST(AprioriMineTest, EmptyTransactions) {
  EXPECT_TRUE(AprioriMine({}, AprioriOptions{}).empty());
}

TEST(AprioriMineTest, MinsupOneHundredPercent) {
  std::vector<Transaction> txns = {{1, 2}, {1, 2}, {1, 2, 3}};
  AprioriOptions options;
  options.minsup = 1.0;
  auto frequent = Sorted(AprioriMine(txns, options));
  std::vector<FrequentItemset> expected = {{{1}, 3}, {{2}, 3}, {{1, 2}, 3}};
  EXPECT_EQ(frequent, Sorted(expected));
}

TEST(AprioriMineTest, SupportCountsAreExact) {
  std::vector<Transaction> txns;
  for (int i = 0; i < 10; ++i) txns.push_back({1, 2});
  for (int i = 0; i < 5; ++i) txns.push_back({1});
  for (int i = 0; i < 5; ++i) txns.push_back({3});
  AprioriOptions options;
  options.minsup = 0.25;
  auto frequent = Sorted(AprioriMine(txns, options));
  std::vector<FrequentItemset> expected = {
      {{1}, 15}, {{2}, 10}, {{3}, 5}, {{1, 2}, 10}};
  EXPECT_EQ(frequent, Sorted(expected));
}

class AprioriRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(AprioriRandomTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  std::vector<Transaction> txns;
  for (int t = 0; t < 150; ++t) {
    Transaction txn;
    for (int32_t item = 0; item < 12; ++item) {
      if (rng.Bernoulli(0.3)) txn.push_back(item);
    }
    txns.push_back(std::move(txn));
  }
  AprioriOptions options;
  options.minsup = 0.15;
  options.leaf_capacity = 2;  // stress the hash tree
  options.fanout = 3;
  auto mined = Sorted(AprioriMine(txns, options));
  auto expected = BruteForceFrequent(txns, options.minsup, 12);
  EXPECT_EQ(mined, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AprioriRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(BasketGenTest, RespectsConfig) {
  BasketConfig config;
  config.num_transactions = 500;
  config.num_items = 50;
  config.avg_transaction_size = 6;
  auto txns = MakeBasketData(config);
  EXPECT_EQ(txns.size(), 500u);
  double total = 0;
  for (const Transaction& t : txns) {
    EXPECT_FALSE(t.empty());
    for (size_t i = 1; i < t.size(); ++i) EXPECT_LT(t[i - 1], t[i]);
    for (int32_t item : t) {
      EXPECT_GE(item, 0);
      EXPECT_LT(item, 50);
    }
    total += static_cast<double>(t.size());
  }
  // Duplicates are removed, so sizes land a bit under the configured mean.
  EXPECT_GT(total / 500.0, 2.0);
  EXPECT_LT(total / 500.0, 12.0);
}

TEST(BasketGenTest, Deterministic) {
  BasketConfig config;
  config.num_transactions = 100;
  auto a = MakeBasketData(config);
  auto b = MakeBasketData(config);
  EXPECT_EQ(a, b);
}

TEST(BasketGenTest, PatternsCreateFrequentItemsets) {
  BasketConfig config;
  config.num_transactions = 2000;
  config.num_items = 200;
  config.num_patterns = 5;
  config.pattern_probability = 0.8;
  auto txns = MakeBasketData(config);
  AprioriOptions options;
  options.minsup = 0.05;
  auto frequent = AprioriMine(txns, options);
  size_t pairs_or_larger = 0;
  for (const FrequentItemset& f : frequent) {
    if (f.items.size() >= 2) ++pairs_or_larger;
  }
  EXPECT_GT(pairs_or_larger, 0u);
}

}  // namespace
}  // namespace qarm
