// Shared helpers for QARM tests: small-table builders and brute-force
// reference implementations that mining components are checked against.
#ifndef QARM_TESTS_TESTUTIL_H_
#define QARM_TESTS_TESTUTIL_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/item.h"
#include "mining/apriori.h"
#include "partition/mapped_table.h"
#include "table/table.h"

namespace qarm {
namespace testutil {

// Brute-force support count of an itemset over a mapped table.
inline uint64_t BruteForceSupport(const MappedTable& table,
                                  const RangeItemset& itemset) {
  uint64_t count = 0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (RecordSupports(table.row(r), itemset)) ++count;
  }
  return count;
}

// Brute-force frequent itemsets over boolean transactions (reference for
// Apriori). Returns sorted itemsets with counts.
inline std::vector<FrequentItemset> BruteForceFrequent(
    const std::vector<Transaction>& transactions, double minsup,
    size_t max_size = 6) {
  std::set<int32_t> universe;
  for (const Transaction& t : transactions) {
    universe.insert(t.begin(), t.end());
  }
  std::vector<int32_t> items(universe.begin(), universe.end());
  uint64_t min_count = static_cast<uint64_t>(
      minsup * static_cast<double>(transactions.size()) + 0.9999999);
  if (min_count == 0) min_count = 1;

  std::vector<FrequentItemset> result;
  // Enumerate subsets level by level, extending only frequent ones.
  std::vector<std::vector<int32_t>> level;
  for (int32_t item : items) level.push_back({item});
  while (!level.empty() && level[0].size() <= max_size) {
    std::vector<std::vector<int32_t>> next;
    for (const std::vector<int32_t>& set : level) {
      uint64_t count = 0;
      for (const Transaction& t : transactions) {
        if (std::includes(t.begin(), t.end(), set.begin(), set.end())) {
          ++count;
        }
      }
      if (count >= min_count) {
        result.push_back(FrequentItemset{set, count});
        for (int32_t item : items) {
          if (item > set.back()) {
            std::vector<int32_t> extended = set;
            extended.push_back(item);
            next.push_back(std::move(extended));
          }
        }
      }
    }
    level = std::move(next);
  }
  std::sort(result.begin(), result.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
  return result;
}

// Builds a MappedTable directly (bypassing MapTable) from explicit data:
// attrs[i] describes attribute i, rows are mapped integer values.
inline MappedTable MakeMappedTable(
    std::vector<MappedAttribute> attrs,
    const std::vector<std::vector<int32_t>>& rows) {
  MappedTable table(std::move(attrs), rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    for (size_t a = 0; a < rows[r].size(); ++a) {
      table.set_value(r, a, rows[r][a]);
    }
  }
  return table;
}

// A quantitative mapped attribute whose mapped ids are the raw values
// 0..domain-1 (single-value intervals).
inline MappedAttribute QuantAttr(const std::string& name, int32_t domain) {
  MappedAttribute attr;
  attr.name = name;
  attr.kind = AttributeKind::kQuantitative;
  attr.source_type = ValueType::kInt64;
  attr.partitioned = false;
  for (int32_t v = 0; v < domain; ++v) {
    attr.intervals.push_back(
        Interval{static_cast<double>(v), static_cast<double>(v)});
  }
  return attr;
}

// A categorical mapped attribute with the given labels.
inline MappedAttribute CatAttr(const std::string& name,
                               std::vector<std::string> labels) {
  MappedAttribute attr;
  attr.name = name;
  attr.kind = AttributeKind::kCategorical;
  attr.source_type = ValueType::kString;
  attr.labels = std::move(labels);
  return attr;
}

// Sorts rule-free itemset collections for order-insensitive comparison.
inline std::vector<FrequentItemset> Sorted(std::vector<FrequentItemset> v) {
  std::sort(v.begin(), v.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
  return v;
}

}  // namespace testutil
}  // namespace qarm

#endif  // QARM_TESTS_TESTUTIL_H_
