#include "index/hash_tree.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace qarm {
namespace {

std::vector<int32_t> FoundSubsets(const HashTree& tree,
                                  const std::vector<int32_t>& transaction) {
  std::vector<int32_t> found;
  tree.ForEachSubset(transaction, [&](int32_t id) { found.push_back(id); });
  std::sort(found.begin(), found.end());
  return found;
}

TEST(HashTreeTest, SingleItemset) {
  HashTree tree;
  tree.Insert(std::vector<int32_t>{1, 3, 5}, 0);
  EXPECT_EQ(FoundSubsets(tree, {1, 2, 3, 4, 5}), (std::vector<int32_t>{0}));
  EXPECT_EQ(FoundSubsets(tree, {1, 3}), (std::vector<int32_t>{}));
  EXPECT_EQ(FoundSubsets(tree, {1, 3, 5}), (std::vector<int32_t>{0}));
}

TEST(HashTreeTest, EmptyItemsetMatchesEverything) {
  HashTree tree;
  tree.Insert(std::vector<int32_t>{}, 0);
  EXPECT_EQ(FoundSubsets(tree, {}), (std::vector<int32_t>{0}));
  EXPECT_EQ(FoundSubsets(tree, {4, 9}), (std::vector<int32_t>{0}));
}

TEST(HashTreeTest, DuplicateItemsetsDistinctIds) {
  HashTree tree;
  tree.Insert(std::vector<int32_t>{2, 4}, 0);
  tree.Insert(std::vector<int32_t>{2, 4}, 1);
  EXPECT_EQ(FoundSubsets(tree, {1, 2, 3, 4}), (std::vector<int32_t>{0, 1}));
}

TEST(HashTreeTest, NoDoubleReporting) {
  // A transaction with many items can reach the same leaf through several
  // paths; each contained itemset must be reported exactly once.
  HashTree tree(/*leaf_capacity=*/1, /*fanout=*/2);
  tree.Insert(std::vector<int32_t>{1, 2}, 0);
  tree.Insert(std::vector<int32_t>{1, 3}, 1);
  tree.Insert(std::vector<int32_t>{2, 3}, 2);
  std::vector<int32_t> count_per_id(3, 0);
  tree.ForEachSubset(std::vector<int32_t>{1, 2, 3, 4, 5, 6},
                     [&](int32_t id) { ++count_per_id[id]; });
  EXPECT_EQ(count_per_id, (std::vector<int32_t>{1, 1, 1}));
}

TEST(HashTreeTest, VariableLengthItemsets) {
  HashTree tree(/*leaf_capacity=*/2, /*fanout=*/4);
  tree.Insert(std::vector<int32_t>{7}, 0);
  tree.Insert(std::vector<int32_t>{7, 8}, 1);
  tree.Insert(std::vector<int32_t>{7, 8, 9}, 2);
  tree.Insert(std::vector<int32_t>{1}, 3);
  EXPECT_EQ(FoundSubsets(tree, {7, 8}), (std::vector<int32_t>{0, 1}));
  EXPECT_EQ(FoundSubsets(tree, {7, 8, 9}), (std::vector<int32_t>{0, 1, 2}));
  EXPECT_EQ(FoundSubsets(tree, {1, 7}), (std::vector<int32_t>{0, 3}));
}

TEST(HashTreeTest, SplittingPreservesResults) {
  // Force many splits with a tiny leaf capacity.
  HashTree tree(/*leaf_capacity=*/1, /*fanout=*/3);
  std::vector<std::vector<int32_t>> itemsets;
  for (int32_t a = 0; a < 6; ++a) {
    for (int32_t b = a + 1; b < 6; ++b) {
      itemsets.push_back({a, b});
    }
  }
  for (size_t i = 0; i < itemsets.size(); ++i) {
    tree.Insert(itemsets[i], static_cast<int32_t>(i));
  }
  // Transaction {0,2,4}: subsets are {0,2},{0,4},{2,4}.
  std::vector<int32_t> expected;
  for (size_t i = 0; i < itemsets.size(); ++i) {
    const auto& s = itemsets[i];
    std::vector<int32_t> t = {0, 2, 4};
    if (std::includes(t.begin(), t.end(), s.begin(), s.end())) {
      expected.push_back(static_cast<int32_t>(i));
    }
  }
  EXPECT_EQ(FoundSubsets(tree, {0, 2, 4}), expected);
}

class HashTreeRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(HashTreeRandomTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const int32_t universe = 30;
  HashTree tree(/*leaf_capacity=*/3, /*fanout=*/5);

  // Random itemsets of sizes 1..4.
  std::vector<std::vector<int32_t>> itemsets;
  for (int i = 0; i < 60; ++i) {
    std::set<int32_t> s;
    size_t size = static_cast<size_t>(rng.UniformInt(1, 4));
    while (s.size() < size) {
      s.insert(static_cast<int32_t>(rng.UniformInt(0, universe - 1)));
    }
    itemsets.emplace_back(s.begin(), s.end());
  }
  for (size_t i = 0; i < itemsets.size(); ++i) {
    tree.Insert(itemsets[i], static_cast<int32_t>(i));
  }

  for (int t = 0; t < 50; ++t) {
    std::set<int32_t> txn_set;
    size_t size = static_cast<size_t>(rng.UniformInt(0, 12));
    while (txn_set.size() < size) {
      txn_set.insert(static_cast<int32_t>(rng.UniformInt(0, universe - 1)));
    }
    std::vector<int32_t> txn(txn_set.begin(), txn_set.end());

    std::vector<int32_t> expected;
    for (size_t i = 0; i < itemsets.size(); ++i) {
      if (std::includes(txn.begin(), txn.end(), itemsets[i].begin(),
                        itemsets[i].end())) {
        expected.push_back(static_cast<int32_t>(i));
      }
    }
    EXPECT_EQ(FoundSubsets(tree, txn), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashTreeRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Freeze() flattens the pointer tree into a probe-friendly arena; the
// frozen probe must report exactly what the pointer walk reported.
TEST_P(HashTreeRandomTest, FrozenMatchesUnfrozen) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 100 + 7);
  const int32_t universe = 24;
  HashTree pointer_tree(/*leaf_capacity=*/2, /*fanout=*/3);
  HashTree frozen_tree(/*leaf_capacity=*/2, /*fanout=*/3);

  for (int i = 0; i < 50; ++i) {
    std::set<int32_t> s;
    size_t size = static_cast<size_t>(rng.UniformInt(1, 4));
    while (s.size() < size) {
      s.insert(static_cast<int32_t>(rng.UniformInt(0, universe - 1)));
    }
    std::vector<int32_t> itemset(s.begin(), s.end());
    pointer_tree.Insert(itemset, static_cast<int32_t>(i));
    frozen_tree.Insert(itemset, static_cast<int32_t>(i));
  }
  frozen_tree.Freeze();
  EXPECT_TRUE(frozen_tree.frozen());
  frozen_tree.Freeze();  // idempotent

  for (int t = 0; t < 40; ++t) {
    std::set<int32_t> txn_set;
    size_t size = static_cast<size_t>(rng.UniformInt(0, 10));
    while (txn_set.size() < size) {
      txn_set.insert(static_cast<int32_t>(rng.UniformInt(0, universe - 1)));
    }
    std::vector<int32_t> txn(txn_set.begin(), txn_set.end());
    EXPECT_EQ(FoundSubsets(frozen_tree, txn), FoundSubsets(pointer_tree, txn));
  }
}

TEST(HashTreeTest, FrozenEmptyAndSingleItemset) {
  HashTree empty;
  empty.Freeze();
  EXPECT_EQ(FoundSubsets(empty, {1, 2, 3}), (std::vector<int32_t>{}));

  HashTree tree;
  tree.Insert(std::vector<int32_t>{1, 3, 5}, 0);
  tree.Freeze();
  EXPECT_EQ(FoundSubsets(tree, {1, 2, 3, 4, 5}), (std::vector<int32_t>{0}));
  EXPECT_EQ(FoundSubsets(tree, {1, 3}), (std::vector<int32_t>{}));
}

TEST(HashTreeDeathTest, InsertAfterFreezeAborts) {
  HashTree tree;
  tree.Insert(std::vector<int32_t>{1, 2}, 0);
  tree.Freeze();
  EXPECT_DEATH(tree.Insert(std::vector<int32_t>{3, 4}, 1), "frozen");
}

}  // namespace
}  // namespace qarm
