#include "index/ndim_array.h"

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace qarm {
namespace {

TEST(IntRectTest, ContainsAndCellCount) {
  IntRect rect{{0, 2}, {3, 5}};
  int32_t inside[] = {2, 4};
  int32_t outside[] = {4, 4};
  EXPECT_TRUE(rect.Contains(inside));
  EXPECT_FALSE(rect.Contains(outside));
  EXPECT_EQ(rect.CellCount(), 16u);  // 4 x 4
}

TEST(NDimArrayTest, OneDimensional) {
  NDimArray array({10});
  int32_t p3 = 3, p7 = 7;
  array.Increment(&p3);
  array.Increment(&p3);
  array.Increment(&p7);
  EXPECT_EQ(array.CellAt(&p3), 2u);
  EXPECT_EQ(array.CountRect(IntRect{{0}, {9}}), 3u);
  EXPECT_EQ(array.CountRect(IntRect{{3}, {3}}), 2u);
  EXPECT_EQ(array.CountRect(IntRect{{4}, {9}}), 1u);
  EXPECT_EQ(array.CountRect(IntRect{{0}, {2}}), 0u);
}

TEST(NDimArrayTest, TwoDimensional) {
  NDimArray array({4, 4});
  for (int32_t x = 0; x < 4; ++x) {
    for (int32_t y = 0; y < 4; ++y) {
      int32_t p[] = {x, y};
      for (int i = 0; i <= x + y; ++i) array.Increment(p);
    }
  }
  // Cell (x,y) holds x+y+1; full grid total = sum = 16 + 2*sum(x)*4 = ...
  uint64_t expected_total = 0;
  for (int x = 0; x < 4; ++x) {
    for (int y = 0; y < 4; ++y) expected_total += x + y + 1;
  }
  EXPECT_EQ(array.CountRect(IntRect{{0, 0}, {3, 3}}), expected_total);
  EXPECT_EQ(array.CountRect(IntRect{{1, 1}, {2, 2}}), 3u + 4 + 4 + 5);
}

TEST(NDimArrayTest, ClipsOutOfRangeRect) {
  NDimArray array({5});
  int32_t p = 2;
  array.Increment(&p);
  EXPECT_EQ(array.CountRect(IntRect{{-10}, {100}}), 1u);
  EXPECT_EQ(array.CountRect(IntRect{{3}, {100}}), 0u);
}

TEST(NDimArrayTest, EmptyRectAfterClip) {
  NDimArray array({5});
  EXPECT_EQ(array.CountRect(IntRect{{7}, {9}}), 0u);
}

TEST(NDimArrayTest, EstimateBytes) {
  EXPECT_EQ(NDimArray::EstimateBytes({10}), 40u);
  EXPECT_EQ(NDimArray::EstimateBytes({10, 10}), 400u);
  // Overflow saturates.
  EXPECT_EQ(NDimArray::EstimateBytes({1 << 30, 1 << 30, 1 << 30}),
            std::numeric_limits<uint64_t>::max());
}

TEST(NDimArrayTest, PrefixSumsMatchSweep) {
  Rng rng(77);
  NDimArray sweep({6, 7, 5});
  NDimArray prefix({6, 7, 5});
  for (int i = 0; i < 500; ++i) {
    int32_t p[] = {static_cast<int32_t>(rng.UniformInt(0, 5)),
                   static_cast<int32_t>(rng.UniformInt(0, 6)),
                   static_cast<int32_t>(rng.UniformInt(0, 4))};
    sweep.Increment(p);
    prefix.Increment(p);
  }
  prefix.BuildPrefixSums();
  EXPECT_TRUE(prefix.prefix_sums_built());
  for (int trial = 0; trial < 200; ++trial) {
    IntRect rect;
    for (int32_t dim : {6, 7, 5}) {
      int32_t a = static_cast<int32_t>(rng.UniformInt(0, dim - 1));
      int32_t b = static_cast<int32_t>(rng.UniformInt(0, dim - 1));
      rect.lo.push_back(std::min(a, b));
      rect.hi.push_back(std::max(a, b));
    }
    EXPECT_EQ(prefix.CountRect(rect), sweep.CountRect(rect));
  }
}

TEST(NDimArrayTest, PrefixSumsOneDim) {
  NDimArray array({8});
  for (int32_t v = 0; v < 8; ++v) {
    for (int32_t i = 0; i <= v; ++i) array.Increment(&v);
  }
  array.BuildPrefixSums();
  EXPECT_EQ(array.CountRect(IntRect{{0}, {7}}), 36u);
  EXPECT_EQ(array.CountRect(IntRect{{3}, {5}}), 4u + 5 + 6);
  EXPECT_EQ(array.CountRect(IntRect{{7}, {7}}), 8u);
}

class NDimArrayRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(NDimArrayRandomTest, CountsMatchBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1000 + 13);
  std::vector<int32_t> dims = {5, 9, 4};
  NDimArray array(dims);
  std::vector<std::vector<int32_t>> points;
  for (int i = 0; i < 300; ++i) {
    std::vector<int32_t> p;
    for (int32_t d : dims) {
      p.push_back(static_cast<int32_t>(rng.UniformInt(0, d - 1)));
    }
    array.Increment(p.data());
    points.push_back(std::move(p));
  }
  if (GetParam() % 2 == 0) array.BuildPrefixSums();
  for (int trial = 0; trial < 100; ++trial) {
    IntRect rect;
    for (int32_t d : dims) {
      int32_t a = static_cast<int32_t>(rng.UniformInt(0, d - 1));
      int32_t b = static_cast<int32_t>(rng.UniformInt(0, d - 1));
      rect.lo.push_back(std::min(a, b));
      rect.hi.push_back(std::max(a, b));
    }
    uint64_t expected = 0;
    for (const auto& p : points) {
      if (rect.Contains(p.data())) ++expected;
    }
    EXPECT_EQ(array.CountRect(rect), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NDimArrayRandomTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// The batched collect path (CountRects, possibly AVX2-gathered for 1 and 2
// dimensions) against per-rectangle CountRect, including rectangles that
// poke outside the grid and must clip identically.
class NDimArrayCountRectsTest
    : public ::testing::TestWithParam<std::vector<int32_t>> {};

TEST_P(NDimArrayCountRectsTest, MatchesCountRect) {
  const std::vector<int32_t> dims = GetParam();
  Rng rng(static_cast<uint64_t>(dims.size()) * 31 + 5);
  NDimArray array(dims);
  for (int i = 0; i < 400; ++i) {
    std::vector<int32_t> p;
    for (int32_t d : dims) {
      p.push_back(static_cast<int32_t>(rng.UniformInt(0, d - 1)));
    }
    array.Increment(p.data());
  }
  array.BuildPrefixSums();

  // Batch sizes around the vector width, plus a big one.
  for (size_t num : {size_t{1}, size_t{7}, size_t{8}, size_t{9}, size_t{130}}) {
    std::vector<int32_t> los(dims.size() * num), his(dims.size() * num);
    std::vector<IntRect> rects(num);
    for (size_t m = 0; m < num; ++m) {
      for (size_t d = 0; d < dims.size(); ++d) {
        // Bounds deliberately range outside the grid on both sides.
        int32_t a = static_cast<int32_t>(rng.UniformInt(-3, dims[d] + 2));
        int32_t b = static_cast<int32_t>(rng.UniformInt(-3, dims[d] + 2));
        if (a > b) std::swap(a, b);
        los[d * num + m] = a;
        his[d * num + m] = b;
        rects[m].lo.push_back(a);
        rects[m].hi.push_back(b);
      }
    }
    std::vector<uint32_t> batched(num);
    array.CountRects(los.data(), his.data(), num, batched.data());
    for (size_t m = 0; m < num; ++m) {
      EXPECT_EQ(batched[m], array.CountRect(rects[m]))
          << "rect " << m << " of " << num;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dims, NDimArrayCountRectsTest,
    ::testing::Values(std::vector<int32_t>{40}, std::vector<int32_t>{9, 11},
                      std::vector<int32_t>{5, 4, 6}));

}  // namespace
}  // namespace qarm
