#include "index/rstar_tree.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace qarm {
namespace {

RStarRect Rect2(double x0, double x1, double y0, double y1) {
  return RStarRect::FromRanges({{x0, x1}, {y0, y1}});
}

std::vector<int32_t> Containing(const RStarTree& tree,
                                std::vector<double> point) {
  std::vector<int32_t> out;
  tree.ForEachContaining(point.data(),
                         [&](int32_t id) { out.push_back(id); });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(RStarTreeTest, EmptyTree) {
  RStarTree tree(2);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(Containing(tree, {0, 0}).empty());
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RStarTreeTest, SingleRect) {
  RStarTree tree(2);
  tree.Insert(Rect2(0, 10, 0, 10), 7);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(Containing(tree, {5, 5}), (std::vector<int32_t>{7}));
  EXPECT_EQ(Containing(tree, {5, 11}), (std::vector<int32_t>{}));
  // Boundary points are contained (closed rectangles).
  EXPECT_EQ(Containing(tree, {0, 0}), (std::vector<int32_t>{7}));
  EXPECT_EQ(Containing(tree, {10, 10}), (std::vector<int32_t>{7}));
}

TEST(RStarTreeTest, OverlappingRects) {
  RStarTree tree(1);
  tree.Insert(RStarRect::FromRanges({{0, 5}}), 0);
  tree.Insert(RStarRect::FromRanges({{3, 8}}), 1);
  tree.Insert(RStarRect::FromRanges({{7, 9}}), 2);
  EXPECT_EQ(Containing(tree, {4}), (std::vector<int32_t>{0, 1}));
  EXPECT_EQ(Containing(tree, {7.5}), (std::vector<int32_t>{1, 2}));
  EXPECT_EQ(Containing(tree, {10}), (std::vector<int32_t>{}));
}

TEST(RStarTreeTest, DuplicateRectsAllReported) {
  RStarTree tree(2);
  for (int32_t i = 0; i < 10; ++i) {
    tree.Insert(Rect2(0, 1, 0, 1), i);
  }
  EXPECT_EQ(Containing(tree, {0.5, 0.5}).size(), 10u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RStarTreeTest, GrowsBeyondOneNode) {
  RStarTree tree(2, /*max_entries=*/8);
  for (int32_t i = 0; i < 200; ++i) {
    double x = (i % 20) * 10.0;
    double y = (i / 20) * 10.0;
    tree.Insert(Rect2(x, x + 5, y, y + 5), i);
  }
  EXPECT_EQ(tree.size(), 200u);
  EXPECT_GT(tree.height(), 1u);
  EXPECT_TRUE(tree.CheckInvariants());
  // Point inside cell (3, 4): rect id 4*20+3 = 83.
  EXPECT_EQ(Containing(tree, {32.0, 42.0}), (std::vector<int32_t>{83}));
}

TEST(RStarTreeTest, CollectIntersecting) {
  RStarTree tree(2, 8);
  for (int32_t i = 0; i < 50; ++i) {
    double x = i * 2.0;
    tree.Insert(Rect2(x, x + 1, 0, 1), i);
  }
  std::vector<int32_t> out;
  tree.CollectIntersecting(Rect2(10, 20, 0, 1), &out);
  std::sort(out.begin(), out.end());
  // Rects with [x, x+1] overlapping [10,20]: x in {10,12,...,20} -> ids 5..10
  // plus id with x=9? x=9 isn't generated (x is even). ids 5..10.
  EXPECT_EQ(out, (std::vector<int32_t>{5, 6, 7, 8, 9, 10}));
}

class RStarRandomTest : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(RStarRandomTest, MatchesBruteForce) {
  const auto [seed, dims] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  RStarTree tree(static_cast<size_t>(dims), /*max_entries=*/8);
  std::vector<RStarRect> rects;

  for (int32_t i = 0; i < 400; ++i) {
    std::vector<std::pair<double, double>> ranges;
    for (int d = 0; d < dims; ++d) {
      double a = rng.UniformDouble(0, 100);
      double b = rng.UniformDouble(0, 100);
      ranges.push_back({std::min(a, b), std::max(a, b)});
    }
    RStarRect rect = RStarRect::FromRanges(ranges);
    rects.push_back(rect);
    tree.Insert(rect, i);
  }
  ASSERT_TRUE(tree.CheckInvariants());

  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> point;
    for (int d = 0; d < dims; ++d) {
      point.push_back(rng.UniformDouble(0, 100));
    }
    std::vector<int32_t> expected;
    for (size_t i = 0; i < rects.size(); ++i) {
      if (rects[i].ContainsPoint(point.data(), static_cast<size_t>(dims))) {
        expected.push_back(static_cast<int32_t>(i));
      }
    }
    EXPECT_EQ(Containing(tree, point), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDims, RStarRandomTest,
    ::testing::Values(std::make_pair(1, 1), std::make_pair(2, 2),
                      std::make_pair(3, 2), std::make_pair(4, 3),
                      std::make_pair(5, 4), std::make_pair(6, 5)));

TEST(RStarTreeTest, PointRectangles) {
  // Degenerate rectangles (points) must still be found.
  RStarTree tree(2, 8);
  for (int32_t i = 0; i < 100; ++i) {
    double x = i % 10, y = i / 10;
    tree.Insert(Rect2(x, x, y, y), i);
  }
  EXPECT_EQ(Containing(tree, {3.0, 7.0}), (std::vector<int32_t>{73}));
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(RStarTreeTest, SequentialInsertOrderStressesReinsertion) {
  // Sorted inserts trigger the forced-reinsert path repeatedly.
  RStarTree tree(1, 8);
  for (int32_t i = 0; i < 500; ++i) {
    tree.Insert(RStarRect::FromRanges({{double(i), double(i) + 0.5}}), i);
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(Containing(tree, {250.25}), (std::vector<int32_t>{250}));
}

TEST(RStarTreeTest, EstimateBytesScalesWithInput) {
  EXPECT_GT(RStarTree::EstimateBytes(1000, 3),
            RStarTree::EstimateBytes(100, 3));
  EXPECT_GT(RStarTree::EstimateBytes(100, 5),
            RStarTree::EstimateBytes(100, 2));
}

}  // namespace
}  // namespace qarm
