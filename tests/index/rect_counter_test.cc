#include "index/rect_counter.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace qarm {
namespace {

std::vector<IntRect> SampleRects(Rng* rng, const std::vector<int32_t>& dims,
                                 size_t count) {
  std::vector<IntRect> rects;
  for (size_t i = 0; i < count; ++i) {
    IntRect rect;
    for (int32_t d : dims) {
      int32_t a = static_cast<int32_t>(rng->UniformInt(0, d - 1));
      int32_t b = static_cast<int32_t>(rng->UniformInt(0, d - 1));
      rect.lo.push_back(std::min(a, b));
      rect.hi.push_back(std::max(a, b));
    }
    rects.push_back(std::move(rect));
  }
  return rects;
}

std::vector<std::vector<int32_t>> SamplePoints(
    Rng* rng, const std::vector<int32_t>& dims, size_t count) {
  std::vector<std::vector<int32_t>> points;
  for (size_t i = 0; i < count; ++i) {
    std::vector<int32_t> p;
    for (int32_t d : dims) {
      p.push_back(static_cast<int32_t>(rng->UniformInt(0, d - 1)));
    }
    points.push_back(std::move(p));
  }
  return points;
}

std::vector<uint64_t> BruteForceCounts(
    const std::vector<IntRect>& rects,
    const std::vector<std::vector<int32_t>>& points) {
  std::vector<uint64_t> counts(rects.size(), 0);
  for (const auto& p : points) {
    for (size_t i = 0; i < rects.size(); ++i) {
      if (rects[i].Contains(p.data())) ++counts[i];
    }
  }
  return counts;
}

TEST(RectCounterTest, ArrayEngineMatchesBruteForce) {
  Rng rng(1);
  std::vector<int32_t> dims = {8, 6};
  auto rects = SampleRects(&rng, dims, 40);
  auto points = SamplePoints(&rng, dims, 500);

  ArrayRectangleCounter counter(dims, rects);
  for (const auto& p : points) counter.ProcessPoint(p.data());
  counter.Finalize();
  std::vector<uint64_t> counts;
  counter.Collect(&counts);
  EXPECT_EQ(counts, BruteForceCounts(rects, points));
  EXPECT_STREQ(counter.name(), "ndim-array");
}

TEST(RectCounterTest, ArrayEngineWithoutPrefixSums) {
  Rng rng(2);
  std::vector<int32_t> dims = {5, 5, 5};
  auto rects = SampleRects(&rng, dims, 20);
  auto points = SamplePoints(&rng, dims, 300);

  ArrayRectangleCounter counter(dims, rects, /*use_prefix_sums=*/false);
  for (const auto& p : points) counter.ProcessPoint(p.data());
  counter.Finalize();
  std::vector<uint64_t> counts;
  counter.Collect(&counts);
  EXPECT_EQ(counts, BruteForceCounts(rects, points));
}

TEST(RectCounterTest, TreeEngineMatchesBruteForce) {
  Rng rng(3);
  std::vector<int32_t> dims = {10, 10, 10};
  auto rects = SampleRects(&rng, dims, 60);
  auto points = SamplePoints(&rng, dims, 400);

  RTreeRectangleCounter counter(dims.size(), rects);
  for (const auto& p : points) counter.ProcessPoint(p.data());
  counter.Finalize();
  std::vector<uint64_t> counts;
  counter.Collect(&counts);
  EXPECT_EQ(counts, BruteForceCounts(rects, points));
  EXPECT_STREQ(counter.name(), "rstar-tree");
}

TEST(RectCounterTest, EnginesAgree) {
  Rng rng(4);
  std::vector<int32_t> dims = {12, 9};
  auto rects = SampleRects(&rng, dims, 100);
  auto points = SamplePoints(&rng, dims, 1000);

  ArrayRectangleCounter array_counter(dims, rects);
  RTreeRectangleCounter tree_counter(dims.size(), rects);
  for (const auto& p : points) {
    array_counter.ProcessPoint(p.data());
    tree_counter.ProcessPoint(p.data());
  }
  array_counter.Finalize();
  tree_counter.Finalize();
  std::vector<uint64_t> a, b;
  array_counter.Collect(&a);
  tree_counter.Collect(&b);
  EXPECT_EQ(a, b);
}

TEST(ChooseCounterTest, SmallGridPrefersArray) {
  CounterChoice choice = ChooseCounter({10, 10}, 100, 1 << 20);
  EXPECT_TRUE(choice.use_array);
  EXPECT_EQ(choice.array_bytes, 400u);
}

TEST(ChooseCounterTest, HugeGridFallsBackToTree) {
  // 1000^4 cells would be 4e12 bytes; few rectangles -> tree wins.
  CounterChoice choice = ChooseCounter({1000, 1000, 1000, 1000}, 50, 1 << 20);
  EXPECT_FALSE(choice.use_array);
  EXPECT_LT(choice.tree_bytes, choice.array_bytes);
}

TEST(ChooseCounterTest, ArrayWinsWhenTreeWouldBeLarger) {
  // Tiny grid but millions of rectangles: the array is smaller even though
  // it exceeds the (absurdly small) budget.
  CounterChoice choice = ChooseCounter({100}, 10000000, 16);
  EXPECT_TRUE(choice.use_array);
}

TEST(MakeRectangleCounterTest, DispatchesOnHeuristic) {
  Rng rng(5);
  std::vector<int32_t> small_dims = {4, 4};
  auto rects = SampleRects(&rng, small_dims, 10);
  auto counter = MakeRectangleCounter(small_dims, rects, 1 << 20);
  EXPECT_STREQ(counter->name(), "ndim-array");

  std::vector<int32_t> big_dims = {2000, 2000, 2000};
  auto rects2 = SampleRects(&rng, big_dims, 10);
  auto counter2 = MakeRectangleCounter(big_dims, rects2, 1 << 20);
  EXPECT_STREQ(counter2->name(), "rstar-tree");
}

}  // namespace
}  // namespace qarm
