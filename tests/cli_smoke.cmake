# Writes the Figure 1 People table to CSV, mines it with the CLI in each
# output format, and checks a known rule appears.
file(WRITE "${WORK_DIR}/people.csv"
"Age,Married,NumCars\n23,No,1\n25,Yes,1\n29,No,0\n34,Yes,2\n38,Yes,2\n")
foreach(fmt text json csv)
  execute_process(
    COMMAND ${QARM} --input=${WORK_DIR}/people.csv
            --schema=Age:quant,Married:cat,NumCars:quant
            --minsup=0.4 --minconf=0.5 --maxsup=1.0 --intervals=4
            --format=${fmt}
    OUTPUT_VARIABLE out
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "qarm --format=${fmt} exited with ${rc}")
  endif()
  if(NOT out MATCHES "34\\.\\.38")
    message(FATAL_ERROR "expected an Age 34..38 rule in ${fmt} output")
  endif()
endforeach()
