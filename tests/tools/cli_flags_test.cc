// Strict CLI flag parsing: the argv -> MinerOptions path must reject every
// malformed numeric instead of silently taking strtod/strtoull defaults,
// and option-range defects must surface as InvalidArgument, never abort.
#include "tools/cli_flags.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace qarm {
namespace {

// ParseCliArgs over a brace-list of flag strings.
Result<CliFlags> Parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& a : args) argv.push_back(a.data());
  return ParseCliArgs(static_cast<int>(argv.size()), argv.data(), 0);
}

TEST(CliFlagsTest, ParsesValidFlags) {
  auto flags = Parse({"--input=data.csv", "--minsup=0.15", "--k=2.5",
                      "--threads=8", "--intervals=12", "--format=json"});
  ASSERT_TRUE(flags.ok()) << flags.status().ToString();
  EXPECT_EQ(flags->input, "data.csv");
  EXPECT_DOUBLE_EQ(flags->minsup, 0.15);
  EXPECT_DOUBLE_EQ(flags->k, 2.5);
  EXPECT_EQ(flags->threads, 8u);
  EXPECT_EQ(flags->intervals, 12u);
  EXPECT_EQ(flags->format, "json");
}

TEST(CliFlagsTest, RejectsNonNumericDouble) {
  // Pre-fix behaviour: strtod silently yielded 0.0 and --minsup=abc mined
  // with minsup 0 (or aborted downstream).
  auto flags = Parse({"--minsup=abc"});
  EXPECT_EQ(flags.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(flags.status().message().find("minsup"), std::string::npos);
}

TEST(CliFlagsTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(Parse({"--minconf=0.5x"}).ok());
  EXPECT_FALSE(Parse({"--threads=8 cores"}).ok());
  EXPECT_FALSE(Parse({"--k="}).ok());
}

TEST(CliFlagsTest, RejectsNonFiniteAndOutOfRange) {
  EXPECT_EQ(Parse({"--minsup=nan"}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse({"--interest=inf"}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Parse({"--maxsup=1e999"}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CliFlagsTest, RejectsNegativeAndOverflowingSizes) {
  EXPECT_FALSE(Parse({"--threads=-1"}).ok());
  EXPECT_FALSE(Parse({"--records=99999999999999999999"}).ok());
  EXPECT_FALSE(Parse({"--block-rows=0x10"}).ok());
}

TEST(CliFlagsTest, RejectsUnknownFlagMethodFormat) {
  EXPECT_FALSE(Parse({"--bogus=1"}).ok());
  EXPECT_FALSE(Parse({"--method=magic"}).ok());
  EXPECT_FALSE(Parse({"--format=xml"}).ok());
}

TEST(CliFlagsTest, OptionsFromFlagsValidatesRanges) {
  // --k=1.0 used to abort on QARM_CHECK_GT(k, 1.0); now InvalidArgument.
  auto flags = Parse({"--k=1.0"});
  ASSERT_TRUE(flags.ok());
  auto options = MinerOptionsFromFlags(*flags);
  EXPECT_EQ(options.status().code(), StatusCode::kInvalidArgument);

  flags = Parse({"--minsup=0.5"});  // default maxsup 0.4 < minsup
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(MinerOptionsFromFlags(*flags).status().code(),
            StatusCode::kInvalidArgument);

  flags = Parse({"--minsup=0.5", "--maxsup=0.6", "--method=width"});
  ASSERT_TRUE(flags.ok());
  options = MinerOptionsFromFlags(*flags);
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options->partition_method, PartitionMethod::kEquiWidth);
  EXPECT_DOUBLE_EQ(options->max_support, 0.6);
}

}  // namespace
}  // namespace qarm
