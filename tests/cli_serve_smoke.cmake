# End-to-end serving smoke: generate the financial dataset, mine it with
# --output-rules, inspect the QRS file with `qarm rules dump`, start
# `qarm serve` on a random (ephemeral) port, query /match /topk /rules
# /statz over real HTTP via the qarm_http_get helper, then stop the
# server with SIGTERM and require a clean shutdown line in its log.
set(SCHEMA "monthly_income:quant,credit_limit:quant,current_balance:quant,ytd_balance:quant,ytd_interest:quant:double,employee_category:cat,marital_status:cat")
set(DATA ${WORK_DIR}/serve_fin.csv)
set(RULES ${WORK_DIR}/serve_fin.qrs)
set(PORT_FILE ${WORK_DIR}/serve_port.txt)
set(PID_FILE ${WORK_DIR}/serve_pid.txt)
set(LOG_FILE ${WORK_DIR}/serve_smoke.log)

file(REMOVE ${PORT_FILE} ${PID_FILE} ${LOG_FILE})

execute_process(
  COMMAND ${QARM} gen --output=${DATA} --records=2000 --seed=17
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "qarm gen exited with ${rc}")
endif()

execute_process(
  COMMAND ${QARM} --input=${DATA} --schema=${SCHEMA}
          --minsup=0.3 --minconf=0.6 --k=3.0 --interest=1.1
          --output-rules=${RULES}
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "qarm mine --output-rules exited with ${rc}")
endif()
if(NOT EXISTS ${RULES})
  message(FATAL_ERROR "mine did not write ${RULES}")
endif()

# The dump subcommand shares the server's reader; its text output must
# list at least one rule, and the JSON form must carry the counters.
execute_process(
  COMMAND ${QARM} rules dump ${RULES}
  OUTPUT_VARIABLE dump_out
  ERROR_VARIABLE dump_err
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "qarm rules dump exited with ${rc}: ${dump_err}")
endif()
if(NOT dump_out MATCHES "=>")
  message(FATAL_ERROR "rules dump printed no rules:\n${dump_out}")
endif()
execute_process(
  COMMAND ${QARM} rules dump ${RULES} --format=json --min-conf=0.8
  OUTPUT_VARIABLE dump_json
  ERROR_QUIET
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0 OR NOT dump_json MATCHES "\"num_rules\":")
  message(FATAL_ERROR "rules dump --format=json failed (rc ${rc})")
endif()

# Launch the server detached (it self-stops after 60s as a backstop).
execute_process(
  COMMAND sh -c "'${QARM}' serve --rules='${RULES}' --port=0 \
--port-file='${PORT_FILE}' --serve-seconds=60 --serve-threads=2 \
--cache-mb=8 > '${LOG_FILE}' 2>&1 & echo $! > '${PID_FILE}'"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "failed to launch qarm serve (rc ${rc})")
endif()

# Wait (up to ~10s) for the atomically-written port file.
set(port "")
foreach(i RANGE 100)
  if(EXISTS ${PORT_FILE})
    file(READ ${PORT_FILE} port)
    string(STRIP "${port}" port)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(port STREQUAL "")
  file(READ ${LOG_FILE} serve_log)
  message(FATAL_ERROR "server never wrote its port file; log:\n${serve_log}")
endif()

function(http_check target pattern out_var)
  execute_process(
    COMMAND ${HTTP_GET} 127.0.0.1 ${port} ${target}
    OUTPUT_VARIABLE body
    ERROR_VARIABLE err
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "GET ${target} failed (rc ${rc}): ${err}")
  endif()
  if(NOT body MATCHES "${pattern}")
    message(FATAL_ERROR "GET ${target}: expected '${pattern}' in:\n${body}")
  endif()
  set(${out_var} "${body}" PARENT_SCOPE)
endfunction()

http_check("/healthz" "\"status\":\"ok\"" healthz)
http_check("/match?ytd_balance=500&ytd_interest=50&marital_status=single"
           "\"count\":" match_body)
http_check("/topk?metric=confidence&k=3" "\"rules\":\\[" topk_body)
http_check("/rules?limit=2" "\"total\":" rules_body)
# Repeat one query so /statz shows cache activity, then check counters.
http_check("/match?ytd_balance=500&ytd_interest=50&marital_status=single"
           "\"count\":" match_again)
if(NOT match_again STREQUAL match_body)
  message(FATAL_ERROR "cached /match response differs from the first")
endif()
http_check("/statz" "\"qps\":" statz_body)
if(NOT statz_body MATCHES "\"match\":2")
  message(FATAL_ERROR "/statz did not count both /match requests:\n${statz_body}")
endif()
if(NOT statz_body MATCHES "\"hits\":1")
  message(FATAL_ERROR "/statz shows no cache hit for the repeat:\n${statz_body}")
endif()
if(NOT statz_body MATCHES "\"index_bytes\":")
  message(FATAL_ERROR "/statz missing index stats:\n${statz_body}")
endif()

# Graceful shutdown: SIGTERM, then wait for the process to exit and the
# log to confirm.
execute_process(COMMAND sh -c "kill -TERM $(cat '${PID_FILE}')"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "could not signal the server (rc ${rc})")
endif()
set(stopped FALSE)
foreach(i RANGE 100)
  execute_process(COMMAND sh -c "kill -0 $(cat '${PID_FILE}') 2>/dev/null"
    RESULT_VARIABLE alive)
  if(NOT alive EQUAL 0)
    set(stopped TRUE)
    break()
  endif()
  execute_process(COMMAND ${CMAKE_COMMAND} -E sleep 0.1)
endforeach()
if(NOT stopped)
  execute_process(COMMAND sh -c "kill -KILL $(cat '${PID_FILE}')")
  message(FATAL_ERROR "server did not exit within 10s of SIGTERM")
endif()
file(READ ${LOG_FILE} serve_log)
if(NOT serve_log MATCHES "shut down cleanly")
  message(FATAL_ERROR "server log missing clean-shutdown line:\n${serve_log}")
endif()
