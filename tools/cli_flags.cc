#include "tools/cli_flags.h"

#include <cstring>

#include "common/string_util.h"

namespace qarm {
namespace {

const char kUsage[] =
    "qarm — quantitative association rule miner (Srikant & Agrawal, SIGMOD "
    "'96)\n\n"
    "mine (default command):\n"
    "  --input=FILE          CSV file (header row required)\n"
    "  --input-qbt=FILE      mine a converted QBT file, streaming its blocks\n"
    "                        (bounded memory; no --schema needed)\n"
    "  --schema=SPEC         comma list: NAME:quant[:int|:double] | NAME:cat\n"
    "  --minsup=F            minimum support fraction        (default 0.10)\n"
    "  --minconf=F           minimum confidence              (default 0.50)\n"
    "  --maxsup=F            range-combination cap           (default 0.40)\n"
    "  --k=F                 partial completeness level, > 1 (default 2.0)\n"
    "  --interest=F          interest level R; 0 = off       (default 0)\n"
    "  --intervals=N         override Eq.2 interval count    (default auto)\n"
    "  --threads=N           scan threads; 0 = all cores     (default 1)\n"
    "  --workers=N           worker processes for --input-qbt mining; each\n"
    "                        counts a contiguous block range, the merged\n"
    "                        rules are bit-identical to --workers=1\n"
    "                                                        (default 1)\n"
    "  --worker=HOST:PORT    repeatable: mine over TCP against running\n"
    "                        `qarm worker` servers instead of forking; one\n"
    "                        worker per endpoint, rules bit-identical to\n"
    "                        --workers=1 (each server needs the same QBT\n"
    "                        file; excludes --workers)\n"
    "  --block-rows=N        rows per in-memory scan block   (default 65536)\n"
    "  --method=depth|width|kmeans  partitioning method      (default depth)\n"
    "  --format=text|json|csv  output format                 (default text)\n"
    "  --checkpoint=FILE     write a resumable checkpoint at each pass\n"
    "                        boundary; a rerun with the same flags resumes\n"
    "                        from it (SIGINT also checkpoints before exit)\n"
    "  --checkpoint-every=N  checkpoint every Nth pass       (default 1)\n"
    "  --append              incremental mine: reuse the completed run's\n"
    "                        checkpoint as a base and scan only the QBT\n"
    "                        blocks appended since (needs --input-qbt and\n"
    "                        --checkpoint; rules are bit-identical to a\n"
    "                        full mine, and a fresh base checkpoint is\n"
    "                        left behind for the next append)\n"
    "  --interesting-only    print only interesting rules\n"
    "  --itemsets            also print frequent itemsets\n"
    "  --stats               print run statistics (incl. per-pass I/O)\n"
    "\n"
    "qarm convert — partition, map, and write a CSV as a QBT file:\n"
    "  --input=FILE --schema=SPEC --output=FILE.qbt\n"
    "  [--minsup --k --intervals --method]   partitioning (fixed at convert)\n"
    "  [--block-rows=N]                      rows per QBT block (default "
    "65536)\n"
    "\n"
    "qarm append — map new CSV rows under an existing QBT file's metadata\n"
    "and append them as new blocks (existing bytes are never rewritten):\n"
    "  --input=FILE.csv --schema=SPEC --output=FILE.qbt\n"
    "  (labels/intervals are frozen at convert time; a value outside the\n"
    "  existing domain is an error — re-convert to admit it)\n"
    "\n"
    "qarm gen — stream the synthetic financial dataset to CSV:\n"
    "  --output=FILE.csv --records=N [--seed=N]\n"
    "\n"
    "mine extras:\n"
    "  --output-rules=FILE.qrs  also write the mined rule set as a binary\n"
    "                        QRS file for `qarm serve` / `qarm rules dump`\n"
    "\n"
    "qarm worker — serve QBT shards to a remote `qarm mine --worker=...`\n"
    "coordinator over TCP (fault-tolerant protocol: versioned handshake,\n"
    "per-frame CRCs and deadlines, liveness heartbeats):\n"
    "  --listen=HOST:PORT    bind address (port 0 = ephemeral; required)\n"
    "  --input-qbt=FILE      the QBT file to serve (must byte-match the\n"
    "                        coordinator's — checked at handshake)\n"
    "  [--port-file=FILE]    write the bound port here once listening\n"
    "  [--serve-seconds=F]   stop after F seconds; 0 = run until SIGINT\n"
    "\n"
    "qarm serve — serve a mined rule set over HTTP:\n"
    "  --rules=FILE.qrs      rule set to load (required)\n"
    "  [--host=ADDR]         bind address                  (default "
    "127.0.0.1)\n"
    "  [--port=N]            port; 0 = ephemeral           (default 8080)\n"
    "  [--serve-threads=N]   HTTP server threads           (default 4)\n"
    "  [--cache-mb=N]        result-cache budget in MiB; 0 disables\n"
    "                                                      (default 64)\n"
    "  [--port-file=FILE]    write the bound port here once listening\n"
    "  [--serve-seconds=F]   stop after F seconds; 0 = run until SIGINT\n"
    "  endpoints: /match /topk /rules /statz /healthz\n"
    "\n"
    "qarm rules dump FILE.qrs — inspect a rule-set file:\n"
    "  [--format=text|json]  output format                 (default text)\n"
    "  [--min-conf=F]        only rules with confidence >= F\n"
    "  [--attr=NAME]         only rules mentioning the attribute\n"
    "  [--interesting-only]  only rules past the interest filter\n";

bool MatchFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

Status FlagError(const std::string& flag, const Status& cause) {
  return Status::InvalidArgument("bad --" + flag + ": " + cause.message());
}

}  // namespace

const char* CliUsage() { return kUsage; }

Result<double> ParseDoubleFlag(const std::string& flag,
                               const std::string& value) {
  Result<double> parsed = ParseDouble(value);
  if (!parsed.ok()) return FlagError(flag, parsed.status());
  return *parsed;
}

Result<size_t> ParseSizeFlag(const std::string& flag,
                             const std::string& value) {
  Result<uint64_t> parsed = ParseUint64(value);
  if (!parsed.ok()) return FlagError(flag, parsed.status());
  // size_t is 64-bit on every supported host (the storage layer already
  // requires one), so the cast cannot truncate.
  return static_cast<size_t>(*parsed);
}

Result<CliFlags> ParseCliArgs(int argc, char* const* argv, int first_arg) {
  CliFlags flags;
  for (int i = first_arg; i < argc; ++i) {
    std::string value;
    if (MatchFlag(argv[i], "input", &value)) {
      flags.input = value;
    } else if (MatchFlag(argv[i], "input-qbt", &value)) {
      flags.input_qbt = value;
    } else if (MatchFlag(argv[i], "output", &value)) {
      flags.output = value;
    } else if (MatchFlag(argv[i], "output-rules", &value)) {
      flags.output_rules = value;
    } else if (MatchFlag(argv[i], "rules", &value)) {
      flags.rules_file = value;
    } else if (MatchFlag(argv[i], "host", &value)) {
      flags.host = value;
    } else if (MatchFlag(argv[i], "port", &value)) {
      QARM_ASSIGN_OR_RETURN(flags.port, ParseSizeFlag("port", value));
      if (flags.port > 65535) {
        return Status::InvalidArgument("bad --port: " + value +
                                       " (max 65535)");
      }
    } else if (MatchFlag(argv[i], "serve-threads", &value)) {
      QARM_ASSIGN_OR_RETURN(flags.serve_threads,
                            ParseSizeFlag("serve-threads", value));
    } else if (MatchFlag(argv[i], "cache-mb", &value)) {
      QARM_ASSIGN_OR_RETURN(flags.cache_mb, ParseSizeFlag("cache-mb", value));
    } else if (MatchFlag(argv[i], "port-file", &value)) {
      flags.port_file = value;
    } else if (MatchFlag(argv[i], "serve-seconds", &value)) {
      QARM_ASSIGN_OR_RETURN(flags.serve_seconds,
                            ParseDoubleFlag("serve-seconds", value));
    } else if (MatchFlag(argv[i], "min-conf", &value)) {
      QARM_ASSIGN_OR_RETURN(flags.min_conf,
                            ParseDoubleFlag("min-conf", value));
    } else if (MatchFlag(argv[i], "attr", &value)) {
      flags.attr = value;
    } else if (MatchFlag(argv[i], "block-rows", &value)) {
      QARM_ASSIGN_OR_RETURN(flags.block_rows,
                            ParseSizeFlag("block-rows", value));
    } else if (MatchFlag(argv[i], "records", &value)) {
      QARM_ASSIGN_OR_RETURN(flags.records, ParseSizeFlag("records", value));
    } else if (MatchFlag(argv[i], "seed", &value)) {
      Result<uint64_t> seed = ParseUint64(value);
      if (!seed.ok()) return FlagError("seed", seed.status());
      flags.seed = *seed;
    } else if (MatchFlag(argv[i], "schema", &value)) {
      flags.schema = value;
    } else if (MatchFlag(argv[i], "minsup", &value)) {
      QARM_ASSIGN_OR_RETURN(flags.minsup, ParseDoubleFlag("minsup", value));
    } else if (MatchFlag(argv[i], "minconf", &value)) {
      QARM_ASSIGN_OR_RETURN(flags.minconf, ParseDoubleFlag("minconf", value));
    } else if (MatchFlag(argv[i], "maxsup", &value)) {
      QARM_ASSIGN_OR_RETURN(flags.maxsup, ParseDoubleFlag("maxsup", value));
    } else if (MatchFlag(argv[i], "k", &value)) {
      QARM_ASSIGN_OR_RETURN(flags.k, ParseDoubleFlag("k", value));
    } else if (MatchFlag(argv[i], "interest", &value)) {
      QARM_ASSIGN_OR_RETURN(flags.interest,
                            ParseDoubleFlag("interest", value));
    } else if (MatchFlag(argv[i], "intervals", &value)) {
      QARM_ASSIGN_OR_RETURN(flags.intervals,
                            ParseSizeFlag("intervals", value));
    } else if (MatchFlag(argv[i], "threads", &value)) {
      QARM_ASSIGN_OR_RETURN(flags.threads, ParseSizeFlag("threads", value));
    } else if (MatchFlag(argv[i], "workers", &value)) {
      QARM_ASSIGN_OR_RETURN(flags.workers, ParseSizeFlag("workers", value));
    } else if (MatchFlag(argv[i], "worker", &value)) {
      if (value.empty()) {
        return Status::InvalidArgument("bad --worker: empty endpoint");
      }
      flags.worker_endpoints.push_back(value);
    } else if (MatchFlag(argv[i], "listen", &value)) {
      flags.listen = value;
    } else if (MatchFlag(argv[i], "dist-timeout-ms", &value)) {
      // Hidden: per-frame TCP read/write deadline (tests shrink it).
      QARM_ASSIGN_OR_RETURN(flags.dist_timeout_ms,
                            ParseSizeFlag("dist-timeout-ms", value));
    } else if (MatchFlag(argv[i], "dist-heartbeat-ms", &value)) {
      // Hidden: worker liveness interval during long passes.
      QARM_ASSIGN_OR_RETURN(flags.dist_heartbeat_ms,
                            ParseSizeFlag("dist-heartbeat-ms", value));
    } else if (MatchFlag(argv[i], "dist-connect-attempts", &value)) {
      // Hidden: connect retry budget per endpoint.
      QARM_ASSIGN_OR_RETURN(flags.dist_connect_attempts,
                            ParseSizeFlag("dist-connect-attempts", value));
    } else if (MatchFlag(argv[i], "dist-connect-backoff-ms", &value)) {
      // Hidden: initial connect retry backoff.
      QARM_ASSIGN_OR_RETURN(
          flags.dist_connect_backoff_ms,
          ParseDoubleFlag("dist-connect-backoff-ms", value));
    } else if (MatchFlag(argv[i], "method", &value)) {
      if (value != "depth" && value != "width" && value != "kmeans") {
        return Status::InvalidArgument("unknown --method: " + value);
      }
      flags.method = value;
    } else if (MatchFlag(argv[i], "checkpoint", &value)) {
      flags.checkpoint = value;
    } else if (MatchFlag(argv[i], "checkpoint-every", &value)) {
      QARM_ASSIGN_OR_RETURN(flags.checkpoint_every,
                            ParseSizeFlag("checkpoint-every", value));
    } else if (MatchFlag(argv[i], "inject-faults", &value)) {
      // Hidden (absent from --help): deterministic I/O fault injection for
      // recovery testing. Spec grammar lives in storage/fault_injection.h.
      flags.inject_faults = value;
    } else if (MatchFlag(argv[i], "kill-after-pass", &value)) {
      // Hidden: raise SIGKILL right after pass N's checkpoint, simulating a
      // hard crash for the crash-resume smoke test.
      QARM_ASSIGN_OR_RETURN(flags.kill_after_pass,
                            ParseSizeFlag("kill-after-pass", value));
    } else if (MatchFlag(argv[i], "format", &value)) {
      if (value != "text" && value != "json" && value != "csv") {
        return Status::InvalidArgument("unknown --format: " + value);
      }
      flags.format = value;
    } else if (std::strcmp(argv[i], "--append") == 0) {
      flags.append = true;
    } else if (std::strcmp(argv[i], "--interesting-only") == 0) {
      flags.interesting_only = true;
    } else if (std::strcmp(argv[i], "--itemsets") == 0) {
      flags.show_itemsets = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      flags.show_stats = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      flags.help = true;
    } else if (argv[i][0] != '-') {
      // One bare argument, e.g. the file of `qarm rules dump FILE.qrs`.
      if (!flags.positional.empty()) {
        return Status::InvalidArgument(
            std::string("unexpected argument: ") + argv[i]);
      }
      flags.positional = argv[i];
    } else {
      return Status::InvalidArgument(std::string("unknown flag: ") + argv[i]);
    }
  }
  return flags;
}

Result<MinerOptions> MinerOptionsFromFlags(const CliFlags& flags) {
  MinerOptions options;
  options.minsup = flags.minsup;
  options.minconf = flags.minconf;
  options.max_support = flags.maxsup;
  options.partial_completeness = flags.k;
  options.interest_level = flags.interest;
  options.num_intervals_override = flags.intervals;
  options.num_threads = flags.threads;
  options.num_workers = flags.workers;
  options.worker_endpoints = flags.worker_endpoints;
  options.dist_io_timeout_ms = flags.dist_timeout_ms;
  options.dist_heartbeat_ms = flags.dist_heartbeat_ms;
  options.dist_connect_attempts = flags.dist_connect_attempts;
  options.dist_connect_backoff_ms = flags.dist_connect_backoff_ms;
  if (flags.block_rows > 0) options.stream_block_rows = flags.block_rows;
  if (flags.method == "width") {
    options.partition_method = PartitionMethod::kEquiWidth;
  } else if (flags.method == "kmeans") {
    options.partition_method = PartitionMethod::kKMeans;
  }
  options.checkpoint_path = flags.checkpoint;
  options.checkpoint_every_pass = flags.checkpoint_every;
  options.append_mode = flags.append;
  options.inject_faults_spec = flags.inject_faults;
  // --kill-after-pass stops mining cleanly after pass N (the checkpoint is
  // written first); the CLI then turns the stop into a real SIGKILL.
  options.stop_after_pass = flags.kill_after_pass;
  QARM_RETURN_NOT_OK(options.Validate());
  return options;
}

}  // namespace qarm
