// Command-line flag parsing for the qarm binary, split out of main() so the
// whole argv -> MinerOptions path is unit-testable and fuzzable. Parsing is
// strict: numeric flags go through ParseDoubleFlag/ParseSizeFlag, which
// reject non-numeric text, trailing garbage, signs on unsigned flags, and
// out-of-range magnitudes instead of silently taking strtod/strtoull
// defaults.
#ifndef QARM_TOOLS_CLI_FLAGS_H_
#define QARM_TOOLS_CLI_FLAGS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/options.h"

namespace qarm {

struct CliFlags {
  std::string input;
  std::string input_qbt;
  std::string output;
  std::string output_rules;  // mine: also write the rule set as QRS
  std::string schema;
  // serve / rules dump:
  std::string rules_file;          // --rules=FILE.qrs (or positional)
  std::string host = "127.0.0.1";  // serve bind address
  size_t port = 8080;              // serve port; 0 = ephemeral
  size_t serve_threads = 4;        // HTTP server threads
  size_t cache_mb = 64;            // result-cache budget; 0 disables
  std::string port_file;           // write the bound port here at startup
  double serve_seconds = 0;        // auto-stop after N seconds; 0 = run
  double min_conf = 0.0;           // rules dump filter
  std::string attr;                // rules dump / filter attribute name
  // One bare (non --flag) argument, e.g. `qarm rules dump FILE.qrs`.
  std::string positional;
  double minsup = 0.10;
  double minconf = 0.50;
  double maxsup = 0.40;
  double k = 2.0;
  double interest = 0.0;
  size_t intervals = 0;
  size_t threads = 1;
  size_t workers = 1;  // mine --input-qbt: worker processes (1 = in-process)
  // mine --input-qbt over TCP: remote `qarm worker` endpoints, one
  // --worker=HOST:PORT per endpoint (repeatable, order = worker ids).
  std::vector<std::string> worker_endpoints;
  std::string listen;  // qarm worker: HOST:PORT to listen on (port 0 ok)
  // Hidden TCP-mining tuning knobs (sane defaults; tests shrink them).
  size_t dist_timeout_ms = 30000;
  size_t dist_heartbeat_ms = 1000;
  size_t dist_connect_attempts = 10;
  double dist_connect_backoff_ms = 50.0;
  size_t block_rows = 0;  // 0 = default (writer: 64K; miner: option default)
  size_t records = 0;
  uint64_t seed = 42;
  std::string method = "depth";
  std::string format = "text";
  std::string checkpoint;        // pass-boundary checkpoint file; "" = off
  size_t checkpoint_every = 1;   // checkpoint every Nth completed pass
  std::string inject_faults;     // hidden: deterministic I/O fault spec
  size_t kill_after_pass = 0;    // hidden: raise SIGKILL after pass N
  bool append = false;  // mine --input-qbt incrementally vs the checkpoint
  bool interesting_only = false;
  bool show_itemsets = false;
  bool show_stats = false;
  bool help = false;
};

// The usage text printed by --help and appended to flag errors.
const char* CliUsage();

// Strict numeric flag values. `flag` names the flag in the error message.
Result<double> ParseDoubleFlag(const std::string& flag,
                               const std::string& value);
Result<size_t> ParseSizeFlag(const std::string& flag,
                             const std::string& value);

// Parses argv[first_arg..argc) into flags. Unknown flags, malformed
// numeric values, and unknown --method/--format names are InvalidArgument.
Result<CliFlags> ParseCliArgs(int argc, char* const* argv, int first_arg);

// Builds the MinerOptions the flags describe and validates them
// (MinerOptions::Validate), so --k=1, --minsup=0, or --maxsup < --minsup
// come back as InvalidArgument with the offending range in the message.
Result<MinerOptions> MinerOptionsFromFlags(const CliFlags& flags);

}  // namespace qarm

#endif  // QARM_TOOLS_CLI_FLAGS_H_
