// qarm_http_get — tiny HTTP GET helper for smoke scripts (the cmake -P
// runners have no portable HTTP client). Prints the response body to
// stdout; exit 0 only for a 200 response.
//
// Usage: qarm_http_get HOST PORT TARGET [TIMEOUT_MS]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/string_util.h"
#include "serve/http_client.h"

int main(int argc, char** argv) {
  if (argc < 4 || argc > 5) {
    std::fprintf(stderr,
                 "usage: qarm_http_get HOST PORT TARGET [TIMEOUT_MS]\n");
    return 2;
  }
  auto port = qarm::ParseUint64(argv[2]);
  if (!port.ok() || *port > 65535) {
    std::fprintf(stderr, "bad port: %s\n", argv[2]);
    return 2;
  }
  int timeout_ms = 5000;
  if (argc == 5) {
    auto t = qarm::ParseUint64(argv[4]);
    if (!t.ok()) {
      std::fprintf(stderr, "bad timeout: %s\n", argv[4]);
      return 2;
    }
    timeout_ms = static_cast<int>(*t);
  }
  auto response = qarm::HttpGet(argv[1], static_cast<uint16_t>(*port),
                                argv[3], timeout_ms);
  if (!response.ok()) {
    std::fprintf(stderr, "GET %s failed: %s\n", argv[3],
                 response.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", response->body.c_str());
  if (response->status != 200) {
    std::fprintf(stderr, "HTTP %d\n", response->status);
    return 1;
  }
  return 0;
}
