// qarm — command-line quantitative association rule miner.
//
// Usage:
//   qarm --input=data.csv --schema="Age:quant,Married:cat,NumCars:quant" ...
//        [--minsup=0.1] [--minconf=0.5] [--maxsup=0.4] [--k=2.0] ...
//        [--interest=0] [--intervals=0] [--method=depth|width] ...
//        [--interesting-only] [--itemsets] [--stats]
//
// The schema string names each CSV column in order and tags it
// "quant"/"quantitative" (numeric; parsed as double if it contains '.',
// int64 otherwise — controlled per column with ":quant:int" /
// ":quant:double") or "cat"/"categorical".
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/miner.h"
#include "core/report.h"
#include "core/rules.h"
#include "table/csv.h"

namespace qarm {
namespace {

struct CliFlags {
  std::string input;
  std::string schema;
  double minsup = 0.10;
  double minconf = 0.50;
  double maxsup = 0.40;
  double k = 2.0;
  double interest = 0.0;
  size_t intervals = 0;
  size_t threads = 1;
  std::string method = "depth";
  std::string format = "text";
  bool interesting_only = false;
  bool show_itemsets = false;
  bool show_stats = false;
  bool help = false;
};

const char kUsage[] =
    "qarm — quantitative association rule miner (Srikant & Agrawal, SIGMOD "
    "'96)\n\n"
    "  --input=FILE          CSV file (header row required)\n"
    "  --schema=SPEC         comma list: NAME:quant[:int|:double] | NAME:cat\n"
    "  --minsup=F            minimum support fraction        (default 0.10)\n"
    "  --minconf=F           minimum confidence              (default 0.50)\n"
    "  --maxsup=F            range-combination cap           (default 0.40)\n"
    "  --k=F                 partial completeness level      (default 2.0)\n"
    "  --interest=F          interest level R; 0 = off       (default 0)\n"
    "  --intervals=N         override Eq.2 interval count    (default auto)\n"
    "  --threads=N           scan threads; 0 = all cores     (default 1)\n"
    "  --method=depth|width|kmeans  partitioning method      (default depth)\n"
    "  --format=text|json|csv  output format                 (default text)\n"
    "  --interesting-only    print only interesting rules\n"
    "  --itemsets            also print frequent itemsets\n"
    "  --stats               print run statistics\n";

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

Result<CliFlags> ParseArgs(int argc, char** argv) {
  CliFlags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "input", &value)) {
      flags.input = value;
    } else if (ParseFlag(argv[i], "schema", &value)) {
      flags.schema = value;
    } else if (ParseFlag(argv[i], "minsup", &value)) {
      flags.minsup = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "minconf", &value)) {
      flags.minconf = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "maxsup", &value)) {
      flags.maxsup = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "k", &value)) {
      flags.k = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "interest", &value)) {
      flags.interest = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "intervals", &value)) {
      flags.intervals = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "threads", &value)) {
      flags.threads = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "method", &value)) {
      flags.method = value;
    } else if (ParseFlag(argv[i], "format", &value)) {
      flags.format = value;
    } else if (std::strcmp(argv[i], "--interesting-only") == 0) {
      flags.interesting_only = true;
    } else if (std::strcmp(argv[i], "--itemsets") == 0) {
      flags.show_itemsets = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      flags.show_stats = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      flags.help = true;
    } else {
      return Status::InvalidArgument(std::string("unknown flag: ") + argv[i]);
    }
  }
  return flags;
}

Result<Schema> ParseSchema(const std::string& spec) {
  std::vector<AttributeDef> defs;
  for (const std::string& field : Split(spec, ',')) {
    std::vector<std::string> parts = Split(field, ':');
    if (parts.size() < 2) {
      return Status::InvalidArgument("schema entry needs NAME:KIND: '" +
                                     field + "'");
    }
    AttributeDef def;
    def.name = std::string(StripWhitespace(parts[0]));
    std::string kind(StripWhitespace(parts[1]));
    if (kind == "quant" || kind == "quantitative") {
      def.kind = AttributeKind::kQuantitative;
      def.type = ValueType::kInt64;
      if (parts.size() > 2) {
        std::string type(StripWhitespace(parts[2]));
        if (type == "double") {
          def.type = ValueType::kDouble;
        } else if (type != "int") {
          return Status::InvalidArgument("unknown quantitative type: " + type);
        }
      }
    } else if (kind == "cat" || kind == "categorical") {
      def.kind = AttributeKind::kCategorical;
      def.type = ValueType::kString;
    } else {
      return Status::InvalidArgument("unknown attribute kind: " + kind);
    }
    defs.push_back(std::move(def));
  }
  return Schema::Make(std::move(defs));
}

int Run(int argc, char** argv) {
  auto flags_or = ParseArgs(argc, argv);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  const CliFlags& flags = *flags_or;
  if (flags.help || flags.input.empty() || flags.schema.empty()) {
    std::fprintf(flags.help ? stdout : stderr, "%s", kUsage);
    return flags.help ? 0 : 2;
  }

  auto schema = ParseSchema(flags.schema);
  if (!schema.ok()) {
    std::fprintf(stderr, "bad --schema: %s\n",
                 schema.status().ToString().c_str());
    return 2;
  }
  auto table = ReadCsv(flags.input, *schema);
  if (!table.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", flags.input.c_str(),
                 table.status().ToString().c_str());
    return 1;
  }

  MinerOptions options;
  options.minsup = flags.minsup;
  options.minconf = flags.minconf;
  options.max_support = flags.maxsup;
  options.partial_completeness = flags.k;
  options.interest_level = flags.interest;
  options.num_intervals_override = flags.intervals;
  options.num_threads = flags.threads;
  if (flags.method == "width") {
    options.partition_method = PartitionMethod::kEquiWidth;
  } else if (flags.method == "kmeans") {
    options.partition_method = PartitionMethod::kKMeans;
  } else if (flags.method != "depth") {
    std::fprintf(stderr, "unknown --method: %s\n", flags.method.c_str());
    return 2;
  }

  QuantitativeRuleMiner miner(options);
  Result<MiningResult> result = miner.Mine(*table);
  if (!result.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  if (flags.format == "json") {
    std::printf("%s\n",
                MiningResultToJson(*result, flags.interesting_only).c_str());
  } else if (flags.format == "csv") {
    std::vector<QuantRule> to_print;
    for (const QuantRule& rule : result->rules) {
      if (flags.interesting_only && !rule.interesting) continue;
      to_print.push_back(rule);
    }
    std::printf("%s", RulesToCsv(to_print, result->mapped).c_str());
  } else if (flags.format != "text") {
    std::fprintf(stderr, "unknown --format: %s\n", flags.format.c_str());
    return 2;
  }

  if (flags.format == "text" && flags.show_itemsets) {
    std::printf("# %zu frequent itemsets\n",
                result->frequent_itemsets.size());
    for (const FrequentRangeItemset& f : result->frequent_itemsets) {
      std::printf("%s  (support %.2f%%)\n",
                  ItemsetToString(f.items, result->mapped).c_str(),
                  f.support * 100);
    }
    std::printf("\n");
  }

  size_t printed = 0;
  for (const QuantRule& rule : result->rules) {
    if (flags.interesting_only && !rule.interesting) continue;
    if (flags.format == "text") {
      std::printf("%s%s\n", RuleToString(rule, result->mapped).c_str(),
                  flags.interest > 0 && rule.interesting ? "  [interesting]"
                                                         : "");
    }
    ++printed;
  }
  if (flags.show_stats) {
    const MiningStats& stats = result->stats;
    std::fprintf(stderr,
                 "# records=%zu items=%zu rules=%zu interesting=%zu "
                 "achievedK=%.2f time=%.3fs\n",
                 stats.num_records, stats.num_frequent_items, stats.num_rules,
                 stats.num_interesting_rules,
                 stats.achieved_partial_completeness, stats.total_seconds);
  }
  return printed > 0 ? 0 : 3;
}

}  // namespace
}  // namespace qarm

int main(int argc, char** argv) { return qarm::Run(argc, argv); }
