// qarm — command-line quantitative association rule miner.
//
// Usage:
//   qarm --input=data.csv --schema="Age:quant,Married:cat,NumCars:quant" ...
//        [--minsup=0.1] [--minconf=0.5] [--maxsup=0.4] [--k=2.0] ...
//        [--interest=0] [--intervals=0] [--method=depth|width] ...
//        [--interesting-only] [--itemsets] [--stats]
//   qarm --input-qbt=data.qbt ...       (mine a converted file, streaming)
//   qarm convert --input=data.csv --schema=SPEC --output=data.qbt ...
//   qarm gen --output=data.csv --records=N [--seed=N]
//
// The schema string names each CSV column in order and tags it
// "quant"/"quantitative" (numeric; parsed as double if it contains '.',
// int64 otherwise — controlled per column with ":quant:int" /
// ":quant:double") or "cat"/"categorical".
//
// `convert` partitions and integer-maps the CSV once (the partitioning
// flags --minsup/--k/--intervals/--method apply at convert time) and
// writes the binary columnar QBT file; mining it with --input-qbt streams
// the file block by block, so tables larger than RAM mine in bounded
// memory.
//
// Every input is untrusted: flag parsing, option validation, schema-spec
// parsing, the CSV reader, and the QBT reader all return Status instead of
// aborting, so a bad flag or a corrupt file always exits with a diagnostic
// (exit code 1 or 2), never a crash. cli_flags.{h,cc} holds the parsing so
// tests and the fuzz harnesses drive the same code path.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/miner.h"
#include "core/report.h"
#include "core/rules.h"
#include "partition/mapper.h"
#include "storage/qbt_writer.h"
#include "storage/record_source.h"
#include "table/csv.h"
#include "table/datagen.h"
#include "tools/cli_flags.h"

namespace qarm {
namespace {

// Set by the SIGINT handler and polled by the miner at pass boundaries, so
// Ctrl-C writes a final checkpoint and exits cleanly instead of losing the
// run. sig_atomic_t-free: std::atomic<bool> is lock-free on every supported
// host and safe to set from a signal handler.
std::atomic<bool> g_interrupted{false};

extern "C" void HandleSigint(int) { g_interrupted.store(true); }

// Prints a flag/validation error with a usage hint; exit code 2.
int UsageError(const Status& status) {
  std::fprintf(stderr, "%s\nRun 'qarm --help' for usage.\n",
               status.ToString().c_str());
  return 2;
}

// `qarm convert`: CSV -> partition/map -> QBT.
int RunConvert(const CliFlags& flags) {
  if (flags.input.empty() || flags.schema.empty() || flags.output.empty()) {
    std::fprintf(stderr,
                 "convert needs --input, --schema, and --output\n%s",
                 CliUsage());
    return 2;
  }
  auto options = MinerOptionsFromFlags(flags);
  if (!options.ok()) return UsageError(options.status());
  auto schema = Schema::Parse(flags.schema);
  if (!schema.ok()) {
    return UsageError(Status::InvalidArgument("bad --schema: " +
                                              schema.status().message()));
  }
  auto table = ReadCsv(flags.input, *schema);
  if (!table.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", flags.input.c_str(),
                 table.status().ToString().c_str());
    return 1;
  }
  MapOptions map_options;
  map_options.partial_completeness = options->partial_completeness;
  map_options.minsup = options->minsup;
  map_options.method = options->partition_method;
  map_options.num_intervals_override = options->num_intervals_override;
  auto mapped = MapTable(*table, map_options);
  if (!mapped.ok()) {
    std::fprintf(stderr, "cannot map %s: %s\n", flags.input.c_str(),
                 mapped.status().ToString().c_str());
    return 1;
  }
  QbtWriteOptions write_options;
  if (flags.block_rows > 0) {
    if (flags.block_rows > std::numeric_limits<uint32_t>::max()) {
      return UsageError(Status::InvalidArgument(StrFormat(
          "--block-rows=%zu exceeds the QBT per-block limit (%u)",
          flags.block_rows, std::numeric_limits<uint32_t>::max())));
    }
    write_options.rows_per_block = static_cast<uint32_t>(flags.block_rows);
  }
  QbtWriteInfo info;
  Status status = WriteQbt(*mapped, flags.output, write_options, &info);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", flags.output.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "# wrote %s: %llu rows, %llu blocks, %llu bytes\n",
               flags.output.c_str(),
               static_cast<unsigned long long>(info.num_rows),
               static_cast<unsigned long long>(info.num_blocks),
               static_cast<unsigned long long>(info.file_bytes));
  return 0;
}

// `qarm gen`: stream the synthetic financial dataset to CSV.
int RunGen(const CliFlags& flags) {
  if (flags.output.empty() || flags.records == 0) {
    std::fprintf(stderr, "gen needs --output and --records\n%s", CliUsage());
    return 2;
  }
  Status status =
      WriteFinancialDatasetCsv(flags.output, flags.records, flags.seed);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", flags.output.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "# wrote %s: %zu records (seed %llu)\n",
               flags.output.c_str(), flags.records,
               static_cast<unsigned long long>(flags.seed));
  return 0;
}

int Run(int argc, char** argv) {
  int first_arg = 1;
  std::string command;
  if (argc > 1 && argv[1][0] != '-') {
    command = argv[1];
    first_arg = 2;
  }
  auto flags_or = ParseCliArgs(argc, argv, first_arg);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().ToString().c_str(),
                 CliUsage());
    return 2;
  }
  const CliFlags& flags = *flags_or;
  if (flags.help) {
    std::printf("%s", CliUsage());
    return 0;
  }
  if (command == "convert") return RunConvert(flags);
  if (command == "gen") return RunGen(flags);
  if (!command.empty()) {
    std::fprintf(stderr, "unknown command: %s\n%s", command.c_str(),
                 CliUsage());
    return 2;
  }
  const bool csv_mode = !flags.input.empty() && !flags.schema.empty();
  const bool qbt_mode = !flags.input_qbt.empty();
  if (csv_mode == qbt_mode) {  // neither, or conflicting
    std::fprintf(stderr, "%s", CliUsage());
    return 2;
  }

  auto options = MinerOptionsFromFlags(flags);
  if (!options.ok()) return UsageError(options.status());
  if (!options->checkpoint_path.empty()) {
    options->cancel_flag = &g_interrupted;
    std::signal(SIGINT, HandleSigint);
  }
  QuantitativeRuleMiner miner(*options);

  Result<MiningResult> result = [&]() -> Result<MiningResult> {
    if (qbt_mode) {
      QARM_ASSIGN_OR_RETURN(std::unique_ptr<QbtFileSource> source,
                            QbtFileSource::Open(flags.input_qbt));
      return miner.MineStreamed(*source);
    }
    QARM_ASSIGN_OR_RETURN(Schema schema, Schema::Parse(flags.schema));
    QARM_ASSIGN_OR_RETURN(Table table, ReadCsv(flags.input, schema));
    return miner.Mine(table);
  }();
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kCancelled) {
      if (flags.kill_after_pass > 0) {
        // Crash simulation for the resume smoke test: the checkpoint for
        // the final completed pass is on disk; die without any cleanup.
        std::raise(SIGKILL);
      }
      std::fprintf(stderr, "interrupted: %s\n",
                   result.status().message().c_str());
      if (!flags.checkpoint.empty()) {
        std::fprintf(stderr, "rerun with the same flags to resume from %s\n",
                     flags.checkpoint.c_str());
      }
      return 130;  // 128 + SIGINT, the conventional Ctrl-C exit code
    }
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  if (flags.format == "json") {
    std::printf("%s\n",
                MiningResultToJson(*result, flags.interesting_only).c_str());
  } else if (flags.format == "csv") {
    std::vector<QuantRule> to_print;
    for (const QuantRule& rule : result->rules) {
      if (flags.interesting_only && !rule.interesting) continue;
      to_print.push_back(rule);
    }
    std::printf("%s", RulesToCsv(to_print, result->mapped).c_str());
  }

  if (flags.format == "text" && flags.show_itemsets) {
    std::printf("# %zu frequent itemsets\n",
                result->frequent_itemsets.size());
    for (const FrequentRangeItemset& f : result->frequent_itemsets) {
      std::printf("%s  (support %.2f%%)\n",
                  ItemsetToString(f.items, result->mapped).c_str(),
                  f.support * 100);
    }
    std::printf("\n");
  }

  size_t printed = 0;
  for (const QuantRule& rule : result->rules) {
    if (flags.interesting_only && !rule.interesting) continue;
    if (flags.format == "text") {
      std::printf("%s%s\n", RuleToString(rule, result->mapped).c_str(),
                  flags.interest > 0 && rule.interesting ? "  [interesting]"
                                                         : "");
    }
    ++printed;
  }
  if (flags.show_stats) {
    const MiningStats& stats = result->stats;
    std::fprintf(stderr,
                 "# records=%zu items=%zu rules=%zu interesting=%zu "
                 "achievedK=%.2f time=%.3fs\n",
                 stats.num_records, stats.num_frequent_items, stats.num_rules,
                 stats.num_interesting_rules,
                 stats.achieved_partial_completeness, stats.total_seconds);
    ScanIoStats io = stats.pass1_io;
    for (const PassStats& pass : stats.passes) io += pass.counting.io;
    if (io.blocks_read > 0) {
      std::fprintf(stderr,
                   "# io: blocks_read=%llu bytes_mapped=%llu "
                   "checksum=%.3fs (pass1 %llu blocks)\n",
                   static_cast<unsigned long long>(io.blocks_read),
                   static_cast<unsigned long long>(io.bytes_read),
                   io.checksum_seconds,
                   static_cast<unsigned long long>(
                       stats.pass1_io.blocks_read));
    }
    if (io.read_retries > 0 || io.faults_injected > 0) {
      std::fprintf(stderr, "# io-faults: injected=%llu retries=%llu\n",
                   static_cast<unsigned long long>(io.faults_injected),
                   static_cast<unsigned long long>(io.read_retries));
    }
    if (stats.checkpoint.enabled) {
      std::fprintf(stderr,
                   "# checkpoint: written=%zu resumed_passes=%zu "
                   "last_bytes=%llu write=%.3fs\n",
                   stats.checkpoint.checkpoints_written,
                   stats.checkpoint.resumed_passes,
                   static_cast<unsigned long long>(
                       stats.checkpoint.last_checkpoint_bytes),
                   stats.checkpoint.write_seconds);
    }
  }
  return printed > 0 ? 0 : 3;
}

}  // namespace
}  // namespace qarm

int main(int argc, char** argv) { return qarm::Run(argc, argv); }
