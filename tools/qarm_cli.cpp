// qarm — command-line quantitative association rule miner.
//
// Usage:
//   qarm --input=data.csv --schema="Age:quant,Married:cat,NumCars:quant" ...
//        [--minsup=0.1] [--minconf=0.5] [--maxsup=0.4] [--k=2.0] ...
//        [--interest=0] [--intervals=0] [--method=depth|width] ...
//        [--interesting-only] [--itemsets] [--stats]
//   qarm --input-qbt=data.qbt ...       (mine a converted file, streaming)
//   qarm convert --input=data.csv --schema=SPEC --output=data.qbt ...
//   qarm gen --output=data.csv --records=N [--seed=N]
//
// The schema string names each CSV column in order and tags it
// "quant"/"quantitative" (numeric; parsed as double if it contains '.',
// int64 otherwise — controlled per column with ":quant:int" /
// ":quant:double") or "cat"/"categorical".
//
// `convert` partitions and integer-maps the CSV once (the partitioning
// flags --minsup/--k/--intervals/--method apply at convert time) and
// writes the binary columnar QBT file; mining it with --input-qbt streams
// the file block by block, so tables larger than RAM mine in bounded
// memory.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/miner.h"
#include "core/report.h"
#include "core/rules.h"
#include "partition/mapper.h"
#include "storage/qbt_writer.h"
#include "storage/record_source.h"
#include "table/csv.h"
#include "table/datagen.h"

namespace qarm {
namespace {

struct CliFlags {
  std::string input;
  std::string input_qbt;
  std::string output;
  std::string schema;
  double minsup = 0.10;
  double minconf = 0.50;
  double maxsup = 0.40;
  double k = 2.0;
  double interest = 0.0;
  size_t intervals = 0;
  size_t threads = 1;
  size_t block_rows = 0;  // 0 = default (writer: 64K; miner: option default)
  size_t records = 0;
  uint64_t seed = 42;
  std::string method = "depth";
  std::string format = "text";
  bool interesting_only = false;
  bool show_itemsets = false;
  bool show_stats = false;
  bool help = false;
};

const char kUsage[] =
    "qarm — quantitative association rule miner (Srikant & Agrawal, SIGMOD "
    "'96)\n\n"
    "mine (default command):\n"
    "  --input=FILE          CSV file (header row required)\n"
    "  --input-qbt=FILE      mine a converted QBT file, streaming its blocks\n"
    "                        (bounded memory; no --schema needed)\n"
    "  --schema=SPEC         comma list: NAME:quant[:int|:double] | NAME:cat\n"
    "  --minsup=F            minimum support fraction        (default 0.10)\n"
    "  --minconf=F           minimum confidence              (default 0.50)\n"
    "  --maxsup=F            range-combination cap           (default 0.40)\n"
    "  --k=F                 partial completeness level      (default 2.0)\n"
    "  --interest=F          interest level R; 0 = off       (default 0)\n"
    "  --intervals=N         override Eq.2 interval count    (default auto)\n"
    "  --threads=N           scan threads; 0 = all cores     (default 1)\n"
    "  --block-rows=N        rows per in-memory scan block   (default 65536)\n"
    "  --method=depth|width|kmeans  partitioning method      (default depth)\n"
    "  --format=text|json|csv  output format                 (default text)\n"
    "  --interesting-only    print only interesting rules\n"
    "  --itemsets            also print frequent itemsets\n"
    "  --stats               print run statistics (incl. per-pass I/O)\n"
    "\n"
    "qarm convert — partition, map, and write a CSV as a QBT file:\n"
    "  --input=FILE --schema=SPEC --output=FILE.qbt\n"
    "  [--minsup --k --intervals --method]   partitioning (fixed at convert)\n"
    "  [--block-rows=N]                      rows per QBT block (default "
    "65536)\n"
    "\n"
    "qarm gen — stream the synthetic financial dataset to CSV:\n"
    "  --output=FILE.csv --records=N [--seed=N]\n";

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

Result<CliFlags> ParseArgs(int argc, char** argv, int first_arg) {
  CliFlags flags;
  for (int i = first_arg; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "input", &value)) {
      flags.input = value;
    } else if (ParseFlag(argv[i], "input-qbt", &value)) {
      flags.input_qbt = value;
    } else if (ParseFlag(argv[i], "output", &value)) {
      flags.output = value;
    } else if (ParseFlag(argv[i], "block-rows", &value)) {
      flags.block_rows = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "records", &value)) {
      flags.records = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "seed", &value)) {
      flags.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "schema", &value)) {
      flags.schema = value;
    } else if (ParseFlag(argv[i], "minsup", &value)) {
      flags.minsup = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "minconf", &value)) {
      flags.minconf = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "maxsup", &value)) {
      flags.maxsup = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "k", &value)) {
      flags.k = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "interest", &value)) {
      flags.interest = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(argv[i], "intervals", &value)) {
      flags.intervals = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "threads", &value)) {
      flags.threads = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "method", &value)) {
      flags.method = value;
    } else if (ParseFlag(argv[i], "format", &value)) {
      flags.format = value;
    } else if (std::strcmp(argv[i], "--interesting-only") == 0) {
      flags.interesting_only = true;
    } else if (std::strcmp(argv[i], "--itemsets") == 0) {
      flags.show_itemsets = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      flags.show_stats = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      flags.help = true;
    } else {
      return Status::InvalidArgument(std::string("unknown flag: ") + argv[i]);
    }
  }
  return flags;
}

Result<Schema> ParseSchema(const std::string& spec) {
  std::vector<AttributeDef> defs;
  for (const std::string& field : Split(spec, ',')) {
    std::vector<std::string> parts = Split(field, ':');
    if (parts.size() < 2) {
      return Status::InvalidArgument("schema entry needs NAME:KIND: '" +
                                     field + "'");
    }
    AttributeDef def;
    def.name = std::string(StripWhitespace(parts[0]));
    std::string kind(StripWhitespace(parts[1]));
    if (kind == "quant" || kind == "quantitative") {
      def.kind = AttributeKind::kQuantitative;
      def.type = ValueType::kInt64;
      if (parts.size() > 2) {
        std::string type(StripWhitespace(parts[2]));
        if (type == "double") {
          def.type = ValueType::kDouble;
        } else if (type != "int") {
          return Status::InvalidArgument("unknown quantitative type: " + type);
        }
      }
    } else if (kind == "cat" || kind == "categorical") {
      def.kind = AttributeKind::kCategorical;
      def.type = ValueType::kString;
    } else {
      return Status::InvalidArgument("unknown attribute kind: " + kind);
    }
    defs.push_back(std::move(def));
  }
  return Schema::Make(std::move(defs));
}

// Builds MinerOptions (mining) or the partitioning subset (convert) from
// the parsed flags. Returns false on an unknown --method.
bool FillOptions(const CliFlags& flags, MinerOptions* options) {
  options->minsup = flags.minsup;
  options->minconf = flags.minconf;
  options->max_support = flags.maxsup;
  options->partial_completeness = flags.k;
  options->interest_level = flags.interest;
  options->num_intervals_override = flags.intervals;
  options->num_threads = flags.threads;
  if (flags.block_rows > 0) options->stream_block_rows = flags.block_rows;
  if (flags.method == "width") {
    options->partition_method = PartitionMethod::kEquiWidth;
  } else if (flags.method == "kmeans") {
    options->partition_method = PartitionMethod::kKMeans;
  } else if (flags.method != "depth") {
    std::fprintf(stderr, "unknown --method: %s\n", flags.method.c_str());
    return false;
  }
  return true;
}

// `qarm convert`: CSV -> partition/map -> QBT.
int RunConvert(const CliFlags& flags) {
  if (flags.input.empty() || flags.schema.empty() || flags.output.empty()) {
    std::fprintf(stderr,
                 "convert needs --input, --schema, and --output\n%s", kUsage);
    return 2;
  }
  MinerOptions options;
  if (!FillOptions(flags, &options)) return 2;
  auto schema = ParseSchema(flags.schema);
  if (!schema.ok()) {
    std::fprintf(stderr, "bad --schema: %s\n",
                 schema.status().ToString().c_str());
    return 2;
  }
  auto table = ReadCsv(flags.input, *schema);
  if (!table.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", flags.input.c_str(),
                 table.status().ToString().c_str());
    return 1;
  }
  MapOptions map_options;
  map_options.partial_completeness = options.partial_completeness;
  map_options.minsup = options.minsup;
  map_options.method = options.partition_method;
  map_options.num_intervals_override = options.num_intervals_override;
  auto mapped = MapTable(*table, map_options);
  if (!mapped.ok()) {
    std::fprintf(stderr, "cannot map %s: %s\n", flags.input.c_str(),
                 mapped.status().ToString().c_str());
    return 1;
  }
  QbtWriteOptions write_options;
  if (flags.block_rows > 0) {
    write_options.rows_per_block = static_cast<uint32_t>(flags.block_rows);
  }
  QbtWriteInfo info;
  Status status = WriteQbt(*mapped, flags.output, write_options, &info);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", flags.output.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "# wrote %s: %llu rows, %llu blocks, %llu bytes\n",
               flags.output.c_str(),
               static_cast<unsigned long long>(info.num_rows),
               static_cast<unsigned long long>(info.num_blocks),
               static_cast<unsigned long long>(info.file_bytes));
  return 0;
}

// `qarm gen`: stream the synthetic financial dataset to CSV.
int RunGen(const CliFlags& flags) {
  if (flags.output.empty() || flags.records == 0) {
    std::fprintf(stderr, "gen needs --output and --records\n%s", kUsage);
    return 2;
  }
  Status status =
      WriteFinancialDatasetCsv(flags.output, flags.records, flags.seed);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", flags.output.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "# wrote %s: %zu records (seed %llu)\n",
               flags.output.c_str(), flags.records,
               static_cast<unsigned long long>(flags.seed));
  return 0;
}

int Run(int argc, char** argv) {
  int first_arg = 1;
  std::string command;
  if (argc > 1 && argv[1][0] != '-') {
    command = argv[1];
    first_arg = 2;
  }
  auto flags_or = ParseArgs(argc, argv, first_arg);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  const CliFlags& flags = *flags_or;
  if (flags.help) {
    std::printf("%s", kUsage);
    return 0;
  }
  if (command == "convert") return RunConvert(flags);
  if (command == "gen") return RunGen(flags);
  if (!command.empty()) {
    std::fprintf(stderr, "unknown command: %s\n%s", command.c_str(), kUsage);
    return 2;
  }
  const bool csv_mode = !flags.input.empty() && !flags.schema.empty();
  const bool qbt_mode = !flags.input_qbt.empty();
  if (csv_mode == qbt_mode) {  // neither, or conflicting
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  MinerOptions options;
  if (!FillOptions(flags, &options)) return 2;
  QuantitativeRuleMiner miner(options);

  Result<MiningResult> result = [&]() -> Result<MiningResult> {
    if (qbt_mode) {
      QARM_ASSIGN_OR_RETURN(std::unique_ptr<QbtFileSource> source,
                            QbtFileSource::Open(flags.input_qbt));
      return miner.MineStreamed(*source);
    }
    QARM_ASSIGN_OR_RETURN(Schema schema, ParseSchema(flags.schema));
    QARM_ASSIGN_OR_RETURN(Table table, ReadCsv(flags.input, schema));
    return miner.Mine(table);
  }();
  if (!result.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  if (flags.format == "json") {
    std::printf("%s\n",
                MiningResultToJson(*result, flags.interesting_only).c_str());
  } else if (flags.format == "csv") {
    std::vector<QuantRule> to_print;
    for (const QuantRule& rule : result->rules) {
      if (flags.interesting_only && !rule.interesting) continue;
      to_print.push_back(rule);
    }
    std::printf("%s", RulesToCsv(to_print, result->mapped).c_str());
  } else if (flags.format != "text") {
    std::fprintf(stderr, "unknown --format: %s\n", flags.format.c_str());
    return 2;
  }

  if (flags.format == "text" && flags.show_itemsets) {
    std::printf("# %zu frequent itemsets\n",
                result->frequent_itemsets.size());
    for (const FrequentRangeItemset& f : result->frequent_itemsets) {
      std::printf("%s  (support %.2f%%)\n",
                  ItemsetToString(f.items, result->mapped).c_str(),
                  f.support * 100);
    }
    std::printf("\n");
  }

  size_t printed = 0;
  for (const QuantRule& rule : result->rules) {
    if (flags.interesting_only && !rule.interesting) continue;
    if (flags.format == "text") {
      std::printf("%s%s\n", RuleToString(rule, result->mapped).c_str(),
                  flags.interest > 0 && rule.interesting ? "  [interesting]"
                                                         : "");
    }
    ++printed;
  }
  if (flags.show_stats) {
    const MiningStats& stats = result->stats;
    std::fprintf(stderr,
                 "# records=%zu items=%zu rules=%zu interesting=%zu "
                 "achievedK=%.2f time=%.3fs\n",
                 stats.num_records, stats.num_frequent_items, stats.num_rules,
                 stats.num_interesting_rules,
                 stats.achieved_partial_completeness, stats.total_seconds);
    ScanIoStats io = stats.pass1_io;
    for (const PassStats& pass : stats.passes) io += pass.counting.io;
    if (io.blocks_read > 0) {
      std::fprintf(stderr,
                   "# io: blocks_read=%llu bytes_mapped=%llu "
                   "checksum=%.3fs (pass1 %llu blocks)\n",
                   static_cast<unsigned long long>(io.blocks_read),
                   static_cast<unsigned long long>(io.bytes_read),
                   io.checksum_seconds,
                   static_cast<unsigned long long>(
                       stats.pass1_io.blocks_read));
    }
  }
  return printed > 0 ? 0 : 3;
}

}  // namespace
}  // namespace qarm

int main(int argc, char** argv) { return qarm::Run(argc, argv); }
