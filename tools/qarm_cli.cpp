// qarm — command-line quantitative association rule miner.
//
// Usage:
//   qarm --input=data.csv --schema="Age:quant,Married:cat,NumCars:quant" ...
//        [--minsup=0.1] [--minconf=0.5] [--maxsup=0.4] [--k=2.0] ...
//        [--interest=0] [--intervals=0] [--method=depth|width] ...
//        [--interesting-only] [--itemsets] [--stats]
//   qarm --input-qbt=data.qbt ...       (mine a converted file, streaming)
//   qarm convert --input=data.csv --schema=SPEC --output=data.qbt ...
//   qarm gen --output=data.csv --records=N [--seed=N]
//
// The schema string names each CSV column in order and tags it
// "quant"/"quantitative" (numeric; parsed as double if it contains '.',
// int64 otherwise — controlled per column with ":quant:int" /
// ":quant:double") or "cat"/"categorical".
//
// `convert` partitions and integer-maps the CSV once (the partitioning
// flags --minsup/--k/--intervals/--method apply at convert time) and
// writes the binary columnar QBT file; mining it with --input-qbt streams
// the file block by block, so tables larger than RAM mine in bounded
// memory.
//
// Every input is untrusted: flag parsing, option validation, schema-spec
// parsing, the CSV reader, and the QBT reader all return Status instead of
// aborting, so a bad flag or a corrupt file always exits with a diagnostic
// (exit code 1 or 2), never a crash. cli_flags.{h,cc} holds the parsing so
// tests and the fuzz harnesses drive the same code path.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "common/timer.h"
#include "core/incremental_miner.h"
#include "core/miner.h"
#include "core/report.h"
#include "core/rules.h"
#include "core/rules_export.h"
#include "dist/dist_miner.h"
#include "dist/worker_registry.h"
#include "dist/worker_server.h"
#include "partition/mapper.h"
#include "serve/http_server.h"
#include "serve/rule_catalog.h"
#include "serve/rule_service.h"
#include "storage/qbt_writer.h"
#include "storage/record_source.h"
#include "storage/rules_format.h"
#include "table/csv.h"
#include "table/datagen.h"
#include "tools/cli_flags.h"

namespace qarm {
namespace {

// Set by the SIGINT handler and polled by the miner at pass boundaries, so
// Ctrl-C writes a final checkpoint and exits cleanly instead of losing the
// run. sig_atomic_t-free: std::atomic<bool> is lock-free on every supported
// host and safe to set from a signal handler.
std::atomic<bool> g_interrupted{false};

extern "C" void HandleSigint(int) { g_interrupted.store(true); }

// Prints a flag/validation error with a usage hint; exit code 2.
int UsageError(const Status& status) {
  std::fprintf(stderr, "%s\nRun 'qarm --help' for usage.\n",
               status.ToString().c_str());
  return 2;
}

// `qarm convert`: CSV -> partition/map -> QBT.
int RunConvert(const CliFlags& flags) {
  if (flags.input.empty() || flags.schema.empty() || flags.output.empty()) {
    std::fprintf(stderr,
                 "convert needs --input, --schema, and --output\n%s",
                 CliUsage());
    return 2;
  }
  auto options = MinerOptionsFromFlags(flags);
  if (!options.ok()) return UsageError(options.status());
  auto schema = Schema::Parse(flags.schema);
  if (!schema.ok()) {
    return UsageError(Status::InvalidArgument("bad --schema: " +
                                              schema.status().message()));
  }
  auto table = ReadCsv(flags.input, *schema);
  if (!table.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", flags.input.c_str(),
                 table.status().ToString().c_str());
    return 1;
  }
  MapOptions map_options;
  map_options.partial_completeness = options->partial_completeness;
  map_options.minsup = options->minsup;
  map_options.method = options->partition_method;
  map_options.num_intervals_override = options->num_intervals_override;
  auto mapped = MapTable(*table, map_options);
  if (!mapped.ok()) {
    std::fprintf(stderr, "cannot map %s: %s\n", flags.input.c_str(),
                 mapped.status().ToString().c_str());
    return 1;
  }
  QbtWriteOptions write_options;
  if (flags.block_rows > 0) {
    if (flags.block_rows > std::numeric_limits<uint32_t>::max()) {
      return UsageError(Status::InvalidArgument(StrFormat(
          "--block-rows=%zu exceeds the QBT per-block limit (%u)",
          flags.block_rows, std::numeric_limits<uint32_t>::max())));
    }
    write_options.rows_per_block = static_cast<uint32_t>(flags.block_rows);
  }
  QbtWriteInfo info;
  Status status = WriteQbt(*mapped, flags.output, write_options, &info);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", flags.output.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "# wrote %s: %llu rows, %llu blocks, %llu bytes\n",
               flags.output.c_str(),
               static_cast<unsigned long long>(info.num_rows),
               static_cast<unsigned long long>(info.num_blocks),
               static_cast<unsigned long long>(info.file_bytes));
  return 0;
}

// `qarm append`: CSV -> map under the QBT file's frozen metadata -> new
// blocks appended to the file. Partitioning flags are ignored: the
// intervals and labels were fixed when the file was converted.
int RunAppend(const CliFlags& flags) {
  if (flags.input.empty() || flags.schema.empty() || flags.output.empty()) {
    std::fprintf(stderr, "append needs --input, --schema, and --output\n%s",
                 CliUsage());
    return 2;
  }
  auto schema = Schema::Parse(flags.schema);
  if (!schema.ok()) {
    return UsageError(Status::InvalidArgument("bad --schema: " +
                                              schema.status().message()));
  }
  auto table = ReadCsv(flags.input, *schema);
  if (!table.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", flags.input.c_str(),
                 table.status().ToString().c_str());
    return 1;
  }
  // Open the target for its attribute metadata (rolling back any
  // uncommitted bytes a crashed append left behind first).
  auto source = QbtFileSource::Open(flags.output);
  if (!source.ok()) {
    Status recovered = RecoverQbt(flags.output);
    if (recovered.ok()) source = QbtFileSource::Open(flags.output);
  }
  if (!source.ok()) {
    std::fprintf(stderr, "cannot open %s: %s\n", flags.output.c_str(),
                 source.status().ToString().c_str());
    return 1;
  }
  auto mapped = MapTableWithAttributes(*table, (*source)->attributes());
  if (!mapped.ok()) {
    std::fprintf(stderr, "cannot map %s under %s's metadata: %s\n",
                 flags.input.c_str(), flags.output.c_str(),
                 mapped.status().ToString().c_str());
    return 1;
  }
  source->reset();  // AppendQbt re-opens the file itself
  QbtAppendInfo info;
  Status status = AppendQbt(*mapped, flags.output, &info);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot append to %s: %s\n", flags.output.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "# appended %llu rows (%llu blocks) to %s: now %llu rows, "
               "%llu blocks, %llu bytes\n",
               static_cast<unsigned long long>(info.rows_appended),
               static_cast<unsigned long long>(info.blocks_appended),
               flags.output.c_str(),
               static_cast<unsigned long long>(info.total_rows),
               static_cast<unsigned long long>(info.total_blocks),
               static_cast<unsigned long long>(info.file_bytes));
  return 0;
}

// `qarm gen`: stream the synthetic financial dataset to CSV.
int RunGen(const CliFlags& flags) {
  if (flags.output.empty() || flags.records == 0) {
    std::fprintf(stderr, "gen needs --output and --records\n%s", CliUsage());
    return 2;
  }
  Status status =
      WriteFinancialDatasetCsv(flags.output, flags.records, flags.seed);
  if (!status.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", flags.output.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "# wrote %s: %zu records (seed %llu)\n",
               flags.output.c_str(), flags.records,
               static_cast<unsigned long long>(flags.seed));
  return 0;
}

// Writes the bound port to `path` atomically (temp + rename), so a smoke
// script polling for the file never reads a half-written value.
Status WritePortFile(const std::string& path, uint16_t port) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot write " + tmp);
  }
  std::fprintf(f, "%u\n", port);
  std::fclose(f);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

// One rule as display text: "Age[20..29] AND Married=Yes => NumCars[0..2]
// (conf 71.2%, sup 12.3%, lift 1.35, count 123)".
std::string StoredRuleToText(const StoredRule& rule,
                             const std::vector<MappedAttribute>& attrs) {
  auto side_text = [&](const std::vector<StoredItem>& side) {
    std::string out;
    for (size_t i = 0; i < side.size(); ++i) {
      if (i > 0) out += " AND ";
      const StoredItem& item = side[i];
      const MappedAttribute& attr = attrs[static_cast<size_t>(item.attr)];
      if (attr.kind == AttributeKind::kQuantitative) {
        out += attr.name + "[" + attr.DecodeRange(item.lo, item.hi) + "]";
      } else {
        out += attr.name + "=" + attr.DecodeRange(item.lo, item.hi);
      }
    }
    return out;
  };
  std::string out = side_text(rule.antecedent);
  out += " => ";
  out += side_text(rule.consequent);
  out += StrFormat(" (conf %.1f%%, sup %.1f%%", rule.confidence * 100,
                   rule.support * 100);
  if (rule.lift > 0) out += StrFormat(", lift %.2f", rule.lift);
  out += StrFormat(", count %llu)",
                   static_cast<unsigned long long>(rule.count));
  if (rule.interesting) out += "  [interesting]";
  return out;
}

// `qarm rules dump FILE.qrs`: inspect a rule-set file with the same
// reader, filters, and JSON renderer the server uses.
int RunRulesDump(const CliFlags& flags) {
  const std::string path =
      !flags.positional.empty() ? flags.positional : flags.rules_file;
  if (path.empty()) {
    std::fprintf(stderr, "rules dump needs a FILE.qrs argument\n%s",
                 CliUsage());
    return 2;
  }
  auto catalog = RuleCatalog::Load(path);
  if (!catalog.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                 catalog.status().ToString().c_str());
    return 1;
  }
  BrowseFilter filter;
  filter.min_confidence = flags.min_conf;
  filter.interesting_only = flags.interesting_only;
  if (!flags.attr.empty()) {
    auto attr = (*catalog)->AttributeIndex(flags.attr);
    if (!attr.ok()) {
      std::fprintf(stderr, "%s\n", attr.status().ToString().c_str());
      return 1;
    }
    filter.attr = *attr;
  }
  size_t total = 0;
  const std::vector<uint32_t> selected = (*catalog)->Browse(
      filter, 0, std::numeric_limits<size_t>::max(), &total);
  if (flags.format == "json") {
    RuleServiceOptions service_options;
    service_options.cache_bytes = 0;
    RuleService service(*catalog, service_options);
    std::printf("{\"file\":\"%s\",\"num_rules\":%zu,\"selected\":%zu,"
                "\"rules\":[",
                path.c_str(), (*catalog)->rules().size(), total);
    for (size_t i = 0; i < selected.size(); ++i) {
      std::printf("%s%s", i > 0 ? "," : "",
                  service.RuleToJson(selected[i]).c_str());
    }
    std::printf("]}\n");
  } else {
    std::fprintf(stderr,
                 "# %s: %zu rules over %zu attributes, %llu records "
                 "(minsup %.3f, minconf %.3f); showing %zu\n",
                 path.c_str(), (*catalog)->rules().size(),
                 (*catalog)->attributes().size(),
                 static_cast<unsigned long long>((*catalog)->num_records()),
                 (*catalog)->minsup(), (*catalog)->minconf(), total);
    for (uint32_t rule_id : selected) {
      std::printf("%s\n",
                  StoredRuleToText((*catalog)->rules()[rule_id],
                                   (*catalog)->attributes())
                      .c_str());
    }
  }
  return 0;
}

// `qarm worker`: serve QBT shards to a remote mining coordinator until
// SIGINT (or --serve-seconds elapses).
int RunWorker(const CliFlags& flags) {
  if (flags.listen.empty() || flags.input_qbt.empty()) {
    std::fprintf(stderr, "worker needs --listen=HOST:PORT and --input-qbt\n%s",
                 CliUsage());
    return 2;
  }
  auto endpoint = ParseWorkerEndpoint(flags.listen);
  if (!endpoint.ok() && flags.listen.rfind(':') != std::string::npos &&
      flags.listen.substr(flags.listen.rfind(':') + 1) == "0") {
    // ParseWorkerEndpoint rejects port 0 (a *target* needs a real port),
    // but a listener may bind ephemerally.
    WorkerEndpoint e;
    e.host = flags.listen.substr(0, flags.listen.rfind(':'));
    e.port = 0;
    e.text = flags.listen;
    endpoint = e;
  }
  if (!endpoint.ok()) return UsageError(endpoint.status());

  WorkerServerOptions options;
  options.host = endpoint->host;
  options.port = endpoint->port;
  options.qbt_path = flags.input_qbt;
  auto server = WorkerServer::Start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "cannot start worker: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "# worker serving %s on %s:%u\n",
               flags.input_qbt.c_str(), endpoint->host.c_str(),
               (*server)->port());
  if (!flags.port_file.empty()) {
    Status status = WritePortFile(flags.port_file, (*server)->port());
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  std::signal(SIGINT, HandleSigint);
  std::signal(SIGTERM, HandleSigint);
  Timer uptime;
  while (!g_interrupted.load()) {
    if (flags.serve_seconds > 0 &&
        uptime.ElapsedSeconds() >= flags.serve_seconds) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  (*server)->Stop();
  std::fprintf(stderr,
               "# worker served %llu sessions in %.1fs; shut down cleanly\n",
               static_cast<unsigned long long>((*server)->sessions_served()),
               uptime.ElapsedSeconds());
  return 0;
}

// `qarm serve`: load a QRS file and serve it over HTTP until SIGINT (or
// --serve-seconds elapses).
int RunServe(const CliFlags& flags) {
  const std::string path =
      !flags.rules_file.empty() ? flags.rules_file : flags.positional;
  if (path.empty()) {
    std::fprintf(stderr, "serve needs --rules=FILE.qrs\n%s", CliUsage());
    return 2;
  }
  Timer load_timer;
  auto catalog = RuleCatalog::Load(path);
  if (!catalog.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                 catalog.status().ToString().c_str());
    return 1;
  }
  const RuleCatalogStats& stats = (*catalog)->stats();
  std::fprintf(stderr,
               "# loaded %s: %zu rules, %zu attributes, %zu index entries "
               "(%zu KiB) in %.3fs\n",
               path.c_str(), stats.num_rules, stats.num_attributes,
               stats.interval_entries, stats.index_bytes / 1024,
               load_timer.ElapsedSeconds());

  RuleServiceOptions service_options;
  service_options.cache_bytes = flags.cache_mb * size_t{1024} * 1024;
  auto service =
      std::make_shared<RuleService>(*catalog, service_options);

  HttpServerOptions server_options;
  server_options.host = flags.host;
  server_options.port = static_cast<uint16_t>(flags.port);
  server_options.num_threads = flags.serve_threads == 0
                                   ? 1
                                   : flags.serve_threads;
  auto server = HttpServer::Start(
      server_options,
      [service](const HttpRequest& request) {
        return service->Handle(request);
      });
  if (!server.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "# listening on http://%s:%u (threads=%zu cache=%zu "
               "MiB)\n",
               flags.host.c_str(), (*server)->port(),
               server_options.num_threads, flags.cache_mb);
  if (!flags.port_file.empty()) {
    Status status = WritePortFile(flags.port_file, (*server)->port());
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }

  std::signal(SIGINT, HandleSigint);
  std::signal(SIGTERM, HandleSigint);
  Timer uptime;
  while (!g_interrupted.load()) {
    if (flags.serve_seconds > 0 &&
        uptime.ElapsedSeconds() >= flags.serve_seconds) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  (*server)->Stop();
  std::fprintf(stderr, "# served %llu connections in %.1fs; shut down "
               "cleanly\n",
               static_cast<unsigned long long>(
                   (*server)->connections_accepted()),
               uptime.ElapsedSeconds());
  return 0;
}

int Run(int argc, char** argv) {
  int first_arg = 1;
  std::string command;
  if (argc > 1 && argv[1][0] != '-') {
    command = argv[1];
    first_arg = 2;
  }
  // `qarm rules dump ...` is a two-word command.
  if (command == "rules" && argc > 2 &&
      std::string(argv[2]) == "dump") {
    command = "rules dump";
    first_arg = 3;
  }
  auto flags_or = ParseCliArgs(argc, argv, first_arg);
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().ToString().c_str(),
                 CliUsage());
    return 2;
  }
  const CliFlags& flags = *flags_or;
  if (flags.help) {
    std::printf("%s", CliUsage());
    return 0;
  }
  if (command == "convert") return RunConvert(flags);
  if (command == "append") return RunAppend(flags);
  if (command == "gen") return RunGen(flags);
  if (command == "worker") return RunWorker(flags);
  if (command == "serve") return RunServe(flags);
  if (command == "rules dump") return RunRulesDump(flags);
  if (!command.empty()) {
    std::fprintf(stderr, "unknown command: %s\n%s", command.c_str(),
                 CliUsage());
    return 2;
  }
  const bool csv_mode = !flags.input.empty() && !flags.schema.empty();
  const bool qbt_mode = !flags.input_qbt.empty();
  if (csv_mode == qbt_mode) {  // neither, or conflicting
    std::fprintf(stderr, "%s", CliUsage());
    return 2;
  }
  if (flags.workers > 1 && !qbt_mode) {
    std::fprintf(stderr,
                 "--workers needs --input-qbt (workers shard QBT blocks)\n");
    return 2;
  }
  if (!flags.worker_endpoints.empty() && !qbt_mode) {
    std::fprintf(stderr,
                 "--worker=HOST:PORT needs --input-qbt (remote workers "
                 "shard QBT blocks)\n");
    return 2;
  }
  if (!flags.worker_endpoints.empty() && flags.append) {
    std::fprintf(stderr,
                 "--worker=HOST:PORT does not combine with --append yet; "
                 "use forked --workers for incremental runs\n");
    return 2;
  }
  if (flags.append && !qbt_mode) {
    std::fprintf(stderr,
                 "--append needs --input-qbt (incremental mining works "
                 "over appended QBT blocks)\n");
    return 2;
  }
  if (flags.append && flags.checkpoint.empty()) {
    std::fprintf(stderr,
                 "--append needs --checkpoint (the completed run's "
                 "checkpoint is the incremental base)\n");
    return 2;
  }

  auto options = MinerOptionsFromFlags(flags);
  if (!options.ok()) return UsageError(options.status());
  if (!options->checkpoint_path.empty()) {
    options->cancel_flag = &g_interrupted;
    std::signal(SIGINT, HandleSigint);
  }
  QuantitativeRuleMiner miner(*options);

  IncrementalDecision incremental;
  Result<MiningResult> result = [&]() -> Result<MiningResult> {
    if (qbt_mode) {
      if (flags.append) {
        // Route B/C fallbacks at --workers > 1 go through the distributed
        // miner; the incremental delta passes always run in-process.
        const FullMineFn full_mine =
            [&](const MinerOptions& append_options) {
              return MineDistributedQbt(flags.input_qbt, append_options);
            };
        return MineIncremental(flags.input_qbt, *options, &incremental,
                               flags.workers > 1 ? full_mine : FullMineFn());
      }
      if (flags.workers > 1 || !flags.worker_endpoints.empty()) {
        // MineDistributedQbt opens the file itself (coordinator + each
        // forked worker map their own views; TCP workers serve their own
        // copies) and falls back to the plain path when the file has
        // fewer blocks than workers.
        return MineDistributedQbt(flags.input_qbt, *options);
      }
      QARM_ASSIGN_OR_RETURN(std::unique_ptr<QbtFileSource> source,
                            QbtFileSource::Open(flags.input_qbt));
      return miner.MineStreamed(*source);
    }
    QARM_ASSIGN_OR_RETURN(Schema schema, Schema::Parse(flags.schema));
    QARM_ASSIGN_OR_RETURN(Table table, ReadCsv(flags.input, schema));
    return miner.Mine(table);
  }();
  if (!result.ok()) {
    if (result.status().code() == StatusCode::kCancelled) {
      if (flags.kill_after_pass > 0) {
        // Crash simulation for the resume smoke test: the checkpoint for
        // the final completed pass is on disk; die without any cleanup.
        std::raise(SIGKILL);
      }
      std::fprintf(stderr, "interrupted: %s\n",
                   result.status().message().c_str());
      if (!flags.checkpoint.empty()) {
        std::fprintf(stderr, "rerun with the same flags to resume from %s\n",
                     flags.checkpoint.c_str());
      }
      return 130;  // 128 + SIGINT, the conventional Ctrl-C exit code
    }
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  if (flags.append) {
    // One line on how the incremental run actually executed — the rules
    // are identical either way, but the user should see whether the base
    // was reused and why not when it wasn't.
    if (incremental.incremental) {
      std::fprintf(
          stderr,
          "# incremental: base=%llu blocks (%llu rows) delta=%llu blocks "
          "(%llu rows) passes_merged=%zu passes_rescanned=%zu\n",
          static_cast<unsigned long long>(incremental.base_blocks),
          static_cast<unsigned long long>(incremental.base_rows),
          static_cast<unsigned long long>(incremental.delta_blocks),
          static_cast<unsigned long long>(incremental.delta_rows),
          incremental.passes_merged, incremental.passes_rescanned);
    } else {
      std::fprintf(stderr, "# incremental: %s mine (%s)\n",
                   incremental.resumed ? "resumed" : "full",
                   incremental.reason.c_str());
    }
  }

  if (!flags.output_rules.empty()) {
    StoredRuleSet rule_set = ExportRuleSet(*result, *options);
    uint64_t bytes = 0;
    Status status = WriteRuleSet(rule_set, flags.output_rules, &bytes);
    if (!status.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n",
                   flags.output_rules.c_str(), status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "# wrote %s: %zu rules, %llu bytes\n",
                 flags.output_rules.c_str(), rule_set.rules.size(),
                 static_cast<unsigned long long>(bytes));
  }

  if (flags.format == "json") {
    std::printf("%s\n",
                MiningResultToJson(*result, flags.interesting_only).c_str());
  } else if (flags.format == "csv") {
    std::vector<QuantRule> to_print;
    for (const QuantRule& rule : result->rules) {
      if (flags.interesting_only && !rule.interesting) continue;
      to_print.push_back(rule);
    }
    std::printf("%s", RulesToCsv(to_print, result->mapped).c_str());
  }

  if (flags.format == "text" && flags.show_itemsets) {
    std::printf("# %zu frequent itemsets\n",
                result->frequent_itemsets.size());
    for (const FrequentRangeItemset& f : result->frequent_itemsets) {
      std::printf("%s  (support %.2f%%)\n",
                  ItemsetToString(f.items, result->mapped).c_str(),
                  f.support * 100);
    }
    std::printf("\n");
  }

  size_t printed = 0;
  for (const QuantRule& rule : result->rules) {
    if (flags.interesting_only && !rule.interesting) continue;
    if (flags.format == "text") {
      std::printf("%s%s\n", RuleToString(rule, result->mapped).c_str(),
                  flags.interest > 0 && rule.interesting ? "  [interesting]"
                                                         : "");
    }
    ++printed;
  }
  if (flags.show_stats) {
    const MiningStats& stats = result->stats;
    std::fprintf(stderr,
                 "# records=%zu items=%zu rules=%zu interesting=%zu "
                 "achievedK=%.2f time=%.3fs\n",
                 stats.num_records, stats.num_frequent_items, stats.num_rules,
                 stats.num_interesting_rules,
                 stats.achieved_partial_completeness, stats.total_seconds);
    ScanIoStats io = stats.pass1_io;
    for (const PassStats& pass : stats.passes) io += pass.counting.io;
    if (io.blocks_read > 0) {
      std::fprintf(stderr,
                   "# io: blocks_read=%llu bytes_mapped=%llu "
                   "checksum=%.3fs (pass1 %llu blocks)\n",
                   static_cast<unsigned long long>(io.blocks_read),
                   static_cast<unsigned long long>(io.bytes_read),
                   io.checksum_seconds,
                   static_cast<unsigned long long>(
                       stats.pass1_io.blocks_read));
    }
    if (io.read_retries > 0 || io.faults_injected > 0) {
      std::fprintf(stderr, "# io-faults: injected=%llu retries=%llu\n",
                   static_cast<unsigned long long>(io.faults_injected),
                   static_cast<unsigned long long>(io.read_retries));
    }
    if (stats.dist.num_workers > 0) {
      uint64_t sent = 0;
      uint64_t received = 0;
      double exchange = 0;
      double merge = 0;
      for (const DistPassStats& pass : stats.dist.passes) {
        sent += pass.bytes_sent;
        received += pass.bytes_received;
        exchange += pass.exchange_seconds;
        merge += pass.merge_seconds;
      }
      std::fprintf(stderr,
                   "# distributed: workers=%zu respawned=%zu sent=%llu "
                   "received=%llu exchange=%.3fs merge=%.3fs\n",
                   stats.dist.num_workers, stats.dist.workers_respawned,
                   static_cast<unsigned long long>(sent),
                   static_cast<unsigned long long>(received), exchange,
                   merge);
      for (const DistWorkerStats& worker : stats.dist.workers) {
        // One line per worker only when something noteworthy happened —
        // a clean run stays quiet.
        if (worker.respawns == 0 && worker.reconnects == 0 &&
            worker.heartbeat_timeouts == 0) {
          continue;
        }
        std::fprintf(stderr,
                     "# worker %u%s%s: respawns=%zu reconnects=%zu "
                     "redistributed=%zu heartbeat_timeouts=%zu "
                     "frames_retried=%zu\n",
                     worker.worker_id, worker.endpoint.empty() ? "" : " @ ",
                     worker.endpoint.c_str(), worker.respawns,
                     worker.reconnects, worker.redistributed,
                     worker.heartbeat_timeouts, worker.frames_retried);
      }
    }
    if (stats.checkpoint.enabled) {
      std::fprintf(stderr,
                   "# checkpoint: written=%zu resumed_passes=%zu "
                   "last_bytes=%llu write=%.3fs\n",
                   stats.checkpoint.checkpoints_written,
                   stats.checkpoint.resumed_passes,
                   static_cast<unsigned long long>(
                       stats.checkpoint.last_checkpoint_bytes),
                   stats.checkpoint.write_seconds);
    }
  }
  return printed > 0 ? 0 : 3;
}

}  // namespace
}  // namespace qarm

int main(int argc, char** argv) { return qarm::Run(argc, argv); }
