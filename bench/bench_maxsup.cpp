// Max-support sweep (Section 1.2): the ExecTime mitigation.
//
// The maximum-support parameter bounds how far adjacent intervals combine.
// Raising it grows the frequent-item count (towards the O(n^2) range
// blow-up) and with it candidate counts and execution time; lowering it
// risks missing wide rules. This bench sweeps maxsup and reports the
// tradeoff.
//
//   $ ./bench_maxsup [--records=N] [--seed=S]
#include <cstdio>

#include "bench/bench_util.h"
#include "core/miner.h"
#include "table/datagen.h"

int main(int argc, char** argv) {
  using namespace qarm;
  const size_t records = bench::FlagU64(argc, argv, "records", 50000);
  const uint64_t seed = bench::FlagU64(argc, argv, "seed", 13);

  Table data = MakeFinancialDataset(records, seed);
  std::printf(
      "Max-support sweep (%zu records; minsup 20%%, minconf 25%%, partial "
      "completeness 2)\n\n",
      records);

  std::vector<int> widths = {10, 12, 12, 10, 12};
  bench::PrintRow({"maxsup", "freq items", "C2", "rules", "time ms"},
                  widths);
  bench::PrintSeparator(widths);

  for (double maxsup : {0.25, 0.30, 0.40, 0.50, 0.70, 1.0}) {
    MinerOptions options;
    options.minsup = 0.20;
    options.minconf = 0.25;
    options.max_support = maxsup;
    options.partial_completeness = 2.0;
    options.max_quantitative_per_rule = 2;  // n' refinement, see DESIGN.md
    // The sweep's point is the frequent-item / candidate blow-up; capping
    // the itemset size keeps the uncapped-maxsup rows from running away.
    options.max_itemset_size = 3;
    QuantitativeRuleMiner miner(options);
    Result<MiningResult> result = miner.Mine(data);
    if (!result.ok()) {
      std::fprintf(stderr, "failed: %s\n", result.status().ToString().c_str());
      continue;
    }
    size_t c2 = result->stats.passes.size() > 1
                    ? result->stats.passes[1].num_candidates
                    : 0;
    bench::PrintRow({StrFormat("%.0f%%", maxsup * 100),
                     StrFormat("%zu", result->stats.num_frequent_items),
                     StrFormat("%zu", c2),
                     StrFormat("%zu", result->stats.num_rules),
                     StrFormat("%.0f", result->stats.total_seconds * 1e3)},
                    widths);
  }

  std::printf(
      "\nExpected shape: frequent items, candidates, rules and time all\n"
      "grow as maxsup rises — the ExecTime/ManyRules problems the\n"
      "max-support parameter exists to bound.\n");
  return 0;
}
