// Boolean Apriori ([AS94] substrate) throughput on synthetic basket data,
// plus hash-tree shape sensitivity.
#include <benchmark/benchmark.h>

#include <set>

#include "index/hash_tree.h"
#include "common/random.h"
#include "mining/apriori.h"
#include "mining/rulegen.h"
#include "mining/basket_gen.h"

namespace qarm {
namespace {

void BM_AprioriMine(benchmark::State& state) {
  BasketConfig config;
  config.num_transactions = static_cast<size_t>(state.range(0));
  config.num_items = 500;
  config.avg_transaction_size = 10;
  config.num_patterns = 50;
  auto txns = MakeBasketData(config);
  AprioriOptions options;
  options.minsup = 0.01;
  for (auto _ : state) {
    auto frequent = AprioriMine(txns, options);
    benchmark::DoNotOptimize(frequent);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AprioriMine)->Arg(2000)->Arg(10000)->Arg(50000);

void BM_HashTreeSubsetSearch(benchmark::State& state) {
  // Insert many 3-itemsets, then probe with transactions of 15 items.
  const size_t leaf_capacity = static_cast<size_t>(state.range(0));
  HashTree tree(leaf_capacity, 32);
  Rng rng(3);
  for (int32_t i = 0; i < 5000; ++i) {
    std::set<int32_t> s;
    while (s.size() < 3) {
      s.insert(static_cast<int32_t>(rng.UniformInt(0, 299)));
    }
    tree.Insert(std::vector<int32_t>(s.begin(), s.end()), i);
  }
  std::vector<std::vector<int32_t>> txns;
  for (int t = 0; t < 200; ++t) {
    std::set<int32_t> s;
    while (s.size() < 15) {
      s.insert(static_cast<int32_t>(rng.UniformInt(0, 299)));
    }
    txns.emplace_back(s.begin(), s.end());
  }
  size_t hits = 0;
  for (auto _ : state) {
    for (const auto& txn : txns) {
      tree.ForEachSubset(txn, [&hits](int32_t) { ++hits; });
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(txns.size()));
}
BENCHMARK(BM_HashTreeSubsetSearch)->Arg(4)->Arg(16)->Arg(64);

void BM_RuleGeneration(benchmark::State& state) {
  BasketConfig config;
  config.num_transactions = 10000;
  config.num_items = 200;
  config.num_patterns = 20;
  config.pattern_probability = 0.7;
  auto txns = MakeBasketData(config);
  AprioriOptions options;
  options.minsup = 0.02;
  auto frequent = AprioriMine(txns, options);
  for (auto _ : state) {
    auto rules = GenerateRules(frequent, txns.size(), 0.5);
    benchmark::DoNotOptimize(rules);
  }
}
BENCHMARK(BM_RuleGeneration);

}  // namespace
}  // namespace qarm

BENCHMARK_MAIN();
