// Counting-structure microbenchmarks (Section 5.2 ablation): the
// n-dimensional array (with and without the prefix-sum collection
// optimization) vs the R*-tree, across dimensionalities and rectangle
// counts. Reports per-pass cost: processing all points plus collecting all
// rectangle counts.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "index/rect_counter.h"

namespace qarm {
namespace {

struct Workload {
  std::vector<int32_t> dims;
  std::vector<IntRect> rects;
  std::vector<std::vector<int32_t>> points;
};

Workload MakeWorkload(size_t num_dims, int32_t domain, size_t num_rects,
                      size_t num_points) {
  Rng rng(99);
  Workload w;
  w.dims.assign(num_dims, domain);
  for (size_t i = 0; i < num_rects; ++i) {
    IntRect rect;
    for (size_t d = 0; d < num_dims; ++d) {
      int32_t a = static_cast<int32_t>(rng.UniformInt(0, domain - 1));
      int32_t b = static_cast<int32_t>(rng.UniformInt(0, domain - 1));
      rect.lo.push_back(std::min(a, b));
      rect.hi.push_back(std::max(a, b));
    }
    w.rects.push_back(std::move(rect));
  }
  for (size_t i = 0; i < num_points; ++i) {
    std::vector<int32_t> p;
    for (size_t d = 0; d < num_dims; ++d) {
      p.push_back(static_cast<int32_t>(rng.UniformInt(0, domain - 1)));
    }
    w.points.push_back(std::move(p));
  }
  return w;
}

template <typename MakeCounter>
void RunPass(benchmark::State& state, const Workload& w,
             const MakeCounter& make_counter) {
  for (auto _ : state) {
    auto counter = make_counter();
    for (const auto& p : w.points) counter->ProcessPoint(p.data());
    counter->Finalize();
    std::vector<uint64_t> counts;
    counter->Collect(&counts);
    benchmark::DoNotOptimize(counts);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(w.points.size()));
}

void BM_ArrayPrefix(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<size_t>(state.range(0)), 32,
                            static_cast<size_t>(state.range(1)), 20000);
  RunPass(state, w, [&] {
    return std::make_unique<ArrayRectangleCounter>(w.dims, w.rects, true);
  });
}
BENCHMARK(BM_ArrayPrefix)
    ->Args({1, 1000})
    ->Args({2, 1000})
    ->Args({2, 10000})
    ->Args({3, 1000});

void BM_ArraySweep(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<size_t>(state.range(0)), 32,
                            static_cast<size_t>(state.range(1)), 20000);
  RunPass(state, w, [&] {
    return std::make_unique<ArrayRectangleCounter>(w.dims, w.rects, false);
  });
}
BENCHMARK(BM_ArraySweep)
    ->Args({1, 1000})
    ->Args({2, 1000})
    ->Args({2, 10000})
    ->Args({3, 1000});

void BM_RStarTree(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<size_t>(state.range(0)), 32,
                            static_cast<size_t>(state.range(1)), 20000);
  RunPass(state, w, [&] {
    return std::make_unique<RTreeRectangleCounter>(w.dims.size(), w.rects);
  });
}
BENCHMARK(BM_RStarTree)
    ->Args({1, 1000})
    ->Args({2, 1000})
    ->Args({2, 10000})
    ->Args({3, 1000});

// The heuristic's decision point: high dimensionality with a big domain,
// where the dense grid would be enormous.
void BM_TreeHighDim(benchmark::State& state) {
  Workload w = MakeWorkload(5, 50, 2000, 20000);
  RunPass(state, w, [&] {
    return std::make_unique<RTreeRectangleCounter>(w.dims.size(), w.rects);
  });
}
BENCHMARK(BM_TreeHighDim);

}  // namespace
}  // namespace qarm

BENCHMARK_MAIN();
