// Shared helpers for the figure-reproduction benches: flag parsing and
// aligned table printing.
#ifndef QARM_BENCH_BENCH_UTIL_H_
#define QARM_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace qarm {
namespace bench {

// Parses "--name=value" flags; returns fallback when absent.
inline uint64_t FlagU64(int argc, char** argv, const char* name,
                        uint64_t fallback) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

inline double FlagDouble(int argc, char** argv, const char* name,
                         double fallback) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtod(argv[i] + prefix.size(), nullptr);
    }
  }
  return fallback;
}

// Prints a row of cells padded to the given widths.
inline void PrintRow(const std::vector<std::string>& cells,
                     const std::vector<int>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%-*s", widths[i] + 2, cells[i].c_str());
  }
  std::printf("\n");
}

inline void PrintSeparator(const std::vector<int>& widths) {
  for (int w : widths) {
    for (int i = 0; i < w; ++i) std::printf("-");
    std::printf("  ");
  }
  std::printf("\n");
}

}  // namespace bench
}  // namespace qarm

#endif  // QARM_BENCH_BENCH_UTIL_H_
