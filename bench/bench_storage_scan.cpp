// Storage-engine scan throughput: in-memory blocks vs streaming QBT.
//
// Measures a full-table scan (every value of every record visited, summed
// into per-worker accumulators) through the RecordSource abstraction, for
// the resident MappedTableSource and for a QbtFileSource over the same
// records on disk, each at 1 and 4 threads. The delta between the two
// sources is the price of out-of-core mining: mmap page faults plus the
// per-block CRC32 validation, which the QBT rows also report separately.
//
//   $ ./bench_storage_scan [--records=N] [--seed=S] [--block-rows=B]
//                          [--reps=R] [--out=FILE]
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "partition/mapper.h"
#include "storage/qbt_writer.h"
#include "storage/record_source.h"
#include "table/datagen.h"

namespace {

// Scans every block of `source` with `threads` workers and returns the sum
// of all values (the checksum keeps the loop honest under optimization).
int64_t ScanAll(const qarm::RecordSource& source, size_t threads) {
  using namespace qarm;
  const size_t num_attrs = source.num_attributes();
  std::vector<IndexRange> shards = SplitRange(source.num_blocks(), threads);
  std::vector<int64_t> sums(shards.size(), 0);
  ThreadPool pool(threads);
  pool.ParallelFor(shards.size(), [&](size_t s) {
    BlockView view;
    int64_t sum = 0;
    for (size_t b = shards[s].begin; b < shards[s].end; ++b) {
      if (!source.ReadBlock(b, &view).ok()) return;
      for (size_t r = 0; r < view.num_rows(); ++r) {
        for (size_t a = 0; a < num_attrs; ++a) {
          sum += view.value(r, a);
        }
      }
    }
    sums[s] = sum;
  });
  int64_t total = 0;
  for (int64_t s : sums) total += s;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qarm;
  const size_t records = bench::FlagU64(argc, argv, "records", 500000);
  const uint64_t seed = bench::FlagU64(argc, argv, "seed", 42);
  const size_t block_rows = bench::FlagU64(argc, argv, "block-rows", 65536);
  const size_t reps = bench::FlagU64(argc, argv, "reps", 3);
  std::string out = "BENCH_storage_scan.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
  }

  Table data = MakeFinancialDataset(records, seed);
  Result<MappedTable> mapped = MapTable(data, MapOptions{});
  if (!mapped.ok()) {
    std::fprintf(stderr, "mapping failed: %s\n",
                 mapped.status().ToString().c_str());
    return 1;
  }

  const std::string qbt_path = "bench_storage_scan.qbt";
  QbtWriteOptions write_options;
  write_options.rows_per_block = static_cast<uint32_t>(block_rows);
  QbtWriteInfo info;
  Status wrote = WriteQbt(*mapped, qbt_path, write_options, &info);
  if (!wrote.ok()) {
    std::fprintf(stderr, "write failed: %s\n", wrote.ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<QbtFileSource>> qbt = QbtFileSource::Open(qbt_path);
  if (!qbt.ok()) {
    std::fprintf(stderr, "open failed: %s\n", qbt.status().ToString().c_str());
    return 1;
  }
  MappedTableSource resident(*mapped, block_rows);

  std::printf(
      "Storage scan throughput: financial dataset, %zu records x %zu "
      "attributes\nQBT file: %llu bytes in %llu blocks of %zu rows, "
      "hardware threads %u, best of %zu reps\n\n",
      mapped->num_rows(), mapped->num_attributes(),
      static_cast<unsigned long long>(info.file_bytes),
      static_cast<unsigned long long>(info.num_blocks), block_rows,
      std::thread::hardware_concurrency(), reps);

  struct Point {
    const char* source;
    size_t threads;
    double seconds = 0;
    double rows_per_sec = 0;
    double checksum_seconds = 0;
    uint64_t bytes_read = 0;
  };
  std::vector<Point> points;

  std::vector<int> widths = {12, 8, 10, 14, 14};
  bench::PrintRow(
      {"source", "threads", "scan (s)", "rows/sec", "checksum (s)"}, widths);
  bench::PrintSeparator(widths);

  const int64_t expected = ScanAll(resident, 1);
  const size_t sweep[] = {1, 4};
  for (int streaming = 0; streaming <= 1; ++streaming) {
    const RecordSource& source =
        streaming ? static_cast<const RecordSource&>(**qbt) : resident;
    for (size_t threads : sweep) {
      Point p;
      p.source = streaming ? "qbt-stream" : "in-memory";
      p.threads = threads;
      for (size_t rep = 0; rep < reps; ++rep) {
        const ScanIoStats before = source.io_stats();
        Timer timer;
        const int64_t sum = ScanAll(source, threads);
        const double seconds = timer.ElapsedSeconds();
        if (sum != expected) {
          std::fprintf(stderr, "FATAL: scan sum diverges (%s, %zu threads)\n",
                       p.source, threads);
          return 1;
        }
        if (rep == 0 || seconds < p.seconds) {
          p.seconds = seconds;
          const ScanIoStats io = source.io_stats() - before;
          p.checksum_seconds = io.checksum_seconds;
          p.bytes_read = io.bytes_read;
        }
      }
      p.rows_per_sec = static_cast<double>(mapped->num_rows()) / p.seconds;
      points.push_back(p);
      bench::PrintRow({p.source, StrFormat("%zu", threads),
                       StrFormat("%.4f", p.seconds),
                       StrFormat("%.3fM", p.rows_per_sec / 1e6),
                       StrFormat("%.4f", p.checksum_seconds)},
                      widths);
    }
  }

  std::string json = "{\n";
  json += StrFormat(
      "  \"bench\": \"storage_scan\",\n"
      "  \"records\": %zu,\n  \"attributes\": %zu,\n  \"seed\": %llu,\n"
      "  \"block_rows\": %zu,\n  \"qbt_blocks\": %llu,\n"
      "  \"qbt_bytes\": %llu,\n  \"hardware_concurrency\": %u,\n"
      "  \"reps\": %zu,\n  \"sweep\": [",
      mapped->num_rows(), mapped->num_attributes(),
      static_cast<unsigned long long>(seed), block_rows,
      static_cast<unsigned long long>(info.num_blocks),
      static_cast<unsigned long long>(info.file_bytes),
      std::thread::hardware_concurrency(), reps);
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    if (i > 0) json += ',';
    json += StrFormat(
        "\n    {\"source\": \"%s\", \"threads\": %zu,"
        " \"scan_seconds\": %.6f, \"rows_per_sec\": %.1f,"
        " \"checksum_seconds\": %.6f, \"bytes_read\": %llu}",
        p.source, p.threads, p.seconds, p.rows_per_sec, p.checksum_seconds,
        static_cast<unsigned long long>(p.bytes_read));
  }
  json += "\n  ]\n}\n";

  FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::remove(qbt_path.c_str());
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
