// Section 1.1 reproduction: the "MinSup" / "MinConf" mapping woes.
//
// Compares the naive map-to-boolean bridge (Figure 2: one boolean item per
// <attribute, interval>, no range combination) against the paper's
// algorithm, at two partitioning granularities:
//   - fine partitioning: boolean items lack support ("MinSup" problem);
//   - coarse partitioning: rules lose confidence ("MinConf" problem).
// The quantitative miner escapes both by combining adjacent intervals.
//
//   $ ./bench_mapping_woes [--records=N] [--seed=S]
#include <cstdio>

#include "bench/bench_util.h"
#include "core/miner.h"
#include "core/rules.h"
#include "mining/bridge.h"
#include "partition/mapper.h"
#include "table/datagen.h"

namespace {

using namespace qarm;

// Counts bridge rules that conclude a y-range inside the implanted
// consequent, and reports the best confidence among them.
struct Outcome {
  size_t rules = 0;
  double best_confidence = 0.0;
};

Outcome ScanBridge(const BridgeResult& bridge, const MappedTable& mapped) {
  BooleanEncoding encoding(mapped);
  Outcome out;
  for (const BooleanRule& rule : bridge.rules) {
    bool concludes_y = false;
    for (int32_t item : rule.consequent) {
      if (encoding.AttrOf(item) == 1) concludes_y = true;
    }
    bool from_x = false;
    for (int32_t item : rule.antecedent) {
      if (encoding.AttrOf(item) == 0) from_x = true;
    }
    if (concludes_y && from_x) {
      ++out.rules;
      out.best_confidence = std::max(out.best_confidence, rule.confidence);
    }
  }
  return out;
}

Outcome ScanQuant(const MiningResult& result) {
  Outcome out;
  for (const QuantRule& rule : result.rules) {
    bool concludes_y = false, from_x = false;
    for (const RangeItem& item : rule.consequent) {
      if (item.attr == 1) concludes_y = true;
    }
    for (const RangeItem& item : rule.antecedent) {
      if (item.attr == 0) from_x = true;
    }
    if (concludes_y && from_x) {
      ++out.rules;
      out.best_confidence = std::max(out.best_confidence, rule.confidence);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t records = bench::FlagU64(argc, argv, "records", 20000);
  const uint64_t seed = bench::FlagU64(argc, argv, "seed", 3);

  // x uniform over a wide domain; y concentrated when x is in a narrow band
  // that spans several fine intervals but only part of a coarse one.
  SyntheticConfig config;
  SyntheticAttribute x;
  x.name = "x";
  x.dist = SyntheticDist::kUniform;
  x.param0 = 0;
  x.param1 = 999;
  SyntheticAttribute y = x;
  y.name = "y";
  config.attributes = {x, y};
  ImplantedRule dep;
  dep.antecedent_attr = 0;
  dep.ante_lo = 200;
  dep.ante_hi = 449;  // 25% of x-mass
  dep.consequent_attr = 1;
  dep.cons_lo = 800;
  dep.cons_hi = 999;
  dep.probability = 0.9;
  config.rules.push_back(dep);
  Table data = GenerateSynthetic(config, records, seed);

  const double minsup = 0.15, minconf = 0.6;
  std::printf(
      "Section 1.1 mapping woes (%zu records; implanted rule: x in 200..449 "
      "=> y in 800..999 @90%%)\n"
      "thresholds: minsup %.0f%%, minconf %.0f%%\n\n",
      records, minsup * 100, minconf * 100);

  std::vector<int> widths = {34, 12, 16};
  bench::PrintRow({"approach", "x=>y rules", "best confidence"}, widths);
  bench::PrintSeparator(widths);

  // Fine partitioning: 50 intervals of ~2% support each.
  {
    MapOptions map_options;
    map_options.num_intervals_override = 50;
    map_options.minsup = minsup;
    auto mapped = MapTable(data, map_options);
    BridgeResult bridge = MineViaBooleanBridge(*mapped, minsup, minconf);
    Outcome out = ScanBridge(bridge, *mapped);
    bench::PrintRow({"boolean bridge, 50 intervals",
                     StrFormat("%zu", out.rules),
                     StrFormat("%.1f%%", out.best_confidence * 100)},
                    widths);
  }

  // Coarse partitioning: 2 intervals.
  {
    MapOptions map_options;
    map_options.num_intervals_override = 2;
    map_options.minsup = minsup;
    auto mapped = MapTable(data, map_options);
    BridgeResult bridge = MineViaBooleanBridge(*mapped, minsup, minconf);
    Outcome out = ScanBridge(bridge, *mapped);
    bench::PrintRow({"boolean bridge, 2 intervals",
                     StrFormat("%zu", out.rules),
                     StrFormat("%.1f%%", out.best_confidence * 100)},
                    widths);
  }

  // The paper's algorithm: fine partitioning + range combination.
  {
    MinerOptions options;
    options.minsup = minsup;
    options.minconf = minconf;
    options.max_support = 0.45;
    options.num_intervals_override = 50;
    QuantitativeRuleMiner miner(options);
    auto result = miner.Mine(data);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    Outcome out = ScanQuant(*result);
    bench::PrintRow({"quantitative miner, 50 intervals",
                     StrFormat("%zu", out.rules),
                     StrFormat("%.1f%%", out.best_confidence * 100)},
                    widths);
  }

  std::printf(
      "\nExpected shape: the fine-grained bridge finds no x=>y rule (items\n"
      "lack minimum support); the coarse bridge finds rules but with\n"
      "diluted confidence; the quantitative miner recovers the implanted\n"
      "rule at high confidence.\n");
  return 0;
}
