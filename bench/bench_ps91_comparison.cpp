// [PS91] comparison (Section 1.3): single-value rules vs quantitative rules.
//
// The PS91 baseline finds rules (A = a) => (B = b) with one pass per
// antecedent attribute and cannot express ranges or multi-attribute
// antecedents. This bench runs both systems on the financial dataset and
// reports what each finds and how long it takes.
//
//   $ ./bench_ps91_comparison [--records=N] [--seed=S]
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/miner.h"
#include "core/rules.h"
#include "mining/ps91.h"
#include "partition/mapper.h"
#include "table/datagen.h"

int main(int argc, char** argv) {
  using namespace qarm;
  const size_t records = bench::FlagU64(argc, argv, "records", 50000);
  const uint64_t seed = bench::FlagU64(argc, argv, "seed", 17);

  Table data = MakeFinancialDataset(records, seed);
  const double minsup = 0.05, minconf = 0.5;
  std::printf(
      "[PS91] vs quantitative miner (%zu records; minsup %.0f%%, minconf "
      "%.0f%%)\n\n",
      records, minsup * 100, minconf * 100);

  // A coarse shared mapping (10 intervals per attribute) gives PS91's
  // single-value rules a realistic chance at the common thresholds; both
  // systems see the identical mapped table.
  MapOptions map_options;
  map_options.minsup = minsup;
  map_options.num_intervals_override = 10;
  auto mapped = MapTable(data, map_options);
  if (!mapped.ok()) {
    std::fprintf(stderr, "%s\n", mapped.status().ToString().c_str());
    return 1;
  }

  // PS91: one hashing pass per attribute.
  Timer timer;
  Ps91Options ps_options;
  ps_options.minsup = minsup;
  ps_options.minconf = minconf;
  auto ps_rules = Ps91MineAll(*mapped, ps_options);
  double ps_seconds = timer.ElapsedSeconds();

  // Quantitative miner.
  MinerOptions options;
  options.minsup = minsup;
  options.minconf = minconf;
  options.max_support = 0.4;
  options.num_intervals_override = 10;
  QuantitativeRuleMiner miner(options);
  timer.Reset();
  Result<MiningResult> mine_result = miner.MineMapped(*mapped);
  QARM_CHECK(mine_result.ok());
  MiningResult& result = *mine_result;
  double quant_seconds = timer.ElapsedSeconds();

  size_t range_rules = 0, multi_attr = 0;
  for (const QuantRule& r : result.rules) {
    bool has_range = false;
    for (const RangeItem& item : r.antecedent) {
      if (item.lo != item.hi) has_range = true;
    }
    for (const RangeItem& item : r.consequent) {
      if (item.lo != item.hi) has_range = true;
    }
    if (has_range) ++range_rules;
    if (r.antecedent.size() + r.consequent.size() > 2) ++multi_attr;
  }

  std::vector<int> widths = {24, 10, 16, 18, 12};
  bench::PrintRow({"system", "rules", "range rules", "multi-attribute",
                   "time (s)"},
                  widths);
  bench::PrintSeparator(widths);
  bench::PrintRow({"PS91 (KID3-style)", StrFormat("%zu", ps_rules.size()),
                   "0 (inexpressible)", "0 (inexpressible)",
                   StrFormat("%.2f", ps_seconds)},
                  widths);
  bench::PrintRow({"quantitative miner",
                   StrFormat("%zu", result.rules.size()),
                   StrFormat("%zu", range_rules),
                   StrFormat("%zu", multi_attr),
                   StrFormat("%.2f", quant_seconds)},
                  widths);

  std::printf("\nSample PS91 rules:\n");
  for (size_t i = 0; i < ps_rules.size() && i < 5; ++i) {
    std::printf("  %s\n", Ps91RuleToString(ps_rules[i], *mapped).c_str());
  }
  std::printf("\nSample quantitative rules PS91 cannot express:\n");
  size_t shown = 0;
  for (const QuantRule& r : result.rules) {
    bool has_range = false;
    for (const RangeItem& item : r.antecedent) {
      if (item.lo != item.hi) has_range = true;
    }
    if (!has_range) continue;
    std::printf("  %s\n", RuleToString(r, result.mapped).c_str());
    if (++shown >= 5) break;
  }
  std::printf(
      "\nExpected shape: PS91 is fast but finds only single-value rules;\n"
      "the quantitative miner additionally finds range and multi-attribute\n"
      "rules, which dominate the output.\n");
  return 0;
}
