// Parallel support-counting thread sweep.
//
// Measures the level-2 CountSupports pass (the dominant scan of each
// Apriori pass, Section 5 of the paper) on the synthetic financial
// workload at 1, 2, 4 and 8 threads, and emits a machine-readable JSON
// report alongside the human-readable table.
//
//   $ ./bench_parallel_counting [--records=N] [--seed=S] [--minsup=F]
//                               [--k=K] [--reps=R] [--out=FILE]
//
// Speedups are relative to the single-thread run of the same pass. The
// JSON records hardware_concurrency so results from machines with fewer
// cores than threads (where no speedup is physically possible) are
// interpretable.
#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/cpu_dispatch.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/candidate_gen.h"
#include "core/frequent_items.h"
#include "core/support_counting.h"
#include "partition/mapper.h"
#include "table/datagen.h"

namespace {

uint64_t SpinWork(uint64_t iters) {
  volatile uint64_t acc = 0;
  for (uint64_t i = 0; i < iters; ++i) acc = acc + i * 2654435761ull;
  return acc;
}

// How many calibrated spin tasks actually run concurrently. Containers and
// CI runners often report a nominal hardware_concurrency that cgroup quotas
// cut down; timing N tasks against one task measures what the scheduler
// really grants, which is what thread-sweep speedups are limited by.
double MeasureEffectiveConcurrency(unsigned nominal) {
  const uint64_t iters = 20000000;
  SpinWork(iters);  // warm up
  qarm::Timer serial_timer;
  SpinWork(iters);
  const double serial = serial_timer.ElapsedSeconds();

  const unsigned n = std::max(2u, nominal);
  std::vector<std::thread> workers;
  qarm::Timer parallel_timer;
  for (unsigned i = 0; i < n; ++i) {
    workers.emplace_back([iters] { SpinWork(iters); });
  }
  for (std::thread& w : workers) w.join();
  const double parallel = parallel_timer.ElapsedSeconds();
  if (parallel <= 0 || serial <= 0) return 1.0;
  const double effective = serial * static_cast<double>(n) / parallel;
  return std::clamp(effective, 1.0, static_cast<double>(n));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qarm;
  const size_t records = bench::FlagU64(argc, argv, "records", 500000);
  const uint64_t seed = bench::FlagU64(argc, argv, "seed", 42);
  const double minsup = bench::FlagDouble(argc, argv, "minsup", 0.10);
  const double k = bench::FlagDouble(argc, argv, "k", 3.0);
  const size_t reps = bench::FlagU64(argc, argv, "reps", 3);
  std::string out = "BENCH_parallel_counting.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
  }

  Table data = MakeFinancialDataset(records, seed);
  MapOptions map_options;
  map_options.partial_completeness = k;
  map_options.minsup = minsup;
  Result<MappedTable> mapped = MapTable(data, map_options);
  if (!mapped.ok()) {
    std::fprintf(stderr, "mapping failed: %s\n",
                 mapped.status().ToString().c_str());
    return 1;
  }

  MinerOptions options;
  options.minsup = minsup;
  options.max_support = 0.40;
  options.partial_completeness = k;
  ItemCatalog catalog = ItemCatalog::Build(*mapped, options);
  ItemsetSet l1(1);
  for (size_t i = 0; i < catalog.num_items(); ++i) {
    l1.AppendVector({static_cast<int32_t>(i)});
  }
  ItemsetSet c2 = GenerateCandidates(catalog, l1);

  const unsigned hw = std::thread::hardware_concurrency();
  const double effective_concurrency = MeasureEffectiveConcurrency(hw);
  std::printf(
      "Parallel support counting: level-2 pass, financial dataset\n"
      "records %zu, frequent items %zu, candidates %zu, minsup %.0f%%, "
      "hardware threads %u (effective %.1f), isa %s, best of %zu reps\n\n",
      mapped->num_rows(), catalog.num_items(), c2.size(), minsup * 100, hw,
      effective_concurrency, IsaName(ActiveIsa()), reps);
  if (hw <= 1) {
    std::fprintf(stderr,
                 "WARNING: hardware_concurrency is 1 — no parallel speedup "
                 "is physically possible; multi-thread speedups are "
                 "reported as null.\n");
  }

  struct Point {
    size_t threads;
    CountingStats stats;
    double seconds;
  };
  std::vector<Point> points;
  std::vector<uint32_t> baseline_counts;

  std::vector<int> widths = {8, 10, 12, 12, 12, 10};
  bench::PrintRow({"threads", "total (s)", "scan (s)", "reduce (s)",
                   "build (s)", "speedup"},
                  widths);
  bench::PrintSeparator(widths);

  const size_t sweep[] = {1, 2, 4, 8};
  for (size_t threads : sweep) {
    MinerOptions run_options = options;
    run_options.num_threads = threads;
    Point best;
    best.threads = threads;
    best.seconds = 0;
    for (size_t rep = 0; rep < reps; ++rep) {
      CountingStats stats;
      Timer timer;
      std::vector<uint32_t> counts =
          CountSupports(*mapped, catalog, c2, run_options, &stats);
      double seconds = timer.ElapsedSeconds();
      if (threads == 1 && rep == 0) baseline_counts = counts;
      if (counts != baseline_counts) {
        std::fprintf(stderr, "FATAL: counts diverge at %zu threads\n",
                     threads);
        return 1;
      }
      if (rep == 0 || seconds < best.seconds) {
        best.seconds = seconds;
        best.stats = stats;
      }
    }
    points.push_back(best);
    // A one-core box cannot speed up a multi-thread run: report the ratio
    // only where it is physically meaningful.
    const bool speedup_meaningful = threads == 1 || hw > 1;
    bench::PrintRow(
        {StrFormat("%zu", threads), StrFormat("%.3f", best.seconds),
         StrFormat("%.3f", best.stats.scan_seconds),
         StrFormat("%.3f", best.stats.reduce_seconds),
         StrFormat("%.3f", best.stats.build_seconds),
         speedup_meaningful
             ? StrFormat("%.2fx", points.front().seconds / best.seconds)
             : std::string("n/a")},
        widths);
  }

  std::string json = "{\n";
  json += StrFormat(
      "  \"bench\": \"parallel_counting\",\n"
      "  \"records\": %zu,\n  \"seed\": %llu,\n  \"minsup\": %.4f,\n"
      "  \"frequent_items\": %zu,\n  \"candidates\": %zu,\n"
      "  \"super_candidates\": %zu,\n  \"hardware_concurrency\": %u,\n"
      "  \"effective_concurrency\": %.2f,\n  \"isa\": \"%s\",\n"
      "  \"reps\": %zu,\n  \"sweep\": [",
      mapped->num_rows(), static_cast<unsigned long long>(seed), minsup,
      catalog.num_items(), c2.size(),
      points.front().stats.num_super_candidates, hw, effective_concurrency,
      IsaName(points.front().stats.isa), reps);
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    if (i > 0) json += ',';
    const bool speedup_meaningful = p.threads == 1 || hw > 1;
    const double scan_rows_per_sec =
        p.stats.scan_seconds > 0
            ? static_cast<double>(mapped->num_rows()) / p.stats.scan_seconds
            : 0.0;
    json += StrFormat(
        "\n    {\"threads\": %zu, \"threads_used\": %zu,"
        " \"total_seconds\": %.6f, \"scan_seconds\": %.6f,"
        " \"reduce_seconds\": %.6f, \"build_seconds\": %.6f,"
        " \"speedup\": %s, \"scan_rows_per_sec\": %.0f,"
        " \"kernel_groups\": %zu, \"hash_groups\": %zu,"
        " \"array_counters\": %zu,"
        " \"tree_counters\": %zu, \"direct_counters\": %zu,"
        " \"atomic_shared_counters\": %zu, \"counter_bytes\": %llu,"
        " \"replicated_bytes\": %llu}",
        p.threads, p.stats.threads_used, p.seconds, p.stats.scan_seconds,
        p.stats.reduce_seconds, p.stats.build_seconds,
        speedup_meaningful
            ? StrFormat("%.4f", points.front().seconds / p.seconds).c_str()
            : "null",
        scan_rows_per_sec, p.stats.num_kernel_groups, p.stats.num_hash_groups,
        p.stats.num_array_counters, p.stats.num_tree_counters,
        p.stats.num_direct, p.stats.num_atomic_shared,
        static_cast<unsigned long long>(p.stats.counter_bytes),
        static_cast<unsigned long long>(p.stats.replicated_bytes));
  }
  json += "\n  ]\n}\n";

  FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
