// Parallel support-counting thread sweep.
//
// Measures the level-2 CountSupports pass (the dominant scan of each
// Apriori pass, Section 5 of the paper) on the synthetic financial
// workload at 1, 2, 4 and 8 threads, and emits a machine-readable JSON
// report alongside the human-readable table.
//
//   $ ./bench_parallel_counting [--records=N] [--seed=S] [--minsup=F]
//                               [--k=K] [--reps=R] [--out=FILE]
//
// Speedups are relative to the single-thread run of the same pass. The
// JSON records hardware_concurrency so results from machines with fewer
// cores than threads (where no speedup is physically possible) are
// interpretable.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/candidate_gen.h"
#include "core/frequent_items.h"
#include "core/support_counting.h"
#include "partition/mapper.h"
#include "table/datagen.h"

int main(int argc, char** argv) {
  using namespace qarm;
  const size_t records = bench::FlagU64(argc, argv, "records", 500000);
  const uint64_t seed = bench::FlagU64(argc, argv, "seed", 42);
  const double minsup = bench::FlagDouble(argc, argv, "minsup", 0.10);
  const double k = bench::FlagDouble(argc, argv, "k", 3.0);
  const size_t reps = bench::FlagU64(argc, argv, "reps", 3);
  std::string out = "BENCH_parallel_counting.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
  }

  Table data = MakeFinancialDataset(records, seed);
  MapOptions map_options;
  map_options.partial_completeness = k;
  map_options.minsup = minsup;
  Result<MappedTable> mapped = MapTable(data, map_options);
  if (!mapped.ok()) {
    std::fprintf(stderr, "mapping failed: %s\n",
                 mapped.status().ToString().c_str());
    return 1;
  }

  MinerOptions options;
  options.minsup = minsup;
  options.max_support = 0.40;
  options.partial_completeness = k;
  ItemCatalog catalog = ItemCatalog::Build(*mapped, options);
  ItemsetSet l1(1);
  for (size_t i = 0; i < catalog.num_items(); ++i) {
    l1.AppendVector({static_cast<int32_t>(i)});
  }
  ItemsetSet c2 = GenerateCandidates(catalog, l1);

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "Parallel support counting: level-2 pass, financial dataset\n"
      "records %zu, frequent items %zu, candidates %zu, minsup %.0f%%, "
      "hardware threads %u, best of %zu reps\n\n",
      mapped->num_rows(), catalog.num_items(), c2.size(), minsup * 100, hw,
      reps);

  struct Point {
    size_t threads;
    CountingStats stats;
    double seconds;
  };
  std::vector<Point> points;
  std::vector<uint32_t> baseline_counts;

  std::vector<int> widths = {8, 10, 12, 12, 12, 10};
  bench::PrintRow({"threads", "total (s)", "scan (s)", "reduce (s)",
                   "build (s)", "speedup"},
                  widths);
  bench::PrintSeparator(widths);

  const size_t sweep[] = {1, 2, 4, 8};
  for (size_t threads : sweep) {
    MinerOptions run_options = options;
    run_options.num_threads = threads;
    Point best;
    best.threads = threads;
    best.seconds = 0;
    for (size_t rep = 0; rep < reps; ++rep) {
      CountingStats stats;
      Timer timer;
      std::vector<uint32_t> counts =
          CountSupports(*mapped, catalog, c2, run_options, &stats);
      double seconds = timer.ElapsedSeconds();
      if (threads == 1 && rep == 0) baseline_counts = counts;
      if (counts != baseline_counts) {
        std::fprintf(stderr, "FATAL: counts diverge at %zu threads\n",
                     threads);
        return 1;
      }
      if (rep == 0 || seconds < best.seconds) {
        best.seconds = seconds;
        best.stats = stats;
      }
    }
    points.push_back(best);
    double speedup = points.front().seconds / best.seconds;
    bench::PrintRow({StrFormat("%zu", threads),
                     StrFormat("%.3f", best.seconds),
                     StrFormat("%.3f", best.stats.scan_seconds),
                     StrFormat("%.3f", best.stats.reduce_seconds),
                     StrFormat("%.3f", best.stats.build_seconds),
                     StrFormat("%.2fx", speedup)},
                    widths);
  }

  std::string json = "{\n";
  json += StrFormat(
      "  \"bench\": \"parallel_counting\",\n"
      "  \"records\": %zu,\n  \"seed\": %llu,\n  \"minsup\": %.4f,\n"
      "  \"frequent_items\": %zu,\n  \"candidates\": %zu,\n"
      "  \"super_candidates\": %zu,\n  \"hardware_concurrency\": %u,\n"
      "  \"reps\": %zu,\n  \"sweep\": [",
      mapped->num_rows(), static_cast<unsigned long long>(seed), minsup,
      catalog.num_items(), c2.size(),
      points.front().stats.num_super_candidates, hw, reps);
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    if (i > 0) json += ',';
    json += StrFormat(
        "\n    {\"threads\": %zu, \"threads_used\": %zu,"
        " \"total_seconds\": %.6f, \"scan_seconds\": %.6f,"
        " \"reduce_seconds\": %.6f, \"build_seconds\": %.6f,"
        " \"speedup\": %.4f, \"array_counters\": %zu,"
        " \"tree_counters\": %zu, \"direct_counters\": %zu,"
        " \"atomic_shared_counters\": %zu, \"counter_bytes\": %llu,"
        " \"replicated_bytes\": %llu}",
        p.threads, p.stats.threads_used, p.seconds, p.stats.scan_seconds,
        p.stats.reduce_seconds, p.stats.build_seconds,
        points.front().seconds / p.seconds, p.stats.num_array_counters,
        p.stats.num_tree_counters, p.stats.num_direct,
        p.stats.num_atomic_shared,
        static_cast<unsigned long long>(p.stats.counter_bytes),
        static_cast<unsigned long long>(p.stats.replicated_bytes));
  }
  json += "\n  ]\n}\n";

  FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
