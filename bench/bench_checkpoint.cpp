// Per-pass checkpoint overhead: the same mining run with checkpointing off
// and on (every pass boundary), at 1 and 4 threads. The delta is the whole
// price of crash safety — serializing the catalog plus every completed
// pass's itemsets, CRC, fsync, and atomic rename, once per pass. Also
// reports the resume win: wall time of a run restarted from the last-pass
// checkpoint versus mining from scratch.
//
//   $ ./bench_checkpoint [--records=N] [--seed=S] [--reps=R] [--out=FILE]
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "core/miner.h"
#include "table/datagen.h"

namespace {

using namespace qarm;

MinerOptions BaseOptions(size_t threads) {
  MinerOptions options;
  options.minsup = 0.15;
  options.minconf = 0.40;
  options.max_support = 0.45;
  options.partial_completeness = 3.0;
  options.num_threads = threads;
  return options;
}

MiningResult MustMine(const MinerOptions& options, const Table& table) {
  Result<MiningResult> result = QuantitativeRuleMiner(options).Mine(table);
  QARM_CHECK(result.ok());
  return std::move(result).value();
}

}  // namespace

int main(int argc, char** argv) {
  const size_t records = bench::FlagU64(argc, argv, "records", 100000);
  const uint64_t seed = bench::FlagU64(argc, argv, "seed", 42);
  const size_t reps = bench::FlagU64(argc, argv, "reps", 3);
  std::string out = "BENCH_checkpoint.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
  }

  const Table data = MakeFinancialDataset(records, seed);
  const std::string qcp = out + ".qcp";

  std::printf("Checkpoint overhead: financial dataset, %zu records, best of "
              "%zu reps\n\n",
              records, reps);
  std::vector<int> widths = {8, 12, 12, 10, 12, 12};
  bench::PrintRow({"threads", "plain (s)", "ckpt (s)", "ovh (%)",
                   "write (s)", "ckpt bytes"},
                  widths);
  bench::PrintSeparator(widths);

  struct Point {
    size_t threads = 0;
    double plain_seconds = 0;
    double ckpt_seconds = 0;
    double write_seconds = 0;
    double resume_seconds = 0;
    uint64_t checkpoint_bytes = 0;
    size_t checkpoints_written = 0;
    size_t passes = 0;
  };
  std::vector<Point> points;

  for (size_t threads : {size_t{1}, size_t{4}}) {
    Point p;
    p.threads = threads;
    size_t plain_rules = 0;
    size_t ckpt_rules = 0;
    for (size_t rep = 0; rep < reps; ++rep) {
      const MiningResult plain = MustMine(BaseOptions(threads), data);
      if (rep == 0 || plain.stats.total_seconds < p.plain_seconds) {
        p.plain_seconds = plain.stats.total_seconds;
      }
      plain_rules = plain.rules.size();
      p.passes = plain.stats.passes.size();

      MinerOptions with_ckpt = BaseOptions(threads);
      with_ckpt.checkpoint_path = qcp;
      const MiningResult ckpt = MustMine(with_ckpt, data);
      if (rep == 0 || ckpt.stats.total_seconds < p.ckpt_seconds) {
        p.ckpt_seconds = ckpt.stats.total_seconds;
        p.write_seconds = ckpt.stats.checkpoint.write_seconds;
        p.checkpoint_bytes = ckpt.stats.checkpoint.last_checkpoint_bytes;
        p.checkpoints_written = ckpt.stats.checkpoint.checkpoints_written;
      }
      ckpt_rules = ckpt.rules.size();
    }
    if (plain_rules != ckpt_rules) {
      std::fprintf(stderr,
                   "FATAL: checkpointed run changed the output "
                   "(%zu vs %zu rules)\n",
                   ckpt_rules, plain_rules);
      return 1;
    }

    // Resume win: interrupt after the second-to-last pass, then time the
    // resumed completion against the from-scratch run.
    if (p.passes >= 2) {
      MinerOptions interrupted = BaseOptions(threads);
      interrupted.checkpoint_path = qcp;
      interrupted.stop_after_pass = p.passes - 1;
      Result<MiningResult> killed =
          QuantitativeRuleMiner(interrupted).Mine(data);
      QARM_CHECK(!killed.ok());
      MinerOptions resume = BaseOptions(threads);
      resume.checkpoint_path = qcp;
      const MiningResult resumed = MustMine(resume, data);
      QARM_CHECK(resumed.stats.checkpoint.resumed);
      p.resume_seconds = resumed.stats.total_seconds;
    }

    const double overhead =
        (p.ckpt_seconds - p.plain_seconds) / p.plain_seconds * 100.0;
    bench::PrintRow({StrFormat("%zu", p.threads),
                     StrFormat("%.4f", p.plain_seconds),
                     StrFormat("%.4f", p.ckpt_seconds),
                     StrFormat("%.1f", overhead),
                     StrFormat("%.4f", p.write_seconds),
                     StrFormat("%llu", static_cast<unsigned long long>(
                                           p.checkpoint_bytes))},
                    widths);
    points.push_back(p);
  }

  std::string json = "{\n";
  json += StrFormat(
      "  \"bench\": \"checkpoint\",\n  \"records\": %zu,\n"
      "  \"seed\": %llu,\n  \"reps\": %zu,\n  \"points\": [",
      records, static_cast<unsigned long long>(seed), reps);
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    json += StrFormat(
        "%s\n    {\"threads\": %zu, \"passes\": %zu,"
        " \"plain_seconds\": %.6f, \"checkpoint_seconds\": %.6f,"
        " \"checkpoint_write_seconds\": %.6f,"
        " \"resume_seconds\": %.6f,"
        " \"checkpoints_written\": %zu, \"checkpoint_bytes\": %llu}",
        i > 0 ? "," : "", p.threads, p.passes, p.plain_seconds,
        p.ckpt_seconds, p.write_seconds, p.resume_seconds,
        p.checkpoints_written,
        static_cast<unsigned long long>(p.checkpoint_bytes));
  }
  json += "\n  ]\n}\n";
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
