// Figure 8 reproduction: "Interest Measure".
//
// The paper plots the fraction of rules identified as interesting as the
// interest level rises from 0 (no interest measure) to 2, for four
// (minsup, minconf) configurations: (30%,50%), (20%,25%), (10%,50%),
// (10%,25%). The fraction decreases monotonically in the interest level.
//
//   $ ./bench_fig8_interest [--records=N] [--seed=S] [--k=K]
#include <cstdio>

#include "bench/bench_util.h"
#include "core/apriori_quant.h"
#include "core/interest.h"
#include "core/miner.h"
#include "core/rules.h"
#include "partition/mapper.h"
#include "table/datagen.h"

int main(int argc, char** argv) {
  using namespace qarm;
  const size_t records = bench::FlagU64(argc, argv, "records", 50000);
  const uint64_t seed = bench::FlagU64(argc, argv, "seed", 42);
  // The four (minsup, minconf) configurations share one partitioning so
  // that only the interest level varies: 20 equi-depth base intervals per
  // attribute (a 5% grain, fine enough for the narrow [30%, 40%] window of
  // the strictest configuration). Equation 2 maps this back to a per-minsup
  // partial completeness level of 1 + 0.2/minsup with n' = 2.
  const size_t intervals = bench::FlagU64(argc, argv, "intervals", 20);

  std::printf(
      "Figure 8: %% of rules found interesting vs interest level\n"
      "dataset: financial, %zu records (seed %llu); maxsup 40%%, %zu base "
      "intervals\n\n",
      records, static_cast<unsigned long long>(seed), intervals);

  Table data = MakeFinancialDataset(records, seed);

  struct Config {
    double minsup;
    double minconf;
  };
  const Config configs[] = {
      {0.30, 0.50}, {0.20, 0.25}, {0.10, 0.50}, {0.10, 0.25}};
  const double levels[] = {0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0};

  std::vector<int> widths = {20, 8};
  std::vector<std::string> header = {"config (sup,conf)", "rules"};
  for (double level : levels) {
    header.push_back(StrFormat("@%.2f", level));
    widths.push_back(7);
  }
  bench::PrintRow(header, widths);
  bench::PrintSeparator(widths);

  for (const Config& config : configs) {
    MinerOptions options;
    options.minsup = config.minsup;
    options.minconf = config.minconf;
    options.max_support = 0.40;
    options.num_intervals_override = intervals;

    MapOptions map_options;
    map_options.num_intervals_override = intervals;
    map_options.minsup = options.minsup;
    auto mapped = MapTable(data, map_options);
    if (!mapped.ok()) continue;

    ItemCatalog catalog = ItemCatalog::Build(*mapped, options);
    FrequentItemsetResult frequent =
        MineFrequentItemsets(*mapped, catalog, options);
    std::vector<QuantRule> rules = GenerateQuantRules(
        frequent.itemsets, catalog, mapped->num_rows(), options.minconf);

    std::vector<std::string> cells = {
        StrFormat("%.0f%% sup, %.0f%% conf", config.minsup * 100,
                  config.minconf * 100),
        StrFormat("%zu", rules.size())};
    for (double level : levels) {
      InterestEvaluator evaluator(&catalog, &frequent.itemsets, level,
                                  InterestMode::kSupportOrConfidence);
      evaluator.EvaluateRules(&rules);
      size_t interesting = 0;
      for (const QuantRule& r : rules) {
        if (r.interesting) ++interesting;
      }
      double pct = rules.empty() ? 0.0
                                 : 100.0 * static_cast<double>(interesting) /
                                       static_cast<double>(rules.size());
      cells.push_back(StrFormat("%.1f", pct));
    }
    bench::PrintRow(cells, widths);
  }

  std::printf(
      "\nExpected shape (paper): the percentage of rules identified as\n"
      "interesting decreases as the interest level increases; at level 0\n"
      "every rule is interesting.\n");
  return 0;
}
