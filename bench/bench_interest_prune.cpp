// Lemma 5 ablation: candidate pruning via the interest level.
//
// With an interest level R, any quantitative item whose support exceeds 1/R
// can never be R-interesting on support, so it is deleted after pass 1 and
// never enters candidate generation. This bench measures the frequent-item
// count, per-pass candidate counts, and total time with the prune on vs off.
//
//   $ ./bench_interest_prune [--records=N] [--seed=S]
#include <cstdio>

#include "bench/bench_util.h"
#include "core/miner.h"
#include "table/datagen.h"

int main(int argc, char** argv) {
  using namespace qarm;
  const size_t records = bench::FlagU64(argc, argv, "records", 50000);
  const uint64_t seed = bench::FlagU64(argc, argv, "seed", 11);

  Table data = MakeFinancialDataset(records, seed);
  // A high maxsup leaves wide-support items in play, giving Lemma 5
  // something to prune at moderate interest levels.
  std::printf(
      "Lemma 5 interest-prune ablation (%zu records; minsup 20%%, maxsup "
      "70%%, minconf 50%%)\n\n",
      records);

  std::vector<int> widths = {10, 8, 12, 10, 14, 12, 14, 10};
  bench::PrintRow({"prune", "R", "items", "pruned", "C2", "rules",
                   "interesting", "time ms"},
                  widths);
  bench::PrintSeparator(widths);

  for (double r : {1.5, 2.0, 3.0}) {
    for (bool prune : {false, true}) {
      MinerOptions options;
      options.minsup = 0.20;
      options.minconf = 0.50;
      options.max_support = 0.70;
      options.partial_completeness = 3.0;
      options.max_quantitative_per_rule = 2;  // n' refinement, see DESIGN.md
      options.interest_level = r;
      // Lemma 5 reasons about expected *support*; the paper applies the
      // prune when the user asks for support-and-confidence interest.
      options.interest_mode = InterestMode::kSupportAndConfidence;
      options.interest_item_prune = prune;
      QuantitativeRuleMiner miner(options);
      Result<MiningResult> result = miner.Mine(data);
      if (!result.ok()) {
        std::fprintf(stderr, "failed: %s\n",
                     result.status().ToString().c_str());
        continue;
      }
      size_t c2 = result->stats.passes.size() > 1
                      ? result->stats.passes[1].num_candidates
                      : 0;
      bench::PrintRow({prune ? "on" : "off", StrFormat("%.1f", r),
                       StrFormat("%zu", result->stats.num_frequent_items),
                       StrFormat("%zu",
                                 result->stats.items_pruned_by_interest),
                       StrFormat("%zu", c2),
                       StrFormat("%zu", result->stats.num_rules),
                       StrFormat("%zu", result->stats.num_interesting_rules),
                       StrFormat("%.0f", result->stats.total_seconds * 1e3)},
                      widths);
    }
  }

  std::printf(
      "\nExpected shape: with the prune on, items with support > 1/R\n"
      "disappear, shrinking the candidate sets and the runtime, more so at\n"
      "higher interest levels. Lemma 5 guarantees pruned items could never\n"
      "be R-interesting on support; the interesting-rule count can still\n"
      "shift because pruning wide items also removes ancestors that other\n"
      "rules were judged against.\n");
  return 0;
}
