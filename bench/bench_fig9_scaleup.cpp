// Figure 9 reproduction: "Scale-up: Number of records".
//
// The paper plots relative execution time as the record count grows 10x
// (50k -> 500k), for minimum supports of 30%, 20% and 10%, normalized to
// the 50k time. The algorithm scales near-linearly: candidate generation is
// record-count independent, support counting is proportional to records.
//
//   $ ./bench_fig9_scaleup [--base=N] [--seed=S] [--k=K]
//
// --base sets the smallest record count (default 50000, the paper's);
// points at 1x, 2x, 4x, 6x, 8x, 10x of the base are measured.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/miner.h"
#include "table/datagen.h"

int main(int argc, char** argv) {
  using namespace qarm;
  const size_t base = bench::FlagU64(argc, argv, "base", 50000);
  const uint64_t seed = bench::FlagU64(argc, argv, "seed", 42);
  // The paper's n' refinement (end of Section 3.2): no rule in this
  // dataset has more than 3 quantitative attributes, so Equation 2 may
  // use n' = 3 instead of n = 5, reducing the interval count (and
  // runtime) without weakening the partial-completeness guarantee for
  // the rules that actually occur. Set --nprime=5 for the strict bound.
  const size_t nprime = bench::FlagU64(argc, argv, "nprime", 3);
  const double k = bench::FlagDouble(argc, argv, "k", 3.0);

  std::printf(
      "Figure 9: relative execution time vs number of records\n"
      "dataset: financial (seed %llu); minconf 25%%, maxsup 40%%, partial "
      "completeness %.1f; base %zu records\n\n",
      static_cast<unsigned long long>(seed), k, base);

  const size_t multipliers[] = {1, 2, 4, 6, 8, 10};
  const double minsups[] = {0.30, 0.20, 0.10};

  // Generate the largest dataset once; prefixes give the smaller points
  // (records are i.i.d., so a prefix is an unbiased sample).
  Table full = MakeFinancialDataset(base * 10, seed);

  std::vector<int> widths = {10, 26, 26, 26};
  bench::PrintRow({"records", "30% sup (s, rel)", "20% sup (s, rel)",
                   "10% sup (s, rel)"},
                  widths);
  bench::PrintSeparator(widths);

  double base_seconds[3] = {0, 0, 0};
  for (size_t mult : multipliers) {
    size_t records = base * mult;
    Table data = full.Head(records);
    std::vector<std::string> cells = {StrFormat("%zu", records)};
    for (size_t i = 0; i < 3; ++i) {
      MinerOptions options;
      options.minsup = minsups[i];
      options.minconf = 0.25;
      options.max_support = 0.40;
      options.partial_completeness = k;
      options.max_quantitative_per_rule = nprime;
      QuantitativeRuleMiner miner(options);
      Timer timer;
      Result<MiningResult> result = miner.Mine(data);
      double seconds = timer.ElapsedSeconds();
      if (!result.ok()) {
        cells.push_back("error");
        continue;
      }
      if (mult == 1) base_seconds[i] = seconds;
      cells.push_back(StrFormat("%.2fs  (%.2fx)", seconds,
                                base_seconds[i] > 0
                                    ? seconds / base_seconds[i]
                                    : 1.0));
    }
    bench::PrintRow(cells, widths);
  }

  std::printf(
      "\nExpected shape (paper): near-linear scale-up — the relative time\n"
      "at 10x the records stays close to 10x once support counting (linear\n"
      "in records) dominates. At low minimum supports the record-\n"
      "independent candidate-generation/collection work is the bigger\n"
      "term, so relative time stays flat (better than linear) until the\n"
      "record count grows past it.\n");
  return 0;
}
