// Partitioning ablation (Section 3 / Section 7): equi-depth vs equi-width
// base intervals on skewed data.
//
// Lemma 4 says equi-depth minimizes the partial completeness level for a
// given interval count. On skewed (log-normal) data, equi-width packs most
// records into a few intervals, so its realized partial completeness — and
// therefore the information lost — blows up. This bench quantifies both,
// plus the downstream effect on frequent items and rules.
//
//   $ ./bench_partitioning [--records=N] [--seed=S]
#include <cstdio>

#include "bench/bench_util.h"
#include "core/miner.h"
#include "table/datagen.h"

int main(int argc, char** argv) {
  using namespace qarm;
  const size_t records = bench::FlagU64(argc, argv, "records", 50000);
  const uint64_t seed = bench::FlagU64(argc, argv, "seed", 5);

  Table data = MakeFinancialDataset(records, seed);
  std::printf(
      "Partitioning ablation on skewed data (%zu records, log-normal "
      "incomes)\nminsup 20%%, minconf 25%%, maxsup 40%%\n\n",
      records);

  std::vector<int> widths = {12, 6, 14, 14, 10, 14};
  bench::PrintRow({"method", "K", "achieved K", "freq items", "rules",
                   "time (ms)"},
                  widths);
  bench::PrintSeparator(widths);

  for (double k : {1.5, 2.0, 3.0}) {
    for (PartitionMethod method :
         {PartitionMethod::kEquiDepth, PartitionMethod::kEquiWidth,
          PartitionMethod::kKMeans}) {
      MinerOptions options;
      options.minsup = 0.20;
      options.minconf = 0.25;
      options.max_support = 0.40;
      options.partial_completeness = k;
      options.partition_method = method;
      options.max_quantitative_per_rule = 3;  // n' refinement, see DESIGN.md
      QuantitativeRuleMiner miner(options);
      Result<MiningResult> result = miner.Mine(data);
      if (!result.ok()) {
        std::fprintf(stderr, "failed: %s\n",
                     result.status().ToString().c_str());
        continue;
      }
      bench::PrintRow(
          {method == PartitionMethod::kEquiDepth
               ? "equi-depth"
               : (method == PartitionMethod::kEquiWidth ? "equi-width"
                                                        : "kmeans"),
           StrFormat("%.1f", k),
           StrFormat("%.2f", result->stats.achieved_partial_completeness),
           StrFormat("%zu", result->stats.num_frequent_items),
           StrFormat("%zu", result->stats.num_rules),
           StrFormat("%.0f", result->stats.total_seconds * 1e3)},
          widths);
    }
  }

  std::printf(
      "\nExpected shape: for the same interval budget, equi-width's\n"
      "achieved partial completeness is far above the requested K on\n"
      "skewed attributes (its densest interval carries most of the mass),\n"
      "confirming Lemma 4's optimality of equi-depth.\n");
  return 0;
}
