// Post-counting pipeline thread sweep.
//
// Measures the three phases that run after support counting — candidate
// generation (all levels), rule generation + decode, and interest
// evaluation — on the synthetic financial workload at 1, 2, 4 and 8
// threads, and emits a machine-readable JSON report alongside the
// human-readable table.
//
//   $ ./bench_rule_pipeline [--records=N] [--seed=S] [--minsup=F]
//                           [--minconf=F] [--interest=R] [--k=K]
//                           [--max-itemset-size=M] [--reps=R] [--out=FILE]
//
// Every run's output is checked against the single-thread baseline; any
// divergence is a hard failure (exit 1). Speedups are relative to the
// single-thread run. The JSON records hardware_concurrency so results from
// machines with fewer cores than threads (where no speedup is physically
// possible) are interpretable.
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/apriori_quant.h"
#include "core/candidate_gen.h"
#include "core/frequent_items.h"
#include "core/interest.h"
#include "core/report.h"
#include "core/rules.h"
#include "partition/mapper.h"
#include "table/datagen.h"

int main(int argc, char** argv) {
  using namespace qarm;
  const size_t records = bench::FlagU64(argc, argv, "records", 50000);
  const uint64_t seed = bench::FlagU64(argc, argv, "seed", 42);
  const double minsup = bench::FlagDouble(argc, argv, "minsup", 0.10);
  const double minconf = bench::FlagDouble(argc, argv, "minconf", 0.25);
  const double interest = bench::FlagDouble(argc, argv, "interest", 1.1);
  const double k = bench::FlagDouble(argc, argv, "k", 3.0);
  // Itemset-size cap: without it the level-wise mining (not the pipeline
  // under test) dominates setup time and memory — the financial workload's
  // combined quantitative ranges make L2 huge, so an uncapped C3 join
  // explodes combinatorially.
  const size_t max_itemset_size =
      bench::FlagU64(argc, argv, "max-itemset-size", 2);
  const size_t reps = bench::FlagU64(argc, argv, "reps", 3);
  std::string out = "BENCH_rule_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
  }

  Table data = MakeFinancialDataset(records, seed);
  MapOptions map_options;
  map_options.partial_completeness = k;
  map_options.minsup = minsup;
  Result<MappedTable> mapped = MapTable(data, map_options);
  if (!mapped.ok()) {
    std::fprintf(stderr, "mapping failed: %s\n",
                 mapped.status().ToString().c_str());
    return 1;
  }

  // Catalog and frequent itemsets are computed once, serially: this bench
  // isolates the post-counting pipeline.
  MinerOptions options;
  options.minsup = minsup;
  options.minconf = minconf;
  options.max_support = 0.40;
  options.partial_completeness = k;
  options.max_itemset_size = max_itemset_size;
  ItemCatalog catalog = ItemCatalog::Build(*mapped, options);
  FrequentItemsetResult frequent =
      MineFrequentItemsets(*mapped, catalog, options);

  // L_{k-1} per level, for re-running candidate generation in isolation.
  // Like the miner, stop at the itemset-size cap: generating candidates
  // one level past it would measure work the miner never does.
  std::map<size_t, ItemsetSet> levels;
  for (const FrequentItemset& f : frequent.itemsets) {
    if (max_itemset_size != 0 && f.items.size() >= max_itemset_size) continue;
    levels.try_emplace(f.items.size(), f.items.size())
        .first->second.AppendVector(f.items);
  }

  // Interest evaluator built once; its wildcard index is shared read-only
  // by every sweep point.
  InterestEvaluator evaluator(&catalog, &frequent.itemsets, interest,
                              options.interest_mode);
  std::vector<QuantRule> base_rules = GenerateQuantRules(
      frequent.itemsets, catalog, mapped->num_rows(), minconf);

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf(
      "Post-counting pipeline: candgen + rulegen + interest, financial "
      "dataset\nrecords %zu, frequent items %zu, frequent itemsets %zu, "
      "rules %zu, minsup %.0f%%, hardware threads %u, best of %zu reps\n\n",
      mapped->num_rows(), catalog.num_items(), frequent.itemsets.size(),
      base_rules.size(), minsup * 100, hw, reps);

  struct Point {
    size_t threads = 1;
    double candgen_seconds = 0.0;
    double rulegen_seconds = 0.0;
    double interest_seconds = 0.0;
    double total_seconds = 0.0;
    size_t candgen_threads_used = 1;
    size_t rulegen_threads_used = 1;
    size_t interest_threads_used = 1;
  };
  std::vector<Point> points;

  // Single-thread baselines for the divergence check.
  std::vector<std::vector<int32_t>> baseline_candidates;
  std::string baseline_rules_json;
  std::vector<bool> baseline_flags;

  std::vector<int> widths = {8, 12, 12, 12, 12, 10};
  bench::PrintRow({"threads", "candgen (s)", "rulegen (s)", "interest (s)",
                   "total (s)", "speedup"},
                  widths);
  bench::PrintSeparator(widths);

  const size_t sweep[] = {1, 2, 4, 8};
  for (size_t threads : sweep) {
    Point best;
    best.threads = threads;
    for (size_t rep = 0; rep < reps; ++rep) {
      Point point;
      point.threads = threads;

      // Phase 1: candidate generation, every level.
      std::vector<std::vector<int32_t>> all_candidates;
      Timer timer;
      for (const auto& [size, level] : levels) {
        CandidateGenStats stats;
        ItemsetSet candidates =
            GenerateCandidates(catalog, level, threads, &stats);
        point.candgen_threads_used =
            std::max(point.candgen_threads_used, stats.threads_used);
        for (size_t c = 0; c < candidates.size(); ++c) {
          all_candidates.push_back(candidates.itemset_vector(c));
        }
      }
      point.candgen_seconds = timer.ElapsedSeconds();

      // Phase 2: rule generation + decode.
      timer.Reset();
      std::vector<QuantRule> rules =
          GenerateQuantRules(frequent.itemsets, catalog, mapped->num_rows(),
                             minconf, threads, &point.rulegen_threads_used);
      point.rulegen_seconds = timer.ElapsedSeconds();

      // Phase 3: interest evaluation on a fresh copy of the rules.
      std::vector<QuantRule> evaluated = base_rules;
      timer.Reset();
      evaluator.EvaluateRules(&evaluated, threads,
                              &point.interest_threads_used);
      point.interest_seconds = timer.ElapsedSeconds();
      point.total_seconds = point.candgen_seconds + point.rulegen_seconds +
                            point.interest_seconds;

      // Divergence check against the 1-thread baseline of rep 0.
      std::string rules_json;
      for (const QuantRule& rule : rules) {
        rules_json += RuleToJson(rule, *mapped);
        rules_json += '\n';
      }
      std::vector<bool> flags;
      flags.reserve(evaluated.size());
      for (const QuantRule& rule : evaluated) {
        flags.push_back(rule.interesting);
      }
      if (threads == 1 && rep == 0) {
        baseline_candidates = std::move(all_candidates);
        baseline_rules_json = std::move(rules_json);
        baseline_flags = std::move(flags);
      } else if (all_candidates != baseline_candidates ||
                 rules_json != baseline_rules_json ||
                 flags != baseline_flags) {
        std::fprintf(stderr, "FATAL: output diverges at %zu threads\n",
                     threads);
        return 1;
      }

      if (rep == 0 || point.total_seconds < best.total_seconds) {
        const size_t t = best.threads;
        best = point;
        best.threads = t;
      }
    }
    points.push_back(best);
    double speedup = points.front().total_seconds / best.total_seconds;
    bench::PrintRow({StrFormat("%zu", threads),
                     StrFormat("%.3f", best.candgen_seconds),
                     StrFormat("%.3f", best.rulegen_seconds),
                     StrFormat("%.3f", best.interest_seconds),
                     StrFormat("%.3f", best.total_seconds),
                     StrFormat("%.2fx", speedup)},
                    widths);
  }

  std::string json = "{\n";
  json += StrFormat(
      "  \"bench\": \"rule_pipeline\",\n"
      "  \"records\": %zu,\n  \"seed\": %llu,\n  \"minsup\": %.4f,\n"
      "  \"minconf\": %.4f,\n  \"interest_level\": %.4f,\n"
      "  \"frequent_items\": %zu,\n  \"frequent_itemsets\": %zu,\n"
      "  \"rules\": %zu,\n  \"hardware_concurrency\": %u,\n"
      "  \"reps\": %zu,\n  \"sweep\": [",
      mapped->num_rows(), static_cast<unsigned long long>(seed), minsup,
      minconf, interest, catalog.num_items(), frequent.itemsets.size(),
      base_rules.size(), hw, reps);
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    if (i > 0) json += ',';
    json += StrFormat(
        "\n    {\"threads\": %zu, \"candgen_seconds\": %.6f,"
        " \"rulegen_seconds\": %.6f, \"interest_seconds\": %.6f,"
        " \"total_seconds\": %.6f, \"speedup\": %.4f,"
        " \"candgen_threads_used\": %zu, \"rulegen_threads_used\": %zu,"
        " \"interest_threads_used\": %zu}",
        p.threads, p.candgen_seconds, p.rulegen_seconds, p.interest_seconds,
        p.total_seconds, points.front().total_seconds / p.total_seconds,
        p.candgen_threads_used, p.rulegen_threads_used,
        p.interest_threads_used);
  }
  json += "\n  ]\n}\n";

  FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
