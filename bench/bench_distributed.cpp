// Distributed mining scale-up: the same QBT mined at 1/2/4/8 forked
// worker processes, then at 1/2/4 TCP worker servers on localhost. Every
// sharded run is checked byte-identical to the single-process rules
// before its timing counts — a wrong fast answer fails the bench. Reports
// per-pass exchange volume (the QCP-style shard snapshots and count
// merges crossing the socketpairs or the loopback) and coordinator merge
// time, the two costs the single-process miner does not pay. The TCP rows
// price the transport itself: same shards, same merges, but framed
// through the full handshake/heartbeat/deadline machinery.
//
//   $ ./bench_distributed [--records=N] [--seed=S] [--reps=R]
//                         [--block-rows=N] [--threads=N]
//                         [--minsup=F] [--maxsup=F] [--out=FILE]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "core/miner.h"
#include "core/report.h"
#include "dist/dist_miner.h"
#include "dist/worker_server.h"
#include "partition/mapper.h"
#include "storage/qbt_writer.h"
#include "storage/record_source.h"
#include "table/datagen.h"

namespace {

using namespace qarm;

MinerOptions BaseOptions(size_t threads, double minsup, double maxsup) {
  MinerOptions options;
  options.minsup = minsup;
  options.minconf = 0.40;
  options.max_support = maxsup;
  options.partial_completeness = 3.0;
  options.num_threads = threads;
  return options;
}

std::vector<std::string> RulesAsJson(const MiningResult& result) {
  std::vector<std::string> out;
  out.reserve(result.rules.size());
  for (const QuantRule& rule : result.rules) {
    out.push_back(RuleToJson(rule, result.mapped));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t records = bench::FlagU64(argc, argv, "records", 500000);
  const uint64_t seed = bench::FlagU64(argc, argv, "seed", 42);
  const size_t reps = bench::FlagU64(argc, argv, "reps", 3);
  const size_t block_rows = bench::FlagU64(argc, argv, "block-rows", 8192);
  const size_t threads = bench::FlagU64(argc, argv, "threads", 1);
  double minsup = 0.15;
  double maxsup = 0.45;
  std::string out = "BENCH_distributed.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
    if (std::strncmp(argv[i], "--minsup=", 9) == 0) {
      minsup = std::atof(argv[i] + 9);
    }
    if (std::strncmp(argv[i], "--maxsup=", 9) == 0) {
      maxsup = std::atof(argv[i] + 9);
    }
  }

  const Table data = MakeFinancialDataset(records, seed);
  MapOptions map_options;
  map_options.partial_completeness = 3.0;
  map_options.minsup = minsup;
  Result<MappedTable> mapped = MapTable(data, map_options);
  QARM_CHECK(mapped.ok());
  const std::string qbt = out + ".qbt";
  QbtWriteOptions write_options;
  write_options.rows_per_block = block_rows;
  QARM_CHECK(WriteQbt(*mapped, qbt, write_options).ok());
  Result<std::unique_ptr<QbtFileSource>> source = QbtFileSource::Open(qbt);
  QARM_CHECK(source.ok());
  const size_t num_blocks = (*source)->num_blocks();

  const size_t cpus = std::thread::hardware_concurrency();
  std::printf(
      "Distributed scale-up: financial dataset, %zu records, %zu blocks of "
      "%zu rows, %zu threads/worker, %zu cpus, best of %zu reps\n",
      records, num_blocks, block_rows, threads, cpus, reps);
  if (cpus < 2) {
    std::printf(
        "NOTE: single-cpu host — workers time-slice one core, so the sweep "
        "measures coordination overhead (exchange bytes, merge time), not "
        "scale-up.\n");
  }
  std::printf("\n");
  std::vector<int> widths = {6, 8, 10, 9, 11, 11, 11, 10, 9};
  bench::PrintRow({"mode", "workers", "wall (s)", "speedup", "sent (KB)",
                   "recv (KB)", "exch (s)", "merge (s)", "respawns"},
                  widths);
  bench::PrintSeparator(widths);

  struct Point {
    std::string transport;
    size_t workers = 0;
    double wall_seconds = 0;
    uint64_t bytes_sent = 0;
    uint64_t bytes_received = 0;
    double exchange_seconds = 0;
    double merge_seconds = 0;
    size_t respawned = 0;
    std::vector<DistPassStats> passes;
  };
  std::vector<Point> points;
  std::vector<std::string> baseline_rules;

  // One sweep point: `reps` runs, best wall time kept, rules byte-compared
  // against the first run of the whole sweep (fork, workers=1).
  auto run_point = [&](const std::string& transport, size_t workers,
                       const std::vector<std::string>& endpoints) -> bool {
    Point p;
    p.transport = transport;
    p.workers = workers;
    for (size_t rep = 0; rep < reps; ++rep) {
      MinerOptions options = BaseOptions(threads, minsup, maxsup);
      if (endpoints.empty()) {
        options.num_workers = workers;
      } else {
        options.worker_endpoints = endpoints;
      }
      Result<MiningResult> result = MineDistributedQbt(qbt, options);
      QARM_CHECK(result.ok());
      if (baseline_rules.empty()) {
        baseline_rules = RulesAsJson(*result);
        QARM_CHECK(!baseline_rules.empty());
      } else if (RulesAsJson(*result) != baseline_rules) {
        std::fprintf(stderr, "FATAL: %s workers=%zu changed the mined rules\n",
                     transport.c_str(), workers);
        return false;
      }
      if (rep == 0 || result->stats.total_seconds < p.wall_seconds) {
        p.wall_seconds = result->stats.total_seconds;
        p.bytes_sent = 0;
        p.bytes_received = 0;
        p.exchange_seconds = 0;
        p.merge_seconds = 0;
        p.passes = result->stats.dist.passes;
        p.respawned = result->stats.dist.workers_respawned;
        for (const DistPassStats& pass : p.passes) {
          p.bytes_sent += pass.bytes_sent;
          p.bytes_received += pass.bytes_received;
          p.exchange_seconds += pass.exchange_seconds;
          p.merge_seconds += pass.merge_seconds;
        }
      }
    }
    const double speedup =
        points.empty() ? 1.0 : points.front().wall_seconds / p.wall_seconds;
    bench::PrintRow(
        {p.transport, StrFormat("%zu", p.workers),
         StrFormat("%.4f", p.wall_seconds), StrFormat("%.2fx", speedup),
         StrFormat("%.1f", p.bytes_sent / 1024.0),
         StrFormat("%.1f", p.bytes_received / 1024.0),
         StrFormat("%.4f", p.exchange_seconds),
         StrFormat("%.4f", p.merge_seconds), StrFormat("%zu", p.respawned)},
        widths);
    points.push_back(std::move(p));
    return true;
  };

  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    if (workers > num_blocks) {
      std::printf("(skipping fork workers=%zu: only %zu blocks)\n", workers,
                  num_blocks);
      continue;
    }
    if (!run_point("fork", workers, {})) return 1;
  }

  // The same sweep over localhost TCP: one worker server per endpoint, all
  // in this process (the wire and the protocol are the production path;
  // only the process boundary is elided, which is what makes fork-vs-tcp
  // rows a clean measure of transport cost).
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    if (workers > num_blocks) {
      std::printf("(skipping tcp workers=%zu: only %zu blocks)\n", workers,
                  num_blocks);
      continue;
    }
    std::vector<std::unique_ptr<WorkerServer>> servers;
    std::vector<std::string> endpoints;
    for (size_t i = 0; i < workers; ++i) {
      WorkerServerOptions server_options;
      server_options.qbt_path = qbt;
      Result<std::unique_ptr<WorkerServer>> server =
          WorkerServer::Start(server_options);
      QARM_CHECK(server.ok());
      endpoints.push_back("127.0.0.1:" + std::to_string((*server)->port()));
      servers.push_back(std::move(server).value());
    }
    if (!run_point("tcp", workers, endpoints)) return 1;
  }
  std::remove(qbt.c_str());

  std::string json = "{\n";
  json += StrFormat(
      "  \"bench\": \"distributed\",\n  \"records\": %zu,\n"
      "  \"seed\": %llu,\n  \"reps\": %zu,\n  \"block_rows\": %zu,\n"
      "  \"num_blocks\": %zu,\n  \"threads_per_worker\": %zu,\n"
      "  \"cpus\": %zu,\n  \"minsup\": %.3f,\n  \"maxsup\": %.3f,\n"
      "  \"rules\": %zu,\n  \"points\": [",
      records, static_cast<unsigned long long>(seed), reps, block_rows,
      num_blocks, threads, cpus, minsup, maxsup, baseline_rules.size());
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    json += StrFormat(
        "%s\n    {\"transport\": \"%s\", \"workers\": %zu,"
        " \"wall_seconds\": %.6f,"
        " \"speedup\": %.4f, \"bytes_sent\": %llu,"
        " \"bytes_received\": %llu, \"exchange_seconds\": %.6f,"
        " \"merge_seconds\": %.6f, \"workers_respawned\": %zu,"
        " \"passes\": [",
        i > 0 ? "," : "", p.transport.c_str(), p.workers, p.wall_seconds,
        points.front().wall_seconds / p.wall_seconds,
        static_cast<unsigned long long>(p.bytes_sent),
        static_cast<unsigned long long>(p.bytes_received),
        p.exchange_seconds, p.merge_seconds, p.respawned);
    for (size_t j = 0; j < p.passes.size(); ++j) {
      const DistPassStats& pass = p.passes[j];
      json += StrFormat(
          "%s{\"k\": %zu, \"bytes_sent\": %llu, \"bytes_received\": %llu,"
          " \"exchange_seconds\": %.6f, \"merge_seconds\": %.6f}",
          j > 0 ? ", " : "", pass.k,
          static_cast<unsigned long long>(pass.bytes_sent),
          static_cast<unsigned long long>(pass.bytes_received),
          pass.exchange_seconds, pass.merge_seconds);
    }
    json += "]}";
  }
  json += "\n  ]\n}\n";
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
