// Closed-loop load generator for the serving engine: mine the financial
// dataset, index the rules, start the real HTTP server in-process, and
// hammer it with a configurable number of keep-alive clients issuing a
// mixed /match //topk //rules workload. Reports p50/p95/p99 latency and
// QPS with the result cache off and on, verifies cache byte-identity
// along the way, and writes everything (including the serving counters)
// to BENCH_serve.json.
//
//   $ ./bench_serve [--records=N] [--seed=S] [--clients=C]
//       [--requests=R_per_client] [--cache-mb=M] [--server-threads=T]
//       [--out=FILE]
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/miner.h"
#include "core/rules_export.h"
#include "serve/http_client.h"
#include "serve/http_server.h"
#include "serve/rule_catalog.h"
#include "serve/rule_service.h"
#include "table/datagen.h"

namespace {

using namespace qarm;

// Builds a pool of query targets from the catalog's own decode metadata,
// so the workload stays meaningful for any mined rule set: /match records
// draw real labels and in-interval numeric values, /topk cycles metrics,
// /rules pages with filters. The mix is ~50% match, 30% topk, 20% rules.
std::vector<std::string> BuildTargetPool(const RuleCatalog& catalog,
                                         std::mt19937_64& rng, size_t size) {
  const std::vector<MappedAttribute>& attrs = catalog.attributes();
  std::vector<std::string> pool;
  pool.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    const uint64_t pick = rng() % 10;
    std::string target;
    if (pick < 5) {
      target = "/match?";
      bool first = true;
      for (const MappedAttribute& attr : attrs) {
        if (rng() % 3 == 0) continue;  // record lacks this attribute
        if (!first) target += "&";
        first = false;
        target += attr.name;
        target += "=";
        if (attr.kind == AttributeKind::kCategorical) {
          target += attr.labels[rng() % attr.labels.size()];
        } else {
          const Interval& iv = attr.intervals[rng() % attr.intervals.size()];
          target += StrFormat("%.0f", iv.lo);
        }
      }
      if (first) target += "mode=rule";  // degenerate: no fields at all
      if (rng() % 4 == 0) target += "&mode=antecedent";
    } else if (pick < 8) {
      target = "/topk?metric=";
      target += RankMeasureName(static_cast<RankMeasure>(rng() % 3));
      target += StrFormat("&k=%llu",
                          static_cast<unsigned long long>(1 + rng() % 20));
      if (rng() % 3 == 0) {
        target += "&attr=";
        target += attrs[rng() % attrs.size()].name;
      }
    } else {
      target = StrFormat("/rules?offset=%llu&limit=%llu",
                         static_cast<unsigned long long>(rng() % 16),
                         static_cast<unsigned long long>(1 + rng() % 25));
      if (rng() % 2 == 0) {
        target += StrFormat("&min_conf=0.%llu",
                            static_cast<unsigned long long>(rng() % 10));
      }
    }
    pool.push_back(std::move(target));
  }
  return pool;
}

struct RunStats {
  size_t cache_mb = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t total_requests = 0;
  uint64_t errors = 0;
  ResultCacheStats cache;  // zeroed when the cache is off
};

double Percentile(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(idx, sorted_ms.size() - 1)];
}

// One closed-loop run: `clients` threads, each with its own keep-alive
// connection, issuing `requests` targets drawn from the pool.
RunStats RunLoad(std::shared_ptr<const RuleCatalog> catalog,
                 const std::vector<std::string>& pool, size_t clients,
                 size_t requests, size_t cache_mb, size_t server_threads) {
  RuleServiceOptions service_options;
  service_options.cache_bytes = cache_mb * (size_t{1} << 20);
  auto service = std::make_shared<RuleService>(catalog, service_options);
  HttpServerOptions server_options;
  server_options.port = 0;
  server_options.num_threads = server_threads;
  auto server = HttpServer::Start(
      server_options, [service](const HttpRequest& request) {
        return service->Handle(request);
      });
  QARM_CHECK(server.ok());
  const uint16_t port = (*server)->port();

  std::vector<std::vector<double>> latencies(clients);
  std::atomic<uint64_t> errors{0};
  Timer wall;
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::mt19937_64 rng(0x5EE5ull * (c + 1));
      auto client = HttpClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        errors.fetch_add(requests);
        return;
      }
      latencies[c].reserve(requests);
      for (size_t i = 0; i < requests; ++i) {
        const std::string& target = pool[rng() % pool.size()];
        Timer per_request;
        auto response = (*client)->Get(target);
        if (!response.ok() || response->status >= 500) {
          errors.fetch_add(1);
          continue;
        }
        latencies[c].push_back(per_request.ElapsedMillis());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  RunStats stats;
  stats.cache_mb = cache_mb;
  stats.wall_seconds = wall.ElapsedSeconds();
  stats.errors = errors.load();
  std::vector<double> merged;
  for (const auto& per_client : latencies) {
    merged.insert(merged.end(), per_client.begin(), per_client.end());
  }
  std::sort(merged.begin(), merged.end());
  stats.total_requests = merged.size();
  stats.qps = stats.wall_seconds > 0.0
                  ? static_cast<double>(merged.size()) / stats.wall_seconds
                  : 0.0;
  stats.p50_ms = Percentile(merged, 0.50);
  stats.p95_ms = Percentile(merged, 0.95);
  stats.p99_ms = Percentile(merged, 0.99);
  if (service->cache_manager() != nullptr) {
    stats.cache = service->cache_manager()->TotalStats();
  }
  (*server)->Stop();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t records = bench::FlagU64(argc, argv, "records", 20000);
  const uint64_t seed = bench::FlagU64(argc, argv, "seed", 42);
  const size_t clients = bench::FlagU64(argc, argv, "clients", 8);
  const size_t requests = bench::FlagU64(argc, argv, "requests", 2000);
  const size_t cache_mb = bench::FlagU64(argc, argv, "cache-mb", 16);
  const size_t server_threads =
      bench::FlagU64(argc, argv, "server-threads", 4);
  std::string out = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
  }

  // Mine the financial dataset with the paper's interest machinery on, so
  // the served rule set carries lift and the interesting flag.
  const Table data = MakeFinancialDataset(records, seed);
  MinerOptions options;
  options.minsup = 0.30;
  options.minconf = 0.60;
  options.partial_completeness = 3.0;
  options.interest_level = 1.1;
  Timer mine_timer;
  Result<MiningResult> mined = QuantitativeRuleMiner(options).Mine(data);
  QARM_CHECK(mined.ok());
  const double mine_seconds = mine_timer.ElapsedSeconds();
  StoredRuleSet set = ExportRuleSet(*mined, options);

  auto catalog = RuleCatalog::Build(std::move(set));
  QARM_CHECK(catalog.ok());
  const RuleCatalogStats& cat_stats = (*catalog)->stats();
  std::printf("bench_serve: %zu records -> %zu rules (mine %.3fs, index "
              "%.4fs, %zu index bytes)\n",
              records, cat_stats.num_rules, mine_seconds,
              cat_stats.build_seconds, cat_stats.index_bytes);

  std::mt19937_64 rng(seed);
  const std::vector<std::string> pool =
      BuildTargetPool(**catalog, rng, /*size=*/512);

  // Byte-identity: every pool target answered by a cached and an uncached
  // service must produce identical bytes, twice (the second round hits).
  {
    RuleServiceOptions cached_options;
    cached_options.cache_bytes = cache_mb * (size_t{1} << 20);
    RuleService cached(*catalog, cached_options);
    RuleServiceOptions uncached_options;
    uncached_options.cache_bytes = 0;
    RuleService uncached(*catalog, uncached_options);
    for (int round = 0; round < 2; ++round) {
      for (const std::string& target : pool) {
        HttpRequest request;
        const size_t q = target.find('?');
        request.path = target.substr(0, q);
        if (q != std::string::npos) {
          for (const std::string& pair :
               Split(target.substr(q + 1), '&')) {
            const size_t eq = pair.find('=');
            request.params.emplace_back(pair.substr(0, eq),
                                        eq == std::string::npos
                                            ? ""
                                            : pair.substr(eq + 1));
          }
        }
        const HttpResponse a = cached.Handle(request);
        const HttpResponse b = uncached.Handle(request);
        if (a.body != b.body) {
          std::fprintf(stderr,
                       "FATAL: cache changed the bytes of %s (round %d)\n",
                       target.c_str(), round);
          return 1;
        }
      }
    }
    std::printf("byte identity: %zu targets x 2 rounds, cached == uncached\n",
                pool.size());
  }

  std::vector<RunStats> runs;
  for (const size_t mb : {size_t{0}, cache_mb}) {
    runs.push_back(
        RunLoad(*catalog, pool, clients, requests, mb, server_threads));
  }

  std::printf("\n%zu clients x %zu requests, %zu server threads\n\n",
              clients, requests, server_threads);
  std::vector<int> widths = {10, 10, 10, 10, 10, 10, 10};
  bench::PrintRow({"cache", "qps", "p50 ms", "p95 ms", "p99 ms", "hits",
                   "evicts"},
                  widths);
  bench::PrintSeparator(widths);
  for (const RunStats& run : runs) {
    bench::PrintRow(
        {run.cache_mb == 0 ? "off" : StrFormat("%zu MB", run.cache_mb),
         StrFormat("%.0f", run.qps), StrFormat("%.3f", run.p50_ms),
         StrFormat("%.3f", run.p95_ms), StrFormat("%.3f", run.p99_ms),
         StrFormat("%llu", static_cast<unsigned long long>(run.cache.hits)),
         StrFormat("%llu",
                   static_cast<unsigned long long>(run.cache.evictions))},
        widths);
  }

  std::string json = StrFormat(
      "{\n  \"bench\": \"serve\",\n  \"records\": %zu,\n"
      "  \"seed\": %llu,\n  \"clients\": %zu,\n"
      "  \"requests_per_client\": %zu,\n  \"server_threads\": %zu,\n"
      "  \"num_rules\": %zu,\n  \"interval_entries\": %zu,\n"
      "  \"index_bytes\": %zu,\n  \"index_build_seconds\": %.6f,\n"
      "  \"mine_seconds\": %.6f,\n"
      "  \"byte_identity_targets\": %zu,\n  \"points\": [",
      records, static_cast<unsigned long long>(seed), clients, requests,
      server_threads, cat_stats.num_rules, cat_stats.interval_entries,
      cat_stats.index_bytes, cat_stats.build_seconds, mine_seconds,
      pool.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunStats& run = runs[i];
    json += StrFormat(
        "%s\n    {\"cache_mb\": %zu, \"wall_seconds\": %.6f,"
        " \"qps\": %.1f, \"p50_ms\": %.4f, \"p95_ms\": %.4f,"
        " \"p99_ms\": %.4f, \"total_requests\": %llu, \"errors\": %llu,"
        " \"cache\": {\"hits\": %llu, \"misses\": %llu,"
        " \"insertions\": %llu, \"evictions\": %llu,"
        " \"oversized_rejects\": %llu, \"bytes_used\": %llu,"
        " \"byte_budget\": %llu}}",
        i > 0 ? "," : "", run.cache_mb, run.wall_seconds, run.qps,
        run.p50_ms, run.p95_ms, run.p99_ms,
        static_cast<unsigned long long>(run.total_requests),
        static_cast<unsigned long long>(run.errors),
        static_cast<unsigned long long>(run.cache.hits),
        static_cast<unsigned long long>(run.cache.misses),
        static_cast<unsigned long long>(run.cache.insertions),
        static_cast<unsigned long long>(run.cache.evictions),
        static_cast<unsigned long long>(run.cache.oversized_rejects),
        static_cast<unsigned long long>(run.cache.bytes_used),
        static_cast<unsigned long long>(run.cache.byte_budget));
  }
  json += "\n  ]\n}\n";
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
