// Figure 7 reproduction: "Changing the Partial Completeness Level".
//
// The paper plots, for partial completeness levels 1.5..5 on the Section 6
// dataset (minsup 20%, minconf 25%, maxsup 40%):
//   (a) the number of interesting rules, and
//   (b) the percentage of rules found interesting,
// for interest levels 1.1, 1.5 and 2. Both fall as the partial completeness
// level rises (coarser intervals -> fewer, less redundant rules).
//
//   $ ./bench_fig7_partial_completeness [--records=N] [--seed=S]
//
// Uses the layered API directly: mining happens once per K; the three
// interest levels are evaluated as post-passes over the same rule set.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/apriori_quant.h"
#include "core/interest.h"
#include "core/miner.h"
#include "core/rules.h"
#include "partition/mapper.h"
#include "table/datagen.h"

int main(int argc, char** argv) {
  using namespace qarm;
  const size_t records = bench::FlagU64(argc, argv, "records", 50000);
  const uint64_t seed = bench::FlagU64(argc, argv, "seed", 42);
  // The paper's n' refinement (end of Section 3.2): no rule in this
  // dataset has more than 3 quantitative attributes, so Equation 2 may
  // use n' = 3 instead of n = 5, reducing the interval count (and
  // runtime) without weakening the partial-completeness guarantee for
  // the rules that actually occur. Set --nprime=5 for the strict bound.
  const size_t nprime = bench::FlagU64(argc, argv, "nprime", 3);

  std::printf(
      "Figure 7: interesting rules vs partial completeness level\n"
      "dataset: financial, %zu records (seed %llu); minsup 20%%, minconf "
      "25%%, maxsup 40%%\n\n",
      records, static_cast<unsigned long long>(seed));

  Table data = MakeFinancialDataset(records, seed);
  const double interest_levels[] = {1.1, 1.5, 2.0};

  std::vector<int> widths = {6, 12, 9, 22, 22, 22};
  bench::PrintRow({"K", "intervals", "rules", "interesting@1.1",
                   "interesting@1.5", "interesting@2.0"},
                  widths);
  bench::PrintSeparator(widths);

  for (double k : {1.5, 2.0, 3.0, 4.0, 5.0}) {
    MinerOptions options;
    options.minsup = 0.20;
    options.minconf = 0.25;
    options.max_support = 0.40;
    options.partial_completeness = k;
    options.max_quantitative_per_rule = nprime;

    MapOptions map_options;
    map_options.partial_completeness = k;
    map_options.minsup = options.minsup;
    map_options.max_quantitative_per_rule = nprime;
    auto mapped = MapTable(data, map_options);
    if (!mapped.ok()) {
      std::fprintf(stderr, "K=%.1f: %s\n", k,
                   mapped.status().ToString().c_str());
      continue;
    }

    ItemCatalog catalog = ItemCatalog::Build(*mapped, options);
    FrequentItemsetResult frequent =
        MineFrequentItemsets(*mapped, catalog, options);
    std::vector<QuantRule> rules = GenerateQuantRules(
        frequent.itemsets, catalog, mapped->num_rows(), options.minconf);

    size_t intervals = 0;
    for (size_t a = 0; a < mapped->num_attributes(); ++a) {
      const MappedAttribute& attr = mapped->attribute(a);
      if (attr.kind == AttributeKind::kQuantitative && attr.partitioned) {
        intervals = std::max(intervals, attr.intervals.size());
      }
    }

    std::vector<std::string> cells;
    cells.push_back(StrFormat("%.1f", k));
    cells.push_back(StrFormat("%zu", intervals));
    cells.push_back(StrFormat("%zu", rules.size()));

    for (double level : interest_levels) {
      InterestEvaluator evaluator(&catalog, &frequent.itemsets, level,
                                  InterestMode::kSupportOrConfidence);
      evaluator.EvaluateRules(&rules);
      size_t interesting = 0;
      for (const QuantRule& r : rules) {
        if (r.interesting) ++interesting;
      }
      double pct = rules.empty() ? 0.0
                                 : 100.0 * static_cast<double>(interesting) /
                                       static_cast<double>(rules.size());
      cells.push_back(StrFormat("%zu (%.1f%%)", interesting, pct));
    }
    bench::PrintRow(cells, widths);
  }

  std::printf(
      "\nExpected shape (paper): both the count and the percentage of\n"
      "interesting rules decrease as the partial completeness level rises.\n");
  return 0;
}
