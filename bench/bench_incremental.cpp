// Incremental mining over appended QBT blocks: the same grown file mined
// from scratch vs incrementally against the prior run's complete
// checkpoint, swept over delta fractions (1% / 5% / 25% of the base).
// Every incremental run is checked byte-identical to the from-scratch
// rules before its timing counts — a wrong fast answer fails the bench.
// On the full-size corpus (>= 100K records) the 1% point must also clear
// the >= 5x speedup acceptance bar, hard-fail otherwise.
//
//   $ ./bench_incremental [--records=N] [--seed=S] [--reps=R]
//                         [--block-rows=N] [--threads=N] [--minsup=F]
//                         [--maxsup=F] [--intervals=N] [--out=FILE]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/incremental_miner.h"
#include "core/miner.h"
#include "core/report.h"
#include "partition/mapper.h"
#include "storage/qbt_writer.h"
#include "storage/record_source.h"
#include "table/datagen.h"

namespace {

using namespace qarm;

std::vector<std::string> RulesAsJson(const MiningResult& result) {
  std::vector<std::string> out;
  out.reserve(result.rules.size());
  for (const QuantRule& rule : result.rules) {
    out.push_back(RuleToJson(rule, result.mapped));
  }
  return out;
}

void CopyFile(const std::string& from, const std::string& to) {
  std::ifstream in(from, std::ios::binary);
  std::ofstream out(to, std::ios::binary | std::ios::trunc);
  out << in.rdbuf();
  QARM_CHECK(in.good() && out.good());
}

}  // namespace

int main(int argc, char** argv) {
  const size_t records = bench::FlagU64(argc, argv, "records", 500000);
  const uint64_t seed = bench::FlagU64(argc, argv, "seed", 17);
  const size_t reps = bench::FlagU64(argc, argv, "reps", 3);
  const size_t block_rows = bench::FlagU64(argc, argv, "block-rows", 8192);
  const size_t threads = bench::FlagU64(argc, argv, "threads", 1);
  // Interval override + coarse minsup: the equi-depth ranges sit far from
  // the support thresholds, so a same-distribution delta keeps the item
  // catalog stable and the delta passes merge instead of rescanning (see
  // DESIGN.md "Incremental mining" on catalog sensitivity).
  const double minsup = bench::FlagDouble(argc, argv, "minsup", 0.25);
  const double maxsup = bench::FlagDouble(argc, argv, "maxsup", 0.45);
  const size_t intervals = bench::FlagU64(argc, argv, "intervals", 9);
  std::string out = "BENCH_incremental.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) out = argv[i] + 6;
  }

  MinerOptions options;
  options.minsup = minsup;
  options.minconf = 0.40;
  options.max_support = maxsup;
  options.partial_completeness = 3.0;
  options.interest_level = 1.2;
  options.num_intervals_override = intervals;
  options.num_threads = threads;

  // Base corpus, partitioned from the base rows only; deltas are fresh
  // same-distribution samples mapped under the frozen attributes, exactly
  // like `qarm append` maps new CSV rows.
  const Table base_data = MakeFinancialDataset(records, seed);
  MapOptions map_options;
  map_options.partial_completeness = options.partial_completeness;
  map_options.minsup = minsup;
  map_options.num_intervals_override = intervals;
  Result<MappedTable> base_mapped = MapTable(base_data, map_options);
  QARM_CHECK(base_mapped.ok());

  const std::string base_qbt = out + ".base.qbt";
  const std::string base_qcp = out + ".base.qcp";
  QbtWriteOptions write_options;
  write_options.rows_per_block = block_rows;
  QARM_CHECK(WriteQbt(*base_mapped, base_qbt, write_options).ok());

  // Seed the base checkpoint with one (untimed) append-mode full mine.
  {
    MinerOptions seed_options = options;
    seed_options.checkpoint_path = base_qcp;
    IncrementalDecision decision;
    Result<MiningResult> seeded =
        MineIncremental(base_qbt, seed_options, &decision);
    QARM_CHECK(seeded.ok());
    QARM_CHECK(!decision.incremental);  // first run: no checkpoint yet
  }

  // Deltas replay a prefix of the same generator stream, so every item
  // keeps (almost exactly) its base support ratio after the append and the
  // frequent frontier survives at full corpus size.
  const Table delta_pool = MakeFinancialDataset(records / 4 + 18, seed);

  std::printf(
      "Incremental mining: financial dataset, %zu base records, blocks of "
      "%zu rows, minsup=%.2f intervals=%zu, best of %zu reps\n\n",
      records, block_rows, minsup, intervals, reps);
  std::vector<int> widths = {9, 11, 11, 12, 9, 8, 10};
  bench::PrintRow({"delta", "full (s)", "incr (s)", "speedup", "merged",
                   "rescan", "rules"},
                  widths);
  bench::PrintSeparator(widths);

  struct Point {
    double fraction = 0;
    uint64_t delta_rows = 0;
    double full_seconds = 0;
    double incremental_seconds = 0;
    size_t passes_merged = 0;
    size_t passes_rescanned = 0;
    size_t rules = 0;
  };
  std::vector<Point> points;
  bool failed = false;

  for (const double fraction : {0.01, 0.05, 0.25}) {
    Point p;
    p.fraction = fraction;
    p.delta_rows = static_cast<uint64_t>(records * fraction);
    QARM_CHECK(p.delta_rows > 0 && p.delta_rows <= delta_pool.num_rows());

    // Grow a copy of the base file by this fraction.
    const std::string qbt = out + StrFormat(".f%02.0f.qbt", fraction * 100);
    const std::string qcp = qbt + ".qcp";
    CopyFile(base_qbt, qbt);
    Result<MappedTable> delta_mapped = MapTableWithAttributes(
        delta_pool.Head(p.delta_rows), base_mapped->attributes());
    QARM_CHECK(delta_mapped.ok());
    QARM_CHECK(AppendQbt(*delta_mapped, qbt).ok());

    // From-scratch baseline over the grown file.
    std::vector<std::string> baseline_rules;
    for (size_t rep = 0; rep < reps; ++rep) {
      Result<std::unique_ptr<QbtFileSource>> source =
          QbtFileSource::Open(qbt);
      QARM_CHECK(source.ok());
      Timer timer;
      Result<MiningResult> result =
          QuantitativeRuleMiner(options).MineStreamed(**source);
      const double seconds = timer.ElapsedSeconds();
      QARM_CHECK(result.ok());
      if (rep == 0) {
        baseline_rules = RulesAsJson(*result);
        p.full_seconds = seconds;
        p.rules = baseline_rules.size();
      } else {
        p.full_seconds = std::min(p.full_seconds, seconds);
      }
    }

    // Incremental runs against a fresh copy of the base checkpoint each
    // rep (a completed run replaces the checkpoint with one covering the
    // grown file, which would turn rep 2 into a zero-delta merge).
    IncrementalDecision decision;
    for (size_t rep = 0; rep < reps; ++rep) {
      CopyFile(base_qcp, qcp);
      MinerOptions inc_options = options;
      inc_options.checkpoint_path = qcp;
      Timer timer;
      Result<MiningResult> result =
          MineIncremental(qbt, inc_options, &decision);
      const double seconds = timer.ElapsedSeconds();
      QARM_CHECK(result.ok());
      if (!decision.incremental) {
        std::fprintf(stderr,
                     "FATAL: delta %.0f%% did not take the incremental "
                     "path: %s\n",
                     fraction * 100, decision.reason.c_str());
        failed = true;
      }
      if (RulesAsJson(*result) != baseline_rules) {
        std::fprintf(
            stderr,
            "FATAL: delta %.0f%% incremental rules diverge from the "
            "from-scratch mine\n",
            fraction * 100);
        failed = true;
      }
      if (rep == 0 || seconds < p.incremental_seconds) {
        p.incremental_seconds = seconds;
      }
    }
    p.passes_merged = decision.passes_merged;
    p.passes_rescanned = decision.passes_rescanned;
    std::remove(qbt.c_str());
    std::remove(qcp.c_str());
    if (failed) break;

    bench::PrintRow(
        {StrFormat("%.0f%%", fraction * 100),
         StrFormat("%.4f", p.full_seconds),
         StrFormat("%.4f", p.incremental_seconds),
         StrFormat("%.2fx", p.full_seconds / p.incremental_seconds),
         StrFormat("%zu", p.passes_merged),
         StrFormat("%zu", p.passes_rescanned), StrFormat("%zu", p.rules)},
        widths);
    points.push_back(p);
  }
  std::remove(base_qbt.c_str());
  std::remove(base_qcp.c_str());
  if (failed) return 1;

  // Acceptance bar, enforced only at full size: tiny smoke corpora spend
  // their whole runtime in fixed pass overhead, which says nothing about
  // the delta-scan win.
  if (records >= 100000 && !points.empty()) {
    const Point& p1 = points.front();
    const double speedup = p1.full_seconds / p1.incremental_seconds;
    if (speedup < 5.0) {
      std::fprintf(stderr,
                   "FATAL: 1%% delta speedup %.2fx is below the 5x "
                   "acceptance bar\n",
                   speedup);
      return 1;
    }
  }

  std::string json = "{\n";
  json += StrFormat(
      "  \"bench\": \"incremental\",\n  \"records\": %zu,\n"
      "  \"seed\": %llu,\n  \"reps\": %zu,\n  \"block_rows\": %zu,\n"
      "  \"threads\": %zu,\n  \"minsup\": %.3f,\n  \"maxsup\": %.3f,\n"
      "  \"intervals\": %zu,\n  \"byte_identical\": true,\n"
      "  \"points\": [",
      records, static_cast<unsigned long long>(seed), reps, block_rows,
      threads, minsup, maxsup, intervals);
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    json += StrFormat(
        "%s\n    {\"delta_fraction\": %.2f, \"delta_rows\": %llu,"
        " \"full_seconds\": %.6f, \"incremental_seconds\": %.6f,"
        " \"speedup\": %.4f, \"passes_merged\": %zu,"
        " \"passes_rescanned\": %zu, \"rules\": %zu}",
        i > 0 ? "," : "", p.fraction,
        static_cast<unsigned long long>(p.delta_rows), p.full_seconds,
        p.incremental_seconds, p.full_seconds / p.incremental_seconds,
        p.passes_merged, p.passes_rescanned, p.rules);
  }
  json += "\n  ]\n}\n";
  std::ofstream json_out(out, std::ios::trunc);
  json_out << json;
  QARM_CHECK(json_out.good());
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
