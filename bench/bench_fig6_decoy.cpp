// Figure 6 reproduction: the "greater-than-expected-value" interest example.
//
// Generates the Whole/Decoy/Boring/Interesting landscape (joint support of
// (x=v, y=yes) flat at ~1% with an 11% spike at x=5), prints the measured
// supports for the paper's four named intervals, and reports which of the
// mined x-range => y=yes rules survive the final interest measure at
// R = 1.5 and R = 2.
//
//   $ ./bench_fig6_decoy [--records=N] [--seed=S]
#include <cstdio>

#include "bench/bench_util.h"
#include "core/miner.h"
#include "core/rules.h"
#include "table/datagen.h"

int main(int argc, char** argv) {
  using namespace qarm;
  const size_t records = bench::FlagU64(argc, argv, "records", 200000);
  const uint64_t seed = bench::FlagU64(argc, argv, "seed", 7);

  Table data = MakeDecoyTable(records, seed);
  std::printf("Figure 6 landscape (%zu records):\n", records);

  // Measured joint supports for the paper's named intervals.
  struct Named {
    const char* name;
    int64_t lo, hi;
  };
  const Named named[] = {{"Whole  x:1..10", 1, 10},
                         {"Decoy  x:3..5", 3, 5},
                         {"Boring x:3..4", 3, 4},
                         {"Interesting x:5", 5, 5}};
  for (const Named& n : named) {
    size_t joint = 0;
    for (size_t r = 0; r < data.num_rows(); ++r) {
      int64_t x = data.Get(r, 0).as_int64();
      if (x >= n.lo && x <= n.hi && data.Get(r, 1).as_string() == "yes") {
        ++joint;
      }
    }
    double avg = 100.0 * static_cast<double>(joint) /
                 static_cast<double>(data.num_rows()) /
                 static_cast<double>(n.hi - n.lo + 1);
    std::printf("  %-18s joint support %5.2f%%  (avg per value %5.2f%%)\n",
                n.name,
                100.0 * static_cast<double>(joint) /
                    static_cast<double>(data.num_rows()),
                avg);
  }

  for (double level : {1.5, 2.0}) {
    MinerOptions options;
    options.minsup = 0.02;
    options.minconf = 0.0;
    // x spans only 10 values: leave range combination uncapped so the wide
    // generalizations (the ancestors the interest measure compares against)
    // exist. With a tight cap, maximal-width ranges have no ancestors and
    // are interesting by definition.
    options.max_support = 1.0;
    options.partial_completeness = 2.0;
    options.interest_level = level;
    options.interest_item_prune = false;  // keep decoys in play
    QuantitativeRuleMiner miner(options);
    Result<MiningResult> result = miner.Mine(data);
    if (!result.ok()) {
      std::fprintf(stderr, "mining failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("\nInterest level %.1f — interesting x-range => <y: yes> rules:\n",
                level);
    size_t interesting = 0, pruned = 0;
    for (const QuantRule& rule : result->rules) {
      if (rule.consequent.size() != 1 || rule.consequent[0].attr != 1 ||
          rule.antecedent.size() != 1 || rule.antecedent[0].attr != 0) {
        continue;
      }
      if (result->mapped.attribute(1).DecodeRange(
              rule.consequent[0].lo, rule.consequent[0].hi) != "yes") {
        continue;
      }
      if (rule.interesting) {
        ++interesting;
        std::printf("  %s\n", RuleToString(rule, result->mapped).c_str());
      } else {
        ++pruned;
      }
    }
    std::printf("  (%zu interesting, %zu pruned)\n", interesting, pruned);
  }

  std::printf(
      "\nExpected shape (paper): only ranges pinned to the x=5 spike are\n"
      "interesting; 'Decoy'-style ranges that merely contain the spike are\n"
      "rejected by the specialization-difference test.\n");
  return 0;
}
