// Closed numeric interval over raw attribute values.
#ifndef QARM_PARTITION_INTERVAL_H_
#define QARM_PARTITION_INTERVAL_H_

#include <string>

#include "common/string_util.h"

namespace qarm {

// [lo, hi], both ends inclusive. A single raw value is lo == hi.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  bool Contains(double v) const { return v >= lo && v <= hi; }
  bool IsSingleValue() const { return lo == hi; }

  bool operator==(const Interval& other) const {
    return lo == other.lo && hi == other.hi;
  }

  // "5" for a single value, "5..9" for a range.
  std::string ToString() const {
    if (IsSingleValue()) return FormatDouble(lo);
    return FormatDouble(lo) + ".." + FormatDouble(hi);
  }
};

}  // namespace qarm

#endif  // QARM_PARTITION_INTERVAL_H_
