// The integer-mapped view of a relational table produced by steps 1-2 of the
// problem decomposition (Section 2.1). After mapping, the mining algorithm
// sees only consecutive integers per attribute; whether an integer denotes a
// categorical value, a raw quantitative value, or a base interval is
// transparent to it, exactly as in the paper.
#ifndef QARM_PARTITION_MAPPED_TABLE_H_
#define QARM_PARTITION_MAPPED_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "partition/interval.h"
#include "partition/taxonomy.h"
#include "table/schema.h"

namespace qarm {

// Mapped value of a missing cell: a record never supports any item of an
// attribute it lacks (Section 2's "at most once" record model).
inline constexpr int32_t kMissingValue = -1;

// Decode metadata for one mapped attribute.
struct MappedAttribute {
  std::string name;
  AttributeKind kind = AttributeKind::kCategorical;
  ValueType source_type = ValueType::kString;
  // True when the attribute was partitioned into multi-value base intervals.
  bool partitioned = false;

  // Categorical: mapped id -> original label.
  std::vector<std::string> labels;
  // Quantitative: mapped id -> raw interval (single-value when the attribute
  // was not partitioned). Ordered by value, so a range [l..u] over mapped
  // ids decodes to the raw interval [intervals[l].lo, intervals[u].hi].
  std::vector<Interval> intervals;

  // Categorical attributes with a taxonomy: ids are assigned in taxonomy
  // DFS order, so every interior node is the contiguous id range recorded
  // here. Empty for plain categorical attributes.
  std::vector<Taxonomy::NodeRange> taxonomy_ranges;

  size_t domain_size() const {
    return kind == AttributeKind::kCategorical ? labels.size()
                                               : intervals.size();
  }

  // True when items over this attribute may span ranges of mapped ids:
  // quantitative attributes always, categorical ones only under a taxonomy
  // (Section 1.1). Ranged attributes are counted as dimensions of the
  // super-candidate rectangles.
  bool ranged() const {
    return kind == AttributeKind::kQuantitative || !taxonomy_ranges.empty();
  }

  // Decodes a mapped id (categorical) or an inclusive mapped range
  // (quantitative) to display text, e.g. "Yes" or "20..29".
  std::string DecodeRange(int32_t lo, int32_t hi) const;

  // The raw interval covered by mapped range [lo, hi] (quantitative only).
  Interval RawInterval(int32_t lo, int32_t hi) const {
    QARM_CHECK(kind == AttributeKind::kQuantitative);
    QARM_CHECK_LE(lo, hi);
    QARM_CHECK_GE(lo, 0);
    QARM_CHECK_LT(static_cast<size_t>(hi), intervals.size());
    return Interval{intervals[static_cast<size_t>(lo)].lo,
                    intervals[static_cast<size_t>(hi)].hi};
  }
};

// Row-major matrix of mapped integer values plus decode metadata.
class MappedTable {
 public:
  MappedTable(std::vector<MappedAttribute> attributes, size_t num_rows);

  size_t num_rows() const { return num_rows_; }
  size_t num_attributes() const { return attributes_.size(); }
  size_t num_quantitative() const { return num_quantitative_; }

  const MappedAttribute& attribute(size_t a) const { return attributes_[a]; }
  const std::vector<MappedAttribute>& attributes() const {
    return attributes_;
  }

  int32_t value(size_t row, size_t attr) const {
    return data_[row * attributes_.size() + attr];
  }
  void set_value(size_t row, size_t attr, int32_t v) {
    data_[row * attributes_.size() + attr] = v;
  }

  // Pointer to the start of a row (num_attributes() consecutive values).
  const int32_t* row(size_t r) const { return &data_[r * attributes_.size()]; }

  // A mapped view of only the first n rows (shares no storage; copies).
  MappedTable Head(size_t n) const;

 private:
  std::vector<MappedAttribute> attributes_;
  size_t num_rows_;
  size_t num_quantitative_;
  std::vector<int32_t> data_;
};

}  // namespace qarm

#endif  // QARM_PARTITION_MAPPED_TABLE_H_
