#include "partition/partial_completeness.h"

#include <cmath>
#include <limits>

#include "common/macros.h"

namespace qarm {

// Preconditions on k and minsup are validated at the input boundary
// (MinerOptions::Validate / MapTable); here they are programmer-error
// checks only, so untrusted input can never reach an abort through these
// functions.

size_t IntervalsForPartialCompleteness(double k, size_t num_quantitative,
                                       double minsup) {
  QARM_DCHECK(k > 1.0);
  QARM_DCHECK(minsup > 0.0);
  if (num_quantitative == 0) return 1;
  double raw = 2.0 * static_cast<double>(num_quantitative) /
               (minsup * (k - 1.0));
  // A tiny minsup or a k barely above 1 can push Equation 2 beyond the
  // integer range; converting such a double to size_t is undefined
  // behaviour, so saturate. Callers only compare the result against
  // per-attribute distinct-value counts, which are far smaller.
  constexpr double kMaxIntervals = 1e18;  // < 2^63, exactly representable
  if (!(raw < kMaxIntervals)) {          // also catches NaN/inf
    return static_cast<size_t>(kMaxIntervals);
  }
  size_t n = static_cast<size_t>(std::ceil(raw - 1e-9));
  return n < 1 ? 1 : n;
}

double AchievedPartialCompleteness(double max_multi_value_interval_support,
                                   size_t num_quantitative, double minsup) {
  QARM_DCHECK(minsup > 0.0);
  QARM_DCHECK(max_multi_value_interval_support >= 0.0);
  return 1.0 + 2.0 * static_cast<double>(num_quantitative) *
                   max_multi_value_interval_support / minsup;
}

double MaxMultiValueIntervalSupport(const std::vector<Interval>& intervals,
                                    const std::vector<size_t>& counts,
                                    size_t num_records) {
  QARM_CHECK_EQ(intervals.size(), counts.size());
  if (num_records == 0) return 0.0;
  double max_support = 0.0;
  for (size_t i = 0; i < intervals.size(); ++i) {
    if (intervals[i].IsSingleValue()) continue;
    double s =
        static_cast<double>(counts[i]) / static_cast<double>(num_records);
    if (s > max_support) max_support = s;
  }
  return max_support;
}

double ScaledMinConfidence(double minconf, double k) {
  QARM_DCHECK(k >= 1.0);
  return minconf / k;
}

}  // namespace qarm
