#include "partition/partial_completeness.h"

#include <cmath>

#include "common/macros.h"

namespace qarm {

size_t IntervalsForPartialCompleteness(double k, size_t num_quantitative,
                                       double minsup) {
  QARM_CHECK_GT(k, 1.0);
  QARM_CHECK_GT(minsup, 0.0);
  if (num_quantitative == 0) return 1;
  double raw = 2.0 * static_cast<double>(num_quantitative) /
               (minsup * (k - 1.0));
  size_t n = static_cast<size_t>(std::ceil(raw - 1e-9));
  return n < 1 ? 1 : n;
}

double AchievedPartialCompleteness(double max_multi_value_interval_support,
                                   size_t num_quantitative, double minsup) {
  QARM_CHECK_GT(minsup, 0.0);
  QARM_CHECK_GE(max_multi_value_interval_support, 0.0);
  return 1.0 + 2.0 * static_cast<double>(num_quantitative) *
                   max_multi_value_interval_support / minsup;
}

double MaxMultiValueIntervalSupport(const std::vector<Interval>& intervals,
                                    const std::vector<size_t>& counts,
                                    size_t num_records) {
  QARM_CHECK_EQ(intervals.size(), counts.size());
  if (num_records == 0) return 0.0;
  double max_support = 0.0;
  for (size_t i = 0; i < intervals.size(); ++i) {
    if (intervals[i].IsSingleValue()) continue;
    double s =
        static_cast<double>(counts[i]) / static_cast<double>(num_records);
    if (s > max_support) max_support = s;
  }
  return max_support;
}

double ScaledMinConfidence(double minconf, double k) {
  QARM_CHECK_GE(k, 1.0);
  return minconf / k;
}

}  // namespace qarm
