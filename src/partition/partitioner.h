// Base-interval construction for quantitative attributes (Section 3).
//
// Equi-depth partitioning is the paper's choice: Lemma 4 shows it minimizes
// the partial completeness level for a given number of intervals. Equi-width
// is provided as the ablation baseline (Section 7 notes equi-depth's
// weakness on skew; equi-width is strictly worse, and the bench
// bench_partitioning quantifies both).
#ifndef QARM_PARTITION_PARTITIONER_H_
#define QARM_PARTITION_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "partition/interval.h"

namespace qarm {

// Partitions `values` into at most `num_partitions` intervals of roughly
// equal record count. Equal raw values always land in the same interval, so
// the result may have fewer than `num_partitions` intervals on heavy
// duplication. Intervals are returned sorted, non-overlapping, and cover
// every input value. `values` is consumed (sorted in place).
std::vector<Interval> EquiDepthPartition(std::vector<double> values,
                                         size_t num_partitions);

// Splits [lo, hi] into `num_partitions` equal-width intervals. The returned
// intervals abut exactly: interval i is [lo + i*w, lo + (i+1)*w], closed on
// the right only for the last interval (assignment uses lower_bound, see
// AssignToInterval).
std::vector<Interval> EquiWidthPartition(double lo, double hi,
                                         size_t num_partitions);

// Index of the interval containing `v` among sorted non-overlapping
// `intervals`; values between two intervals (possible for equi-width on
// sparse data) are assigned to the nearest following interval, values beyond
// the last interval to the last. Returns -1 only for an empty interval list.
int64_t AssignToInterval(const std::vector<Interval>& intervals, double v);

// Clustering-based partitioning (the paper's Section 7 future work, via
// [JD88]): 1-D k-means over the values with deterministic quantile seeding,
// returning one interval per non-empty cluster. Unlike equi-depth it keeps
// tight value clusters together even when that unbalances the depths.
// `values` is consumed (sorted in place). Deterministic.
std::vector<Interval> KMeansPartition(std::vector<double> values,
                                      size_t num_partitions,
                                      size_t max_iterations = 50);

}  // namespace qarm

#endif  // QARM_PARTITION_PARTITIONER_H_
