#include "partition/partitioner.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace qarm {

std::vector<Interval> EquiDepthPartition(std::vector<double> values,
                                         size_t num_partitions) {
  QARM_CHECK_GT(num_partitions, 0u);
  std::vector<Interval> out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());

  const size_t n = values.size();
  size_t begin = 0;
  for (size_t p = 0; p < num_partitions && begin < n; ++p) {
    // Ideal end of this partition by rank.
    size_t target =
        (p + 1 == num_partitions)
            ? n
            : static_cast<size_t>(
                  std::llround(static_cast<double>((p + 1) * n) /
                               static_cast<double>(num_partitions)));
    size_t end = std::max(target, begin + 1);
    // Never split a run of equal values across partitions: push the boundary
    // forward to the first distinct value.
    while (end < n && values[end] == values[end - 1]) ++end;
    out.push_back(Interval{values[begin], values[end - 1]});
    begin = end;
  }
  // Heavy duplication may leave a tail; extend the last interval over it.
  if (begin < n) out.back().hi = values[n - 1];
  return out;
}

std::vector<Interval> EquiWidthPartition(double lo, double hi,
                                         size_t num_partitions) {
  QARM_CHECK_GT(num_partitions, 0u);
  QARM_CHECK_LE(lo, hi);
  std::vector<Interval> out;
  out.reserve(num_partitions);
  double width = (hi - lo) / static_cast<double>(num_partitions);
  if (width == 0.0) {
    out.push_back(Interval{lo, hi});
    return out;
  }
  for (size_t i = 0; i < num_partitions; ++i) {
    double a = lo + width * static_cast<double>(i);
    double b = (i + 1 == num_partitions) ? hi : lo + width * (i + 1);
    out.push_back(Interval{a, b});
  }
  return out;
}

std::vector<Interval> KMeansPartition(std::vector<double> values,
                                      size_t num_partitions,
                                      size_t max_iterations) {
  QARM_CHECK_GT(num_partitions, 0u);
  std::vector<Interval> out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();

  // 1-D k-means over sorted values: clusters are contiguous runs, so the
  // state is just the k-1 boundary ranks. Seed at equi-depth quantiles.
  size_t k = std::min(num_partitions, n);
  std::vector<size_t> boundary(k + 1);  // boundary[c]..boundary[c+1] is c
  for (size_t c = 0; c <= k; ++c) boundary[c] = c * n / k;

  std::vector<double> prefix(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + values[i];

  for (size_t iter = 0; iter < max_iterations; ++iter) {
    // Means of the current clusters.
    std::vector<double> mean(k);
    for (size_t c = 0; c < k; ++c) {
      size_t lo = boundary[c], hi = boundary[c + 1];
      mean[c] = hi > lo
                    ? (prefix[hi] - prefix[lo]) / static_cast<double>(hi - lo)
                    : (lo < n ? values[lo] : values[n - 1]);
    }
    // Reassign: each boundary moves to the midpoint of adjacent means.
    bool changed = false;
    std::vector<size_t> next = boundary;
    for (size_t c = 1; c < k; ++c) {
      double cut = (mean[c - 1] + mean[c]) * 0.5;
      size_t pos = static_cast<size_t>(
          std::lower_bound(values.begin(), values.end(), cut) -
          values.begin());
      pos = std::clamp(pos, next[c - 1], next[c + 1]);
      if (pos != next[c]) {
        next[c] = pos;
        changed = true;
      }
    }
    boundary = std::move(next);
    if (!changed) break;
  }

  for (size_t c = 0; c < k; ++c) {
    size_t lo = boundary[c], hi = boundary[c + 1];
    if (hi <= lo) continue;  // empty cluster
    // Never split runs of equal values: extend to the run end.
    Interval interval{values[lo], values[hi - 1]};
    if (!out.empty() && out.back().hi == interval.lo) {
      out.back().hi = interval.hi;  // merge clusters split inside a run
      continue;
    }
    out.push_back(interval);
  }
  return out;
}

int64_t AssignToInterval(const std::vector<Interval>& intervals, double v) {
  if (intervals.empty()) return -1;
  // First interval whose hi >= v.
  size_t lo = 0, hi = intervals.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (intervals[mid].hi < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == intervals.size()) return static_cast<int64_t>(intervals.size()) - 1;
  return static_cast<int64_t>(lo);
}

}  // namespace qarm
