// Partial completeness math of Section 3.
//
// For a quantitative attribute partitioned into base intervals, Lemma 3
// bounds the information loss: if the support of every multi-value base
// interval is below  minsup * (K-1) / (2n)  (n = number of quantitative
// attributes), the partitioned frequent itemsets are K-complete w.r.t. the
// unpartitioned ones. Equation 1 inverts this to report the achieved K, and
// Equation 2 gives the number of equi-depth intervals needed for a desired K.
#ifndef QARM_PARTITION_PARTIAL_COMPLETENESS_H_
#define QARM_PARTITION_PARTIAL_COMPLETENESS_H_

#include <cstdint>
#include <vector>

#include "partition/interval.h"

namespace qarm {

// Equation 2: number of equi-depth intervals required for partial
// completeness level `k` with `num_quantitative` quantitative attributes
// and minimum support `minsup` (a fraction in (0,1]). Requires k > 1.
// Result is rounded up and is at least 1.
size_t IntervalsForPartialCompleteness(double k, size_t num_quantitative,
                                       double minsup);

// Equation 1: partial completeness level achieved when the largest support
// of any multi-value base interval (across all quantitative attributes) is
// `max_multi_value_interval_support` (a fraction). Returns
// 1 + 2 * n * s / minsup.
double AchievedPartialCompleteness(double max_multi_value_interval_support,
                                   size_t num_quantitative, double minsup);

// Helper for Equation 1's `s`: given the per-interval record counts and the
// intervals themselves, returns the largest support fraction among intervals
// spanning more than one raw value (single-value intervals are exempt per
// Lemma 2). Returns 0 if every interval is single-valued.
double MaxMultiValueIntervalSupport(const std::vector<Interval>& intervals,
                                    const std::vector<size_t>& counts,
                                    size_t num_records);

// Lemma 1 corollary: when generating rules from a K-complete itemset
// collection, the confidence threshold must be scaled down to guarantee a
// close rule is found. Returns minconf / k.
double ScaledMinConfidence(double minconf, double k);

}  // namespace qarm

#endif  // QARM_PARTITION_PARTIAL_COMPLETENESS_H_
