#include "partition/taxonomy.h"

#include <algorithm>
#include <map>
#include <set>

namespace qarm {

Result<Taxonomy> Taxonomy::Make(
    const std::vector<std::pair<std::string, std::string>>& edges) {
  if (edges.empty()) {
    return Status::InvalidArgument("taxonomy needs at least one edge");
  }
  // children[parent] in insertion order; parent_of for cycle/duplicate
  // detection.
  std::map<std::string, std::vector<std::string>> children;
  std::map<std::string, std::string> parent_of;
  std::set<std::string> all_nodes;
  for (const auto& [child, parent] : edges) {
    if (child.empty() || parent.empty()) {
      return Status::InvalidArgument("taxonomy edge with empty name");
    }
    if (child == parent) {
      return Status::InvalidArgument("taxonomy self-edge on '" + child + "'");
    }
    if (!parent_of.emplace(child, parent).second) {
      return Status::InvalidArgument("node '" + child +
                                     "' has two parents");
    }
    children[parent].push_back(child);
    all_nodes.insert(child);
    all_nodes.insert(parent);
  }

  // Roots: parents that are nobody's child.
  std::vector<std::string> roots;
  for (const auto& [parent, kids] : children) {
    if (parent_of.find(parent) == parent_of.end()) roots.push_back(parent);
  }
  if (roots.empty()) {
    return Status::InvalidArgument("taxonomy has a cycle (no root)");
  }

  Taxonomy taxonomy;
  // Iterative DFS; interior entry/exit tracked to compute leaf ranges.
  struct Frame {
    std::string node;
    size_t next_child = 0;
    int32_t first_leaf = -1;
  };
  size_t visited = 0;
  for (const std::string& root : roots) {
    std::vector<Frame> stack;
    stack.push_back(Frame{root, 0, -1});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      auto it = children.find(frame.node);
      const bool is_leaf = it == children.end();
      if (is_leaf) {
        ++visited;
        taxonomy.leaves_dfs_.push_back(frame.node);
        stack.pop_back();
        continue;
      }
      if (frame.next_child == 0) {
        ++visited;
        frame.first_leaf = static_cast<int32_t>(taxonomy.leaves_dfs_.size());
        if (stack.size() > 64) {
          return Status::InvalidArgument("taxonomy deeper than 64 levels");
        }
      }
      if (frame.next_child < it->second.size()) {
        const std::string& child = it->second[frame.next_child++];
        stack.push_back(Frame{child, 0, -1});
        continue;
      }
      // Exit: record the leaf range.
      int32_t last_leaf = static_cast<int32_t>(taxonomy.leaves_dfs_.size()) - 1;
      if (last_leaf < frame.first_leaf) {
        return Status::InvalidArgument("interior node '" + frame.node +
                                       "' has no leaves");
      }
      taxonomy.interior_ranges_.push_back(
          NodeRange{frame.node, frame.first_leaf, last_leaf});
      stack.pop_back();
    }
  }
  if (visited != all_nodes.size()) {
    return Status::InvalidArgument("taxonomy has a cycle or detached nodes");
  }
  // Outermost (widest) ranges first, for readable decode preference.
  std::stable_sort(taxonomy.interior_ranges_.begin(),
                   taxonomy.interior_ranges_.end(),
                   [](const NodeRange& a, const NodeRange& b) {
                     return (a.hi - a.lo) > (b.hi - b.lo);
                   });
  return taxonomy;
}

bool Taxonomy::IsLeaf(const std::string& name) const {
  return std::find(leaves_dfs_.begin(), leaves_dfs_.end(), name) !=
         leaves_dfs_.end();
}

}  // namespace qarm
