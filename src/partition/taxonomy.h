// Taxonomies (is-a hierarchies) over categorical attributes.
//
// Section 1.1 of the paper: "It is not meaningful to combine categorical
// attribute values unless a taxonomy is present on the attribute. In this
// case, the taxonomy can be used to implicitly combine values of a
// categorical attribute" (cf. [SA95], [HF95]).
//
// QARM integrates taxonomies by ordering an attribute's leaf values in
// taxonomy DFS order: every interior node then covers a *contiguous range*
// of mapped leaf ids, so the quantitative machinery — range items,
// super-candidate counting, the expected-value formulas, and the interest
// measure's generalization order — applies to generalized categorical items
// without modification.
#ifndef QARM_PARTITION_TAXONOMY_H_
#define QARM_PARTITION_TAXONOMY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace qarm {

// An immutable is-a hierarchy. Leaves are attribute values; interior nodes
// are named groups. A forest is allowed (multiple roots).
class Taxonomy {
 public:
  // Builds from (child, parent) name pairs. Names appearing only as
  // children (never as parents) are the leaves. Rejects cycles, duplicate
  // parents, and empty input.
  static Result<Taxonomy> Make(
      const std::vector<std::pair<std::string, std::string>>& edges);

  // Leaf names in DFS order (the order the mapper must assign ids in).
  const std::vector<std::string>& leaves_dfs() const { return leaves_dfs_; }

  // One interior node's leaf-range in DFS positions (inclusive).
  struct NodeRange {
    std::string name;
    int32_t lo = 0;
    int32_t hi = 0;
  };
  // All interior nodes with their DFS leaf ranges, outermost first.
  const std::vector<NodeRange>& interior_ranges() const {
    return interior_ranges_;
  }

  // True if `name` is a leaf of this taxonomy.
  bool IsLeaf(const std::string& name) const;

 private:
  Taxonomy() = default;

  std::vector<std::string> leaves_dfs_;
  std::vector<NodeRange> interior_ranges_;
};

}  // namespace qarm

#endif  // QARM_PARTITION_TAXONOMY_H_
