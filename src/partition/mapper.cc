#include "partition/mapper.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>

#include "common/string_util.h"
#include "partition/partial_completeness.h"
#include "partition/partitioner.h"

namespace qarm {

std::string MappedAttribute::DecodeRange(int32_t lo, int32_t hi) const {
  if (kind == AttributeKind::kCategorical) {
    QARM_CHECK_GE(lo, 0);
    QARM_CHECK_LE(lo, hi);
    QARM_CHECK_LT(static_cast<size_t>(hi), labels.size());
    if (lo == hi) return labels[static_cast<size_t>(lo)];
    // A range over a taxonomy attribute: prefer the interior node's name.
    for (const Taxonomy::NodeRange& node : taxonomy_ranges) {
      if (node.lo == lo && node.hi == hi) return node.name;
    }
    // Not a named node (e.g. a box difference): list the leaves.
    std::string out = labels[static_cast<size_t>(lo)];
    for (int32_t v = lo + 1; v <= hi; ++v) {
      out += "|";
      out += labels[static_cast<size_t>(v)];
    }
    return out;
  }
  return RawInterval(lo, hi).ToString();
}

MappedTable::MappedTable(std::vector<MappedAttribute> attributes,
                         size_t num_rows)
    : attributes_(std::move(attributes)),
      num_rows_(num_rows),
      num_quantitative_(0),
      data_(num_rows * attributes_.size(), 0) {
  for (const MappedAttribute& attr : attributes_) {
    if (attr.kind == AttributeKind::kQuantitative) ++num_quantitative_;
  }
}

MappedTable MappedTable::Head(size_t n) const {
  size_t rows = std::min(n, num_rows_);
  MappedTable out(attributes_, rows);
  std::copy(data_.begin(),
            data_.begin() + static_cast<ptrdiff_t>(rows * attributes_.size()),
            out.data_.begin());
  return out;
}

namespace {

// Maps one categorical column: distinct values sorted, then labeled 0..c-1.
// With a taxonomy, ids follow the taxonomy's DFS leaf order instead (so
// interior nodes cover contiguous id ranges); every value in the data must
// be a leaf.
Result<MappedAttribute> MapCategorical(const Table& table, size_t col,
                                       const Taxonomy* taxonomy,
                                       MappedTable* out) {
  const AttributeDef& def = table.schema().attribute(col);
  const Column& column = table.column(col);
  MappedAttribute attr;
  attr.name = def.name;
  attr.kind = AttributeKind::kCategorical;
  attr.source_type = def.type;

  std::map<Value, int32_t> ids;
  if (taxonomy != nullptr) {
    // Every taxonomy leaf gets an id (absent leaves keep zero support);
    // this keeps interior node ranges exact.
    int32_t next = 0;
    for (const std::string& leaf : taxonomy->leaves_dfs()) {
      ids.emplace(Value(leaf), next++);
      attr.labels.push_back(leaf);
    }
    attr.taxonomy_ranges = taxonomy->interior_ranges();
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (column.IsNull(r)) {
        out->set_value(r, col, kMissingValue);
        continue;
      }
      auto it = ids.find(column.Get(r));
      if (it == ids.end()) {
        return Status::InvalidArgument(
            "value '" + column.Get(r).ToString() + "' of attribute '" +
            def.name + "' is not a leaf of its taxonomy");
      }
      out->set_value(r, col, it->second);
    }
    return attr;
  }

  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (column.IsNull(r)) continue;
    ids.emplace(column.Get(r), 0);  // sorted => deterministic mapping
  }
  int32_t next = 0;
  for (auto& [value, id] : ids) {
    id = next++;
    attr.labels.push_back(value.ToString());
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    out->set_value(r, col,
                   column.IsNull(r) ? kMissingValue : ids.at(column.Get(r)));
  }
  return attr;
}

// Maps one quantitative column, partitioning per the options.
MappedAttribute MapQuantitative(const Table& table, size_t col,
                                size_t required_intervals,
                                PartitionMethod method, MappedTable* out) {
  const AttributeDef& def = table.schema().attribute(col);
  const Column& column = table.column(col);
  const size_t n = table.num_rows();

  std::vector<double> values;  // non-null cells only
  values.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    if (!column.IsNull(r)) values.push_back(column.GetNumeric(r));
  }

  std::vector<double> distinct = values;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());

  MappedAttribute attr;
  attr.name = def.name;
  attr.kind = AttributeKind::kQuantitative;
  attr.source_type = def.type;

  if (distinct.size() <= required_intervals || distinct.size() <= 1) {
    // Few values: no partitioning; each distinct value is its own integer
    // (order preserved), per Section 2.1.
    attr.partitioned = false;
    attr.intervals.reserve(distinct.size());
    for (double v : distinct) attr.intervals.push_back(Interval{v, v});
    for (size_t r = 0; r < n; ++r) {
      if (column.IsNull(r)) {
        out->set_value(r, col, kMissingValue);
        continue;
      }
      auto it = std::lower_bound(distinct.begin(), distinct.end(),
                                 column.GetNumeric(r));
      out->set_value(r, col,
                     static_cast<int32_t>(it - distinct.begin()));
    }
    return attr;
  }

  attr.partitioned = true;
  switch (method) {
    case PartitionMethod::kEquiDepth:
      attr.intervals = EquiDepthPartition(values, required_intervals);
      break;
    case PartitionMethod::kEquiWidth:
      attr.intervals =
          EquiWidthPartition(distinct.front(), distinct.back(),
                             required_intervals);
      break;
    case PartitionMethod::kKMeans:
      attr.intervals = KMeansPartition(values, required_intervals);
      break;
  }
  for (size_t r = 0; r < n; ++r) {
    if (column.IsNull(r)) {
      out->set_value(r, col, kMissingValue);
      continue;
    }
    int64_t idx = AssignToInterval(attr.intervals, column.GetNumeric(r));
    QARM_CHECK_GE(idx, 0);
    out->set_value(r, col, static_cast<int32_t>(idx));
  }
  return attr;
}

}  // namespace

Result<MappedTable> MapTable(const Table& table, const MapOptions& options) {
  // Finiteness first: NaN compares false against every bound below, so it
  // would otherwise slip through and reach the Equation 2 arithmetic.
  if (!std::isfinite(options.minsup) || options.minsup <= 0.0 ||
      options.minsup > 1.0) {
    return Status::InvalidArgument(
        StrFormat("minsup must be in (0,1], got %g", options.minsup));
  }
  if (!std::isfinite(options.partial_completeness) ||
      (options.num_intervals_override == 0 &&
       options.partial_completeness <= 1.0)) {
    return Status::InvalidArgument(StrFormat(
        "partial completeness level must be > 1, got %g",
        options.partial_completeness));
  }

  const Schema& schema = table.schema();
  for (const auto& [name, taxonomy] : options.taxonomies) {
    (void)taxonomy;
    QARM_ASSIGN_OR_RETURN(size_t index, schema.IndexOf(name));
    if (schema.attribute(index).kind != AttributeKind::kCategorical) {
      return Status::InvalidArgument("taxonomy on non-categorical attribute '" +
                                     name + "'");
    }
  }
  size_t n_quant = options.max_quantitative_per_rule > 0
                       ? options.max_quantitative_per_rule
                       : schema.num_quantitative();
  size_t required_intervals =
      options.num_intervals_override > 0
          ? options.num_intervals_override
          : IntervalsForPartialCompleteness(options.partial_completeness,
                                            n_quant, options.minsup);

  // Build with placeholder attributes; fill per column.
  std::vector<MappedAttribute> placeholder(schema.num_attributes());
  for (size_t c = 0; c < schema.num_attributes(); ++c) {
    placeholder[c].name = schema.attribute(c).name;
    placeholder[c].kind = schema.attribute(c).kind;
  }
  MappedTable mapped(std::move(placeholder), table.num_rows());

  std::vector<MappedAttribute> attrs(schema.num_attributes());
  for (size_t c = 0; c < schema.num_attributes(); ++c) {
    if (schema.attribute(c).kind == AttributeKind::kCategorical) {
      const Taxonomy* taxonomy = nullptr;
      for (const auto& [name, tax] : options.taxonomies) {
        if (name == schema.attribute(c).name) {
          taxonomy = &tax;
          break;
        }
      }
      QARM_ASSIGN_OR_RETURN(attrs[c],
                            MapCategorical(table, c, taxonomy, &mapped));
    } else {
      attrs[c] = MapQuantitative(table, c, required_intervals, options.method,
                                 &mapped);
    }
  }

  // Rebuild with the real metadata, moving the data across.
  MappedTable out(std::move(attrs), table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_attributes(); ++c) {
      out.set_value(r, c, mapped.value(r, c));
    }
  }
  return out;
}

Result<MappedTable> MapTableWithAttributes(
    const Table& table, const std::vector<MappedAttribute>& attributes) {
  const Schema& schema = table.schema();
  if (schema.num_attributes() != attributes.size()) {
    return Status::InvalidArgument(StrFormat(
        "table has %zu attributes, existing metadata has %zu",
        schema.num_attributes(), attributes.size()));
  }
  for (size_t c = 0; c < attributes.size(); ++c) {
    const AttributeDef& def = schema.attribute(c);
    if (def.name != attributes[c].name || def.kind != attributes[c].kind) {
      return Status::InvalidArgument(
          "attribute " + std::to_string(c) + " ('" + def.name +
          "') does not match the existing metadata ('" + attributes[c].name +
          "')");
    }
  }

  MappedTable out(attributes, table.num_rows());
  for (size_t c = 0; c < attributes.size(); ++c) {
    const MappedAttribute& attr = attributes[c];
    const Column& column = table.column(c);
    if (attr.kind == AttributeKind::kCategorical) {
      std::map<std::string, int32_t> ids;
      for (size_t i = 0; i < attr.labels.size(); ++i) {
        ids.emplace(attr.labels[i], static_cast<int32_t>(i));
      }
      for (size_t r = 0; r < table.num_rows(); ++r) {
        if (column.IsNull(r)) {
          out.set_value(r, c, kMissingValue);
          continue;
        }
        auto it = ids.find(column.Get(r).ToString());
        if (it == ids.end()) {
          return Status::InvalidArgument(
              "value '" + column.Get(r).ToString() + "' of attribute '" +
              attr.name + "' is not in the existing domain; re-convert the "
              "file to admit new categorical values");
        }
        out.set_value(r, c, it->second);
      }
      continue;
    }
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (column.IsNull(r)) {
        out.set_value(r, c, kMissingValue);
        continue;
      }
      const double v = column.GetNumeric(r);
      if (attr.partitioned) {
        const int64_t idx = AssignToInterval(attr.intervals, v);
        if (idx < 0) {
          return Status::InvalidArgument("attribute '" + attr.name +
                                         "' has no intervals to assign to");
        }
        out.set_value(r, c, static_cast<int32_t>(idx));
        continue;
      }
      // Unpartitioned: every existing integer is one exact raw value.
      const auto it = std::lower_bound(
          attr.intervals.begin(), attr.intervals.end(), v,
          [](const Interval& interval, double value) {
            return interval.lo < value;
          });
      if (it == attr.intervals.end() || it->lo != v) {
        return Status::InvalidArgument(
            "value " + FormatDouble(v) + " of attribute '" + attr.name +
            "' is not in the existing domain; re-convert the file to admit "
            "new quantitative values");
      }
      out.set_value(
          r, c, static_cast<int32_t>(it - attr.intervals.begin()));
    }
  }
  return out;
}

}  // namespace qarm
