// Steps 1-2 of the problem decomposition: decide the number of partitions
// per quantitative attribute (Section 3), then map categorical values,
// raw quantitative values, or base intervals to consecutive integers
// (Section 2.1).
#ifndef QARM_PARTITION_MAPPER_H_
#define QARM_PARTITION_MAPPER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "partition/mapped_table.h"
#include "partition/taxonomy.h"
#include "table/table.h"

namespace qarm {

// Base-interval construction strategy.
enum class PartitionMethod {
  kEquiDepth,  // the paper's choice (optimal per Lemma 4)
  kEquiWidth,  // ablation baseline
  kKMeans,     // clustering-based (the paper's Section 7 future work)
};

// Options controlling partitioning and mapping.
struct MapOptions {
  // Desired partial completeness level K (> 1). Together with `minsup` it
  // determines the number of base intervals via Equation 2.
  double partial_completeness = 2.0;

  // Minimum support as a fraction in (0, 1]; must match the value used
  // for mining for the partial-completeness guarantee to hold.
  double minsup = 0.20;

  PartitionMethod method = PartitionMethod::kEquiDepth;

  // When > 0, overrides Equation 2 and forces this many base intervals for
  // every partitioned attribute.
  size_t num_intervals_override = 0;

  // When > 0, replaces the schema's quantitative-attribute count `n` in
  // Equation 2 (the paper's n' refinement: if no rule will have more than
  // n' quantitative attributes, fewer intervals suffice).
  size_t max_quantitative_per_rule = 0;

  // Taxonomies over categorical attributes (Section 1.1 / [SA95]), keyed by
  // attribute name. A taxonomized attribute's values are mapped in DFS leaf
  // order so interior nodes become contiguous ranges; every value in the
  // data must be a leaf of the taxonomy.
  std::vector<std::pair<std::string, Taxonomy>> taxonomies;
};

// Maps `table` to the integer domain. A quantitative attribute is
// partitioned only if its number of distinct values exceeds the required
// interval count (Section 3: "whether to partition ... and how many
// partitions"); otherwise each distinct value maps to its own consecutive
// integer, order preserved.
Result<MappedTable> MapTable(const Table& table, const MapOptions& options);

}  // namespace qarm

#endif  // QARM_PARTITION_MAPPER_H_
