// Steps 1-2 of the problem decomposition: decide the number of partitions
// per quantitative attribute (Section 3), then map categorical values,
// raw quantitative values, or base intervals to consecutive integers
// (Section 2.1).
#ifndef QARM_PARTITION_MAPPER_H_
#define QARM_PARTITION_MAPPER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "partition/mapped_table.h"
#include "partition/taxonomy.h"
#include "table/table.h"

namespace qarm {

// Base-interval construction strategy.
enum class PartitionMethod {
  kEquiDepth,  // the paper's choice (optimal per Lemma 4)
  kEquiWidth,  // ablation baseline
  kKMeans,     // clustering-based (the paper's Section 7 future work)
};

// Options controlling partitioning and mapping.
struct MapOptions {
  // Desired partial completeness level K (> 1). Together with `minsup` it
  // determines the number of base intervals via Equation 2.
  double partial_completeness = 2.0;

  // Minimum support as a fraction in (0, 1]; must match the value used
  // for mining for the partial-completeness guarantee to hold.
  double minsup = 0.20;

  PartitionMethod method = PartitionMethod::kEquiDepth;

  // When > 0, overrides Equation 2 and forces this many base intervals for
  // every partitioned attribute.
  size_t num_intervals_override = 0;

  // When > 0, replaces the schema's quantitative-attribute count `n` in
  // Equation 2 (the paper's n' refinement: if no rule will have more than
  // n' quantitative attributes, fewer intervals suffice).
  size_t max_quantitative_per_rule = 0;

  // Taxonomies over categorical attributes (Section 1.1 / [SA95]), keyed by
  // attribute name. A taxonomized attribute's values are mapped in DFS leaf
  // order so interior nodes become contiguous ranges; every value in the
  // data must be a leaf of the taxonomy.
  std::vector<std::pair<std::string, Taxonomy>> taxonomies;
};

// Maps `table` to the integer domain. A quantitative attribute is
// partitioned only if its number of distinct values exceeds the required
// interval count (Section 3: "whether to partition ... and how many
// partitions"); otherwise each distinct value maps to its own consecutive
// integer, order preserved.
Result<MappedTable> MapTable(const Table& table, const MapOptions& options);

// Maps `table` under *existing* attribute metadata instead of deriving a
// fresh partitioning — the append path: rows added to a QBT file must mean
// the same thing as the rows already in it, so labels and intervals are
// frozen. Categorical values are looked up in `attributes`' labels (a value
// absent from the labels is an error: admitting it would change the
// domain, which is exactly the case that forces a full re-convert).
// Partitioned quantitative values are assigned to the existing intervals
// (out-of-range values clip to the edge intervals, matching
// AssignToInterval); unpartitioned quantitative values must match one of
// the existing single-value intervals exactly. Schema names/kinds must
// match `attributes` positionally.
Result<MappedTable> MapTableWithAttributes(
    const Table& table, const std::vector<MappedAttribute>& attributes);

}  // namespace qarm

#endif  // QARM_PARTITION_MAPPER_H_
