#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/string_util.h"
#include "storage/attr_metadata.h"
#include "storage/crc32.h"
#include "storage/qbt_format.h"
#include "storage/rules_format.h"

namespace qarm {
namespace {

void AppendItems(std::string* out, const std::vector<StoredItem>& items) {
  for (const StoredItem& item : items) {
    QbtAppendI32(out, item.attr);
    QbtAppendI32(out, item.lo);
    QbtAppendI32(out, item.hi);
  }
}

std::string EncodePayload(const StoredRuleSet& set) {
  std::string out;
  QbtAppendF64(&out, set.minsup);
  QbtAppendF64(&out, set.minconf);
  QbtAppendF64(&out, set.interest_level);
  const std::string metadata = EncodeAttributeMetadata(set.attributes);
  QbtAppendU64(&out, metadata.size());
  out.append(metadata);
  QbtAppendU64(&out, set.rules.size());
  for (const StoredRule& rule : set.rules) {
    out.push_back(static_cast<char>(rule.antecedent.size()));
    out.push_back(static_cast<char>(rule.consequent.size()));
    out.push_back(rule.interesting ? 1 : 0);
    out.push_back(0);
    AppendItems(&out, rule.antecedent);
    AppendItems(&out, rule.consequent);
    QbtAppendU64(&out, rule.count);
    QbtAppendF64(&out, rule.support);
    QbtAppendF64(&out, rule.confidence);
    QbtAppendF64(&out, rule.lift);
  }
  return out;
}

// stdio instead of ofstream: the file descriptor is needed for fsync; a
// rule set the OS never flushed would vanish in the same crash window the
// checkpoint writer closes.
Status WriteFile(const std::string& path, const std::string& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
  ok = std::fflush(file) == 0 && ok;
#if defined(__unix__) || defined(__APPLE__)
  ok = fsync(fileno(file)) == 0 && ok;
#endif
  ok = std::fclose(file) == 0 && ok;
  if (!ok) {
    std::remove(path.c_str());
    return Status::IOError("write to '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace

Status WriteRuleSet(const StoredRuleSet& set, const std::string& path,
                    uint64_t* bytes_written) {
  for (size_t i = 0; i < set.rules.size(); ++i) {
    const StoredRule& rule = set.rules[i];
    if (rule.antecedent.empty() || rule.consequent.empty()) {
      return Status::InvalidArgument(
          StrFormat("rule %zu has an empty side", i));
    }
    if (rule.antecedent.size() > 255 || rule.consequent.size() > 255) {
      return Status::InvalidArgument(
          StrFormat("rule %zu has more than 255 items per side", i));
    }
  }

  const std::string payload = EncodePayload(set);
  std::string bytes;
  bytes.reserve(kQrsHeaderSize + payload.size() + kQrsTailSize);
  bytes.append(kQrsMagic, sizeof(kQrsMagic));
  QbtAppendU32(&bytes, kQbtEndianMarker);
  QbtAppendU32(&bytes, kQrsVersion);
  QbtAppendU32(&bytes, static_cast<uint32_t>(set.attributes.size()));
  QbtAppendU64(&bytes, payload.size());
  QbtAppendU64(&bytes, set.num_records);
  bytes.append(payload);
  QbtAppendU32(&bytes, Crc32(payload.data(), payload.size()));
  bytes.append(kQrsEndMagic, sizeof(kQrsEndMagic));

  // Atomic replace, same as the checkpoint writer: a crash before the
  // rename leaves any previous rule set valid.
  const std::string tmp_path = path + ".tmp";
  QARM_RETURN_NOT_OK(WriteFile(tmp_path, bytes));
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot rename '" + tmp_path + "' to '" + path +
                           "'");
  }
  if (bytes_written != nullptr) *bytes_written = bytes.size();
  return Status::OK();
}

}  // namespace qarm
