// QRS ("Quantitative Rule Set") — the on-disk format for a mined rule set,
// written by `qarm mine --output-rules` and loaded by the serving engine
// (`qarm serve`) and the `qarm rules dump` inspector. It is the durable
// boundary between mining time and serving time: everything a server needs
// to answer queries — the rules with their quality measures plus the
// decode metadata that maps raw attribute values to mapped ids and back —
// travels in one self-describing, CRC-protected file.
//
// Like QCP, the rule set is expressed in storage-neutral types (flat item
// triples, plain doubles) rather than core types, keeping this layer free
// of core dependencies; src/core/rules_export.{h,cc} converts from the
// miner's structures.
//
// Layout (version 1, all integers little-endian via the QBT helpers):
//
//   Header (32 bytes)
//     [0]  u8[4]  magic "QRS1"
//     [4]  u32    endian marker 0x0A0B0C0D (shared with QBT/QCP)
//     [8]  u32    format version (kQrsVersion)
//     [12] u32    num_attributes
//     [16] u64    payload_size
//     [24] u64    num_records (records the rules were mined from)
//
//   Payload (payload_size bytes)
//     f64 minsup, f64 minconf, f64 interest_level   (mining parameters)
//     u64 metadata_size
//       attribute metadata (shared QBT/QRS encoding, attr_metadata.h)
//     u64 num_rules
//       per rule:
//         u8  num_antecedent   (>= 1)
//         u8  num_consequent   (>= 1)
//         u8  interesting      (0/1)
//         u8  reserved         (0)
//         items: (i32 attr, i32 lo, i32 hi) per item, antecedent first,
//                each side sorted by attribute, sides attribute-disjoint
//         u64 count            (records supporting antecedent ∪ consequent)
//         f64 support, f64 confidence, f64 lift
//
//   Tail (8 bytes)
//     u32    CRC-32 of the payload bytes
//     u8[4]  end magic "QRSE"
//
// The reader validates magic, version, endianness, every declared count
// against the actual byte budget (in division form, before any
// allocation), the payload CRC, and the semantic invariants of every rule
// (sides non-empty and attribute-sorted, endpoints inside the attribute's
// mapped domain, measures finite and in range); any mismatch is a clean
// Status, never a crash.
#ifndef QARM_STORAGE_RULES_FORMAT_H_
#define QARM_STORAGE_RULES_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "partition/mapped_table.h"

namespace qarm {

inline constexpr char kQrsMagic[4] = {'Q', 'R', 'S', '1'};
inline constexpr char kQrsEndMagic[4] = {'Q', 'R', 'S', 'E'};
inline constexpr uint32_t kQrsVersion = 1;
inline constexpr size_t kQrsHeaderSize = 4 + 4 + 4 + 4 + 8 + 8;
inline constexpr size_t kQrsTailSize = 4 + 4;
// Encoded bytes of one item: i32 attr + i32 lo + i32 hi.
inline constexpr size_t kQrsItemBytes = 3 * 4;
// Minimum encoded bytes of one rule: the four flag bytes, one item per
// side, the count, and the three measures. Bounds num_rules in division
// form before any allocation.
inline constexpr size_t kQrsMinRuleBytes = 4 + 2 * kQrsItemBytes + 8 + 3 * 8;

// One <attr, lo, hi> rule item over the mapped integer domain. Mirrors
// core's RangeItem without depending on it (the QCP discipline).
struct StoredItem {
  int32_t attr = 0;
  int32_t lo = 0;
  int32_t hi = 0;

  bool operator==(const StoredItem& other) const {
    return attr == other.attr && lo == other.lo && hi == other.hi;
  }
};

// One mined rule: antecedent => consequent with its quality measures.
// `lift` is confidence / support(consequent), or 0 when the consequent's
// support was unavailable at write time.
struct StoredRule {
  std::vector<StoredItem> antecedent;
  std::vector<StoredItem> consequent;
  uint64_t count = 0;
  double support = 0.0;
  double confidence = 0.0;
  double lift = 0.0;
  bool interesting = true;

  size_t num_items() const { return antecedent.size() + consequent.size(); }
};

// A complete rule set: the rules plus the decode metadata and the mining
// parameters they were produced under.
struct StoredRuleSet {
  std::vector<MappedAttribute> attributes;
  uint64_t num_records = 0;
  double minsup = 0.0;
  double minconf = 0.0;
  double interest_level = 0.0;
  std::vector<StoredRule> rules;
};

// Serializes `set` and writes it atomically (temp file + rename) to
// `path`. The file size lands in `*bytes_written` when non-null. IOError
// on any filesystem failure; an existing file at `path` is left untouched
// on failure.
Status WriteRuleSet(const StoredRuleSet& set, const std::string& path,
                    uint64_t* bytes_written = nullptr);

// Parses a rule set from an in-memory buffer (the fuzz entry point; the
// file reader delegates here). Every declared size is validated against
// the remaining bytes before allocation.
Result<StoredRuleSet> ParseRuleSet(const uint8_t* data, size_t size);

// Memory-maps and validates the rule set at `path`. The mapping only
// lives for the duration of the call; the returned set owns its storage.
Result<StoredRuleSet> ReadRuleSet(const std::string& path);

}  // namespace qarm

#endif  // QARM_STORAGE_RULES_FORMAT_H_
