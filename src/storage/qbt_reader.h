// Mmap-backed QBT reader. Open() maps the file, validates the header,
// attribute metadata, and block index; ReadBlockColumns() validates one
// block's CRC and returns zero-copy column slices into the mapping.
// Resident memory is bounded by the pages of the blocks actually being
// scanned, not by the table size.
#ifndef QARM_STORAGE_QBT_READER_H_
#define QARM_STORAGE_QBT_READER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "partition/mapped_table.h"
#include "storage/mmap_file.h"

namespace qarm {

class QbtReader {
 public:
  // Maps and validates `path`. Fails with a descriptive Status on a bad
  // magic/version/endianness, a truncated file, or an index that does not
  // match the file size.
  static Result<std::unique_ptr<QbtReader>> Open(const std::string& path);

  const std::vector<MappedAttribute>& attributes() const {
    return attributes_;
  }
  uint64_t num_rows() const { return num_rows_; }
  uint32_t rows_per_block() const { return rows_per_block_; }
  size_t num_blocks() const { return blocks_.size(); }
  size_t block_rows(size_t b) const { return blocks_[b].num_rows; }
  // First global row of block `b`. Appends may leave short blocks in the
  // middle of the file (each append starts a fresh block), so this is a
  // prefix sum over the index, not b * rows_per_block.
  uint64_t block_row_begin(size_t b) const { return row_begins_[b]; }
  // File offset of block `b`'s bytes (exposed for corruption tests and
  // tooling).
  uint64_t block_offset(size_t b) const { return blocks_[b].offset; }
  // Stored CRC-32 of block `b` (append re-encodes existing index entries
  // verbatim, so this is stable across appends).
  uint32_t block_crc(size_t b) const { return blocks_[b].crc32; }
  uint64_t file_size() const { return file_->size(); }

  // CRC-32 over the first `num_blocks` index entries as encoded on disk.
  // Incremental mining fingerprints the base run's block range with this:
  // an append only adds entries, so the prefix CRC of an untouched base
  // range never changes, while any rewrite of a covered block changes it.
  uint32_t IndexPrefixCrc(size_t num_blocks) const;

  // Validates block `b`'s checksum and fills `columns` (resized to the
  // attribute count) with pointers to its column slices, each
  // block_rows(b) consecutive int32 values inside the mapping. Thread-safe:
  // the mapping is read-only and `columns` is caller-owned.
  Status ReadBlockColumns(size_t b,
                          std::vector<const int32_t*>* columns) const;

  // Bytes of one full block (the last block may be smaller).
  uint64_t block_bytes(size_t b) const {
    return static_cast<uint64_t>(blocks_[b].num_rows) * attributes_.size() *
           sizeof(int32_t);
  }

 private:
  struct BlockEntry {
    uint64_t offset = 0;
    uint32_t num_rows = 0;
    uint32_t crc32 = 0;
  };

  QbtReader() = default;

  std::unique_ptr<MmapFile> file_;
  std::vector<MappedAttribute> attributes_;
  uint64_t num_rows_ = 0;
  uint32_t rows_per_block_ = 0;
  std::vector<BlockEntry> blocks_;
  std::vector<uint64_t> row_begins_;  // parallel to blocks_, prefix sums
};

}  // namespace qarm

#endif  // QARM_STORAGE_QBT_READER_H_
