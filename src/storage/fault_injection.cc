#include "storage/fault_injection.h"

#include <cstdlib>
#include <utility>

#include "common/hash.h"
#include "common/string_util.h"

namespace qarm {
namespace {

// Distinct stream constants so the faulted? decision and the kind choice
// for the same block are independent draws.
constexpr uint64_t kFaultStream = 0x6661756c74ULL;  // "fault"
constexpr uint64_t kKindStream = 0x6b696e64ULL;     // "kind"

double UnitUniform(uint64_t bits) {
  // Top 53 bits -> [0, 1).
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

Result<uint64_t> ParsePositive(std::string_view key, std::string_view text) {
  QARM_ASSIGN_OR_RETURN(uint64_t value, ParseUint64(text));
  if (value == 0) {
    return Status::InvalidArgument("fault spec: '" + std::string(key) +
                                   "' must be >= 1");
  }
  return value;
}

Result<uint32_t> ParseKinds(std::string_view text) {
  uint32_t kinds = 0;
  for (const std::string& name : Split(text, '+')) {
    if (name == "eio") {
      kinds |= static_cast<uint32_t>(FaultKind::kEio);
    } else if (name == "short") {
      kinds |= static_cast<uint32_t>(FaultKind::kShortRead);
    } else if (name == "crc") {
      kinds |= static_cast<uint32_t>(FaultKind::kCrc);
    } else if (name == "kill") {
      kinds |= static_cast<uint32_t>(FaultKind::kKill);
    } else if (name == "conn_reset") {
      kinds |= static_cast<uint32_t>(FaultKind::kConnReset);
    } else if (name == "stall") {
      kinds |= static_cast<uint32_t>(FaultKind::kStall);
    } else if (name == "partial_write") {
      kinds |= static_cast<uint32_t>(FaultKind::kPartialWrite);
    } else {
      return Status::InvalidArgument(
          "fault spec: unknown kind '" + name +
          "' (expected eio, short, crc, kill, conn_reset, stall, or "
          "partial_write, joined with '+')");
    }
  }
  if (kinds == 0) {
    return Status::InvalidArgument("fault spec: 'kinds' is empty");
  }
  return kinds;
}

}  // namespace

Result<FaultInjectionConfig> ParseFaultSpec(std::string_view spec) {
  FaultInjectionConfig config;
  if (StripWhitespace(spec).empty()) {
    return Status::InvalidArgument("fault spec is empty");
  }
  for (const std::string& pair : Split(spec, ',')) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault spec: '" + pair +
                                     "' is not key=value");
    }
    const std::string_view key = StripWhitespace(
        std::string_view(pair).substr(0, eq));
    const std::string_view value = StripWhitespace(
        std::string_view(pair).substr(eq + 1));
    if (key == "seed") {
      QARM_ASSIGN_OR_RETURN(config.seed, ParseUint64(value));
    } else if (key == "rate") {
      QARM_ASSIGN_OR_RETURN(config.rate, ParseDouble(value));
      if (config.rate <= 0.0 || config.rate > 1.0) {
        return Status::InvalidArgument(
            "fault spec: 'rate' must be in (0, 1]");
      }
    } else if (key == "fails") {
      QARM_ASSIGN_OR_RETURN(config.fails_per_block,
                            ParsePositive(key, value));
    } else if (key == "after") {
      QARM_ASSIGN_OR_RETURN(config.after_reads, ParseUint64(value));
    } else if (key == "kinds") {
      QARM_ASSIGN_OR_RETURN(config.kinds, ParseKinds(value));
    } else if (key == "attempts") {
      QARM_ASSIGN_OR_RETURN(config.retry.max_attempts,
                            ParsePositive(key, value));
    } else if (key == "backoff") {
      QARM_ASSIGN_OR_RETURN(config.retry.initial_backoff_ms,
                            ParseDouble(value));
      if (config.retry.initial_backoff_ms < 0.0) {
        return Status::InvalidArgument(
            "fault spec: 'backoff' must be >= 0");
      }
    } else if (key == "stall") {
      QARM_ASSIGN_OR_RETURN(config.stall_ms, ParseDouble(value));
      if (config.stall_ms < 0.0) {
        return Status::InvalidArgument("fault spec: 'stall' must be >= 0");
      }
    } else {
      return Status::InvalidArgument(
          "fault spec: unknown key '" + std::string(key) +
          "' (expected seed, rate, fails, after, kinds, attempts, backoff, "
          "stall)");
    }
  }
  return config;
}

FaultInjectingRecordSource::FaultInjectingRecordSource(
    const RecordSource& inner, const FaultInjectionConfig& config)
    : inner_(&inner),
      config_(config),
      block_failures_(new std::atomic<uint64_t>[inner.num_blocks()]()) {
  // A record source can only inject storage faults; the network kinds
  // belong to the TCP transport. Mask them so a mixed spec works here.
  config_.kinds = StorageFaultKinds(config_.kinds);
}

FaultInjectingRecordSource::FaultInjectingRecordSource(
    std::unique_ptr<RecordSource> inner, const FaultInjectionConfig& config)
    : inner_(inner.get()),
      owned_(std::move(inner)),
      config_(config),
      block_failures_(new std::atomic<uint64_t>[inner_->num_blocks()]()) {
  config_.kinds = StorageFaultKinds(config_.kinds);
}

bool FaultInjectingRecordSource::BlockIsFaulted(size_t b) const {
  const uint64_t bits =
      SplitMix64(config_.seed ^ kFaultStream ^
                 static_cast<uint64_t>(b) * 0x9e3779b97f4a7c15ULL);
  return UnitUniform(bits) < config_.rate;
}

FaultKind FaultInjectingRecordSource::BlockFaultKind(size_t b) const {
  FaultKind enabled[4];
  size_t n = 0;
  for (FaultKind kind : {FaultKind::kEio, FaultKind::kShortRead,
                         FaultKind::kCrc, FaultKind::kKill}) {
    if (config_.kinds & static_cast<uint32_t>(kind)) enabled[n++] = kind;
  }
  QARM_CHECK_GT(n, 0u);
  const uint64_t bits =
      SplitMix64(config_.seed ^ kKindStream ^
                 static_cast<uint64_t>(b) * 0x9e3779b97f4a7c15ULL);
  return enabled[bits % n];
}

Status FaultInjectingRecordSource::InjectOrRead(size_t b,
                                                BlockView* view) const {
  const uint64_t read_ordinal =
      total_reads_.fetch_add(1, std::memory_order_relaxed);
  if (config_.kinds != 0 && BlockIsFaulted(b) &&
      read_ordinal >= config_.after_reads) {
    // Process death is not a retryable read error: the first `fails`
    // incarnations die outright; a respawned reader (generation bumped)
    // survives the block. The budget is the generation, not a per-block
    // counter, because the counter dies with the process.
    if (BlockFaultKind(b) == FaultKind::kKill) {
      if (config_.generation < config_.fails_per_block) {
        std::_Exit(137);  // mimic SIGKILL's 128+9 exit status
      }
      return inner_->ReadBlock(b, view);
    }
    const uint64_t prior =
        block_failures_[b].fetch_add(1, std::memory_order_relaxed);
    if (prior < config_.fails_per_block) {
      faults_injected_.fetch_add(1, std::memory_order_relaxed);
      switch (BlockFaultKind(b)) {
        case FaultKind::kEio:
          return Status::IOError(
              StrFormat("injected EIO reading block %zu", b));
        case FaultKind::kShortRead:
          return Status::IOError(
              StrFormat("injected short read of block %zu", b));
        case FaultKind::kCrc:
          return Status::IOError(
              StrFormat("injected checksum mismatch in block %zu", b));
        case FaultKind::kKill:
        case FaultKind::kConnReset:
        case FaultKind::kStall:
        case FaultKind::kPartialWrite:
          // kKill is handled before the per-block budget above; the
          // network kinds never reach a record source (the constructor
          // masks them off — they live in the TCP transport).
          break;
      }
    }
    // Budget exhausted for this block: the "device" recovered.
    block_failures_[b].store(config_.fails_per_block,
                             std::memory_order_relaxed);
  }
  return inner_->ReadBlock(b, view);
}

Status FaultInjectingRecordSource::ReadBlock(size_t b, BlockView* view) const {
  uint64_t retries = 0;
  const Status status = RetryWithBackoff(
      config_.retry, /*key=*/static_cast<uint64_t>(b), &retries,
      [&]() { return InjectOrRead(b, view); });
  read_retries_.fetch_add(retries, std::memory_order_relaxed);
  return status;
}

ScanIoStats FaultInjectingRecordSource::io_stats() const {
  ScanIoStats stats = inner_->io_stats();
  stats.faults_injected += faults_injected_.load(std::memory_order_relaxed);
  stats.read_retries += read_retries_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace qarm
