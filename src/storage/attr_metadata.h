// Shared codec for the per-attribute decode metadata section used by both
// on-disk formats that carry it: QBT (the columnar table format) and QRS
// (the mined rule-set format). One definition keeps the two formats
// byte-compatible — a QRS file's metadata section is exactly a QBT one —
// and gives their readers the same bounds discipline.
//
// Per attribute, in order (see qbt_format.h for the integer encodings):
//   name        u32 length + bytes
//   kind        u8  (AttributeKind)
//   source_type u8  (ValueType)
//   partitioned u8  (0/1)
//   reserved    u8  (0)
//   labels            u32 count + per label (u32 length + bytes)
//   intervals         u32 count + per interval (f64 lo, f64 hi)
//   taxonomy_ranges   u32 count + per node (u32 length + name bytes,
//                                           i32 lo, i32 hi)
#ifndef QARM_STORAGE_ATTR_METADATA_H_
#define QARM_STORAGE_ATTR_METADATA_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "partition/mapped_table.h"

namespace qarm {

// Serializes the metadata of `attributes` (no count prefix; the enclosing
// format carries the attribute count in its header).
std::string EncodeAttributeMetadata(
    const std::vector<MappedAttribute>& attributes);

// Decodes `num_attrs` attributes from a metadata section of `size` bytes.
// Every declared count is validated against the remaining bytes before any
// allocation, so a hostile count can never trigger an oversized resize.
// `consumed`, when non-null, receives the bytes actually decoded (callers
// decide how much trailing padding their format permits). Errors are
// InvalidArgument with a section-relative description; callers wrap them
// with file context.
Result<std::vector<MappedAttribute>> DecodeAttributeMetadata(
    const uint8_t* data, size_t size, uint32_t num_attrs,
    size_t* consumed = nullptr);

}  // namespace qarm

#endif  // QARM_STORAGE_ATTR_METADATA_H_
