#include "storage/qbt_writer.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/string_util.h"
#include "storage/attr_metadata.h"
#include "storage/crc32.h"
#include "storage/mmap_file.h"
#include "storage/qbt_reader.h"

namespace qarm {
namespace {

// Transposes rows [row, row + block_rows) of `table` into `block`
// (column-major slices) and appends the block's index entry to `footer`.
void EncodeBlock(const MappedTable& table, uint64_t row, size_t block_rows,
                 uint64_t offset, std::vector<int32_t>* block,
                 std::string* footer) {
  const size_t num_attrs = table.num_attributes();
  block->resize(block_rows * num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    int32_t* slice = block->data() + a * block_rows;
    for (size_t r = 0; r < block_rows; ++r) {
      slice[r] = table.value(static_cast<size_t>(row) + r, a);
    }
  }
  const size_t block_bytes = block->size() * sizeof(int32_t);
  QbtAppendU64(footer, offset);
  QbtAppendU32(footer, static_cast<uint32_t>(block_rows));
  QbtAppendU32(footer, Crc32(block->data(), block_bytes));
}

Status FlushAndSync(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    return Status::IOError("write to '" + path + "' failed");
  }
#if defined(__unix__) || defined(__APPLE__)
  if (fsync(fileno(file)) != 0) {
    return Status::IOError("fsync of '" + path + "' failed");
  }
#endif
  return Status::OK();
}

}  // namespace

Status WriteQbt(const MappedTable& table, const std::string& path,
                const QbtWriteOptions& options, QbtWriteInfo* info) {
  // Block values are written as raw int32; the format is defined
  // little-endian, so refuse to produce a byte-swapped file.
  if constexpr (std::endian::native != std::endian::little) {
    return Status::Internal("QBT writing requires a little-endian host");
  }
  if (options.rows_per_block == 0) {
    return Status::InvalidArgument("rows_per_block must be > 0");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }

  const size_t num_attrs = table.num_attributes();
  const uint64_t num_rows = table.num_rows();
  const uint32_t rows_per_block = options.rows_per_block;
  std::string metadata = EncodeAttributeMetadata(table.attributes());
  // Pad to 4 bytes so every block (and hence every int32 column slice) is
  // naturally aligned in the mapping.
  while (metadata.size() % sizeof(int32_t) != 0) metadata.push_back('\0');

  std::string header;
  header.append(kQbtMagic, sizeof(kQbtMagic));
  QbtAppendU32(&header, kQbtEndianMarker);
  QbtAppendU32(&header, kQbtVersion);
  QbtAppendU32(&header, rows_per_block);
  QbtAppendU64(&header, num_rows);
  QbtAppendU32(&header, static_cast<uint32_t>(num_attrs));
  QbtAppendU32(&header, 0);  // reserved
  QbtAppendU64(&header, metadata.size());
  QARM_CHECK_EQ(header.size(), kQbtHeaderSize);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(metadata.data(), static_cast<std::streamsize>(metadata.size()));

  // Blocks: transpose each row range into per-column slices and stream them
  // out, recording the index entry as we go.
  std::string footer;
  uint64_t offset = kQbtHeaderSize + metadata.size();
  uint64_t num_blocks = 0;
  std::vector<int32_t> block;
  for (uint64_t row = 0; row < num_rows; row += rows_per_block) {
    const size_t block_rows = static_cast<size_t>(
        std::min<uint64_t>(rows_per_block, num_rows - row));
    EncodeBlock(table, row, block_rows, offset, &block, &footer);
    const size_t block_bytes = block.size() * sizeof(int32_t);
    out.write(reinterpret_cast<const char*>(block.data()),
              static_cast<std::streamsize>(block_bytes));
    offset += block_bytes;
    ++num_blocks;
  }

  const uint64_t footer_offset = offset;
  out.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  std::string tail;
  QbtAppendU64(&tail, footer_offset);
  QbtAppendU32(&tail, Crc32(footer.data(), footer.size()));
  tail.append(kQbtEndMagic, sizeof(kQbtEndMagic));
  QARM_CHECK_EQ(tail.size(), kQbtTailSize);
  out.write(tail.data(), static_cast<std::streamsize>(tail.size()));

  out.flush();
  if (!out) {
    return Status::IOError("write to '" + path + "' failed");
  }
  if (info != nullptr) {
    info->num_rows = num_rows;
    info->num_blocks = num_blocks;
    info->file_bytes = footer_offset + footer.size() + kQbtTailSize;
  }
  return Status::OK();
}

Status RecoverQbt(const std::string& path, bool* recovered) {
  if (recovered != nullptr) *recovered = false;
  if (QbtReader::Open(path).ok()) return Status::OK();

  QARM_ASSIGN_OR_RETURN(std::unique_ptr<MmapFile> file, MmapFile::Open(path));
  const uint8_t* data = file->data();
  const size_t size = file->size();
  if (size < kQbtHeaderSize + kQbtTailSize ||
      std::memcmp(data, kQbtMagic, sizeof(kQbtMagic)) != 0 ||
      QbtReadU32(data + 4) != kQbtEndianMarker ||
      QbtReadU32(data + 8) != kQbtVersion) {
    return Status::IOError("'" + path +
                           "' is not a recoverable QBT file (bad header)");
  }
  const uint32_t rows_per_block = QbtReadU32(data + 12);
  const uint64_t num_rows = QbtReadU64(data + 16);
  const uint64_t metadata_size = QbtReadU64(data + 32);
  const uint64_t data_begin = kQbtHeaderSize + metadata_size;
  if (rows_per_block == 0 || metadata_size > size - kQbtHeaderSize) {
    return Status::IOError("'" + path +
                           "' is not a recoverable QBT file (bad header)");
  }

  // An interrupted append left partial suffix bytes after the last
  // committed tail (or a complete suffix whose row count was never
  // committed to the header). Scan backwards for the most recent tail whose
  // footer checksums and whose block rows sum to the committed header row
  // count, and cut the file there.
  for (size_t tail_end = size; tail_end >= data_begin + kQbtTailSize;
       --tail_end) {
    const uint8_t* tail = data + tail_end - kQbtTailSize;
    if (std::memcmp(tail + 12, kQbtEndMagic, sizeof(kQbtEndMagic)) != 0) {
      continue;
    }
    const uint64_t footer_offset = QbtReadU64(tail);
    if (footer_offset < data_begin ||
        footer_offset > tail_end - kQbtTailSize ||
        (tail_end - kQbtTailSize - footer_offset) % kQbtBlockIndexEntrySize !=
            0) {
      continue;
    }
    const uint64_t footer_size = tail_end - kQbtTailSize - footer_offset;
    const uint8_t* footer = data + footer_offset;
    if (Crc32(footer, static_cast<size_t>(footer_size)) !=
        QbtReadU32(tail + 8)) {
      continue;
    }
    uint64_t rows = 0;
    bool entries_ok = true;
    for (uint64_t b = 0; b < footer_size / kQbtBlockIndexEntrySize; ++b) {
      const uint8_t* entry = footer + b * kQbtBlockIndexEntrySize;
      const uint64_t block_offset = QbtReadU64(entry);
      const uint32_t block_rows = QbtReadU32(entry + 8);
      if (block_rows == 0 || block_rows > rows_per_block ||
          block_offset < data_begin || block_offset > footer_offset) {
        entries_ok = false;
        break;
      }
      rows += block_rows;
    }
    if (!entries_ok || rows != num_rows) continue;

    file.reset();  // unmap before truncating
#if defined(__unix__) || defined(__APPLE__)
    if (truncate(path.c_str(), static_cast<off_t>(tail_end)) != 0) {
      return Status::IOError("cannot truncate '" + path + "'");
    }
#else
    return Status::Internal("QBT recovery requires POSIX truncate");
#endif
    QARM_RETURN_NOT_OK(QbtReader::Open(path).status());
    if (recovered != nullptr) *recovered = true;
    return Status::OK();
  }
  return Status::IOError(
      "'" + path +
      "' has no recoverable committed state (corrupt beyond an "
      "interrupted append)");
}

Status AppendQbt(const MappedTable& delta, const std::string& path,
                 QbtAppendInfo* info) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::Internal("QBT writing requires a little-endian host");
  }
  if (delta.num_rows() == 0) {
    return Status::InvalidArgument("append with no rows");
  }
  // Heal an interrupted previous append first; a file with no committed
  // state at all surfaces that error instead.
  QARM_RETURN_NOT_OK(RecoverQbt(path));
  QARM_ASSIGN_OR_RETURN(std::unique_ptr<QbtReader> reader,
                        QbtReader::Open(path));

  // The stored values are only meaningful under the exact decode metadata
  // they were written with; require byte-identical metadata rather than
  // guessing at compatibility.
  if (EncodeAttributeMetadata(delta.attributes()) !=
      EncodeAttributeMetadata(reader->attributes())) {
    return Status::InvalidArgument(
        "appended rows were mapped with different attribute metadata than '" +
        path + "' (labels, intervals, or taxonomy differ); re-map them "
        "with the file's metadata or re-convert from scratch");
  }

  const uint32_t rows_per_block = reader->rows_per_block();
  const uint64_t delta_rows = delta.num_rows();
  const uint64_t old_size = reader->file_size();
  const uint64_t old_rows = reader->num_rows();
  const size_t old_blocks = reader->num_blocks();

  // Stage the whole suffix: the delta's blocks, then a fresh footer (the
  // existing index entries re-encoded verbatim plus the new ones), then a
  // fresh tail. The old footer and tail stay in place as dead bytes — no
  // committed byte is ever rewritten, so a crash at any point here leaves
  // the old state intact.
  std::string suffix;
  std::string footer;
  for (size_t b = 0; b < old_blocks; ++b) {
    QbtAppendU64(&footer, reader->block_offset(b));
    QbtAppendU32(&footer, static_cast<uint32_t>(reader->block_rows(b)));
    QbtAppendU32(&footer, reader->block_crc(b));
  }
  uint64_t offset = old_size;
  uint64_t new_blocks = 0;
  std::vector<int32_t> block;
  for (uint64_t row = 0; row < delta_rows; row += rows_per_block) {
    const size_t block_rows = static_cast<size_t>(
        std::min<uint64_t>(rows_per_block, delta_rows - row));
    EncodeBlock(delta, row, block_rows, offset, &block, &footer);
    suffix.append(reinterpret_cast<const char*>(block.data()),
                  block.size() * sizeof(int32_t));
    offset += block.size() * sizeof(int32_t);
    ++new_blocks;
  }
  const uint64_t footer_offset = offset;
  suffix.append(footer);
  QbtAppendU64(&suffix, footer_offset);
  QbtAppendU32(&suffix, Crc32(footer.data(), footer.size()));
  suffix.append(kQbtEndMagic, sizeof(kQbtEndMagic));

  reader.reset();  // unmap before writing

  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) {
    return Status::IOError("cannot open '" + path + "' for appending");
  }
  auto fail = [&](Status status) {
    std::fclose(file);
    return status;
  };
  // Phase 1: the suffix, durably, while the header still commits the old
  // state.
  if (std::fseek(file, static_cast<long>(old_size), SEEK_SET) != 0 ||
      std::fwrite(suffix.data(), 1, suffix.size(), file) != suffix.size()) {
    return fail(Status::IOError("write to '" + path + "' failed"));
  }
  Status synced = FlushAndSync(file, path);
  if (!synced.ok()) return fail(synced);
  // Phase 2: the commit point — the header row count now reconciles with
  // the new index, and the new tail is the one closest to end of file.
  std::string committed_rows;
  QbtAppendU64(&committed_rows, old_rows + delta_rows);
  if (std::fseek(file, 16, SEEK_SET) != 0 ||
      std::fwrite(committed_rows.data(), 1, committed_rows.size(), file) !=
          committed_rows.size()) {
    return fail(Status::IOError("commit write to '" + path + "' failed"));
  }
  synced = FlushAndSync(file, path);
  if (!synced.ok()) return fail(synced);
  if (std::fclose(file) != 0) {
    return Status::IOError("close of '" + path + "' failed");
  }

  if (info != nullptr) {
    info->rows_appended = delta_rows;
    info->blocks_appended = new_blocks;
    info->total_rows = old_rows + delta_rows;
    info->total_blocks = old_blocks + new_blocks;
    info->file_bytes = old_size + suffix.size();
  }
  return Status::OK();
}

}  // namespace qarm
