#include "storage/qbt_writer.h"

#include <algorithm>
#include <bit>
#include <fstream>
#include <vector>

#include "storage/attr_metadata.h"
#include "storage/crc32.h"

namespace qarm {

Status WriteQbt(const MappedTable& table, const std::string& path,
                const QbtWriteOptions& options, QbtWriteInfo* info) {
  // Block values are written as raw int32; the format is defined
  // little-endian, so refuse to produce a byte-swapped file.
  if constexpr (std::endian::native != std::endian::little) {
    return Status::Internal("QBT writing requires a little-endian host");
  }
  if (options.rows_per_block == 0) {
    return Status::InvalidArgument("rows_per_block must be > 0");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }

  const size_t num_attrs = table.num_attributes();
  const uint64_t num_rows = table.num_rows();
  const uint32_t rows_per_block = options.rows_per_block;
  std::string metadata = EncodeAttributeMetadata(table.attributes());
  // Pad to 4 bytes so every block (and hence every int32 column slice) is
  // naturally aligned in the mapping.
  while (metadata.size() % sizeof(int32_t) != 0) metadata.push_back('\0');

  std::string header;
  header.append(kQbtMagic, sizeof(kQbtMagic));
  QbtAppendU32(&header, kQbtEndianMarker);
  QbtAppendU32(&header, kQbtVersion);
  QbtAppendU32(&header, rows_per_block);
  QbtAppendU64(&header, num_rows);
  QbtAppendU32(&header, static_cast<uint32_t>(num_attrs));
  QbtAppendU32(&header, 0);  // reserved
  QbtAppendU64(&header, metadata.size());
  QARM_CHECK_EQ(header.size(), kQbtHeaderSize);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(metadata.data(), static_cast<std::streamsize>(metadata.size()));

  // Blocks: transpose each row range into per-column slices and stream them
  // out, recording the index entry as we go.
  std::string footer;
  uint64_t offset = kQbtHeaderSize + metadata.size();
  uint64_t num_blocks = 0;
  std::vector<int32_t> block;
  for (uint64_t row = 0; row < num_rows; row += rows_per_block) {
    const size_t block_rows = static_cast<size_t>(
        std::min<uint64_t>(rows_per_block, num_rows - row));
    block.resize(block_rows * num_attrs);
    for (size_t a = 0; a < num_attrs; ++a) {
      int32_t* slice = block.data() + a * block_rows;
      for (size_t r = 0; r < block_rows; ++r) {
        slice[r] = table.value(static_cast<size_t>(row) + r, a);
      }
    }
    const size_t block_bytes = block.size() * sizeof(int32_t);
    out.write(reinterpret_cast<const char*>(block.data()),
              static_cast<std::streamsize>(block_bytes));
    QbtAppendU64(&footer, offset);
    QbtAppendU32(&footer, static_cast<uint32_t>(block_rows));
    QbtAppendU32(&footer, Crc32(block.data(), block_bytes));
    offset += block_bytes;
    ++num_blocks;
  }

  const uint64_t footer_offset = offset;
  out.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  std::string tail;
  QbtAppendU64(&tail, footer_offset);
  QbtAppendU32(&tail, Crc32(footer.data(), footer.size()));
  tail.append(kQbtEndMagic, sizeof(kQbtEndMagic));
  QARM_CHECK_EQ(tail.size(), kQbtTailSize);
  out.write(tail.data(), static_cast<std::streamsize>(tail.size()));

  out.flush();
  if (!out) {
    return Status::IOError("write to '" + path + "' failed");
  }
  if (info != nullptr) {
    info->num_rows = num_rows;
    info->num_blocks = num_blocks;
    info->file_bytes = footer_offset + footer.size() + kQbtTailSize;
  }
  return Status::OK();
}

}  // namespace qarm
