// RecordSource — the block-stream view of a mapped table that the mining
// scans (the pass-1 value-count scan in ItemCatalog::Build and each
// support-counting pass) iterate over. Two implementations:
//
//   * MappedTableSource wraps an in-memory MappedTable: blocks are row
//     ranges of the resident row-major matrix (zero-copy, stride =
//     num_attributes).
//   * QbtFileSource wraps an mmap'd QBT file: blocks are the file's
//     columnar blocks (zero-copy, stride = 1), validated against their
//     CRC32 on every read.
//
// Scans shard *blocks* — not a resident row range — across the thread
// pool, so a table larger than RAM streams through every pass with memory
// bounded by the blocks in flight plus the counters.
#ifndef QARM_STORAGE_RECORD_SOURCE_H_
#define QARM_STORAGE_RECORD_SOURCE_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "partition/mapped_table.h"
#include "storage/qbt_reader.h"

namespace qarm {

// Cumulative I/O counters of a source. In-memory sources stay at zero;
// QbtFileSource counts every block validation. Scans snapshot the counters
// before and after a pass and report the difference.
struct ScanIoStats {
  uint64_t blocks_read = 0;
  uint64_t bytes_read = 0;         // bytes mapped & checksummed
  double checksum_seconds = 0.0;   // wall time spent validating CRCs
  uint64_t read_retries = 0;       // block reads retried after a failure
  uint64_t faults_injected = 0;    // injected faults (fault_injection.h)

  ScanIoStats operator-(const ScanIoStats& other) const {
    return ScanIoStats{blocks_read - other.blocks_read,
                       bytes_read - other.bytes_read,
                       checksum_seconds - other.checksum_seconds,
                       read_retries - other.read_retries,
                       faults_injected - other.faults_injected};
  }
  ScanIoStats& operator+=(const ScanIoStats& other) {
    blocks_read += other.blocks_read;
    bytes_read += other.bytes_read;
    checksum_seconds += other.checksum_seconds;
    read_retries += other.read_retries;
    faults_injected += other.faults_injected;
    return *this;
  }
};

// One block of records. `value(r, a)` reads local row r (0-based within the
// block) of attribute a; the layout (columnar vs row-major) is hidden
// behind the stride. Views are cheap to reuse across ReadBlock calls (the
// column-pointer vector keeps its capacity).
class BlockView {
 public:
  size_t row_begin() const { return row_begin_; }
  size_t num_rows() const { return num_rows_; }

  int32_t value(size_t row, size_t attr) const {
    return columns_[attr][row * stride_];
  }

  // Base pointer and element stride of one attribute's values.
  const int32_t* column(size_t attr) const { return columns_[attr]; }
  size_t stride() const { return stride_; }
  // True when each column is a contiguous slice (stride 1) — the SIMD scan
  // kernels then read it in place instead of materializing a copy.
  bool columnar() const { return stride_ == 1; }

 private:
  friend class MappedTableSource;
  friend class QbtFileSource;

  size_t row_begin_ = 0;
  size_t num_rows_ = 0;
  size_t stride_ = 1;
  std::vector<const int32_t*> columns_;
};

// Abstract block-stream of mapped records plus the decode metadata.
class RecordSource {
 public:
  virtual ~RecordSource() = default;

  virtual const std::vector<MappedAttribute>& attributes() const = 0;
  virtual size_t num_rows() const = 0;
  virtual size_t num_blocks() const = 0;
  virtual size_t block_rows(size_t b) const = 0;
  virtual size_t block_row_begin(size_t b) const = 0;

  // Fills `view` with block `b`. Thread-safe: concurrent calls on distinct
  // caller-owned views are allowed (scans hand one view per worker).
  virtual Status ReadBlock(size_t b, BlockView* view) const = 0;

  // Cumulative I/O counters (zero for in-memory sources).
  virtual ScanIoStats io_stats() const { return ScanIoStats{}; }

  size_t num_attributes() const { return attributes().size(); }
  const MappedAttribute& attribute(size_t a) const { return attributes()[a]; }

  // Largest block_rows(b) over all blocks. Sizes per-worker kernel scratch
  // (row masks, materialized columns) once per scan.
  size_t max_block_rows() const {
    size_t rows = 0;
    for (size_t b = 0; b < num_blocks(); ++b) {
      rows = std::max(rows, block_rows(b));
    }
    return rows;
  }
};

// Rows per block for scanning an in-memory table: at most `max_block_rows`,
// but small enough that each of `num_threads` workers gets at least one
// block (so small tables keep their full scan parallelism).
size_t PickBlockRows(size_t num_rows, size_t num_threads,
                     size_t max_block_rows);

// Zero-copy blocks over a resident MappedTable. The table must outlive the
// source.
class MappedTableSource : public RecordSource {
 public:
  explicit MappedTableSource(const MappedTable& table,
                             size_t rows_per_block = 65536);

  const std::vector<MappedAttribute>& attributes() const override {
    return table_.attributes();
  }
  size_t num_rows() const override { return table_.num_rows(); }
  size_t num_blocks() const override { return num_blocks_; }
  size_t block_rows(size_t b) const override;
  size_t block_row_begin(size_t b) const override {
    return b * rows_per_block_;
  }
  Status ReadBlock(size_t b, BlockView* view) const override;

 private:
  const MappedTable& table_;
  size_t rows_per_block_;
  size_t num_blocks_;
};

// Streaming blocks over an mmap'd QBT file, with per-read CRC validation.
class QbtFileSource : public RecordSource {
 public:
  static Result<std::unique_ptr<QbtFileSource>> Open(const std::string& path);

  const std::vector<MappedAttribute>& attributes() const override {
    return reader_->attributes();
  }
  size_t num_rows() const override {
    return static_cast<size_t>(reader_->num_rows());
  }
  size_t num_blocks() const override { return reader_->num_blocks(); }
  size_t block_rows(size_t b) const override { return reader_->block_rows(b); }
  size_t block_row_begin(size_t b) const override {
    return static_cast<size_t>(reader_->block_row_begin(b));
  }
  Status ReadBlock(size_t b, BlockView* view) const override;
  ScanIoStats io_stats() const override;

  const QbtReader& reader() const { return *reader_; }

  // Policy for retrying failed block reads (transient device errors). The
  // default allows two retries with a short backoff; a policy with
  // max_attempts == 1 restores fail-fast behavior. A persistent failure
  // (e.g. real on-disk corruption) still surfaces the final read's Status
  // verbatim.
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

 private:
  explicit QbtFileSource(std::unique_ptr<QbtReader> reader)
      : reader_(std::move(reader)) {}

  std::unique_ptr<QbtReader> reader_;
  RetryPolicy retry_policy_{/*max_attempts=*/3, /*initial_backoff_ms=*/0.5,
                            /*backoff_multiplier=*/2.0,
                            /*max_backoff_ms=*/10.0};
  // Relaxed: the counters are statistics, not synchronization; scans read
  // them only before and after a pass (pool joins order those reads).
  mutable std::atomic<uint64_t> blocks_read_{0};
  mutable std::atomic<uint64_t> bytes_read_{0};
  mutable std::atomic<uint64_t> checksum_nanos_{0};
  mutable std::atomic<uint64_t> read_retries_{0};
};

// A contiguous sub-range of another source's blocks, presented as a
// standalone source. Distributed workers scan their shard through one of
// these: block b here is block `block_begin + b` of the inner source, so
// any fault-injection schedule keyed by block index (and any I/O counters)
// sees the same global block ids as a single-process scan. Row positions
// reported by ReadBlock stay global too — counting never interprets them
// as indexes into this source. The inner source must outlive the range.
class BlockRangeSource : public RecordSource {
 public:
  BlockRangeSource(const RecordSource& inner, size_t block_begin,
                   size_t block_end);

  const std::vector<MappedAttribute>& attributes() const override {
    return inner_.attributes();
  }
  size_t num_rows() const override { return num_rows_; }
  size_t num_blocks() const override { return block_end_ - block_begin_; }
  size_t block_rows(size_t b) const override {
    return inner_.block_rows(block_begin_ + b);
  }
  size_t block_row_begin(size_t b) const override {
    return inner_.block_row_begin(block_begin_ + b);
  }
  Status ReadBlock(size_t b, BlockView* view) const override {
    return inner_.ReadBlock(block_begin_ + b, view);
  }
  ScanIoStats io_stats() const override { return inner_.io_stats(); }

 private:
  const RecordSource& inner_;
  size_t block_begin_;
  size_t block_end_;
  size_t num_rows_;
};

}  // namespace qarm

#endif  // QARM_STORAGE_RECORD_SOURCE_H_
