// Read-only memory-mapped file. The QBT reader maps the whole file and
// hands out pointers into the mapping, so a table far larger than RAM is
// paged in block by block by the OS and evicted under memory pressure —
// resident memory is bounded by the blocks actually being scanned.
#ifndef QARM_STORAGE_MMAP_FILE_H_
#define QARM_STORAGE_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace qarm {

class MmapFile {
 public:
  // Maps `path` read-only. An empty file maps to size() == 0 with a null
  // data pointer (valid, just nothing to read).
  static Result<std::unique_ptr<MmapFile>> Open(const std::string& path);

  ~MmapFile();
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  // Hints the kernel that access will be sequential (readahead-friendly);
  // best-effort, ignored on failure.
  void AdviseSequential();

 private:
  MmapFile(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace qarm

#endif  // QARM_STORAGE_MMAP_FILE_H_
