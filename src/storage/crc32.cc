#include "storage/crc32.h"

#include <array>

namespace qarm {
namespace {

// The byte-indexed remainder table for the reflected polynomial 0xEDB88320,
// computed once at first use.
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const std::array<uint32_t, 256>& table = Crc32Table();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

uint32_t Crc32(const void* data, size_t size) {
  return Crc32Finish(Crc32Update(kCrc32Init, data, size));
}

}  // namespace qarm
