#include "storage/attr_metadata.h"

#include <utility>

#include "common/string_util.h"
#include "storage/qbt_format.h"

namespace qarm {
namespace {

// Bounds-checked cursor over the metadata section.
class MetaCursor {
 public:
  MetaCursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ReadU32(uint32_t* v) {
    if (size_ - pos_ < 4) return false;
    *v = QbtReadU32(data_ + pos_);
    pos_ += 4;
    return true;
  }
  bool ReadI32(int32_t* v) {
    uint32_t u;
    if (!ReadU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }
  bool ReadF64(double* v) {
    if (size_ - pos_ < 8) return false;
    *v = QbtReadF64(data_ + pos_);
    pos_ += 8;
    return true;
  }
  bool ReadByte(uint8_t* v) {
    if (size_ - pos_ < 1) return false;
    *v = data_[pos_++];
    return true;
  }
  bool ReadString(std::string* s) {
    uint32_t len;
    if (!ReadU32(&len)) return false;
    if (size_ - pos_ < len) return false;
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }
  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Minimum encoded bytes of one attribute: name length (4) + four flag
// bytes + three element counts (4 each). Used to bound declared counts
// against the metadata section before any allocation, so a bit-flipped
// count can never trigger a multi-gigabyte resize.
constexpr size_t kMinAttrBytes = 4 + 4 + 4 + 4 + 4;
constexpr size_t kMinLabelBytes = 4;       // u32 length
constexpr size_t kIntervalBytes = 8 + 8;   // f64 lo + f64 hi
constexpr size_t kMinTaxonomyBytes = 4 + 4 + 4;  // name length + lo + hi

}  // namespace

std::string EncodeAttributeMetadata(
    const std::vector<MappedAttribute>& attributes) {
  std::string out;
  for (const MappedAttribute& attr : attributes) {
    QbtAppendString(&out, attr.name);
    out.push_back(static_cast<char>(attr.kind));
    out.push_back(static_cast<char>(attr.source_type));
    out.push_back(attr.partitioned ? 1 : 0);
    out.push_back(0);
    QbtAppendU32(&out, static_cast<uint32_t>(attr.labels.size()));
    for (const std::string& label : attr.labels) {
      QbtAppendString(&out, label);
    }
    QbtAppendU32(&out, static_cast<uint32_t>(attr.intervals.size()));
    for (const Interval& interval : attr.intervals) {
      QbtAppendF64(&out, interval.lo);
      QbtAppendF64(&out, interval.hi);
    }
    QbtAppendU32(&out, static_cast<uint32_t>(attr.taxonomy_ranges.size()));
    for (const Taxonomy::NodeRange& node : attr.taxonomy_ranges) {
      QbtAppendString(&out, node.name);
      QbtAppendI32(&out, node.lo);
      QbtAppendI32(&out, node.hi);
    }
  }
  return out;
}

Result<std::vector<MappedAttribute>> DecodeAttributeMetadata(
    const uint8_t* data, size_t size, uint32_t num_attrs, size_t* consumed) {
  MetaCursor cur(data, size);
  if (static_cast<uint64_t>(num_attrs) * kMinAttrBytes > size) {
    return Status::InvalidArgument(
        StrFormat("%u attributes cannot fit in %zu metadata bytes", num_attrs,
                  size));
  }
  std::vector<MappedAttribute> attrs;
  attrs.reserve(num_attrs);
  for (uint32_t a = 0; a < num_attrs; ++a) {
    MappedAttribute attr;
    uint8_t kind = 0, source_type = 0, partitioned = 0, reserved = 0;
    uint32_t count = 0;
    if (!cur.ReadString(&attr.name) || !cur.ReadByte(&kind) ||
        !cur.ReadByte(&source_type) || !cur.ReadByte(&partitioned) ||
        !cur.ReadByte(&reserved)) {
      return Status::InvalidArgument(
          StrFormat("truncated metadata of attribute %u", a));
    }
    if (kind > 1 || source_type > 2) {
      return Status::InvalidArgument(
          StrFormat("attribute %u has kind %u / type %u out of range", a,
                    kind, source_type));
    }
    attr.kind = static_cast<AttributeKind>(kind);
    attr.source_type = static_cast<ValueType>(source_type);
    attr.partitioned = partitioned != 0;
    if (!cur.ReadU32(&count)) {
      return Status::InvalidArgument(
          StrFormat("truncated labels of attribute %u", a));
    }
    if (static_cast<uint64_t>(count) * kMinLabelBytes > cur.remaining()) {
      return Status::InvalidArgument(
          StrFormat("attribute %u declares %u labels, more than the "
                    "metadata can hold",
                    a, count));
    }
    attr.labels.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      if (!cur.ReadString(&attr.labels[i])) {
        return Status::InvalidArgument(
            StrFormat("truncated label of attribute %u", a));
      }
    }
    if (!cur.ReadU32(&count)) {
      return Status::InvalidArgument(
          StrFormat("truncated intervals of attribute %u", a));
    }
    if (static_cast<uint64_t>(count) * kIntervalBytes > cur.remaining()) {
      return Status::InvalidArgument(
          StrFormat("attribute %u declares %u intervals, more than the "
                    "metadata can hold",
                    a, count));
    }
    attr.intervals.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      if (!cur.ReadF64(&attr.intervals[i].lo) ||
          !cur.ReadF64(&attr.intervals[i].hi)) {
        return Status::InvalidArgument(
            StrFormat("truncated interval of attribute %u", a));
      }
    }
    if (!cur.ReadU32(&count)) {
      return Status::InvalidArgument(
          StrFormat("truncated taxonomy of attribute %u", a));
    }
    if (static_cast<uint64_t>(count) * kMinTaxonomyBytes > cur.remaining()) {
      return Status::InvalidArgument(
          StrFormat("attribute %u declares %u taxonomy nodes, more than "
                    "the metadata can hold",
                    a, count));
    }
    attr.taxonomy_ranges.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      Taxonomy::NodeRange& node = attr.taxonomy_ranges[i];
      if (!cur.ReadString(&node.name) || !cur.ReadI32(&node.lo) ||
          !cur.ReadI32(&node.hi)) {
        return Status::InvalidArgument(
            StrFormat("truncated taxonomy node of attribute %u", a));
      }
    }
    attrs.push_back(std::move(attr));
  }
  if (consumed != nullptr) *consumed = cur.pos();
  return attrs;
}

}  // namespace qarm
