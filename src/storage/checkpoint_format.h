// QCP ("Quantitative Checkpoint") — the on-disk snapshot the miner writes
// at pass boundaries so a crashed or killed run resumes at pass k+1 instead
// of restarting from scratch. The level-wise algorithm makes pass
// boundaries natural durable points: the item catalog plus the frequent
// itemsets of every completed pass fully determine the rest of the run, so
// a resumed run emits bit-identical rules to an uninterrupted one.
//
// The checkpoint is expressed in storage-neutral vectors (item triples,
// flat id sequences) rather than core types, keeping this layer free of
// core dependencies; src/core/mining_checkpoint.{h,cc} converts to and from
// the miner's structures.
//
// Layout (version 2, all integers little-endian via the QBT helpers;
// version-1 files parse too — every version-2 field below marked [v2]
// simply defaults to zero/absent):
//
//   Header (24 bytes)
//     [0]  u8[4]  magic "QCP1"
//     [4]  u32    endian marker 0x0A0B0C0D (shared with QBT)
//     [8]  u32    format version (kCheckpointVersion)
//     [12] u32    reserved (0)
//     [16] u64    payload_size
//
//   Payload (payload_size bytes)
//     u64 fingerprint        run identity: output-affecting options + the
//                            source's shape (rows, attributes, domains);
//                            a mismatch means the checkpoint is stale
//     u64 num_rows
//     u32 num_attributes
//     u32 flags                  [v2] bit 0: the run COMPLETED (the file is
//                                an incremental-mining base, not resume
//                                progress)
//     u64 options_fingerprint    [v2] fingerprint of the output-affecting
//                                options + attribute schema, EXCLUDING the
//                                row count — decides whether a completed
//                                base is reusable after the file grew
//     u64 base_num_blocks        [v2] QBT blocks covered by this state
//     u32 base_index_crc         [v2] CRC-32 of those blocks' index entries
//                                (QbtReader::IndexPrefixCrc)
//     -- catalog --
//     u64 num_records
//     u64 items_pruned_by_interest
//     u64 num_items
//       per item: i32 attr, i32 lo, i32 hi
//       per item: u64 count
//     u32 value-count vector count (== num_attributes)
//       per attribute: u64 size, then u64 per value
//     -- completed passes --
//     u32 num_passes
//       per pass: u32 k, u64 num_candidates, u64 num_frequent,
//                 i32 * (k * num_frequent) item ids,
//                 u64 * num_frequent supports,
//                 [v2] u64 num_candidate_counts (0 = absent, else ==
//                 num_candidates), u32 * num_candidate_counts — the FULL
//                 per-candidate counts in generation order, which is what
//                 lets an incremental run add delta counts positionally
//                 instead of recounting the base
//
//   Tail (8 bytes)
//     u32    CRC-32 of the payload bytes
//     u8[4]  end magic "QCPE"
//
// Writes are atomic: the writer streams to "<path>.tmp", flushes and (on
// POSIX) fsyncs, then renames over <path>, so a crash mid-write leaves the
// previous checkpoint intact. The reader validates magic, version,
// endianness, every declared count against the actual byte budget (in
// division form, before any allocation), and the payload CRC; any mismatch
// is a clean Status and the miner restarts from scratch.
#ifndef QARM_STORAGE_CHECKPOINT_FORMAT_H_
#define QARM_STORAGE_CHECKPOINT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/qbt_format.h"

namespace qarm {

inline constexpr char kCheckpointMagic[4] = {'Q', 'C', 'P', '1'};
inline constexpr char kCheckpointEndMagic[4] = {'Q', 'C', 'P', 'E'};
inline constexpr uint32_t kCheckpointVersion = 2;
// Oldest version the parser still accepts (v1 files lack the incremental
// base fields and candidate counts; they parse with those defaulted).
inline constexpr uint32_t kCheckpointMinVersion = 1;

// CheckpointState::flags bit: the run this state describes ran to
// completion — the state is a reusable incremental-mining base rather than
// mid-run resume progress.
inline constexpr uint32_t kCheckpointFlagComplete = 1u;
inline constexpr size_t kCheckpointHeaderSize = 4 + 4 + 4 + 4 + 8;
inline constexpr size_t kCheckpointTailSize = 4 + 4;

// The item catalog's serialized state (see core/frequent_items.h).
struct CheckpointCatalog {
  uint64_t num_records = 0;
  uint64_t items_pruned_by_interest = 0;
  std::vector<int32_t> item_words;    // 3 per item: attr, lo, hi
  std::vector<uint64_t> item_counts;  // parallel to items
  std::vector<std::vector<uint64_t>> value_counts;  // per attribute
};

// One completed pass: its frequent k-itemsets (flat, k item ids each) with
// their support counts. The last entry's itemsets are the frontier the
// resumed run continues from.
struct CheckpointPass {
  uint32_t k = 0;
  uint64_t num_candidates = 0;
  std::vector<int32_t> itemsets;  // k ids per itemset
  std::vector<uint64_t> counts;   // one per itemset
  // Full per-candidate support counts in generation order (empty = not
  // recorded, or num_candidates entries). Incremental mining merges delta
  // counts into these positionally.
  std::vector<uint32_t> candidate_counts;
};

struct CheckpointState {
  uint64_t fingerprint = 0;
  uint64_t num_rows = 0;
  uint32_t num_attributes = 0;
  // kCheckpointFlag* bits (version >= 2; zero in v1 files).
  uint32_t flags = 0;
  // Row-count-independent run identity (version >= 2): the same options
  // and attribute schema over a grown file keep this fingerprint, while
  // `fingerprint` (which mixes the row count) changes.
  uint64_t options_fingerprint = 0;
  // The QBT block range this state covers and the CRC of those blocks'
  // index entries (version >= 2): an incremental run re-validates that the
  // base blocks are byte-identical before adding delta counts on top.
  uint64_t base_num_blocks = 0;
  uint32_t base_index_crc = 0;
  CheckpointCatalog catalog;
  std::vector<CheckpointPass> passes;
};

// Serializes `state` and writes it atomically (temp file + rename) to
// `path`. The file size lands in `*bytes_written` when non-null. IOError on
// any filesystem failure; the previous checkpoint at `path`, if any, is
// left untouched on failure.
Status WriteCheckpoint(const CheckpointState& state, const std::string& path,
                       uint64_t* bytes_written = nullptr);

// Parses a checkpoint from an in-memory buffer (the fuzz entry point; the
// file reader delegates here). Every declared size is validated against the
// remaining bytes before allocation.
Result<CheckpointState> ParseCheckpoint(const uint8_t* data, size_t size);

// Reads and validates the checkpoint at `path`.
Result<CheckpointState> ReadCheckpoint(const std::string& path);

// --- Shard snapshots (distributed mining, src/dist) -----------------------
//
// A shard snapshot is the QCP format's message variant: one worker's pass-1
// marginals (per-attribute value counts) over its contiguous block range,
// exchanged over the coordinator transport instead of written to disk. It
// reuses the checkpoint catalog's value-count encoding so the merge format
// and the durable format stay one format. The outer transport frames and
// CRC-protects the bytes; the snapshot carries its own magic and version so
// a stray or stale message is rejected with a clean Status.
//
// Layout: u8[4] magic "QCPS", u32 version, u64 fingerprint, u32 worker_id,
// u64 block_begin, u64 block_end, u64 num_rows, then the value-count
// vectors (u32 vector count, per attribute u64 size + u64 per value) and
// the shard's I/O counters (4 × u64).

inline constexpr char kShardSnapshotMagic[4] = {'Q', 'C', 'P', 'S'};
inline constexpr uint32_t kShardSnapshotVersion = 1;

struct ShardSnapshot {
  uint64_t fingerprint = 0;  // same run fingerprint as the checkpoint
  uint32_t worker_id = 0;
  uint64_t block_begin = 0;  // the shard: blocks [block_begin, block_end)
  uint64_t block_end = 0;
  uint64_t num_rows = 0;  // rows scanned in the shard
  std::vector<std::vector<uint64_t>> value_counts;  // per attribute
  // Shard-local I/O counters, merged into the coordinator's pass-1 stats.
  uint64_t blocks_read = 0;
  uint64_t bytes_read = 0;
  uint64_t read_retries = 0;
  uint64_t faults_injected = 0;
};

void EncodeShardSnapshot(const ShardSnapshot& snapshot, std::string* out);
Result<ShardSnapshot> ParseShardSnapshot(const uint8_t* data, size_t size);

// The catalog section of the checkpoint payload as a standalone buffer —
// the coordinator broadcasts the merged catalog to workers in exactly the
// bytes a checkpoint would persist.
void EncodeCheckpointCatalog(const CheckpointCatalog& catalog,
                             std::string* out);
Result<CheckpointCatalog> ParseCheckpointCatalog(const uint8_t* data,
                                                 size_t size);

}  // namespace qarm

#endif  // QARM_STORAGE_CHECKPOINT_FORMAT_H_
