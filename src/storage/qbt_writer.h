// Serializes a MappedTable (values plus the full decode metadata —
// labels, intervals, taxonomy ranges) into a QBT file. See qbt_format.h
// for the layout.
#ifndef QARM_STORAGE_QBT_WRITER_H_
#define QARM_STORAGE_QBT_WRITER_H_

#include <string>

#include "common/status.h"
#include "partition/mapped_table.h"
#include "storage/qbt_format.h"

namespace qarm {

struct QbtWriteOptions {
  // Rows per block. ~64K rows keeps a block of a few int32 columns around a
  // megabyte — large enough to amortize per-block overhead, small enough
  // that a handful of in-flight blocks bound a streaming scan's memory.
  uint32_t rows_per_block = kQbtDefaultRowsPerBlock;
};

// Statistics of one write, for CLI reporting.
struct QbtWriteInfo {
  uint64_t num_rows = 0;
  uint64_t num_blocks = 0;
  uint64_t file_bytes = 0;
};

// Writes `table` to `path` (replacing any existing file). `info` is
// optional.
Status WriteQbt(const MappedTable& table, const std::string& path,
                const QbtWriteOptions& options = {},
                QbtWriteInfo* info = nullptr);

// Statistics of one append, for CLI reporting.
struct QbtAppendInfo {
  uint64_t rows_appended = 0;
  uint64_t blocks_appended = 0;
  uint64_t total_rows = 0;
  uint64_t total_blocks = 0;
  uint64_t file_bytes = 0;
};

// Appends `delta`'s rows to the existing QBT file at `path` as additional
// blocks. The delta's attribute metadata must encode byte-identically to
// the file's (same labels, intervals, taxonomy ranges — map the raw rows
// with MapTableWithAttributes to guarantee this); a mismatch is rejected
// because it would silently change what every stored value means.
//
// No existing byte is rewritten: the new blocks, a new footer (old entries
// re-encoded verbatim plus the new ones), and a new tail are written after
// the current end of file — the old footer and tail become dead bytes —
// and the append commits by updating the header row count last, with an
// fsync on either side. A crash before the commit leaves a file whose tail
// is missing or whose index disagrees with the header; RecoverQbt (called
// here automatically before appending) truncates such a file back to its
// last committed state. Appends always start a fresh block, so a file that
// grew by appends may contain short blocks mid-file; the reader handles
// that.
Status AppendQbt(const MappedTable& delta, const std::string& path,
                 QbtAppendInfo* info = nullptr);

// Restores the QBT file at `path` to its last committed state after an
// interrupted append: if the file does not open cleanly, scans backwards
// for the most recent tail whose footer checksums and whose block rows sum
// to the header row count, and truncates the bytes after it. Returns
// whether the file was truncated in `*recovered` (optional). Fails when no
// committed state can be found (the file is corrupt beyond an interrupted
// append).
Status RecoverQbt(const std::string& path, bool* recovered = nullptr);

}  // namespace qarm

#endif  // QARM_STORAGE_QBT_WRITER_H_
