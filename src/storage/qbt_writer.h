// Serializes a MappedTable (values plus the full decode metadata —
// labels, intervals, taxonomy ranges) into a QBT file. See qbt_format.h
// for the layout.
#ifndef QARM_STORAGE_QBT_WRITER_H_
#define QARM_STORAGE_QBT_WRITER_H_

#include <string>

#include "common/status.h"
#include "partition/mapped_table.h"
#include "storage/qbt_format.h"

namespace qarm {

struct QbtWriteOptions {
  // Rows per block. ~64K rows keeps a block of a few int32 columns around a
  // megabyte — large enough to amortize per-block overhead, small enough
  // that a handful of in-flight blocks bound a streaming scan's memory.
  uint32_t rows_per_block = kQbtDefaultRowsPerBlock;
};

// Statistics of one write, for CLI reporting.
struct QbtWriteInfo {
  uint64_t num_rows = 0;
  uint64_t num_blocks = 0;
  uint64_t file_bytes = 0;
};

// Writes `table` to `path` (replacing any existing file). `info` is
// optional.
Status WriteQbt(const MappedTable& table, const std::string& path,
                const QbtWriteOptions& options = {},
                QbtWriteInfo* info = nullptr);

}  // namespace qarm

#endif  // QARM_STORAGE_QBT_WRITER_H_
