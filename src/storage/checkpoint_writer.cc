#include <cstdint>
#include <cstdio>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "storage/checkpoint_format.h"
#include "storage/crc32.h"

namespace qarm {
namespace {

void AppendValueCounts(const std::vector<std::vector<uint64_t>>& value_counts,
                       std::string* out) {
  QbtAppendU32(out, static_cast<uint32_t>(value_counts.size()));
  for (const std::vector<uint64_t>& counts : value_counts) {
    QbtAppendU64(out, counts.size());
    for (uint64_t count : counts) QbtAppendU64(out, count);
  }
}

std::string EncodePayload(const CheckpointState& state) {
  std::string out;
  QbtAppendU64(&out, state.fingerprint);
  QbtAppendU64(&out, state.num_rows);
  QbtAppendU32(&out, state.num_attributes);
  QbtAppendU32(&out, state.flags);
  QbtAppendU64(&out, state.options_fingerprint);
  QbtAppendU64(&out, state.base_num_blocks);
  QbtAppendU32(&out, state.base_index_crc);

  EncodeCheckpointCatalog(state.catalog, &out);

  QbtAppendU32(&out, static_cast<uint32_t>(state.passes.size()));
  for (const CheckpointPass& pass : state.passes) {
    QbtAppendU32(&out, pass.k);
    QbtAppendU64(&out, pass.num_candidates);
    QbtAppendU64(&out, pass.counts.size());
    for (int32_t id : pass.itemsets) QbtAppendI32(&out, id);
    for (uint64_t count : pass.counts) QbtAppendU64(&out, count);
    QbtAppendU64(&out, pass.candidate_counts.size());
    for (uint32_t count : pass.candidate_counts) QbtAppendU32(&out, count);
  }
  return out;
}

// stdio instead of ofstream: the file descriptor is needed for fsync, and
// a checkpoint that the OS never flushed is exactly the crash window this
// file exists to close.
Status WriteFile(const std::string& path, const std::string& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
  ok = std::fflush(file) == 0 && ok;
#if defined(__unix__) || defined(__APPLE__)
  ok = fsync(fileno(file)) == 0 && ok;
#endif
  ok = std::fclose(file) == 0 && ok;
  if (!ok) {
    std::remove(path.c_str());
    return Status::IOError("write to '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace

void EncodeCheckpointCatalog(const CheckpointCatalog& catalog,
                             std::string* out) {
  QbtAppendU64(out, catalog.num_records);
  QbtAppendU64(out, catalog.items_pruned_by_interest);
  QbtAppendU64(out, catalog.item_counts.size());
  for (int32_t word : catalog.item_words) QbtAppendI32(out, word);
  for (uint64_t count : catalog.item_counts) QbtAppendU64(out, count);
  AppendValueCounts(catalog.value_counts, out);
}

void EncodeShardSnapshot(const ShardSnapshot& snapshot, std::string* out) {
  out->append(kShardSnapshotMagic, sizeof(kShardSnapshotMagic));
  QbtAppendU32(out, kShardSnapshotVersion);
  QbtAppendU64(out, snapshot.fingerprint);
  QbtAppendU32(out, snapshot.worker_id);
  QbtAppendU64(out, snapshot.block_begin);
  QbtAppendU64(out, snapshot.block_end);
  QbtAppendU64(out, snapshot.num_rows);
  AppendValueCounts(snapshot.value_counts, out);
  QbtAppendU64(out, snapshot.blocks_read);
  QbtAppendU64(out, snapshot.bytes_read);
  QbtAppendU64(out, snapshot.read_retries);
  QbtAppendU64(out, snapshot.faults_injected);
}

Status WriteCheckpoint(const CheckpointState& state, const std::string& path,
                       uint64_t* bytes_written) {
  if (state.catalog.item_words.size() !=
      state.catalog.item_counts.size() * 3) {
    return Status::InvalidArgument(
        "checkpoint catalog item words/counts out of sync");
  }
  for (const CheckpointPass& pass : state.passes) {
    if (pass.k == 0 || pass.itemsets.size() != pass.counts.size() * pass.k) {
      return Status::InvalidArgument(
          "checkpoint pass itemsets/counts out of sync");
    }
    if (!pass.candidate_counts.empty() &&
        pass.candidate_counts.size() != pass.num_candidates) {
      return Status::InvalidArgument(
          "checkpoint pass candidate counts do not match the candidate "
          "count");
    }
  }

  const std::string payload = EncodePayload(state);
  std::string bytes;
  bytes.reserve(kCheckpointHeaderSize + payload.size() + kCheckpointTailSize);
  bytes.append(kCheckpointMagic, sizeof(kCheckpointMagic));
  QbtAppendU32(&bytes, kQbtEndianMarker);
  QbtAppendU32(&bytes, kCheckpointVersion);
  QbtAppendU32(&bytes, 0);  // reserved
  QbtAppendU64(&bytes, payload.size());
  bytes.append(payload);
  QbtAppendU32(&bytes, Crc32(payload.data(), payload.size()));
  bytes.append(kCheckpointEndMagic, sizeof(kCheckpointEndMagic));

  // Atomic replace: a crash before the rename leaves the previous
  // checkpoint valid; a crash after it leaves the new one.
  const std::string tmp_path = path + ".tmp";
  QARM_RETURN_NOT_OK(WriteFile(tmp_path, bytes));
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IOError("cannot rename '" + tmp_path + "' to '" + path +
                           "'");
  }
  if (bytes_written != nullptr) *bytes_written = bytes.size();
  return Status::OK();
}

}  // namespace qarm
