#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "common/string_util.h"
#include "storage/attr_metadata.h"
#include "storage/crc32.h"
#include "storage/mmap_file.h"
#include "storage/qbt_format.h"
#include "storage/rules_format.h"

namespace qarm {
namespace {

// Bounded cursor over the payload; every Read* call checks the remaining
// byte budget first, so a hostile or truncated rule set can neither read
// out of bounds nor trigger an oversized allocation.
class PayloadCursor {
 public:
  PayloadCursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  const uint8_t* here() const { return data_ + pos_; }
  void Skip(size_t bytes) { pos_ += bytes; }

  Status ReadByte(uint8_t* out) {
    QARM_RETURN_NOT_OK(Need(1));
    *out = data_[pos_++];
    return Status::OK();
  }
  Status ReadU32(uint32_t* out) {
    QARM_RETURN_NOT_OK(Need(4));
    *out = QbtReadU32(data_ + pos_);
    pos_ += 4;
    return Status::OK();
  }
  Status ReadU64(uint64_t* out) {
    QARM_RETURN_NOT_OK(Need(8));
    *out = QbtReadU64(data_ + pos_);
    pos_ += 8;
    return Status::OK();
  }
  Status ReadF64(double* out) {
    QARM_RETURN_NOT_OK(Need(8));
    *out = QbtReadF64(data_ + pos_);
    pos_ += 8;
    return Status::OK();
  }
  // Count declared for elements of `element_size` bytes each; rejects
  // counts the remaining payload cannot possibly hold (division form, so
  // the product cannot overflow).
  Status NeedCount(uint64_t count, size_t element_size) const {
    if (count > remaining() / element_size) {
      return Status::InvalidArgument(StrFormat(
          "rule set declares %llu elements but only %zu bytes remain",
          static_cast<unsigned long long>(count), remaining()));
    }
    return Status::OK();
  }
  Status Need(size_t bytes) const {
    if (remaining() < bytes) {
      return Status::InvalidArgument("rule-set payload truncated");
    }
    return Status::OK();
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Reads one side of a rule and checks it is a well-formed itemset: sorted
// strictly by attribute (so at most one item per attribute) with every
// endpoint inside the attribute's mapped domain.
Status ReadSide(PayloadCursor* cursor, size_t rule_index, const char* side,
                size_t num_items, const std::vector<MappedAttribute>& attrs,
                std::vector<StoredItem>* out) {
  out->resize(num_items);
  int32_t prev_attr = -1;
  for (StoredItem& item : *out) {
    const uint8_t* p = cursor->here();
    QARM_RETURN_NOT_OK(cursor->Need(kQrsItemBytes));
    item.attr = QbtReadI32(p);
    item.lo = QbtReadI32(p + 4);
    item.hi = QbtReadI32(p + 8);
    cursor->Skip(kQrsItemBytes);
    if (item.attr < 0 ||
        static_cast<size_t>(item.attr) >= attrs.size()) {
      return Status::InvalidArgument(
          StrFormat("rule %zu %s names attribute %d of %zu", rule_index,
                    side, item.attr, attrs.size()));
    }
    if (item.attr <= prev_attr) {
      return Status::InvalidArgument(StrFormat(
          "rule %zu %s is not attribute-sorted", rule_index, side));
    }
    prev_attr = item.attr;
    const size_t domain =
        attrs[static_cast<size_t>(item.attr)].domain_size();
    if (item.lo < 0 || item.lo > item.hi ||
        static_cast<size_t>(item.hi) >= domain) {
      return Status::InvalidArgument(StrFormat(
          "rule %zu %s has range [%d, %d] outside the %zu-value domain "
          "of attribute %d",
          rule_index, side, item.lo, item.hi, domain, item.attr));
    }
  }
  return Status::OK();
}

Status CheckMeasure(size_t rule_index, const char* name, double v, double lo,
                    double hi) {
  if (!std::isfinite(v) || v < lo || v > hi) {
    return Status::InvalidArgument(
        StrFormat("rule %zu has %s = %g outside [%g, %g]", rule_index, name,
                  v, lo, hi));
  }
  return Status::OK();
}

Status ParsePayload(const uint8_t* data, size_t size, uint32_t num_attrs,
                    uint64_t num_records, StoredRuleSet* set) {
  PayloadCursor cursor(data, size);
  QARM_RETURN_NOT_OK(cursor.ReadF64(&set->minsup));
  QARM_RETURN_NOT_OK(cursor.ReadF64(&set->minconf));
  QARM_RETURN_NOT_OK(cursor.ReadF64(&set->interest_level));
  if (!std::isfinite(set->minsup) || !std::isfinite(set->minconf) ||
      !std::isfinite(set->interest_level)) {
    return Status::InvalidArgument(
        "rule set has non-finite mining parameters");
  }

  uint64_t metadata_size = 0;
  QARM_RETURN_NOT_OK(cursor.ReadU64(&metadata_size));
  if (metadata_size > cursor.remaining()) {
    return Status::InvalidArgument("metadata section exceeds the payload");
  }
  size_t consumed = 0;
  QARM_ASSIGN_OR_RETURN(
      set->attributes,
      DecodeAttributeMetadata(cursor.here(),
                              static_cast<size_t>(metadata_size), num_attrs,
                              &consumed));
  if (consumed != metadata_size) {
    return Status::InvalidArgument("metadata section has trailing bytes");
  }
  cursor.Skip(consumed);

  uint64_t num_rules = 0;
  QARM_RETURN_NOT_OK(cursor.ReadU64(&num_rules));
  QARM_RETURN_NOT_OK(cursor.NeedCount(num_rules, kQrsMinRuleBytes));
  // Rule ids are packed into 31 bits by the serving indexes; a file
  // anywhere near that limit is hostile (the division-form bound above
  // already caps real files far lower).
  if (num_rules > (1ull << 31)) {
    return Status::InvalidArgument(
        StrFormat("rule set declares %llu rules",
                  static_cast<unsigned long long>(num_rules)));
  }
  set->rules.resize(static_cast<size_t>(num_rules));
  for (size_t i = 0; i < set->rules.size(); ++i) {
    StoredRule& rule = set->rules[i];
    uint8_t num_ante = 0, num_cons = 0, interesting = 0, reserved = 0;
    QARM_RETURN_NOT_OK(cursor.ReadByte(&num_ante));
    QARM_RETURN_NOT_OK(cursor.ReadByte(&num_cons));
    QARM_RETURN_NOT_OK(cursor.ReadByte(&interesting));
    QARM_RETURN_NOT_OK(cursor.ReadByte(&reserved));
    if (num_ante == 0 || num_cons == 0) {
      return Status::InvalidArgument(
          StrFormat("rule %zu has an empty side", i));
    }
    rule.interesting = interesting != 0;
    QARM_RETURN_NOT_OK(cursor.NeedCount(
        static_cast<uint64_t>(num_ante) + num_cons, kQrsItemBytes));
    QARM_RETURN_NOT_OK(ReadSide(&cursor, i, "antecedent", num_ante,
                                set->attributes, &rule.antecedent));
    QARM_RETURN_NOT_OK(ReadSide(&cursor, i, "consequent", num_cons,
                                set->attributes, &rule.consequent));
    // The sides must not share an attribute (a record-model itemset holds
    // at most one item per attribute). Both sides are sorted, so a merge
    // walk finds any collision in O(items).
    for (size_t a = 0, c = 0;
         a < rule.antecedent.size() && c < rule.consequent.size();) {
      const int32_t ante_attr = rule.antecedent[a].attr;
      const int32_t cons_attr = rule.consequent[c].attr;
      if (ante_attr == cons_attr) {
        return Status::InvalidArgument(StrFormat(
            "rule %zu uses attribute %d on both sides", i, ante_attr));
      }
      ante_attr < cons_attr ? ++a : ++c;
    }
    QARM_RETURN_NOT_OK(cursor.ReadU64(&rule.count));
    if (rule.count > num_records) {
      return Status::InvalidArgument(StrFormat(
          "rule %zu counts %llu of %llu records", i,
          static_cast<unsigned long long>(rule.count),
          static_cast<unsigned long long>(num_records)));
    }
    QARM_RETURN_NOT_OK(cursor.ReadF64(&rule.support));
    QARM_RETURN_NOT_OK(cursor.ReadF64(&rule.confidence));
    QARM_RETURN_NOT_OK(cursor.ReadF64(&rule.lift));
    QARM_RETURN_NOT_OK(CheckMeasure(i, "support", rule.support, 0.0, 1.0));
    QARM_RETURN_NOT_OK(
        CheckMeasure(i, "confidence", rule.confidence, 0.0, 1.0));
    QARM_RETURN_NOT_OK(CheckMeasure(i, "lift", rule.lift, 0.0,
                                    std::numeric_limits<double>::max()));
  }
  if (cursor.remaining() != 0) {
    return Status::InvalidArgument(StrFormat(
        "rule-set payload has %zu trailing bytes", cursor.remaining()));
  }
  return Status::OK();
}

}  // namespace

Result<StoredRuleSet> ParseRuleSet(const uint8_t* data, size_t size) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::Internal("QRS reading requires a little-endian host");
  }
  if (size < kQrsHeaderSize + kQrsTailSize) {
    return Status::InvalidArgument(
        StrFormat("rule set too small: %zu bytes", size));
  }
  if (std::memcmp(data, kQrsMagic, sizeof(kQrsMagic)) != 0) {
    return Status::InvalidArgument("not a QRS rule set (bad magic)");
  }
  if (QbtReadU32(data + 4) != kQbtEndianMarker) {
    return Status::InvalidArgument(
        "rule-set endianness does not match this host");
  }
  const uint32_t version = QbtReadU32(data + 8);
  if (version != kQrsVersion) {
    return Status::InvalidArgument(StrFormat(
        "unsupported rule-set version %u (expected %u)", version,
        kQrsVersion));
  }
  const uint32_t num_attrs = QbtReadU32(data + 12);
  const uint64_t payload_size = QbtReadU64(data + 16);
  const uint64_t num_records = QbtReadU64(data + 24);
  if (payload_size != size - kQrsHeaderSize - kQrsTailSize) {
    return Status::InvalidArgument(StrFormat(
        "rule-set payload size %llu does not match file size %zu",
        static_cast<unsigned long long>(payload_size), size));
  }
  const uint8_t* payload = data + kQrsHeaderSize;
  const uint8_t* tail = payload + payload_size;
  if (std::memcmp(tail + 4, kQrsEndMagic, sizeof(kQrsEndMagic)) != 0) {
    return Status::InvalidArgument("rule-set end magic missing");
  }
  const uint32_t expected_crc = QbtReadU32(tail);
  const uint32_t actual_crc =
      Crc32(payload, static_cast<size_t>(payload_size));
  if (expected_crc != actual_crc) {
    return Status::IOError(StrFormat(
        "rule-set payload checksum mismatch (stored %08x, computed %08x)",
        expected_crc, actual_crc));
  }

  StoredRuleSet set;
  set.num_records = num_records;
  QARM_RETURN_NOT_OK(ParsePayload(payload, static_cast<size_t>(payload_size),
                                  num_attrs, num_records, &set));
  return set;
}

Result<StoredRuleSet> ReadRuleSet(const std::string& path) {
  QARM_ASSIGN_OR_RETURN(std::unique_ptr<MmapFile> file, MmapFile::Open(path));
  Result<StoredRuleSet> set = ParseRuleSet(file->data(), file->size());
  if (!set.ok()) {
    const std::string msg = "'" + path + "': " + set.status().message();
    return set.status().code() == StatusCode::kIOError
               ? Status::IOError(msg)
               : Status::InvalidArgument(msg);
  }
  return set;
}

}  // namespace qarm
