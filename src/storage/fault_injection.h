// Deterministic I/O fault injection for crash-safety testing.
//
// FaultInjectingRecordSource decorates any RecordSource and fails a seeded,
// reproducible subset of block reads before delegating to the inner source.
// Whether block b is faulted — and with which fault kind — is a pure
// function of (seed, b), so a given spec produces the same fault schedule
// at any thread count and on every run. Each faulted block fails its first
// `fails` read attempts and then succeeds, modeling a transient device
// error; `fails` larger than the retry budget models a permanent failure
// (the read error escapes to the miner, like a crash mid-pass).
//
// The decorator retries its own injected failures with a RetryPolicy, the
// way a block-device driver retries below the filesystem: the inner
// QbtFileSource's retry loop sits underneath the injection point and never
// sees these faults. Recovered faults are invisible to the mining output;
// only ScanIoStats records them.
//
// Spec grammar (CLI `--inject-faults=SPEC` and tests), comma-separated
// key=value pairs, all optional:
//
//   seed=N        schedule seed (default 1)
//   rate=F        fraction of blocks faulted, 0..1 (default 0.05)
//   fails=N       failed attempts per faulted block, >= 1 (default 1)
//   after=N       suppress injection for the first N block reads, letting a
//                 fault target a later pass (default 0)
//   kinds=K+K     subset of eio, short, crc, kill, conn_reset, stall,
//                 partial_write (default eio+short+crc)
//   attempts=N    decorator retry budget, >= 1 (default 4)
//   backoff=F     initial retry backoff in ms, >= 0 (default 0.01)
//   stall=F       how long a stall fault plays dead, ms (default 1000)
//
// The kinds split into two families. Storage kinds (eio, short, crc, kill)
// fault block reads through FaultInjectingRecordSource. Network kinds
// (conn_reset, stall, partial_write) fault a TCP worker's frame *writes*
// through dist/transport.h's TcpTransport; they share this grammar and the
// seed/rate/after/fails scheduling so one spec can exercise both layers.
// FaultInjectingRecordSource must only ever see a config whose kinds
// include at least one storage kind (StorageFaultKinds below).
#ifndef QARM_STORAGE_FAULT_INJECTION_H_
#define QARM_STORAGE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/retry.h"
#include "common/status.h"
#include "storage/record_source.h"

namespace qarm {

// Which error a faulted read reports. The decorator cannot corrupt the
// inner source's mapped bytes, so each kind surfaces as the Status that the
// real failure would produce.
enum class FaultKind : uint32_t {
  kEio = 1u << 0,        // device read error (EIO)
  kShortRead = 1u << 1,  // block truncated mid-read
  kCrc = 1u << 2,        // block checksum mismatch
  // Process death: the reading process _Exit()s mid-scan, modeling a
  // SIGKILL'd distributed worker. `fails` counts the incarnations that die
  // (a respawned worker sets `generation`; it survives once generation >=
  // fails), so the default fails=1 kills a worker exactly once and its
  // replacement replays the shard cleanly.
  kKill = 1u << 3,
  // Network kinds (TCP worker transport, dist/transport.h). Like kKill they
  // gate on generation < fails, so a reconnected session replays clean.
  kConnReset = 1u << 4,     // RST the connection instead of the write
  kStall = 1u << 5,         // play dead until the peer's deadline fires
  kPartialWrite = 1u << 6,  // half the frame lands, then the RST
};

// The storage (block-read) subset of a kinds mask.
inline uint32_t StorageFaultKinds(uint32_t kinds) {
  return kinds & (static_cast<uint32_t>(FaultKind::kEio) |
                  static_cast<uint32_t>(FaultKind::kShortRead) |
                  static_cast<uint32_t>(FaultKind::kCrc) |
                  static_cast<uint32_t>(FaultKind::kKill));
}

// The network (frame-write) subset of a kinds mask.
inline uint32_t NetFaultKinds(uint32_t kinds) {
  return kinds & (static_cast<uint32_t>(FaultKind::kConnReset) |
                  static_cast<uint32_t>(FaultKind::kStall) |
                  static_cast<uint32_t>(FaultKind::kPartialWrite));
}

struct FaultInjectionConfig {
  uint64_t seed = 1;
  double rate = 0.05;
  uint64_t fails_per_block = 1;
  uint64_t after_reads = 0;
  uint32_t kinds = static_cast<uint32_t>(FaultKind::kEio) |
                   static_cast<uint32_t>(FaultKind::kShortRead) |
                   static_cast<uint32_t>(FaultKind::kCrc);
  RetryPolicy retry{/*max_attempts=*/4, /*initial_backoff_ms=*/0.01,
                    /*backoff_multiplier=*/2.0, /*max_backoff_ms=*/1.0};
  // How long a network stall fault plays dead (spec key `stall`, ms). Must
  // exceed the peer's read deadline to actually look like a partition.
  double stall_ms = 1000.0;
  // Not part of the spec grammar: set programmatically by a respawned
  // distributed worker (0 = first incarnation). Gates kKill and the
  // network kinds only.
  uint64_t generation = 0;
};

// Parses the `--inject-faults` spec grammar above.
Result<FaultInjectionConfig> ParseFaultSpec(std::string_view spec);

class FaultInjectingRecordSource : public RecordSource {
 public:
  // Non-owning: `inner` must outlive this source.
  FaultInjectingRecordSource(const RecordSource& inner,
                             const FaultInjectionConfig& config);
  // Owning variant for call sites that hand over the inner source.
  FaultInjectingRecordSource(std::unique_ptr<RecordSource> inner,
                             const FaultInjectionConfig& config);

  const std::vector<MappedAttribute>& attributes() const override {
    return inner_->attributes();
  }
  size_t num_rows() const override { return inner_->num_rows(); }
  size_t num_blocks() const override { return inner_->num_blocks(); }
  size_t block_rows(size_t b) const override { return inner_->block_rows(b); }
  size_t block_row_begin(size_t b) const override {
    return inner_->block_row_begin(b);
  }
  Status ReadBlock(size_t b, BlockView* view) const override;
  ScanIoStats io_stats() const override;

  // True when the schedule faults block b (independent of `after_reads`).
  bool BlockIsFaulted(size_t b) const;
  // The kind block b fails with, if faulted.
  FaultKind BlockFaultKind(size_t b) const;

 private:
  Status InjectOrRead(size_t b, BlockView* view) const;

  const RecordSource* inner_;
  std::unique_ptr<RecordSource> owned_;
  FaultInjectionConfig config_;
  // Per-block failed-attempt counters; atomics because scans read blocks
  // from many workers at once.
  std::unique_ptr<std::atomic<uint64_t>[]> block_failures_;
  mutable std::atomic<uint64_t> total_reads_{0};
  mutable std::atomic<uint64_t> faults_injected_{0};
  mutable std::atomic<uint64_t> read_retries_{0};
};

}  // namespace qarm

#endif  // QARM_STORAGE_FAULT_INJECTION_H_
