// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) used to checksum QBT blocks.
// Table-driven, byte-at-a-time; fast enough that block validation is a small
// fraction of a mining scan, and dependency-free by design.
#ifndef QARM_STORAGE_CRC32_H_
#define QARM_STORAGE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace qarm {

// CRC-32 of `size` bytes at `data`, with the conventional init/final
// inversion (matches zlib's crc32(0, data, size)).
uint32_t Crc32(const void* data, size_t size);

// Incremental form: feed `crc` the result of the previous call (start from
// kCrc32Init) and invert at the end with Crc32Finish. Crc32(p, n) ==
// Crc32Finish(Crc32Update(kCrc32Init, p, n)).
inline constexpr uint32_t kCrc32Init = 0xFFFFFFFFu;
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);
inline uint32_t Crc32Finish(uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

}  // namespace qarm

#endif  // QARM_STORAGE_CRC32_H_
