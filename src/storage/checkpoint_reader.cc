#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>

#include "common/string_util.h"
#include "storage/checkpoint_format.h"
#include "storage/crc32.h"

namespace qarm {
namespace {

// Bounded cursor over the payload. Every Read* call checks the remaining
// byte budget first, so a hostile or truncated checkpoint can neither read
// out of bounds nor trigger an oversized allocation: element counts are
// validated in division form (count <= remaining / element_size) before any
// vector is resized.
class PayloadCursor {
 public:
  PayloadCursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }

  Status ReadU32(uint32_t* out) {
    QARM_RETURN_NOT_OK(Need(4));
    *out = QbtReadU32(data_ + pos_);
    pos_ += 4;
    return Status::OK();
  }
  Status ReadU64(uint64_t* out) {
    QARM_RETURN_NOT_OK(Need(8));
    *out = QbtReadU64(data_ + pos_);
    pos_ += 8;
    return Status::OK();
  }
  Status ReadI32Array(size_t count, std::vector<int32_t>* out) {
    QARM_RETURN_NOT_OK(NeedCount(count, 4));
    out->resize(count);
    for (size_t i = 0; i < count; ++i) {
      (*out)[i] = QbtReadI32(data_ + pos_ + i * 4);
    }
    pos_ += count * 4;
    return Status::OK();
  }
  Status ReadU64Array(size_t count, std::vector<uint64_t>* out) {
    QARM_RETURN_NOT_OK(NeedCount(count, 8));
    out->resize(count);
    for (size_t i = 0; i < count; ++i) {
      (*out)[i] = QbtReadU64(data_ + pos_ + i * 8);
    }
    pos_ += count * 8;
    return Status::OK();
  }
  // Count declared for elements of `element_size` bytes each; rejects
  // counts the remaining payload cannot possibly hold.
  Status NeedCount(uint64_t count, size_t element_size) const {
    if (count > remaining() / element_size) {
      return Status::InvalidArgument(StrFormat(
          "checkpoint declares %llu elements but only %zu bytes remain",
          static_cast<unsigned long long>(count), remaining()));
    }
    return Status::OK();
  }

 private:
  Status Need(size_t bytes) const {
    if (remaining() < bytes) {
      return Status::InvalidArgument("checkpoint payload truncated");
    }
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status ParseValueCounts(PayloadCursor* cursor,
                        std::vector<std::vector<uint64_t>>* value_counts) {
  uint32_t num_value_vectors = 0;
  QARM_RETURN_NOT_OK(cursor->ReadU32(&num_value_vectors));
  QARM_RETURN_NOT_OK(cursor->NeedCount(num_value_vectors, 8));
  value_counts->resize(num_value_vectors);
  for (std::vector<uint64_t>& counts : *value_counts) {
    uint64_t num_values = 0;
    QARM_RETURN_NOT_OK(cursor->ReadU64(&num_values));
    QARM_RETURN_NOT_OK(
        cursor->ReadU64Array(static_cast<size_t>(num_values), &counts));
  }
  return Status::OK();
}

Status ParseCatalogSection(PayloadCursor* cursor, CheckpointCatalog* catalog) {
  QARM_RETURN_NOT_OK(cursor->ReadU64(&catalog->num_records));
  QARM_RETURN_NOT_OK(cursor->ReadU64(&catalog->items_pruned_by_interest));
  uint64_t num_items = 0;
  QARM_RETURN_NOT_OK(cursor->ReadU64(&num_items));
  QARM_RETURN_NOT_OK(cursor->NeedCount(num_items, 3 * 4 + 8));
  QARM_RETURN_NOT_OK(
      cursor->ReadI32Array(static_cast<size_t>(num_items) * 3,
                           &catalog->item_words));
  QARM_RETURN_NOT_OK(cursor->ReadU64Array(static_cast<size_t>(num_items),
                                          &catalog->item_counts));
  return ParseValueCounts(cursor, &catalog->value_counts);
}

Status ParsePayload(const uint8_t* data, size_t size, uint32_t version,
                    CheckpointState* state) {
  PayloadCursor cursor(data, size);
  QARM_RETURN_NOT_OK(cursor.ReadU64(&state->fingerprint));
  QARM_RETURN_NOT_OK(cursor.ReadU64(&state->num_rows));
  QARM_RETURN_NOT_OK(cursor.ReadU32(&state->num_attributes));
  if (version >= 2) {
    QARM_RETURN_NOT_OK(cursor.ReadU32(&state->flags));
    QARM_RETURN_NOT_OK(cursor.ReadU64(&state->options_fingerprint));
    QARM_RETURN_NOT_OK(cursor.ReadU64(&state->base_num_blocks));
    QARM_RETURN_NOT_OK(cursor.ReadU32(&state->base_index_crc));
  }

  CheckpointCatalog& catalog = state->catalog;
  QARM_RETURN_NOT_OK(ParseCatalogSection(&cursor, &catalog));
  if (catalog.value_counts.size() != state->num_attributes) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint has %zu value-count vectors for %u attributes",
        catalog.value_counts.size(), state->num_attributes));
  }

  uint32_t num_passes = 0;
  QARM_RETURN_NOT_OK(cursor.ReadU32(&num_passes));
  QARM_RETURN_NOT_OK(cursor.NeedCount(num_passes, 4 + 8 + 8));
  state->passes.resize(num_passes);
  for (CheckpointPass& pass : state->passes) {
    QARM_RETURN_NOT_OK(cursor.ReadU32(&pass.k));
    if (pass.k == 0) {
      return Status::InvalidArgument("checkpoint pass has k == 0");
    }
    QARM_RETURN_NOT_OK(cursor.ReadU64(&pass.num_candidates));
    uint64_t num_frequent = 0;
    QARM_RETURN_NOT_OK(cursor.ReadU64(&num_frequent));
    // Each itemset costs k * 4 bytes of ids plus 8 bytes of count.
    QARM_RETURN_NOT_OK(
        cursor.NeedCount(num_frequent, static_cast<size_t>(pass.k) * 4 + 8));
    QARM_RETURN_NOT_OK(
        cursor.ReadI32Array(static_cast<size_t>(num_frequent) * pass.k,
                            &pass.itemsets));
    QARM_RETURN_NOT_OK(
        cursor.ReadU64Array(static_cast<size_t>(num_frequent), &pass.counts));
    if (version >= 2) {
      uint64_t num_candidate_counts = 0;
      QARM_RETURN_NOT_OK(cursor.ReadU64(&num_candidate_counts));
      if (num_candidate_counts != 0 &&
          num_candidate_counts != pass.num_candidates) {
        return Status::InvalidArgument(
            "checkpoint pass candidate counts do not match the candidate "
            "count");
      }
      QARM_RETURN_NOT_OK(cursor.NeedCount(num_candidate_counts, 4));
      pass.candidate_counts.resize(
          static_cast<size_t>(num_candidate_counts));
      for (uint32_t& count : pass.candidate_counts) {
        QARM_RETURN_NOT_OK(cursor.ReadU32(&count));
      }
    }
  }
  if (cursor.remaining() != 0) {
    return Status::InvalidArgument(
        StrFormat("checkpoint payload has %zu trailing bytes",
                  cursor.remaining()));
  }
  return Status::OK();
}

}  // namespace

Result<CheckpointCatalog> ParseCheckpointCatalog(const uint8_t* data,
                                                 size_t size) {
  PayloadCursor cursor(data, size);
  CheckpointCatalog catalog;
  QARM_RETURN_NOT_OK(ParseCatalogSection(&cursor, &catalog));
  if (cursor.remaining() != 0) {
    return Status::InvalidArgument(
        StrFormat("catalog section has %zu trailing bytes",
                  cursor.remaining()));
  }
  return catalog;
}

Result<ShardSnapshot> ParseShardSnapshot(const uint8_t* data, size_t size) {
  if (size < sizeof(kShardSnapshotMagic) + 4 ||
      std::memcmp(data, kShardSnapshotMagic, sizeof(kShardSnapshotMagic)) !=
          0) {
    return Status::InvalidArgument("not a QCP shard snapshot (bad magic)");
  }
  PayloadCursor cursor(data + sizeof(kShardSnapshotMagic),
                       size - sizeof(kShardSnapshotMagic));
  uint32_t version = 0;
  QARM_RETURN_NOT_OK(cursor.ReadU32(&version));
  if (version != kShardSnapshotVersion) {
    return Status::InvalidArgument(StrFormat(
        "unsupported shard snapshot version %u (expected %u)", version,
        kShardSnapshotVersion));
  }
  ShardSnapshot snapshot;
  QARM_RETURN_NOT_OK(cursor.ReadU64(&snapshot.fingerprint));
  QARM_RETURN_NOT_OK(cursor.ReadU32(&snapshot.worker_id));
  QARM_RETURN_NOT_OK(cursor.ReadU64(&snapshot.block_begin));
  QARM_RETURN_NOT_OK(cursor.ReadU64(&snapshot.block_end));
  QARM_RETURN_NOT_OK(cursor.ReadU64(&snapshot.num_rows));
  QARM_RETURN_NOT_OK(ParseValueCounts(&cursor, &snapshot.value_counts));
  QARM_RETURN_NOT_OK(cursor.ReadU64(&snapshot.blocks_read));
  QARM_RETURN_NOT_OK(cursor.ReadU64(&snapshot.bytes_read));
  QARM_RETURN_NOT_OK(cursor.ReadU64(&snapshot.read_retries));
  QARM_RETURN_NOT_OK(cursor.ReadU64(&snapshot.faults_injected));
  if (cursor.remaining() != 0) {
    return Status::InvalidArgument(
        StrFormat("shard snapshot has %zu trailing bytes",
                  cursor.remaining()));
  }
  return snapshot;
}

Result<CheckpointState> ParseCheckpoint(const uint8_t* data, size_t size) {
  if (size < kCheckpointHeaderSize + kCheckpointTailSize) {
    return Status::InvalidArgument(
        StrFormat("checkpoint too small: %zu bytes", size));
  }
  if (std::memcmp(data, kCheckpointMagic, sizeof(kCheckpointMagic)) != 0) {
    return Status::InvalidArgument("not a QCP checkpoint (bad magic)");
  }
  if (QbtReadU32(data + 4) != kQbtEndianMarker) {
    return Status::InvalidArgument(
        "checkpoint endianness does not match this host");
  }
  const uint32_t version = QbtReadU32(data + 8);
  if (version < kCheckpointMinVersion || version > kCheckpointVersion) {
    return Status::InvalidArgument(StrFormat(
        "unsupported checkpoint version %u (reader supports %u through %u)",
        version, kCheckpointMinVersion, kCheckpointVersion));
  }
  const uint64_t payload_size = QbtReadU64(data + 16);
  if (payload_size !=
      size - kCheckpointHeaderSize - kCheckpointTailSize) {
    return Status::InvalidArgument(StrFormat(
        "checkpoint payload size %llu does not match file size %zu",
        static_cast<unsigned long long>(payload_size), size));
  }
  const uint8_t* payload = data + kCheckpointHeaderSize;
  const uint8_t* tail = payload + payload_size;
  if (std::memcmp(tail + 4, kCheckpointEndMagic,
                  sizeof(kCheckpointEndMagic)) != 0) {
    return Status::InvalidArgument("checkpoint end magic missing");
  }
  const uint32_t expected_crc = QbtReadU32(tail);
  const uint32_t actual_crc = Crc32(payload, static_cast<size_t>(payload_size));
  if (expected_crc != actual_crc) {
    return Status::IOError(StrFormat(
        "checkpoint payload checksum mismatch (stored %08x, computed %08x)",
        expected_crc, actual_crc));
  }

  CheckpointState state;
  QARM_RETURN_NOT_OK(ParsePayload(payload, static_cast<size_t>(payload_size),
                                  version, &state));
  return state;
}

Result<CheckpointState> ReadCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::NotFound("cannot open checkpoint '" + path + "'");
  }
  const std::streamoff size = in.tellg();
  if (size < 0) {
    return Status::IOError("cannot stat checkpoint '" + path + "'");
  }
  std::string bytes(static_cast<size_t>(size), '\0');
  in.seekg(0);
  if (!bytes.empty() &&
      !in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()))) {
    return Status::IOError("cannot read checkpoint '" + path + "'");
  }
  return ParseCheckpoint(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
}

}  // namespace qarm
