#include "storage/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace qarm {

Result<std::unique_ptr<MmapFile>> MmapFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat '" + path +
                           "': " + std::strerror(err));
  }
  size_t size = static_cast<size_t>(st.st_size);
  const uint8_t* data = nullptr;
  if (size > 0) {
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      int err = errno;
      ::close(fd);
      return Status::IOError("cannot mmap '" + path +
                             "': " + std::strerror(err));
    }
    data = static_cast<const uint8_t*>(map);
  }
  // The mapping outlives the descriptor.
  ::close(fd);
  return std::unique_ptr<MmapFile>(new MmapFile(data, size));
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

void MmapFile::AdviseSequential() {
  if (data_ != nullptr) {
    ::madvise(const_cast<uint8_t*>(data_), size_, MADV_SEQUENTIAL);
  }
}

}  // namespace qarm
