// QBT ("Quantitative Binary Table") — the on-disk columnar format for
// mapped tables, built for streaming block scans of tables larger than RAM.
//
// Layout (version 1, all integers little-endian, no alignment padding
// between sections):
//
//   Header (40 bytes)
//     [0]  u8[4]  magic "QBT1"
//     [4]  u32    endian marker 0x0A0B0C0D (a big-endian writer would store
//                 the reversed bytes; readers reject the mismatch cleanly)
//     [8]  u32    format version (kQbtVersion)
//     [12] u32    rows_per_block (every block holds this many rows except
//                 possibly the last)
//     [16] u64    num_rows
//     [24] u32    num_attributes
//     [28] u32    reserved (0)
//     [32] u64    metadata_size (bytes of the attribute-metadata section)
//
//   Attribute metadata (metadata_size bytes): per attribute, in order —
//     name        u32 length + bytes
//     kind        u8  (AttributeKind)
//     source_type u8  (ValueType)
//     partitioned u8  (0/1)
//     reserved    u8  (0)
//     labels            u32 count + per label (u32 length + bytes)
//     intervals         u32 count + per interval (f64 lo, f64 hi)
//     taxonomy_ranges   u32 count + per node (u32 length + name bytes,
//                                             i32 lo, i32 hi)
//
//   Blocks (ceil(num_rows / rows_per_block) of them, back to back):
//     block b = column 0 slice, column 1 slice, ..., column A-1 slice,
//     where a slice is block_rows(b) i32 mapped values (kMissingValue for
//     NULL cells). Column-major within the block, so a scan touches each
//     column as one contiguous run.
//
//   Footer (block index): per block —
//     u64 file offset of the block
//     u32 block row count
//     u32 CRC-32 of the block's raw bytes
//
//   Tail (16 bytes)
//     u64    file offset of the footer
//     u32    CRC-32 of the footer bytes
//     u8[4]  end magic "QBTE"
//
// The footer-at-the-end layout lets the writer stream blocks without
// knowing the block count up front, and lets the reader locate the index
// from the fixed-size tail.
#ifndef QARM_STORAGE_QBT_FORMAT_H_
#define QARM_STORAGE_QBT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace qarm {

inline constexpr char kQbtMagic[4] = {'Q', 'B', 'T', '1'};
inline constexpr char kQbtEndMagic[4] = {'Q', 'B', 'T', 'E'};
inline constexpr uint32_t kQbtEndianMarker = 0x0A0B0C0Du;
inline constexpr uint32_t kQbtVersion = 1;
inline constexpr uint32_t kQbtDefaultRowsPerBlock = 65536;
inline constexpr size_t kQbtHeaderSize = 40;
inline constexpr size_t kQbtBlockIndexEntrySize = 8 + 4 + 4;
inline constexpr size_t kQbtTailSize = 8 + 4 + 4;

// --- Little-endian append/read helpers -------------------------------------
// QBT is defined little-endian; these helpers are byte-order explicit so the
// format does not silently change meaning on a big-endian host (the endian
// marker additionally rejects cross-endian files at open).

inline void QbtAppendU32(std::string* out, uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out->append(b, 4);
}

inline void QbtAppendU64(std::string* out, uint64_t v) {
  QbtAppendU32(out, static_cast<uint32_t>(v));
  QbtAppendU32(out, static_cast<uint32_t>(v >> 32));
}

inline void QbtAppendI32(std::string* out, int32_t v) {
  QbtAppendU32(out, static_cast<uint32_t>(v));
}

inline void QbtAppendF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  QbtAppendU64(out, bits);
}

inline void QbtAppendString(std::string* out, const std::string& s) {
  QbtAppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

inline uint32_t QbtReadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

inline uint64_t QbtReadU64(const uint8_t* p) {
  return static_cast<uint64_t>(QbtReadU32(p)) |
         static_cast<uint64_t>(QbtReadU32(p + 4)) << 32;
}

inline int32_t QbtReadI32(const uint8_t* p) {
  return static_cast<int32_t>(QbtReadU32(p));
}

inline double QbtReadF64(const uint8_t* p) {
  uint64_t bits = QbtReadU64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace qarm

#endif  // QARM_STORAGE_QBT_FORMAT_H_
