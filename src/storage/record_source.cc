#include "storage/record_source.h"

#include <algorithm>
#include <chrono>

namespace qarm {

size_t PickBlockRows(size_t num_rows, size_t num_threads,
                     size_t max_block_rows) {
  const size_t threads = num_threads == 0 ? 1 : num_threads;
  const size_t per_thread = (num_rows + threads - 1) / threads;
  size_t rows = std::min(max_block_rows == 0 ? 1 : max_block_rows,
                         per_thread == 0 ? 1 : per_thread);
  return rows == 0 ? 1 : rows;
}

MappedTableSource::MappedTableSource(const MappedTable& table,
                                     size_t rows_per_block)
    : table_(table),
      rows_per_block_(rows_per_block == 0 ? 1 : rows_per_block) {
  num_blocks_ = table_.num_rows() == 0
                    ? 0
                    : (table_.num_rows() + rows_per_block_ - 1) /
                          rows_per_block_;
}

size_t MappedTableSource::block_rows(size_t b) const {
  const size_t begin = b * rows_per_block_;
  return std::min(rows_per_block_, table_.num_rows() - begin);
}

Status MappedTableSource::ReadBlock(size_t b, BlockView* view) const {
  QARM_CHECK_LT(b, num_blocks_);
  const size_t begin = b * rows_per_block_;
  view->row_begin_ = begin;
  view->num_rows_ = block_rows(b);
  view->stride_ = table_.num_attributes();
  view->columns_.resize(table_.num_attributes());
  // Row-major table: column a of the block starts at element a of the first
  // row, consecutive rows are one full record apart.
  const int32_t* base = table_.row(begin);
  for (size_t a = 0; a < view->columns_.size(); ++a) {
    view->columns_[a] = base + a;
  }
  return Status::OK();
}

Result<std::unique_ptr<QbtFileSource>> QbtFileSource::Open(
    const std::string& path) {
  QARM_ASSIGN_OR_RETURN(std::unique_ptr<QbtReader> reader,
                        QbtReader::Open(path));
  return std::unique_ptr<QbtFileSource>(new QbtFileSource(std::move(reader)));
}

Status QbtFileSource::ReadBlock(size_t b, BlockView* view) const {
  view->row_begin_ = static_cast<size_t>(reader_->block_row_begin(b));
  view->num_rows_ = reader_->block_rows(b);
  view->stride_ = 1;
  const auto start = std::chrono::steady_clock::now();
  uint64_t retries = 0;
  const Status read_status = RetryWithBackoff(
      retry_policy_, /*key=*/static_cast<uint64_t>(b), &retries,
      [&]() { return reader_->ReadBlockColumns(b, &view->columns_); });
  read_retries_.fetch_add(retries, std::memory_order_relaxed);
  QARM_RETURN_NOT_OK(read_status);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  blocks_read_.fetch_add(1, std::memory_order_relaxed);
  bytes_read_.fetch_add(reader_->block_bytes(b), std::memory_order_relaxed);
  checksum_nanos_.fetch_add(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count(),
      std::memory_order_relaxed);
  return Status::OK();
}

BlockRangeSource::BlockRangeSource(const RecordSource& inner,
                                   size_t block_begin, size_t block_end)
    : inner_(inner), block_begin_(block_begin), block_end_(block_end) {
  QARM_CHECK_LE(block_begin_, block_end_);
  QARM_CHECK_LE(block_end_, inner_.num_blocks());
  num_rows_ = 0;
  for (size_t b = block_begin_; b < block_end_; ++b) {
    num_rows_ += inner_.block_rows(b);
  }
}

ScanIoStats QbtFileSource::io_stats() const {
  ScanIoStats stats;
  stats.blocks_read = blocks_read_.load(std::memory_order_relaxed);
  stats.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  stats.checksum_seconds =
      static_cast<double>(checksum_nanos_.load(std::memory_order_relaxed)) *
      1e-9;
  stats.read_retries = read_retries_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace qarm
