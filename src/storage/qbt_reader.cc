#include "storage/qbt_reader.h"

#include <bit>
#include <cstring>

#include "common/string_util.h"
#include "storage/attr_metadata.h"
#include "storage/crc32.h"
#include "storage/qbt_format.h"

namespace qarm {
namespace {

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::IOError("'" + path + "' is not a valid QBT file: " + what);
}

// Delegates to the shared QBT/QRS attribute-metadata codec, wraps its
// section-relative errors with file context, and enforces the QBT-specific
// trailing rule: the writer pads the section to 4 bytes (block alignment);
// anything beyond that is corruption.
Result<std::vector<MappedAttribute>> DecodeAttributes(
    const std::string& path, const uint8_t* data, size_t size,
    uint32_t num_attrs) {
  size_t consumed = 0;
  Result<std::vector<MappedAttribute>> attrs =
      DecodeAttributeMetadata(data, size, num_attrs, &consumed);
  if (!attrs.ok()) return Corrupt(path, attrs.status().message());
  if (size - consumed >= sizeof(int32_t)) {
    return Corrupt(path, "metadata section has trailing bytes");
  }
  return attrs;
}

}  // namespace

Result<std::unique_ptr<QbtReader>> QbtReader::Open(const std::string& path) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::Internal("QBT reading requires a little-endian host");
  }
  QARM_ASSIGN_OR_RETURN(std::unique_ptr<MmapFile> file, MmapFile::Open(path));
  const uint8_t* data = file->data();
  const size_t size = file->size();
  if (size < kQbtHeaderSize + kQbtTailSize) {
    return Corrupt(path, StrFormat("file is only %zu bytes", size));
  }
  if (std::memcmp(data, kQbtMagic, sizeof(kQbtMagic)) != 0) {
    return Corrupt(path, "bad magic");
  }
  const uint32_t endian = QbtReadU32(data + 4);
  if (endian != kQbtEndianMarker) {
    return Corrupt(path, StrFormat("endian marker 0x%08x (file written on a "
                                   "host of different byte order?)",
                                   endian));
  }
  const uint32_t version = QbtReadU32(data + 8);
  if (version != kQbtVersion) {
    return Corrupt(path, StrFormat("unsupported version %u (reader supports "
                                   "%u)",
                                   version, kQbtVersion));
  }
  auto reader = std::unique_ptr<QbtReader>(new QbtReader());
  reader->rows_per_block_ = QbtReadU32(data + 12);
  reader->num_rows_ = QbtReadU64(data + 16);
  const uint32_t num_attrs = QbtReadU32(data + 24);
  const uint64_t metadata_size = QbtReadU64(data + 32);
  if (reader->rows_per_block_ == 0) {
    return Corrupt(path, "rows_per_block is 0");
  }
  if (metadata_size > size - kQbtHeaderSize - kQbtTailSize) {
    return Corrupt(path, "metadata section exceeds the file");
  }
  QARM_ASSIGN_OR_RETURN(
      reader->attributes_,
      DecodeAttributes(path, data + kQbtHeaderSize,
                       static_cast<size_t>(metadata_size), num_attrs));

  // Locate the footer through the tail, then validate the index.
  const uint8_t* tail = data + size - kQbtTailSize;
  if (std::memcmp(tail + 12, kQbtEndMagic, sizeof(kQbtEndMagic)) != 0) {
    return Corrupt(path, "bad end magic (truncated file?)");
  }
  const uint64_t footer_offset = QbtReadU64(tail);
  const uint32_t footer_crc = QbtReadU32(tail + 8);
  // The block count comes from the index itself, not from the header row
  // count: appends start a fresh block, so short blocks can sit anywhere in
  // the file and ceil(num_rows / rows_per_block) no longer bounds anything.
  // The per-block row sum below still has to reconcile with the header.
  if (footer_offset > size - kQbtTailSize ||
      footer_offset < kQbtHeaderSize + metadata_size) {
    return Corrupt(path, "block index offset out of bounds");
  }
  const uint64_t footer_size = size - kQbtTailSize - footer_offset;
  if (footer_size % kQbtBlockIndexEntrySize != 0) {
    return Corrupt(path, "block index does not match the row count");
  }
  const uint64_t num_blocks = footer_size / kQbtBlockIndexEntrySize;
  const uint8_t* footer = data + footer_offset;
  if (Crc32(footer, static_cast<size_t>(footer_size)) != footer_crc) {
    return Corrupt(path, "block index checksum mismatch");
  }
  reader->blocks_.resize(static_cast<size_t>(num_blocks));
  reader->row_begins_.resize(static_cast<size_t>(num_blocks));
  uint64_t expected_rows = 0;
  for (size_t b = 0; b < reader->blocks_.size(); ++b) {
    const uint8_t* entry = footer + b * kQbtBlockIndexEntrySize;
    BlockEntry& block = reader->blocks_[b];
    block.offset = QbtReadU64(entry);
    block.num_rows = QbtReadU32(entry + 8);
    block.crc32 = QbtReadU32(entry + 12);
    // The size check divides instead of multiplying out block_bytes so an
    // attacker-chosen row count cannot overflow the comparison.
    if (block.num_rows == 0 || block.num_rows > reader->rows_per_block_ ||
        block.offset % sizeof(int32_t) != 0 ||
        block.offset < kQbtHeaderSize + metadata_size ||
        block.offset > footer_offset ||
        (num_attrs != 0 &&
         (footer_offset - block.offset) / sizeof(int32_t) / num_attrs <
             block.num_rows)) {
      return Corrupt(path, StrFormat("block %zu index entry out of bounds",
                                     b));
    }
    reader->row_begins_[b] = expected_rows;
    expected_rows += block.num_rows;
  }
  if (expected_rows != reader->num_rows_) {
    return Corrupt(path, StrFormat("block rows sum to %llu, header says %llu",
                                   static_cast<unsigned long long>(
                                       expected_rows),
                                   static_cast<unsigned long long>(
                                       reader->num_rows_)));
  }
  reader->file_ = std::move(file);
  return reader;
}

uint32_t QbtReader::IndexPrefixCrc(size_t num_blocks) const {
  QARM_CHECK_LE(num_blocks, blocks_.size());
  std::string encoded;
  encoded.reserve(num_blocks * kQbtBlockIndexEntrySize);
  for (size_t b = 0; b < num_blocks; ++b) {
    QbtAppendU64(&encoded, blocks_[b].offset);
    QbtAppendU32(&encoded, blocks_[b].num_rows);
    QbtAppendU32(&encoded, blocks_[b].crc32);
  }
  return Crc32(encoded.data(), encoded.size());
}

Status QbtReader::ReadBlockColumns(
    size_t b, std::vector<const int32_t*>* columns) const {
  QARM_CHECK_LT(b, blocks_.size());
  const BlockEntry& block = blocks_[b];
  const uint8_t* bytes = file_->data() + block.offset;
  const size_t block_bytes = static_cast<size_t>(this->block_bytes(b));
  const uint32_t crc = Crc32(bytes, block_bytes);
  if (crc != block.crc32) {
    return Status::IOError(
        StrFormat("QBT block %zu checksum mismatch (stored 0x%08x, computed "
                  "0x%08x): file corrupted",
                  b, block.crc32, crc));
  }
  columns->resize(attributes_.size());
  for (size_t a = 0; a < attributes_.size(); ++a) {
    (*columns)[a] = reinterpret_cast<const int32_t*>(
        bytes + a * static_cast<size_t>(block.num_rows) * sizeof(int32_t));
  }
  return Status::OK();
}

}  // namespace qarm
