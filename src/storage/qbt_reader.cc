#include "storage/qbt_reader.h"

#include <bit>
#include <cstring>

#include "common/string_util.h"
#include "storage/crc32.h"
#include "storage/qbt_format.h"

namespace qarm {
namespace {

// Bounds-checked cursor over the metadata section.
class MetaCursor {
 public:
  MetaCursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ReadU32(uint32_t* v) {
    if (size_ - pos_ < 4) return false;
    *v = QbtReadU32(data_ + pos_);
    pos_ += 4;
    return true;
  }
  bool ReadI32(int32_t* v) {
    uint32_t u;
    if (!ReadU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }
  bool ReadF64(double* v) {
    if (size_ - pos_ < 8) return false;
    *v = QbtReadF64(data_ + pos_);
    pos_ += 8;
    return true;
  }
  bool ReadByte(uint8_t* v) {
    if (size_ - pos_ < 1) return false;
    *v = data_[pos_++];
    return true;
  }
  bool ReadString(std::string* s) {
    uint32_t len;
    if (!ReadU32(&len)) return false;
    if (size_ - pos_ < len) return false;
    s->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }
  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Minimum encoded bytes of one attribute: name length (4) + four flag
// bytes + three element counts (4 each). Used to bound declared counts
// against the metadata section before any allocation, so a bit-flipped
// count can never trigger a multi-gigabyte resize.
constexpr size_t kMinAttrBytes = 4 + 4 + 4 + 4 + 4;
constexpr size_t kMinLabelBytes = 4;       // u32 length
constexpr size_t kIntervalBytes = 8 + 8;   // f64 lo + f64 hi
constexpr size_t kMinTaxonomyBytes = 4 + 4 + 4;  // name length + lo + hi

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::IOError("'" + path + "' is not a valid QBT file: " + what);
}

Result<std::vector<MappedAttribute>> DecodeAttributes(
    const std::string& path, const uint8_t* data, size_t size,
    uint32_t num_attrs) {
  MetaCursor cur(data, size);
  if (static_cast<uint64_t>(num_attrs) * kMinAttrBytes > size) {
    return Corrupt(path,
                   StrFormat("%u attributes cannot fit in %zu metadata "
                             "bytes",
                             num_attrs, size));
  }
  std::vector<MappedAttribute> attrs;
  attrs.reserve(num_attrs);
  for (uint32_t a = 0; a < num_attrs; ++a) {
    MappedAttribute attr;
    uint8_t kind = 0, source_type = 0, partitioned = 0, reserved = 0;
    uint32_t count = 0;
    if (!cur.ReadString(&attr.name) || !cur.ReadByte(&kind) ||
        !cur.ReadByte(&source_type) || !cur.ReadByte(&partitioned) ||
        !cur.ReadByte(&reserved)) {
      return Corrupt(path, StrFormat("truncated metadata of attribute %u", a));
    }
    if (kind > 1 || source_type > 2) {
      return Corrupt(path,
                     StrFormat("attribute %u has kind %u / type %u out of "
                               "range",
                               a, kind, source_type));
    }
    attr.kind = static_cast<AttributeKind>(kind);
    attr.source_type = static_cast<ValueType>(source_type);
    attr.partitioned = partitioned != 0;
    if (!cur.ReadU32(&count)) {
      return Corrupt(path, StrFormat("truncated labels of attribute %u", a));
    }
    if (static_cast<uint64_t>(count) * kMinLabelBytes > cur.remaining()) {
      return Corrupt(path,
                     StrFormat("attribute %u declares %u labels, more than "
                               "the metadata can hold",
                               a, count));
    }
    attr.labels.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      if (!cur.ReadString(&attr.labels[i])) {
        return Corrupt(path, StrFormat("truncated label of attribute %u", a));
      }
    }
    if (!cur.ReadU32(&count)) {
      return Corrupt(path,
                     StrFormat("truncated intervals of attribute %u", a));
    }
    if (static_cast<uint64_t>(count) * kIntervalBytes > cur.remaining()) {
      return Corrupt(path,
                     StrFormat("attribute %u declares %u intervals, more "
                               "than the metadata can hold",
                               a, count));
    }
    attr.intervals.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      if (!cur.ReadF64(&attr.intervals[i].lo) ||
          !cur.ReadF64(&attr.intervals[i].hi)) {
        return Corrupt(path,
                       StrFormat("truncated interval of attribute %u", a));
      }
    }
    if (!cur.ReadU32(&count)) {
      return Corrupt(path,
                     StrFormat("truncated taxonomy of attribute %u", a));
    }
    if (static_cast<uint64_t>(count) * kMinTaxonomyBytes > cur.remaining()) {
      return Corrupt(path,
                     StrFormat("attribute %u declares %u taxonomy nodes, "
                               "more than the metadata can hold",
                               a, count));
    }
    attr.taxonomy_ranges.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      Taxonomy::NodeRange& node = attr.taxonomy_ranges[i];
      if (!cur.ReadString(&node.name) || !cur.ReadI32(&node.lo) ||
          !cur.ReadI32(&node.hi)) {
        return Corrupt(path,
                       StrFormat("truncated taxonomy node of attribute %u",
                                 a));
      }
    }
    attrs.push_back(std::move(attr));
  }
  // The writer pads the section to 4 bytes (block alignment); anything
  // beyond that is corruption.
  if (size - cur.pos() >= sizeof(int32_t)) {
    return Corrupt(path, "metadata section has trailing bytes");
  }
  return attrs;
}

}  // namespace

Result<std::unique_ptr<QbtReader>> QbtReader::Open(const std::string& path) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::Internal("QBT reading requires a little-endian host");
  }
  QARM_ASSIGN_OR_RETURN(std::unique_ptr<MmapFile> file, MmapFile::Open(path));
  const uint8_t* data = file->data();
  const size_t size = file->size();
  if (size < kQbtHeaderSize + kQbtTailSize) {
    return Corrupt(path, StrFormat("file is only %zu bytes", size));
  }
  if (std::memcmp(data, kQbtMagic, sizeof(kQbtMagic)) != 0) {
    return Corrupt(path, "bad magic");
  }
  const uint32_t endian = QbtReadU32(data + 4);
  if (endian != kQbtEndianMarker) {
    return Corrupt(path, StrFormat("endian marker 0x%08x (file written on a "
                                   "host of different byte order?)",
                                   endian));
  }
  const uint32_t version = QbtReadU32(data + 8);
  if (version != kQbtVersion) {
    return Corrupt(path, StrFormat("unsupported version %u (reader supports "
                                   "%u)",
                                   version, kQbtVersion));
  }
  auto reader = std::unique_ptr<QbtReader>(new QbtReader());
  reader->rows_per_block_ = QbtReadU32(data + 12);
  reader->num_rows_ = QbtReadU64(data + 16);
  const uint32_t num_attrs = QbtReadU32(data + 24);
  const uint64_t metadata_size = QbtReadU64(data + 32);
  if (reader->rows_per_block_ == 0) {
    return Corrupt(path, "rows_per_block is 0");
  }
  if (metadata_size > size - kQbtHeaderSize - kQbtTailSize) {
    return Corrupt(path, "metadata section exceeds the file");
  }
  QARM_ASSIGN_OR_RETURN(
      reader->attributes_,
      DecodeAttributes(path, data + kQbtHeaderSize,
                       static_cast<size_t>(metadata_size), num_attrs));

  // Locate the footer through the tail, then validate the index.
  const uint8_t* tail = data + size - kQbtTailSize;
  if (std::memcmp(tail + 12, kQbtEndMagic, sizeof(kQbtEndMagic)) != 0) {
    return Corrupt(path, "bad end magic (truncated file?)");
  }
  const uint64_t footer_offset = QbtReadU64(tail);
  const uint32_t footer_crc = QbtReadU32(tail + 8);
  const uint64_t num_blocks =
      reader->num_rows_ == 0
          ? 0
          : (reader->num_rows_ + reader->rows_per_block_ - 1) /
                reader->rows_per_block_;
  // Guard the footer_size product: a header-declared row count near 2^64
  // would otherwise wrap it around and alias a tiny (or empty) footer.
  if (num_blocks > (size - kQbtTailSize) / kQbtBlockIndexEntrySize) {
    return Corrupt(path, "block index does not match the row count");
  }
  const uint64_t footer_size = num_blocks * kQbtBlockIndexEntrySize;
  if (footer_offset > size - kQbtTailSize ||
      size - kQbtTailSize - footer_offset != footer_size) {
    return Corrupt(path, "block index does not match the row count");
  }
  const uint8_t* footer = data + footer_offset;
  if (Crc32(footer, static_cast<size_t>(footer_size)) != footer_crc) {
    return Corrupt(path, "block index checksum mismatch");
  }
  reader->blocks_.resize(static_cast<size_t>(num_blocks));
  uint64_t expected_rows = 0;
  for (size_t b = 0; b < reader->blocks_.size(); ++b) {
    const uint8_t* entry = footer + b * kQbtBlockIndexEntrySize;
    BlockEntry& block = reader->blocks_[b];
    block.offset = QbtReadU64(entry);
    block.num_rows = QbtReadU32(entry + 8);
    block.crc32 = QbtReadU32(entry + 12);
    // The size check divides instead of multiplying out block_bytes so an
    // attacker-chosen row count cannot overflow the comparison.
    if (block.num_rows == 0 || block.num_rows > reader->rows_per_block_ ||
        block.offset % sizeof(int32_t) != 0 ||
        block.offset < kQbtHeaderSize + metadata_size ||
        block.offset > footer_offset ||
        (num_attrs != 0 &&
         (footer_offset - block.offset) / sizeof(int32_t) / num_attrs <
             block.num_rows)) {
      return Corrupt(path, StrFormat("block %zu index entry out of bounds",
                                     b));
    }
    expected_rows += block.num_rows;
  }
  if (expected_rows != reader->num_rows_) {
    return Corrupt(path, StrFormat("block rows sum to %llu, header says %llu",
                                   static_cast<unsigned long long>(
                                       expected_rows),
                                   static_cast<unsigned long long>(
                                       reader->num_rows_)));
  }
  reader->file_ = std::move(file);
  return reader;
}

Status QbtReader::ReadBlockColumns(
    size_t b, std::vector<const int32_t*>* columns) const {
  QARM_CHECK_LT(b, blocks_.size());
  const BlockEntry& block = blocks_[b];
  const uint8_t* bytes = file_->data() + block.offset;
  const size_t block_bytes = static_cast<size_t>(this->block_bytes(b));
  const uint32_t crc = Crc32(bytes, block_bytes);
  if (crc != block.crc32) {
    return Status::IOError(
        StrFormat("QBT block %zu checksum mismatch (stored 0x%08x, computed "
                  "0x%08x): file corrupted",
                  b, block.crc32, crc));
  }
  columns->resize(attributes_.size());
  for (size_t a = 0; a < attributes_.size(); ++a) {
    (*columns)[a] = reinterpret_cast<const int32_t*>(
        bytes + a * static_cast<size_t>(block.num_rows) * sizeof(int32_t));
  }
  return Status::OK();
}

}  // namespace qarm
