// User-facing mining options for the quantitative rule miner.
#ifndef QARM_CORE_OPTIONS_H_
#define QARM_CORE_OPTIONS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "partition/mapper.h"
#include "partition/taxonomy.h"

namespace qarm {

// Whether a rule must beat expectations on support AND confidence or on
// support OR confidence to count as interesting (Section 4: "The user can
// specify whether it should be support and confidence, or support or
// confidence").
enum class InterestMode {
  kSupportOrConfidence = 0,
  kSupportAndConfidence = 1,
};

struct MinerOptions {
  // Minimum support, as a fraction of records (Section 2).
  double minsup = 0.10;

  // Minimum confidence. With an interest level set, the paper allows
  // dropping the confidence constraint; set to 0 for that behaviour.
  double minconf = 0.50;

  // Maximum support for combined ranges (Section 1.2): adjacent
  // values/intervals stop combining once their joint support exceeds this.
  // Single values/intervals above it are still considered. 1.0 disables the
  // cap.
  double max_support = 0.40;

  // Desired partial completeness level K (> 1); with minsup it fixes the
  // number of base intervals (Equation 2).
  double partial_completeness = 2.0;

  // Base-interval construction (equi-depth is the paper's choice).
  PartitionMethod partition_method = PartitionMethod::kEquiDepth;

  // Overrides Equation 2 when > 0 (used by tests and ablations).
  size_t num_intervals_override = 0;

  // The paper's n' refinement: when no rule will involve more than this
  // many quantitative attributes, Equation 2 may use it instead of the
  // schema's quantitative-attribute count. 0 = use the schema count.
  size_t max_quantitative_per_rule = 0;

  // Interest level R (Section 4). 0 disables interest processing entirely;
  // values > 1 enable both output filtering and the Lemma 5 candidate
  // pruning (unless interest_item_prune is cleared).
  double interest_level = 0.0;

  InterestMode interest_mode = InterestMode::kSupportOrConfidence;

  // Lemma 5: drop quantitative items with support > 1/R after pass 1
  // (sound when the user wants greater-than-expected *support*; the paper
  // applies it whenever the user asks for support-and-confidence interest).
  bool interest_item_prune = true;

  // Memory budget for the n-dimensional counting arrays of one pass,
  // accounted cumulatively across super-candidates; once the running total
  // would exceed it, further super-candidates use the R*-tree instead
  // (Section 5.2 heuristic). A grid estimated smaller than its R*-tree is
  // always kept dense — the tree would cost more memory, not less.
  uint64_t counter_memory_budget_bytes = 64ull << 20;

  // Worker threads for the database scans (the pass-1 value-count scan and
  // each support-counting pass) and for the post-counting pipeline
  // (candidate generation, rule generation + decode, and interest
  // evaluation). 1 = the serial path, bit-identical to the single-threaded
  // miner; 0 = one thread per hardware core. Every parallel phase reduces
  // per-worker results in a fixed order (and counts are exact integers), so
  // outputs never depend on this setting.
  size_t num_threads = 1;

  // Worker *processes* for distributed mining over a sharded QBT file
  // (tools/qarm mine --workers=N). The coordinator forks this many workers,
  // assigns each a contiguous range of QBT blocks, and merges their
  // per-shard counts in fixed worker order, so — like num_threads — the
  // mined rules never depend on this setting. 1 (or 0) = the ordinary
  // single-process path. Only the QBT-streamed entry points honour it;
  // it is an execution knob, excluded from the checkpoint fingerprint, so
  // a run checkpointed at one worker count resumes at any other.
  size_t num_workers = 1;

  // Remote worker endpoints ("HOST:PORT", repeatable --worker= on the CLI)
  // for multi-host TCP mining. Non-empty switches the distributed entry
  // point from forked workers to TCP sessions against `qarm worker`
  // servers; num_workers is ignored in that mode (one worker per endpoint,
  // capped by the block count — spare endpoints stay idle as
  // redistribution targets when a worker dies). Execution knob: the mined
  // rules are byte-identical across in-process, forked, and TCP runs.
  std::vector<std::string> worker_endpoints;

  // Per-frame read/write deadline for TCP mining, in milliseconds. Bounds
  // every coordinator-side transport operation so a vanished or
  // partitioned worker surfaces as an IOError (and a reconnect) instead of
  // a hang. Must be positive when worker_endpoints is non-empty.
  uint64_t dist_io_timeout_ms = 30000;

  // Interval between worker liveness heartbeats while a long counting
  // pass runs, in milliseconds; must stay below dist_io_timeout_ms so a
  // healthy-but-slow worker never trips the read deadline. 0 disables
  // heartbeats (not recommended outside tests).
  uint64_t dist_heartbeat_ms = 1000;

  // Connect retry budget per endpoint (attempts, with exponential
  // backoff starting at dist_connect_backoff_ms) for discovery and
  // reconnect after a worker death.
  size_t dist_connect_attempts = 10;
  double dist_connect_backoff_ms = 50.0;

  // Budget for the *extra* per-thread replicas of dense counting grids that
  // a parallel scan allocates (one replica per worker beyond the first).
  // Grids whose replicas do not fit — accounted cumulatively in group
  // order — stay shared across workers and are updated with atomic
  // increments instead, keeping memory bounded at the cost of contention.
  uint64_t parallel_replication_budget_bytes = 32ull << 20;

  // Cap on itemset size (0 = unlimited). Useful to bound exploratory runs.
  size_t max_itemset_size = 0;

  // Upper bound on the rows per block when scanning an *in-memory* table
  // (small tables use smaller blocks so every worker still gets one). QBT
  // files carry their own block size chosen at write time; this option does
  // not re-block them.
  size_t stream_block_rows = 65536;

  // Crash safety: when non-empty, the miner writes a checkpoint (QCP file,
  // see storage/checkpoint_format.h) to this path at pass boundaries and,
  // on start, resumes from it when it is valid and matches this run's
  // fingerprint (same output-affecting options, same data shape). A
  // mismatched, corrupt, or truncated checkpoint is ignored and mining
  // restarts from scratch. The file is deleted after a successful run.
  std::string checkpoint_path;

  // Write a checkpoint after every Nth completed pass (1 = every pass).
  // The final state is always checkpointed on a clean stop regardless.
  size_t checkpoint_every_pass = 1;

  // Incremental (append) mode: on success the checkpoint is NOT deleted —
  // a final state flagged complete is written instead, so the next run over
  // the same file plus appended QBT blocks can mine only the delta (see
  // core/incremental_miner.h). Implies collect_candidate_counts. Requires
  // checkpoint_path. Like the checkpoint settings, this is an execution
  // knob: it never changes the mined rules.
  bool append_mode = false;

  // Record every pass's full per-candidate support counts in the result
  // (and therefore in checkpoints). This is what makes a checkpoint usable
  // as an incremental base — delta counts merge into the stored counts
  // positionally — at the cost of ~4 bytes per candidate in the checkpoint.
  bool collect_candidate_counts = false;

  // Debug/testing: stop cleanly (Status::Cancelled) after checkpointing
  // pass N, simulating a crash at that boundary. 0 = run to completion.
  size_t stop_after_pass = 0;

  // Deterministic I/O fault injection spec (see storage/fault_injection.h
  // for the grammar), applied to the record source for the whole run.
  // Empty = disabled. Testing/chaos-engineering only.
  std::string inject_faults_spec;

  // Cooperative cancellation (the CLI points this at its SIGINT flag).
  // Checked at pass boundaries: when set, the miner writes a final
  // checkpoint (if configured) and returns Status::Cancelled.
  const std::atomic<bool>* cancel_flag = nullptr;

  // Taxonomies over categorical attributes, keyed by attribute name
  // (Section 1.1 / [SA95]): interior nodes become generalized categorical
  // items that may appear in rules alongside leaf values.
  std::vector<std::pair<std::string, Taxonomy>> taxonomies;

  // Upper bound accepted for num_threads; far above any real machine, it
  // exists so a corrupted or hostile thread count cannot exhaust the
  // process with thread stacks.
  static constexpr size_t kMaxThreads = 4096;

  // Upper bound accepted for num_workers; forked processes are far more
  // expensive than threads, so the cap is correspondingly smaller.
  static constexpr size_t kMaxWorkers = 256;

  // Checks every numeric option for range and mutual consistency:
  // non-finite values (NaN/inf from a lenient parser) are rejected, minsup
  // must be in (0,1], minconf in [0,1], max_support in [0,1] and — unless 0
  // — at least minsup, partial_completeness > 1 whenever Equation 2 is in
  // effect (num_intervals_override == 0), interest_level >= 0, and
  // num_threads <= kMaxThreads (and num_workers <= kMaxWorkers). Every
  // entry point that accepts untrusted
  // options (Mine, MineStreamed, the CLI) calls this and propagates the
  // InvalidArgument instead of aborting.
  Status Validate() const;
};

}  // namespace qarm

#endif  // QARM_CORE_OPTIONS_H_
