#include "core/frequent_items.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/macros.h"
#include "common/thread_pool.h"

namespace qarm {

ItemCatalog ItemCatalog::Build(const MappedTable& table,
                               const MinerOptions& options) {
  const MappedTableSource source(
      table, PickBlockRows(table.num_rows(),
                           ResolveNumThreads(options.num_threads),
                           options.stream_block_rows));
  Result<ItemCatalog> catalog = Build(source, options);
  QARM_CHECK(catalog.ok());  // in-memory block reads cannot fail
  return std::move(catalog).value();
}

Result<std::vector<std::vector<uint64_t>>> ItemCatalog::ScanValueCounts(
    const RecordSource& source, size_t num_threads, ScanIoStats* io) {
  const size_t num_attrs = source.num_attributes();
  const size_t num_blocks = source.num_blocks();
  const ScanIoStats io_before = source.io_stats();

  // Per-attribute value counts in one block-streamed scan, sharded across
  // workers when num_threads allows (each worker a contiguous block range).
  // Each worker accumulates into its own grids which are then summed in
  // shard order; integer addition is order-independent, so the counts are
  // identical to the serial scan.
  std::vector<std::vector<uint64_t>> value_counts(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    value_counts[a].assign(source.attribute(a).domain_size(), 0);
  }
  auto scan_blocks = [&](size_t block_begin, size_t block_end,
                         std::vector<std::vector<uint64_t>>& counts)
      -> Status {
    BlockView view;
    for (size_t b = block_begin; b < block_end; ++b) {
      QARM_RETURN_NOT_OK(source.ReadBlock(b, &view));
      const size_t rows = view.num_rows();
      for (size_t a = 0; a < num_attrs; ++a) {
        std::vector<uint64_t>& column_counts = counts[a];
        const int32_t* column = view.column(a);
        const size_t stride = view.stride();
        for (size_t r = 0; r < rows; ++r) {
          const int32_t v = column[r * stride];
          if (v == kMissingValue) continue;
          ++column_counts[static_cast<size_t>(v)];
        }
      }
    }
    return Status::OK();
  };
  const size_t threads =
      std::max<size_t>(1,
                       std::min(ResolveNumThreads(num_threads), num_blocks));
  if (threads == 1) {
    QARM_RETURN_NOT_OK(scan_blocks(0, num_blocks, value_counts));
  } else {
    const std::vector<IndexRange> shards = SplitRange(num_blocks, threads);
    std::vector<std::vector<std::vector<uint64_t>>> partials(shards.size());
    std::vector<Status> statuses(shards.size());
    ThreadPool pool(threads);
    pool.ParallelFor(shards.size(), [&](size_t s) {
      std::vector<std::vector<uint64_t>>& local = partials[s];
      local.resize(num_attrs);
      for (size_t a = 0; a < num_attrs; ++a) {
        local[a].assign(source.attribute(a).domain_size(), 0);
      }
      statuses[s] = scan_blocks(shards[s].begin, shards[s].end, local);
    });
    for (const Status& status : statuses) {
      QARM_RETURN_NOT_OK(status);
    }
    for (const auto& local : partials) {
      for (size_t a = 0; a < num_attrs; ++a) {
        for (size_t v = 0; v < local[a].size(); ++v) {
          value_counts[a][v] += local[a][v];
        }
      }
    }
  }
  if (io != nullptr) *io = source.io_stats() - io_before;
  return value_counts;
}

Result<ItemCatalog> ItemCatalog::Build(const RecordSource& source,
                                       const MinerOptions& options,
                                       ScanIoStats* io) {
  QARM_ASSIGN_OR_RETURN(std::vector<std::vector<uint64_t>> value_counts,
                        ScanValueCounts(source, options.num_threads, io));
  return BuildFromValueCounts(source, options, std::move(value_counts));
}

Result<ItemCatalog> ItemCatalog::BuildFromValueCounts(
    const RecordSource& source, const MinerOptions& options,
    std::vector<std::vector<uint64_t>> value_counts) {
  const size_t num_attrs = source.num_attributes();
  const size_t num_rows = source.num_rows();
  if (value_counts.size() != num_attrs) {
    return Status::InvalidArgument(
        "value counts do not match the source's attribute count");
  }
  for (size_t a = 0; a < num_attrs; ++a) {
    if (value_counts[a].size() != source.attribute(a).domain_size()) {
      return Status::InvalidArgument(
          "value counts do not match an attribute's domain size");
    }
  }
  ItemCatalog catalog;
  catalog.num_records_ = num_rows;
  catalog.value_counts_ = std::move(value_counts);
  catalog.prefix_counts_.resize(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    const auto& counts = catalog.value_counts_[a];
    auto& prefix = catalog.prefix_counts_[a];
    prefix.resize(counts.size());
    uint64_t sum = 0;
    for (size_t v = 0; v < counts.size(); ++v) {
      sum += counts[v];
      prefix[v] = sum;
    }
  }

  uint64_t min_count = static_cast<uint64_t>(
      std::ceil(options.minsup * static_cast<double>(num_rows) - 1e-9));
  if (min_count == 0) min_count = 1;
  const double max_support =
      options.max_support <= 0.0 ? 1.0 : options.max_support;
  const uint64_t max_count = static_cast<uint64_t>(
      std::floor(max_support * static_cast<double>(num_rows) + 1e-9));

  // Lemma 5 cutoff: quantitative items with support > 1/R are pruned.
  const bool prune =
      options.interest_level > 1.0 && options.interest_item_prune;
  const double prune_cutoff =
      prune ? static_cast<double>(num_rows) / options.interest_level : 0.0;

  for (size_t a = 0; a < num_attrs; ++a) {
    const MappedAttribute& attr = source.attribute(a);
    const auto& counts = catalog.value_counts_[a];
    const int32_t domain = static_cast<int32_t>(counts.size());

    if (attr.kind == AttributeKind::kCategorical) {
      // Leaf values, plus interior taxonomy nodes (Section 1.1: a taxonomy
      // implicitly combines categorical values). Multi-leaf nodes observe
      // the max-support cap like quantitative ranges do.
      std::vector<RangeItem> candidates;
      for (int32_t v = 0; v < domain; ++v) {
        candidates.push_back(RangeItem{static_cast<int32_t>(a), v, v});
      }
      for (const Taxonomy::NodeRange& node : attr.taxonomy_ranges) {
        if (node.lo < node.hi) {
          candidates.push_back(
              RangeItem{static_cast<int32_t>(a), node.lo, node.hi});
        }
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
      for (const RangeItem& item : candidates) {
        uint64_t sum = 0;
        for (int32_t v = item.lo; v <= item.hi; ++v) {
          sum += counts[static_cast<size_t>(v)];
        }
        if (sum < min_count) continue;
        if (item.lo < item.hi && sum > max_count) continue;
        catalog.items_.push_back(item);
        catalog.item_counts_.push_back(sum);
      }
      continue;
    }

    // Quantitative: every range [l..u] of adjacent values whose combined
    // support reaches minsup without exceeding max-support; a single value
    // above max-support is still considered (Section 1.2).
    for (int32_t l = 0; l < domain; ++l) {
      uint64_t cum = 0;
      for (int32_t u = l; u < domain; ++u) {
        cum += counts[static_cast<size_t>(u)];
        if (u > l && cum > max_count) break;
        if (cum >= min_count) {
          bool pruned =
              prune && static_cast<double>(cum) > prune_cutoff;
          if (!pruned) {
            catalog.items_.push_back(
                RangeItem{static_cast<int32_t>(a), l, u});
            catalog.item_counts_.push_back(cum);
          } else {
            ++catalog.items_pruned_by_interest_;
          }
        }
        if (cum > max_count) break;  // single value exceeded the cap
      }
    }
  }

  // Items were generated in (attr, lo, hi) order already; verify in debug.
  for (size_t i = 1; i < catalog.items_.size(); ++i) {
    QARM_DCHECK(catalog.items_[i - 1] < catalog.items_[i]);
  }

  // Categorical value -> item id lookup. Taxonomized (ranged) categorical
  // attributes are excluded: their items are ranges, counted as rectangle
  // dimensions rather than via the hash tree.
  catalog.categorical_item_ids_.resize(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    if (source.attribute(a).kind == AttributeKind::kCategorical &&
        !source.attribute(a).ranged()) {
      catalog.categorical_item_ids_[a].assign(
          source.attribute(a).domain_size(), -1);
    }
  }
  for (size_t i = 0; i < catalog.items_.size(); ++i) {
    const RangeItem& item = catalog.items_[i];
    const size_t a = static_cast<size_t>(item.attr);
    if (source.attribute(a).kind == AttributeKind::kCategorical &&
        !source.attribute(a).ranged()) {
      catalog.categorical_item_ids_[a][static_cast<size_t>(item.lo)] =
          static_cast<int32_t>(i);
    }
  }
  return catalog;
}

CheckpointCatalog ItemCatalog::Snapshot() const {
  CheckpointCatalog saved;
  saved.num_records = num_records_;
  saved.items_pruned_by_interest = items_pruned_by_interest_;
  saved.item_words.reserve(items_.size() * 3);
  for (const RangeItem& item : items_) {
    saved.item_words.push_back(item.attr);
    saved.item_words.push_back(item.lo);
    saved.item_words.push_back(item.hi);
  }
  saved.item_counts = item_counts_;
  saved.value_counts = value_counts_;
  return saved;
}

Result<ItemCatalog> ItemCatalog::Restore(const RecordSource& source,
                                         const CheckpointCatalog& saved) {
  const size_t num_attrs = source.num_attributes();
  if (saved.value_counts.size() != num_attrs) {
    return Status::InvalidArgument(
        "checkpoint catalog does not match the source's attribute count");
  }
  for (size_t a = 0; a < num_attrs; ++a) {
    if (saved.value_counts[a].size() != source.attribute(a).domain_size()) {
      return Status::InvalidArgument(
          "checkpoint catalog does not match an attribute's domain size");
    }
  }
  if (saved.item_words.size() != saved.item_counts.size() * 3) {
    return Status::InvalidArgument(
        "checkpoint catalog item words/counts out of sync");
  }
  if (saved.num_records != source.num_rows()) {
    return Status::InvalidArgument(
        "checkpoint catalog does not match the source's row count");
  }

  ItemCatalog catalog;
  catalog.num_records_ = static_cast<size_t>(saved.num_records);
  catalog.items_pruned_by_interest_ =
      static_cast<size_t>(saved.items_pruned_by_interest);
  catalog.value_counts_ = saved.value_counts;

  catalog.items_.reserve(saved.item_counts.size());
  for (size_t i = 0; i < saved.item_counts.size(); ++i) {
    const int32_t attr = saved.item_words[i * 3];
    const int32_t lo = saved.item_words[i * 3 + 1];
    const int32_t hi = saved.item_words[i * 3 + 2];
    if (attr < 0 || static_cast<size_t>(attr) >= num_attrs || lo < 0 ||
        lo > hi ||
        static_cast<size_t>(hi) >=
            source.attribute(static_cast<size_t>(attr)).domain_size()) {
      return Status::InvalidArgument(
          "checkpoint catalog item out of the source's domain");
    }
    catalog.items_.push_back(RangeItem{attr, lo, hi});
    if (i > 0 && !(catalog.items_[i - 1] < catalog.items_[i])) {
      return Status::InvalidArgument("checkpoint catalog items unsorted");
    }
  }
  catalog.item_counts_ = saved.item_counts;

  catalog.prefix_counts_.resize(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    const auto& counts = catalog.value_counts_[a];
    auto& prefix = catalog.prefix_counts_[a];
    prefix.resize(counts.size());
    uint64_t sum = 0;
    for (size_t v = 0; v < counts.size(); ++v) {
      sum += counts[v];
      prefix[v] = sum;
    }
  }

  catalog.categorical_item_ids_.resize(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    if (source.attribute(a).kind == AttributeKind::kCategorical &&
        !source.attribute(a).ranged()) {
      catalog.categorical_item_ids_[a].assign(
          source.attribute(a).domain_size(), -1);
    }
  }
  for (size_t i = 0; i < catalog.items_.size(); ++i) {
    const RangeItem& item = catalog.items_[i];
    const size_t a = static_cast<size_t>(item.attr);
    if (source.attribute(a).kind == AttributeKind::kCategorical &&
        !source.attribute(a).ranged()) {
      catalog.categorical_item_ids_[a][static_cast<size_t>(item.lo)] =
          static_cast<int32_t>(i);
    }
  }
  return catalog;
}

RangeItemset ItemCatalog::Decode(const std::vector<int32_t>& ids) const {
  RangeItemset itemset;
  itemset.reserve(ids.size());
  for (int32_t id : ids) itemset.push_back(item(id));
  return itemset;
}

int32_t ItemCatalog::CategoricalItemId(size_t attr, int32_t value) const {
  const auto& lookup = categorical_item_ids_[attr];
  QARM_DCHECK(!lookup.empty());
  QARM_DCHECK(value >= 0 && static_cast<size_t>(value) < lookup.size());
  return lookup[static_cast<size_t>(value)];
}

uint64_t ItemCatalog::RangeCount(int32_t attr, int32_t lo, int32_t hi) const {
  const auto& prefix = prefix_counts_[static_cast<size_t>(attr)];
  if (prefix.empty()) return 0;
  int32_t max_value = static_cast<int32_t>(prefix.size()) - 1;
  if (lo < 0) lo = 0;
  if (hi > max_value) hi = max_value;
  if (lo > hi) return 0;
  uint64_t upper = prefix[static_cast<size_t>(hi)];
  uint64_t lower = lo == 0 ? 0 : prefix[static_cast<size_t>(lo) - 1];
  return upper - lower;
}

double ItemCatalog::RangeSupport(int32_t attr, int32_t lo, int32_t hi) const {
  if (num_records_ == 0) return 0.0;
  return static_cast<double>(RangeCount(attr, lo, hi)) /
         static_cast<double>(num_records_);
}

}  // namespace qarm
