#include "core/count_kernels.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define QARM_X86_KERNELS 1
#include <immintrin.h>
#else
#define QARM_X86_KERNELS 0
#endif

namespace qarm {
namespace {

// --- Scalar reference implementations. --------------------------------------
// These define the semantics; the vector variants below must (and do, by
// exact integer arithmetic) agree bit for bit.

void FillOnesScalar(uint64_t* mask, size_t n) {
  const size_t words = MaskWords(n);
  for (size_t w = 0; w < words; ++w) mask[w] = ~uint64_t{0};
  if (n % 64 != 0) mask[words - 1] = (uint64_t{1} << (n % 64)) - 1;
}

void AndEqScalar(uint64_t* mask, const int32_t* col, size_t n, int32_t value) {
  for (size_t w = 0; w < MaskWords(n); ++w) {
    uint64_t bits = 0;
    const size_t limit = (w + 1) * 64 <= n ? 64 : n - w * 64;
    for (size_t j = 0; j < limit; ++j) {
      bits |= static_cast<uint64_t>(col[w * 64 + j] == value) << j;
    }
    mask[w] &= bits;
  }
}

void AndNeqScalar(uint64_t* mask, const int32_t* col, size_t n,
                  int32_t value) {
  for (size_t w = 0; w < MaskWords(n); ++w) {
    uint64_t bits = 0;
    const size_t limit = (w + 1) * 64 <= n ? 64 : n - w * 64;
    for (size_t j = 0; j < limit; ++j) {
      bits |= static_cast<uint64_t>(col[w * 64 + j] != value) << j;
    }
    mask[w] &= bits;
  }
}

void AndRangeScalar(uint64_t* mask, const int32_t* col, size_t n, int32_t lo,
                    int32_t hi) {
  for (size_t w = 0; w < MaskWords(n); ++w) {
    uint64_t bits = 0;
    const size_t limit = (w + 1) * 64 <= n ? 64 : n - w * 64;
    for (size_t j = 0; j < limit; ++j) {
      const int32_t v = col[w * 64 + j];
      bits |= static_cast<uint64_t>(lo <= v && v <= hi) << j;
    }
    mask[w] &= bits;
  }
}

uint64_t PopcountScalar(const uint64_t* mask, size_t n) {
  uint64_t total = 0;
  for (size_t w = 0; w < MaskWords(n); ++w) {
    total += static_cast<uint64_t>(__builtin_popcountll(mask[w]));
  }
  return total;
}

void FlatIndexScalar(int32_t* idx, const int32_t* const* cols,
                     const int32_t* strides, size_t dims, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    int32_t sum = 0;
    for (size_t d = 0; d < dims; ++d) {
      // Wrapping arithmetic on purpose: rows that will be masked off may
      // hold kMissingValue and overflow; their indices are never read.
      sum = static_cast<int32_t>(
          static_cast<uint32_t>(sum) +
          static_cast<uint32_t>(cols[d][i]) * static_cast<uint32_t>(strides[d]));
    }
    idx[i] = sum;
  }
}

void AddU32Scalar(uint32_t* dst, const uint32_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] += src[i];
}

#if QARM_X86_KERNELS

// --- SSE4.2: 4 lanes, 16 compare steps per 64-row mask word. ----------------

__attribute__((target("sse4.2"))) void AndEqSse42(uint64_t* mask,
                                                  const int32_t* col, size_t n,
                                                  int32_t value) {
  const __m128i v = _mm_set1_epi32(value);
  const size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) {
    if (mask[w] == 0) continue;
    const int32_t* p = col + w * 64;
    uint64_t bits = 0;
    for (size_t j = 0; j < 16; ++j) {
      const __m128i x =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + j * 4));
      const uint32_t m = static_cast<uint32_t>(
          _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(x, v))));
      bits |= static_cast<uint64_t>(m) << (4 * j);
    }
    mask[w] &= bits;
  }
  if (n % 64 != 0) {
    uint64_t bits = 0;
    for (size_t j = 0; j < n % 64; ++j) {
      bits |= static_cast<uint64_t>(col[full * 64 + j] == value) << j;
    }
    mask[full] &= bits;
  }
}

__attribute__((target("sse4.2"))) void AndNeqSse42(uint64_t* mask,
                                                   const int32_t* col,
                                                   size_t n, int32_t value) {
  const __m128i v = _mm_set1_epi32(value);
  const size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) {
    if (mask[w] == 0) continue;
    const int32_t* p = col + w * 64;
    uint64_t bits = 0;
    for (size_t j = 0; j < 16; ++j) {
      const __m128i x =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + j * 4));
      const uint32_t m = static_cast<uint32_t>(
          _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(x, v))) ^ 0xF);
      bits |= static_cast<uint64_t>(m) << (4 * j);
    }
    mask[w] &= bits;
  }
  if (n % 64 != 0) {
    uint64_t bits = 0;
    for (size_t j = 0; j < n % 64; ++j) {
      bits |= static_cast<uint64_t>(col[full * 64 + j] != value) << j;
    }
    mask[full] &= bits;
  }
}

__attribute__((target("sse4.2"))) void AndRangeSse42(uint64_t* mask,
                                                     const int32_t* col,
                                                     size_t n, int32_t lo,
                                                     int32_t hi) {
  const __m128i vlo = _mm_set1_epi32(lo);
  const __m128i vhi = _mm_set1_epi32(hi);
  const size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) {
    if (mask[w] == 0) continue;
    const int32_t* p = col + w * 64;
    uint64_t bits = 0;
    for (size_t j = 0; j < 16; ++j) {
      const __m128i x =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + j * 4));
      // Out of range iff lo > x or x > hi (signed compares; missing = -1
      // falls below any lo >= 0 automatically).
      const __m128i out =
          _mm_or_si128(_mm_cmpgt_epi32(vlo, x), _mm_cmpgt_epi32(x, vhi));
      const uint32_t m = static_cast<uint32_t>(
          _mm_movemask_ps(_mm_castsi128_ps(out)) ^ 0xF);
      bits |= static_cast<uint64_t>(m) << (4 * j);
    }
    mask[w] &= bits;
  }
  if (n % 64 != 0) {
    uint64_t bits = 0;
    for (size_t j = 0; j < n % 64; ++j) {
      const int32_t v = col[full * 64 + j];
      bits |= static_cast<uint64_t>(lo <= v && v <= hi) << j;
    }
    mask[full] &= bits;
  }
}

// --- AVX2: 8 lanes, 8 compare steps per 64-row mask word. -------------------

__attribute__((target("avx2"))) void AndEqAvx2(uint64_t* mask,
                                               const int32_t* col, size_t n,
                                               int32_t value) {
  const __m256i v = _mm256_set1_epi32(value);
  const size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) {
    if (mask[w] == 0) continue;
    const int32_t* p = col + w * 64;
    uint64_t bits = 0;
    for (size_t j = 0; j < 8; ++j) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + j * 8));
      const uint32_t m = static_cast<uint32_t>(
          _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(x, v))));
      bits |= static_cast<uint64_t>(m) << (8 * j);
    }
    mask[w] &= bits;
  }
  if (n % 64 != 0) {
    uint64_t bits = 0;
    for (size_t j = 0; j < n % 64; ++j) {
      bits |= static_cast<uint64_t>(col[full * 64 + j] == value) << j;
    }
    mask[full] &= bits;
  }
}

__attribute__((target("avx2"))) void AndNeqAvx2(uint64_t* mask,
                                                const int32_t* col, size_t n,
                                                int32_t value) {
  const __m256i v = _mm256_set1_epi32(value);
  const size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) {
    if (mask[w] == 0) continue;
    const int32_t* p = col + w * 64;
    uint64_t bits = 0;
    for (size_t j = 0; j < 8; ++j) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + j * 8));
      const uint32_t m = static_cast<uint32_t>(
          _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(x, v))) ^
          0xFF);
      bits |= static_cast<uint64_t>(m) << (8 * j);
    }
    mask[w] &= bits;
  }
  if (n % 64 != 0) {
    uint64_t bits = 0;
    for (size_t j = 0; j < n % 64; ++j) {
      bits |= static_cast<uint64_t>(col[full * 64 + j] != value) << j;
    }
    mask[full] &= bits;
  }
}

__attribute__((target("avx2"))) void AndRangeAvx2(uint64_t* mask,
                                                  const int32_t* col, size_t n,
                                                  int32_t lo, int32_t hi) {
  const __m256i vlo = _mm256_set1_epi32(lo);
  const __m256i vhi = _mm256_set1_epi32(hi);
  const size_t full = n / 64;
  for (size_t w = 0; w < full; ++w) {
    if (mask[w] == 0) continue;
    const int32_t* p = col + w * 64;
    uint64_t bits = 0;
    for (size_t j = 0; j < 8; ++j) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + j * 8));
      const __m256i out = _mm256_or_si256(_mm256_cmpgt_epi32(vlo, x),
                                          _mm256_cmpgt_epi32(x, vhi));
      const uint32_t m = static_cast<uint32_t>(
          _mm256_movemask_ps(_mm256_castsi256_ps(out)) ^ 0xFF);
      bits |= static_cast<uint64_t>(m) << (8 * j);
    }
    mask[w] &= bits;
  }
  if (n % 64 != 0) {
    uint64_t bits = 0;
    for (size_t j = 0; j < n % 64; ++j) {
      const int32_t v = col[full * 64 + j];
      bits |= static_cast<uint64_t>(lo <= v && v <= hi) << j;
    }
    mask[full] &= bits;
  }
}

__attribute__((target("avx2"))) void FlatIndexAvx2(int32_t* idx,
                                                   const int32_t* const* cols,
                                                   const int32_t* strides,
                                                   size_t dims, size_t n) {
  const size_t vec = n / 8 * 8;
  for (size_t i = 0; i < vec; i += 8) {
    __m256i sum = _mm256_setzero_si256();
    for (size_t d = 0; d < dims; ++d) {
      const __m256i x = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(cols[d] + i));
      sum = _mm256_add_epi32(
          sum, _mm256_mullo_epi32(x, _mm256_set1_epi32(strides[d])));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(idx + i), sum);
  }
  for (size_t i = vec; i < n; ++i) {
    int32_t sum = 0;
    for (size_t d = 0; d < dims; ++d) {
      sum = static_cast<int32_t>(static_cast<uint32_t>(sum) +
                                 static_cast<uint32_t>(cols[d][i]) *
                                     static_cast<uint32_t>(strides[d]));
    }
    idx[i] = sum;
  }
}

__attribute__((target("avx2"))) void AddU32Avx2(uint32_t* dst,
                                                const uint32_t* src,
                                                size_t n) {
  const size_t vec = n / 8 * 8;
  for (size_t i = 0; i < vec; i += 8) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_add_epi32(a, b));
  }
  for (size_t i = vec; i < n; ++i) dst[i] += src[i];
}

#endif  // QARM_X86_KERNELS

constexpr CountKernels kScalarKernels = {
    SimdIsa::kScalar, FillOnesScalar, AndEqScalar,     AndNeqScalar,
    AndRangeScalar,   PopcountScalar, FlatIndexScalar, AddU32Scalar,
};

#if QARM_X86_KERNELS
constexpr CountKernels kSse42Kernels = {
    SimdIsa::kSse42, FillOnesScalar, AndEqSse42,      AndNeqSse42,
    AndRangeSse42,   PopcountScalar, FlatIndexScalar, AddU32Scalar,
};
constexpr CountKernels kAvx2Kernels = {
    SimdIsa::kAvx2, FillOnesScalar, AndEqAvx2,     AndNeqAvx2,
    AndRangeAvx2,   PopcountScalar, FlatIndexAvx2, AddU32Avx2,
};
#endif

}  // namespace

const CountKernels& CountKernels::ForIsa(SimdIsa isa) {
#if QARM_X86_KERNELS
  // Clamp to the CPU so a table is never dispatched above what the machine
  // can execute (ParseIsaName callers already clamp, but belt-and-braces).
  if (static_cast<int>(isa) > static_cast<int>(DetectCpuIsa())) {
    isa = DetectCpuIsa();
  }
  switch (isa) {
    case SimdIsa::kAvx2:
      return kAvx2Kernels;
    case SimdIsa::kSse42:
      return kSse42Kernels;
    case SimdIsa::kScalar:
      break;
  }
#else
  (void)isa;
#endif
  return kScalarKernels;
}

const CountKernels& CountKernels::Active() { return ForIsa(ActiveIsa()); }

}  // namespace qarm
