#include "core/candidate_gen.h"

#include <algorithm>

#include "common/macros.h"

namespace qarm {

bool ItemsetSet::Contains(const int32_t* ids) const {
  if (k_ == 0) return false;
  size_t lo = 0, hi = size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    const int32_t* candidate = itemset(mid);
    int cmp = 0;
    for (size_t i = 0; i < k_; ++i) {
      if (candidate[i] != ids[i]) {
        cmp = candidate[i] < ids[i] ? -1 : 1;
        break;
      }
    }
    if (cmp == 0) return true;
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

ItemsetSet GenerateCandidates(const ItemCatalog& catalog,
                              const ItemsetSet& frequent) {
  const size_t k_minus_1 = frequent.k();
  ItemsetSet candidates(k_minus_1 + 1);
  if (frequent.empty()) return candidates;

  auto attr_of = [&catalog](int32_t id) { return catalog.item(id).attr; };

  // Join phase: runs sharing the first k-2 ids are contiguous because the
  // set is lexicographically sorted.
  const size_t prefix_len = k_minus_1 - 1;
  size_t run_start = 0;
  const size_t n = frequent.size();
  std::vector<int32_t> scratch(k_minus_1 + 1);
  while (run_start < n) {
    size_t run_end = run_start + 1;
    const int32_t* base = frequent.itemset(run_start);
    while (run_end < n &&
           std::equal(base, base + prefix_len, frequent.itemset(run_end))) {
      ++run_end;
    }
    for (size_t i = run_start; i < run_end; ++i) {
      const int32_t last_i = frequent.itemset(i)[k_minus_1 - 1];
      const int32_t attr_i = attr_of(last_i);
      for (size_t j = i + 1; j < run_end; ++j) {
        const int32_t last_j = frequent.itemset(j)[k_minus_1 - 1];
        // Item ids are sorted by attribute, so within the run attributes are
        // non-decreasing; all partners after the first attribute change
        // qualify.
        if (attr_of(last_j) == attr_i) continue;
        std::copy(frequent.itemset(i), frequent.itemset(i) + k_minus_1,
                  scratch.begin());
        scratch[k_minus_1] = last_j;
        candidates.Append(scratch.data());
      }
    }
    run_start = run_end;
  }

  // Prune phase (k >= 3): every (k-1)-subset must be frequent. Dropping the
  // last or second-to-last item reproduces the two join parents, so only
  // subsets skipping an earlier position need checking.
  if (k_minus_1 >= 2) {
    ItemsetSet pruned(k_minus_1 + 1);
    std::vector<int32_t> subset(k_minus_1);
    const size_t k = k_minus_1 + 1;
    for (size_t c = 0; c < candidates.size(); ++c) {
      const int32_t* ids = candidates.itemset(c);
      bool keep = true;
      for (size_t skip = 0; keep && skip + 2 < k; ++skip) {
        size_t out = 0;
        for (size_t i = 0; i < k; ++i) {
          if (i != skip) subset[out++] = ids[i];
        }
        keep = frequent.Contains(subset.data());
      }
      if (keep) pruned.Append(ids);
    }
    return pruned;
  }
  return candidates;
}

}  // namespace qarm
