#include "core/candidate_gen.h"

#include <algorithm>
#include <memory>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace qarm {
namespace {

// Below this many (k-1)-itemsets the join/prune is cheaper than waking a
// pool; the serial path is taken regardless of num_threads.
constexpr size_t kMinParallelItemsets = 256;

// Tasks per worker: more chunks than workers so the pool's dynamic task
// claiming evens out runs of very different sizes (join cost is quadratic
// in the run length).
constexpr size_t kChunksPerThread = 8;

// Appends the join-phase candidates whose *outer* itemset index lies in
// [first_i, last_i) to `out`: itemset i joins every partner j in
// (i, run_end[i]) whose last attribute differs. The serial join emits
// candidates in (i ascending, j ascending) order, so sharding by outer
// index and concatenating the chunk outputs in chunk order reproduces the
// serial candidate order exactly — even when all of L_{k-1} is one run
// (the C2 join, whose shared prefix is empty).
void JoinOuterRange(const ItemCatalog& catalog, const ItemsetSet& frequent,
                    const std::vector<size_t>& run_end, size_t first_i,
                    size_t last_i, ItemsetSet* out) {
  const size_t k_minus_1 = frequent.k();
  std::vector<int32_t> scratch(k_minus_1 + 1);
  for (size_t i = first_i; i < last_i; ++i) {
    const int32_t last_i_id = frequent.itemset(i)[k_minus_1 - 1];
    const int32_t attr_i = catalog.item(last_i_id).attr;
    const size_t end = run_end[i];
    for (size_t j = i + 1; j < end; ++j) {
      const int32_t last_j = frequent.itemset(j)[k_minus_1 - 1];
      // Item ids are sorted by attribute, so within the run attributes are
      // non-decreasing; all partners after the first attribute change
      // qualify.
      if (catalog.item(last_j).attr == attr_i) continue;
      std::copy(frequent.itemset(i), frequent.itemset(i) + k_minus_1,
                scratch.begin());
      scratch[k_minus_1] = last_j;
      out->Append(scratch.data());
    }
  }
}

// keep[c] = 1 iff every (k-1)-subset of candidate c that skips an *earlier*
// position is frequent (dropping the last or second-to-last item reproduces
// the two join parents, which are frequent by construction).
void PruneRange(const ItemsetSet& frequent, const ItemsetSet& candidates,
                size_t begin, size_t end, std::vector<uint8_t>* keep) {
  const size_t k = candidates.k();
  std::vector<int32_t> subset(k - 1);
  for (size_t c = begin; c < end; ++c) {
    const int32_t* ids = candidates.itemset(c);
    bool ok = true;
    for (size_t skip = 0; ok && skip + 2 < k; ++skip) {
      size_t out = 0;
      for (size_t i = 0; i < k; ++i) {
        if (i != skip) subset[out++] = ids[i];
      }
      ok = frequent.Contains(subset.data());
    }
    (*keep)[c] = ok ? 1 : 0;
  }
}

}  // namespace

void ItemsetSet::AppendAll(const ItemsetSet& other) {
  QARM_CHECK_EQ(k_, other.k_);
  flat_.insert(flat_.end(), other.flat_.begin(), other.flat_.end());
}

bool ItemsetSet::Contains(const int32_t* ids) const {
  if (k_ == 0) return false;
  size_t lo = 0, hi = size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    const int32_t* candidate = itemset(mid);
    int cmp = 0;
    for (size_t i = 0; i < k_; ++i) {
      if (candidate[i] != ids[i]) {
        cmp = candidate[i] < ids[i] ? -1 : 1;
        break;
      }
    }
    if (cmp == 0) return true;
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

ItemsetSet GenerateCandidates(const ItemCatalog& catalog,
                              const ItemsetSet& frequent, size_t num_threads,
                              CandidateGenStats* stats) {
  const size_t k_minus_1 = frequent.k();
  ItemsetSet candidates(k_minus_1 + 1);
  CandidateGenStats local_stats;
  Timer total_timer;
  if (frequent.empty()) {
    if (stats != nullptr) *stats = local_stats;
    return candidates;
  }

  const size_t n = frequent.size();
  const size_t threads =
      n >= kMinParallelItemsets ? ResolveNumThreads(num_threads) : 1;

  // Join phase: runs sharing the first k-2 ids are contiguous because the
  // set is lexicographically sorted. Run boundaries are found in one cheap
  // serial sweep (run_end[i] = end of the run containing itemset i); the
  // quadratic join work is sharded by outer itemset index.
  Timer phase_timer;
  const size_t prefix_len = k_minus_1 - 1;
  std::vector<size_t> run_end(n);
  {
    size_t run_start = 0;
    while (run_start < n) {
      const int32_t* base = frequent.itemset(run_start);
      size_t end = run_start + 1;
      while (end < n &&
             std::equal(base, base + prefix_len, frequent.itemset(end))) {
        ++end;
      }
      for (size_t i = run_start; i < end; ++i) run_end[i] = end;
      run_start = end;
    }
  }

  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
    local_stats.threads_used = threads;
  }

  if (pool == nullptr) {
    JoinOuterRange(catalog, frequent, run_end, 0, n, &candidates);
  } else {
    // One ItemsetSet per chunk, concatenated in chunk order: identical to
    // the serial output no matter which worker ran which chunk.
    const std::vector<IndexRange> chunks =
        SplitRange(n, threads * kChunksPerThread);
    std::vector<ItemsetSet> partial(chunks.size(), ItemsetSet(k_minus_1 + 1));
    pool->ParallelFor(chunks.size(), [&](size_t chunk) {
      JoinOuterRange(catalog, frequent, run_end, chunks[chunk].begin,
                     chunks[chunk].end, &partial[chunk]);
    });
    size_t total = 0;
    for (const ItemsetSet& p : partial) total += p.size();
    candidates.Reserve(total);
    for (const ItemsetSet& p : partial) candidates.AppendAll(p);
  }
  local_stats.join_candidates = candidates.size();
  local_stats.peak_materialized = candidates.size();
  local_stats.join_seconds = phase_timer.ElapsedSeconds();
  phase_timer.Reset();

  // Prune phase (k >= 3): every (k-1)-subset must be frequent. Each worker
  // marks keep flags over its own candidate range; survivors are collected
  // in index order, so the result is order-identical to the serial prune.
  if (k_minus_1 >= 2 && !candidates.empty()) {
    std::vector<uint8_t> keep(candidates.size(), 0);
    if (pool == nullptr || candidates.size() < kMinParallelItemsets) {
      PruneRange(frequent, candidates, 0, candidates.size(), &keep);
    } else {
      const std::vector<IndexRange> chunks =
          SplitRange(candidates.size(), threads * kChunksPerThread);
      pool->ParallelFor(chunks.size(), [&](size_t chunk) {
        PruneRange(frequent, candidates, chunks[chunk].begin,
                   chunks[chunk].end, &keep);
      });
    }
    ItemsetSet pruned(k_minus_1 + 1);
    size_t survivors = 0;
    for (uint8_t flag : keep) survivors += flag;
    pruned.Reserve(survivors);
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (keep[c]) pruned.Append(candidates.itemset(c));
    }
    candidates = std::move(pruned);
  }
  local_stats.prune_seconds = phase_timer.ElapsedSeconds();
  local_stats.seconds = total_timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local_stats;
  return candidates;
}

ImplicitPairStream::ImplicitPairStream(const ItemCatalog& catalog,
                                       size_t chunk_rows)
    : chunk_rows_(chunk_rows == 0 ? 1 : chunk_rows) {
  const size_t n = catalog.num_items();
  partner_begin_.resize(n);
  prefix_.resize(n + 1);
  // Item ids are sorted by attribute; one sweep finds each attribute's end,
  // which is every member's first valid partner.
  size_t run_start = 0;
  while (run_start < n) {
    const int32_t attr = catalog.item(static_cast<int32_t>(run_start)).attr;
    size_t end = run_start + 1;
    while (end < n &&
           catalog.item(static_cast<int32_t>(end)).attr == attr) {
      ++end;
    }
    for (size_t i = run_start; i < end; ++i) {
      partner_begin_[i] = static_cast<int32_t>(end);
    }
    run_start = end;
  }
  prefix_[0] = 0;
  for (size_t i = 0; i < n; ++i) {
    prefix_[i + 1] =
        prefix_[i] + (n - static_cast<size_t>(partner_begin_[i]));
  }
  total_ = static_cast<size_t>(prefix_[n]);
}

void ImplicitPairStream::ForEachChunk(
    const std::function<void(size_t, const ItemsetSet&)>& fn) const {
  const size_t n = partner_begin_.size();
  ItemsetSet chunk(2);
  chunk.Reserve(std::min(chunk_rows_, total_));
  size_t first = 0;
  int32_t pair[2];
  for (size_t i = 0; i < n; ++i) {
    pair[0] = static_cast<int32_t>(i);
    for (int32_t j = partner_begin_[i]; j < static_cast<int32_t>(n); ++j) {
      pair[1] = j;
      chunk.Append(pair);
      if (chunk.size() == chunk_rows_) {
        fn(first, chunk);
        first += chunk.size();
        chunk.Clear();
      }
    }
  }
  if (!chunk.empty()) fn(first, chunk);
}

void ImplicitPairStream::Get(size_t c, int32_t* ids) const {
  // Pairs with outer item i occupy [prefix_[i], prefix_[i+1]); upper_bound
  // lands past the owning range (skipping items with no partners, whose
  // ranges are empty).
  const auto it =
      std::upper_bound(prefix_.begin(), prefix_.end(), static_cast<uint64_t>(c));
  const size_t i = static_cast<size_t>(it - prefix_.begin()) - 1;
  ids[0] = static_cast<int32_t>(i);
  ids[1] = partner_begin_[i] + static_cast<int32_t>(c - prefix_[i]);
}

}  // namespace qarm
