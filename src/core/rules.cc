#include "core/rules.h"

#include <algorithm>

#include "common/string_util.h"

namespace qarm {

RangeItemset QuantRule::UnionItemset() const {
  RangeItemset all = antecedent;
  all.insert(all.end(), consequent.begin(), consequent.end());
  std::sort(all.begin(), all.end());
  return all;
}

std::vector<QuantRule> GenerateQuantRules(
    const std::vector<FrequentItemset>& itemsets, const ItemCatalog& catalog,
    size_t num_records, double minconf) {
  std::vector<BooleanRule> raw = GenerateRules(itemsets, num_records, minconf);
  std::vector<QuantRule> rules;
  rules.reserve(raw.size());
  for (const BooleanRule& r : raw) {
    QuantRule rule;
    rule.antecedent = catalog.Decode(r.antecedent);
    rule.consequent = catalog.Decode(r.consequent);
    rule.count = r.count;
    rule.support = r.support;
    rule.confidence = r.confidence;
    rules.push_back(std::move(rule));
  }
  return rules;
}

std::string RuleToString(const QuantRule& rule, const MappedTable& table) {
  return StrFormat("%s => %s (support %.1f%%, confidence %.1f%%)",
                   ItemsetToString(rule.antecedent, table).c_str(),
                   ItemsetToString(rule.consequent, table).c_str(),
                   rule.support * 100.0, rule.confidence * 100.0);
}

}  // namespace qarm
