#include "core/rules.h"

#include <algorithm>

#include "common/string_util.h"
#include "common/thread_pool.h"

namespace qarm {
namespace {

// Below this many rules the decode loop is cheaper than waking a pool.
constexpr size_t kMinParallelRules = 512;

}  // namespace

RangeItemset QuantRule::UnionItemset() const {
  RangeItemset all = antecedent;
  all.insert(all.end(), consequent.begin(), consequent.end());
  std::sort(all.begin(), all.end());
  return all;
}

std::vector<QuantRule> GenerateQuantRules(
    const std::vector<FrequentItemset>& itemsets, const ItemCatalog& catalog,
    size_t num_records, double minconf, size_t num_threads,
    size_t* threads_used) {
  std::vector<BooleanRule> raw =
      GenerateRules(itemsets, num_records, minconf, num_threads, threads_used);
  std::vector<QuantRule> rules(raw.size());
  // The decode of each rule is independent and index-addressed, so sharding
  // the index range changes nothing about the output.
  auto decode_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const BooleanRule& r = raw[i];
      QuantRule& rule = rules[i];
      rule.antecedent = catalog.Decode(r.antecedent);
      rule.consequent = catalog.Decode(r.consequent);
      rule.count = r.count;
      rule.support = r.support;
      rule.confidence = r.confidence;
    }
  };
  const size_t threads =
      raw.size() >= kMinParallelRules ? ResolveNumThreads(num_threads) : 1;
  if (threads <= 1) {
    decode_range(0, raw.size());
  } else {
    const std::vector<IndexRange> shards = SplitRange(raw.size(), threads);
    ThreadPool pool(threads);
    pool.ParallelFor(shards.size(), [&](size_t s) {
      decode_range(shards[s].begin, shards[s].end);
    });
    if (threads_used != nullptr) *threads_used = std::max(*threads_used, threads);
  }
  return rules;
}

std::string RuleToString(const QuantRule& rule, const MappedTable& table) {
  return StrFormat("%s => %s (support %.1f%%, confidence %.1f%%)",
                   ItemsetToString(rule.antecedent, table).c_str(),
                   ItemsetToString(rule.consequent, table).c_str(),
                   rule.support * 100.0, rule.confidence * 100.0);
}

}  // namespace qarm
