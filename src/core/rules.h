// Quantitative association rules (step 4 of the decomposition) and their
// rendering.
#ifndef QARM_CORE_RULES_H_
#define QARM_CORE_RULES_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/frequent_items.h"
#include "core/item.h"
#include "mining/rulegen.h"

namespace qarm {

// A rule X => Y over quantitative/categorical items.
struct QuantRule {
  RangeItemset antecedent;
  RangeItemset consequent;
  uint64_t count = 0;  // records supporting X ∪ Y
  double support = 0.0;
  double confidence = 0.0;
  // Set by the interest evaluator (true when no interest level is given).
  bool interesting = true;

  // X ∪ Y, attribute-sorted.
  RangeItemset UnionItemset() const;
};

// Generates all rules with confidence >= minconf from the frequent itemsets
// (reusing ap-genrules over item ids) and decodes them into ranges. With
// `num_threads > 1` (0 = all hardware cores) both the per-itemset rule
// generation and the range decode fan out across a worker pool; the rules
// are identical, in the same order, at any thread count. `threads_used`,
// when non-null, receives the parallelism actually applied.
std::vector<QuantRule> GenerateQuantRules(
    const std::vector<FrequentItemset>& itemsets, const ItemCatalog& catalog,
    size_t num_records, double minconf, size_t num_threads = 1,
    size_t* threads_used = nullptr);

// "<Age: 20..29> and <Married: Yes> => <NumCars: 2> (support 40%,
//  confidence 100%)".
std::string RuleToString(const QuantRule& rule, const MappedTable& table);

}  // namespace qarm

#endif  // QARM_CORE_RULES_H_
