#include "core/expectation.h"

#include "common/macros.h"

namespace qarm {
namespace {

// Π_i Pr(z_i) / Pr(ẑ_i) over paired itemsets.
double MarginalRatio(const RangeItemset& z, const RangeItemset& z_hat,
                     const ItemCatalog& catalog) {
  QARM_CHECK_EQ(z.size(), z_hat.size());
  double ratio = 1.0;
  for (size_t i = 0; i < z.size(); ++i) {
    QARM_CHECK_EQ(z[i].attr, z_hat[i].attr);
    QARM_DCHECK(z_hat[i].Generalizes(z[i]));
    double numer = catalog.RangeSupport(z[i].attr, z[i].lo, z[i].hi);
    double denom =
        catalog.RangeSupport(z_hat[i].attr, z_hat[i].lo, z_hat[i].hi);
    if (denom <= 0.0) return 0.0;  // empty generalization: no expectation
    ratio *= numer / denom;
  }
  return ratio;
}

}  // namespace

double ExpectedSupport(const RangeItemset& z, const RangeItemset& z_hat,
                       double sup_z_hat, const ItemCatalog& catalog) {
  return MarginalRatio(z, z_hat, catalog) * sup_z_hat;
}

double ExpectedConfidence(const RangeItemset& y, const RangeItemset& y_hat,
                          double conf_hat, const ItemCatalog& catalog) {
  return MarginalRatio(y, y_hat, catalog) * conf_hat;
}

}  // namespace qarm
