// Incremental mining over an appended QBT file (`qarm mine --append`).
//
// A completed append-mode run leaves its final state behind as a QCP
// checkpoint flagged complete: the item catalog's raw value counts and
// every pass's FULL per-candidate support counts, stamped with the block
// range of the file it covered. When rows are later appended (qarm append
// — new blocks only, existing bytes never rewritten), the next run does
// not have to rescan the base:
//
//   * pass 1: value counts are per-attribute per-value sums, so scanning
//     only the appended blocks and adding the checkpointed counts yields
//     exactly the full-file counts; the item catalog is rebuilt from the
//     merged counts.
//   * passes k >= 2: candidate generation is deterministic, so as long as
//     the frequent-itemset frontier matches the base run's, pass k's
//     candidates are the base run's candidates in the same order — each
//     pass counts only the appended blocks and adds the checkpointed
//     per-candidate counts positionally. The moment the frontier diverges
//     (new rows made an itemset cross the support threshold in either
//     direction), later passes fall back to scanning the whole file.
//
// Every merged count is an exact integer, so the mined rules are
// bit-identical to a from-scratch mine of the grown file — incremental
// mode is purely an execution strategy. When the checkpoint cannot serve
// as a base (missing, different options, base blocks no longer intact,
// catalog changed shape), the run degrades to a full mine with a logged
// reason, and still writes a fresh complete checkpoint for next time.
#ifndef QARM_CORE_INCREMENTAL_MINER_H_
#define QARM_CORE_INCREMENTAL_MINER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "core/miner.h"
#include "core/options.h"

namespace qarm {

// How MineIncremental decided to run, surfaced for logs/stats/tests.
struct IncrementalDecision {
  // True: the base checkpoint was valid and the counting passes scanned
  // (at most) the appended blocks. False: full mine (see `reason`), or an
  // ordinary mid-run resume (`resumed`).
  bool incremental = false;
  // The run resumed a *mid-run* checkpoint of the grown file (e.g. a
  // killed incremental run) instead of using it as an incremental base.
  bool resumed = false;
  // Human-readable reason for a non-incremental run; empty for Route A.
  std::string reason;
  uint64_t base_blocks = 0;
  uint64_t delta_blocks = 0;
  uint64_t base_rows = 0;
  uint64_t delta_rows = 0;
  // Counting passes whose counts merged base + delta vs passes that had
  // to rescan the full file (frontier divergence or a pass past the base
  // run's last level).
  size_t passes_merged = 0;
  size_t passes_rescanned = 0;
};

// Full-mine delegate for the fallback routes when options.num_workers > 1:
// core cannot depend on the distributed layer, so the caller (the CLI)
// provides "mine this file from scratch / resume it, distributed" and
// MineIncremental invokes it with the append-mode options. Ignored when
// num_workers <= 1 (the in-process path runs directly).
using FullMineFn =
    std::function<Result<MiningResult>(const MinerOptions& options)>;

// Mines `qbt_path` incrementally against the checkpoint at
// options.checkpoint_path (required). Forces append_mode (the run always
// ends by writing a fresh complete checkpoint covering the whole file).
// Incremental delta passes always run in-process; options.num_workers > 1
// only affects the fallback full-mine routes (via `full_mine`).
Result<MiningResult> MineIncremental(const std::string& qbt_path,
                                     const MinerOptions& options,
                                     IncrementalDecision* decision = nullptr,
                                     const FullMineFn& full_mine = nullptr);

}  // namespace qarm

#endif  // QARM_CORE_INCREMENTAL_MINER_H_
