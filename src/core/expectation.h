// The Section 4 expected-value formulas. For Z with generalization Ẑ:
//
//   E_Ẑ[Pr(Z)]   = Π_i Pr(z_i)/Pr(ẑ_i) × Pr(Ẑ)
//   E_Ŷ|X̂[Pr(Y|X)] = Π_i Pr(y_i)/Pr(ŷ_i) × Pr(Ŷ|X̂)
//
// where the per-item probabilities are single-attribute marginals, served by
// the item catalog's prefix sums.
#ifndef QARM_CORE_EXPECTATION_H_
#define QARM_CORE_EXPECTATION_H_

#include "core/frequent_items.h"
#include "core/item.h"

namespace qarm {

// Expected support of `z` given its generalization `z_hat` with support
// `sup_z_hat` (fractions). Requires attributes(z) == attributes(z_hat) and
// each range of z contained in z_hat's.
double ExpectedSupport(const RangeItemset& z, const RangeItemset& z_hat,
                       double sup_z_hat, const ItemCatalog& catalog);

// Expected confidence of a rule with consequent `y`, given the ancestor
// rule's consequent `y_hat` and confidence `conf_hat`.
double ExpectedConfidence(const RangeItemset& y, const RangeItemset& y_hat,
                          double conf_hat, const ItemCatalog& catalog);

}  // namespace qarm

#endif  // QARM_CORE_EXPECTATION_H_
