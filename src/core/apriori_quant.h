// The level-wise frequent-itemset driver (Section 5): L_1 from the item
// catalog, then candidate generation + one counting pass per level until no
// frequent itemsets remain.
#ifndef QARM_CORE_APRIORI_QUANT_H_
#define QARM_CORE_APRIORI_QUANT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/candidate_gen.h"
#include "core/frequent_items.h"
#include "core/options.h"
#include "core/support_counting.h"
#include "mining/apriori.h"
#include "partition/mapped_table.h"

namespace qarm {

// Per-pass observability.
struct PassStats {
  size_t k = 0;
  size_t num_candidates = 0;
  size_t num_frequent = 0;
  CandidateGenStats candgen;
  CountingStats counting;
  double seconds = 0.0;
};

// All frequent itemsets over item ids, plus the per-pass stats.
struct FrequentItemsetResult {
  // Every frequent itemset of every size; `items` holds *item ids* into the
  // catalog (reusing the boolean FrequentItemset container so rule
  // generation is shared with the [AS94] implementation).
  std::vector<FrequentItemset> itemsets;
  std::vector<PassStats> passes;
};

// Runs the level-wise algorithm, streaming every counting pass over
// `source`. `catalog` must have been built from the same records with the
// same options. Fails only when a block read fails (e.g. a QBT checksum
// mismatch).
Result<FrequentItemsetResult> MineFrequentItemsets(
    const RecordSource& source, const ItemCatalog& catalog,
    const MinerOptions& options);

// Same over an in-memory table (reads cannot fail).
FrequentItemsetResult MineFrequentItemsets(const MappedTable& table,
                                           const ItemCatalog& catalog,
                                           const MinerOptions& options);

}  // namespace qarm

#endif  // QARM_CORE_APRIORI_QUANT_H_
