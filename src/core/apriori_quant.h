// The level-wise frequent-itemset driver (Section 5): L_1 from the item
// catalog, then candidate generation + one counting pass per level until no
// frequent itemsets remain.
#ifndef QARM_CORE_APRIORI_QUANT_H_
#define QARM_CORE_APRIORI_QUANT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/candidate_gen.h"
#include "core/frequent_items.h"
#include "core/options.h"
#include "core/support_counting.h"
#include "mining/apriori.h"
#include "partition/mapped_table.h"

namespace qarm {

// Per-pass observability.
struct PassStats {
  size_t k = 0;
  size_t num_candidates = 0;
  size_t num_frequent = 0;
  CandidateGenStats candgen;
  CountingStats counting;
  double seconds = 0.0;
};

// All frequent itemsets over item ids, plus the per-pass stats.
struct FrequentItemsetResult {
  // Every frequent itemset of every size; `items` holds *item ids* into the
  // catalog (reusing the boolean FrequentItemset container so rule
  // generation is shared with the [AS94] implementation).
  std::vector<FrequentItemset> itemsets;
  std::vector<PassStats> passes;
  // With MinerOptions::collect_candidate_counts: one vector per completed
  // pass (parallel to `passes`), holding the FULL per-candidate counts of
  // that pass in generation order (empty for passes that counted nothing —
  // pass 1 and the terminating empty pass). Incremental mining checkpoints
  // these so a later run can merge delta counts positionally. Empty when
  // collection is off.
  std::vector<std::vector<uint32_t>> candidate_counts;
};

// Called after every completed pass with the result accumulated so far
// (the last entry of `passes` is the pass that just finished). This is the
// checkpoint hook: a non-OK return stops the run and propagates —
// Cancelled for deliberate stops (SIGINT, a crash-test stop point), so
// callers can distinguish a clean interruption from a failure.
using AfterPassFn = std::function<Status(const FrequentItemsetResult&)>;

// Replaces the per-pass CountSupports call. Distributed mining hooks in
// here: the coordinator broadcasts the pass's candidates to its workers,
// each counts its own block range (with CountSupports, unchanged), and the
// merged per-candidate sums come back through this function. Must return
// counts parallel to `candidates`; `stats` receives the pass's counting
// stats (whatever breakdown the delegate can attribute).
using CountSupportsFn = std::function<Result<std::vector<uint32_t>>(
    const CandidateStream& candidates, CountingStats* stats)>;

// Runs the level-wise algorithm, streaming every counting pass over
// `source`. `catalog` must have been built from the same records with the
// same options. Fails only when a block read fails (e.g. a QBT checksum
// mismatch) or `after_pass` asks to stop.
//
// When `resume_from` is non-null it holds the itemsets and passes of a
// prior run's completed levels (restored from a checkpoint): those passes
// are skipped, the frontier is rebuilt from the last completed level, and
// mining continues at the next one. The counts are exact and candidate
// generation is deterministic, so a resumed run's remaining passes — and
// therefore its rules — are bit-identical to an uninterrupted run's.
Result<FrequentItemsetResult> MineFrequentItemsets(
    const RecordSource& source, const ItemCatalog& catalog,
    const MinerOptions& options,
    const FrequentItemsetResult* resume_from = nullptr,
    const AfterPassFn& after_pass = nullptr,
    const CountSupportsFn& count_supports = nullptr);

// Same over an in-memory table (reads cannot fail).
FrequentItemsetResult MineFrequentItemsets(const MappedTable& table,
                                           const ItemCatalog& catalog,
                                           const MinerOptions& options);

}  // namespace qarm

#endif  // QARM_CORE_APRIORI_QUANT_H_
