// Bridges the miner's structures and the storage-layer checkpoint
// (storage/checkpoint_format.h): computes the run fingerprint that decides
// whether a checkpoint belongs to this run, converts ItemCatalog +
// FrequentItemsetResult to the serializable CheckpointState, and restores
// them on resume.
#ifndef QARM_CORE_MINING_CHECKPOINT_H_
#define QARM_CORE_MINING_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "core/apriori_quant.h"
#include "core/frequent_items.h"
#include "core/options.h"
#include "storage/checkpoint_format.h"
#include "storage/record_source.h"

namespace qarm {

// Checkpoint activity of one mining run (surfaced in MiningStats and the
// report JSON).
struct CheckpointRunStats {
  bool enabled = false;
  // This run resumed from a checkpoint, skipping `resumed_passes` passes.
  bool resumed = false;
  size_t resumed_passes = 0;
  size_t checkpoints_written = 0;
  uint64_t last_checkpoint_bytes = 0;
  double write_seconds = 0.0;
};

// Hash of everything that determines the mining *output*: the
// output-affecting options (support/confidence thresholds, partitioning,
// interest settings, itemset-size cap) and the source's shape (row count
// plus every attribute's kind, domain, and taxonomy ranges). Deliberately
// excludes execution knobs — num_threads, block sizes, memory budgets,
// retry/fault settings — so a run can resume under a different thread
// count or budget and still produce bit-identical rules.
uint64_t ComputeMiningFingerprint(const MinerOptions& options,
                                  const RecordSource& source);

// The row-count-independent part of the fingerprint: the same
// output-affecting options and attribute shapes, but NOT the number of
// rows. An appended QBT file keeps this value while changing the full
// fingerprint, so the incremental miner uses it to recognise a complete
// checkpoint of an earlier (shorter) version of the same file mined with
// the same settings.
uint64_t ComputeMiningOptionsFingerprint(const MinerOptions& options,
                                         const RecordSource& source);

// Packages the catalog and the completed passes as a CheckpointState ready
// for WriteCheckpoint.
CheckpointState BuildCheckpointState(uint64_t fingerprint,
                                     const RecordSource& source,
                                     const ItemCatalog& catalog,
                                     const FrequentItemsetResult& progress);

// Rebuilds the completed passes recorded in `state` as a
// FrequentItemsetResult to hand MineFrequentItemsets as `resume_from`.
// `catalog` must already be restored (ItemCatalog::Restore) from the same
// state; item ids are validated against it. Timings in the reconstructed
// PassStats are zero — the rules of a resumed run are bit-identical, its
// timing breakdown is not.
Status RestoreCheckpointProgress(const CheckpointState& state,
                                 const ItemCatalog& catalog,
                                 FrequentItemsetResult* progress);

}  // namespace qarm

#endif  // QARM_CORE_MINING_CHECKPOINT_H_
