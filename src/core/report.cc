#include "core/report.h"

#include "common/cpu_dispatch.h"
#include "common/string_util.h"

namespace qarm {

std::string JsonEscape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

std::string ItemToJson(const RangeItem& item, const MappedTable& mapped) {
  const MappedAttribute& attr =
      mapped.attribute(static_cast<size_t>(item.attr));
  std::string out = "{";
  out += "\"attribute\":" + JsonEscape(attr.name);
  out += ",\"kind\":";
  out += attr.kind == AttributeKind::kQuantitative ? "\"quantitative\""
                                                   : "\"categorical\"";
  if (attr.kind == AttributeKind::kQuantitative) {
    Interval raw = attr.RawInterval(item.lo, item.hi);
    out += ",\"lo\":" + FormatDouble(raw.lo);
    out += ",\"hi\":" + FormatDouble(raw.hi);
  } else {
    out += ",\"value\":" + JsonEscape(attr.DecodeRange(item.lo, item.hi));
  }
  out += ",\"display\":" + JsonEscape(attr.DecodeRange(item.lo, item.hi));
  out += "}";
  return out;
}

std::string SideToJson(const RangeItemset& side, const MappedTable& mapped) {
  std::string out = "[";
  for (size_t i = 0; i < side.size(); ++i) {
    if (i > 0) out += ',';
    out += ItemToJson(side[i], mapped);
  }
  out += "]";
  return out;
}

// CSV field quoting: wrap in double quotes when the field contains a comma
// or a quote; embedded quotes are doubled.
std::string CsvField(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string RuleToJson(const QuantRule& rule, const MappedTable& mapped) {
  std::string out = "{";
  out += "\"antecedent\":" + SideToJson(rule.antecedent, mapped);
  out += ",\"consequent\":" + SideToJson(rule.consequent, mapped);
  out += StrFormat(",\"support\":%.6f,\"confidence\":%.6f,\"count\":%llu",
                   rule.support, rule.confidence,
                   static_cast<unsigned long long>(rule.count));
  out += ",\"interesting\":";
  out += rule.interesting ? "true" : "false";
  out += "}";
  return out;
}

std::string StatsToJson(const MiningStats& stats) {
  std::string out = "{";
  out += StrFormat(
      "\"num_records\":%zu,\"num_threads\":%zu,\"num_frequent_items\":%zu,"
      "\"items_pruned_by_interest\":%zu,"
      "\"achieved_partial_completeness\":%.4f,"
      "\"num_rules\":%zu,\"num_interesting_rules\":%zu,"
      "\"total_seconds\":%.6f",
      stats.num_records, stats.num_threads, stats.num_frequent_items,
      stats.items_pruned_by_interest, stats.achieved_partial_completeness,
      stats.num_rules, stats.num_interesting_rules, stats.total_seconds);
  out += StrFormat(
      ",\"map_seconds\":%.6f,\"pass1_seconds\":%.6f,"
      "\"itemset_seconds\":%.6f,\"candgen_seconds\":%.6f,"
      "\"rulegen_seconds\":%.6f,\"interest_seconds\":%.6f",
      stats.map_seconds, stats.pass1_seconds, stats.itemset_seconds,
      stats.candgen_seconds, stats.rulegen_seconds, stats.interest_seconds);
  out += StrFormat(
      ",\"candgen_threads_used\":%zu,\"rulegen_threads_used\":%zu,"
      "\"interest_threads_used\":%zu",
      stats.candgen_threads_used, stats.rulegen_threads_used,
      stats.interest_threads_used);
  out += StrFormat(
      ",\"pass1_io\":{\"blocks_read\":%llu,\"bytes_read\":%llu,"
      "\"checksum_seconds\":%.6f,\"read_retries\":%llu,"
      "\"faults_injected\":%llu}",
      static_cast<unsigned long long>(stats.pass1_io.blocks_read),
      static_cast<unsigned long long>(stats.pass1_io.bytes_read),
      stats.pass1_io.checksum_seconds,
      static_cast<unsigned long long>(stats.pass1_io.read_retries),
      static_cast<unsigned long long>(stats.pass1_io.faults_injected));
  out += StrFormat(
      ",\"checkpoint\":{\"enabled\":%s,\"resumed\":%s,"
      "\"resumed_passes\":%zu,\"checkpoints_written\":%zu,"
      "\"last_checkpoint_bytes\":%llu,\"write_seconds\":%.6f}",
      stats.checkpoint.enabled ? "true" : "false",
      stats.checkpoint.resumed ? "true" : "false",
      stats.checkpoint.resumed_passes, stats.checkpoint.checkpoints_written,
      static_cast<unsigned long long>(stats.checkpoint.last_checkpoint_bytes),
      stats.checkpoint.write_seconds);
  out += ",\"passes\":[";
  for (size_t i = 0; i < stats.passes.size(); ++i) {
    const PassStats& pass = stats.passes[i];
    const CountingStats& counting = pass.counting;
    if (i > 0) out += ',';
    out += StrFormat(
        "{\"k\":%zu,\"candidates\":%zu,\"frequent\":%zu,"
        "\"candgen\":{\"threads_used\":%zu,\"join_candidates\":%zu,"
        "\"peak_materialized\":%zu,"
        "\"join_seconds\":%.6f,\"prune_seconds\":%.6f,\"seconds\":%.6f},"
        "\"super_candidates\":%zu,\"array_counters\":%zu,"
        "\"tree_counters\":%zu,\"direct_counters\":%zu,"
        "\"degraded_counters\":%zu,"
        "\"atomic_shared_counters\":%zu,\"threads_used\":%zu,"
        "\"isa\":\"%s\",\"kernel_groups\":%zu,\"hash_groups\":%zu,"
        "\"counter_bytes\":%llu,\"replicated_bytes\":%llu,"
        "\"group_seconds\":%.6f,\"build_seconds\":%.6f,"
        "\"scan_seconds\":%.6f,\"reduce_seconds\":%.6f,"
        "\"io\":{\"blocks_read\":%llu,\"bytes_read\":%llu,"
        "\"checksum_seconds\":%.6f,\"read_retries\":%llu,"
        "\"faults_injected\":%llu},"
        "\"seconds\":%.6f}",
        pass.k, pass.num_candidates, pass.num_frequent,
        pass.candgen.threads_used, pass.candgen.join_candidates,
        pass.candgen.peak_materialized,
        pass.candgen.join_seconds, pass.candgen.prune_seconds,
        pass.candgen.seconds,
        counting.num_super_candidates, counting.num_array_counters,
        counting.num_tree_counters, counting.num_direct,
        counting.num_degraded,
        counting.num_atomic_shared, counting.threads_used,
        IsaName(counting.isa), counting.num_kernel_groups,
        counting.num_hash_groups,
        static_cast<unsigned long long>(counting.counter_bytes),
        static_cast<unsigned long long>(counting.replicated_bytes),
        counting.group_seconds, counting.build_seconds,
        counting.scan_seconds, counting.reduce_seconds,
        static_cast<unsigned long long>(counting.io.blocks_read),
        static_cast<unsigned long long>(counting.io.bytes_read),
        counting.io.checksum_seconds,
        static_cast<unsigned long long>(counting.io.read_retries),
        static_cast<unsigned long long>(counting.io.faults_injected),
        pass.seconds);
  }
  out += "]";
  if (stats.dist.num_workers > 0) {
    out += StrFormat(
        ",\"distributed\":{\"num_workers\":%zu,\"workers_respawned\":%zu,"
        "\"passes\":[",
        stats.dist.num_workers, stats.dist.workers_respawned);
    for (size_t i = 0; i < stats.dist.passes.size(); ++i) {
      const DistPassStats& pass = stats.dist.passes[i];
      if (i > 0) out += ',';
      out += StrFormat(
          "{\"k\":%zu,\"bytes_sent\":%llu,\"bytes_received\":%llu,"
          "\"exchange_seconds\":%.6f,\"merge_seconds\":%.6f}",
          pass.k, static_cast<unsigned long long>(pass.bytes_sent),
          static_cast<unsigned long long>(pass.bytes_received),
          pass.exchange_seconds, pass.merge_seconds);
    }
    out += "]";
    if (!stats.dist.workers.empty()) {
      out += ",\"workers\":[";
      for (size_t i = 0; i < stats.dist.workers.size(); ++i) {
        const DistWorkerStats& worker = stats.dist.workers[i];
        if (i > 0) out += ',';
        out += StrFormat(
            "{\"worker_id\":%u,\"endpoint\":\"%s\",\"respawns\":%zu,"
            "\"reconnects\":%zu,\"redistributed\":%zu,\"heartbeats\":%zu,"
            "\"heartbeat_timeouts\":%zu,\"frames_retried\":%zu,"
            "\"bytes_sent\":%llu,\"bytes_received\":%llu}",
            worker.worker_id, worker.endpoint.c_str(), worker.respawns,
            worker.reconnects, worker.redistributed, worker.heartbeats,
            worker.heartbeat_timeouts, worker.frames_retried,
            static_cast<unsigned long long>(worker.bytes_sent),
            static_cast<unsigned long long>(worker.bytes_received));
      }
      out += "]";
    }
    out += "}";
  }
  out += "}";
  return out;
}

std::string MiningResultToJson(const MiningResult& result,
                               bool interesting_only) {
  std::string out = "{";
  out += "\"stats\":" + StatsToJson(result.stats);
  out += ",\"rules\":[";
  bool first = true;
  for (const QuantRule& rule : result.rules) {
    if (interesting_only && !rule.interesting) continue;
    if (!first) out += ',';
    first = false;
    out += RuleToJson(rule, result.mapped);
  }
  out += "]}";
  return out;
}

std::string RulesToCsv(const std::vector<QuantRule>& rules,
                       const MappedTable& mapped) {
  std::string out = "antecedent,consequent,support,confidence,count,interesting\n";
  for (const QuantRule& rule : rules) {
    out += CsvField(ItemsetToString(rule.antecedent, mapped));
    out += ',';
    out += CsvField(ItemsetToString(rule.consequent, mapped));
    out += StrFormat(",%.6f,%.6f,%llu,%s\n", rule.support, rule.confidence,
                     static_cast<unsigned long long>(rule.count),
                     rule.interesting ? "true" : "false");
  }
  return out;
}

}  // namespace qarm
