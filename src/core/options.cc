#include "core/options.h"

#include <cmath>

#include "common/string_util.h"
#include "storage/fault_injection.h"

namespace qarm {

Status MinerOptions::Validate() const {
  // The finiteness checks come first: NaN compares false against every
  // range bound, so "minsup <= 0 || minsup > 1" alone would wave NaN
  // through and let it reach Equation 2 arithmetic.
  if (!std::isfinite(minsup) || minsup <= 0.0 || minsup > 1.0) {
    return Status::InvalidArgument(
        StrFormat("minsup must be in (0,1], got %g", minsup));
  }
  if (!std::isfinite(minconf) || minconf < 0.0 || minconf > 1.0) {
    return Status::InvalidArgument(
        StrFormat("minconf must be in [0,1], got %g", minconf));
  }
  if (!std::isfinite(max_support) || max_support < 0.0 ||
      max_support > 1.0) {
    return Status::InvalidArgument(
        StrFormat("max_support must be in [0,1], got %g", max_support));
  }
  if (max_support > 0.0 && max_support < minsup) {
    return Status::InvalidArgument(StrFormat(
        "max_support (%g) must be at least minsup (%g)", max_support,
        minsup));
  }
  if (!std::isfinite(partial_completeness) ||
      (num_intervals_override == 0 && partial_completeness <= 1.0)) {
    return Status::InvalidArgument(
        StrFormat("partial completeness level must be > 1, got %g",
                  partial_completeness));
  }
  if (!std::isfinite(interest_level) || interest_level < 0.0) {
    return Status::InvalidArgument(
        StrFormat("interest level must be >= 0, got %g", interest_level));
  }
  if (num_threads > kMaxThreads) {
    return Status::InvalidArgument(
        StrFormat("num_threads must be at most %zu, got %zu", kMaxThreads,
                  num_threads));
  }
  if (num_workers > kMaxWorkers) {
    return Status::InvalidArgument(
        StrFormat("num_workers must be at most %zu, got %zu", kMaxWorkers,
                  num_workers));
  }
  if (!worker_endpoints.empty()) {
    if (worker_endpoints.size() > kMaxWorkers) {
      return Status::InvalidArgument(StrFormat(
          "at most %zu worker endpoints are supported, got %zu", kMaxWorkers,
          worker_endpoints.size()));
    }
    if (num_workers > 1) {
      return Status::InvalidArgument(
          "--workers (forked) and --worker=HOST:PORT (TCP) are mutually "
          "exclusive; the endpoint list already fixes the worker count");
    }
    if (dist_io_timeout_ms == 0) {
      return Status::InvalidArgument(
          "dist_io_timeout_ms must be positive for TCP mining — an "
          "unbounded read can hang on a partitioned worker");
    }
    if (dist_heartbeat_ms >= dist_io_timeout_ms) {
      return Status::InvalidArgument(StrFormat(
          "dist_heartbeat_ms (%llu) must be below dist_io_timeout_ms "
          "(%llu), or a healthy worker trips the read deadline mid-pass",
          static_cast<unsigned long long>(dist_heartbeat_ms),
          static_cast<unsigned long long>(dist_io_timeout_ms)));
    }
    if (dist_connect_attempts == 0) {
      return Status::InvalidArgument(
          "dist_connect_attempts must be >= 1");
    }
    if (!std::isfinite(dist_connect_backoff_ms) ||
        dist_connect_backoff_ms < 0.0) {
      return Status::InvalidArgument(StrFormat(
          "dist_connect_backoff_ms must be finite and >= 0, got %g",
          dist_connect_backoff_ms));
    }
  }
  if (!checkpoint_path.empty()) {
    if (checkpoint_every_pass == 0) {
      return Status::InvalidArgument(
          "checkpoint_every_pass must be >= 1 when a checkpoint path is "
          "set");
    }
    if (checkpoint_path.back() == '/') {
      return Status::InvalidArgument(
          "checkpoint path must name a file, not a directory: '" +
          checkpoint_path + "'");
    }
  } else if (append_mode) {
    return Status::InvalidArgument(
        "append mode requires a checkpoint path (the completed run's "
        "checkpoint is the incremental base)");
  }
  if (!inject_faults_spec.empty()) {
    // Surface a malformed spec here, at options time, rather than as a
    // mysterious failure mid-pass.
    QARM_RETURN_NOT_OK(ParseFaultSpec(inject_faults_spec).status());
  }
  return Status::OK();
}

}  // namespace qarm
