#include "core/support_counting.h"

#include <memory>
#include <unordered_map>

#include "common/macros.h"
#include "index/hash_tree.h"
#include "index/ndim_array.h"
#include "index/rstar_tree.h"

namespace qarm {
namespace {

struct VecHash {
  size_t operator()(const std::vector<int32_t>& v) const {
    // FNV-1a over the words.
    uint64_t h = 1469598103934665603ULL;
    for (int32_t x : v) {
      h ^= static_cast<uint32_t>(x);
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

struct SuperCandidate {
  std::vector<int32_t> cat_item_ids;  // sorted item ids (categorical part)
  std::vector<int32_t> quant_attrs;   // sorted attribute indices
  std::vector<uint32_t> members;      // candidate indices
  std::unique_ptr<NDimArray> array;
  std::unique_ptr<RStarTree> tree;
  std::vector<uint32_t> tree_counts;  // parallel to members (tree mode)
  uint64_t direct_count = 0;          // purely categorical
};

}  // namespace

std::vector<uint32_t> CountSupports(const MappedTable& table,
                                    const ItemCatalog& catalog,
                                    const ItemsetSet& candidates,
                                    const MinerOptions& options,
                                    CountingStats* stats) {
  const size_t num_candidates = candidates.size();
  const size_t k = candidates.k();
  std::vector<uint32_t> counts(num_candidates, 0);
  if (num_candidates == 0) return counts;

  // "Ranged" attributes (quantitative, or categorical under a taxonomy)
  // become dimensions of the super-candidate rectangles; plain categorical
  // items are matched through the hash tree.
  auto is_ranged = [&table](int32_t attr) {
    return table.attribute(static_cast<size_t>(attr)).ranged();
  };

  // --- Group candidates into super-candidates. ---
  // Key: [quantitative attrs..., -1, categorical item ids...]. Categorical
  // items pin both attribute and value, exactly the paper's grouping.
  std::unordered_map<std::vector<int32_t>, size_t, VecHash> group_index;
  std::vector<SuperCandidate> groups;
  std::vector<int32_t> key;
  for (size_t c = 0; c < num_candidates; ++c) {
    const int32_t* ids = candidates.itemset(c);
    key.clear();
    for (size_t i = 0; i < k; ++i) {
      const RangeItem& item = catalog.item(ids[i]);
      if (is_ranged(item.attr)) key.push_back(item.attr);
    }
    key.push_back(-1);
    for (size_t i = 0; i < k; ++i) {
      const RangeItem& item = catalog.item(ids[i]);
      if (!is_ranged(item.attr)) key.push_back(ids[i]);
    }
    auto [it, inserted] = group_index.emplace(key, groups.size());
    if (inserted) {
      SuperCandidate sc;
      size_t sep = 0;
      while (key[sep] != -1) ++sep;
      sc.quant_attrs.assign(key.begin(), key.begin() + sep);
      sc.cat_item_ids.assign(key.begin() + sep + 1, key.end());
      groups.push_back(std::move(sc));
    }
    groups[it->second].members.push_back(static_cast<uint32_t>(c));
  }

  if (stats != nullptr) {
    *stats = CountingStats{};
    stats->num_super_candidates = groups.size();
  }

  // --- Build a counting structure per super-candidate. ---
  for (SuperCandidate& sc : groups) {
    if (sc.quant_attrs.empty()) {
      QARM_CHECK_EQ(sc.members.size(), 1u);  // identical itemsets are unique
      if (stats != nullptr) ++stats->num_direct;
      continue;
    }
    QARM_CHECK_LE(sc.quant_attrs.size(), kRStarMaxDims);
    std::vector<int32_t> dim_sizes;
    dim_sizes.reserve(sc.quant_attrs.size());
    for (int32_t attr : sc.quant_attrs) {
      dim_sizes.push_back(static_cast<int32_t>(
          table.attribute(static_cast<size_t>(attr)).domain_size()));
    }
    const uint64_t array_bytes = NDimArray::EstimateBytes(dim_sizes);
    const uint64_t tree_bytes =
        RStarTree::EstimateBytes(sc.members.size(), dim_sizes.size());
    const bool use_array =
        array_bytes <= options.counter_memory_budget_bytes ||
        array_bytes <= tree_bytes;
    if (use_array) {
      sc.array = std::make_unique<NDimArray>(dim_sizes);
      if (stats != nullptr) ++stats->num_array_counters;
    } else {
      sc.tree = std::make_unique<RStarTree>(sc.quant_attrs.size());
      sc.tree_counts.assign(sc.members.size(), 0);
      for (size_t m = 0; m < sc.members.size(); ++m) {
        const int32_t* ids = candidates.itemset(sc.members[m]);
        RStarRect rect;
        size_t d = 0;
        for (size_t i = 0; i < k; ++i) {
          const RangeItem& item = catalog.item(ids[i]);
          if (!is_ranged(item.attr)) continue;
          rect.lo[d] = static_cast<double>(item.lo);
          rect.hi[d] = static_cast<double>(item.hi);
          ++d;
        }
        sc.tree->Insert(rect, static_cast<int32_t>(m));
      }
      if (stats != nullptr) ++stats->num_tree_counters;
    }
  }

  // --- Hash tree over the categorical parts. ---
  HashTree hash_tree(/*leaf_capacity=*/16, /*fanout=*/64);
  for (size_t g = 0; g < groups.size(); ++g) {
    hash_tree.Insert(groups[g].cat_item_ids, static_cast<int32_t>(g));
  }

  // --- The pass over the database. ---
  const size_t num_attrs = table.num_attributes();
  std::vector<int32_t> cat_transaction;
  cat_transaction.reserve(num_attrs);
  int32_t point[kRStarMaxDims];
  double dpoint[kRStarMaxDims];

  for (size_t r = 0; r < table.num_rows(); ++r) {
    const int32_t* row = table.row(r);
    cat_transaction.clear();
    for (size_t a = 0; a < num_attrs; ++a) {
      const MappedAttribute& attr = table.attribute(a);
      if (attr.kind != AttributeKind::kCategorical || attr.ranged()) continue;
      if (row[a] == kMissingValue) continue;
      int32_t id = catalog.CategoricalItemId(a, row[a]);
      if (id >= 0) cat_transaction.push_back(id);
    }
    hash_tree.ForEachSubset(cat_transaction, [&](int32_t g) {
      SuperCandidate& sc = groups[static_cast<size_t>(g)];
      const size_t dims = sc.quant_attrs.size();
      if (dims == 0) {
        ++sc.direct_count;
        return;
      }
      for (size_t d = 0; d < dims; ++d) {
        point[d] = row[sc.quant_attrs[d]];
        // A record lacking any of the dimensions supports no candidate in
        // this super-candidate.
        if (point[d] == kMissingValue) return;
      }
      if (sc.array != nullptr) {
        sc.array->Increment(point);
      } else {
        for (size_t d = 0; d < dims; ++d) {
          dpoint[d] = static_cast<double>(point[d]);
        }
        sc.tree->ForEachContaining(dpoint, [&sc](int32_t m) {
          ++sc.tree_counts[static_cast<size_t>(m)];
        });
      }
    });
  }

  // --- Collect per-candidate counts. ---
  IntRect rect;
  for (SuperCandidate& sc : groups) {
    if (sc.quant_attrs.empty()) {
      counts[sc.members[0]] = static_cast<uint32_t>(sc.direct_count);
      continue;
    }
    if (sc.tree != nullptr) {
      for (size_t m = 0; m < sc.members.size(); ++m) {
        counts[sc.members[m]] = sc.tree_counts[m];
      }
      continue;
    }
    sc.array->BuildPrefixSums();
    const size_t dims = sc.quant_attrs.size();
    rect.lo.resize(dims);
    rect.hi.resize(dims);
    for (uint32_t member : sc.members) {
      const int32_t* ids = candidates.itemset(member);
      size_t d = 0;
      for (size_t i = 0; i < k; ++i) {
        const RangeItem& item = catalog.item(ids[i]);
        if (!is_ranged(item.attr)) continue;
        rect.lo[d] = item.lo;
        rect.hi[d] = item.hi;
        ++d;
      }
      counts[member] = static_cast<uint32_t>(sc.array->CountRect(rect));
    }
    sc.array.reset();  // release the grid before the next group collects
  }
  return counts;
}

}  // namespace qarm
