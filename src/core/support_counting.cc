#include "core/support_counting.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/macros.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "index/hash_tree.h"
#include "index/ndim_array.h"
#include "index/rstar_tree.h"

namespace qarm {
namespace {

struct SuperCandidate {
  std::vector<int32_t> cat_item_ids;  // sorted item ids (categorical part)
  std::vector<int32_t> quant_attrs;   // sorted attribute indices
  std::vector<uint32_t> members;      // candidate indices
  std::unique_ptr<NDimArray> array;
  std::unique_ptr<RStarTree> tree;
  // Parallel to members; used by both the tree mode and the degraded
  // direct-scan mode below.
  std::vector<uint32_t> tree_counts;
  uint64_t direct_count = 0;          // purely categorical
  // Degraded mode (counter budget exhausted): no counting structure at
  // all — each record is tested against every member's rectangle, stored
  // flat here as lo/hi pairs per dimension.
  bool degraded_scan = false;
  std::vector<int32_t> member_rects;
  // Parallel scan: grid shared across workers, updated atomically (its
  // per-thread replicas would not fit the replication budget).
  bool atomic_shared = false;
};

// Thread-local accumulators of one scan worker. Worker 0 writes directly
// into the groups' own structures; workers 1..T-1 fill these and are
// reduced in afterwards, so the final counts are identical to a serial
// scan (integer addition is order-independent).
struct WorkerCounters {
  std::vector<std::unique_ptr<NDimArray>> arrays;   // per group, or null
  std::vector<std::vector<uint32_t>> tree_counts;   // per group
  std::vector<uint64_t> direct;                     // per group
  HashTree::SubsetScratch scratch;
};

}  // namespace

size_t GroupKeyHash::operator()(const std::vector<int32_t>& v) const {
  // The shared FNV-1a+splitmix64 of common/hash.h; the finalizer matters
  // here because short keys of small integers (attr indices, item ids)
  // collide structurally under an unordered_map's bucket mask otherwise.
  return static_cast<size_t>(HashInt32Words(v.data(), v.size()));
}

std::vector<uint32_t> CountSupports(const MappedTable& table,
                                    const ItemCatalog& catalog,
                                    const ItemsetSet& candidates,
                                    const MinerOptions& options,
                                    CountingStats* stats) {
  const MappedTableSource source(
      table, PickBlockRows(table.num_rows(),
                           ResolveNumThreads(options.num_threads),
                           options.stream_block_rows));
  Result<std::vector<uint32_t>> counts =
      CountSupports(source, catalog, candidates, options, stats);
  QARM_CHECK(counts.ok());  // in-memory block reads cannot fail
  return std::move(counts).value();
}

Result<std::vector<uint32_t>> CountSupports(const RecordSource& source,
                                            const ItemCatalog& catalog,
                                            const ItemsetSet& candidates,
                                            const MinerOptions& options,
                                            CountingStats* stats) {
  const size_t num_candidates = candidates.size();
  const size_t k = candidates.k();
  std::vector<uint32_t> counts(num_candidates, 0);
  if (num_candidates == 0) return counts;

  CountingStats local_stats;
  Timer phase_timer;
  const ScanIoStats io_before = source.io_stats();

  // "Ranged" attributes (quantitative, or categorical under a taxonomy)
  // become dimensions of the super-candidate rectangles; plain categorical
  // items are matched through the hash tree.
  auto is_ranged = [&source](int32_t attr) {
    return source.attribute(static_cast<size_t>(attr)).ranged();
  };

  // --- Group candidates into super-candidates. ---
  // Key: [quantitative attrs..., -1, categorical item ids...]. Categorical
  // items pin both attribute and value, exactly the paper's grouping.
  std::unordered_map<std::vector<int32_t>, size_t, GroupKeyHash> group_index;
  std::vector<SuperCandidate> groups;
  std::vector<int32_t> key;
  for (size_t c = 0; c < num_candidates; ++c) {
    const int32_t* ids = candidates.itemset(c);
    key.clear();
    for (size_t i = 0; i < k; ++i) {
      const RangeItem& item = catalog.item(ids[i]);
      if (is_ranged(item.attr)) key.push_back(item.attr);
    }
    key.push_back(-1);
    for (size_t i = 0; i < k; ++i) {
      const RangeItem& item = catalog.item(ids[i]);
      if (!is_ranged(item.attr)) key.push_back(ids[i]);
    }
    auto [it, inserted] = group_index.emplace(key, groups.size());
    if (inserted) {
      SuperCandidate sc;
      size_t sep = 0;
      while (key[sep] != -1) ++sep;
      sc.quant_attrs.assign(key.begin(), key.begin() + sep);
      sc.cat_item_ids.assign(key.begin() + sep + 1, key.end());
      groups.push_back(std::move(sc));
    }
    groups[it->second].members.push_back(static_cast<uint32_t>(c));
  }
  local_stats.num_super_candidates = groups.size();
  local_stats.group_seconds = phase_timer.ElapsedSeconds();
  phase_timer.Reset();

  // The scan parallelism: never more shards than blocks (in-memory sources
  // pick their block size so that small tables still feed every worker).
  const size_t threads_used =
      std::max<size_t>(1, std::min(ResolveNumThreads(options.num_threads),
                                   source.num_blocks()));
  local_stats.threads_used = threads_used;

  // --- Build a counting structure per super-candidate. ---
  // Dense grids are budgeted cumulatively: `array_bytes_total` tracks every
  // grid of this pass against counter_memory_budget_bytes, so total counter
  // memory stays bounded no matter how many super-candidates a pass has.
  uint64_t array_bytes_total = 0;
  uint64_t tree_bytes_total = 0;
  uint64_t replicated_bytes_total = 0;
  for (SuperCandidate& sc : groups) {
    if (sc.quant_attrs.empty()) {
      QARM_CHECK_EQ(sc.members.size(), 1u);  // identical itemsets are unique
      ++local_stats.num_direct;
      continue;
    }
    QARM_CHECK_LE(sc.quant_attrs.size(), kRStarMaxDims);
    std::vector<int32_t> dim_sizes;
    dim_sizes.reserve(sc.quant_attrs.size());
    for (int32_t attr : sc.quant_attrs) {
      dim_sizes.push_back(static_cast<int32_t>(
          source.attribute(static_cast<size_t>(attr)).domain_size()));
    }
    const uint64_t array_bytes = NDimArray::EstimateBytes(dim_sizes);
    const uint64_t tree_bytes =
        RStarTree::EstimateBytes(sc.members.size(), dim_sizes.size());
    const bool fits_budget =
        array_bytes <= options.counter_memory_budget_bytes &&
        array_bytes_total <=
            options.counter_memory_budget_bytes - array_bytes;
    const bool use_array = fits_budget || array_bytes <= tree_bytes;
    if (use_array) {
      sc.array = std::make_unique<NDimArray>(dim_sizes);
      array_bytes_total += array_bytes;
      local_stats.counter_bytes += array_bytes;
      ++local_stats.num_array_counters;
      if (threads_used > 1) {
        // Replicate the grid per extra worker if the replicas fit the
        // (cumulative) replication budget; otherwise share it and count
        // with atomic increments.
        const uint64_t extra_workers = threads_used - 1;
        const bool replicas_fit =
            array_bytes <=
                options.parallel_replication_budget_bytes / extra_workers &&
            replicated_bytes_total <=
                options.parallel_replication_budget_bytes -
                    array_bytes * extra_workers;
        if (replicas_fit) {
          replicated_bytes_total += array_bytes * extra_workers;
        } else {
          sc.atomic_shared = true;
          ++local_stats.num_atomic_shared;
        }
      }
    } else {
      // Trees are budgeted cumulatively too, as a high-water mark: a tree
      // is admitted while the running tree total is still within budget
      // (so a pass always gets at least one), and once the total crosses
      // it the remaining super-candidates degrade to a structure-free
      // linear scan of their member rectangles — much slower per record
      // but near-zero memory, so the pass always completes.
      const bool tree_fits =
          tree_bytes_total <= options.counter_memory_budget_bytes;
      sc.tree_counts.assign(sc.members.size(), 0);
      if (tree_fits) {
        sc.tree = std::make_unique<RStarTree>(sc.quant_attrs.size());
      } else {
        sc.degraded_scan = true;
        sc.member_rects.reserve(sc.members.size() * dim_sizes.size() * 2);
        ++local_stats.num_degraded;
      }
      for (size_t m = 0; m < sc.members.size(); ++m) {
        const int32_t* ids = candidates.itemset(sc.members[m]);
        RStarRect rect;
        size_t d = 0;
        for (size_t i = 0; i < k; ++i) {
          const RangeItem& item = catalog.item(ids[i]);
          if (!is_ranged(item.attr)) continue;
          if (sc.degraded_scan) {
            sc.member_rects.push_back(item.lo);
            sc.member_rects.push_back(item.hi);
          } else {
            rect.lo[d] = static_cast<double>(item.lo);
            rect.hi[d] = static_cast<double>(item.hi);
          }
          ++d;
        }
        if (!sc.degraded_scan) {
          sc.tree->Insert(rect, static_cast<int32_t>(m));
        }
      }
      if (tree_fits) {
        tree_bytes_total += tree_bytes;
        local_stats.counter_bytes += tree_bytes;
        ++local_stats.num_tree_counters;
      }
    }
  }
  local_stats.replicated_bytes = replicated_bytes_total;
  if (local_stats.num_degraded > 0) {
    QARM_LOG(Warning) << "counter memory budget ("
                      << options.counter_memory_budget_bytes
                      << " bytes) exhausted: " << local_stats.num_degraded
                      << " of " << groups.size()
                      << " super-candidates degrade to direct-scan "
                         "counting this pass";
  }

  // --- Hash tree over the categorical parts. ---
  // Built once here; the scan only probes it (ForEachSubset with per-worker
  // scratch), which is mutation-free and safe to run concurrently.
  HashTree hash_tree(/*leaf_capacity=*/16, /*fanout=*/64);
  for (size_t g = 0; g < groups.size(); ++g) {
    hash_tree.Insert(groups[g].cat_item_ids, static_cast<int32_t>(g));
  }
  local_stats.build_seconds = phase_timer.ElapsedSeconds();
  phase_timer.Reset();

  // --- The pass over the database, sharded across workers. ---
  // Each worker streams a contiguous *block* range through its own
  // BlockView, so memory stays bounded by the blocks in flight no matter
  // how large the source is. `local == nullptr` means the worker owns the
  // groups' primary structures (worker 0, and the whole serial path);
  // otherwise increments go to the worker's own replicas. Grids flagged
  // atomic_shared are written by every worker via relaxed atomic adds.
  const size_t num_attrs = source.num_attributes();
  auto scan_blocks = [&](size_t block_begin, size_t block_end,
                         WorkerCounters* local,
                         HashTree::SubsetScratch* scratch) -> Status {
    std::vector<int32_t> cat_transaction;
    cat_transaction.reserve(num_attrs);
    int32_t point[kRStarMaxDims];
    double dpoint[kRStarMaxDims];
    BlockView view;

    auto visit = [&](int32_t g, size_t r) {
      SuperCandidate& sc = groups[static_cast<size_t>(g)];
      const size_t dims = sc.quant_attrs.size();
      if (dims == 0) {
        if (local != nullptr) {
          ++local->direct[static_cast<size_t>(g)];
        } else {
          ++sc.direct_count;
        }
        return;
      }
      for (size_t d = 0; d < dims; ++d) {
        point[d] = view.value(r, static_cast<size_t>(sc.quant_attrs[d]));
        // A record lacking any of the dimensions supports no candidate in
        // this super-candidate.
        if (point[d] == kMissingValue) return;
      }
      if (sc.array != nullptr) {
        if (sc.atomic_shared) {
          sc.array->AtomicIncrement(point);
        } else if (local != nullptr) {
          local->arrays[static_cast<size_t>(g)]->Increment(point);
        } else {
          sc.array->Increment(point);
        }
      } else if (sc.tree != nullptr) {
        for (size_t d = 0; d < dims; ++d) {
          dpoint[d] = static_cast<double>(point[d]);
        }
        std::vector<uint32_t>& tree_counts =
            local != nullptr ? local->tree_counts[static_cast<size_t>(g)]
                             : sc.tree_counts;
        sc.tree->ForEachContaining(dpoint, [&tree_counts](int32_t m) {
          ++tree_counts[static_cast<size_t>(m)];
        });
      } else {
        // Degraded mode: test the point against every member rectangle.
        std::vector<uint32_t>& member_counts =
            local != nullptr ? local->tree_counts[static_cast<size_t>(g)]
                             : sc.tree_counts;
        const int32_t* rects = sc.member_rects.data();
        const size_t num_members = sc.members.size();
        for (size_t m = 0; m < num_members; ++m) {
          const int32_t* rect = rects + m * dims * 2;
          bool inside = true;
          for (size_t d = 0; d < dims; ++d) {
            if (point[d] < rect[2 * d] || point[d] > rect[2 * d + 1]) {
              inside = false;
              break;
            }
          }
          if (inside) ++member_counts[m];
        }
      }
    };

    for (size_t b = block_begin; b < block_end; ++b) {
      QARM_RETURN_NOT_OK(source.ReadBlock(b, &view));
      const size_t block_rows = view.num_rows();
      for (size_t r = 0; r < block_rows; ++r) {
        cat_transaction.clear();
        for (size_t a = 0; a < num_attrs; ++a) {
          const MappedAttribute& attr = source.attribute(a);
          if (attr.kind != AttributeKind::kCategorical || attr.ranged()) {
            continue;
          }
          const int32_t v = view.value(r, a);
          if (v == kMissingValue) continue;
          int32_t id = catalog.CategoricalItemId(a, v);
          if (id >= 0) cat_transaction.push_back(id);
        }
        auto on_group = [&](int32_t g) { visit(g, r); };
        if (scratch != nullptr) {
          hash_tree.ForEachSubset(cat_transaction, on_group, scratch);
        } else {
          hash_tree.ForEachSubset(cat_transaction, on_group);
        }
      }
    }
    return Status::OK();
  };

  std::vector<WorkerCounters> workers;
  if (threads_used == 1) {
    QARM_RETURN_NOT_OK(scan_blocks(0, source.num_blocks(),
                                   /*local=*/nullptr, /*scratch=*/nullptr));
  } else {
    workers.resize(threads_used);
    const std::vector<IndexRange> shards =
        SplitRange(source.num_blocks(), threads_used);
    std::vector<Status> statuses(shards.size());
    ThreadPool pool(threads_used);
    pool.ParallelFor(shards.size(), [&](size_t w) {
      WorkerCounters& wc = workers[w];
      if (w > 0) {
        // Allocate the replicas on the worker itself (first-touch locality).
        wc.direct.assign(groups.size(), 0);
        wc.tree_counts.resize(groups.size());
        wc.arrays.resize(groups.size());
        for (size_t g = 0; g < groups.size(); ++g) {
          const SuperCandidate& sc = groups[g];
          if (sc.tree != nullptr || sc.degraded_scan) {
            wc.tree_counts[g].assign(sc.members.size(), 0);
          } else if (sc.array != nullptr && !sc.atomic_shared) {
            wc.arrays[g] = std::make_unique<NDimArray>(sc.array->dim_sizes());
          }
        }
      }
      statuses[w] = scan_blocks(shards[w].begin, shards[w].end,
                                w == 0 ? nullptr : &wc, &wc.scratch);
    });
    for (const Status& status : statuses) {
      QARM_RETURN_NOT_OK(status);
    }
  }
  local_stats.scan_seconds = phase_timer.ElapsedSeconds();
  phase_timer.Reset();

  // --- Reduce worker counters into the groups. ---
  for (size_t w = 1; w < workers.size(); ++w) {
    WorkerCounters& wc = workers[w];
    for (size_t g = 0; g < groups.size(); ++g) {
      SuperCandidate& sc = groups[g];
      sc.direct_count += wc.direct[g];
      if (sc.tree != nullptr || sc.degraded_scan) {
        for (size_t m = 0; m < sc.tree_counts.size(); ++m) {
          sc.tree_counts[m] += wc.tree_counts[g][m];
        }
      } else if (wc.arrays[g] != nullptr) {
        sc.array->AddFrom(*wc.arrays[g]);
        wc.arrays[g].reset();
      }
    }
  }
  workers.clear();

  // --- Collect per-candidate counts. ---
  IntRect rect;
  for (SuperCandidate& sc : groups) {
    if (sc.quant_attrs.empty()) {
      // Counts are bounded by the record count, but that invariant lives far
      // from here (in the scan workers); guard the narrowing explicitly.
      QARM_CHECK_LE(sc.direct_count, std::numeric_limits<uint32_t>::max());
      counts[sc.members[0]] = static_cast<uint32_t>(sc.direct_count);
      continue;
    }
    if (sc.tree != nullptr || sc.degraded_scan) {
      for (size_t m = 0; m < sc.members.size(); ++m) {
        counts[sc.members[m]] = sc.tree_counts[m];
      }
      continue;
    }
    sc.array->BuildPrefixSums();
    const size_t dims = sc.quant_attrs.size();
    rect.lo.resize(dims);
    rect.hi.resize(dims);
    for (uint32_t member : sc.members) {
      const int32_t* ids = candidates.itemset(member);
      size_t d = 0;
      for (size_t i = 0; i < k; ++i) {
        const RangeItem& item = catalog.item(ids[i]);
        if (!is_ranged(item.attr)) continue;
        rect.lo[d] = item.lo;
        rect.hi[d] = item.hi;
        ++d;
      }
      const uint64_t rect_count = sc.array->CountRect(rect);
      QARM_CHECK_LE(rect_count, std::numeric_limits<uint32_t>::max());
      counts[member] = static_cast<uint32_t>(rect_count);
    }
    sc.array.reset();  // release the grid before the next group collects
  }
  local_stats.reduce_seconds = phase_timer.ElapsedSeconds();
  local_stats.io = source.io_stats() - io_before;

  if (stats != nullptr) *stats = local_stats;
  return counts;
}

}  // namespace qarm
